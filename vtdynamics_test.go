package vtdynamics_test

import (
	"testing"
	"time"

	"vtdynamics"
)

func newSim(t *testing.T) *vtdynamics.Simulation {
	t.Helper()
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	sim := newSim(t)
	svc, clock := sim.NewService()
	env, err := svc.Upload(vtdynamics.UploadRequest{
		SHA256:        "api-test-sample",
		FileType:      vtdynamics.FileTypeWin32EXE,
		Size:          4096,
		Malicious:     true,
		Detectability: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Scan.Validate(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(7 * 24 * time.Hour)
	if _, err := svc.Rescan("api-test-sample"); err != nil {
		t.Fatal(err)
	}
	h, err := svc.History("api-test-sample")
	if err != nil {
		t.Fatal(err)
	}
	series := vtdynamics.FromHistory(h)
	if series.Len() != 2 {
		t.Fatalf("series length = %d", series.Len())
	}
	if c := series.Classify(); c.String() == "" {
		t.Fatal("classification failed")
	}
}

func TestPublicAPIWorkloadAndAnalysis(t *testing.T) {
	sim := newSim(t)
	samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
		Seed: 99, NumSamples: 300, MultiOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dynamic int
	matrix := vtdynamics.NewVerdictMatrix(sim.EngineNames())
	flips := vtdynamics.NewFlipMatrix()
	for _, s := range samples {
		h := sim.ScanSample(s)
		rs := vtdynamics.FromHistory(h)
		if rs.Delta() > 0 {
			dynamic++
		}
		matrix.AddHistory(h)
		flips.AddHistory(h)
	}
	if dynamic == 0 {
		t.Fatal("no dynamic samples in workload")
	}
	pairs, err := matrix.Correlations()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no correlation pairs")
	}
	groups := vtdynamics.StrongGroups(pairs, 0.8)
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	if flips.Total().Opportunities == 0 {
		t.Fatal("no flip opportunities")
	}
}

func TestPublicAPILabeling(t *testing.T) {
	th, err := vtdynamics.NewThreshold(2)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := vtdynamics.NewPercentage(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := vtdynamics.NewTrustedSubset([]string{"Kaspersky", "Microsoft"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := newSim(t)
	svc, _ := sim.NewService()
	env, err := svc.Upload(vtdynamics.UploadRequest{
		SHA256: "label-me", FileType: vtdynamics.FileTypeWin32EXE,
		Malicious: true, Detectability: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []vtdynamics.Aggregator{th, pc, ts} {
		_ = agg.Malicious(&env.Scan) // must not panic; value depends on dynamics
		if agg.Name() == "" {
			t.Fatal("aggregator without a name")
		}
	}
}

func TestPublicAPICustomRoster(t *testing.T) {
	roster := vtdynamics.DefaultRoster()[:10]
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 5, Roster: roster})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sim.EngineNames()); got != 10 {
		t.Fatalf("engines = %d", got)
	}
}

func TestPublicAPIStore(t *testing.T) {
	st, err := vtdynamics.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sim := newSim(t)
	svc, _ := sim.NewService()
	env, err := svc.Upload(vtdynamics.UploadRequest{
		SHA256: "store-me", FileType: vtdynamics.FileTypeTXT,
		Malicious: false, Detectability: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(env); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	h, err := st.Get("store-me")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 1 {
		t.Fatalf("stored reports = %d", len(h.Reports))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionWindowExported(t *testing.T) {
	if !vtdynamics.CollectionEnd.After(vtdynamics.CollectionStart) {
		t.Fatal("collection window inverted")
	}
	if months := vtdynamics.CollectionEnd.Sub(vtdynamics.CollectionStart).Hours() / 24 / 30; months < 13 || months > 15 {
		t.Fatalf("window ~%.1f months, want ~14", months)
	}
}
