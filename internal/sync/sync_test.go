package sync

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtapi"
)

var t0 = time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)

func envelope(sha string, at time.Time, rank int) report.Envelope {
	results := []report.EngineResult{
		{Engine: "Avast", Verdict: report.Benign, SignatureVersion: 3},
		{Engine: "BitDefender", Verdict: report.Undetected, SignatureVersion: 9},
	}
	for i := 0; i < rank; i++ {
		results = append(results, report.EngineResult{
			Engine:           fmt.Sprintf("Det%02d", i),
			Verdict:          report.Malicious,
			Label:            "Trojan.Gen",
			SignatureVersion: 1,
		})
	}
	return report.Envelope{
		Meta: report.SampleMeta{
			SHA256:              sha,
			FileType:            "Win32 EXE",
			Size:                4096,
			FirstSubmissionDate: t0,
			LastAnalysisDate:    at,
			LastSubmissionDate:  at,
			TimesSubmitted:      1,
		},
		Scan: report.ScanReport{
			SHA256:       sha,
			FileType:     "Win32 EXE",
			AnalysisDate: at,
			Results:      results,
			AVRank:       rank,
			EnginesTotal: rank + 1,
		},
	}
}

// fillStore puts n envelopes spanning two months into st, with a
// mid-campaign Sync so partitions carry several gzip members.
func fillStore(t *testing.T, st *store.Store, prefix string, n, offset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(offset+i) * time.Hour)
		if (offset+i)%2 == 1 {
			at = at.AddDate(0, 1, 0)
		}
		if err := st.Put(envelope(fmt.Sprintf("%s%03d", prefix, offset+i), at, (offset+i)%7)); err != nil {
			t.Fatal(err)
		}
		if i == n/2 {
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// buildLeaderStore creates and closes a two-month store in dir.
func buildLeaderStore(t *testing.T, dir string, format, n int) {
	t.Helper()
	st, err := store.Open(dir, store.WithFormat(format), store.WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, "syn", n, 0)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// dirHashes maps regular files to SHA-256, skipping names in skip.
func dirHashes(t *testing.T, dir string, skip ...string) map[string]string {
	t.Helper()
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	out := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || skipSet[e.Name()] {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(b)
		out[e.Name()] = hex.EncodeToString(sum[:])
	}
	return out
}

// assertParity compares every file byte-for-byte (by hash) between
// the leader and follower directories.
func assertParity(t *testing.T, leaderDir, followerDir string, skip ...string) {
	t.Helper()
	lh := dirHashes(t, leaderDir, skip...)
	fh := dirHashes(t, followerDir, skip...)
	for name, want := range lh {
		if got, ok := fh[name]; !ok {
			t.Errorf("follower missing %s", name)
		} else if got != want {
			t.Errorf("file %s differs: leader %s, follower %s", name, want[:12], got[:12])
		}
	}
	for name := range fh {
		if _, ok := lh[name]; !ok {
			t.Errorf("follower has extra file %s", name)
		}
	}
}

// leaderServer serves st, optionally behind the fault injector.
func leaderServer(t *testing.T, st *store.Store, faults *vtapi.FaultConfig, reg *obs.Registry) *httptest.Server {
	t.Helper()
	var h http.Handler = NewLeader(st, reg)
	if faults != nil {
		h = vtapi.FaultMiddleware(*faults, reg, h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// assertNoSyncGoroutines fails if any goroutine is still parked in
// this package after the campaign tore down.
func assertNoSyncGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		leaked := 0
		for _, g := range strings.Split(stacks, "\n\n") {
			// Test goroutines themselves sit in package functions; a
			// real leak is a goroutine our code spawned, which never
			// has the test runner on its stack.
			if strings.Contains(g, "vtdynamics/internal/sync.") &&
				!strings.Contains(g, "testing.tRunner") {
				leaked++
			}
		}
		if leaked == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines leaked in internal/sync:\n%s", leaked, stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackfillParity bootstraps an empty follower from a quiescent
// leader and requires a SHA-256 file-for-file diff of zero, for both
// block formats.
func TestBackfillParity(t *testing.T) {
	for _, format := range []int{store.FormatV1, store.FormatV2} {
		t.Run(fmt.Sprintf("v%d", format), func(t *testing.T) {
			leaderDir := t.TempDir()
			buildLeaderStore(t, leaderDir, format, 40)
			lst, err := store.Open(leaderDir)
			if err != nil {
				t.Fatal(err)
			}
			srv := leaderServer(t, lst, nil, obs.NewRegistry())

			followerDir := t.TempDir()
			fst, err := store.Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			f := NewFollower(fst, srv.URL, reg)
			f.CursorPath = filepath.Join(t.TempDir(), "sync.cursor")
			stats, err := f.CatchUp(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stats.BlocksApplied == 0 {
				t.Fatal("backfill applied no blocks")
			}
			assertParity(t, leaderDir, followerDir)
			if got := reg.SumCounters("sync_blocks_applied_total"); int(got) != stats.BlocksApplied {
				t.Fatalf("applied counter %d, stats %d", got, stats.BlocksApplied)
			}
			if lag := reg.SumGauges("sync_cursor_lag_blocks"); lag != 0 {
				t.Fatalf("cursor lag %d after catch-up", lag)
			}

			// The replica must also be a working store.
			rst, err := store.Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			if !rst.Indexed() {
				t.Fatal("replica not indexed")
			}
			if _, err := rst.Verify(); err != nil {
				t.Fatalf("replica verify: %v", err)
			}
			h, err := rst.Get("syn003")
			if err != nil || len(h.Reports) != 1 {
				t.Fatalf("replica read: %v %v", h, err)
			}
			assertNoSyncGoroutines(t)
		})
	}
}

// TestCatchUpIncremental catches a follower up, grows the leader, and
// catches up again: the second pass must transfer only the delta and
// end at parity with the leader's synced state.
func TestCatchUpIncremental(t *testing.T) {
	leaderDir := t.TempDir()
	lst, err := store.Open(leaderDir, store.WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, lst, "inc", 20, 0)
	if err := lst.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := leaderServer(t, lst, nil, obs.NewRegistry())

	followerDir := t.TempDir()
	fst, err := store.Open(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(fst, srv.URL, obs.NewRegistry())
	first, err := f.CatchUp(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, leaderDir, followerDir)

	fillStore(t, lst, "inc", 20, 20)
	if err := lst.Sync(); err != nil {
		t.Fatal(err)
	}
	second, err := f.CatchUp(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.BlocksApplied == 0 || second.BlocksApplied >= first.BlocksApplied+second.BlocksApplied {
		t.Fatalf("second pass applied %d blocks (first %d): not incremental", second.BlocksApplied, first.BlocksApplied)
	}
	assertParity(t, leaderDir, followerDir)
}

// TestFaultyCampaignWithRestartParity is the tentpole proof: a
// follower syncs from a leader behind an injected-fault transport,
// is killed mid-campaign (store abandoned, cursor file truncated),
// restarts, and still converges to a byte-identical replica — for
// both block formats.
func TestFaultyCampaignWithRestartParity(t *testing.T) {
	for _, format := range []int{store.FormatV1, store.FormatV2} {
		t.Run(fmt.Sprintf("v%d", format), func(t *testing.T) {
			leaderDir := t.TempDir()
			lst, err := store.Open(leaderDir, store.WithFormat(format), store.WithBlockSize(2<<10))
			if err != nil {
				t.Fatal(err)
			}
			fillStore(t, lst, "fty", 24, 0)
			if err := lst.Sync(); err != nil {
				t.Fatal(err)
			}
			faults := &vtapi.FaultConfig{Error500Rate: 0.2, Error503Rate: 0.2, Seed: 42}
			srv := leaderServer(t, lst, faults, obs.NewRegistry())

			followerDir := t.TempDir()
			cursorPath := filepath.Join(t.TempDir(), "sync.cursor")
			fst, err := store.Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			f := NewFollower(fst, srv.URL, obs.NewRegistry())
			f.CursorPath = cursorPath
			f.BatchBlocks = 2 // small batches: many faulted round trips
			stats, err := f.CatchUp(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stats.Retries == 0 {
				t.Fatal("fault injector never fired; campaign proves nothing")
			}

			// Kill the follower mid-campaign: abandon its store without
			// Close and tear the cursor file mid-write.
			raw, err := os.ReadFile(cursorPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(cursorPath, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}

			// The leader keeps ingesting while the follower is down.
			fillStore(t, lst, "fty", 24, 24)
			if err := lst.Sync(); err != nil {
				t.Fatal(err)
			}

			// Restart: reopen the replica, reconcile, resume.
			fst2, err := store.Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			reg2 := obs.NewRegistry()
			f2 := NewFollower(fst2, srv.URL, reg2)
			f2.CursorPath = cursorPath
			f2.BatchBlocks = 2
			if _, err := f2.CatchUp(context.Background()); err != nil {
				t.Fatal(err)
			}
			if n := reg2.SumCounters("sync_cursor_recoveries_total"); n == 0 {
				t.Fatal("truncated cursor went unnoticed")
			}
			assertParity(t, leaderDir, followerDir)

			// Full integrity pass over the replica.
			rst, err := store.Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rst.Verify(); err != nil {
				t.Fatalf("replica verify: %v", err)
			}
			assertNoSyncGoroutines(t)
		})
	}
}

// TestFollowerStaleCursor points a follower that is ahead of its
// leader at that leader: it must fail typed, not loop or panic.
func TestFollowerStaleCursor(t *testing.T) {
	bigDir := t.TempDir()
	buildLeaderStore(t, bigDir, store.FormatV2, 40)
	smallDir := t.TempDir()
	buildLeaderStore(t, smallDir, store.FormatV2, 8)

	big, err := store.Open(bigDir)
	if err != nil {
		t.Fatal(err)
	}
	small, err := store.Open(smallDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := leaderServer(t, small, nil, obs.NewRegistry())
	f := NewFollower(big, srv.URL, obs.NewRegistry())
	if _, err := f.CatchUp(context.Background()); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("err = %v, want ErrStaleCursor", err)
	}
}

// TestFollowerRetriesExhausted verifies the bounded-retry contract
// against a leader that always sheds load.
func TestFollowerRetriesExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	fst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(fst, srv.URL, obs.NewRegistry())
	f.MaxAttempts = 3
	_, err = f.CatchUp(context.Background())
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

// TestFollowerRejectsTamperedBlocks serves correct frames whose
// payload bytes were flipped: verify-then-apply must refuse them and
// count the failure.
func TestFollowerRejectsTamperedBlocks(t *testing.T) {
	leaderDir := t.TempDir()
	buildLeaderStore(t, leaderDir, store.FormatV2, 20)
	lst, err := store.Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewLeader(lst, obs.NewRegistry())
	tamper := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.URL.Path, "/blocks") {
			inner.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if len(body) > 40 {
			body[len(body)-10] ^= 0x41
		}
		w.Write(body)
	})
	srv := httptest.NewServer(tamper)
	t.Cleanup(srv.Close)

	fst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	f := NewFollower(fst, srv.URL, reg)
	_, err = f.CatchUp(context.Background())
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("err = %v, want ErrVerifyFailed", err)
	}
	if reg.SumCounters("sync_verify_failures_total") == 0 {
		t.Fatal("verify failure not counted")
	}
}

// TestEmptyLeaderConverges: syncing from an empty leader yields an
// empty replica whose snapshot files match the leader's.
func TestEmptyLeaderConverges(t *testing.T) {
	leaderDir := t.TempDir()
	lst, err := store.Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Close(); err != nil {
		t.Fatal(err)
	}
	lst, err = store.Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := leaderServer(t, lst, nil, obs.NewRegistry())
	followerDir := t.TempDir()
	fst, err := store.Open(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(fst, srv.URL, obs.NewRegistry())
	if _, err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertParity(t, leaderDir, followerDir)
}
