// Package sync replicates a report store from a leader to followers.
//
// The leader exposes partition blocks and metadata snapshots over
// HTTP; a follower pulls with a durable monotone cursor, verifies
// every block against its own re-analysis of the payload (the store's
// verify-then-apply invariant, enforced by store.ApplyBlocks), and
// converges to a byte-identical copy of the leader directory. The
// unit of replication is the gzip block: blocks are immutable once
// committed, so a follower can catch up from any frontier without
// coordination — the leader never rewrites what it already served.
//
// Wire messages are a small hand-rolled binary format ("VTSY" magic,
// version byte, kind byte, uvarint fields, length-capped byte
// strings). Decoding is total: any input either yields a valid
// message or a typed error — malformed lengths, truncated frames, and
// future format versions all fail loudly and never panic, which the
// FuzzSyncWireDecode target enforces.
package sync

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"vtdynamics/internal/store"
)

// Wire format constants. WireVersion is bumped when message layout
// changes; decoders reject versions beyond what they know with
// *VersionError so an old follower fails typed, not garbled.
const (
	wireMagic   = "VTSY"
	WireVersion = 1

	kindCursor   = 1
	kindBlock    = 2
	kindManifest = 3
)

// Decode caps. A malicious or corrupt frame cannot make a decoder
// allocate more than these bounds.
const (
	maxWireMonths   = 4096
	maxMonthKeyLen  = 32
	maxWirePayload  = 1 << 30 // one block's compressed bytes
	maxSnapshotHash = 64      // hex SHA-256
)

// Typed decode errors.
var (
	// ErrBadMagic marks a frame that is not a sync wire message.
	ErrBadMagic = errors.New("sync: bad wire magic")
	// ErrTruncated marks a frame that ends mid-field.
	ErrTruncated = errors.New("sync: truncated wire message")
	// ErrFrameTooLarge marks a length field beyond the decode caps.
	ErrFrameTooLarge = errors.New("sync: wire length exceeds cap")
	// ErrBadMessage marks a structurally invalid message: wrong kind,
	// unsorted or duplicate months, negative counts, bad month keys.
	ErrBadMessage = errors.New("sync: malformed wire message")
	// ErrStaleCursor is returned when the leader no longer has (or
	// never had) the blocks a cursor claims: the follower is ahead of
	// the leader, which means divergent histories — resync required.
	ErrStaleCursor = errors.New("sync: cursor ahead of leader state")
)

// VersionError reports a wire frame from a future protocol version.
type VersionError struct {
	Got, Max int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("sync: wire version %d beyond supported %d", e.Got, e.Max)
}

// Is makes errors.Is(err, ErrBadMessage) false but allows matching a
// bare *VersionError via errors.As; version errors are their own kind.
func (e *VersionError) Is(target error) bool {
	t, ok := target.(*VersionError)
	return ok && (t.Got == 0 || t.Got == e.Got)
}

// MonthCursor is one month's replication frontier: how many blocks
// (and partition bytes) the holder has durably applied.
type MonthCursor struct {
	Month  string
	Blocks int
	Size   int64
}

// Cursor is the follower's durable frontier across all months, sorted
// ascending by month with no duplicates. It doubles as the on-disk
// cursor file format, so a truncated cursor file surfaces as a typed
// decode error and recovery falls back to store-derived state.
type Cursor struct {
	Months []MonthCursor
}

// Manifest is the leader's advertised state: per-month frontiers plus
// the sizes and SHA-256 hashes of the two metadata snapshots. A
// follower that has applied every advertised block and snapshots
// matching these hashes holds a byte-identical replica.
type Manifest struct {
	Months      []MonthCursor
	SamplesSize int64
	SamplesSHA  string
	StatsSize   int64
	StatsSHA    string
}

// BlockFrame is one replicated block: the sidecar metadata the
// follower must re-derive from the payload, plus the raw compressed
// bytes exactly as they sit in the leader partition.
type BlockFrame struct {
	Month   string
	Seq     int
	Offset  int64
	Len     int64
	Rows    int
	Raw     int64
	Ver     int
	Payload []byte
}

// Ref converts the frame header to the store's replication handle.
func (b *BlockFrame) Ref() store.ReplBlock {
	return store.ReplBlock{
		Month: b.Month, Seq: b.Seq, Offset: b.Offset,
		Len: b.Len, Rows: b.Rows, Raw: b.Raw, Ver: b.Ver,
	}
}

// --- encoding ---

func appendHeader(dst []byte, kind byte) []byte {
	dst = append(dst, wireMagic...)
	return append(dst, WireVersion, kind)
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendMonths(dst []byte, months []MonthCursor) []byte {
	dst = appendUvarint(dst, uint64(len(months)))
	for _, m := range months {
		dst = appendString(dst, m.Month)
		dst = appendUvarint(dst, uint64(m.Blocks))
		dst = appendUvarint(dst, uint64(m.Size))
	}
	return dst
}

// EncodeCursor serializes c. Months must already be sorted and valid;
// DecodeCursor enforces it, so an encoder violating the invariant is
// caught by its peer.
func EncodeCursor(c Cursor) []byte {
	return appendMonths(appendHeader(nil, kindCursor), c.Months)
}

// EncodeManifest serializes m.
func EncodeManifest(m Manifest) []byte {
	dst := appendMonths(appendHeader(nil, kindManifest), m.Months)
	dst = appendUvarint(dst, uint64(m.SamplesSize))
	dst = appendString(dst, m.SamplesSHA)
	dst = appendUvarint(dst, uint64(m.StatsSize))
	dst = appendString(dst, m.StatsSHA)
	return dst
}

// EncodeBlockFrame serializes b, payload included.
func EncodeBlockFrame(b BlockFrame) []byte {
	dst := appendHeader(nil, kindBlock)
	dst = appendString(dst, b.Month)
	dst = appendUvarint(dst, uint64(b.Seq))
	dst = appendUvarint(dst, uint64(b.Offset))
	dst = appendUvarint(dst, uint64(b.Len))
	dst = appendUvarint(dst, uint64(b.Rows))
	dst = appendUvarint(dst, uint64(b.Raw))
	dst = appendUvarint(dst, uint64(b.Ver))
	dst = appendUvarint(dst, uint64(len(b.Payload)))
	return append(dst, b.Payload...)
}

// --- decoding ---

// wireReader consumes a frame left to right; every read is bounds-
// checked and fails with a typed error instead of slicing past the
// buffer.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	// Reject non-minimal encodings so every message has exactly one
	// byte representation — cursor files can then be compared by hash.
	if minLen := (bits.Len64(v|1) + 6) / 7; n != minLen {
		return 0, fmt.Errorf("%w: non-minimal varint", ErrBadMessage)
	}
	r.off += n
	return v, nil
}

// intField reads a uvarint that must fit a non-negative int.
func (r *wireReader) intField(cap uint64) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > cap {
		return 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, v, cap)
	}
	return int(v), nil
}

func (r *wireReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) string(maxLen int) (string, error) {
	n, err := r.intField(uint64(maxLen))
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// done errors unless the frame was consumed exactly — trailing bytes
// would let a peer smuggle data past the decoder.
func (r *wireReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return nil
}

// decodeHeader checks magic, version, and kind, returning the body
// reader.
func decodeHeader(frame []byte, wantKind byte) (*wireReader, error) {
	if len(frame) < len(wireMagic)+2 {
		return nil, ErrTruncated
	}
	if string(frame[:len(wireMagic)]) != wireMagic {
		return nil, ErrBadMagic
	}
	ver := int(frame[len(wireMagic)])
	if ver > WireVersion {
		return nil, &VersionError{Got: ver, Max: WireVersion}
	}
	if ver == 0 {
		return nil, fmt.Errorf("%w: version 0", ErrBadMessage)
	}
	if kind := frame[len(wireMagic)+1]; kind != wantKind {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrBadMessage, kind, wantKind)
	}
	return &wireReader{buf: frame, off: len(wireMagic) + 2}, nil
}

func decodeMonths(r *wireReader) ([]MonthCursor, error) {
	n, err := r.intField(maxWireMonths)
	if err != nil {
		return nil, err
	}
	months := make([]MonthCursor, 0, n)
	prev := ""
	for i := 0; i < n; i++ {
		var mc MonthCursor
		if mc.Month, err = r.string(maxMonthKeyLen); err != nil {
			return nil, err
		}
		if !store.ValidMonthKey(mc.Month) {
			return nil, fmt.Errorf("%w: bad month key %q", ErrBadMessage, mc.Month)
		}
		if mc.Month <= prev {
			return nil, fmt.Errorf("%w: months out of order at %q", ErrBadMessage, mc.Month)
		}
		prev = mc.Month
		blocks, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		size, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if blocks > 1<<40 || size > 1<<50 {
			return nil, fmt.Errorf("%w: month %s counters", ErrFrameTooLarge, mc.Month)
		}
		// A block holds at least one row (two bytes of gzip is already
		// impossible, but the invariant that matters is blocks>0 ⇒
		// size>0 and blocks==0 ⇒ size==0).
		if (blocks == 0) != (size == 0) {
			return nil, fmt.Errorf("%w: month %s has %d blocks in %d bytes", ErrBadMessage, mc.Month, blocks, size)
		}
		mc.Blocks, mc.Size = int(blocks), int64(size)
		months = append(months, mc)
	}
	return months, nil
}

// DecodeCursor parses a cursor frame.
func DecodeCursor(frame []byte) (Cursor, error) {
	r, err := decodeHeader(frame, kindCursor)
	if err != nil {
		return Cursor{}, err
	}
	months, err := decodeMonths(r)
	if err != nil {
		return Cursor{}, err
	}
	if err := r.done(); err != nil {
		return Cursor{}, err
	}
	return Cursor{Months: months}, nil
}

// DecodeManifest parses a manifest frame.
func DecodeManifest(frame []byte) (Manifest, error) {
	r, err := decodeHeader(frame, kindManifest)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if m.Months, err = decodeMonths(r); err != nil {
		return Manifest{}, err
	}
	ssize, err := r.uvarint()
	if err != nil {
		return Manifest{}, err
	}
	if m.SamplesSHA, err = r.string(maxSnapshotHash); err != nil {
		return Manifest{}, err
	}
	tsize, err := r.uvarint()
	if err != nil {
		return Manifest{}, err
	}
	if m.StatsSHA, err = r.string(maxSnapshotHash); err != nil {
		return Manifest{}, err
	}
	if ssize > 1<<50 || tsize > 1<<50 {
		return Manifest{}, fmt.Errorf("%w: snapshot sizes", ErrFrameTooLarge)
	}
	if !validHexHash(m.SamplesSHA) || !validHexHash(m.StatsSHA) {
		return Manifest{}, fmt.Errorf("%w: snapshot hash", ErrBadMessage)
	}
	m.SamplesSize, m.StatsSize = int64(ssize), int64(tsize)
	if err := r.done(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// DecodeBlockFrame parses one block frame from the front of buf and
// returns the remaining bytes, so a response body can carry a run of
// frames back to back.
func DecodeBlockFrame(buf []byte) (BlockFrame, []byte, error) {
	r, err := decodeHeader(buf, kindBlock)
	if err != nil {
		return BlockFrame{}, nil, err
	}
	var b BlockFrame
	if b.Month, err = r.string(maxMonthKeyLen); err != nil {
		return BlockFrame{}, nil, err
	}
	if !store.ValidMonthKey(b.Month) {
		return BlockFrame{}, nil, fmt.Errorf("%w: bad month key %q", ErrBadMessage, b.Month)
	}
	if b.Seq, err = r.intField(1 << 40); err != nil {
		return BlockFrame{}, nil, err
	}
	off, err := r.uvarint()
	if err != nil {
		return BlockFrame{}, nil, err
	}
	blen, err := r.uvarint()
	if err != nil {
		return BlockFrame{}, nil, err
	}
	if b.Rows, err = r.intField(1 << 40); err != nil {
		return BlockFrame{}, nil, err
	}
	raw, err := r.uvarint()
	if err != nil {
		return BlockFrame{}, nil, err
	}
	ver, err := r.intField(255)
	if err != nil {
		return BlockFrame{}, nil, err
	}
	if off > 1<<50 || blen > maxWirePayload || raw > 1<<50 {
		return BlockFrame{}, nil, fmt.Errorf("%w: block fields", ErrFrameTooLarge)
	}
	b.Offset, b.Len, b.Raw, b.Ver = int64(off), int64(blen), int64(raw), ver
	if b.Rows < 1 || b.Len < 1 || b.Ver < 1 {
		return BlockFrame{}, nil, fmt.Errorf("%w: empty block fields", ErrBadMessage)
	}
	n, err := r.intField(maxWirePayload)
	if err != nil {
		return BlockFrame{}, nil, err
	}
	if int64(n) != b.Len {
		return BlockFrame{}, nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrBadMessage, n, b.Len)
	}
	payload, err := r.bytes(n)
	if err != nil {
		return BlockFrame{}, nil, err
	}
	b.Payload = payload
	return b, buf[r.off:], nil
}

func validHexHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
