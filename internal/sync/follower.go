package sync

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/store"
)

// Typed follower errors.
var (
	// ErrVerifyFailed wraps a block that decoded from the wire but
	// disagreed with its own payload under re-analysis.
	ErrVerifyFailed = errors.New("sync: block failed verification")
	// ErrRetriesExhausted marks a transport that never yielded a good
	// response within the attempt budget.
	ErrRetriesExhausted = errors.New("sync: retries exhausted")
)

// Follower pulls a leader's replication feed into a local store until
// the replica is byte-identical. It is resumable at every step: the
// store's own sidecars are the authoritative frontier (a block is
// either durably applied or absent), and a small wire-format cursor
// file mirrors that frontier for observability and fast reconcile. A
// truncated or lying cursor file is harmless — Reconcile falls back
// to store-derived state, at worst re-fetching a batch.
type Follower struct {
	// Base is the leader URL prefix, e.g. "http://host:port".
	Base string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// CursorPath, when set, is where the durable cursor file lives.
	CursorPath string
	// MaxAttempts bounds retries per request (0 = 8). Transient 500s
	// and 503s from the leader consume attempts; Retry-After is
	// honored up to a second.
	MaxAttempts int
	// BatchBlocks/BatchBytes bound one pull (0 = leader defaults).
	BatchBlocks int
	BatchBytes  int64

	st *store.Store

	pulled        *obs.Counter
	applied       *obs.Counter
	appliedBytes  *obs.Counter
	verifyFails   *obs.Counter
	retries       *obs.Counter
	snapApplied   *obs.Counter
	cursorLag     *obs.Gauge
	backfillLeft  *obs.Gauge
	cursorRecover *obs.Counter
}

// Stats summarizes one CatchUp.
type Stats struct {
	Rounds        int
	BlocksApplied int
	BytesApplied  int64
	Retries       int
	VerifyFails   int
}

// NewFollower builds a follower applying into st. Metrics go to reg
// (nil = process default). The store must be open without writers —
// a replica ingests only through ApplyBlocks.
func NewFollower(st *store.Store, base string, reg *obs.Registry) *Follower {
	if reg == nil {
		reg = obs.Default()
	}
	return &Follower{
		Base:          base,
		st:            st,
		pulled:        reg.Counter("sync_blocks_pulled_total"),
		applied:       reg.Counter("sync_blocks_applied_total"),
		appliedBytes:  reg.Counter("sync_bytes_applied_total"),
		verifyFails:   reg.Counter("sync_verify_failures_total"),
		retries:       reg.Counter("sync_retries_total"),
		snapApplied:   reg.Counter("sync_snapshots_applied_total"),
		cursorLag:     reg.Gauge("sync_cursor_lag_blocks"),
		backfillLeft:  reg.Gauge("sync_backfill_remaining_bytes"),
		cursorRecover: reg.Counter("sync_cursor_recoveries_total"),
	}
}

// Reconcile returns the effective frontier: the store's own state,
// which is authoritative because ApplyBlocks only indexes durable
// bytes. The cursor file is decoded purely to detect disagreement —
// a torn file or one ahead of the store (a crash rolled the store
// back, or RepairDir truncated a torn tail) increments
// sync_cursor_recoveries_total and is otherwise ignored.
func (f *Follower) Reconcile() Cursor {
	state := f.st.ReplState()
	months := make([]MonthCursor, 0, len(state))
	for month, ms := range state {
		months = append(months, MonthCursor{Month: month, Blocks: ms.Blocks, Size: ms.FileSize})
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Month < months[j].Month })
	effective := Cursor{Months: months}

	if f.CursorPath == "" {
		return effective
	}
	raw, err := os.ReadFile(f.CursorPath)
	if err != nil {
		if !os.IsNotExist(err) {
			f.cursorRecover.Inc()
		}
		return effective
	}
	saved, err := DecodeCursor(raw)
	if err != nil {
		f.cursorRecover.Inc()
		return effective
	}
	have := make(map[string]MonthCursor, len(effective.Months))
	for _, mc := range effective.Months {
		have[mc.Month] = mc
	}
	for _, mc := range saved.Months {
		if got := have[mc.Month]; mc.Blocks != got.Blocks || mc.Size != got.Size {
			f.cursorRecover.Inc()
			return effective
		}
	}
	return effective
}

// saveCursor persists the current store frontier atomically; cursor
// loss is never fatal, so write errors surface but do not roll back
// applied blocks.
func (f *Follower) saveCursor() error {
	if f.CursorPath == "" {
		return nil
	}
	data := EncodeCursor(f.Reconcile())
	tmp := f.CursorPath + ".tmp"
	fh, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sync: cursor: %w", err)
	}
	if _, err := fh.Write(data); err != nil {
		fh.Close()
		return fmt.Errorf("sync: cursor: %w", err)
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return fmt.Errorf("sync: cursor: %w", err)
	}
	if err := fh.Close(); err != nil {
		return fmt.Errorf("sync: cursor: %w", err)
	}
	if err := os.Rename(tmp, f.CursorPath); err != nil {
		return fmt.Errorf("sync: cursor: %w", err)
	}
	return nil
}

// get fetches one URL with bounded retries on transient failures.
func (f *Follower) get(ctx context.Context, url string, stats *Stats) ([]byte, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	attempts := f.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			f.retries.Inc()
			stats.Retries++
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, fmt.Errorf("sync: %w", err)
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && readErr == nil:
			return body, nil
		case resp.StatusCode == http.StatusConflict:
			return nil, ErrStaleCursor
		case resp.StatusCode == http.StatusInternalServerError,
			resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("leader status %d", resp.StatusCode)
			if wait := retryAfter(resp); wait > 0 {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(wait):
				}
			}
		case readErr != nil:
			lastErr = readErr
		default:
			// Non-transient status: do not burn the budget.
			return nil, fmt.Errorf("sync: leader status %d for %s", resp.StatusCode, url)
		}
	}
	return nil, fmt.Errorf("%w: %s: %v", ErrRetriesExhausted, url, lastErr)
}

// retryAfter parses the header, capped so an injected fault cannot
// stall a campaign.
func retryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > time.Second {
		d = time.Second
	}
	return d
}

// Manifest fetches and decodes the leader manifest.
func (f *Follower) Manifest(ctx context.Context) (Manifest, error) {
	var stats Stats
	body, err := f.get(ctx, f.Base+"/sync/v1/manifest", &stats)
	if err != nil {
		return Manifest{}, err
	}
	return DecodeManifest(body)
}

// pullMonth advances one month to the target frontier, saving the
// cursor after every applied batch.
func (f *Follower) pullMonth(ctx context.Context, target MonthCursor, have store.MonthState, stats *Stats) error {
	seq := have.Blocks
	for seq < target.Blocks {
		url := fmt.Sprintf("%s/sync/v1/blocks?month=%s&seq=%d", f.Base, target.Month, seq)
		if f.BatchBlocks > 0 {
			url += "&max=" + strconv.Itoa(f.BatchBlocks)
		}
		if f.BatchBytes > 0 {
			url += "&max_bytes=" + strconv.FormatInt(f.BatchBytes, 10)
		}
		body, err := f.get(ctx, url, stats)
		if err != nil {
			return err
		}
		refs := make([]store.ReplBlock, 0, 8)
		data := make([][]byte, 0, 8)
		for len(body) > 0 {
			frame, rest, err := DecodeBlockFrame(body)
			if err != nil {
				// A torn mid-stream body decodes partially; apply what
				// arrived whole and re-pull the rest.
				if len(refs) > 0 {
					break
				}
				return fmt.Errorf("sync: month %s seq %d: %w", target.Month, seq, err)
			}
			refs = append(refs, frame.Ref())
			data = append(data, frame.Payload)
			body = rest
		}
		if len(refs) == 0 {
			return fmt.Errorf("sync: leader returned no blocks for %s at seq %d", target.Month, seq)
		}
		f.pulled.Add(int64(len(refs)))
		if err := f.st.ApplyBlocks(target.Month, refs, data); err != nil {
			f.verifyFails.Inc()
			stats.VerifyFails++
			return fmt.Errorf("%w: month %s seq %d: %v", ErrVerifyFailed, target.Month, seq, err)
		}
		for _, ref := range refs {
			f.appliedBytes.Add(ref.Len)
			stats.BytesApplied += ref.Len
		}
		f.applied.Add(int64(len(refs)))
		stats.BlocksApplied += len(refs)
		seq += len(refs)
		if err := f.saveCursor(); err != nil {
			return err
		}
	}
	return nil
}

// lag computes how many leader blocks (and partition bytes) the
// follower is missing under the given manifest.
func lag(m Manifest, state map[string]store.MonthState) (blocks int, bytes int64) {
	for _, mc := range m.Months {
		have := state[mc.Month]
		if mc.Blocks > have.Blocks {
			blocks += mc.Blocks - have.Blocks
		}
		if mc.Size > have.FileSize {
			bytes += mc.Size - have.FileSize
		}
	}
	return blocks, bytes
}

// CatchUp pulls until the replica matches a stable leader manifest:
// blocks first, then the two metadata snapshots, each applied only
// after its SHA-256 matches the manifest (verify-then-apply end to
// end). If the leader keeps moving, CatchUp keeps looping; against a
// quiescent leader it terminates with a byte-identical replica.
func (f *Follower) CatchUp(ctx context.Context) (Stats, error) {
	var stats Stats
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Rounds++
		m, err := f.Manifest(ctx)
		if err != nil {
			return stats, err
		}
		state := f.st.ReplState()
		lagBlocks, lagBytes := lag(m, state)
		f.cursorLag.Set(int64(lagBlocks))
		f.backfillLeft.Set(lagBytes)

		// Divergence check: a replica ahead of its leader is not a
		// replica of this leader.
		for _, mc := range f.Reconcile().Months {
			want := -1
			for _, lm := range m.Months {
				if lm.Month == mc.Month {
					want = lm.Blocks
					break
				}
			}
			if want < mc.Blocks {
				return stats, fmt.Errorf("%w: month %s at %d, leader has %d", ErrStaleCursor, mc.Month, mc.Blocks, want)
			}
		}

		for _, mc := range m.Months {
			if err := f.pullMonth(ctx, mc, state[mc.Month], &stats); err != nil {
				return stats, err
			}
		}
		// Persist sidecars before judging convergence, so a kill here
		// resumes from the advanced frontier.
		if err := f.st.Sync(); err != nil {
			return stats, err
		}

		samples, err := f.get(ctx, f.Base+"/sync/v1/samples", &stats)
		if err != nil {
			return stats, err
		}
		statsBody, err := f.get(ctx, f.Base+"/sync/v1/stats", &stats)
		if err != nil {
			return stats, err
		}
		if hashHex(samples) != m.SamplesSHA || hashHex(statsBody) != m.StatsSHA {
			// The leader moved between manifest and snapshot fetch;
			// take a fresh manifest and go again.
			continue
		}
		m2, err := f.Manifest(ctx)
		if err != nil {
			return stats, err
		}
		if !manifestEqual(m, m2) {
			continue
		}
		if err := f.st.ApplySamplesSnapshot(samples); err != nil {
			f.verifyFails.Inc()
			stats.VerifyFails++
			return stats, fmt.Errorf("%w: samples snapshot: %v", ErrVerifyFailed, err)
		}
		if err := f.st.ApplyStatsSnapshot(statsBody); err != nil {
			f.verifyFails.Inc()
			stats.VerifyFails++
			return stats, fmt.Errorf("%w: stats snapshot: %v", ErrVerifyFailed, err)
		}
		f.snapApplied.Add(2)
		f.cursorLag.Set(0)
		f.backfillLeft.Set(0)
		if err := f.saveCursor(); err != nil {
			return stats, err
		}
		return stats, nil
	}
}

func hashHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func manifestEqual(a, b Manifest) bool {
	if len(a.Months) != len(b.Months) ||
		a.SamplesSHA != b.SamplesSHA || a.StatsSHA != b.StatsSHA ||
		a.SamplesSize != b.SamplesSize || a.StatsSize != b.StatsSize {
		return false
	}
	for i := range a.Months {
		if a.Months[i] != b.Months[i] {
			return false
		}
	}
	return true
}
