package sync

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/store"
)

// The golden mixed-format fixture is a partially-migrated store: its
// first campaign wrote v1 blocks, a later campaign appended v2 blocks
// to the same months. It is checked in under testdata/mixed with a
// SHA256SUMS manifest; regenerate with
//
//	VTDYN_REGEN_GOLDEN=1 go test ./internal/sync -run MixedFormat
//
// The fixture pins the exact bytes a replication follower must
// reproduce, so format-dispatch regressions (a v2 reader "fixing" v1
// bytes in transit, or vice versa) surface as a parity diff against
// history, not just against a freshly built leader.
const mixedFixtureDir = "testdata/mixed"

func regenMixedFixture(t *testing.T) {
	t.Helper()
	if err := os.RemoveAll(mixedFixtureDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(mixedFixtureDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Campaign 1: v1 blocks across two months.
	st, err := store.Open(mixedFixtureDir, store.WithFormat(store.FormatV1), store.WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, "mix", 20, 0)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Campaign 2: the store reopens at v2 and appends columnar blocks
	// to the same partitions.
	st, err = store.Open(mixedFixtureDir, store.WithFormat(store.FormatV2), store.WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, "mix", 20, 20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	hashes := dirHashes(t, mixedFixtureDir)
	names := make([]string, 0, len(hashes))
	for name := range hashes {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s  %s\n", hashes[name], name)
	}
	if err := os.WriteFile(filepath.Join(mixedFixtureDir, "SHA256SUMS"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s (%d files)", mixedFixtureDir, len(names))
}

// blockVersions maps month -> set of block format versions present.
func blockVersions(t *testing.T, st *store.Store) map[string]map[int]bool {
	t.Helper()
	out := make(map[string]map[int]bool)
	for month, ms := range st.ReplState() {
		vers := make(map[int]bool)
		refs, err := st.BlocksSince(month, 0, ms.Blocks, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			vers[ref.Ver] = true
		}
		out[month] = vers
	}
	return out
}

// TestMixedFormatReplicationParity replicates the golden partially-
// migrated fixture into an empty follower and requires byte parity,
// proving the sync path never transcodes across the v1/v2 boundary.
func TestMixedFormatReplicationParity(t *testing.T) {
	if os.Getenv("VTDYN_REGEN_GOLDEN") == "1" {
		regenMixedFixture(t)
	}
	if _, err := os.Stat(filepath.Join(mixedFixtureDir, "SHA256SUMS")); err != nil {
		t.Fatalf("golden fixture missing (run with VTDYN_REGEN_GOLDEN=1 to create): %v", err)
	}

	// The checked-in bytes must match their manifest — a drifted
	// fixture would make the parity proof circular.
	sums, err := os.ReadFile(filepath.Join(mixedFixtureDir, "SHA256SUMS"))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(sums)), "\n") {
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("bad SHA256SUMS line %q", line)
		}
		want[parts[1]] = parts[0]
	}
	got := dirHashes(t, mixedFixtureDir, "SHA256SUMS")
	if len(got) != len(want) {
		t.Fatalf("fixture has %d files, manifest lists %d", len(got), len(want))
	}
	for name, sum := range want {
		if got[name] != sum {
			t.Fatalf("fixture file %s drifted from SHA256SUMS", name)
		}
	}

	lst, err := store.Open(mixedFixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	// The leader really is mixed: every month holds both formats.
	for month, vers := range blockVersions(t, lst) {
		if !vers[store.FormatV1] || !vers[store.FormatV2] {
			t.Fatalf("fixture month %s not mixed: versions %v", month, vers)
		}
	}

	srv := leaderServer(t, lst, nil, obs.NewRegistry())
	followerDir := t.TempDir()
	fst, err := store.Open(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(fst, srv.URL, obs.NewRegistry())
	f.CursorPath = filepath.Join(t.TempDir(), "sync.cursor")
	if _, err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertParity(t, mixedFixtureDir, followerDir, "SHA256SUMS")

	// The replica preserves the per-block format split and reads
	// rows from both sides of the migration boundary.
	rst, err := store.Open(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	for month, vers := range blockVersions(t, rst) {
		if !vers[store.FormatV1] || !vers[store.FormatV2] {
			t.Fatalf("replica month %s lost the format mix: %v", month, vers)
		}
	}
	if _, err := rst.Verify(); err != nil {
		t.Fatalf("replica verify: %v", err)
	}
	for _, sha := range []string{"mix003", "mix037"} {
		h, err := rst.Get(sha)
		if err != nil || len(h.Reports) != 1 {
			t.Fatalf("replica read %s: %v %v", sha, h, err)
		}
	}
}
