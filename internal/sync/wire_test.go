package sync

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func validCursor() Cursor {
	return Cursor{Months: []MonthCursor{
		{Month: "2021-05", Blocks: 7, Size: 4096},
		{Month: "2021-06", Blocks: 3, Size: 1024},
	}}
}

func validManifest() Manifest {
	return Manifest{
		Months: []MonthCursor{
			{Month: "2021-05", Blocks: 7, Size: 4096},
			{Month: "2021-06", Blocks: 3, Size: 1024},
		},
		SamplesSize: 99,
		SamplesSHA:  "5feceb66ffc86f38d952786c6d696c79c2dbc239dd4e91b46729d73a27fb57e9",
		StatsSize:   12,
		StatsSHA:    "6b86b273ff34fce19d6b804eff5a3f5747ada4eaa22f1d49c01e52ddb7875b4b",
	}
}

func validBlock() BlockFrame {
	return BlockFrame{
		Month: "2021-05", Seq: 2, Offset: 512, Len: 5, Rows: 3,
		Raw: 900, Ver: 2, Payload: []byte{1, 2, 3, 4, 5},
	}
}

func TestWireRoundTrips(t *testing.T) {
	c := validCursor()
	gotC, err := DecodeCursor(EncodeCursor(c))
	if err != nil || !reflect.DeepEqual(c, gotC) {
		t.Fatalf("cursor round trip: %+v, %v", gotC, err)
	}
	empty, err := DecodeCursor(EncodeCursor(Cursor{}))
	if err != nil || len(empty.Months) != 0 {
		t.Fatalf("empty cursor round trip: %+v, %v", empty, err)
	}
	m := validManifest()
	gotM, err := DecodeManifest(EncodeManifest(m))
	if err != nil || !reflect.DeepEqual(m, gotM) {
		t.Fatalf("manifest round trip: %+v, %v", gotM, err)
	}
	b := validBlock()
	gotB, rest, err := DecodeBlockFrame(EncodeBlockFrame(b))
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(b, gotB) {
		t.Fatalf("block round trip: %+v, rest %d, %v", gotB, len(rest), err)
	}
	// Two frames back to back decode in sequence.
	double := append(EncodeBlockFrame(b), EncodeBlockFrame(b)...)
	first, rest, err := DecodeBlockFrame(double)
	if err != nil || !reflect.DeepEqual(b, first) {
		t.Fatalf("first of two: %v", err)
	}
	second, rest, err := DecodeBlockFrame(rest)
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(b, second) {
		t.Fatalf("second of two: %v", err)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	cursor := EncodeCursor(validCursor())
	manifest := EncodeManifest(validManifest())
	block := EncodeBlockFrame(validBlock())

	mutate := func(src []byte, fn func(b []byte)) []byte {
		out := append([]byte(nil), src...)
		fn(out)
		return out
	}
	cases := []struct {
		name  string
		frame []byte
		via   func([]byte) error
		want  error
	}{
		{"empty", nil, decCursor, ErrTruncated},
		{"bad magic", mutate(cursor, func(b []byte) { b[0] = 'X' }), decCursor, ErrBadMagic},
		{"future version", mutate(cursor, func(b []byte) { b[4] = WireVersion + 3 }), decCursor, &VersionError{}},
		{"version zero", mutate(cursor, func(b []byte) { b[4] = 0 }), decCursor, ErrBadMessage},
		{"wrong kind", manifest, decCursor, ErrBadMessage},
		{"truncated mid-month", cursor[:len(cursor)-3], decCursor, ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), cursor...), 0xFF), decCursor, ErrBadMessage},
		{"month count beyond cap", mutate(cursor[:6], func([]byte) {}), decCursorCount, ErrFrameTooLarge},
		{"bad month key", encodeCursorRaw("20x1-05", 1, 10), decCursor, ErrBadMessage},
		{"months out of order", encodeCursorRaw2("2021-06", "2021-05"), decCursor, ErrBadMessage},
		{"duplicate month", encodeCursorRaw2("2021-05", "2021-05"), decCursor, ErrBadMessage},
		{"blocks without bytes", encodeCursorRaw("2021-05", 3, 0), decCursor, ErrBadMessage},
		{"manifest bad hash", mutate(manifest, func(b []byte) { b[len(b)-1] = 'Z' }), decManifest, ErrBadMessage},
		{"manifest truncated", manifest[:len(manifest)-40], decManifest, ErrTruncated},
		{"block truncated payload", block[:len(block)-2], decBlock, ErrTruncated},
		{"block payload length lies", mutate(block, func(b []byte) { b[len(b)-6] = 9 }), decBlock, ErrBadMessage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.via(tc.frame)
			if err == nil {
				t.Fatal("decode accepted malformed frame")
			}
			var ve *VersionError
			if _, wantVer := tc.want.(*VersionError); wantVer {
				if !errors.As(err, &ve) {
					t.Fatalf("err = %v, want *VersionError", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func decCursor(b []byte) error   { _, err := DecodeCursor(b); return err }
func decManifest(b []byte) error { _, err := DecodeManifest(b); return err }
func decBlock(b []byte) error    { _, _, err := DecodeBlockFrame(b); return err }

// decCursorCount decodes a frame hand-built to claim more months than
// the cap allows.
func decCursorCount([]byte) error {
	frame := appendHeader(nil, kindCursor)
	frame = appendUvarint(frame, maxWireMonths+1)
	_, err := DecodeCursor(frame)
	return err
}

func encodeCursorRaw(month string, blocks, size int) []byte {
	frame := appendHeader(nil, kindCursor)
	frame = appendUvarint(frame, 1)
	frame = appendString(frame, month)
	frame = appendUvarint(frame, uint64(blocks))
	return appendUvarint(frame, uint64(size))
}

func encodeCursorRaw2(m1, m2 string) []byte {
	frame := appendHeader(nil, kindCursor)
	frame = appendUvarint(frame, 2)
	for _, m := range []string{m1, m2} {
		frame = appendString(frame, m)
		frame = appendUvarint(frame, 1)
		frame = appendUvarint(frame, 10)
	}
	return frame
}

// FuzzSyncWireDecode drives all three decoders over arbitrary bytes:
// they must never panic, never accept a frame that fails to re-encode
// to the same bytes, and always fail with one of the typed errors.
func FuzzSyncWireDecode(f *testing.F) {
	f.Add(EncodeCursor(validCursor()))
	f.Add(EncodeCursor(Cursor{}))
	f.Add(EncodeManifest(validManifest()))
	f.Add(EncodeBlockFrame(validBlock()))
	f.Add([]byte(wireMagic))
	f.Add([]byte("VTSY\x01\x01\x01\x072021-05\xff\xff\xff\xff\xff\xff\xff\xff\x7f\x10"))
	f.Add([]byte("VTSY\x09\x02junk"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	typed := func(t *testing.T, err error) {
		var ve *VersionError
		switch {
		case err == nil,
			errors.Is(err, ErrBadMagic),
			errors.Is(err, ErrTruncated),
			errors.Is(err, ErrFrameTooLarge),
			errors.Is(err, ErrBadMessage),
			errors.As(err, &ve):
		default:
			t.Fatalf("untyped decode error: %v", err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := DecodeCursor(data); err == nil {
			if !bytes.Equal(EncodeCursor(c), data) {
				t.Fatalf("cursor decode/encode not canonical for %x", data)
			}
		} else {
			typed(t, err)
		}
		if m, err := DecodeManifest(data); err == nil {
			if !bytes.Equal(EncodeManifest(m), data) {
				t.Fatalf("manifest decode/encode not canonical for %x", data)
			}
		} else {
			typed(t, err)
		}
		if b, rest, err := DecodeBlockFrame(data); err == nil {
			reenc := append(EncodeBlockFrame(b), rest...)
			if !bytes.Equal(reenc, data) {
				t.Fatalf("block decode/encode not canonical for %x", data)
			}
		} else {
			typed(t, err)
		}
	})
}
