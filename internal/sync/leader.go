package sync

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/store"
)

// Default batch bounds for one /blocks response. A follower can ask
// for less; the leader never returns more.
const (
	DefaultBatchBlocks = 64
	DefaultBatchBytes  = 32 << 20
)

// Leader serves a live store's replication feed over HTTP:
//
//	GET /sync/v1/manifest                       leader frontier + snapshot hashes
//	GET /sync/v1/blocks?month=M&seq=N[&max=K][&max_bytes=B]
//	                                            block frames from seq N on
//	GET /sync/v1/samples                        samples snapshot bytes
//	GET /sync/v1/stats                          stats snapshot bytes
//
// Blocks are immutable once committed, so every /blocks response
// stays valid forever; only the manifest moves. The store may keep
// ingesting while the leader serves — commitBlockLocked publishes a
// block's index entry only after its bytes are on disk.
type Leader struct {
	st  *store.Store
	mux *http.ServeMux

	requests     func(endpoint string) *obs.Counter
	blocksServed *obs.Counter
	bytesServed  *obs.Counter
}

// NewLeader wraps st. Metrics go to reg (nil = process default).
func NewLeader(st *store.Store, reg *obs.Registry) *Leader {
	if reg == nil {
		reg = obs.Default()
	}
	l := &Leader{
		st: st,
		requests: func(endpoint string) *obs.Counter {
			return reg.Counter("sync_leader_requests_total", "endpoint", endpoint)
		},
		blocksServed: reg.Counter("sync_leader_blocks_served_total"),
		bytesServed:  reg.Counter("sync_leader_bytes_served_total"),
	}
	l.mux = http.NewServeMux()
	l.mux.HandleFunc("/sync/v1/manifest", l.handleManifest)
	l.mux.HandleFunc("/sync/v1/blocks", l.handleBlocks)
	l.mux.HandleFunc("/sync/v1/samples", l.handleSamples)
	l.mux.HandleFunc("/sync/v1/stats", l.handleStats)
	return l
}

// ServeHTTP implements http.Handler.
func (l *Leader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mux.ServeHTTP(w, r)
}

// manifest snapshots the leader state. The snapshot hashes are
// recomputed per call — O(total samples), which at manifest-poll
// cadence is noise next to block transfer.
func (l *Leader) manifest() (Manifest, error) {
	state := l.st.ReplState()
	months := make([]MonthCursor, 0, len(state))
	for month, ms := range state {
		months = append(months, MonthCursor{Month: month, Blocks: ms.Blocks, Size: ms.FileSize})
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Month < months[j].Month })

	h := sha256.New()
	cw := &countWriter{w: h}
	if err := l.st.WriteSamplesSnapshot(cw); err != nil {
		return Manifest{}, err
	}
	m := Manifest{
		Months:      months,
		SamplesSize: cw.n,
		SamplesSHA:  hex.EncodeToString(h.Sum(nil)),
	}
	stats, err := l.st.StatsJSON()
	if err != nil {
		return Manifest{}, err
	}
	sum := sha256.Sum256(stats)
	m.StatsSize = int64(len(stats))
	m.StatsSHA = hex.EncodeToString(sum[:])
	return m, nil
}

type countWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (l *Leader) handleManifest(w http.ResponseWriter, r *http.Request) {
	l.requests("manifest").Inc()
	m, err := l.manifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(EncodeManifest(m))
}

// handleBlocks streams frames starting at ?seq. A seq beyond the
// leader's frontier is a divergent follower: 409, which the follower
// surfaces as ErrStaleCursor rather than retrying forever.
func (l *Leader) handleBlocks(w http.ResponseWriter, r *http.Request) {
	l.requests("blocks").Inc()
	q := r.URL.Query()
	month := q.Get("month")
	if !store.ValidMonthKey(month) {
		http.Error(w, "bad month", http.StatusBadRequest)
		return
	}
	seq, err := strconv.Atoi(q.Get("seq"))
	if err != nil || seq < 0 {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	maxBlocks := DefaultBatchBlocks
	if s := q.Get("max"); s != "" {
		if maxBlocks, err = strconv.Atoi(s); err != nil || maxBlocks < 1 || maxBlocks > DefaultBatchBlocks {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
	}
	maxBytes := int64(DefaultBatchBytes)
	if s := q.Get("max_bytes"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 1 || v > DefaultBatchBytes {
			http.Error(w, "bad max_bytes", http.StatusBadRequest)
			return
		}
		maxBytes = v
	}

	refs, err := l.st.BlocksSince(month, seq, maxBlocks, maxBytes)
	switch {
	case errors.Is(err, store.ErrUnknownBlock):
		http.Error(w, "cursor ahead of leader", http.StatusConflict)
		return
	case errors.Is(err, store.ErrNotIndexed):
		http.Error(w, "unknown month", http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, ref := range refs {
		payload, err := l.st.ReadBlock(ref)
		if err != nil {
			// Mid-stream failure: the partial body will fail frame
			// decode or length checks on the follower, which retries.
			fmt.Fprintf(w, "sync: read block: %v", err)
			return
		}
		frame := EncodeBlockFrame(BlockFrame{
			Month: ref.Month, Seq: ref.Seq, Offset: ref.Offset, Len: ref.Len,
			Rows: ref.Rows, Raw: ref.Raw, Ver: ref.Ver, Payload: payload,
		})
		if _, err := w.Write(frame); err != nil {
			return
		}
		l.blocksServed.Inc()
		l.bytesServed.Add(int64(len(payload)))
	}
}

func (l *Leader) handleSamples(w http.ResponseWriter, r *http.Request) {
	l.requests("samples").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := l.st.WriteSamplesSnapshot(w); err != nil {
		// Headers are gone; the truncated body fails the follower's
		// hash check.
		return
	}
}

func (l *Leader) handleStats(w http.ResponseWriter, r *http.Request) {
	l.requests("stats").Inc()
	b, err := l.st.StatsJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
