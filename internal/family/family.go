// Package family implements AVClass-style malware family labeling,
// the practice the paper cites in §3.1 (Sebastián et al.'s AVClass):
// given the raw detection strings of many engines, tokenize them,
// drop generic and engine-specific noise tokens, normalize aliases,
// and plurality-vote a family name for the sample.
//
// Like the rest of the library it is data-format faithful rather than
// signature faithful: it operates on the detection-label strings in
// scan reports and is exercised against the simulator's synthetic
// labels, whose shared per-sample tokens play the role real family
// names play for AVClass.
package family

import (
	"sort"
	"strings"
)

// generic tokens carry no family information and are dropped, closely
// following AVClass's default generic-token list.
var generic = map[string]bool{
	"trojan": true, "virus": true, "worm": true, "malware": true,
	"generic": true, "generickd": true, "gen": true, "agent": true,
	"win32": true, "win64": true, "w32": true, "w64": true, "msil": true,
	"android": true, "androidos": true, "linux": true, "elf": true,
	"html": true, "js": true, "php": true, "pdf": true, "script": true,
	"downloader": true, "dropper": true, "adware": true, "riskware": true,
	"heur": true, "heuristic": true, "suspicious": true, "malicious": true,
	"variant": true, "behaveslike": true, "ml": true, "ai": true,
	"unsafe": true, "confidence": true, "score": true, "high": true,
	"attribute": true, "highconfidence": true, "static": true,
	"application": true, "program": true, "file": true, "multi": true,
	"a": true, "b": true, "c": true, "d": true, "e": true,
	// The simulator's type tokens are generic too.
	"win32exe": true, "win32dll": true, "win64exe": true, "win64dll": true,
	"txt": true, "zip": true, "xml": true, "json": true, "dex": true,
	"elfexecutable": true, "elfsharedlibrary": true, "epub": true,
	"lnk": true, "fpx": true, "docx": true, "gzip": true, "jpeg": true,
	"null": true, "others": true,
}

// aliases maps known synonyms onto canonical family names (AVClass
// ships a large alias file; we include a representative seed that
// callers can extend).
var aliases = map[string]string{
	"zbot":         "zeus",
	"zeusbot":      "zeus",
	"kryptik":      "cryptik",
	"wannacrypt":   "wannacry",
	"wannacryptor": "wannacry",
	"locky":        "locky",
}

// Tokenize splits a raw detection label into candidate family tokens:
// lower-cased alphanumeric runs with generic tokens and short/numeric
// fragments removed, aliases normalized.
func Tokenize(label string) []string {
	if label == "" {
		return nil
	}
	lower := strings.ToLower(label)
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		cur.Reset()
		if len(tok) < 3 {
			return
		}
		if isNumeric(tok) {
			return
		}
		if generic[tok] {
			return
		}
		if canon, ok := aliases[tok]; ok {
			tok = canon
		}
		tokens = append(tokens, tok)
	}
	for _, r := range lower {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

func isNumeric(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Vote is one candidate family with its support.
type Vote struct {
	Family string
	// Engines is the number of engines whose label contained the
	// token (each engine votes once per token).
	Engines int
}

// Label selects a family by plurality over the engines' detection
// strings. It returns ok == false when no engine contributed a
// non-generic token, or when the winner has fewer than minEngines
// votes (AVClass's "SINGLETON" outcome).
func Label(labels []string, minEngines int) (Vote, bool) {
	if minEngines < 1 {
		minEngines = 1
	}
	counts := map[string]int{}
	for _, l := range labels {
		seen := map[string]bool{}
		for _, tok := range Tokenize(l) {
			if !seen[tok] {
				seen[tok] = true
				counts[tok]++
			}
		}
	}
	if len(counts) == 0 {
		return Vote{}, false
	}
	// Deterministic winner: highest count, ties broken
	// lexicographically.
	families := make([]string, 0, len(counts))
	for f := range counts {
		families = append(families, f)
	}
	sort.Slice(families, func(i, j int) bool {
		if counts[families[i]] != counts[families[j]] {
			return counts[families[i]] > counts[families[j]]
		}
		return families[i] < families[j]
	})
	best := Vote{Family: families[0], Engines: counts[families[0]]}
	if best.Engines < minEngines {
		return best, false
	}
	return best, true
}

// AddAlias extends the alias table (e.g. from a site-specific list).
// Later Tokenize calls see the addition; not safe to call concurrently
// with Tokenize.
func AddAlias(from, to string) {
	aliases[strings.ToLower(from)] = strings.ToLower(to)
}

// AddGeneric extends the generic-token list.
func AddGeneric(token string) {
	generic[strings.ToLower(token)] = true
}
