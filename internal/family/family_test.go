package family

import (
	"reflect"
	"testing"
)

func TestTokenizeDropsGenerics(t *testing.T) {
	got := Tokenize("Trojan.GenericKD.31632154")
	if len(got) != 0 {
		t.Fatalf("tokens = %v, want none (all generic/numeric)", got)
	}
}

func TestTokenizeExtractsFamily(t *testing.T) {
	got := Tokenize("Win32.Trojan.Emotet.A")
	want := []string{"emotet"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
}

func TestTokenizeNormalizesAliases(t *testing.T) {
	got := Tokenize("Trojan-Spy.Win32.Zbot.abcd")
	found := false
	for _, tok := range got {
		if tok == "zeus" {
			found = true
		}
		if tok == "zbot" {
			t.Fatal("alias not normalized")
		}
	}
	if !found {
		t.Fatalf("tokens = %v, want zeus", got)
	}
}

func TestTokenizeShortAndNumeric(t *testing.T) {
	if got := Tokenize("W32/A.12345.xy"); len(got) != 0 {
		t.Fatalf("tokens = %v", got)
	}
	if got := Tokenize(""); got != nil {
		t.Fatalf("empty label tokens = %v", got)
	}
}

func TestLabelPluralityVote(t *testing.T) {
	labels := []string{
		"Trojan.Emotet.A",
		"Win32/Emotet.gen!B",
		"Emotet.Malware",
		"Trojan.Dridex.C",
	}
	v, ok := Label(labels, 2)
	if !ok {
		t.Fatal("expected a family")
	}
	if v.Family != "emotet" || v.Engines != 3 {
		t.Fatalf("vote = %+v", v)
	}
}

func TestLabelSingletonBelowThreshold(t *testing.T) {
	labels := []string{"Trojan.Emotet.A", "Generic.Malware"}
	v, ok := Label(labels, 2)
	if ok {
		t.Fatalf("one-engine family should be a singleton, got %+v", v)
	}
	if v.Family != "emotet" || v.Engines != 1 {
		t.Fatalf("best candidate = %+v", v)
	}
}

func TestLabelNoTokens(t *testing.T) {
	if _, ok := Label([]string{"Trojan.Generic", ""}, 1); ok {
		t.Fatal("generic-only labels should produce no family")
	}
}

func TestLabelOneVotePerEngine(t *testing.T) {
	// An engine repeating the family token twice still counts once.
	labels := []string{"Emotet.Emotet", "Dridex.x", "Dridex.y"}
	v, ok := Label(labels, 1)
	if !ok || v.Family != "dridex" || v.Engines != 2 {
		t.Fatalf("vote = %+v ok=%v", v, ok)
	}
}

func TestLabelDeterministicTieBreak(t *testing.T) {
	labels := []string{"Alpha.x", "Beta.y"}
	v, _ := Label(labels, 1)
	if v.Family != "alpha" {
		t.Fatalf("tie should break lexicographically, got %s", v.Family)
	}
}

func TestAddAliasAndGeneric(t *testing.T) {
	AddAlias("emotetcrypt", "emotet")
	got := Tokenize("Win32.EmotetCrypt.A")
	found := false
	for _, tok := range got {
		if tok == "emotet" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tokens = %v", got)
	}
	AddGeneric("floof")
	if got := Tokenize("Floof.Emotet"); len(got) != 1 || got[0] != "emotet" {
		t.Fatalf("tokens = %v", got)
	}
}
