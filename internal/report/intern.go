package report

import "sync"

// The decode hot paths see the same small vocabulary millions of
// times: ~70 engine display names, the handful of verdict categories,
// the file-type labels, and the malware-family label strings. Without
// interning, every decoded row re-allocates each of them; with it,
// all rows share one string header (and one backing array) per
// distinct value, which is most of the decode-side allocation win.

// internCap bounds the table so an adversarial vocabulary (arbitrary
// label strings from a hostile feed) cannot grow it without bound.
// Past the cap, lookups still hit existing entries and misses simply
// return an uninterned copy.
const internCap = 8192

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 256)
)

// Intern returns the canonical instance of s, registering it if the
// table has room. The returned string is equal to s.
func Intern(s string) string {
	internMu.RLock()
	v, ok := internTab[s]
	internMu.RUnlock()
	if ok {
		return v
	}
	return internPut(s)
}

// InternBytes returns the canonical string equal to b. When b is
// already interned the lookup allocates nothing (the string(b)
// conversion used only as a map key does not copy).
func InternBytes(b []byte) string {
	internMu.RLock()
	v, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return v
	}
	return internPut(string(b))
}

func internPut(s string) string {
	internMu.Lock()
	defer internMu.Unlock()
	if v, ok := internTab[s]; ok {
		return v
	}
	if len(internTab) < internCap {
		internTab[s] = s
	}
	return s
}
