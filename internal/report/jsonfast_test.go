package report

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// fuzzEnvelope builds an Envelope from fuzz primitives, including the
// degenerate shapes the encoder must normalize (unsorted results,
// duplicate engine names, invalid UTF-8, zero times, odd verdicts).
func fuzzEnvelope(sha, ftype string, size, t1, t2, t3 int64, times int,
	eng1, lab1 string, ver1 int, v1 int8,
	eng2, lab2 string, ver2 int, v2 int8) Envelope {
	return Envelope{
		Meta: SampleMeta{
			SHA256:              sha,
			FileType:            ftype,
			Size:                size,
			FirstSubmissionDate: fromUnix(t1),
			LastAnalysisDate:    fromUnix(t2),
			LastSubmissionDate:  fromUnix(t3),
			TimesSubmitted:      times,
		},
		Scan: ScanReport{
			SHA256:       sha,
			FileType:     ftype,
			AnalysisDate: fromUnix(t2),
			Results: []EngineResult{
				{Engine: eng1, Verdict: Verdict(v1), Label: lab1, SignatureVersion: ver1},
				{Engine: eng2, Verdict: Verdict(v2), Label: lab2, SignatureVersion: ver2},
			},
		},
	}
}

var encodeSeeds = []Envelope{
	{},
	fuzzEnvelope("aa11", "Win32 EXE", 1234, 1620000000, 1620000600, 1620000000, 2,
		"BitDefender", "Trojan.GenericKD", 41, 1, "Avast", "", 7, 0),
	// Unsorted names: map-order normalization must sort them.
	fuzzEnvelope("bb22", "PDF", 9, 0, 0, 0, 0,
		"ZoneAlarm", "W97M/Dropper", -3, 1, "AVG", "", 0, -1),
	// Duplicate engine: last occurrence must win, stats count both.
	fuzzEnvelope("cc33", "ELF", 1, 1, 1, 1, 1,
		"Dup", "first", 1, 1, "Dup", "second", 2, 0),
	// Hostile strings and an out-of-range verdict.
	fuzzEnvelope("sha\xffbad", "type<&>\u2028", -5, -1, 9e9, 0, -2,
		"Eng\xc3", "lab\xe2\x28el", 1<<40, 5, "b\"q\\s", "tab\tnl\n", -1<<40, -9),
}

func TestAppendJSONMatchesReflectiveEncoder(t *testing.T) {
	for i, env := range encodeSeeds {
		want, err := env.marshalSlow()
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		got := env.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d:\n fast %s\n slow %s", i, got, want)
		}
		// json.Marshal routes through MarshalJSON and must agree too.
		viaMarshal, err := json.Marshal(env)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if !bytes.Equal(viaMarshal, want) {
			t.Errorf("seed %d: json.Marshal diverges:\n got %s\nwant %s", i, viaMarshal, want)
		}
	}
}

func FuzzEnvelopeEncodeDifferential(f *testing.F) {
	f.Add("aa11", "Win32 EXE", int64(1234), int64(1620000000), int64(1620000600), int64(0), 2,
		"BitDefender", "Trojan.GenericKD", 41, int8(1), "Avast", "", 7, int8(0))
	f.Add("sha\xffbad", "t<&>", int64(-5), int64(-1), int64(0), int64(1), -2,
		"Dup", "a", 1, int8(5), "Dup", "b", -2, int8(-9))
	f.Fuzz(func(t *testing.T, sha, ftype string, size, t1, t2, t3 int64, times int,
		eng1, lab1 string, ver1 int, v1 int8,
		eng2, lab2 string, ver2 int, v2 int8) {
		env := fuzzEnvelope(sha, ftype, size, t1, t2, t3, times, eng1, lab1, ver1, v1, eng2, lab2, ver2, v2)
		want, err := env.marshalSlow()
		if err != nil {
			t.Skip()
		}
		got := env.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("fast %s\nslow %s", got, want)
		}
	})
}

// FuzzEnvelopeDecodeDifferential feeds arbitrary bytes to the
// fast-path-with-fallback UnmarshalJSON and to the reflective decoder
// alone; results and errors must be indistinguishable.
func FuzzEnvelopeDecodeDifferential(f *testing.F) {
	for _, env := range encodeSeeds {
		f.Add(env.AppendJSON(nil))
	}
	f.Add([]byte(`{"data":{"id":"x","type":"file","attributes":{}}}`))
	f.Add([]byte(`{"Data":{"ID":"x","TYPE":"file"}}`))                            // case-insensitive match
	f.Add([]byte(`{"data":{"type":"url"}}`))                                      // wrong type error
	f.Add([]byte(`{"data":null}`))                                                // null handling
	f.Add([]byte(`{"data":{"attributes":{"size":1e3}}}`))                         // float into int64
	f.Add([]byte(`{"data":{"attributes":{"last_analysis_results":{"E":null}}}}`)) // null member
	f.Add([]byte(`{"data":{"attributes":{"last_analysis_results":{"E":{"engine_version":" 41x"}}}}}`))
	f.Add([]byte(`{"data":{"id":"a"},"data":{"id":"b"}}`))       // duplicate keys, last wins
	f.Add([]byte(`{"data":{"attributes":{"unknown_field":3}}}`)) // unknown key skip
	f.Add([]byte(`{"data":{"id":"x"}} trailing`))                // trailing junk error
	f.Fuzz(func(t *testing.T, raw []byte) {
		var fast, slow Envelope
		errFast := fast.UnmarshalJSON(raw)
		errSlow := slow.unmarshalSlow(raw)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("error mismatch on %q:\n fast: %v\n slow: %v", raw, errFast, errSlow)
		}
		if errFast != nil {
			if errFast.Error() != errSlow.Error() {
				t.Fatalf("error text mismatch on %q:\n fast: %v\n slow: %v", raw, errFast, errSlow)
			}
			return
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("decode mismatch on %q:\n fast: %+v\n slow: %+v", raw, fast, slow)
		}
	})
}

// FuzzEnvelopeRoundTrip pins encode→decode→encode byte stability for
// valid envelopes, the property the store's read-modify-write paths
// rely on.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	for _, env := range encodeSeeds {
		f.Add(env.AppendJSON(nil))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var env Envelope
		if err := env.UnmarshalJSON(raw); err != nil {
			t.Skip()
		}
		first := env.AppendJSON(nil)
		var env2 Envelope
		if err := env2.UnmarshalJSON(first); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\n%s", err, first)
		}
		second := env2.AppendJSON(nil)
		if !bytes.Equal(first, second) {
			t.Fatalf("unstable round trip:\n first %s\nsecond %s", first, second)
		}
	})
}

func TestUnmarshalWrongTypeError(t *testing.T) {
	var env Envelope
	err := env.UnmarshalJSON([]byte(`{"data":{"id":"x","type":"url","attributes":{}}}`))
	if err == nil || err.Error() != `report: unexpected data type "url"` {
		t.Fatalf("got %v", err)
	}
}

func TestUnmarshalInternsVocabulary(t *testing.T) {
	doc := []byte(`{"data":{"id":"deadbeef","type":"file","attributes":{` +
		`"type_description":"Win32 EXE","size":10,` +
		`"last_analysis_results":{"InternProbe":{"category":"malicious","result":"Fam.X","engine_version":"3"}}}}}`)
	var a, b Envelope
	if err := a.UnmarshalJSON(doc); err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalJSON(append([]byte(nil), doc...)); err != nil {
		t.Fatal(err)
	}
	if !sameBacking(a.Scan.Results[0].Engine, b.Scan.Results[0].Engine) {
		t.Error("engine names not interned across decodes")
	}
	if !sameBacking(a.Scan.Results[0].Label, b.Scan.Results[0].Label) {
		t.Error("labels not interned across decodes")
	}
	if !sameBacking(a.Meta.FileType, b.Meta.FileType) {
		t.Error("file types not interned across decodes")
	}
}

// TestUnmarshalDoesNotAliasInput proves decoded strings survive the
// caller recycling the input buffer — required now that vtclient
// decodes from pooled body buffers.
func TestUnmarshalDoesNotAliasInput(t *testing.T) {
	doc := []byte(`{"data":{"id":"feedface","type":"file","attributes":{` +
		`"type_description":"Alias Probe Type","size":1,` +
		`"last_analysis_results":{"AliasProbeEngine":{"category":"malicious","result":"Alias.Label","engine_version":"1"}}}}}`)
	var env Envelope
	if err := env.UnmarshalJSON(doc); err != nil {
		t.Fatal(err)
	}
	for i := range doc {
		doc[i] = 'X'
	}
	if env.Meta.SHA256 != "feedface" || env.Meta.FileType != "Alias Probe Type" {
		t.Fatalf("meta aliases input: %+v", env.Meta)
	}
	r := env.Scan.Results[0]
	if r.Engine != "AliasProbeEngine" || r.Label != "Alias.Label" {
		t.Fatalf("result aliases input: %+v", r)
	}
}

func BenchmarkEnvelopeAppendJSON(b *testing.B) {
	env := encodeSeeds[1]
	buf := env.AppendJSON(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = env.AppendJSON(buf[:0])
	}
}

func BenchmarkEnvelopeMarshalReflect(b *testing.B) {
	env := encodeSeeds[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.marshalSlow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeUnmarshal(b *testing.B) {
	raw := encodeSeeds[1].AppendJSON(nil)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var env Envelope
		if err := env.UnmarshalJSON(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeUnmarshalReflect(b *testing.B) {
	raw := encodeSeeds[1].AppendJSON(nil)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var env Envelope
		if err := env.unmarshalSlow(raw); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = time.Time{}
