package report

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func sameBacking(a, b string) bool {
	return unsafe.StringData(a) == unsafe.StringData(b)
}

func TestInternSharesBacking(t *testing.T) {
	a := Intern(string([]byte("TestEngine-Alpha")))
	b := Intern(string([]byte("TestEngine-Alpha")))
	if a != b {
		t.Fatalf("interned values differ: %q %q", a, b)
	}
	if !sameBacking(a, b) {
		t.Fatal("interned strings do not share a backing array")
	}
}

func TestInternBytesHitsWithoutCopy(t *testing.T) {
	canon := Intern("TestEngine-Beta")
	got := InternBytes([]byte("TestEngine-Beta"))
	if !sameBacking(canon, got) {
		t.Fatal("InternBytes did not return the canonical instance")
	}
	allocs := testing.AllocsPerRun(100, func() {
		InternBytes([]byte{'T', 'e', 's', 't', 'E', 'n', 'g', 'i', 'n', 'e', '-', 'B', 'e', 't', 'a'})
	})
	// One alloc is the []byte literal itself; the lookup must add none.
	if allocs > 1 {
		t.Fatalf("InternBytes hit allocates %.1f times per call", allocs)
	}
}

func TestInternCapBounded(t *testing.T) {
	// Drain the flood afterwards so a full table doesn't starve the
	// real vocabulary in tests that run later in this package.
	defer func() {
		internMu.Lock()
		for i := 0; i < internCap+100; i++ {
			delete(internTab, fmt.Sprintf("flood-%d", i))
		}
		internMu.Unlock()
	}()
	for i := 0; i < internCap+100; i++ {
		Intern(fmt.Sprintf("flood-%d", i))
	}
	internMu.RLock()
	n := len(internTab)
	internMu.RUnlock()
	if n > internCap {
		t.Fatalf("intern table grew to %d entries, cap %d", n, internCap)
	}
	// Past the cap, Intern still returns a correct (uninterned) value.
	if got := Intern("past-cap-value"); got != "past-cap-value" {
		t.Fatalf("got %q", got)
	}
}

func TestInternConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := fmt.Sprintf("conc-%d", i%17)
				if got := Intern(v); got != v {
					t.Errorf("Intern(%q) = %q", v, got)
					return
				}
				if got := InternBytes([]byte(v)); got != v {
					t.Errorf("InternBytes(%q) = %q", v, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
