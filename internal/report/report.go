// Package report defines the scan-report data model shared by the
// simulator, the HTTP API, the collector, the store, and every
// analysis: per-engine verdicts, the AV-Rank aggregate ("positives" in
// VT reports), sample metadata with the three API-sensitive fields of
// Table 1, and a VirusTotal-v3-style JSON wire encoding.
package report

import (
	"errors"
	"fmt"
	"time"
)

// Verdict is a single engine's decision for a single scan, following
// the paper's R matrix encoding (Equation 1): 1 malicious, 0 benign,
// -1 undetected (the engine was inactive, timed out, or abstained).
type Verdict int8

const (
	// Undetected means the engine produced no verdict for this scan.
	Undetected Verdict = -1
	// Benign means the engine examined the file and found it clean.
	Benign Verdict = 0
	// Malicious means the engine flagged the file.
	Malicious Verdict = 1
)

// String implements fmt.Stringer using VT's category vocabulary.
func (v Verdict) String() string {
	switch v {
	case Malicious:
		return "malicious"
	case Benign:
		return "harmless"
	case Undetected:
		return "undetected"
	default:
		return fmt.Sprintf("verdict(%d)", int8(v))
	}
}

// ParseVerdict is the inverse of String. Unknown categories map to
// Undetected, mirroring how analyses treat exotic VT categories
// (timeout, type-unsupported, failure).
func ParseVerdict(s string) Verdict {
	switch s {
	case "malicious":
		return Malicious
	case "harmless", "benign", "clean":
		return Benign
	default:
		return Undetected
	}
}

// EngineResult is one engine's entry in a scan report.
type EngineResult struct {
	// Engine is the engine's display name (e.g. "BitDefender").
	Engine string
	// Verdict is the engine's decision.
	Verdict Verdict
	// Label is the malware-family label string for malicious verdicts
	// (e.g. "Trojan.GenericKD"); empty otherwise.
	Label string
	// SignatureVersion identifies the engine's signature database at
	// scan time. A change between two scans marks an engine update —
	// the paper's §5.5 attributes ~60% of flips to these.
	SignatureVersion int
}

// ScanReport is one analysis of one sample: the unit the premium feed
// delivers 847 million of in the paper's dataset.
type ScanReport struct {
	// SHA256 identifies the scanned sample.
	SHA256 string
	// FileType is VT's type label for the sample (e.g. "Win32 EXE").
	FileType string
	// AnalysisDate is when this scan ran.
	AnalysisDate time.Time
	// Results holds the participating engines' verdicts.
	Results []EngineResult
	// AVRank is the number of engines with a Malicious verdict — the
	// "positives" field. Invariant: AVRank == CountMalicious(Results).
	AVRank int
	// EnginesTotal is the number of engines that produced any verdict
	// (malicious, benign), i.e. excluding Undetected.
	EnginesTotal int
}

// SampleMeta is the per-sample metadata VT maintains across scans.
// Its three trailing fields follow the update rules of Table 1.
type SampleMeta struct {
	SHA256   string
	FileType string
	Size     int64
	// FirstSubmissionDate is when the sample first reached the
	// service. Samples first submitted inside the collection window
	// are the paper's "fresh" samples (91.76% of the dataset).
	FirstSubmissionDate time.Time
	// LastAnalysisDate updates on upload and rescan; never on report.
	LastAnalysisDate time.Time
	// LastSubmissionDate updates on upload only.
	LastSubmissionDate time.Time
	// TimesSubmitted increments on upload only.
	TimesSubmitted int
}

// ComputeAVRank counts Malicious verdicts; it defines the invariant
// checked by Validate and by property tests across the pipeline.
func ComputeAVRank(results []EngineResult) int {
	n := 0
	for _, r := range results {
		if r.Verdict == Malicious {
			n++
		}
	}
	return n
}

// CountActive counts engines with a non-Undetected verdict.
func CountActive(results []EngineResult) int {
	n := 0
	for _, r := range results {
		if r.Verdict != Undetected {
			n++
		}
	}
	return n
}

// Validation errors.
var (
	ErrNoSHA256       = errors.New("report: missing sha256")
	ErrAVRankMismatch = errors.New("report: AVRank does not equal count of malicious verdicts")
	ErrTotalMismatch  = errors.New("report: EnginesTotal does not equal count of active verdicts")
	ErrZeroTime       = errors.New("report: zero analysis date")
	ErrDuplicateEng   = errors.New("report: duplicate engine entry")
)

// Validate checks the report's internal invariants. Every report the
// simulator emits and the store persists must validate.
func (r *ScanReport) Validate() error {
	if r.SHA256 == "" {
		return ErrNoSHA256
	}
	if r.AnalysisDate.IsZero() {
		return ErrZeroTime
	}
	if got := ComputeAVRank(r.Results); got != r.AVRank {
		return fmt.Errorf("%w: have %d, computed %d", ErrAVRankMismatch, r.AVRank, got)
	}
	if got := CountActive(r.Results); got != r.EnginesTotal {
		return fmt.Errorf("%w: have %d, computed %d", ErrTotalMismatch, r.EnginesTotal, got)
	}
	seen := make(map[string]bool, len(r.Results))
	for _, er := range r.Results {
		if seen[er.Engine] {
			return fmt.Errorf("%w: %s", ErrDuplicateEng, er.Engine)
		}
		seen[er.Engine] = true
	}
	return nil
}

// VerdictOf returns the verdict of the named engine in this report,
// or Undetected if the engine did not participate.
func (r *ScanReport) VerdictOf(engine string) Verdict {
	for _, er := range r.Results {
		if er.Engine == engine {
			return er.Verdict
		}
	}
	return Undetected
}

// Clone returns a deep copy of the report. The simulator hands
// callers clones so stored history cannot be mutated.
func (r *ScanReport) Clone() *ScanReport {
	c := *r
	c.Results = make([]EngineResult, len(r.Results))
	copy(c.Results, r.Results)
	return &c
}

// History is a sample's scan reports in ascending time order; the
// unit of every dynamics analysis.
type History struct {
	Meta    SampleMeta
	Reports []*ScanReport
}

// AVRanks extracts the AV-Rank sequence p_1..p_n.
func (h *History) AVRanks() []int {
	ps := make([]int, len(h.Reports))
	for i, r := range h.Reports {
		ps[i] = r.AVRank
	}
	return ps
}

// Times extracts the analysis timestamps.
func (h *History) Times() []time.Time {
	ts := make([]time.Time, len(h.Reports))
	for i, r := range h.Reports {
		ts[i] = r.AnalysisDate
	}
	return ts
}

// SortedByTime reports whether the history is in ascending time order
// (ties allowed).
func (h *History) SortedByTime() bool {
	for i := 1; i < len(h.Reports); i++ {
		if h.Reports[i].AnalysisDate.Before(h.Reports[i-1].AnalysisDate) {
			return false
		}
	}
	return true
}
