package report

import (
	"testing"
	"testing/quick"
	"time"
)

var testTime = time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)

func sampleResults() []EngineResult {
	return []EngineResult{
		{Engine: "Avast", Verdict: Malicious, Label: "Win32.Trojan", SignatureVersion: 3},
		{Engine: "AVG", Verdict: Malicious, Label: "Win32.Trojan", SignatureVersion: 3},
		{Engine: "BitDefender", Verdict: Benign, SignatureVersion: 7},
		{Engine: "ClamAV", Verdict: Undetected, SignatureVersion: 1},
	}
}

func validReport() *ScanReport {
	res := sampleResults()
	return &ScanReport{
		SHA256:       "abc123",
		FileType:     "Win32 EXE",
		AnalysisDate: testTime,
		Results:      res,
		AVRank:       ComputeAVRank(res),
		EnginesTotal: CountActive(res),
	}
}

func TestVerdictStringRoundTrip(t *testing.T) {
	for _, v := range []Verdict{Malicious, Benign, Undetected} {
		if got := ParseVerdict(v.String()); got != v {
			t.Fatalf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseVerdictAliases(t *testing.T) {
	if ParseVerdict("clean") != Benign || ParseVerdict("benign") != Benign {
		t.Fatal("benign aliases not recognized")
	}
	if ParseVerdict("timeout") != Undetected || ParseVerdict("") != Undetected {
		t.Fatal("unknown categories should map to Undetected")
	}
}

func TestComputeAVRank(t *testing.T) {
	if got := ComputeAVRank(sampleResults()); got != 2 {
		t.Fatalf("AVRank = %d, want 2", got)
	}
	if got := ComputeAVRank(nil); got != 0 {
		t.Fatalf("AVRank(nil) = %d", got)
	}
}

func TestCountActive(t *testing.T) {
	if got := CountActive(sampleResults()); got != 3 {
		t.Fatalf("CountActive = %d, want 3", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesAVRankMismatch(t *testing.T) {
	r := validReport()
	r.AVRank++
	if err := r.Validate(); err == nil {
		t.Fatal("expected AVRank mismatch error")
	}
}

func TestValidateCatchesTotalMismatch(t *testing.T) {
	r := validReport()
	r.EnginesTotal = 0
	if err := r.Validate(); err == nil {
		t.Fatal("expected total mismatch error")
	}
}

func TestValidateCatchesMissingHashAndTime(t *testing.T) {
	r := validReport()
	r.SHA256 = ""
	if err := r.Validate(); err != ErrNoSHA256 {
		t.Fatalf("err = %v", err)
	}
	r = validReport()
	r.AnalysisDate = time.Time{}
	if err := r.Validate(); err != ErrZeroTime {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesDuplicateEngine(t *testing.T) {
	r := validReport()
	r.Results = append(r.Results, r.Results[0])
	r.AVRank = ComputeAVRank(r.Results)
	r.EnginesTotal = CountActive(r.Results)
	if err := r.Validate(); err == nil {
		t.Fatal("expected duplicate engine error")
	}
}

func TestVerdictOf(t *testing.T) {
	r := validReport()
	if got := r.VerdictOf("Avast"); got != Malicious {
		t.Fatalf("VerdictOf(Avast) = %v", got)
	}
	if got := r.VerdictOf("NoSuchEngine"); got != Undetected {
		t.Fatalf("VerdictOf(missing) = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := validReport()
	c := r.Clone()
	c.Results[0].Verdict = Benign
	if r.Results[0].Verdict != Malicious {
		t.Fatal("Clone shares Results backing array")
	}
}

func TestHistoryAccessors(t *testing.T) {
	r1 := validReport()
	r2 := validReport()
	r2.AnalysisDate = testTime.Add(24 * time.Hour)
	r2.Results = r2.Results[:2]
	r2.AVRank = 2
	r2.EnginesTotal = 2
	h := &History{Reports: []*ScanReport{r1, r2}}
	ranks := h.AVRanks()
	if len(ranks) != 2 || ranks[0] != 2 || ranks[1] != 2 {
		t.Fatalf("AVRanks = %v", ranks)
	}
	times := h.Times()
	if !times[1].After(times[0]) {
		t.Fatalf("Times = %v", times)
	}
	if !h.SortedByTime() {
		t.Fatal("SortedByTime = false for sorted history")
	}
	h.Reports[0], h.Reports[1] = h.Reports[1], h.Reports[0]
	if h.SortedByTime() {
		t.Fatal("SortedByTime = true for unsorted history")
	}
}

func TestEnvelopeJSONRoundTrip(t *testing.T) {
	scan := validReport()
	env := Envelope{
		Meta: SampleMeta{
			SHA256:              scan.SHA256,
			FileType:            scan.FileType,
			Size:                4096,
			FirstSubmissionDate: testTime.Add(-time.Hour),
			LastAnalysisDate:    scan.AnalysisDate,
			LastSubmissionDate:  testTime.Add(-time.Hour),
			TimesSubmitted:      2,
		},
		Scan: *scan,
	}
	b, err := env.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back.Meta.SHA256 != env.Meta.SHA256 ||
		back.Meta.FileType != env.Meta.FileType ||
		back.Meta.Size != env.Meta.Size ||
		back.Meta.TimesSubmitted != env.Meta.TimesSubmitted {
		t.Fatalf("meta round trip: %+v", back.Meta)
	}
	if !back.Meta.LastAnalysisDate.Equal(env.Meta.LastAnalysisDate) {
		t.Fatalf("last_analysis_date: %v vs %v", back.Meta.LastAnalysisDate, env.Meta.LastAnalysisDate)
	}
	if back.Scan.AVRank != scan.AVRank {
		t.Fatalf("AVRank round trip: %d vs %d", back.Scan.AVRank, scan.AVRank)
	}
	if back.Scan.EnginesTotal != scan.EnginesTotal {
		t.Fatalf("EnginesTotal round trip: %d", back.Scan.EnginesTotal)
	}
	if err := back.Scan.Validate(); err != nil {
		t.Fatalf("decoded scan invalid: %v", err)
	}
	if got := back.Scan.VerdictOf("Avast"); got != Malicious {
		t.Fatalf("decoded verdict = %v", got)
	}
	if got := back.Scan.VerdictOf("ClamAV"); got != Undetected {
		t.Fatalf("decoded undetected verdict = %v", got)
	}
}

func TestEnvelopeRejectsWrongType(t *testing.T) {
	var e Envelope
	err := e.UnmarshalJSON([]byte(`{"data":{"id":"x","type":"url","attributes":{}}}`))
	if err == nil {
		t.Fatal("expected error for non-file data type")
	}
}

func TestEnvelopeZeroTimesEncodeAsZero(t *testing.T) {
	env := Envelope{Meta: SampleMeta{SHA256: "h"}, Scan: ScanReport{SHA256: "h"}}
	b, err := env.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !back.Meta.LastAnalysisDate.IsZero() {
		t.Fatalf("zero time did not round trip: %v", back.Meta.LastAnalysisDate)
	}
}

// Property: for any random verdict multiset, AVRank invariant holds
// after an encode/decode cycle.
func TestQuickEnvelopeAVRankInvariant(t *testing.T) {
	f := func(verdicts []int8) bool {
		results := make([]EngineResult, len(verdicts))
		for i, v := range verdicts {
			var vd Verdict
			switch v % 3 {
			case 0:
				vd = Benign
			case 1:
				vd = Malicious
			default:
				vd = Undetected
			}
			results[i] = EngineResult{Engine: engineName(i), Verdict: vd, SignatureVersion: 1}
		}
		scan := ScanReport{
			SHA256:       "hash",
			FileType:     "TXT",
			AnalysisDate: testTime,
			Results:      results,
			AVRank:       ComputeAVRank(results),
			EnginesTotal: CountActive(results),
		}
		env := Envelope{Meta: SampleMeta{SHA256: "hash", FileType: "TXT", LastAnalysisDate: testTime}, Scan: scan}
		b, err := env.MarshalJSON()
		if err != nil {
			return false
		}
		var back Envelope
		if err := back.UnmarshalJSON(b); err != nil {
			return false
		}
		return back.Scan.AVRank == scan.AVRank &&
			back.Scan.EnginesTotal == scan.EnginesTotal &&
			back.Scan.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func engineName(i int) string {
	return "eng" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}
