package report

import (
	"encoding/json"
	"testing"
)

// FuzzEnvelopeUnmarshal hardens the wire decoder against arbitrary
// input: the collector parses feed bytes from the network, so a
// malformed envelope must produce an error, never a panic, and any
// successfully decoded envelope must satisfy the AVRank invariants.
func FuzzEnvelopeUnmarshal(f *testing.F) {
	// Seed with a valid envelope and assorted near-misses.
	valid := Envelope{
		Meta: SampleMeta{SHA256: "abc", FileType: "TXT", TimesSubmitted: 2},
		Scan: ScanReport{SHA256: "abc", FileType: "TXT"},
	}
	if b, err := valid.MarshalJSON(); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"data":{"type":"file","id":"x","attributes":{}}}`))
	f.Add([]byte(`{"data":{"type":"file","id":"x","attributes":{"last_analysis_results":{"E":{"category":"malicious"}}}}}`))
	f.Add([]byte(`{"data":{"type":"url"}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"data":{"type":"file","attributes":{"times_submitted":-1}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := env.UnmarshalJSON(data); err != nil {
			return // malformed input must only error
		}
		// Decoded envelopes must uphold the counting invariants.
		if got := ComputeAVRank(env.Scan.Results); got != env.Scan.AVRank {
			t.Fatalf("AVRank invariant broken: %d vs %d", env.Scan.AVRank, got)
		}
		if got := CountActive(env.Scan.Results); got != env.Scan.EnginesTotal {
			t.Fatalf("EnginesTotal invariant broken: %d vs %d", env.Scan.EnginesTotal, got)
		}
		// Re-encoding must succeed and re-decode to the same counts.
		b, err := env.MarshalJSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Envelope
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Scan.AVRank != env.Scan.AVRank {
			t.Fatalf("round trip changed AVRank: %d vs %d", back.Scan.AVRank, env.Scan.AVRank)
		}
	})
}

// FuzzVerdictParse checks the category parser total over arbitrary
// strings.
func FuzzVerdictParse(f *testing.F) {
	for _, s := range []string{"malicious", "harmless", "benign", "clean", "timeout", "", "MALICIOUS"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v := ParseVerdict(s)
		if v != Malicious && v != Benign && v != Undetected {
			t.Fatalf("ParseVerdict(%q) = %d", s, v)
		}
		// String of a parsed verdict must re-parse to itself.
		if got := ParseVerdict(v.String()); got != v {
			t.Fatalf("verdict %v not stable under String/Parse", v)
		}
	})
}

// FuzzScanReportValidate ensures Validate never panics on arbitrary
// JSON-shaped reports.
func FuzzScanReportValidate(f *testing.F) {
	f.Add([]byte(`{"SHA256":"x","AVRank":1}`))
	f.Add([]byte(`{"Results":[{"Engine":"a","Verdict":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var r ScanReport
		if err := json.Unmarshal(data, &r); err != nil {
			return
		}
		_ = r.Validate() // must not panic
	})
}
