package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"vtdynamics/internal/jsonx"
)

// VirusTotal-v3-style wire format. The API serves and the collector
// parses this shape:
//
//	{
//	  "data": {
//	    "id": "<sha256>",
//	    "type": "file",
//	    "attributes": {
//	      "type_description": "Win32 EXE",
//	      "size": 1234,
//	      "first_submission_date": 1620000000,
//	      "last_analysis_date": 1620000600,
//	      "last_submission_date": 1620000000,
//	      "times_submitted": 2,
//	      "last_analysis_stats": {"malicious": 3, "harmless": 60, "undetected": 7},
//	      "last_analysis_results": {
//	        "BitDefender": {"category": "malicious", "result": "Trojan.X", "engine_version": "41"}
//	      }
//	    }
//	  }
//	}
//
// Dates are Unix seconds, matching VT.
//
// Encoding and decoding both have a hand-rolled hot path (AppendJSON
// and the cursor-based section of UnmarshalJSON) plus a reflective
// slow path over the wire* structs below. The hot path is pinned
// byte-compatible with the slow one by differential fuzzers in
// jsonfast_test.go; the decoder falls back to the reflective path on
// any input outside its strict subset, so observable behavior is
// exactly encoding/json's.

type wireEnvelope struct {
	Data wireData `json:"data"`
}

type wireData struct {
	ID         string         `json:"id"`
	Type       string         `json:"type"`
	Attributes wireAttributes `json:"attributes"`
}

type wireAttributes struct {
	TypeDescription     string                      `json:"type_description"`
	Size                int64                       `json:"size"`
	FirstSubmissionDate int64                       `json:"first_submission_date"`
	LastAnalysisDate    int64                       `json:"last_analysis_date"`
	LastSubmissionDate  int64                       `json:"last_submission_date"`
	TimesSubmitted      int                         `json:"times_submitted"`
	LastAnalysisStats   wireStats                   `json:"last_analysis_stats"`
	LastAnalysisResults map[string]wireEngineResult `json:"last_analysis_results"`
}

type wireStats struct {
	Malicious  int `json:"malicious"`
	Harmless   int `json:"harmless"`
	Undetected int `json:"undetected"`
}

type wireEngineResult struct {
	Category      string `json:"category"`
	Result        string `json:"result,omitempty"`
	EngineVersion string `json:"engine_version"`
}

// Envelope pairs a sample's metadata with one of its scan reports for
// wire transport; it is what the report API returns and the premium
// feed streams.
type Envelope struct {
	Meta SampleMeta
	Scan ScanReport
}

// AppendJSON appends the envelope's VT v3 encoding to dst and returns
// the extended slice. The bytes are identical to what MarshalJSON
// produced via the reflective path (engine map keys sorted byte-wise,
// duplicate engine names collapsed last-wins, stats counted per
// Results entry), so partitions and fixtures written before this
// encoder existed compare equal.
func (e *Envelope) AppendJSON(dst []byte) []byte {
	var mal, harm, und int
	for i := range e.Scan.Results {
		switch e.Scan.Results[i].Verdict {
		case Malicious:
			mal++
		case Benign:
			harm++
		default:
			und++
		}
	}
	dst = append(dst, `{"data":{"id":`...)
	dst = jsonx.AppendString(dst, e.Meta.SHA256)
	dst = append(dst, `,"type":"file","attributes":{"type_description":`...)
	dst = jsonx.AppendString(dst, e.Meta.FileType)
	dst = append(dst, `,"size":`...)
	dst = jsonx.AppendInt(dst, e.Meta.Size)
	dst = append(dst, `,"first_submission_date":`...)
	dst = jsonx.AppendInt(dst, unix(e.Meta.FirstSubmissionDate))
	dst = append(dst, `,"last_analysis_date":`...)
	dst = jsonx.AppendInt(dst, unix(e.Meta.LastAnalysisDate))
	dst = append(dst, `,"last_submission_date":`...)
	dst = jsonx.AppendInt(dst, unix(e.Meta.LastSubmissionDate))
	dst = append(dst, `,"times_submitted":`...)
	dst = jsonx.AppendInt(dst, int64(e.Meta.TimesSubmitted))
	dst = append(dst, `,"last_analysis_stats":{"malicious":`...)
	dst = jsonx.AppendInt(dst, int64(mal))
	dst = append(dst, `,"harmless":`...)
	dst = jsonx.AppendInt(dst, int64(harm))
	dst = append(dst, `,"undetected":`...)
	dst = jsonx.AppendInt(dst, int64(und))
	dst = append(dst, `},"last_analysis_results":{`...)
	dst = e.appendResults(dst)
	dst = append(dst, `}}}}`...)
	return dst
}

// appendResults emits the engine-result map members in sorted key
// order with duplicate names collapsed last-wins, matching
// encoding/json's map encoding of the old implementation.
func (e *Envelope) appendResults(dst []byte) []byte {
	rs := e.Scan.Results
	sorted := true
	for i := 1; i < len(rs); i++ {
		if rs[i].Engine <= rs[i-1].Engine {
			sorted = false
			break
		}
	}
	if sorted {
		for i := range rs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendEngineResult(dst, &rs[i])
		}
		return dst
	}
	idx := make([]int, len(rs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return rs[idx[a]].Engine < rs[idx[b]].Engine
	})
	first := true
	for k := 0; k < len(idx); k++ {
		// Skip all but the last entry of an equal-name run: the old
		// encoder built a map, so later duplicates overwrote earlier.
		if k+1 < len(idx) && rs[idx[k+1]].Engine == rs[idx[k]].Engine {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = appendEngineResult(dst, &rs[idx[k]])
	}
	return dst
}

func appendEngineResult(dst []byte, er *EngineResult) []byte {
	dst = jsonx.AppendString(dst, er.Engine)
	dst = append(dst, `:{"category":`...)
	dst = jsonx.AppendString(dst, er.Verdict.String())
	if er.Label != "" {
		dst = append(dst, `,"result":`...)
		dst = jsonx.AppendString(dst, er.Label)
	}
	dst = append(dst, `,"engine_version":"`...)
	dst = jsonx.AppendInt(dst, int64(er.SignatureVersion))
	dst = append(dst, '"', '}')
	return dst
}

// MarshalJSON encodes the envelope in the VT v3 shape above.
func (e Envelope) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(nil), nil
}

// marshalSlow is the original reflective encoder, kept as the oracle
// the differential tests compare AppendJSON against.
func (e *Envelope) marshalSlow() ([]byte, error) {
	attrs := wireAttributes{
		TypeDescription:     e.Meta.FileType,
		Size:                e.Meta.Size,
		FirstSubmissionDate: unix(e.Meta.FirstSubmissionDate),
		LastAnalysisDate:    unix(e.Meta.LastAnalysisDate),
		LastSubmissionDate:  unix(e.Meta.LastSubmissionDate),
		TimesSubmitted:      e.Meta.TimesSubmitted,
		LastAnalysisResults: make(map[string]wireEngineResult, len(e.Scan.Results)),
	}
	for _, er := range e.Scan.Results {
		attrs.LastAnalysisResults[er.Engine] = wireEngineResult{
			Category:      er.Verdict.String(),
			Result:        er.Label,
			EngineVersion: fmt.Sprintf("%d", er.SignatureVersion),
		}
		switch er.Verdict {
		case Malicious:
			attrs.LastAnalysisStats.Malicious++
		case Benign:
			attrs.LastAnalysisStats.Harmless++
		default:
			attrs.LastAnalysisStats.Undetected++
		}
	}
	return json.Marshal(wireEnvelope{Data: wireData{
		ID:         e.Meta.SHA256,
		Type:       "file",
		Attributes: attrs,
	}})
}

// fastEntry is one parsed engine member before map-order
// normalization.
type fastEntry struct {
	name    string
	verdict Verdict
	label   string
	version int
}

// UnmarshalJSON decodes the VT v3 shape. Engine results are sorted by
// engine name so decoding is deterministic. A strict cursor-based
// fast path handles well-formed producer output; anything outside its
// subset falls back to the reflective decoder so accepted inputs and
// errors match encoding/json exactly.
func (e *Envelope) UnmarshalJSON(b []byte) error {
	if ok, err := e.unmarshalFast(b); ok {
		return err
	}
	return e.unmarshalSlow(b)
}

func (e *Envelope) unmarshalFast(b []byte) (ok bool, err error) {
	c := jsonx.Cursor{Buf: b}
	var (
		id, typ, fileType string
		size              int64
		firstSub, lastAn  int64
		lastSub           int64
		timesSub          int64
		entries           []fastEntry
	)
	empty, cerr := c.ObjectStart()
	if cerr != nil {
		return false, nil
	}
	if !empty {
		for {
			key, kerr := c.Key()
			if kerr != nil {
				return false, nil
			}
			// Any key that is not an exact-case match could still bind
			// case-insensitively in encoding/json, so bail out rather
			// than guess.
			if string(key) != "data" {
				return false, nil
			}
			if !e.fastData(&c, &id, &typ, &fileType, &size, &firstSub, &lastAn, &lastSub, &timesSub, &entries) {
				return false, nil
			}
			done, nerr := c.ObjectNext()
			if nerr != nil {
				return false, nil
			}
			if done {
				break
			}
		}
	}
	if c.AtEOF() != nil {
		return false, nil
	}
	if typ != "file" {
		return true, fmt.Errorf("report: unexpected data type %q", typ)
	}
	// Normalize map-iteration semantics: sort by name, and for
	// duplicate names keep the last occurrence (map overwrite).
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].name < entries[b].name })
	results := make([]EngineResult, 0, len(entries))
	for i := range entries {
		if i+1 < len(entries) && entries[i+1].name == entries[i].name {
			continue
		}
		results = append(results, EngineResult{
			Engine:           entries[i].name,
			Verdict:          entries[i].verdict,
			Label:            entries[i].label,
			SignatureVersion: entries[i].version,
		})
	}
	e.Meta = SampleMeta{
		SHA256:              id,
		FileType:            fileType,
		Size:                size,
		FirstSubmissionDate: fromUnix(firstSub),
		LastAnalysisDate:    fromUnix(lastAn),
		LastSubmissionDate:  fromUnix(lastSub),
		TimesSubmitted:      int(timesSub),
	}
	e.Scan = ScanReport{
		SHA256:       id,
		FileType:     fileType,
		AnalysisDate: fromUnix(lastAn),
		Results:      results,
		AVRank:       ComputeAVRank(results),
		EnginesTotal: CountActive(results),
	}
	return true, nil
}

func (e *Envelope) fastData(c *jsonx.Cursor, id, typ, fileType *string, size, firstSub, lastAn, lastSub, timesSub *int64, entries *[]fastEntry) bool {
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		key, err := c.Key()
		if err != nil {
			return false
		}
		switch string(key) {
		case "id":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			*id = string(v)
		case "type":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			*typ = string(v)
		case "attributes":
			if !e.fastAttributes(c, fileType, size, firstSub, lastAn, lastSub, timesSub, entries) {
				return false
			}
		default:
			return false
		}
		done, err := c.ObjectNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

func (e *Envelope) fastAttributes(c *jsonx.Cursor, fileType *string, size, firstSub, lastAn, lastSub, timesSub *int64, entries *[]fastEntry) bool {
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		key, err := c.Key()
		if err != nil {
			return false
		}
		switch string(key) {
		case "type_description":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			*fileType = InternBytes(v)
		case "size":
			if *size, err = c.ReadInt64(); err != nil {
				return false
			}
		case "first_submission_date":
			if *firstSub, err = c.ReadInt64(); err != nil {
				return false
			}
		case "last_analysis_date":
			if *lastAn, err = c.ReadInt64(); err != nil {
				return false
			}
		case "last_submission_date":
			if *lastSub, err = c.ReadInt64(); err != nil {
				return false
			}
		case "times_submitted":
			if *timesSub, err = c.ReadInt64(); err != nil {
				return false
			}
		case "last_analysis_stats":
			// Parsed for syntax, discarded: the decoder recomputes
			// stats from the results, as the reflective path does.
			if !fastStats(c) {
				return false
			}
		case "last_analysis_results":
			if !fastResults(c, entries) {
				return false
			}
		default:
			return false
		}
		done, err := c.ObjectNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

func fastStats(c *jsonx.Cursor) bool {
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		key, err := c.Key()
		if err != nil {
			return false
		}
		switch string(key) {
		case "malicious", "harmless", "undetected":
			if _, err := c.ReadInt64(); err != nil {
				return false
			}
		default:
			return false
		}
		done, err := c.ObjectNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

func fastResults(c *jsonx.Cursor, entries *[]fastEntry) bool {
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		name, err := c.Key()
		if err != nil {
			return false
		}
		// Undetected is what ParseVerdict maps a missing or unknown
		// category to; the struct zero value would be Benign.
		ent := fastEntry{verdict: Undetected}
		ent.name = InternBytes(name)
		if !fastEngineResult(c, &ent) {
			return false
		}
		*entries = append(*entries, ent)
		done, err := c.ObjectNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

func fastEngineResult(c *jsonx.Cursor, ent *fastEntry) bool {
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		key, err := c.Key()
		if err != nil {
			return false
		}
		switch string(key) {
		case "category":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			ent.verdict = verdictFromBytes(v)
		case "result":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			ent.label = InternBytes(v)
		case "engine_version":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			ent.version = parseVersion(v)
		default:
			return false
		}
		done, err := c.ObjectNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

// verdictFromBytes is ParseVerdict without the string conversion.
func verdictFromBytes(b []byte) Verdict {
	switch string(b) {
	case "malicious":
		return Malicious
	case "harmless", "benign", "clean":
		return Benign
	default:
		return Undetected
	}
}

// parseVersion mirrors the reflective path's
// fmt.Sscanf(s, "%d", &ver): a failed or partial scan leaves 0. The
// manual branch covers canonical encoder output (plain base-10, no
// overflow possible at ≤18 digits); everything else goes through the
// identical Sscanf call.
func parseVersion(b []byte) int {
	i, neg := 0, false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		i = 1
	}
	if n := len(b) - i; n >= 1 && n <= 18 {
		v := int64(0)
		for ; i < len(b); i++ {
			d := b[i]
			if d < '0' || d > '9' {
				goto slow
			}
			v = v*10 + int64(d-'0')
		}
		if neg {
			v = -v
		}
		return int(v)
	}
slow:
	var ver int
	fmt.Sscanf(string(b), "%d", &ver)
	return ver
}

// unmarshalSlow is the original reflective decoder; the fast path
// defers to it on any input outside its strict subset.
func (e *Envelope) unmarshalSlow(b []byte) error {
	var w wireEnvelope
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Data.Type != "file" {
		return fmt.Errorf("report: unexpected data type %q", w.Data.Type)
	}
	a := w.Data.Attributes
	e.Meta = SampleMeta{
		SHA256:              w.Data.ID,
		FileType:            a.TypeDescription,
		Size:                a.Size,
		FirstSubmissionDate: fromUnix(a.FirstSubmissionDate),
		LastAnalysisDate:    fromUnix(a.LastAnalysisDate),
		LastSubmissionDate:  fromUnix(a.LastSubmissionDate),
		TimesSubmitted:      a.TimesSubmitted,
	}
	names := make([]string, 0, len(a.LastAnalysisResults))
	for name := range a.LastAnalysisResults {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]EngineResult, 0, len(names))
	for _, name := range names {
		wr := a.LastAnalysisResults[name]
		var ver int
		fmt.Sscanf(wr.EngineVersion, "%d", &ver)
		results = append(results, EngineResult{
			Engine:           name,
			Verdict:          ParseVerdict(wr.Category),
			Label:            wr.Result,
			SignatureVersion: ver,
		})
	}
	e.Scan = ScanReport{
		SHA256:       w.Data.ID,
		FileType:     a.TypeDescription,
		AnalysisDate: fromUnix(a.LastAnalysisDate),
		Results:      results,
		AVRank:       ComputeAVRank(results),
		EnginesTotal: CountActive(results),
	}
	return nil
}

func unix(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func fromUnix(s int64) time.Time {
	if s == 0 {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}
