package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// VirusTotal-v3-style wire format. The API serves and the collector
// parses this shape:
//
//	{
//	  "data": {
//	    "id": "<sha256>",
//	    "type": "file",
//	    "attributes": {
//	      "type_description": "Win32 EXE",
//	      "size": 1234,
//	      "first_submission_date": 1620000000,
//	      "last_analysis_date": 1620000600,
//	      "last_submission_date": 1620000000,
//	      "times_submitted": 2,
//	      "last_analysis_stats": {"malicious": 3, "harmless": 60, "undetected": 7},
//	      "last_analysis_results": {
//	        "BitDefender": {"category": "malicious", "result": "Trojan.X", "engine_version": "41"}
//	      }
//	    }
//	  }
//	}
//
// Dates are Unix seconds, matching VT.

type wireEnvelope struct {
	Data wireData `json:"data"`
}

type wireData struct {
	ID         string         `json:"id"`
	Type       string         `json:"type"`
	Attributes wireAttributes `json:"attributes"`
}

type wireAttributes struct {
	TypeDescription     string                      `json:"type_description"`
	Size                int64                       `json:"size"`
	FirstSubmissionDate int64                       `json:"first_submission_date"`
	LastAnalysisDate    int64                       `json:"last_analysis_date"`
	LastSubmissionDate  int64                       `json:"last_submission_date"`
	TimesSubmitted      int                         `json:"times_submitted"`
	LastAnalysisStats   wireStats                   `json:"last_analysis_stats"`
	LastAnalysisResults map[string]wireEngineResult `json:"last_analysis_results"`
}

type wireStats struct {
	Malicious  int `json:"malicious"`
	Harmless   int `json:"harmless"`
	Undetected int `json:"undetected"`
}

type wireEngineResult struct {
	Category      string `json:"category"`
	Result        string `json:"result,omitempty"`
	EngineVersion string `json:"engine_version"`
}

// Envelope pairs a sample's metadata with one of its scan reports for
// wire transport; it is what the report API returns and the premium
// feed streams.
type Envelope struct {
	Meta SampleMeta
	Scan ScanReport
}

// MarshalJSON encodes the envelope in the VT v3 shape above.
func (e Envelope) MarshalJSON() ([]byte, error) {
	attrs := wireAttributes{
		TypeDescription:     e.Meta.FileType,
		Size:                e.Meta.Size,
		FirstSubmissionDate: unix(e.Meta.FirstSubmissionDate),
		LastAnalysisDate:    unix(e.Meta.LastAnalysisDate),
		LastSubmissionDate:  unix(e.Meta.LastSubmissionDate),
		TimesSubmitted:      e.Meta.TimesSubmitted,
		LastAnalysisResults: make(map[string]wireEngineResult, len(e.Scan.Results)),
	}
	for _, er := range e.Scan.Results {
		attrs.LastAnalysisResults[er.Engine] = wireEngineResult{
			Category:      er.Verdict.String(),
			Result:        er.Label,
			EngineVersion: fmt.Sprintf("%d", er.SignatureVersion),
		}
		switch er.Verdict {
		case Malicious:
			attrs.LastAnalysisStats.Malicious++
		case Benign:
			attrs.LastAnalysisStats.Harmless++
		default:
			attrs.LastAnalysisStats.Undetected++
		}
	}
	return json.Marshal(wireEnvelope{Data: wireData{
		ID:         e.Meta.SHA256,
		Type:       "file",
		Attributes: attrs,
	}})
}

// UnmarshalJSON decodes the VT v3 shape. Engine results are sorted by
// engine name so decoding is deterministic.
func (e *Envelope) UnmarshalJSON(b []byte) error {
	var w wireEnvelope
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Data.Type != "file" {
		return fmt.Errorf("report: unexpected data type %q", w.Data.Type)
	}
	a := w.Data.Attributes
	e.Meta = SampleMeta{
		SHA256:              w.Data.ID,
		FileType:            a.TypeDescription,
		Size:                a.Size,
		FirstSubmissionDate: fromUnix(a.FirstSubmissionDate),
		LastAnalysisDate:    fromUnix(a.LastAnalysisDate),
		LastSubmissionDate:  fromUnix(a.LastSubmissionDate),
		TimesSubmitted:      a.TimesSubmitted,
	}
	names := make([]string, 0, len(a.LastAnalysisResults))
	for name := range a.LastAnalysisResults {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]EngineResult, 0, len(names))
	for _, name := range names {
		wr := a.LastAnalysisResults[name]
		var ver int
		fmt.Sscanf(wr.EngineVersion, "%d", &ver)
		results = append(results, EngineResult{
			Engine:           name,
			Verdict:          ParseVerdict(wr.Category),
			Label:            wr.Result,
			SignatureVersion: ver,
		})
	}
	e.Scan = ScanReport{
		SHA256:       w.Data.ID,
		FileType:     a.TypeDescription,
		AnalysisDate: fromUnix(a.LastAnalysisDate),
		Results:      results,
		AVRank:       ComputeAVRank(results),
		EnginesTotal: CountActive(results),
	}
	return nil
}

func unix(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func fromUnix(s int64) time.Time {
	if s == 0 {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}
