// Package labeling implements the label-aggregation strategies the
// paper surveys in §3.1: researchers must collapse 70+ engine
// verdicts into one malicious/benign decision, and do so with
// absolute voting thresholds (1, 2, 10, ...), percentage thresholds
// (e.g. 50% of engines), or trusted-engine subsets.
//
// Aggregators operate on a single scan report; the dynamics of the
// aggregated label over a sample's history are analyzed by
// internal/core.
package labeling

import (
	"errors"
	"fmt"

	"vtdynamics/internal/report"
)

// Aggregator collapses one scan report into a binary decision.
type Aggregator interface {
	// Malicious reports the aggregated decision for the scan.
	Malicious(r *report.ScanReport) bool
	// Name identifies the strategy for experiment output.
	Name() string
}

// Threshold labels a scan malicious iff AV-Rank >= T — the dominant
// strategy in the literature (T=1, 2, 10 all appear in published
// work).
type Threshold struct {
	T int
}

// NewThreshold validates T >= 1.
func NewThreshold(t int) (Threshold, error) {
	if t < 1 {
		return Threshold{}, fmt.Errorf("labeling: threshold must be >= 1, got %d", t)
	}
	return Threshold{T: t}, nil
}

// Malicious implements Aggregator.
func (t Threshold) Malicious(r *report.ScanReport) bool {
	return r.AVRank >= t.T
}

// Name implements Aggregator.
func (t Threshold) Name() string { return fmt.Sprintf("threshold(%d)", t.T) }

// Percentage labels a scan malicious iff AV-Rank >= Fraction of the
// engines that produced a verdict (e.g. 0.5 for the "half of the
// engines" rule).
type Percentage struct {
	Fraction float64
}

// NewPercentage validates the fraction is in (0, 1].
func NewPercentage(f float64) (Percentage, error) {
	if f <= 0 || f > 1 {
		return Percentage{}, fmt.Errorf("labeling: fraction must be in (0,1], got %v", f)
	}
	return Percentage{Fraction: f}, nil
}

// Malicious implements Aggregator. A report with no active engines is
// labeled benign.
func (p Percentage) Malicious(r *report.ScanReport) bool {
	if r.EnginesTotal == 0 {
		return false
	}
	return float64(r.AVRank) >= p.Fraction*float64(r.EnginesTotal)
}

// Name implements Aggregator.
func (p Percentage) Name() string { return fmt.Sprintf("percentage(%.0f%%)", p.Fraction*100) }

// TrustedSubset counts votes only from a chosen set of reputable
// engines and applies a threshold over that subset — the
// "high-reputation engines" strategy.
type TrustedSubset struct {
	Engines map[string]bool
	T       int
	name    string
}

// ErrEmptySubset is returned when no trusted engines are given.
var ErrEmptySubset = errors.New("labeling: trusted subset is empty")

// NewTrustedSubset builds the strategy from the engine list.
func NewTrustedSubset(engines []string, t int) (*TrustedSubset, error) {
	if len(engines) == 0 {
		return nil, ErrEmptySubset
	}
	if t < 1 {
		return nil, fmt.Errorf("labeling: threshold must be >= 1, got %d", t)
	}
	set := make(map[string]bool, len(engines))
	for _, e := range engines {
		set[e] = true
	}
	return &TrustedSubset{
		Engines: set,
		T:       t,
		name:    fmt.Sprintf("trusted(%d engines, t=%d)", len(set), t),
	}, nil
}

// Malicious implements Aggregator.
func (s *TrustedSubset) Malicious(r *report.ScanReport) bool {
	votes := 0
	for _, er := range r.Results {
		if er.Verdict == report.Malicious && s.Engines[er.Engine] {
			votes++
		}
	}
	return votes >= s.T
}

// Name implements Aggregator.
func (s *TrustedSubset) Name() string { return s.name }

// LabelHistory applies an aggregator across a sample's history,
// yielding the label sequence whose stabilization §6.2 studies.
func LabelHistory(agg Aggregator, h *report.History) []bool {
	out := make([]bool, len(h.Reports))
	for i, r := range h.Reports {
		out[i] = agg.Malicious(r)
	}
	return out
}

// Flips counts label changes in an aggregated sequence — the
// instability a strategy exposes its user to.
func Flips(labels []bool) int {
	n := 0
	for i := 1; i < len(labels); i++ {
		if labels[i] != labels[i-1] {
			n++
		}
	}
	return n
}
