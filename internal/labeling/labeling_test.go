package labeling

import (
	"testing"
	"time"

	"vtdynamics/internal/report"
)

var t0 = time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)

// scan builds a report with the given malicious engines and a set of
// benign engines to pad EnginesTotal.
func scan(malicious []string, benign []string) *report.ScanReport {
	var results []report.EngineResult
	for _, e := range malicious {
		results = append(results, report.EngineResult{Engine: e, Verdict: report.Malicious, Label: "x"})
	}
	for _, e := range benign {
		results = append(results, report.EngineResult{Engine: e, Verdict: report.Benign})
	}
	return &report.ScanReport{
		SHA256:       "h",
		AnalysisDate: t0,
		Results:      results,
		AVRank:       len(malicious),
		EnginesTotal: len(malicious) + len(benign),
	}
}

func TestThreshold(t *testing.T) {
	th, err := NewThreshold(2)
	if err != nil {
		t.Fatal(err)
	}
	if th.Malicious(scan([]string{"A"}, []string{"B", "C"})) {
		t.Fatal("1 < 2 should be benign")
	}
	if !th.Malicious(scan([]string{"A", "B"}, nil)) {
		t.Fatal("2 >= 2 should be malicious")
	}
	if th.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(0); err == nil {
		t.Fatal("expected error for t=0")
	}
}

func TestPercentage(t *testing.T) {
	p, err := NewPercentage(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 2 of 4 = 50% -> malicious (>=).
	if !p.Malicious(scan([]string{"A", "B"}, []string{"C", "D"})) {
		t.Fatal("50% should be malicious at fraction 0.5")
	}
	// 1 of 4 = 25% -> benign.
	if p.Malicious(scan([]string{"A"}, []string{"B", "C", "D"})) {
		t.Fatal("25% should be benign")
	}
	// No active engines -> benign.
	empty := &report.ScanReport{SHA256: "h", AnalysisDate: t0}
	if p.Malicious(empty) {
		t.Fatal("empty report should be benign")
	}
}

func TestPercentageValidation(t *testing.T) {
	for _, f := range []float64{0, -0.1, 1.5} {
		if _, err := NewPercentage(f); err == nil {
			t.Fatalf("expected error for fraction %v", f)
		}
	}
	if _, err := NewPercentage(1); err != nil {
		t.Fatal("fraction 1 should be allowed")
	}
}

func TestTrustedSubset(t *testing.T) {
	ts, err := NewTrustedSubset([]string{"Kaspersky", "Microsoft"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Malicious vote from untrusted engine does not count.
	if ts.Malicious(scan([]string{"RandomAV"}, []string{"Kaspersky"})) {
		t.Fatal("untrusted vote counted")
	}
	if !ts.Malicious(scan([]string{"Kaspersky", "RandomAV"}, nil)) {
		t.Fatal("trusted vote not counted")
	}
}

func TestTrustedSubsetValidation(t *testing.T) {
	if _, err := NewTrustedSubset(nil, 1); err != ErrEmptySubset {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewTrustedSubset([]string{"A"}, 0); err == nil {
		t.Fatal("expected error for t=0")
	}
}

func TestLabelHistoryAndFlips(t *testing.T) {
	th, _ := NewThreshold(2)
	h := &report.History{Reports: []*report.ScanReport{
		scan([]string{"A"}, nil),           // benign
		scan([]string{"A", "B"}, nil),      // malicious
		scan([]string{"A", "B", "C"}, nil), // malicious
		scan(nil, []string{"A"}),           // benign
	}}
	labels := LabelHistory(th, h)
	want := []bool{false, true, true, false}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
	if got := Flips(labels); got != 2 {
		t.Fatalf("flips = %d", got)
	}
	if got := Flips(nil); got != 0 {
		t.Fatalf("flips(nil) = %d", got)
	}
}
