package obs

import (
	"net/http/httptest"
	"sync"
	"testing"
)

// TestRegistryUnderContention is the registry's own race/stress
// proof: 64 goroutines hammer shared counters, gauges, and
// histograms — plus the registry lookup path and concurrent
// expositions — under `go test -race`. The determinism check at the
// end asserts snapshot totals equal the sum of the per-goroutine
// contributions, so no increment is lost across the sharded cells.
func TestRegistryUnderContention(t *testing.T) {
	const (
		goroutines = 64
		iters      = 2000
	)
	r := NewRegistry()
	c := r.Counter("stress_total")
	g := r.Gauge("stress_inflight")
	h := r.Histogram("stress_seconds", DefBuckets)

	var wg sync.WaitGroup
	contributed := make([]int64, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			var mine int64
			for i := 0; i < iters; i++ {
				n := int64(i%3 + 1)
				c.Add(n)
				mine += n
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) / 1000.0)
				// Exercise the lookup path concurrently too: labeled
				// series resolved while other goroutines create them.
				r.Counter("stress_labeled_total", "worker", string(rune('a'+gi%8))).Inc()
			}
			contributed[gi] = mine
		}(gi)
	}
	// Concurrent readers: expositions and snapshots must be safe
	// while writers are live.
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
				_ = c.Value()
				_ = h.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var want int64
	for _, n := range contributed {
		want += n
	}
	if got := c.Value(); got != want {
		t.Fatalf("counter = %d, want sum of contributions %d", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d after balanced adds, want 0", got)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := r.SumCounters("stress_labeled_total"); got != goroutines*iters {
		t.Fatalf("labeled sum = %d, want %d", got, goroutines*iters)
	}
	// The cumulativity invariant must survive contention.
	snap := h.Snapshot()
	var cum int64
	for _, n := range snap.Buckets {
		cum += n
	}
	if cum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", cum, snap.Count)
	}
}
