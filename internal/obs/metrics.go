package obs

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// numCells is the per-metric shard-cell count: enough cells that
// concurrent writers on different CPUs rarely collide on a cache
// line, capped so idle metrics stay small.
var numCells = cellCount()

func cellCount() int {
	n := runtime.NumCPU()
	p := 1
	for p < n {
		p <<= 1
	}
	if p > 64 {
		p = 64
	}
	return p
}

// cell is one cache-line-padded counter shard. 64 bytes covers the
// common cache-line size, so adjacent cells never false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// pick selects a shard cell using the runtime's per-thread fast
// random source (math/rand/v2's top-level functions are lock-free),
// so concurrent writers spread across cells without any shared
// coordination state.
func pick(mask uint32) uint32 {
	if mask == 0 {
		return 0
	}
	return rand.Uint32() & mask
}

// Counter is a monotonically increasing sharded counter. Add is
// wait-free: one atomic add on a (usually) private cache line.
type Counter struct {
	cells []cell
	mask  uint32
}

func newCounter() *Counter {
	return &Counter{cells: make([]cell, numCells), mask: uint32(numCells - 1)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) {
	c.cells[pick(c.mask)].n.Add(n)
}

// Value sums the shard cells. Concurrent Adds may or may not be
// included — the sum is a consistent lower bound of completed Adds.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (in-flight slices, shard
// occupancy, frontier timestamps). A single atomic: gauges are
// written by Set/Add far less often than counters are bumped.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond store hits to multi-second retried HTTP calls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets returns small integer-valued buckets (1, 2, 4, ... up
// to max) for histograms over counts, e.g. retries per request.
func CountBuckets(max int) []float64 {
	var out []float64
	for v := 1; v <= max; v *= 2 {
		out = append(out, float64(v))
	}
	return out
}

// ExpBuckets returns n exponentially spaced bucket bounds: start,
// start*factor, start*factor², ... Latency histograms that must
// resolve tail quantiles (p99.9) want constant *relative* resolution,
// which linear buckets cannot give across four decades. start must be
// positive and factor > 1; misuse is a programming error and panics.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// histCell is one histogram shard: per-bucket counts plus a float64
// sum kept as atomic bits. Each cell owns its own allocations, so
// concurrent observers on different cells never share lines.
type histCell struct {
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
}

// Histogram is a fixed-bucket sharded histogram. Observe is one
// binary search plus one atomic add (and a CAS loop for the sum) on
// a randomly selected cell.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds (le)
	cells  []histCell
	mask   uint32
}

func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " buckets must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		cells:  make([]histCell, numCells),
		mask:   uint32(numCells - 1),
	}
	for i := range h.cells {
		h.cells[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	c := &h.cells[pick(h.mask)]
	c.counts[i].Add(1)
	for {
		old := c.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time view of a histogram. Buckets are
// per-bucket (non-cumulative) counts aligned with Bounds; the last
// entry is the +Inf bucket.
type HistSnapshot struct {
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64
}

// Snapshot sums the shard cells into one view.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.bounds)+1),
	}
	for ci := range h.cells {
		c := &h.cells[ci]
		for bi := range c.counts {
			s.Buckets[bi] += c.counts[bi].Load()
		}
		s.Sum += math.Float64frombits(c.sumBits.Load())
	}
	for _, n := range s.Buckets {
		s.Count += n
	}
	return s
}

// Quantile estimates the q-quantile from the snapshot's bucket
// counts, with histogram_quantile's semantics: the target rank
// q*Count is located in the cumulative bucket counts, then linearly
// interpolated inside the spanning bucket (the first bucket
// interpolates up from zero). A rank landing in the +Inf bucket
// returns the highest finite bound — fixed buckets cannot resolve
// beyond their last edge, so callers needing a true maximum must
// track it separately. q is clamped to [0, 1]; an empty snapshot
// returns 0.
//
// Boundary behavior is exact: when every observation in the spanning
// bucket sits at its upper bound, interpolation at q=1 returns that
// bound itself, so quantiles of bound-valued data never overshoot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(s.Bounds) {
				// +Inf bucket: the last finite bound is the best
				// statement the snapshot can make.
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge returns the element-wise sum of two snapshots of histograms
// that share bucket bounds (e.g. per-operation latency series being
// rolled up into an overall distribution). Mismatched bounds are a
// programming error and panic.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if !sameBuckets(s.Bounds, o.Bounds) {
		panic("obs: HistSnapshot.Merge wants identical bucket bounds")
	}
	out := HistSnapshot{
		Bounds:  s.Bounds,
		Buckets: make([]int64, len(s.Buckets)),
		Count:   s.Count + o.Count,
		Sum:     s.Sum + o.Sum,
	}
	copy(out.Buckets, s.Buckets)
	for i, n := range o.Buckets {
		out.Buckets[i] += n
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for ci := range h.cells {
		c := &h.cells[ci]
		for bi := range c.counts {
			total += c.counts[bi].Load()
		}
	}
	return total
}
