package obs

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.0001, 2, 5)
	want := []float64{0.0001, 0.0002, 0.0004, 0.0008, 0.0016}
	if len(b) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	// The bounds must satisfy the Histogram constructor's strictly-
	// increasing contract directly.
	h := NewRegistry().Histogram("exp_bucket_smoke_seconds", ExpBuckets(1e-4, 1.25, 52))
	h.Observe(0.5)
	if got := h.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestExpBucketsPanicsOnMisuse(t *testing.T) {
	for _, tc := range []struct {
		name          string
		start, factor float64
		n             int
	}{
		{"zero start", 0, 2, 4},
		{"factor one", 1, 1, 4},
		{"zero n", 1, 2, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("ExpBuckets(%v, %v, %d) did not panic", tc.start, tc.factor, tc.n)
				}
			}()
			ExpBuckets(tc.start, tc.factor, tc.n)
		})
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot Quantile = %v, want 0", got)
	}
}

// TestQuantileBoundValues pins the boundary contract: observations
// that sit exactly on bucket bounds recover those bounds exactly at
// the matching quantiles, with no overshoot into the next bucket.
func TestQuantileBoundValues(t *testing.T) {
	h := NewRegistry().Histogram("q_bounds_seconds", []float64{1, 2, 4, 8})
	// 100 observations at exactly 1.0: all land in the le=1 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if got := s.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) over bound-valued data = %v, want exactly 1", got)
	}
	// The median interpolates inside [0, 1]: rank 50 of 100 in a
	// bucket spanning (0, 1] is 0.5 — the documented mid-bucket
	// estimate, not the true value (a fixed-bucket histogram cannot
	// distinguish).
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 0.5 (mid-bucket interpolation)", got)
	}
}

// TestQuantileRankOnBucketBoundary pins interpolation when the target
// rank falls exactly on the edge between two buckets.
func TestQuantileRankOnBucketBoundary(t *testing.T) {
	h := NewRegistry().Histogram("q_rank_seconds", []float64{1, 2, 4})
	// 50 observations in (0,1], 50 in (1,2]. Rank 50 = exactly the
	// cumulative count of the first bucket, so Quantile(0.5) must
	// return the first bucket's upper bound — 1 — not start into the
	// second bucket.
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
		h.Observe(2)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("Quantile(0.5) at exact bucket edge = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
	// Quantiles past the edge interpolate inside the second bucket.
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Quantile(0.75) = %v, want 1.5", got)
	}
}

// TestQuantileInfBucket pins the +Inf clamp: ranks landing beyond the
// last finite bound report that bound, never a fabricated value.
func TestQuantileInfBucket(t *testing.T) {
	h := NewRegistry().Histogram("q_inf_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(100) // +Inf bucket
	s := h.Snapshot()
	if got := s.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) with +Inf mass = %v, want the last finite bound 2", got)
	}
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) with +Inf mass = %v, want 2", got)
	}
}

// TestQuantileSkipsEmptyBuckets checks interpolation across gaps.
func TestQuantileSkipsEmptyBuckets(t *testing.T) {
	h := NewRegistry().Histogram("q_gap_seconds", []float64{1, 2, 4, 8})
	// 10 observations in (0,1], 10 in (4,8]; (1,2] and (2,4] empty.
	for i := 0; i < 10; i++ {
		h.Observe(1)
		h.Observe(8)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("Quantile(0.5) = %v, want 1", got)
	}
	// Rank 15 of 20: halfway through the (4,8] bucket -> 6.
	if got := s.Quantile(0.75); math.Abs(got-6) > 1e-9 {
		t.Errorf("Quantile(0.75) = %v, want 6", got)
	}
}

func TestQuantileClamps(t *testing.T) {
	h := NewRegistry().Histogram("q_clamp_seconds", []float64{1, 2})
	h.Observe(1.5)
	s := h.Snapshot()
	if got := s.Quantile(-1); got != 1 {
		t.Errorf("Quantile(-1) = %v, want lower edge of the spanning bucket (1)", got)
	}
	if got := s.Quantile(2); got != 2 {
		t.Errorf("Quantile(2) = %v, want 2", got)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("merge_seconds", []float64{1, 2}, "op", "a")
	b := reg.Histogram("merge_seconds", []float64{1, 2}, "op", "b")
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(5)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 {
		t.Errorf("merged Count = %d, want 3", m.Count)
	}
	if math.Abs(m.Sum-7) > 1e-9 {
		t.Errorf("merged Sum = %v, want 7", m.Sum)
	}
	wantBuckets := []int64{1, 1, 1}
	for i, n := range wantBuckets {
		if m.Buckets[i] != n {
			t.Errorf("merged bucket %d = %d, want %d", i, m.Buckets[i], n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched bounds did not panic")
		}
	}()
	other := NewRegistry().Histogram("merge_other_seconds", []float64{1, 3})
	m.Merge(other.Snapshot())
}
