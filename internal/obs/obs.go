// Package obs is the dependency-free metrics layer: atomic counters,
// gauges, and fixed-bucket histograms behind a named registry, with
// Prometheus-text and expvar-style JSON exposition.
//
// The paper's 14-month campaign lived on operational metrics — feed
// lag, reports/minute, storage growth (Table 2) — and the ROADMAP's
// production-scale service needs the same numbers exported at runtime
// rather than recomputed in tests. Every hot component (vtapi,
// vtclient, feed.Collector, store, vtsim) instruments itself against
// a Registry; cmd/vtsimd serves the result as GET /metricsz.
//
// Design constraints, in order:
//
//   - Instrumentation must never become the contention point the
//     sharding work of earlier PRs removed. Counters and histograms
//     therefore spread their increments across per-CPU cache-line-
//     padded cells (selected by the runtime's per-thread fast
//     random source, math/rand/v2), and reads sum the cells. An
//     uncontended Add is one atomic add on a private cache line.
//   - No dependencies beyond the standard library.
//   - Metrics are facts, not decoration: the cross-cutting invariant
//     suite in internal/concurrency asserts identities like
//     api_requests_total == passed + injected against real runs.
//
// Lookup by (name, labels) takes a registry read-lock; hot paths
// resolve their metric pointers once, at construction time, and then
// pay only the atomic operation per event.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// kind discriminates the three metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// series is one registered (name, labels) instance of a metric.
type series struct {
	name   string
	labels []Label
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry (or Default for the shared process-wide registry).
type Registry struct {
	mu sync.RWMutex
	// kinds pins each metric family name to one kind, so a counter
	// and a gauge can never collide under the same exposition name.
	kinds  map[string]kind
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:  make(map[string]kind),
		series: make(map[string]*series),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the shared process-wide registry, the one
// components fall back to when no registry is injected.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the counter series for
// name and the given key/value label pairs.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	s := r.lookup(kindCounter, name, kv, nil)
	return s.counter
}

// Gauge returns (creating on first use) the gauge series for name
// and the given key/value label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	s := r.lookup(kindGauge, name, kv, nil)
	return s.gauge
}

// Histogram returns (creating on first use) the histogram series for
// name with the given bucket upper bounds (strictly increasing; an
// implicit +Inf bucket is always appended). Re-registering the same
// series must use identical buckets.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	s := r.lookup(kindHistogram, name, kv, buckets)
	return s.hist
}

// lookup finds or creates a series, enforcing name validity and
// per-name kind consistency. Misuse (bad name, kind clash, bucket
// clash) is a programming error and panics.
func (r *Registry) lookup(k kind, name string, kv []string, buckets []float64) *series {
	labels := labelsFrom(kv)
	key := seriesKey(name, labels)

	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		return r.checkExisting(s, k, buckets)
	}

	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validMetricName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Key, name))
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return r.checkExisting(s, k, buckets)
	}
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, prev, k))
	}
	r.kinds[name] = k
	s = &series{name: name, labels: labels, kind: k}
	switch k {
	case kindCounter:
		s.counter = newCounter()
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(name, buckets)
	}
	r.series[key] = s
	return s
}

func (r *Registry) checkExisting(s *series, k kind, buckets []float64) *series {
	if s.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", s.name, s.kind, k))
	}
	if k == kindHistogram && !sameBuckets(s.hist.bounds, buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", s.name))
	}
	return s
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelsFrom turns a flat key/value list into sorted labels.
func labelsFrom(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	for i := 1; i < len(labels); i++ {
		if labels[i].Key == labels[i-1].Key {
			panic(fmt.Sprintf("obs: duplicate label key %q", labels[i].Key))
		}
	}
	return labels
}

// seriesKey is the registry map key: name plus the sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// validMetricName enforces the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* without pulling in regexp.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// snapshot returns every series sorted by (name, label signature) —
// the exposition order. Values are read after the sort so the text
// output is as fresh as possible.
func (r *Registry) snapshot() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey(out[i].name, out[i].labels) < seriesKey(out[j].name, out[j].labels)
	})
	return out
}

// SumCounters sums every counter series sharing a family name —
// e.g. api_requests_total across all endpoint/code label values. It
// returns 0 for unknown names.
func (r *Registry) SumCounters(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, s := range r.series {
		if s.kind == kindCounter && s.name == name {
			total += s.counter.Value()
		}
	}
	return total
}

// SumGauges sums every gauge series sharing a family name.
func (r *Registry) SumGauges(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, s := range r.series {
		if s.kind == kindGauge && s.name == name {
			total += s.gauge.Value()
		}
	}
	return total
}
