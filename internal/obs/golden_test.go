package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fixed registry exercising every exposition
// feature: label-free and multi-label series, label values needing
// every escape, interleaved family names (sorted output), and a
// histogram whose buckets must render cumulatively.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("api_requests_total", "endpoint", "report", "code", "200").Add(42)
	r.Counter("api_requests_total", "endpoint", "report", "code", "500").Add(3)
	r.Counter("api_requests_total", "endpoint", "feed", "code", "200").Add(17)
	r.Counter("zuletzt_total").Add(1)
	r.Gauge("collector_inflight_slices").Set(4)
	r.Counter("weird_label_total", "path", "a\\b \"quoted\"\nnewline").Inc()
	h := r.Histogram("api_request_seconds", []float64{0.001, 0.01, 0.1, 1}, "endpoint", "report")
	for _, v := range []float64{0.0005, 0.0005, 0.002, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden pins the text exposition byte for byte against
// the committed fixture: series sorting, # TYPE placement, label
// escaping, float formatting, and the histogram bucket layout are all
// format contract, not implementation detail.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusFormatInvariants checks structural properties of the
// rendered text independent of the fixture: every histogram's bucket
// counts are nondecreasing in le order, end at le="+Inf", and the
// +Inf cumulative equals the _count line.
func TestPrometheusFormatInvariants(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var (
		lastName    string
		lastCum     int64
		sawInf      bool
		infCum      int64
		names       []string
		bucketCount int
	)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			names = append(names, strings.Fields(line)[2])
			continue
		}
		// Split on the final space: label values may contain spaces.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			t.Fatalf("malformed line %q", line)
		}
		fields := [2]string{line[:cut], line[cut+1:]}
		if strings.Contains(fields[0], "_bucket{") {
			bucketCount++
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", fields[1], err)
			}
			name := fields[0][:strings.Index(fields[0], "{")]
			if name != lastName {
				lastName, lastCum = name, 0
			}
			if v < lastCum {
				t.Fatalf("bucket counts decreased on %q: %d < %d", line, v, lastCum)
			}
			lastCum = v
			if strings.Contains(fields[0], `le="+Inf"`) {
				sawInf, infCum = true, v
			}
		}
		if strings.HasSuffix(strings.SplitN(fields[0], "{", 2)[0], "_count") {
			v, _ := strconv.ParseInt(fields[1], 10, 64)
			if v != infCum {
				t.Fatalf("_count %d != +Inf cumulative %d", v, infCum)
			}
		}
	}
	if !sawInf || bucketCount == 0 {
		t.Fatal("no histogram buckets rendered")
	}
	// Family names must appear in sorted order exactly once.
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("TYPE lines out of order: %v", names)
		}
	}
}
