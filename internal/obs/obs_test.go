package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterAddAndValue(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "code", "200")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Same (name, labels) returns the same series.
	if r.Counter("requests_total", "code", "200") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	// Different label value is a different series.
	if r.Counter("requests_total", "code", "404") == c {
		t.Fatal("distinct label values shared a series")
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "b", "2", "a", "1")
	b := r.Counter("m_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// le boundaries are inclusive: 0.1 lands in the first bucket.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if snap.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, snap.Buckets[i], n, snap.Buckets)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("Count = %d, want 5", snap.Count)
	}
	if diff := snap.Sum - 102.65; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Sum = %v, want 102.65", snap.Sum)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatalf("Count after ObserveDuration = %d", h.Count())
	}
}

// TestHistogramCumulativityInvariant checks the le invariant the
// exposition relies on: cumulative bucket counts are nondecreasing
// and the +Inf bucket equals the total count.
func TestHistogramCumulativityInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", DefBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%37) / 100.0)
	}
	snap := h.Snapshot()
	var cum, prev int64
	for _, n := range snap.Buckets {
		if n < 0 {
			t.Fatalf("negative bucket count %d", n)
		}
		cum += n
		if cum < prev {
			t.Fatalf("cumulative counts decreased: %d < %d", cum, prev)
		}
		prev = cum
	}
	if cum != snap.Count || cum != 1000 {
		t.Fatalf("+Inf cumulative = %d, Count = %d, want 1000", cum, snap.Count)
	}
}

func TestSumCountersAcrossLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("api_requests_total", "code", "200").Add(10)
	r.Counter("api_requests_total", "code", "500").Add(3)
	r.Counter("other_total").Add(99)
	if got := r.SumCounters("api_requests_total"); got != 13 {
		t.Fatalf("SumCounters = %d, want 13", got)
	}
	if got := r.SumCounters("missing_total"); got != 0 {
		t.Fatalf("SumCounters(missing) = %d, want 0", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("m_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1leading", "has-dash", "has space", "emojiüŸ"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestHistogramBucketClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different buckets did not panic")
		}
	}()
	r.Histogram("h", []float64{1, 3})
}

func TestCountBuckets(t *testing.T) {
	got := CountBuckets(8)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("CountBuckets(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CountBuckets(8) = %v, want %v", got, want)
		}
	}
}

func TestSummaryListsNonZeroSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Counter("zero_total")
	r.Gauge("g", "k", "v").Set(5)
	s := r.Summary()
	if !strings.Contains(s, "a_total=2") || !strings.Contains(s, `g{k="v"}=5`) {
		t.Fatalf("Summary = %q", s)
	}
	if strings.Contains(s, "zero_total") {
		t.Fatalf("Summary includes zero series: %q", s)
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"c_total":3`, `"counters"`, `"histograms"`, `"+Inf":1`, `"1":1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON %q missing %q", out, want)
		}
	}
}
