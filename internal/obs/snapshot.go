// Snapshot: a point-in-time, machine-readable read of every scalar
// series. The benchmark harness (internal/benchkit) embeds one per
// run in BENCH_*.json so a perf record carries the counters that
// explain it (rows put, blocks decoded, faults injected, retries), not
// just wall-clock numbers.
package obs

// Snapshot returns the current value of every counter and gauge
// series, keyed by the full series signature — the metric name plus
// its {label="value"} rendering in sorted label order, exactly as the
// Prometheus exposition prints it. Histograms are omitted: their
// per-bucket state is exposition detail, while Snapshot feeds
// machine-diffed records where scalar identities (hits + misses ==
// gets) are what downstream checks consume.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for _, s := range r.snapshot() {
		key := s.name + promLabels(s.labels, "", 0)
		switch s.kind {
		case kindCounter:
			out[key] = s.counter.Value()
		case kindGauge:
			out[key] = s.gauge.Value()
		}
	}
	return out
}
