package obs

import (
	"io"
	"testing"
)

// The instrumentation budget: a counter Add must stay in the
// tens-of-nanoseconds range so hot paths (store Put/Get, per-request
// HTTP accounting) regress < 3% — the acceptance bar recorded in
// EXPERIMENTS.md.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", DefBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 10000.0)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", DefBuckets)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) / 10000.0)
			i++
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench_total", "code", "200")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_total", "code", "200").Inc()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
