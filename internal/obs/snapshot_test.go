package obs

import "testing"

func TestSnapshotKeysAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "code", "200").Add(7)
	r.Counter("requests_total", "code", "500").Add(2)
	r.Counter("plain_total").Inc()
	r.Gauge("inflight").Set(3)
	r.Histogram("latency_seconds", DefBuckets).Observe(0.1)

	snap := r.Snapshot()
	want := map[string]int64{
		`requests_total{code="200"}`: 7,
		`requests_total{code="500"}`: 2,
		`plain_total`:                1,
		`inflight`:                   3,
	}
	if len(snap) != len(want) {
		t.Fatalf("Snapshot has %d series, want %d (histograms excluded): %v", len(snap), len(want), snap)
	}
	for k, v := range want {
		if snap[k] != v {
			t.Fatalf("Snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
}

func TestSnapshotIsAPointInTimeCopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total")
	c.Inc()
	snap := r.Snapshot()
	c.Add(10)
	if snap["ticks_total"] != 1 {
		t.Fatalf("snapshot moved with the counter: %d", snap["ticks_total"])
	}
}
