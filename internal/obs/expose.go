// Exposition: the Prometheus text format (scrapeable, the /metricsz
// default) and an expvar-style JSON rendering (machine-diffable, used
// by vtcollect's -metrics dump). Both walk the same sorted snapshot,
// so series order is deterministic — pinned by the golden test.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every series in the Prometheus text
// exposition format: families sorted by name with one # TYPE line
// each, series sorted by label signature, label values escaped, and
// histogram buckets cumulative with a closing le="+Inf".
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, promLabels(s.labels, "", 0), s.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, promLabels(s.labels, "", 0), s.gauge.Value())
		case kindHistogram:
			snap := s.hist.Snapshot()
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Buckets[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", s.name, promLabels(s.labels, "le", bound), cum)
			}
			cum += snap.Buckets[len(snap.Bounds)]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", s.name, promLabels(s.labels, "le", math.Inf(1)), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.name, promLabels(s.labels, "", 0), formatFloat(snap.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.name, promLabels(s.labels, "", 0), snap.Count)
		}
	}
	return bw.Flush()
}

// promLabels renders {k="v",...}, optionally appending an le bound
// (histogram bucket lines). Returns "" for a label-free series.
func promLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonHistogram is the JSON shape of one histogram series.
type jsonHistogram struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // le -> cumulative count
}

// WriteJSON renders the registry as an expvar-style JSON object:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}, keyed by
// the full series signature. encoding/json sorts map keys, so the
// output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]jsonHistogram{}
	for _, s := range r.snapshot() {
		key := s.name + promLabels(s.labels, "", 0)
		switch s.kind {
		case kindCounter:
			counters[key] = s.counter.Value()
		case kindGauge:
			gauges[key] = s.gauge.Value()
		case kindHistogram:
			snap := s.hist.Snapshot()
			jh := jsonHistogram{Count: snap.Count, Sum: snap.Sum, Buckets: map[string]int64{}}
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Buckets[i]
				jh.Buckets[formatFloat(bound)] = cum
			}
			jh.Buckets["+Inf"] = snap.Count
			hists[key] = jh
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	})
}

// Handler serves the registry: Prometheus text by default,
// ?format=json for the JSON rendering — the body behind /metricsz.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Summary renders non-zero counters and gauges as a single
// "name{labels}=value ..." line — the final stats line vtstore and
// vtanalyze print after a run.
func (r *Registry) Summary() string {
	var parts []string
	for _, s := range r.snapshot() {
		switch s.kind {
		case kindCounter:
			if v := s.counter.Value(); v != 0 {
				parts = append(parts, fmt.Sprintf("%s%s=%d", s.name, promLabels(s.labels, "", 0), v))
			}
		case kindGauge:
			if v := s.gauge.Value(); v != 0 {
				parts = append(parts, fmt.Sprintf("%s%s=%d", s.name, promLabels(s.labels, "", 0), v))
			}
		}
	}
	return strings.Join(parts, " ")
}
