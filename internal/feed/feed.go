// Package feed implements the paper's data-collection loop (§4.1):
// "We called this interface every minute and VirusTotal returned us
// all the scan reports generated in that minute. We cached and parsed
// the scan reports, compressed them, and stored them."
//
// The Collector polls a Source minute by minute over a virtual
// window, forwarding every envelope to a Sink. Both ends are small
// interfaces so the collector runs identically against an in-process
// vtsim.Service or an HTTP vtclient.Client.
package feed

import (
	"context"
	"fmt"
	"time"

	"vtdynamics/internal/report"
)

// Source serves feed slices: all reports generated in [from, to).
type Source interface {
	FeedBetween(ctx context.Context, from, to time.Time) ([]report.Envelope, error)
}

// Sink consumes collected envelopes (e.g. the compressed store).
type Sink interface {
	Put(env report.Envelope) error
}

// SourceFunc adapts a function to Source.
type SourceFunc func(ctx context.Context, from, to time.Time) ([]report.Envelope, error)

// FeedBetween implements Source.
func (f SourceFunc) FeedBetween(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
	return f(ctx, from, to)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(env report.Envelope) error

// Put implements Sink.
func (f SinkFunc) Put(env report.Envelope) error { return f(env) }

// Stats summarizes one collection run.
type Stats struct {
	// Polls is the number of feed calls made (one per minute of the
	// window).
	Polls int
	// Envelopes is the number of reports collected.
	Envelopes int
	// Samples is the number of distinct sample hashes seen.
	Samples int
}

// Collector polls a Source and stores into a Sink.
type Collector struct {
	source Source
	sink   Sink
	// Interval is the poll period; the paper used one minute.
	Interval time.Duration
}

// NewCollector builds a collector with the paper's one-minute poll
// interval.
func NewCollector(source Source, sink Sink) *Collector {
	return &Collector{source: source, sink: sink, Interval: time.Minute}
}

// Run collects the window [start, end) in Interval steps. It is
// synchronous over virtual time: each poll covers exactly one
// interval, so no report can be missed or double-fetched. ctx cancels
// a long run.
func (c *Collector) Run(ctx context.Context, start, end time.Time) (Stats, error) {
	var stats Stats
	seen := make(map[string]bool)
	for from := start; from.Before(end); from = from.Add(c.Interval) {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		to := from.Add(c.Interval)
		if to.After(end) {
			to = end
		}
		envs, err := c.source.FeedBetween(ctx, from, to)
		if err != nil {
			return stats, fmt.Errorf("feed: poll [%v, %v): %w", from, to, err)
		}
		stats.Polls++
		for _, env := range envs {
			if err := c.sink.Put(env); err != nil {
				return stats, fmt.Errorf("feed: store: %w", err)
			}
			stats.Envelopes++
			if !seen[env.Meta.SHA256] {
				seen[env.Meta.SHA256] = true
				stats.Samples++
			}
		}
	}
	return stats, nil
}

// RunHourly is Run with a coarser step for long windows where
// minute-resolution polling would be needlessly slow in simulation;
// the semantics (disjoint, complete coverage) are identical.
func (c *Collector) RunHourly(ctx context.Context, start, end time.Time) (Stats, error) {
	saved := c.Interval
	c.Interval = time.Hour
	defer func() { c.Interval = saved }()
	return c.Run(ctx, start, end)
}
