// Package feed implements the paper's data-collection loop (§4.1):
// "We called this interface every minute and VirusTotal returned us
// all the scan reports generated in that minute. We cached and parsed
// the scan reports, compressed them, and stored them."
//
// The Collector polls a Source minute by minute over a virtual
// window, forwarding every envelope to a Sink. Both ends are small
// interfaces so the collector runs identically against an in-process
// vtsim.Service or an HTTP vtclient.Client.
package feed

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
)

// Source serves feed slices: all reports generated in [from, to).
type Source interface {
	FeedBetween(ctx context.Context, from, to time.Time) ([]report.Envelope, error)
}

// Sink consumes collected envelopes (e.g. the compressed store).
type Sink interface {
	Put(env report.Envelope) error
}

// BatchSink is an optional Sink upgrade: sinks that can commit a
// whole feed slice at once (store.PutBatch amortizes the partition
// lock this way). The collector uses it when available.
type BatchSink interface {
	Sink
	PutBatch(envs []report.Envelope) error
}

// Syncer is an optional Sink upgrade: sinks that can make buffered
// rows durable at a block boundary without tearing down their
// writers (store.Sync cuts the open gzip members and persists index
// sidecars). Resumable runs sync the sink before every checkpoint
// save, so the cursor never claims slices whose rows could still be
// lost in a crash.
type Syncer interface {
	Sync() error
}

// SourceFunc adapts a function to Source.
type SourceFunc func(ctx context.Context, from, to time.Time) ([]report.Envelope, error)

// FeedBetween implements Source.
func (f SourceFunc) FeedBetween(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
	return f(ctx, from, to)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(env report.Envelope) error

// Put implements Sink.
func (f SinkFunc) Put(env report.Envelope) error { return f(env) }

// Stats summarizes one collection run.
type Stats struct {
	// Polls is the number of feed calls made (one per minute of the
	// window).
	Polls int
	// Envelopes is the number of reports collected.
	Envelopes int
	// Samples is the number of distinct sample hashes seen.
	Samples int
}

// Collector polls a Source and stores into a Sink.
type Collector struct {
	source Source
	sink   Sink
	// Interval is the poll period; the paper used one minute.
	Interval time.Duration
	// Workers is the number of concurrent feed fetches. Values <= 1
	// poll serially (the paper's loop). With W > 1, up to W slices are
	// fetched in flight at once while commits to the sink stay in
	// strict slice order — so sink contents, stats, and checkpoint
	// semantics are identical to the serial run, only the fetch
	// latency overlaps.
	Workers int
	// Metrics receives the collector's instrumentation (windows
	// fetched/committed, in-flight slices, frontier, checkpoint lag,
	// fetch latency). Nil uses the process-wide default registry.
	Metrics *obs.Registry
}

// collectorMetrics caches the collector's series for one run so the
// poll loop never touches the registry map.
type collectorMetrics struct {
	fetched   *obs.Counter
	envelopes *obs.Counter
	committed *obs.Counter
	inflight  *obs.Gauge
	frontier  *obs.Gauge
	lag       *obs.Gauge
	fetch     *obs.Histogram
}

func (c *Collector) metrics() collectorMetrics {
	reg := c.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return collectorMetrics{
		fetched:   reg.Counter("collector_fetched_windows_total"),
		envelopes: reg.Counter("collector_envelopes_total"),
		committed: reg.Counter("collector_committed_windows_total"),
		inflight:  reg.Gauge("collector_inflight_slices"),
		frontier:  reg.Gauge("collector_frontier_unix"),
		lag:       reg.Gauge("collector_checkpoint_lag_seconds"),
		fetch:     reg.Histogram("collector_fetch_seconds", obs.DefBuckets),
	}
}

// committed records one window [.., to) durably stored: the commit
// counter, the frontier, and how far the frontier still lags the end
// of the requested window.
func (m collectorMetrics) commitWindow(to, end time.Time) {
	m.committed.Inc()
	m.frontier.Set(to.Unix())
	m.lag.Set(int64(end.Sub(to).Seconds()))
}

// NewCollector builds a collector with the paper's one-minute poll
// interval and serial fetching; set Workers for concurrent fetches.
func NewCollector(source Source, sink Sink) *Collector {
	return &Collector{source: source, sink: sink, Interval: time.Minute}
}

// Run collects the window [start, end) in Interval steps. Each poll
// covers exactly one interval, so no report can be missed or
// double-fetched; commits are in slice order even with Workers > 1.
// ctx cancels a long run.
func (c *Collector) Run(ctx context.Context, start, end time.Time) (Stats, error) {
	return c.collect(ctx, start, end, nil)
}

// commitSlice stores one slice's envelopes and folds them into stats.
func (c *Collector) commitSlice(m collectorMetrics, envs []report.Envelope, seen map[string]bool, stats *Stats) error {
	if bs, ok := c.sink.(BatchSink); ok {
		if err := bs.PutBatch(envs); err != nil {
			return fmt.Errorf("feed: store: %w", err)
		}
	} else {
		for _, env := range envs {
			if err := c.sink.Put(env); err != nil {
				return fmt.Errorf("feed: store: %w", err)
			}
		}
	}
	stats.Envelopes += len(envs)
	m.envelopes.Add(int64(len(envs)))
	for _, env := range envs {
		if !seen[env.Meta.SHA256] {
			seen[env.Meta.SHA256] = true
			stats.Samples++
		}
	}
	return nil
}

// collect is the shared engine behind Run and RunResumable: cursor is
// nil for uncheckpointed runs.
func (c *Collector) collect(ctx context.Context, start, end time.Time, cursor Cursor) (Stats, error) {
	var stats Stats
	from := start
	if cursor != nil {
		if frontier, ok, err := cursor.Load(); err != nil {
			return stats, err
		} else if ok {
			if frontier.After(end) {
				return stats, fmt.Errorf("%w: %v > %v", ErrCursorAhead, frontier, end)
			}
			if frontier.After(from) {
				from = frontier
			}
		}
	}
	if c.Workers > 1 {
		return c.collectConcurrent(ctx, from, end, cursor)
	}
	m := c.metrics()
	seen := make(map[string]bool)
	for ; from.Before(end); from = from.Add(c.Interval) {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		to := from.Add(c.Interval)
		if to.After(end) {
			to = end
		}
		m.inflight.Add(1)
		fetchStart := time.Now()
		envs, err := c.source.FeedBetween(ctx, from, to)
		m.fetch.ObserveDuration(time.Since(fetchStart))
		m.inflight.Add(-1)
		if err != nil {
			return stats, fmt.Errorf("feed: poll [%v, %v): %w", from, to, err)
		}
		m.fetched.Inc()
		stats.Polls++
		if err := c.commitSlice(m, envs, seen, &stats); err != nil {
			return stats, err
		}
		if cursor != nil {
			if err := c.syncSink(); err != nil {
				return stats, err
			}
			if err := cursor.Save(to); err != nil {
				return stats, err
			}
		}
		m.commitWindow(to, end)
	}
	return stats, nil
}

// syncSink makes committed rows durable before a checkpoint advances.
func (c *Collector) syncSink() error {
	if sy, ok := c.sink.(Syncer); ok {
		if err := sy.Sync(); err != nil {
			return fmt.Errorf("feed: sync: %w", err)
		}
	}
	return nil
}

// fetchResult carries one slice's envelopes from a worker to the
// committer.
type fetchResult struct {
	from, to time.Time
	envs     []report.Envelope
	err      error
}

// collectConcurrent fans slice fetches out to c.Workers goroutines
// while committing in slice order. In-flight slices are bounded by
// the worker count (plus the promise buffer), giving natural
// backpressure when the sink is the bottleneck.
func (c *Collector) collectConcurrent(ctx context.Context, start, end time.Time, cursor Cursor) (Stats, error) {
	var stats Stats
	if !start.Before(end) {
		return stats, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	m := c.metrics()
	type promise chan fetchResult
	workers := c.Workers
	// promises delivers per-slice result channels to the committer in
	// dispatch order; its buffer bounds the number of in-flight slices.
	promises := make(chan promise, workers)
	jobs := make(chan struct {
		p        promise
		from, to time.Time
	}, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if err := ctx.Err(); err != nil {
					job.p <- fetchResult{from: job.from, to: job.to, err: err}
					continue
				}
				fetchStart := time.Now()
				envs, err := c.source.FeedBetween(ctx, job.from, job.to)
				m.fetch.ObserveDuration(time.Since(fetchStart))
				if err == nil {
					m.fetched.Inc()
				}
				job.p <- fetchResult{from: job.from, to: job.to, envs: envs, err: err}
			}
		}()
	}
	go func() {
		defer close(promises)
		defer close(jobs)
		for from := start; from.Before(end); from = from.Add(c.Interval) {
			if ctx.Err() != nil {
				return
			}
			to := from.Add(c.Interval)
			if to.After(end) {
				to = end
			}
			p := make(promise, 1)
			select {
			case promises <- p:
				m.inflight.Add(1)
			case <-ctx.Done():
				return
			}
			jobs <- struct {
				p        promise
				from, to time.Time
			}{p, from, to}
		}
	}()
	defer wg.Wait()

	seen := make(map[string]bool)
	for p := range promises {
		res := <-p
		m.inflight.Add(-1)
		if res.err != nil {
			cancel()
			if res.err == ctx.Err() {
				return stats, res.err
			}
			return stats, fmt.Errorf("feed: poll [%v, %v): %w", res.from, res.to, res.err)
		}
		stats.Polls++
		if err := c.commitSlice(m, res.envs, seen, &stats); err != nil {
			cancel()
			return stats, err
		}
		if cursor != nil {
			if err := c.syncSink(); err != nil {
				cancel()
				return stats, err
			}
			if err := cursor.Save(res.to); err != nil {
				cancel()
				return stats, err
			}
		}
		m.commitWindow(res.to, end)
	}
	return stats, ctx.Err()
}

// RunHourly is Run with a coarser step for long windows where
// minute-resolution polling would be needlessly slow in simulation;
// the semantics (disjoint, complete coverage) are identical.
func (c *Collector) RunHourly(ctx context.Context, start, end time.Time) (Stats, error) {
	saved := c.Interval
	c.Interval = time.Hour
	defer func() { c.Interval = saved }()
	return c.Run(ctx, start, end)
}
