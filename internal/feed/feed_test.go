package feed

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

var t0 = time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)

// fakeSource serves envelopes with fixed timestamps. The call count
// is atomic because concurrent collectors overlap fetches.
type fakeSource struct {
	envs  []report.Envelope
	calls atomic.Int64
}

func (f *fakeSource) FeedBetween(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
	f.calls.Add(1)
	var out []report.Envelope
	for _, e := range f.envs {
		at := e.Scan.AnalysisDate
		if !at.Before(from) && at.Before(to) {
			out = append(out, e)
		}
	}
	return out, nil
}

func env(sha string, at time.Time) report.Envelope {
	return report.Envelope{
		Meta: report.SampleMeta{SHA256: sha, LastAnalysisDate: at},
		Scan: report.ScanReport{SHA256: sha, AnalysisDate: at},
	}
}

func TestCollectorCoversWindowExactly(t *testing.T) {
	src := &fakeSource{envs: []report.Envelope{
		env("a", t0),
		env("b", t0.Add(30*time.Second)),
		env("c", t0.Add(90*time.Second)),
		env("a", t0.Add(3*time.Minute)),
		env("late", t0.Add(10*time.Minute)), // outside the window
	}}
	var stored []report.Envelope
	sink := SinkFunc(func(e report.Envelope) error {
		stored = append(stored, e)
		return nil
	})
	c := NewCollector(src, sink)
	stats, err := c.Run(context.Background(), t0, t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Polls != 5 {
		t.Fatalf("polls = %d, want 5 (one per minute)", stats.Polls)
	}
	if stats.Envelopes != 4 || len(stored) != 4 {
		t.Fatalf("envelopes = %d", stats.Envelopes)
	}
	if stats.Samples != 3 {
		t.Fatalf("distinct samples = %d, want 3", stats.Samples)
	}
}

func TestCollectorNoDoubleFetch(t *testing.T) {
	// An envelope exactly on a poll boundary belongs to exactly one
	// slice: [from, to).
	src := &fakeSource{envs: []report.Envelope{env("edge", t0.Add(time.Minute))}}
	var n int
	c := NewCollector(src, SinkFunc(func(report.Envelope) error { n++; return nil }))
	if _, err := c.Run(context.Background(), t0, t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("boundary envelope collected %d times", n)
	}
}

func TestCollectorPartialLastSlice(t *testing.T) {
	src := &fakeSource{envs: []report.Envelope{env("x", t0.Add(80*time.Second))}}
	var n int
	c := NewCollector(src, SinkFunc(func(report.Envelope) error { n++; return nil }))
	// Window of 90 seconds: slices [0m,1m), [1m,1m30s).
	stats, err := c.Run(context.Background(), t0, t0.Add(90*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Polls != 2 || n != 1 {
		t.Fatalf("polls = %d, stored = %d", stats.Polls, n)
	}
}

// syncRecordingSink records the interleaving of Put, Sync, and
// cursor Save calls.
type syncRecordingSink struct {
	log *[]string
}

func (s *syncRecordingSink) Put(report.Envelope) error {
	*s.log = append(*s.log, "put")
	return nil
}

func (s *syncRecordingSink) Sync() error {
	*s.log = append(*s.log, "sync")
	return nil
}

// TestResumableSyncsSinkBeforeCheckpoint pins the durability
// contract: when the sink is a Syncer, every cursor save is preceded
// by a sync, so a checkpoint never claims rows still sitting in a
// write buffer.
func TestResumableSyncsSinkBeforeCheckpoint(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var log []string
		src := &fakeSource{envs: []report.Envelope{
			env("a", t0.Add(10*time.Second)),
			env("b", t0.Add(70*time.Second)),
		}}
		c := NewCollector(src, &syncRecordingSink{log: &log})
		c.Workers = workers
		cursor := &memCursor{log: &log}
		if _, err := c.RunResumable(context.Background(), t0, t0.Add(3*time.Minute), cursor); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		syncs, saves := 0, 0
		for i, ev := range log {
			switch ev {
			case "sync":
				syncs++
			case "save":
				saves++
				if i == 0 || log[i-1] != "sync" {
					t.Fatalf("workers=%d: save not preceded by sync: %v", workers, log)
				}
			}
		}
		if saves != 3 || syncs != 3 {
			t.Fatalf("workers=%d: %d saves, %d syncs (want 3 each): %v", workers, saves, syncs, log)
		}
	}
}

// memCursor is an in-memory Cursor that logs its saves.
type memCursor struct {
	log      *[]string
	frontier time.Time
	set      bool
}

func (m *memCursor) Load() (time.Time, bool, error) { return m.frontier, m.set, nil }

func (m *memCursor) Save(frontier time.Time) error {
	*m.log = append(*m.log, "save")
	m.frontier, m.set = frontier, true
	return nil
}

func TestCollectorSinkErrorStops(t *testing.T) {
	src := &fakeSource{envs: []report.Envelope{env("x", t0)}}
	sinkErr := errors.New("disk full")
	c := NewCollector(src, SinkFunc(func(report.Envelope) error { return sinkErr }))
	_, err := c.Run(context.Background(), t0, t0.Add(time.Minute))
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectorSourceErrorStops(t *testing.T) {
	srcErr := errors.New("http 500")
	src := SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
		return nil, srcErr
	})
	c := NewCollector(src, SinkFunc(func(report.Envelope) error { return nil }))
	_, err := c.Run(context.Background(), t0, t0.Add(time.Minute))
	if !errors.Is(err, srcErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectorContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &fakeSource{}
	c := NewCollector(src, SinkFunc(func(report.Envelope) error { return nil }))
	_, err := c.Run(ctx, t0, t0.Add(time.Hour))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if src.calls.Load() != 0 {
		t.Fatalf("source called %d times after cancel", src.calls.Load())
	}
}

func TestRunHourlyRestoresInterval(t *testing.T) {
	src := &fakeSource{}
	c := NewCollector(src, SinkFunc(func(report.Envelope) error { return nil }))
	if _, err := c.RunHourly(context.Background(), t0, t0.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if src.calls.Load() != 3 {
		t.Fatalf("hourly polls = %d", src.calls.Load())
	}
	if c.Interval != time.Minute {
		t.Fatalf("interval not restored: %v", c.Interval)
	}
}
