package feed

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

func TestFileCursorRoundTrip(t *testing.T) {
	c := &FileCursor{Path: filepath.Join(t.TempDir(), "cursor")}
	if _, ok, err := c.Load(); err != nil || ok {
		t.Fatalf("fresh cursor: ok=%v err=%v", ok, err)
	}
	want := time.Unix(1622505600, 0).UTC()
	if err := c.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load()
	if err != nil || !ok || !got.Equal(want) {
		t.Fatalf("Load = %v, %v, %v", got, ok, err)
	}
}

// TestFileCursorTornWriteRecovery exercises every file state a kill
// mid-checkpoint can leave behind. A torn file is recovery input, not
// an error: Load falls back to whichever of cursor/cursor.tmp still
// holds a valid frontier and reports ok=false only when neither does.
func TestFileCursorTornWriteRecovery(t *testing.T) {
	early := time.Unix(1622505600, 0).UTC()
	late := early.Add(time.Hour)
	sec := func(ts time.Time) []byte {
		return []byte(strconv.FormatInt(ts.Unix(), 10) + "\n")
	}
	cases := []struct {
		name      string
		main, tmp []byte // nil = file absent
		want      time.Time
		ok        bool
	}{
		{name: "both absent", ok: false},
		{name: "garbage main only", main: []byte("not-a-number"), ok: false},
		{name: "empty main only", main: []byte{}, ok: false},
		{name: "garbage main, valid tmp", main: []byte("not-a-number"), tmp: sec(late), want: late, ok: true},
		{name: "truncated main, valid tmp", main: sec(late)[:4], tmp: sec(late), want: late, ok: true},
		{name: "valid main, torn tmp", main: sec(early), tmp: []byte("16225"), want: early, ok: true},
		{name: "orphaned newer tmp", main: sec(early), tmp: sec(late), want: late, ok: true},
		{name: "stale tmp loses to main", main: sec(late), tmp: sec(early), want: late, ok: true},
		{name: "both torn", main: []byte("x"), tmp: []byte{}, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cursor")
			if tc.main != nil {
				if err := os.WriteFile(path, tc.main, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if tc.tmp != nil {
				if err := os.WriteFile(path+".tmp", tc.tmp, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got, ok, err := (&FileCursor{Path: path}).Load()
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && !got.Equal(tc.want) {
				t.Fatalf("frontier = %v, want %v", got, tc.want)
			}
		})
	}
}

// A save after recovery must atomically replace whatever debris the
// crash left, so the next Load sees only the new frontier.
func TestFileCursorSaveAfterTornState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &FileCursor{Path: path}
	want := time.Unix(1625097600, 0).UTC()
	if err := c.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load()
	if err != nil || !ok || !got.Equal(want) {
		t.Fatalf("Load = %v, %v, %v", got, ok, err)
	}
	// Rename consumed the temp file; no stale companion remains.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestRunResumableCompletesAfterCrash(t *testing.T) {
	src := &fakeSource{envs: []report.Envelope{
		env("a", t0.Add(30*time.Second)),
		env("b", t0.Add(90*time.Second)),
		env("c", t0.Add(150*time.Second)),
		env("d", t0.Add(210*time.Second)),
	}}
	cursor := &MemCursor{}
	var stored []string
	failAfter := 2 // sink fails on the third envelope
	sink := SinkFunc(func(e report.Envelope) error {
		if len(stored) == failAfter {
			return errors.New("disk full")
		}
		stored = append(stored, e.Meta.SHA256)
		return nil
	})
	c := NewCollector(src, sink)
	end := t0.Add(4 * time.Minute)

	// First run crashes mid-campaign.
	_, err := c.RunResumable(context.Background(), t0, end, cursor)
	if err == nil {
		t.Fatal("expected crash")
	}
	if len(stored) != 2 {
		t.Fatalf("stored before crash = %v", stored)
	}

	// The sink recovers; the resumed run must fetch only the
	// unfinished slices: envelope "c" again (its slice never
	// checkpointed) and "d" — but never "a" or "b".
	failAfter = 1 << 30
	stats, err := c.RunResumable(context.Background(), t0, end, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 4 {
		t.Fatalf("stored after resume = %v", stored)
	}
	for _, sha := range stored[:2] {
		if sha == "c" || sha == "d" {
			t.Fatalf("early envelopes reordered: %v", stored)
		}
	}
	// a and b must not be double-stored.
	count := map[string]int{}
	for _, sha := range stored {
		count[sha]++
	}
	for sha, n := range count {
		if n != 1 {
			t.Fatalf("envelope %s stored %d times", sha, n)
		}
	}
	if stats.Polls >= 4 {
		t.Fatalf("resume repeated completed slices: %d polls", stats.Polls)
	}
}

func TestRunResumableFreshEqualsRun(t *testing.T) {
	mk := func() (*fakeSource, *int, Sink) {
		src := &fakeSource{envs: []report.Envelope{
			env("x", t0.Add(10*time.Second)),
			env("y", t0.Add(70*time.Second)),
		}}
		n := 0
		return src, &n, SinkFunc(func(report.Envelope) error { n++; return nil })
	}
	srcA, nA, sinkA := mk()
	a := NewCollector(srcA, sinkA)
	statsA, err := a.Run(context.Background(), t0, t0.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	srcB, nB, sinkB := mk()
	b := NewCollector(srcB, sinkB)
	statsB, err := b.RunResumable(context.Background(), t0, t0.Add(2*time.Minute), &MemCursor{})
	if err != nil {
		t.Fatal(err)
	}
	if *nA != *nB || statsA.Envelopes != statsB.Envelopes || statsA.Polls != statsB.Polls {
		t.Fatalf("Run(%+v,%d) != RunResumable(%+v,%d)", statsA, *nA, statsB, *nB)
	}
}

func TestRunResumableCursorAhead(t *testing.T) {
	cursor := &MemCursor{}
	if err := cursor.Save(t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(&fakeSource{}, SinkFunc(func(report.Envelope) error { return nil }))
	_, err := c.RunResumable(context.Background(), t0, t0.Add(time.Minute), cursor)
	if !errors.Is(err, ErrCursorAhead) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunResumableAlreadyComplete(t *testing.T) {
	cursor := &MemCursor{}
	end := t0.Add(2 * time.Minute)
	if err := cursor.Save(end); err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{envs: []report.Envelope{env("x", t0)}}
	c := NewCollector(src, SinkFunc(func(report.Envelope) error {
		t.Fatal("completed campaign must not store anything")
		return nil
	}))
	stats, err := c.RunResumable(context.Background(), t0, end, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Polls != 0 {
		t.Fatalf("polls = %d", stats.Polls)
	}
}
