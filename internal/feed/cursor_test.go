package feed

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

func TestFileCursorRoundTrip(t *testing.T) {
	c := &FileCursor{Path: filepath.Join(t.TempDir(), "cursor")}
	if _, ok, err := c.Load(); err != nil || ok {
		t.Fatalf("fresh cursor: ok=%v err=%v", ok, err)
	}
	want := time.Unix(1622505600, 0).UTC()
	if err := c.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load()
	if err != nil || !ok || !got.Equal(want) {
		t.Fatalf("Load = %v, %v, %v", got, ok, err)
	}
}

func TestFileCursorMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	if err := (&FileCursor{Path: path}).Save(t0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file.
	if err := os.WriteFile(path, []byte("not-a-number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (&FileCursor{Path: path}).Load(); err == nil {
		t.Fatal("expected error on malformed cursor")
	}
}

func TestRunResumableCompletesAfterCrash(t *testing.T) {
	src := &fakeSource{envs: []report.Envelope{
		env("a", t0.Add(30*time.Second)),
		env("b", t0.Add(90*time.Second)),
		env("c", t0.Add(150*time.Second)),
		env("d", t0.Add(210*time.Second)),
	}}
	cursor := &MemCursor{}
	var stored []string
	failAfter := 2 // sink fails on the third envelope
	sink := SinkFunc(func(e report.Envelope) error {
		if len(stored) == failAfter {
			return errors.New("disk full")
		}
		stored = append(stored, e.Meta.SHA256)
		return nil
	})
	c := NewCollector(src, sink)
	end := t0.Add(4 * time.Minute)

	// First run crashes mid-campaign.
	_, err := c.RunResumable(context.Background(), t0, end, cursor)
	if err == nil {
		t.Fatal("expected crash")
	}
	if len(stored) != 2 {
		t.Fatalf("stored before crash = %v", stored)
	}

	// The sink recovers; the resumed run must fetch only the
	// unfinished slices: envelope "c" again (its slice never
	// checkpointed) and "d" — but never "a" or "b".
	failAfter = 1 << 30
	stats, err := c.RunResumable(context.Background(), t0, end, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 4 {
		t.Fatalf("stored after resume = %v", stored)
	}
	for _, sha := range stored[:2] {
		if sha == "c" || sha == "d" {
			t.Fatalf("early envelopes reordered: %v", stored)
		}
	}
	// a and b must not be double-stored.
	count := map[string]int{}
	for _, sha := range stored {
		count[sha]++
	}
	for sha, n := range count {
		if n != 1 {
			t.Fatalf("envelope %s stored %d times", sha, n)
		}
	}
	if stats.Polls >= 4 {
		t.Fatalf("resume repeated completed slices: %d polls", stats.Polls)
	}
}

func TestRunResumableFreshEqualsRun(t *testing.T) {
	mk := func() (*fakeSource, *int, Sink) {
		src := &fakeSource{envs: []report.Envelope{
			env("x", t0.Add(10*time.Second)),
			env("y", t0.Add(70*time.Second)),
		}}
		n := 0
		return src, &n, SinkFunc(func(report.Envelope) error { n++; return nil })
	}
	srcA, nA, sinkA := mk()
	a := NewCollector(srcA, sinkA)
	statsA, err := a.Run(context.Background(), t0, t0.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	srcB, nB, sinkB := mk()
	b := NewCollector(srcB, sinkB)
	statsB, err := b.RunResumable(context.Background(), t0, t0.Add(2*time.Minute), &MemCursor{})
	if err != nil {
		t.Fatal(err)
	}
	if *nA != *nB || statsA.Envelopes != statsB.Envelopes || statsA.Polls != statsB.Polls {
		t.Fatalf("Run(%+v,%d) != RunResumable(%+v,%d)", statsA, *nA, statsB, *nB)
	}
}

func TestRunResumableCursorAhead(t *testing.T) {
	cursor := &MemCursor{}
	if err := cursor.Save(t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(&fakeSource{}, SinkFunc(func(report.Envelope) error { return nil }))
	_, err := c.RunResumable(context.Background(), t0, t0.Add(time.Minute), cursor)
	if !errors.Is(err, ErrCursorAhead) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunResumableAlreadyComplete(t *testing.T) {
	cursor := &MemCursor{}
	end := t0.Add(2 * time.Minute)
	if err := cursor.Save(end); err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{envs: []report.Envelope{env("x", t0)}}
	c := NewCollector(src, SinkFunc(func(report.Envelope) error {
		t.Fatal("completed campaign must not store anything")
		return nil
	}))
	stats, err := c.RunResumable(context.Background(), t0, end, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Polls != 0 {
		t.Fatalf("polls = %d", stats.Polls)
	}
}
