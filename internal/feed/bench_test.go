package feed

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// fetchLatency models one /feed poll against a remote API. The
// paper's collection loop is latency-bound, not CPU-bound: each
// per-minute batch costs a round trip, so overlapping fetches is
// where the worker pool earns its keep.
const fetchLatency = 2 * time.Millisecond

func benchSource() Source {
	return SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
		select {
		case <-time.After(fetchLatency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		sha := fmt.Sprintf("bench-%d", from.Unix())
		return []report.Envelope{{
			Meta: report.SampleMeta{SHA256: sha, LastAnalysisDate: from},
			Scan: report.ScanReport{SHA256: sha, AnalysisDate: from, FileType: "Win32 EXE"},
		}}, nil
	})
}

// benchCollect runs one 64-minute window; reported ns/op is the
// wall-clock for the whole window, so worker counts compare directly.
func benchCollect(b *testing.B, workers int) {
	b.Helper()
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	src := benchSource()
	for i := 0; i < b.N; i++ {
		c := NewCollector(src, SinkFunc(func(report.Envelope) error { return nil }))
		c.Workers = workers
		if _, err := c.Run(context.Background(), t0, t0.Add(64*time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectWindowWorkers1(b *testing.B)  { benchCollect(b, 1) }
func BenchmarkCollectWindowWorkers4(b *testing.B)  { benchCollect(b, 4) }
func BenchmarkCollectWindowWorkers8(b *testing.B)  { benchCollect(b, 8) }
func BenchmarkCollectWindowWorkers16(b *testing.B) { benchCollect(b, 16) }
