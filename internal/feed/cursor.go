package feed

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// A 14-month collection campaign will be interrupted — the paper's
// authors polled every minute for over 400 days. A Cursor persists
// the collection frontier so a restarted collector resumes exactly at
// the first unfetched slice, neither losing nor double-storing
// reports.

// Cursor stores the end of the last fully collected slice.
type Cursor interface {
	// Load returns the stored frontier, or ok == false when no
	// progress has been recorded yet.
	Load() (frontier time.Time, ok bool, err error)
	// Save records the new frontier. Called after each slice's
	// envelopes are durably in the sink.
	Save(frontier time.Time) error
}

// FileCursor persists the frontier as Unix seconds in a small file,
// written atomically (write temp + rename).
type FileCursor struct {
	Path string
}

// Load implements Cursor.
func (c *FileCursor) Load() (time.Time, bool, error) {
	b, err := os.ReadFile(c.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return time.Time{}, false, nil
		}
		return time.Time{}, false, fmt.Errorf("feed: cursor: %w", err)
	}
	sec, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return time.Time{}, false, fmt.Errorf("feed: cursor: malformed %q: %w", string(b), err)
	}
	return time.Unix(sec, 0).UTC(), true, nil
}

// Save implements Cursor.
func (c *FileCursor) Save(frontier time.Time) error {
	tmp := c.Path + ".tmp"
	data := strconv.FormatInt(frontier.Unix(), 10) + "\n"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	if err := os.Rename(tmp, c.Path); err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	return nil
}

// CursorFunc adapts a load/save function pair to Cursor — handy for
// wrapping a Cursor with extra behavior (cmd/vtcollect flushes the
// store before each checkpoint this way).
type CursorFunc struct {
	LoadFn func() (time.Time, bool, error)
	SaveFn func(frontier time.Time) error
}

// Load implements Cursor.
func (c CursorFunc) Load() (time.Time, bool, error) { return c.LoadFn() }

// Save implements Cursor.
func (c CursorFunc) Save(frontier time.Time) error { return c.SaveFn(frontier) }

// MemCursor is an in-memory Cursor for tests and single-process runs.
type MemCursor struct {
	frontier time.Time
	set      bool
}

// Load implements Cursor.
func (c *MemCursor) Load() (time.Time, bool, error) { return c.frontier, c.set, nil }

// Save implements Cursor.
func (c *MemCursor) Save(t time.Time) error {
	c.frontier = t
	c.set = true
	return nil
}

// ErrCursorAhead is returned when the stored frontier lies beyond the
// requested window end — the caller is probably resuming with the
// wrong window.
var ErrCursorAhead = errors.New("feed: cursor frontier beyond window end")

// RunResumable is Run with checkpointing: it starts from the cursor's
// frontier when one is stored (otherwise from start) and saves the
// frontier after every slice, so a crashed or cancelled run can be
// re-invoked with the same arguments and will complete the window
// exactly once. With Workers > 1 fetches overlap, but commits (and
// therefore checkpoints) stay in slice order, so the exactly-once
// guarantee is unchanged.
func (c *Collector) RunResumable(ctx context.Context, start, end time.Time, cursor Cursor) (Stats, error) {
	return c.collect(ctx, start, end, cursor)
}
