package feed

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// A 14-month collection campaign will be interrupted — the paper's
// authors polled every minute for over 400 days. A Cursor persists
// the collection frontier so a restarted collector resumes exactly at
// the first unfetched slice, neither losing nor double-storing
// reports.

// Cursor stores the end of the last fully collected slice.
type Cursor interface {
	// Load returns the stored frontier, or ok == false when no
	// progress has been recorded yet.
	Load() (frontier time.Time, ok bool, err error)
	// Save records the new frontier. Called after each slice's
	// envelopes are durably in the sink.
	Save(frontier time.Time) error
}

// FileCursor persists the frontier as Unix seconds in a small file,
// written atomically (write temp + rename).
type FileCursor struct {
	Path string
}

// Load implements Cursor.
func (c *FileCursor) Load() (time.Time, bool, error) {
	b, err := os.ReadFile(c.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return time.Time{}, false, nil
		}
		return time.Time{}, false, fmt.Errorf("feed: cursor: %w", err)
	}
	sec, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return time.Time{}, false, fmt.Errorf("feed: cursor: malformed %q: %w", string(b), err)
	}
	return time.Unix(sec, 0).UTC(), true, nil
}

// Save implements Cursor.
func (c *FileCursor) Save(frontier time.Time) error {
	tmp := c.Path + ".tmp"
	data := strconv.FormatInt(frontier.Unix(), 10) + "\n"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	if err := os.Rename(tmp, c.Path); err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	return nil
}

// MemCursor is an in-memory Cursor for tests and single-process runs.
type MemCursor struct {
	frontier time.Time
	set      bool
}

// Load implements Cursor.
func (c *MemCursor) Load() (time.Time, bool, error) { return c.frontier, c.set, nil }

// Save implements Cursor.
func (c *MemCursor) Save(t time.Time) error {
	c.frontier = t
	c.set = true
	return nil
}

// ErrCursorAhead is returned when the stored frontier lies beyond the
// requested window end — the caller is probably resuming with the
// wrong window.
var ErrCursorAhead = errors.New("feed: cursor frontier beyond window end")

// RunResumable is Run with checkpointing: it starts from the cursor's
// frontier when one is stored (otherwise from start) and saves the
// frontier after every slice, so a crashed or cancelled run can be
// re-invoked with the same arguments and will complete the window
// exactly once.
func (c *Collector) RunResumable(ctx context.Context, start, end time.Time, cursor Cursor) (Stats, error) {
	var stats Stats
	from := start
	if frontier, ok, err := cursor.Load(); err != nil {
		return stats, err
	} else if ok {
		if frontier.After(end) {
			return stats, fmt.Errorf("%w: %v > %v", ErrCursorAhead, frontier, end)
		}
		if frontier.After(from) {
			from = frontier
		}
	}
	seen := make(map[string]bool)
	for ; from.Before(end); from = from.Add(c.Interval) {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		to := from.Add(c.Interval)
		if to.After(end) {
			to = end
		}
		envs, err := c.source.FeedBetween(ctx, from, to)
		if err != nil {
			return stats, fmt.Errorf("feed: poll [%v, %v): %w", from, to, err)
		}
		stats.Polls++
		for _, env := range envs {
			if err := c.sink.Put(env); err != nil {
				return stats, fmt.Errorf("feed: store: %w", err)
			}
			stats.Envelopes++
			if !seen[env.Meta.SHA256] {
				seen[env.Meta.SHA256] = true
				stats.Samples++
			}
		}
		if err := cursor.Save(to); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
