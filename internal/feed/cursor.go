package feed

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// A 14-month collection campaign will be interrupted — the paper's
// authors polled every minute for over 400 days. A Cursor persists
// the collection frontier so a restarted collector resumes exactly at
// the first unfetched slice, neither losing nor double-storing
// reports.

// Cursor stores the end of the last fully collected slice.
type Cursor interface {
	// Load returns the stored frontier, or ok == false when no
	// progress has been recorded yet.
	Load() (frontier time.Time, ok bool, err error)
	// Save records the new frontier. Called after each slice's
	// envelopes are durably in the sink.
	Save(frontier time.Time) error
}

// FileCursor persists the frontier as Unix seconds in a small file,
// written atomically (write temp + fsync + rename).
//
// Crash recovery: a kill mid-checkpoint can leave the main file
// truncated or the temp file orphaned at any stage. Load therefore
// considers both files and returns the furthest valid frontier it
// finds, ignoring whichever is torn. That is always safe — never a
// gap, at worst a re-fetch — because Save is only called after the
// slice's envelopes are durably in the sink: the frontier is monotone
// and every value ever written to either file was durable when
// written, so the max of the surviving values is a frontier the sink
// has fully absorbed.
type FileCursor struct {
	Path string
}

// readFrontier parses one cursor file; ok is false when the file is
// missing or torn (unreadable content is recovery input here, not an
// error — the companion file may still hold a good frontier).
func readFrontier(path string) (time.Time, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return time.Time{}, false
	}
	sec, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.Unix(sec, 0).UTC(), true
}

// Load implements Cursor.
func (c *FileCursor) Load() (time.Time, bool, error) {
	main, mainOK := readFrontier(c.Path)
	tmp, tmpOK := readFrontier(c.Path + ".tmp")
	switch {
	case mainOK && tmpOK:
		if tmp.After(main) {
			return tmp, true, nil
		}
		return main, true, nil
	case mainOK:
		return main, true, nil
	case tmpOK:
		return tmp, true, nil
	}
	return time.Time{}, false, nil
}

// Save implements Cursor.
func (c *FileCursor) Save(frontier time.Time) error {
	tmp := c.Path + ".tmp"
	data := strconv.FormatInt(frontier.Unix(), 10) + "\n"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		f.Close()
		return fmt.Errorf("feed: cursor: %w", err)
	}
	// fsync before rename: otherwise a crash can promote a zero-length
	// temp file over a good cursor.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("feed: cursor: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	if err := os.Rename(tmp, c.Path); err != nil {
		return fmt.Errorf("feed: cursor: %w", err)
	}
	return nil
}

// CursorFunc adapts a load/save function pair to Cursor — handy for
// wrapping a Cursor with extra behavior (cmd/vtcollect flushes the
// store before each checkpoint this way).
type CursorFunc struct {
	LoadFn func() (time.Time, bool, error)
	SaveFn func(frontier time.Time) error
}

// Load implements Cursor.
func (c CursorFunc) Load() (time.Time, bool, error) { return c.LoadFn() }

// Save implements Cursor.
func (c CursorFunc) Save(frontier time.Time) error { return c.SaveFn(frontier) }

// MemCursor is an in-memory Cursor for tests and single-process runs.
type MemCursor struct {
	frontier time.Time
	set      bool
}

// Load implements Cursor.
func (c *MemCursor) Load() (time.Time, bool, error) { return c.frontier, c.set, nil }

// Save implements Cursor.
func (c *MemCursor) Save(t time.Time) error {
	c.frontier = t
	c.set = true
	return nil
}

// ErrCursorAhead is returned when the stored frontier lies beyond the
// requested window end — the caller is probably resuming with the
// wrong window.
var ErrCursorAhead = errors.New("feed: cursor frontier beyond window end")

// RunResumable is Run with checkpointing: it starts from the cursor's
// frontier when one is stored (otherwise from start) and saves the
// frontier after every slice, so a crashed or cancelled run can be
// re-invoked with the same arguments and will complete the window
// exactly once. With Workers > 1 fetches overlap, but commits (and
// therefore checkpoints) stay in slice order, so the exactly-once
// guarantee is unchanged.
func (c *Collector) RunResumable(ctx context.Context, start, end time.Time, cursor Cursor) (Stats, error) {
	return c.collect(ctx, start, end, cursor)
}
