// Package vtsim implements the simulated VirusTotal service: it
// orchestrates the engine roster over submitted samples, maintains
// per-sample metadata with the exact field-update rules of the
// paper's Table 1, keeps full scan histories, and exposes the
// generated-report stream the premium feed delivers.
//
// Two usage modes:
//
//   - Service: a stateful, concurrency-safe service with Upload /
//     Rescan / Report operations — the thing cmd/vtsimd serves over
//     HTTP and the collector polls. Use for API-semantics and
//     feed/store experiments.
//
//   - ScanSample: a pure function producing one sample's complete
//     scan history. Analyses only ever need per-sample histories, so
//     large experiments call this concurrently across samples without
//     materializing a global service.
//
// Concurrency model: sample state is hash-sharded (FNV-1a of the
// SHA-256, power-of-two shard count) with one mutex per shard, so
// operations on different samples run in parallel — the engine scan,
// the expensive part of every upload/rescan, only holds its sample's
// shard lock. The feed is a single ordered log guarded by its own
// mutex; appends keep it sorted by analysis date so FeedBetween can
// binary-search. Envelopes with equal timestamps appear in commit
// order, which under concurrent submission is scheduling-dependent;
// serial drivers (RunWorkload) retain the exact seed ordering.
package vtsim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/xrand"
)

// Errors returned by the service.
var (
	ErrUnknownSample = errors.New("vtsim: unknown sample")
	ErrNoTarget      = errors.New("vtsim: upload requires target attributes for a new sample")
)

// DefaultShards is the sample-map shard count used by NewService
// unless overridden with WithShards.
const DefaultShards = 32

// Service is the stateful simulated VT backend. It is safe for
// concurrent use; see the package comment for the sharding scheme.
type Service struct {
	clock   simclock.Clock
	engines *engine.Set
	shards  []serviceShard
	mask    uint32

	// feedMu guards the ordered report log; it is separate from the
	// shard locks so sample operations never contend on it beyond the
	// short append.
	feedMu sync.Mutex
	feed   []report.Envelope

	// outage holds the currently-down engine set — the scenario hook
	// behind engine-outage waves. nil means every engine is up. The
	// pointer swaps atomically so scans never take an extra lock.
	outage atomic.Pointer[map[string]struct{}]

	m simMetrics
}

// simMetrics caches the service's series; the per-shard occupancy
// gauges are pre-resolved so the upload path does one gauge add, not
// a registry lookup.
type simMetrics struct {
	scans        *obs.Counter
	feedAppends  *obs.Counter
	feedLen      *obs.Gauge
	outageDrops  *obs.Counter
	enginesDown  *obs.Gauge
	shardSamples []*obs.Gauge
}

func newSimMetrics(reg *obs.Registry, shards int) simMetrics {
	m := simMetrics{
		scans:        reg.Counter("sim_scans_total"),
		feedAppends:  reg.Counter("sim_feed_appends_total"),
		feedLen:      reg.Gauge("sim_feed_length"),
		outageDrops:  reg.Counter("sim_outage_dropped_results_total"),
		enginesDown:  reg.Gauge("sim_engines_down"),
		shardSamples: make([]*obs.Gauge, shards),
	}
	for i := range m.shardSamples {
		m.shardSamples[i] = reg.Gauge("sim_shard_samples", "shard", strconv.Itoa(i))
	}
	return m
}

type serviceShard struct {
	mu      sync.Mutex
	samples map[string]*sampleState
}

type sampleState struct {
	target  engine.Target
	meta    report.SampleMeta
	history []*report.ScanReport
}

// Option configures a Service.
type Option func(*serviceConfig)

type serviceConfig struct {
	shards int
	reg    *obs.Registry
}

// WithMetrics routes the service's instrumentation (scans, feed
// appends and length, per-shard sample occupancy) into reg instead of
// the process-wide default registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *serviceConfig) { c.reg = reg }
}

// WithShards sets the sample-map shard count. Values are rounded up
// to the next power of two; n < 1 selects DefaultShards. The shard
// count never affects results, only contention.
func WithShards(n int) Option {
	return func(c *serviceConfig) { c.shards = n }
}

// NewService builds a service over the given engine set and clock.
func NewService(engines *engine.Set, clock simclock.Clock, opts ...Option) *Service {
	cfg := serviceConfig{shards: DefaultShards}
	for _, o := range opts {
		o(&cfg)
	}
	n := nextPow2(cfg.shards)
	s := &Service{
		clock:   clock,
		engines: engines,
		shards:  make([]serviceShard, n),
		mask:    uint32(n - 1),
	}
	for i := range s.shards {
		s.shards[i].samples = make(map[string]*sampleState)
	}
	reg := cfg.reg
	if reg == nil {
		reg = obs.Default()
	}
	s.m = newSimMetrics(reg, n)
	return s
}

func nextPow2(n int) int {
	if n < 1 {
		return DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fnv32a hashes a sample hash onto its shard.
func fnv32a(s string) uint32 {
	const offset = 2166136261
	const prime = 16777619
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (s *Service) shardFor(sha string) *serviceShard {
	return &s.shards[fnv32a(sha)&s.mask]
}

// NumShards returns the shard count (always a power of two).
func (s *Service) NumShards() int { return len(s.shards) }

// UploadRequest describes a file being uploaded. The latent fields
// (Malicious, Detectability) stand in for the file content the real
// service would receive.
type UploadRequest struct {
	SHA256        string
	FileType      string
	Size          int64
	Malicious     bool
	Detectability float64
}

// Upload submits a file and analyzes it (Table 1 row "Upload"):
// last_analysis_date and last_submission_date update and
// times_submitted increments. The first upload also sets
// first_submission_date.
func (s *Service) Upload(req UploadRequest) (report.Envelope, error) {
	if req.SHA256 == "" {
		return report.Envelope{}, ErrNoTarget
	}
	shard := fnv32a(req.SHA256) & s.mask
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := s.clock.Now()
	st, ok := sh.samples[req.SHA256]
	if !ok {
		s.m.shardSamples[shard].Add(1)
		st = &sampleState{
			target: engine.Target{
				SHA256:        req.SHA256,
				FileType:      req.FileType,
				Malicious:     req.Malicious,
				Detectability: req.Detectability,
				FirstSeen:     now,
			},
			meta: report.SampleMeta{
				SHA256:              req.SHA256,
				FileType:            req.FileType,
				Size:                req.Size,
				FirstSubmissionDate: now,
			},
		}
		sh.samples[req.SHA256] = st
	}
	st.meta.LastSubmissionDate = now
	st.meta.TimesSubmitted++
	env := s.analyzeLocked(st, now)
	return env, nil
}

// Rescan re-analyzes an existing sample (Table 1 row "Rescan"): only
// last_analysis_date updates.
func (s *Service) Rescan(sha256 string) (report.Envelope, error) {
	sh := s.shardFor(sha256)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.samples[sha256]
	if !ok {
		return report.Envelope{}, fmt.Errorf("%w: %s", ErrUnknownSample, sha256)
	}
	env := s.analyzeLocked(st, s.clock.Now())
	return env, nil
}

// Report returns the latest report without generating a new one
// (Table 1 row "Report"): no field changes.
func (s *Service) Report(sha256 string) (report.Envelope, error) {
	sh := s.shardFor(sha256)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.samples[sha256]
	if !ok {
		return report.Envelope{}, fmt.Errorf("%w: %s", ErrUnknownSample, sha256)
	}
	if len(st.history) == 0 {
		return report.Envelope{}, fmt.Errorf("%w: %s has no analyses", ErrUnknownSample, sha256)
	}
	return report.Envelope{Meta: st.meta, Scan: *st.history[len(st.history)-1].Clone()}, nil
}

// History returns a copy of the sample's full scan history.
func (s *Service) History(sha256 string) (*report.History, error) {
	sh := s.shardFor(sha256)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.samples[sha256]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSample, sha256)
	}
	h := &report.History{Meta: st.meta}
	for _, r := range st.history {
		h.Reports = append(h.Reports, r.Clone())
	}
	return h, nil
}

// NumSamples returns the number of distinct samples seen.
func (s *Service) NumSamples() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.samples)
		sh.mu.Unlock()
	}
	return n
}

// NumReports returns the total number of generated reports.
func (s *Service) NumReports() int {
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	return len(s.feed)
}

// FeedSpan returns the analysis dates of the first and last envelopes
// in the report log, and ok == false while the log is empty. A feed
// consumer that wants to drain exactly the generated reports — the
// benchmark harness's ingest scenario, a backfill job — can derive its
// poll window from the span instead of assuming the collection
// calendar.
func (s *Service) FeedSpan() (first, last time.Time, ok bool) {
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	if len(s.feed) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.feed[0].Scan.AnalysisDate, s.feed[len(s.feed)-1].Scan.AnalysisDate, true
}

// FeedBetween returns the envelopes generated in [from, to), ordered
// by analysis date — the premium-feed slice the collector fetches
// every virtual minute. The result is a fresh deep copy: callers may
// retain or mutate it freely and can never observe (or disturb)
// concurrent appends to the internal log.
func (s *Service) FeedBetween(from, to time.Time) []report.Envelope {
	return s.FeedBetweenLimit(from, to, 0)
}

// FeedBetweenLimit is FeedBetween with a page cap: at most limit
// envelopes from the start of the window (limit <= 0 means
// unlimited). A consumer catching up after a lag reads the feed in
// bounded pages — advancing from past the last envelope returned —
// instead of asking for one unbounded response whose copy cost grows
// with the backlog.
func (s *Service) FeedBetweenLimit(from, to time.Time, limit int) []report.Envelope {
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	// The feed is kept sorted by nondecreasing analysis time, so
	// binary-search the bounds.
	lo := sort.Search(len(s.feed), func(i int) bool {
		return !s.feed[i].Scan.AnalysisDate.Before(from)
	})
	hi := sort.Search(len(s.feed), func(i int) bool {
		return !s.feed[i].Scan.AnalysisDate.Before(to)
	})
	if limit > 0 && hi-lo > limit {
		hi = lo + limit
	}
	out := make([]report.Envelope, hi-lo)
	for i, env := range s.feed[lo:hi] {
		out[i] = report.Envelope{Meta: env.Meta, Scan: *env.Scan.Clone()}
	}
	return out
}

// appendFeed inserts env keeping the log sorted by analysis date.
// Under a monotonic clock the fast path is a plain append; concurrent
// submitters that raced the clock are insertion-sorted from the tail
// (envelopes arrive at most a few positions out of order).
func (s *Service) appendFeed(env report.Envelope) {
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	at := env.Scan.AnalysisDate
	i := len(s.feed)
	for i > 0 && s.feed[i-1].Scan.AnalysisDate.After(at) {
		i--
	}
	s.feed = append(s.feed, report.Envelope{})
	copy(s.feed[i+1:], s.feed[i:])
	s.feed[i] = env
	s.m.feedAppends.Inc()
	s.m.feedLen.Set(int64(len(s.feed)))
}

// SetEngineOutage marks the named engines as down: their results are
// dropped from every scan report produced while the outage lasts,
// exactly the report shape the paper's §5.5 attributes to engine
// outages (the engine vanishes from the report rather than answering
// benign). Calling with no names restores full service. Safe to call
// concurrently with scans — in-flight scans see either the old or the
// new outage set.
func (s *Service) SetEngineOutage(names ...string) {
	if len(names) == 0 {
		s.outage.Store(nil)
		s.m.enginesDown.Set(0)
		return
	}
	down := make(map[string]struct{}, len(names))
	for _, n := range names {
		down[n] = struct{}{}
	}
	s.outage.Store(&down)
	s.m.enginesDown.Set(int64(len(down)))
}

// SetOutageFraction takes roughly frac of the roster down, selected
// deterministically from seed so identically-seeded campaigns lose
// identical engines. It returns the downed names (empty slice clears
// any outage when frac <= 0).
func (s *Service) SetOutageFraction(frac float64, seed int64) []string {
	if frac <= 0 {
		s.SetEngineOutage()
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	var names []string
	rng := xrand.New(seed).SplitFor("outage")
	for _, name := range s.engines.Names() {
		if rng.Bool(frac) {
			names = append(names, name)
		}
	}
	s.SetEngineOutage(names...)
	return names
}

// analyzeLocked runs every engine, records the report, and returns
// the envelope. Caller holds the sample's shard lock; the feed append
// takes feedMu internally. The feed entry and the returned envelope
// are independent clones, so neither callers nor feed readers can
// alias the stored history.
func (s *Service) analyzeLocked(st *sampleState, now time.Time) report.Envelope {
	s.m.scans.Inc()
	results := s.engines.Scan(st.target, now)
	if down := s.outage.Load(); down != nil {
		kept := results[:0]
		for _, r := range results {
			if _, out := (*down)[r.Engine]; out {
				s.m.outageDrops.Inc()
				continue
			}
			kept = append(kept, r)
		}
		results = kept
	}
	scan := &report.ScanReport{
		SHA256:       st.target.SHA256,
		FileType:     st.target.FileType,
		AnalysisDate: now,
		Results:      results,
		AVRank:       report.ComputeAVRank(results),
		EnginesTotal: report.CountActive(results),
	}
	st.meta.LastAnalysisDate = now
	st.history = append(st.history, scan)
	s.appendFeed(report.Envelope{Meta: st.meta, Scan: *scan.Clone()})
	return report.Envelope{Meta: st.meta, Scan: *scan.Clone()}
}

// uploadShare is the fraction of follow-up scans that arrive as
// re-uploads (other users submitting the same file) rather than
// rescans; it drives times_submitted growth.
const uploadShare = 0.6

// ScanSample produces one sample's complete in-window history as a
// pure function of (engines, sample): the per-sample path analyses
// use. Follow-up scans are deterministically split between re-uploads
// and rescans so the Table 1 metadata semantics stay exercised.
// It is safe to call concurrently for different samples.
func ScanSample(engines *engine.Set, s *sampleset.Sample) *report.History {
	tgt := s.Target()
	meta := report.SampleMeta{
		SHA256:              s.SHA256,
		FileType:            s.FileType,
		Size:                s.Size,
		FirstSubmissionDate: s.FirstSeen,
	}
	rng := xrand.New(7).SplitFor("submitkind|" + s.SHA256)
	h := &report.History{}
	rows := engines.ScanSeries(tgt, s.ScanTimes)
	for i, at := range s.ScanTimes {
		isUpload := i == 0 || rng.Bool(uploadShare)
		if isUpload {
			meta.LastSubmissionDate = at
			meta.TimesSubmitted++
		}
		meta.LastAnalysisDate = at
		results := rows[i]
		h.Reports = append(h.Reports, &report.ScanReport{
			SHA256:       s.SHA256,
			FileType:     s.FileType,
			AnalysisDate: at,
			Results:      results,
			AVRank:       report.ComputeAVRank(results),
			EnginesTotal: report.CountActive(results),
		})
	}
	h.Meta = meta
	return h
}

// RunWorkload drives a service through a whole population's scan
// schedules in global time order, advancing the clock to each event.
// It reproduces what 14 months of worldwide submissions do to the
// real service; the feed and store experiments run on top of it.
// Because events are applied serially, the feed ordering (including
// ties) is fully deterministic for a given sample set.
func RunWorkload(svc *Service, clock *simclock.SimClock, samples []*sampleset.Sample) error {
	type event struct {
		s   *sampleset.Sample
		idx int
		at  time.Time
	}
	var events []event
	for _, s := range samples {
		for i, at := range s.ScanTimes {
			events = append(events, event{s: s, idx: i, at: at})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at.Before(events[j].at) })
	for _, ev := range events {
		clock.Set(ev.at)
		if ev.idx == 0 {
			if _, err := svc.Upload(UploadRequest{
				SHA256:        ev.s.SHA256,
				FileType:      ev.s.FileType,
				Size:          ev.s.Size,
				Malicious:     ev.s.Malicious,
				Detectability: ev.s.Detectability,
			}); err != nil {
				return err
			}
			continue
		}
		rng := xrand.New(7).SplitFor(fmt.Sprintf("kind|%s|%d", ev.s.SHA256, ev.idx))
		if rng.Bool(uploadShare) {
			if _, err := svc.Upload(UploadRequest{
				SHA256:   ev.s.SHA256,
				FileType: ev.s.FileType,
				Size:     ev.s.Size,
			}); err != nil {
				return err
			}
		} else {
			if _, err := svc.Rescan(ev.s.SHA256); err != nil {
				return err
			}
		}
	}
	return nil
}
