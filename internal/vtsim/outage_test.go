package vtsim

import (
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
)

// TestEngineOutageDropsResults checks the outage hook: downed engines
// vanish from scan reports (they do not answer benign), AVRank and
// EnginesTotal stay consistent with the surviving results, and
// clearing the outage restores the full roster.
func TestEngineOutageDropsResults(t *testing.T) {
	svc, clock := newTestService(t)
	if _, err := svc.Upload(exeUpload("s1")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(24 * time.Hour)
	full, err := svc.Rescan("s1")
	if err != nil {
		t.Fatal(err)
	}
	rosterLen := len(full.Scan.Results)
	if rosterLen == 0 {
		t.Fatal("baseline rescan produced no results")
	}

	down := []string{full.Scan.Results[0].Engine, full.Scan.Results[rosterLen-1].Engine}
	svc.SetEngineOutage(down...)
	clock.Advance(24 * time.Hour)
	out, err := svc.Rescan("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Scan.Results); got != rosterLen-len(down) {
		t.Fatalf("outage scan has %d results, want %d", got, rosterLen-len(down))
	}
	for _, r := range out.Scan.Results {
		for _, name := range down {
			if r.Engine == name {
				t.Fatalf("downed engine %q still present in results", name)
			}
		}
	}
	if out.Scan.AVRank != report.ComputeAVRank(out.Scan.Results) {
		t.Fatalf("AVRank %d inconsistent with surviving results", out.Scan.AVRank)
	}
	if out.Scan.EnginesTotal != report.CountActive(out.Scan.Results) {
		t.Fatalf("EnginesTotal %d inconsistent with surviving results", out.Scan.EnginesTotal)
	}

	svc.SetEngineOutage()
	clock.Advance(24 * time.Hour)
	restored, err := svc.Rescan("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(restored.Scan.Results); got != rosterLen {
		t.Fatalf("post-outage scan has %d results, want the full roster %d", got, rosterLen)
	}
}

// TestSetOutageFraction checks the deterministic fraction selector
// and its metrics: the same seed downs the same engines, and every
// dropped result is counted.
func TestSetOutageFraction(t *testing.T) {
	reg := obs.NewRegistry()
	svcA, _ := newTestService(t)
	namesA := svcA.SetOutageFraction(0.3, 42)
	svcB, _ := newTestService(t)
	namesB := svcB.SetOutageFraction(0.3, 42)
	if len(namesA) == 0 {
		t.Fatal("30% outage of a 72-engine roster selected nothing")
	}
	if len(namesA) != len(namesB) {
		t.Fatalf("same seed selected %d vs %d engines", len(namesA), len(namesB))
	}
	for i := range namesA {
		if namesA[i] != namesB[i] {
			t.Fatalf("same seed selected different engines: %v vs %v", namesA, namesB)
		}
	}

	set, err := engine.NewSet(engine.DefaultRoster(), 99,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := NewService(set, clock, WithMetrics(reg))
	names := svc.SetOutageFraction(0.3, 42)
	if got := reg.SumGauges("sim_engines_down"); got != int64(len(names)) {
		t.Fatalf("sim_engines_down = %d, want %d", got, len(names))
	}
	if _, err := svc.Upload(exeUpload("s1")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	if _, err := svc.Rescan("s1"); err != nil {
		t.Fatal(err)
	}
	if got := reg.SumCounters("sim_outage_dropped_results_total"); got != int64(2*len(names)) {
		t.Fatalf("sim_outage_dropped_results_total = %d, want %d (2 scans x %d downed)",
			got, 2*len(names), len(names))
	}

	// frac <= 0 clears.
	if names := svc.SetOutageFraction(0, 42); names != nil {
		t.Fatalf("SetOutageFraction(0) returned %v, want nil", names)
	}
	if got := reg.SumGauges("sim_engines_down"); got != 0 {
		t.Fatalf("sim_engines_down after clear = %d, want 0", got)
	}
}
