package vtsim

import (
	"fmt"
	"sync/atomic"
	"testing"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/simclock"
)

func newBenchService(b *testing.B) *Service {
	b.Helper()
	set, err := engine.NewSet(engine.DefaultRoster(), 99,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		b.Fatal(err)
	}
	return NewService(set, simclock.NewSim(simclock.CollectionStart))
}

// BenchmarkUpload measures single-goroutine upload throughput: every
// iteration submits a distinct sample, so the per-sample analysis cost
// dominates and lock handoff is free.
func BenchmarkUpload(b *testing.B) {
	svc := newBenchService(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Upload(exeUpload(fmt.Sprintf("bench%08d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUploadParallel measures contended upload throughput: many
// goroutines submit distinct samples concurrently — the workload the
// sharded service is built for.
func BenchmarkUploadParallel(b *testing.B) {
	svc := newBenchService(b)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			if _, err := svc.Upload(exeUpload(fmt.Sprintf("bench%08d", i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
