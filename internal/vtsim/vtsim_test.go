package vtsim

import (
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
)

func newTestService(t *testing.T) (*Service, *simclock.SimClock) {
	t.Helper()
	set, err := engine.NewSet(engine.DefaultRoster(), 99,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	return NewService(set, clock), clock
}

func exeUpload(sha string) UploadRequest {
	return UploadRequest{
		SHA256:        sha,
		FileType:      ftypes.Win32EXE,
		Size:          1 << 20,
		Malicious:     true,
		Detectability: 0.9,
	}
}

// TestTable1UploadSemantics checks the "Upload" row of Table 1: all
// three fields change.
func TestTable1UploadSemantics(t *testing.T) {
	svc, clock := newTestService(t)
	env1, err := svc.Upload(exeUpload("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if env1.Meta.TimesSubmitted != 1 {
		t.Fatalf("times_submitted after first upload = %d", env1.Meta.TimesSubmitted)
	}
	clock.Advance(48 * time.Hour)
	env2, err := svc.Upload(exeUpload("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if env2.Meta.TimesSubmitted != 2 {
		t.Fatalf("times_submitted after second upload = %d", env2.Meta.TimesSubmitted)
	}
	if !env2.Meta.LastAnalysisDate.After(env1.Meta.LastAnalysisDate) {
		t.Fatal("upload did not update last_analysis_date")
	}
	if !env2.Meta.LastSubmissionDate.After(env1.Meta.LastSubmissionDate) {
		t.Fatal("upload did not update last_submission_date")
	}
	if !env2.Meta.FirstSubmissionDate.Equal(env1.Meta.FirstSubmissionDate) {
		t.Fatal("first_submission_date changed on re-upload")
	}
}

// TestTable1RescanSemantics checks the "Rescan" row: only
// last_analysis_date changes.
func TestTable1RescanSemantics(t *testing.T) {
	svc, clock := newTestService(t)
	env1, _ := svc.Upload(exeUpload("s2"))
	clock.Advance(24 * time.Hour)
	env2, err := svc.Rescan("s2")
	if err != nil {
		t.Fatal(err)
	}
	if !env2.Meta.LastAnalysisDate.After(env1.Meta.LastAnalysisDate) {
		t.Fatal("rescan did not update last_analysis_date")
	}
	if !env2.Meta.LastSubmissionDate.Equal(env1.Meta.LastSubmissionDate) {
		t.Fatal("rescan changed last_submission_date")
	}
	if env2.Meta.TimesSubmitted != env1.Meta.TimesSubmitted {
		t.Fatal("rescan changed times_submitted")
	}
}

// TestTable1ReportSemantics checks the "Report" row: nothing changes
// and no new report is generated.
func TestTable1ReportSemantics(t *testing.T) {
	svc, clock := newTestService(t)
	env1, _ := svc.Upload(exeUpload("s3"))
	clock.Advance(24 * time.Hour)
	before := svc.NumReports()
	env2, err := svc.Report("s3")
	if err != nil {
		t.Fatal(err)
	}
	if svc.NumReports() != before {
		t.Fatal("report API generated a new report")
	}
	if !env2.Meta.LastAnalysisDate.Equal(env1.Meta.LastAnalysisDate) ||
		!env2.Meta.LastSubmissionDate.Equal(env1.Meta.LastSubmissionDate) ||
		env2.Meta.TimesSubmitted != env1.Meta.TimesSubmitted {
		t.Fatal("report API mutated metadata")
	}
	if !env2.Scan.AnalysisDate.Equal(env1.Scan.AnalysisDate) {
		t.Fatal("report API returned a different scan")
	}
}

func TestRescanUnknownSample(t *testing.T) {
	svc, _ := newTestService(t)
	if _, err := svc.Rescan("nope"); err == nil {
		t.Fatal("expected error for unknown sample")
	}
	if _, err := svc.Report("nope"); err == nil {
		t.Fatal("expected error for unknown sample")
	}
}

func TestUploadRequiresHash(t *testing.T) {
	svc, _ := newTestService(t)
	if _, err := svc.Upload(UploadRequest{}); err == nil {
		t.Fatal("expected error for empty hash")
	}
}

func TestHistoryAccumulates(t *testing.T) {
	svc, clock := newTestService(t)
	svc.Upload(exeUpload("s4"))
	for i := 0; i < 4; i++ {
		clock.Advance(72 * time.Hour)
		if _, err := svc.Rescan("s4"); err != nil {
			t.Fatal(err)
		}
	}
	h, err := svc.History("s4")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 5 {
		t.Fatalf("history length = %d, want 5", len(h.Reports))
	}
	if !h.SortedByTime() {
		t.Fatal("history not time-sorted")
	}
	for _, r := range h.Reports {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeedBetween(t *testing.T) {
	svc, clock := newTestService(t)
	t0 := clock.Now()
	svc.Upload(exeUpload("f1"))
	clock.Advance(10 * time.Minute)
	svc.Upload(exeUpload("f2"))
	clock.Advance(10 * time.Minute)
	svc.Upload(exeUpload("f3"))
	t1 := clock.Now()

	all := svc.FeedBetween(t0, t1.Add(time.Minute))
	if len(all) != 3 {
		t.Fatalf("full feed = %d entries", len(all))
	}
	mid := svc.FeedBetween(t0.Add(5*time.Minute), t0.Add(15*time.Minute))
	if len(mid) != 1 || mid[0].Meta.SHA256 != "f2" {
		t.Fatalf("mid slice = %v", mid)
	}
	empty := svc.FeedBetween(t1.Add(time.Hour), t1.Add(2*time.Hour))
	if len(empty) != 0 {
		t.Fatalf("future slice = %d entries", len(empty))
	}
}

func TestFeedBetweenLimit(t *testing.T) {
	svc, clock := newTestService(t)
	t0 := clock.Now()
	for _, h := range []string{"f1", "f2", "f3"} {
		svc.Upload(exeUpload(h))
		clock.Advance(10 * time.Minute)
	}
	t1 := clock.Now()

	// The page is the window's prefix, so a pager advancing `from`
	// past each page's last envelope drains the window in order.
	page := svc.FeedBetweenLimit(t0, t1, 2)
	if len(page) != 2 || page[0].Meta.SHA256 != "f1" || page[1].Meta.SHA256 != "f2" {
		t.Fatalf("first page = %v", page)
	}
	rest := svc.FeedBetweenLimit(page[1].Scan.AnalysisDate.Add(time.Nanosecond), t1, 2)
	if len(rest) != 1 || rest[0].Meta.SHA256 != "f3" {
		t.Fatalf("second page = %v", rest)
	}
	// Zero or negative means unlimited; a generous cap changes nothing.
	if got := svc.FeedBetweenLimit(t0, t1, 0); len(got) != 3 {
		t.Fatalf("limit 0 = %d entries", len(got))
	}
	if got := svc.FeedBetweenLimit(t0, t1, 100); len(got) != 3 {
		t.Fatalf("limit 100 = %d entries", len(got))
	}
}

func TestFeedSpan(t *testing.T) {
	svc, clock := newTestService(t)
	if _, _, ok := svc.FeedSpan(); ok {
		t.Fatal("empty service reported a feed span")
	}
	t0 := clock.Now()
	svc.Upload(exeUpload("f1"))
	clock.Advance(10 * time.Minute)
	svc.Upload(exeUpload("f2"))
	t1 := clock.Now()

	first, last, ok := svc.FeedSpan()
	if !ok {
		t.Fatal("populated service reported no feed span")
	}
	if !first.Equal(t0) || !last.Equal(t1) {
		t.Fatalf("FeedSpan = [%v, %v], want [%v, %v]", first, last, t0, t1)
	}
	// The span bounds exactly the envelopes FeedBetween serves.
	if got := svc.FeedBetween(first, last.Add(time.Second)); len(got) != 2 {
		t.Fatalf("span window returned %d envelopes, want 2", len(got))
	}
}

func TestScanSamplePureAndDeterministic(t *testing.T) {
	set, err := engine.NewSet(engine.DefaultRoster(), 99,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sampleset.Generate(sampleset.Config{Seed: 4, NumSamples: 50, MultiOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		h1 := ScanSample(set, s)
		h2 := ScanSample(set, s)
		if len(h1.Reports) != len(s.ScanTimes) {
			t.Fatalf("history %d reports, schedule %d", len(h1.Reports), len(s.ScanTimes))
		}
		if h1.Meta.TimesSubmitted != h2.Meta.TimesSubmitted {
			t.Fatal("ScanSample not deterministic (meta)")
		}
		if h1.Meta.TimesSubmitted < 1 {
			t.Fatal("first scan must be an upload")
		}
		for i := range h1.Reports {
			if h1.Reports[i].AVRank != h2.Reports[i].AVRank {
				t.Fatal("ScanSample not deterministic (ranks)")
			}
			if err := h1.Reports[i].Validate(); err != nil {
				t.Fatal(err)
			}
		}
		if !h1.SortedByTime() {
			t.Fatal("history not sorted")
		}
	}
}

func TestScanSampleConcurrentSafety(t *testing.T) {
	set, err := engine.NewSet(engine.DefaultRoster(), 99,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sampleset.Generate(sampleset.Config{Seed: 8, NumSamples: 200, MultiOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := w; i < len(ss); i += 8 {
				h := ScanSample(set, ss[i])
				if len(h.Reports) == 0 {
					t.Error("empty history")
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestRunWorkloadMatchesSchedules(t *testing.T) {
	svc, clock := newTestService(t)
	ss, err := sampleset.Generate(sampleset.Config{Seed: 12, NumSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunWorkload(svc, clock, ss); err != nil {
		t.Fatal(err)
	}
	wantReports := 0
	for _, s := range ss {
		wantReports += len(s.ScanTimes)
	}
	if got := svc.NumReports(); got != wantReports {
		t.Fatalf("reports = %d, want %d", got, wantReports)
	}
	if got := svc.NumSamples(); got != len(ss) {
		t.Fatalf("samples = %d, want %d", got, len(ss))
	}
	// Spot-check per-sample history lengths.
	for _, s := range ss[:20] {
		h, err := svc.History(s.SHA256)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Reports) != len(s.ScanTimes) {
			t.Fatalf("history %d, schedule %d", len(h.Reports), len(s.ScanTimes))
		}
	}
}

func TestFeedIsTimeOrdered(t *testing.T) {
	svc, clock := newTestService(t)
	ss, err := sampleset.Generate(sampleset.Config{Seed: 14, NumSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunWorkload(svc, clock, ss); err != nil {
		t.Fatal(err)
	}
	feed := svc.FeedBetween(simclock.CollectionStart, simclock.CollectionEnd)
	for i := 1; i < len(feed); i++ {
		if feed[i].Scan.AnalysisDate.Before(feed[i-1].Scan.AnalysisDate) {
			t.Fatal("feed not time-ordered")
		}
	}
}
