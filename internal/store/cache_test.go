package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

func testHistory(sha string, rank int) *report.History {
	env := envelope(sha, t0, rank)
	scan := env.Scan
	return &report.History{Meta: env.Meta, Reports: []*report.ScanReport{&scan}}
}

func TestCacheSingleflight(t *testing.T) {
	c := newHistoryCache(16)
	var loads atomic.Int64
	gate := make(chan struct{})
	load := func(sha string) (*report.History, error) {
		loads.Add(1)
		<-gate // hold every would-be loader here
		return testHistory(sha, 3), nil
	}
	const readers = 16
	var wg sync.WaitGroup
	results := make([]*report.History, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.get("hot", load)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = h
		}(i)
	}
	// Let the leader through once all readers are racing toward the
	// same sha; followers must wait on its flight, not load again.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times for one sha", n)
	}
	// Every caller got a private History and Reports slice over the
	// same shared (immutable) report elements.
	for i := 1; i < readers; i++ {
		if results[i] == results[0] {
			t.Fatal("callers share the History struct")
		}
		if results[i].Reports[0] != results[0].Reports[0] {
			t.Fatal("followers did not share the cached reports")
		}
		results[i].Reports = results[i].Reports[:0] // private slice: no cross-talk
		if len(results[0].Reports) == 0 {
			t.Fatal("callers share the Reports slice")
		}
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries", c.len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newHistoryCache(2)
	var loads atomic.Int64
	load := func(sha string) (*report.History, error) {
		loads.Add(1)
		return testHistory(sha, 1), nil
	}
	for _, sha := range []string{"a", "b", "c"} { // c evicts a
		if _, err := c.get(sha, load); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.len())
	}
	if _, err := c.get("b", load); err != nil { // hit
		t.Fatal(err)
	}
	if n := loads.Load(); n != 3 {
		t.Fatalf("loads = %d after b hit, want 3", n)
	}
	if _, err := c.get("a", load); err != nil { // was evicted: reload
		t.Fatal(err)
	}
	if n := loads.Load(); n != 4 {
		t.Fatalf("loads = %d after evicted a, want 4", n)
	}
}

func TestCacheInvalidatePoisonsFlight(t *testing.T) {
	c := newHistoryCache(16)
	started := make(chan struct{})
	gate := make(chan struct{})
	var loads atomic.Int64
	load := func(sha string) (*report.History, error) {
		loads.Add(1)
		if loads.Load() == 1 {
			close(started)
			<-gate
		}
		return testHistory(sha, int(loads.Load())), nil
	}
	done := make(chan *report.History, 1)
	go func() {
		h, err := c.get("x", load)
		if err != nil {
			t.Error(err)
		}
		done <- h
	}()
	<-started
	// A Put lands mid-decode: the in-flight result predates the write
	// and must be returned to its waiters but never cached.
	c.invalidate("x")
	close(gate)
	h := <-done
	if h == nil || h.Reports[0].AVRank != 1 {
		t.Fatalf("waiter result = %+v", h)
	}
	if c.len() != 0 {
		t.Fatal("poisoned flight was cached")
	}
	// Next get reloads from disk.
	if _, err := c.get("x", load); err != nil {
		t.Fatal(err)
	}
	if n := loads.Load(); n != 2 {
		t.Fatalf("loads = %d, want 2", n)
	}
}

// TestGetOwnedSliceSharedReports pins Get's contract: the History and
// Reports slice are caller-owned, while the report elements are
// shared — a caller who follows the contract (Clone before mutating a
// report) can never corrupt cached state.
func TestGetOwnedSliceSharedReports(t *testing.T) {
	s := openStore(t)
	if err := s.Put(envelope("deep", t0, 4)); err != nil {
		t.Fatal(err)
	}
	h1, err := s.Get("deep")
	if err != nil {
		t.Fatal(err)
	}
	// Everything the contract says is the caller's: meta (a value
	// copy), the slice itself, and a Clone of a shared report.
	h1.Meta.FileType = "mutated"
	own := h1.Reports[0].Clone()
	own.AVRank = 999
	own.Results[0].Engine = "mutated"
	h1.Reports = h1.Reports[:0]

	h2, err := s.Get("deep")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Meta.FileType != "Win32 EXE" || len(h2.Reports) != 1 ||
		h2.Reports[0].AVRank != 4 || h2.Reports[0].Results[0].Engine != "Avast" {
		t.Fatalf("cached state leaked caller mutations: %+v", h2)
	}
	// Two hits share the underlying report storage (the point of the
	// contract: hits stop deep-copying).
	h3, err := s.Get("deep")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Reports[0] != h3.Reports[0] {
		t.Fatal("cache hits did not share report elements")
	}
}

// TestGetSharedReportsImmutableUnderRace drives concurrent Gets and
// deep reads of every shared field while Puts of other samples churn
// the cache. Under -race this proves nothing writes a published
// report; without -race it still exercises the slice-privacy rules.
func TestGetSharedReportsImmutableUnderRace(t *testing.T) {
	s := openStore(t)
	if err := s.Put(envelope("shared", t0, 4)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(stop) })
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h, err := s.Get("shared")
				if err != nil {
					t.Error(err)
					return
				}
				// Deep read of shared state.
				for _, r := range h.Reports {
					if r.SHA256 != "shared" || len(r.Results) == 0 {
						t.Errorf("goroutine %d saw torn report: %+v", g, r)
						return
					}
					for _, er := range r.Results {
						_ = er.Engine
						_ = er.Label
					}
				}
				// Exercise caller-owned mutations only.
				h.Reports = append(h.Reports, h.Reports...)
				if i%7 == 0 {
					if err := s.Put(envelope(fmt.Sprintf("churn-%d-%d", g, i), t0, 1)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPutInvalidatesCachedHistory(t *testing.T) {
	s := openStore(t)
	if err := s.Put(envelope("inv", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if h, err := s.Get("inv"); err != nil || len(h.Reports) != 1 {
		t.Fatalf("first get: %v", err)
	}
	if s.CachedHistories() != 1 {
		t.Fatalf("cached = %d", s.CachedHistories())
	}
	if err := s.Put(envelope("inv", t0.Add(time.Hour), 2)); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("inv")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 {
		t.Fatalf("stale cache served after Put: %d reports", len(h.Reports))
	}
}

func TestCacheDisabled(t *testing.T) {
	s, err := Open(t.TempDir(), WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(envelope("nc", t0, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if h, err := s.Get("nc"); err != nil || len(h.Reports) != 1 {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if s.CachedHistories() != 0 {
		t.Fatalf("disabled cache holds %d entries", s.CachedHistories())
	}
}

func TestCacheConcurrentMixedShas(t *testing.T) {
	c := newHistoryCache(8)
	var loads atomic.Int64
	load := func(sha string) (*report.History, error) {
		loads.Add(1)
		return testHistory(sha, 1), nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sha := fmt.Sprintf("s%d", i%16)
				if i%17 == 0 {
					c.invalidate(sha)
				}
				if _, err := c.get(sha, load); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.len())
	}
}
