package store

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// FuzzStoreRowRoundTrip fuzzes the partition row codec: a scan report
// encoded with rowFromScan, serialized through encoding/json exactly
// as Put writes it, decoded, and lifted back with rowToReport must
// reproduce the normalized report byte-for-byte. "Normalized" means
// what rowFromScan is documented to do — strings coerced to valid
// UTF-8 and timestamps passed through the zero-preserving unix
// encoding; beyond that nothing may change.
//
// This fuzzer is what surfaced the two seed-codec asymmetries now
// fixed in rowFromScan: engine label strings containing invalid UTF-8
// were silently rewritten by json.Marshal (so Get returned different
// bytes than Put accepted), and the direct AnalysisDate.Unix() call
// turned the zero time into year-1 garbage instead of preserving it.
func FuzzStoreRowRoundTrip(f *testing.F) {
	// Seeds from the store_test fixtures plus the two historic bugs.
	f.Add("aaa", "Win32 EXE", int64(1619827200), 2, 70, "Avast", int8(1), 17, "Trojan.Gen")
	f.Add("bbb", "PDF", int64(1622505600), 0, 68, "BitDefender", int8(0), 9, "")
	f.Add("", "", int64(0), 0, 0, "", int8(0), 0, "")
	f.Add("sha\xffbad", "PE32", int64(-7), -3, 1<<20, "Eng\xc3", int8(-2), -1, "lab\xe2\x28el")
	f.Add("zzz", "Android", int64(1), 95, 95, "Kaspersky", int8(3), 1<<30, "not-a-virus:HEUR\xf0")

	f.Fuzz(func(t *testing.T, sha, ft string, at int64, rank, tot int, eng string, verdict int8, sigver int, label string) {
		orig := &report.ScanReport{
			SHA256:       sha,
			FileType:     ft,
			AnalysisDate: fromUnix(at),
			AVRank:       rank,
			EnginesTotal: tot,
			Results: []report.EngineResult{{
				Engine:           eng,
				Verdict:          report.Verdict(verdict),
				SignatureVersion: sigver,
				Label:            label,
			}},
		}

		line, err := json.Marshal(rowFromScan(orig))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back scanRow
		if err := json.Unmarshal(line, &back); err != nil {
			t.Fatalf("unmarshal %q: %v", line, err)
		}
		got := rowToReport(back)

		want := &report.ScanReport{
			SHA256:       validUTF8(sha),
			FileType:     validUTF8(ft),
			AnalysisDate: fromUnix(at),
			AVRank:       rank,
			EnginesTotal: tot,
			Results: []report.EngineResult{{
				Engine:           validUTF8(eng),
				Verdict:          report.Verdict(verdict),
				SignatureVersion: sigver,
				Label:            validUTF8(label),
			}},
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v\nline %q", got, want, line)
		}
		// The codec must stay idempotent: re-encoding what came back
		// yields the same line (what Verify relies on when it re-reads
		// partitions).
		line2, err := json.Marshal(rowFromScan(got))
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(line) != string(line2) {
			t.Fatalf("re-encoding not idempotent:\n first %q\nsecond %q", line, line2)
		}
	})
}

// TestRowCodecZeroTime pins the zero-time behavior the fuzzer relies
// on: a zero AnalysisDate survives the row codec as a zero time, not
// as 1970-01-01 or a year-1 artifact.
func TestRowCodecZeroTime(t *testing.T) {
	r := &report.ScanReport{SHA256: "z", Results: []report.EngineResult{}}
	row := rowFromScan(r)
	if row.At != 0 {
		t.Fatalf("zero time encoded as %d", row.At)
	}
	if got := rowToReport(row).AnalysisDate; !got.IsZero() {
		t.Fatalf("zero time decoded as %v", got)
	}
	if ts := unix(time.Unix(0, 0).UTC()); ts != 0 {
		// The epoch instant itself collides with the zero sentinel by
		// design; document it here so a future change is deliberate.
		t.Fatalf("epoch encoded as %d", ts)
	}
}
