// Read cache: a size-bounded LRU of decoded histories with
// singleflight-style in-flight deduplication. Concurrent Gets of a
// hot sample decode its blocks once; every caller receives a fresh
// History (meta copied by value, fresh Reports slice) whose
// *ScanReport elements are shared with the cache and treated as
// immutable — see Store.Get for the contract. Sharing the reports
// removes the dominant allocation on cache hits (a deep Clone of
// every report, per caller); TestGetSharedReportsImmutableUnderRace
// holds the contract under the race detector.
package store

import (
	"container/list"
	"sync"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
)

// cacheSizeDefault bounds the history cache in entries. A history is
// a handful of decoded reports, so even pathological ones keep the
// default cache in the low tens of megabytes.
const cacheSizeDefault = 4096

type historyCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // sha -> element; value is *cacheEntry
	flights map[string]*flight
	m       cacheMetrics
}

// cacheMetrics is the store's view of cache effectiveness. A
// singleflight follower counts as a hit (it triggered no load) plus a
// dedup, so hits + misses always equals Gets through the cache.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	dedup     *obs.Counter
}

// discardCacheMetrics backs caches built outside a Store (tests
// construct historyCache directly); counts go to a private registry.
var discardCacheMetrics = func() cacheMetrics {
	r := obs.NewRegistry()
	return cacheMetrics{
		hits:      r.Counter("store_cache_hits_total"),
		misses:    r.Counter("store_cache_misses_total"),
		evictions: r.Counter("store_cache_evictions_total"),
		dedup:     r.Counter("store_singleflight_dedup_total"),
	}
}()

type cacheEntry struct {
	sha string
	h   *report.History
}

// flight is one in-progress decode. Followers block on done; the
// leader publishes h/err before closing it. dirty is set by
// invalidate so a decode that raced a Put is returned to its waiters
// but never cached.
type flight struct {
	done  chan struct{}
	h     *report.History
	err   error
	dirty bool
}

func newHistoryCache(capacity int) *historyCache {
	if capacity <= 0 {
		return nil
	}
	return &historyCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
		m:       discardCacheMetrics,
	}
}

// get returns the sample's history, loading via load on a miss. Only
// one goroutine runs load per sha at a time; the rest wait for its
// result. The returned History and its Reports slice are private to
// the caller; the *ScanReport elements are shared and immutable.
func (c *historyCache) get(sha string, load func(string) (*report.History, error)) (*report.History, error) {
	c.mu.Lock()
	if el, ok := c.entries[sha]; ok {
		c.ll.MoveToFront(el)
		h := el.Value.(*cacheEntry).h
		c.mu.Unlock()
		c.m.hits.Inc()
		return shareHistory(h), nil
	}
	if fl, ok := c.flights[sha]; ok {
		c.mu.Unlock()
		c.m.hits.Inc()
		c.m.dedup.Inc()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return shareHistory(fl.h), nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[sha] = fl
	c.mu.Unlock()
	c.m.misses.Inc()

	h, err := load(sha)

	c.mu.Lock()
	delete(c.flights, sha)
	fl.h, fl.err = h, err
	if err == nil && !fl.dirty {
		c.insertLocked(sha, h)
	}
	c.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, err
	}
	return shareHistory(h), nil
}

// insertLocked adds an entry and evicts past capacity. Caller holds mu.
func (c *historyCache) insertLocked(sha string, h *report.History) {
	if el, ok := c.entries[sha]; ok {
		el.Value.(*cacheEntry).h = h
		c.ll.MoveToFront(el)
		return
	}
	c.entries[sha] = c.ll.PushFront(&cacheEntry{sha: sha, h: h})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).sha)
		c.m.evictions.Inc()
	}
}

// invalidate drops the sample's cached history and poisons any
// in-flight decode so a result that predates the write is never
// cached. Called on every Put of the sample.
func (c *historyCache) invalidate(sha string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[sha]; ok {
		c.ll.Remove(el)
		delete(c.entries, sha)
	}
	if fl, ok := c.flights[sha]; ok {
		fl.dirty = true
	}
	c.mu.Unlock()
}

// len reports the number of cached histories.
func (c *historyCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// shareHistory hands out a cached history: the meta by value and a
// fresh Reports slice over the same *ScanReport elements. The shared
// reports are never mutated after decode — invalidation replaces
// whole histories, never edits one — so concurrent readers are safe
// as long as callers honor Store.Get's read-only contract.
func shareHistory(h *report.History) *report.History {
	return &report.History{
		Meta:    h.Meta,
		Reports: append([]*report.ScanReport(nil), h.Reports...),
	}
}
