// Per-block aggregation kernels for the pushdown scan engine.
//
// A kernel is an Agg: it mints one Partial per scan job (block or
// fallback month), the workers feed matching RowViews into partials
// concurrently, and Scan folds the partials back in deterministic job
// order — month ascending, block sequence ascending, which is exactly
// row storage order. Kernels whose merge is commutative (counts,
// min/max) don't care; FlipCountAgg depends on that ordering.
//
// Partial states are pooled where the steady-state matters: the
// group-by partials reuse their maps across blocks (clear() keeps the
// buckets), so a scan's per-block kernel cycle settles at zero
// allocations per block — pinned by TestScanKernelAllocBudget.
package store

import "sync"

// MultiAgg fans every row into several kernels in one scan pass, so
// callers pay the block decode once however many aggregates they
// want. Merge order and determinism follow from Scan's ordered merge:
// each sub-agg sees its partials in the same job order it would see
// them running alone.
type MultiAgg struct {
	Aggs []Agg
}

type multiPartial struct{ ps []Partial }

func (a *MultiAgg) NewPartial() Partial {
	ps := make([]Partial, len(a.Aggs))
	for i, agg := range a.Aggs {
		ps[i] = agg.NewPartial()
	}
	return &multiPartial{ps: ps}
}

func (a *MultiAgg) Merge(p Partial) error {
	mp := p.(*multiPartial)
	for i, agg := range a.Aggs {
		if err := agg.Merge(mp.ps[i]); err != nil {
			return err
		}
	}
	return nil
}

func (p *multiPartial) Row(rv *RowView) error {
	for _, sub := range p.ps {
		if err := sub.Row(rv); err != nil {
			return err
		}
	}
	return nil
}

// CountAgg counts matching rows. Needs no projected columns.
type CountAgg struct {
	N int64
}

type countPartial struct{ n int64 }

func (p *countPartial) Row(*RowView) error {
	p.n++
	return nil
}

func (a *CountAgg) NewPartial() Partial { return &countPartial{} }

func (a *CountAgg) Merge(p Partial) error {
	a.N += p.(*countPartial).n
	return nil
}

// groupPartialPool recycles group-by partial maps across blocks;
// clear() keeps the buckets, so a warmed pool feeds the kernel cycle
// without allocating.
var groupPartialPool = sync.Pool{
	New: func() any { return &groupPartial{counts: make(map[string]int64)} },
}

type groupPartial struct {
	key    func(rv *RowView) string
	counts map[string]int64
}

func (p *groupPartial) Row(rv *RowView) error {
	p.counts[p.key(rv)]++
	return nil
}

// GroupCountByType tallies matching rows per file type. Needs ColFT.
type GroupCountByType struct {
	Counts map[string]int64
}

func (a *GroupCountByType) NewPartial() Partial {
	p := groupPartialPool.Get().(*groupPartial)
	p.key = ftKey
	return p
}

// ftKey is a named func so every partial shares one value (closures
// would allocate per partial).
func ftKey(rv *RowView) string { return rv.FT }

func (a *GroupCountByType) Merge(p Partial) error {
	gp := p.(*groupPartial)
	if a.Counts == nil {
		a.Counts = make(map[string]int64, len(gp.counts))
	}
	for k, v := range gp.counts {
		// Group keys are interned dictionary strings — safe to retain.
		a.Counts[k] += v
	}
	clear(gp.counts)
	gp.key = nil
	groupPartialPool.Put(gp)
	return nil
}

// EngineStats is one engine's tally across the scanned rows.
type EngineStats struct {
	Results   int64 // results carrying this engine
	Malicious int64 // of those, verdict Malicious
	Labeled   int64 // of those, non-empty label
}

// EngineAgg tallies per-engine result/malicious/labeled counts.
// Needs ColResults.
type EngineAgg struct {
	Engines map[string]EngineStats
}

type enginePartial struct {
	engines map[string]EngineStats
}

var enginePartialPool = sync.Pool{
	New: func() any { return &enginePartial{engines: make(map[string]EngineStats)} },
}

func (p *enginePartial) Row(rv *RowView) error {
	for i := range rv.Res {
		r := &rv.Res[i]
		st := p.engines[r.Eng]
		st.Results++
		if r.Ver == 1 {
			st.Malicious++
		}
		if r.Lab != "" {
			st.Labeled++
		}
		p.engines[r.Eng] = st
	}
	return nil
}

func (a *EngineAgg) NewPartial() Partial { return enginePartialPool.Get().(*enginePartial) }

func (a *EngineAgg) Merge(p Partial) error {
	ep := p.(*enginePartial)
	if a.Engines == nil {
		a.Engines = make(map[string]EngineStats, len(ep.engines))
	}
	for k, v := range ep.engines {
		st := a.Engines[k]
		st.Results += v.Results
		st.Malicious += v.Malicious
		st.Labeled += v.Labeled
		a.Engines[k] = st
	}
	clear(ep.engines)
	enginePartialPool.Put(ep)
	return nil
}

// FirstLastAgg tracks the earliest and latest analysis timestamp of
// the matching rows. Needs ColTime. Zero timestamps (rows without an
// analysis date) are ignored.
type FirstLastAgg struct {
	First, Last int64
	Rows        int64
}

type firstLastPartial struct {
	first, last int64
	rows        int64
}

func (p *firstLastPartial) Row(rv *RowView) error {
	if rv.At == 0 {
		return nil
	}
	if p.rows == 0 || rv.At < p.first {
		p.first = rv.At
	}
	if p.rows == 0 || rv.At > p.last {
		p.last = rv.At
	}
	p.rows++
	return nil
}

func (a *FirstLastAgg) NewPartial() Partial { return &firstLastPartial{} }

func (a *FirstLastAgg) Merge(p Partial) error {
	fp := p.(*firstLastPartial)
	if fp.rows == 0 {
		return nil
	}
	if a.Rows == 0 || fp.first < a.First {
		a.First = fp.first
	}
	if a.Rows == 0 || fp.last > a.Last {
		a.Last = fp.last
	}
	a.Rows += fp.rows
	return nil
}

// flipState is one (sample, engine) pair's verdict run: the first and
// last verdicts seen and the flips counted so far. Merging two states
// over an ordered split adds a flip when the boundary verdicts differ
// — associativity over ordered concatenation is what makes the kernel
// correct under Scan's deterministic job-order merge.
type flipState struct {
	first, last int8
	flips       int64
	seen        bool
}

// FlipCountAgg counts verdict flips per (sample, engine) pair — the
// label-dynamics census from the paper, as a pushdown kernel. Needs
// ColSHA and ColResults; rows must arrive in storage order, which
// Scan's ordered merge guarantees.
type FlipCountAgg struct {
	// Flips is the total number of verdict changes across all pairs.
	Flips int64
	// Pairs is the number of (sample, engine) pairs seen.
	Pairs int64
	// states survives across Merge calls; keys are sha+"\x00"+engine.
	states map[string]flipState
}

type flipPartial struct {
	states map[string]flipState
	keyBuf []byte
}

var flipPartialPool = sync.Pool{
	New: func() any { return &flipPartial{states: make(map[string]flipState)} },
}

func pairKey(buf []byte, sha, eng string) []byte {
	buf = append(buf[:0], sha...)
	buf = append(buf, 0)
	return append(buf, eng...)
}

func (p *flipPartial) Row(rv *RowView) error {
	for i := range rv.Res {
		r := &rv.Res[i]
		p.keyBuf = pairKey(p.keyBuf, rv.SHA, r.Eng)
		st, ok := p.states[string(p.keyBuf)] // lookup: no alloc
		if !ok {
			st = flipState{first: r.Ver, last: r.Ver, seen: true}
			p.states[string(p.keyBuf)] = st
			continue
		}
		if st.last != r.Ver {
			st.flips++
			st.last = r.Ver
		}
		p.states[string(p.keyBuf)] = st
	}
	return nil
}

func (a *FlipCountAgg) NewPartial() Partial { return flipPartialPool.Get().(*flipPartial) }

func (a *FlipCountAgg) Merge(p Partial) error {
	fp := p.(*flipPartial)
	if a.states == nil {
		a.states = make(map[string]flipState, len(fp.states))
	}
	for k, v := range fp.states {
		st, ok := a.states[k]
		if !ok {
			a.states[k] = v
			a.Pairs++
			a.Flips += v.flips
			continue
		}
		// Ordered concatenation: this partial's rows follow st's rows.
		a.Flips += v.flips
		if st.last != v.first {
			a.Flips++
			st.flips++ // keep per-pair count coherent
		}
		st.flips += v.flips
		st.last = v.last
		a.states[k] = st
	}
	clear(fp.states)
	flipPartialPool.Put(fp)
	return nil
}

// PairStates exposes the per-pair flip counts (for callers that want
// the distribution, not just the total).
func (a *FlipCountAgg) PairStates() map[string]flipState { return a.states }
