package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// goldenDir is a committed store in the pre-sidecar on-disk format:
// monthly multi-member gzip partitions, metadata snapshot, stats
// sidecar — and no .idx files. It pins the compatibility promise that
// stores written by earlier builds keep opening and reading
// correctly, and that Reindex upgrades them in place.
const goldenDir = "testdata/golden-v1"

// goldenDirV2 is the same logical dataset committed in block format
// v2 (columnar members, versioned sidecars) — the fixture every
// future build must keep reading identically.
const goldenDirV2 = "testdata/golden-v2"

// goldenFlushAt is the envelope index after which the golden
// generators flush mid-stream, so partitions hold multiple members.
const goldenFlushAt = 11

// goldenEnvelopes is the canonical dataset both golden fixtures (and
// the conformance variants) hold: 24 scans over 8 samples spanning
// two months. Deterministic and append-only — changing it invalidates
// the committed fixtures.
func goldenEnvelopes() []report.Envelope {
	envs := make([]report.Envelope, 24)
	for i := range envs {
		at := t0.Add(time.Duration(i%2) * 31 * 24 * time.Hour).Add(time.Duration(i) * time.Minute)
		envs[i] = envelope(fmt.Sprintf("gold%02d", i%8), at, i%6)
	}
	return envs
}

// goldenExpect computes, from first principles, the exact histories a
// correct store must serve for the golden dataset: rows normalized
// through the row codec's documented pipeline, reports sorted by
// analysis date (stable), metadata latest-write-wins. Both fixture
// tests compare decoded disk contents against this — golden rows, not
// just "no error".
func goldenExpect() map[string]*report.History {
	out := make(map[string]*report.History)
	for _, env := range goldenEnvelopes() {
		h, ok := out[env.Meta.SHA256]
		if !ok {
			h = &report.History{}
			out[env.Meta.SHA256] = h
		}
		h.Meta = metaFrom(env.Meta).toMeta()
		scan := env.Scan
		h.Reports = append(h.Reports, rowToReport(rowFromScan(&scan)))
	}
	for _, h := range out {
		sort.SliceStable(h.Reports, func(i, j int) bool {
			return h.Reports[i].AnalysisDate.Before(h.Reports[j].AnalysisDate)
		})
	}
	return out
}

// writeGoldenStore materializes the golden dataset into dir with the
// given store options (plus the mid-stream flush both fixtures share).
func writeGoldenStore(t *testing.T, dir string, opts ...Option) {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, env := range goldenEnvelopes() {
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
		if i == goldenFlushAt { // mid-stream flush: partitions get two members
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegenerateGoldenFixture rebuilds the committed fixtures. It only
// runs when VTDYN_REGEN_GOLDEN=1 is set; generation is deterministic
// (fixed clock, sorted snapshots, zero gzip mtimes), so regenerating
// without a format change is a no-op diff.
func TestRegenerateGoldenFixture(t *testing.T) {
	if os.Getenv("VTDYN_REGEN_GOLDEN") == "" {
		t.Skip("set VTDYN_REGEN_GOLDEN=1 to regenerate testdata/golden-v1 and golden-v2")
	}
	if err := os.RemoveAll(goldenDir); err != nil {
		t.Fatal(err)
	}
	// v1 fixture: explicit legacy format, and a huge block target so
	// every flush cuts exactly one gzip member — the shape the
	// pre-block writer produced.
	writeGoldenStore(t, goldenDir, WithFormat(FormatV1), WithBlockSize(1<<30))
	// Strip the sidecars: the fixture predates them.
	matches, err := filepath.Glob(filepath.Join(goldenDir, "*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}

	// v2 fixture: current default format with a small block target so
	// partitions hold several columnar members, sidecars kept.
	if err := os.RemoveAll(goldenDirV2); err != nil {
		t.Fatal(err)
	}
	writeGoldenStore(t, goldenDirV2, WithBlockSize(2<<10))
}

// TestGoldenV2WriterByteIdentity pins the write path against the
// committed v2 fixture at the byte level: regenerating the fixture's
// dataset with today's writer must reproduce every committed file
// exactly. The fixture was produced by the flush-time transcode
// writer, so this is the end-to-end half of the direct-builder
// byte-identity contract (the differential fuzzer is the per-block
// half): same cut boundaries, same column bytes, same gzip members,
// same sidecars.
func TestGoldenV2WriterByteIdentity(t *testing.T) {
	dir := t.TempDir()
	writeGoldenStore(t, dir, WithBlockSize(2<<10))
	entries, err := os.ReadDir(goldenDirV2)
	if err != nil {
		t.Fatalf("fixture %s missing (run with VTDYN_REGEN_GOLDEN=1 to create): %v", goldenDirV2, err)
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(goldenDirV2, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("writer did not produce fixture file %s: %v", e.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: freshly written bytes differ from the committed fixture", e.Name())
		}
	}
	fresh, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(entries) {
		t.Errorf("writer produced %d files, fixture holds %d", len(fresh), len(entries))
	}
}

// copyFixture clones a committed fixture into a scratch dir so tests
// can mutate (reindex, migrate) without touching testdata.
func copyFixture(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("fixture %s missing (run with VTDYN_REGEN_GOLDEN=1 to create): %v", src, err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// copyGolden clones the committed v1 fixture.
func copyGolden(t *testing.T) string { return copyFixture(t, goldenDir) }

// snapshotReads captures everything the read API returns for a store:
// every sample's history, per-month iteration order, and stats.
func snapshotReads(t *testing.T, s *Store) (map[string]*report.History, map[string][]int, PartitionStats) {
	t.Helper()
	histories := make(map[string]*report.History)
	for _, sha := range s.SampleHashes() {
		h, err := s.Get(sha)
		if err != nil {
			t.Fatalf("Get(%s): %v", sha, err)
		}
		histories[sha] = h
	}
	iter := make(map[string][]int)
	for _, month := range s.Months() {
		err := s.IterReports(month, func(r *report.ScanReport) error {
			iter[month] = append(iter[month], r.AVRank)
			return nil
		})
		if err != nil {
			t.Fatalf("IterReports(%s): %v", month, err)
		}
	}
	return histories, iter, s.TotalStats()
}

func TestGoldenPrePR2Compat(t *testing.T) {
	dir := copyGolden(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Indexed() {
		t.Fatal("pre-sidecar fixture opened as indexed")
	}
	if got := s.NumSamples(); got != 8 {
		t.Fatalf("fixture samples = %d", got)
	}
	wantHist, wantIter, wantStats := snapshotReads(t, s)
	// Exact decoded contents, not just no-error: the fixture bytes
	// must decode to precisely the golden rows, so silent format drift
	// in the v1 decoder is caught here.
	if want := goldenExpect(); !reflect.DeepEqual(wantHist, want) {
		t.Fatalf("v1 fixture decodes to wrong contents:\n got %+v\nwant %+v", wantHist, want)
	}
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify on fallback path: %d, %v", n, err)
	}

	// Upgrade in place.
	if err := s.Reindex(); err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("Reindex did not index the fixture")
	}
	// Bypass the history cache so the comparison truly exercises the
	// indexed disk path.
	for _, sha := range s.SampleHashes() {
		s.cache.invalidate(sha)
	}
	gotHist, gotIter, gotStats := snapshotReads(t, s)
	if !reflect.DeepEqual(wantHist, gotHist) {
		t.Fatal("indexed Get diverges from the fallback scan")
	}
	if !reflect.DeepEqual(wantIter, gotIter) {
		t.Fatal("indexed iteration diverges from the fallback scan")
	}
	if wantStats != gotStats {
		t.Fatalf("stats diverge: %+v vs %+v", wantStats, gotStats)
	}
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify on indexed path: %d, %v", n, err)
	}

	// The upgrade persists: a reopen loads the new sidecars and reads
	// identically again.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Indexed() {
		t.Fatal("upgraded store reopened unindexed")
	}
	reHist, reIter, reStats := snapshotReads(t, s2)
	if !reflect.DeepEqual(wantHist, reHist) || !reflect.DeepEqual(wantIter, reIter) || wantStats != reStats {
		t.Fatal("reopened upgraded store diverges from the original reads")
	}
}

// TestGoldenV2Compat pins the committed v2 fixture: its columnar
// members and versioned sidecars must keep decoding to exactly the
// golden rows in every future build — the forward half of the
// compatibility promise.
func TestGoldenV2Compat(t *testing.T) {
	dir := copyFixture(t, goldenDirV2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("v2 fixture opened unindexed (sidecars are part of the fixture)")
	}
	sawV2 := false
	for _, month := range s.Months() {
		for _, bm := range s.index(month).snapshotBlocks() {
			switch blockVer(bm) {
			case FormatV2:
				sawV2 = true
			default:
				t.Fatalf("%s: fixture block %+v is not v2", month, bm)
			}
		}
	}
	if !sawV2 {
		t.Fatal("v2 fixture holds no blocks")
	}
	gotHist, _, _ := snapshotReads(t, s)
	if want := goldenExpect(); !reflect.DeepEqual(gotHist, want) {
		t.Fatalf("v2 fixture decodes to wrong contents:\n got %+v\nwant %+v", gotHist, want)
	}
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify on v2 fixture: %d, %v", n, err)
	}

	// The same partition bytes must also read correctly with the
	// sidecars gone (sniff-dispatch fallback path) and after Reindex
	// rebuilds them from the members alone.
	for _, m := range []string{"2021-05", "2021-06"} {
		if err := os.Remove(filepath.Join(dir, "scans-"+m+".idx")); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Indexed() {
		t.Fatal("fixture without sidecars opened as indexed")
	}
	noIdxHist, _, _ := snapshotReads(t, s2)
	if !reflect.DeepEqual(noIdxHist, goldenExpect()) {
		t.Fatal("sidecar-less v2 read diverges from golden rows")
	}
	if err := s2.Reindex(); err != nil {
		t.Fatal(err)
	}
	for _, sha := range s2.SampleHashes() {
		s2.cache.invalidate(sha)
	}
	reHist, _, _ := snapshotReads(t, s2)
	if !reflect.DeepEqual(reHist, goldenExpect()) {
		t.Fatal("reindexed v2 read diverges from golden rows")
	}
}
