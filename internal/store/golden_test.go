package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// goldenDir is a committed store in the pre-sidecar on-disk format:
// monthly multi-member gzip partitions, metadata snapshot, stats
// sidecar — and no .idx files. It pins the compatibility promise that
// stores written by earlier builds keep opening and reading
// correctly, and that Reindex upgrades them in place.
const goldenDir = "testdata/golden-v1"

// TestRegenerateGoldenFixture rebuilds the committed fixture. It only
// runs when VTDYN_REGEN_GOLDEN=1 is set; generation is deterministic
// (fixed clock, sorted snapshots, zero gzip mtimes), so regenerating
// without a format change is a no-op diff.
func TestRegenerateGoldenFixture(t *testing.T) {
	if os.Getenv("VTDYN_REGEN_GOLDEN") == "" {
		t.Skip("set VTDYN_REGEN_GOLDEN=1 to regenerate testdata/golden-v1")
	}
	if err := os.RemoveAll(goldenDir); err != nil {
		t.Fatal(err)
	}
	// A huge block target makes every flush cut exactly one gzip
	// member — the shape the pre-block writer produced.
	s, err := Open(goldenDir, WithBlockSize(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		at := t0.Add(time.Duration(i%2) * 31 * 24 * time.Hour).Add(time.Duration(i) * time.Minute)
		if err := s.Put(envelope(fmt.Sprintf("gold%02d", i%8), at, i%6)); err != nil {
			t.Fatal(err)
		}
		if i == 11 { // mid-stream flush: partitions get two members
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Strip the sidecars: the fixture predates them.
	matches, err := filepath.Glob(filepath.Join(goldenDir, "*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
}

// copyGolden clones the committed fixture into a scratch dir so tests
// can reindex it without mutating testdata.
func copyGolden(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("golden fixture missing (run with VTDYN_REGEN_GOLDEN=1 to create): %v", err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// snapshotReads captures everything the read API returns for a store:
// every sample's history, per-month iteration order, and stats.
func snapshotReads(t *testing.T, s *Store) (map[string]*report.History, map[string][]int, PartitionStats) {
	t.Helper()
	histories := make(map[string]*report.History)
	for _, sha := range s.SampleHashes() {
		h, err := s.Get(sha)
		if err != nil {
			t.Fatalf("Get(%s): %v", sha, err)
		}
		histories[sha] = h
	}
	iter := make(map[string][]int)
	for _, month := range s.Months() {
		err := s.IterReports(month, func(r *report.ScanReport) error {
			iter[month] = append(iter[month], r.AVRank)
			return nil
		})
		if err != nil {
			t.Fatalf("IterReports(%s): %v", month, err)
		}
	}
	return histories, iter, s.TotalStats()
}

func TestGoldenPrePR2Compat(t *testing.T) {
	dir := copyGolden(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Indexed() {
		t.Fatal("pre-sidecar fixture opened as indexed")
	}
	if got := s.NumSamples(); got != 8 {
		t.Fatalf("fixture samples = %d", got)
	}
	wantHist, wantIter, wantStats := snapshotReads(t, s)
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify on fallback path: %d, %v", n, err)
	}

	// Upgrade in place.
	if err := s.Reindex(); err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("Reindex did not index the fixture")
	}
	// Bypass the history cache so the comparison truly exercises the
	// indexed disk path.
	for _, sha := range s.SampleHashes() {
		s.cache.invalidate(sha)
	}
	gotHist, gotIter, gotStats := snapshotReads(t, s)
	if !reflect.DeepEqual(wantHist, gotHist) {
		t.Fatal("indexed Get diverges from the fallback scan")
	}
	if !reflect.DeepEqual(wantIter, gotIter) {
		t.Fatal("indexed iteration diverges from the fallback scan")
	}
	if wantStats != gotStats {
		t.Fatalf("stats diverge: %+v vs %+v", wantStats, gotStats)
	}
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify on indexed path: %d, %v", n, err)
	}

	// The upgrade persists: a reopen loads the new sidecars and reads
	// identically again.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Indexed() {
		t.Fatal("upgraded store reopened unindexed")
	}
	reHist, reIter, reStats := snapshotReads(t, s2)
	if !reflect.DeepEqual(wantHist, reHist) || !reflect.DeepEqual(wantIter, reIter) || wantStats != reStats {
		t.Fatal("reopened upgraded store diverges from the original reads")
	}
}
