// Columnar (v2) block codec.
//
// A v2 block payload — the decompressed bytes of one gzip member —
// dictionary-encodes the block's vocabulary once and stores the rows
// as column segments, so readers decode only the columns a query
// needs:
//
//	"VTCB" 0x02                          magic + payload version
//	uvarint rowCount
//	uvarint rawBytes                     Σ len(v1 line) — accounting parity
//	4 dictionaries: sha, filetype, engine, label
//	    each: uvarint n, then n × (uvarint len, bytes)
//	8 column segments, each uvarint byteLen + bytes (skippable):
//	    sha      rowCount × uvarint sha-dict index
//	    time     rowCount × varint unix-seconds delta vs previous row
//	    ft       rowCount × uvarint filetype-dict index
//	    rank     rowCount × varint AV-rank
//	    total    rowCount × varint EnginesTotal
//	    nres     rowCount × uvarint per-row result count
//	    verdict  flag byte, then the verdict bitmap: flag 1 packs two
//	             bits per result (0 undetected, 1 benign, 2 malicious)
//	             in row-major order; flag 0 falls back to one varint
//	             per result for out-of-range verdicts
//	    res      per result: uvarint engine-dict index,
//	             varint signature version, uvarint label-dict index+1
//	             (0 = no label)
//
// Two encoders produce this payload. The write path builds columns
// directly from rows as they arrive (colBuilder, colbuilder.go); the
// transcode below consumes a raw v1 JSONL block and re-parses it row
// by row — the migration path (vtstore migrate) and the reference the
// direct builder is differential-fuzzed against. Both are pure
// functions of the member's input rows, so block bytes stay
// independent of worker count and compression timing (determinism
// suite). Decoded vocabulary is interned through internal/report, so
// every block in a scan shares one string per distinct
// engine/label/file-type.
//
// FuzzColumnarRowDifferential pins the codec against the v1 row
// codec: encode→decode→re-encode to v1 lines must be the identity.
// FuzzDirectColumnarDifferential pins the two encoders against each
// other byte-for-byte.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vtdynamics/internal/report"
)

// Column segment order inside a v2 payload.
const (
	segSHA = iota
	segTime
	segFT
	segRank
	segTot
	segNRes
	segVerdict
	segRes
	numColSegs
)

// Verdict bitmap codes (2 bits per result when packed).
const (
	vbUndetected = 0 // report.Undetected (-1)
	vbBenign     = 1 // report.Benign (0)
	vbMalicious  = 2 // report.Malicious (1)
)

// verdictFlagPacked marks a packed 2-bit verdict segment; 0 marks the
// varint fallback for verdicts outside the three canonical values.
const verdictFlagPacked = 1

var errColCorrupt = errors.New("corrupt columnar block")

// colDict assigns dense ids to a block's vocabulary in first-seen
// order (deterministic for deterministic input).
type colDict struct {
	ids  map[string]int
	vals []string
}

func (d *colDict) id(s string) int {
	if id, ok := d.ids[s]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[string]int)
	}
	id := len(d.vals)
	d.ids[s] = id
	d.vals = append(d.vals, s)
	return id
}

// reset empties the dictionary for reuse, dropping the value strings
// (so a pooled dictionary never pins a block's vocabulary) but keeping
// the slice capacity. The id map is the caller's to clear or replace —
// pooled builders hand theirs back to bufpool instead.
func (d *colDict) reset() {
	d.ids = nil
	clear(d.vals)
	d.vals = d.vals[:0]
}

// appendDict appends one dictionary: count, then length-prefixed
// entries.
func appendDict(dst []byte, vals []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// appendColumnarBlock transcodes one raw v1 block (newline-terminated
// JSONL rows, exactly what the partition writer accumulates) into a
// v2 columnar payload appended to dst.
func appendColumnarBlock(dst []byte, raw []byte) ([]byte, error) {
	var (
		shaD, ftD, engD, labD colDict
		segs                  [numColSegs][]byte
		verdicts              []int8
		packable              = true
		rows                  int
		rawBytes              int64
		prevAt                int64
		row                   scanRow
	)
	for len(raw) > 0 {
		nl := 0
		for nl < len(raw) && raw[nl] != '\n' {
			nl++
		}
		line := raw[:nl]
		if nl < len(raw) {
			raw = raw[nl+1:]
		} else {
			raw = nil
		}
		if len(line) == 0 {
			continue
		}
		if err := decodeScanRow(line, &row); err != nil {
			return nil, fmt.Errorf("store: columnar encode: %w", err)
		}
		rows++
		rawBytes += int64(len(line))
		segs[segSHA] = binary.AppendUvarint(segs[segSHA], uint64(shaD.id(row.SHA)))
		segs[segTime] = binary.AppendVarint(segs[segTime], row.At-prevAt)
		prevAt = row.At
		segs[segFT] = binary.AppendUvarint(segs[segFT], uint64(ftD.id(row.FT)))
		segs[segRank] = binary.AppendVarint(segs[segRank], int64(row.Rank))
		segs[segTot] = binary.AppendVarint(segs[segTot], int64(row.Tot))
		segs[segNRes] = binary.AppendUvarint(segs[segNRes], uint64(len(row.Res)))
		for _, rr := range row.Res {
			verdicts = append(verdicts, rr.V)
			if rr.V < -1 || rr.V > 1 {
				packable = false
			}
			segs[segRes] = binary.AppendUvarint(segs[segRes], uint64(engD.id(rr.E)))
			segs[segRes] = binary.AppendVarint(segs[segRes], int64(rr.S))
			if rr.L == "" {
				segs[segRes] = binary.AppendUvarint(segs[segRes], 0)
			} else {
				segs[segRes] = binary.AppendUvarint(segs[segRes], uint64(labD.id(rr.L)+1))
			}
		}
	}
	// Verdict bitmap: packed two-bit codes when every verdict is
	// canonical, one varint per result otherwise.
	if packable {
		segs[segVerdict] = append(segs[segVerdict], verdictFlagPacked)
		var cur byte
		for i, v := range verdicts {
			var code byte
			switch report.Verdict(v) {
			case report.Benign:
				code = vbBenign
			case report.Malicious:
				code = vbMalicious
			default:
				code = vbUndetected
			}
			cur |= code << ((i % 4) * 2)
			if i%4 == 3 {
				segs[segVerdict] = append(segs[segVerdict], cur)
				cur = 0
			}
		}
		if len(verdicts)%4 != 0 {
			segs[segVerdict] = append(segs[segVerdict], cur)
		}
	} else {
		segs[segVerdict] = append(segs[segVerdict], 0)
		for _, v := range verdicts {
			segs[segVerdict] = binary.AppendVarint(segs[segVerdict], int64(v))
		}
	}

	dst = append(dst, colMagic...)
	dst = append(dst, FormatV2)
	dst = binary.AppendUvarint(dst, uint64(rows))
	dst = binary.AppendUvarint(dst, uint64(rawBytes))
	dst = appendDict(dst, shaD.vals)
	dst = appendDict(dst, ftD.vals)
	dst = appendDict(dst, engD.vals)
	dst = appendDict(dst, labD.vals)
	for _, seg := range segs[:] {
		dst = binary.AppendUvarint(dst, uint64(len(seg)))
		dst = append(dst, seg...)
	}
	return dst, nil
}

// colCursor walks a payload with bounds checking.
type colCursor struct {
	buf []byte
	off int
}

func (c *colCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errColCorrupt
	}
	c.off += n
	return v, nil
}

func (c *colCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, errColCorrupt
	}
	c.off += n
	return v, nil
}

func (c *colCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.buf) {
		return nil, errColCorrupt
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

// skipDict advances past one dictionary without materializing it.
func (c *colCursor) skipDict() error {
	n, err := c.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		l, err := c.uvarint()
		if err != nil {
			return err
		}
		if _, err := c.bytes(int(l)); err != nil {
			return err
		}
	}
	return nil
}

// readDict materializes one dictionary. intern routes entries through
// the shared vocabulary table (engines, labels, file types); sha
// dictionaries stay plain copies — sample hashes are an unbounded
// vocabulary that must not crowd the intern table.
func (c *colCursor) readDict(intern bool) ([]string, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// A count that cannot fit in the remaining bytes (every entry
	// takes at least one byte) is corruption, not a huge dictionary.
	if n > uint64(len(c.buf)-c.off) {
		return nil, errColCorrupt
	}
	vals := make([]string, n)
	for i := range vals {
		l, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := c.bytes(int(l))
		if err != nil {
			return nil, err
		}
		if intern {
			vals[i] = report.InternBytes(b) // table hits allocate nothing
		} else {
			vals[i] = string(b)
		}
	}
	return vals, nil
}

// colBlock is a parsed v2 payload: dictionaries plus the raw bytes of
// each column segment, sliced but not decoded — callers decode only
// the columns they need.
type colBlock struct {
	rows int
	raw  int64
	sha  []string // sha dictionary
	ft   []string
	eng  []string
	lab  []string
	segs [numColSegs][]byte
}

// colWant selects which dictionaries a parse materializes; segments
// are always sliced (cheap) but never decoded here.
type colWant uint8

const (
	wantSHA colWant = 1 << iota
	wantFT
	wantEng
	wantLab
	wantAllDicts = wantSHA | wantFT | wantEng | wantLab
)

// parseColumnarBlock validates the header and slices the payload into
// dictionaries and segments. Dictionaries not selected by want are
// skipped without allocation.
func parseColumnarBlock(payload []byte, want colWant) (*colBlock, error) {
	if sniffVersion(payload) != FormatV2 {
		return nil, errColCorrupt
	}
	c := colCursor{buf: payload, off: len(colMagic) + 1}
	cb := &colBlock{}
	rows, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	raw, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	cb.rows, cb.raw = int(rows), int64(raw)
	dicts := []struct {
		sel    colWant
		out    *[]string
		intern bool
	}{
		{wantSHA, &cb.sha, false},
		{wantFT, &cb.ft, true},
		{wantEng, &cb.eng, true},
		{wantLab, &cb.lab, true},
	}
	for _, d := range dicts {
		if want&d.sel != 0 {
			if *d.out, err = c.readDict(d.intern); err != nil {
				return nil, err
			}
		} else if err := c.skipDict(); err != nil {
			return nil, err
		}
	}
	for i := range cb.segs {
		l, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if cb.segs[i], err = c.bytes(int(l)); err != nil {
			return nil, err
		}
	}
	if c.off != len(payload) {
		return nil, errColCorrupt
	}
	return cb, nil
}

// verdictReader streams the verdict column, transparently handling
// the packed bitmap and the varint fallback.
type verdictReader struct {
	c      colCursor
	packed bool
	n      int // results read so far (packed bit position)
}

func newVerdictReader(seg []byte) (*verdictReader, error) {
	if len(seg) == 0 {
		return nil, errColCorrupt
	}
	return &verdictReader{
		c:      colCursor{buf: seg, off: 1},
		packed: seg[0] == verdictFlagPacked,
	}, nil
}

func (vr *verdictReader) next() (int8, error) {
	if !vr.packed {
		v, err := vr.c.varint()
		if err != nil {
			return 0, err
		}
		return int8(v), nil
	}
	byteIdx := vr.c.off + vr.n/4
	if byteIdx >= len(vr.c.buf) {
		return 0, errColCorrupt
	}
	code := (vr.c.buf[byteIdx] >> ((vr.n % 4) * 2)) & 0b11
	vr.n++
	switch code {
	case vbBenign:
		return int8(report.Benign), nil
	case vbMalicious:
		return int8(report.Malicious), nil
	default:
		return int8(report.Undetected), nil
	}
}

// forEachRow decodes every column and streams the rows in storage
// order. The scanRow passed to fn is reused between calls (its
// strings are dict-owned, only the Res backing array is recycled), so
// fn must copy what it keeps — rowToReport does. The block must have
// been parsed with wantAllDicts.
func (cb *colBlock) forEachRow(fn func(row *scanRow) error) error {
	var (
		shaC  = colCursor{buf: cb.segs[segSHA]}
		timeC = colCursor{buf: cb.segs[segTime]}
		ftC   = colCursor{buf: cb.segs[segFT]}
		rankC = colCursor{buf: cb.segs[segRank]}
		totC  = colCursor{buf: cb.segs[segTot]}
		nresC = colCursor{buf: cb.segs[segNRes]}
		resC  = colCursor{buf: cb.segs[segRes]}
		row   scanRow
		at    int64
	)
	vr, err := newVerdictReader(cb.segs[segVerdict])
	if err != nil {
		return err
	}
	for i := 0; i < cb.rows; i++ {
		shaIdx, err := shaC.uvarint()
		if err != nil {
			return err
		}
		if shaIdx >= uint64(len(cb.sha)) {
			return errColCorrupt
		}
		dt, err := timeC.varint()
		if err != nil {
			return err
		}
		at += dt
		ftIdx, err := ftC.uvarint()
		if err != nil {
			return err
		}
		if ftIdx >= uint64(len(cb.ft)) {
			return errColCorrupt
		}
		rank, err := rankC.varint()
		if err != nil {
			return err
		}
		tot, err := totC.varint()
		if err != nil {
			return err
		}
		nres, err := nresC.uvarint()
		if err != nil {
			return err
		}
		if nres > uint64(len(cb.segs[segRes])) {
			return errColCorrupt
		}
		row.SHA = cb.sha[shaIdx]
		row.FT = cb.ft[ftIdx]
		row.At = at
		row.Rank = int(rank)
		row.Tot = int(tot)
		row.Res = row.Res[:0]
		if nres == 0 {
			// Match json.Unmarshal's zero scanRow: an absent result
			// array decodes as nil, and the v1 codec only ever writes
			// "r":[] for zero results when the report had a non-nil
			// empty slice — both re-encode identically, so nil is safe.
			row.Res = nil
		}
		for j := uint64(0); j < nres; j++ {
			engIdx, err := resC.uvarint()
			if err != nil {
				return err
			}
			if engIdx >= uint64(len(cb.eng)) {
				return errColCorrupt
			}
			sigver, err := resC.varint()
			if err != nil {
				return err
			}
			labIdx, err := resC.uvarint()
			if err != nil {
				return err
			}
			if labIdx > uint64(len(cb.lab)) {
				return errColCorrupt
			}
			v, err := vr.next()
			if err != nil {
				return err
			}
			rr := rowRes{E: cb.eng[engIdx], V: v, S: int(sigver)}
			if labIdx > 0 {
				rr.L = cb.lab[labIdx-1]
			}
			row.Res = append(row.Res, rr)
		}
		if err := fn(&row); err != nil {
			return err
		}
	}
	return nil
}

// skipVarints advances past k varints (or uvarints — the wire shape
// is the same) without decoding them.
func (c *colCursor) skipVarints(k int) error {
	for ; k > 0; k-- {
		for {
			if c.off >= len(c.buf) {
				return errColCorrupt
			}
			b := c.buf[c.off]
			c.off++
			if b < 0x80 {
				break
			}
		}
	}
	return nil
}

// lazyDict defers dictionary decoding: the constructor walks the
// entry region once, recording each entry's offset, and entry()
// decodes and interns only the entries a caller references — a Get
// touching 2 of a block's 200 labels pays string work for 2, not 200.
// The offset table keeps entry() O(1); an O(idx) rescan per lookup is
// measurably slower on blocks with large label vocabularies.
type lazyDict struct {
	data []byte  // the length-prefixed entries, sans count
	offs []int32 // start of each entry within data
}

// readLazyDict advances past one dictionary, validating entry bounds
// and indexing entry offsets.
func (c *colCursor) readLazyDict() (lazyDict, error) {
	n, err := c.uvarint()
	if err != nil {
		return lazyDict{}, err
	}
	if n > uint64(len(c.buf)-c.off) {
		return lazyDict{}, errColCorrupt
	}
	start := c.off
	offs := make([]int32, n)
	for i := range offs {
		offs[i] = int32(c.off - start)
		l, err := c.uvarint()
		if err != nil {
			return lazyDict{}, err
		}
		if _, err := c.bytes(int(l)); err != nil {
			return lazyDict{}, err
		}
	}
	return lazyDict{data: c.buf[start:c.off], offs: offs}, nil
}

func (d *lazyDict) size() uint64 { return uint64(len(d.offs)) }

func (d *lazyDict) entry(idx uint64) (string, error) {
	if idx >= uint64(len(d.offs)) {
		return "", errColCorrupt
	}
	c := colCursor{buf: d.data, off: int(d.offs[idx])}
	l, err := c.uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.bytes(int(l))
	if err != nil {
		return "", err
	}
	return report.InternBytes(b), nil
}

// columnarRowsFor decodes only the rows belonging to sha. The sha
// dictionary is scanned raw — a block without the sample costs one
// allocation-free byte scan and nothing else — and when the sample is
// present, non-matching rows are skipped varint-wise and dictionaries
// decode lazily, so a Get pays full decode cost only for its own rows.
func columnarRowsFor(payload []byte, sha string) ([]*report.ScanReport, error) {
	if sniffVersion(payload) != FormatV2 {
		return nil, errColCorrupt
	}
	c := colCursor{buf: payload, off: len(colMagic) + 1}
	rowsU, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	rows := int(rowsU)
	if _, err := c.uvarint(); err != nil { // rawBytes: unused here
		return nil, err
	}
	// sha dictionary: locate the target without materializing entries.
	nsha, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nsha > uint64(len(c.buf)-c.off) {
		return nil, errColCorrupt
	}
	target, found := uint64(0), false
	for i := uint64(0); i < nsha; i++ {
		l, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := c.bytes(int(l))
		if err != nil {
			return nil, err
		}
		if !found && string(b) == sha { // comparison only — no alloc
			target, found = i, true
		}
	}
	if !found {
		return nil, nil
	}
	ftD, err := c.readLazyDict()
	if err != nil {
		return nil, err
	}
	engD, err := c.readLazyDict()
	if err != nil {
		return nil, err
	}
	labD, err := c.readLazyDict()
	if err != nil {
		return nil, err
	}
	var segs [numColSegs][]byte
	for i := range segs {
		l, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if segs[i], err = c.bytes(int(l)); err != nil {
			return nil, err
		}
	}
	if c.off != len(payload) {
		return nil, errColCorrupt
	}

	var (
		shaC  = colCursor{buf: segs[segSHA]}
		timeC = colCursor{buf: segs[segTime]}
		ftC   = colCursor{buf: segs[segFT]}
		rankC = colCursor{buf: segs[segRank]}
		totC  = colCursor{buf: segs[segTot]}
		nresC = colCursor{buf: segs[segNRes]}
		resC  = colCursor{buf: segs[segRes]}
		out   []*report.ScanReport
		at    int64
	)
	vr, err := newVerdictReader(segs[segVerdict])
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		shaIdx, err := shaC.uvarint()
		if err != nil {
			return nil, err
		}
		dt, err := timeC.varint()
		if err != nil {
			return nil, err
		}
		at += dt
		nres, err := nresC.uvarint()
		if err != nil {
			return nil, err
		}
		if nres > uint64(len(segs[segRes])) {
			return nil, errColCorrupt
		}
		if shaIdx != target {
			// Skip: advance every per-row cursor without decoding.
			if err := ftC.skipVarints(1); err != nil {
				return nil, err
			}
			if err := rankC.skipVarints(1); err != nil {
				return nil, err
			}
			if err := totC.skipVarints(1); err != nil {
				return nil, err
			}
			if err := resC.skipVarints(3 * int(nres)); err != nil {
				return nil, err
			}
			if vr.packed {
				vr.n += int(nres)
			} else if err := vr.c.skipVarints(int(nres)); err != nil {
				return nil, err
			}
			continue
		}
		ftIdx, err := ftC.uvarint()
		if err != nil {
			return nil, err
		}
		ft, err := ftD.entry(ftIdx)
		if err != nil {
			return nil, err
		}
		rank, err := rankC.varint()
		if err != nil {
			return nil, err
		}
		tot, err := totC.varint()
		if err != nil {
			return nil, err
		}
		r := &report.ScanReport{
			SHA256:       sha,
			FileType:     ft,
			AnalysisDate: fromUnix(at),
			AVRank:       int(rank),
			EnginesTotal: int(tot),
			// Non-nil even when empty, matching rowToReport exactly.
			Results: make([]report.EngineResult, 0, nres),
		}
		for j := uint64(0); j < nres; j++ {
			engIdx, err := resC.uvarint()
			if err != nil {
				return nil, err
			}
			eng, err := engD.entry(engIdx)
			if err != nil {
				return nil, err
			}
			sigver, err := resC.varint()
			if err != nil {
				return nil, err
			}
			labIdx, err := resC.uvarint()
			if err != nil {
				return nil, err
			}
			if labIdx > labD.size() {
				return nil, errColCorrupt
			}
			v, err := vr.next()
			if err != nil {
				return nil, err
			}
			er := report.EngineResult{
				Engine:           eng,
				Verdict:          report.Verdict(v),
				SignatureVersion: int(sigver),
			}
			if labIdx > 0 {
				if er.Label, err = labD.entry(labIdx - 1); err != nil {
					return nil, err
				}
			}
			r.Results = append(r.Results, er)
		}
		out = append(out, r)
	}
	return out, nil
}

// columnarTypeCounts tallies rows per file type decoding only the
// file-type dictionary and column — the pruned path behind
// StatsByType on v2 blocks.
func columnarTypeCounts(payload []byte, tally func(ft string, rows int)) error {
	cb, err := parseColumnarBlock(payload, wantFT)
	if err != nil {
		return err
	}
	counts := make([]int, len(cb.ft))
	c := colCursor{buf: cb.segs[segFT]}
	for i := 0; i < cb.rows; i++ {
		idx, err := c.uvarint()
		if err != nil {
			return err
		}
		if idx >= uint64(len(counts)) {
			return errColCorrupt
		}
		counts[idx]++
	}
	for i, n := range counts {
		if n > 0 {
			tally(cb.ft[i], n)
		}
	}
	return nil
}
