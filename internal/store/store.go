// Package store is the embedded report store standing in for the
// paper's MongoDB deployment. It follows the paper's data-engineering
// choices (§4.1):
//
//   - sample basic information and scan results are stored separately
//     to remove redundancy (metadata is kept once per sample, scan
//     rows carry only per-scan fields);
//   - only relevant fields are stored, in a compact row encoding;
//   - rows are gzip-compressed;
//   - data is partitioned by month (Table 2 reports per-month counts
//     and sizes).
//
// The store tracks raw-vs-stored byte accounting so the compression
// ratio the paper reports (10.06×) can be measured on our data.
//
// Layout under the store directory:
//
//	scans-2021-05.jsonl.gz   one multi-member gzip file per month,
//	                         written as ~256 KiB block members
//	scans-2021-05.idx        sidecar block index (see index.go)
//	samples.jsonl.gz         latest metadata snapshot, written on Close
//
// Partition bytes remain a valid (multi-member) gzip stream, readable
// by zcat and by pre-index builds of this package; the sidecar is
// pure acceleration. Stores without sidecars open and read via the
// full streaming scan; Reindex upgrades them in place.
//
// Concurrency model: the sample index (metadata + month membership)
// is hash-sharded with one mutex per shard, so concurrent Puts on
// different samples never contend on the index. Each monthly
// partition has its own writer with its own lock, so ingest into
// different months proceeds in parallel and the gzip compression for
// one month never blocks another. Row encoding (the expensive JSON
// work) happens outside every lock. PutBatch amortizes the partition
// lock over a whole feed slice.
//
// Read path: Get consults each month's block index and decodes only
// the members holding its sample (concurrently across months),
// falling back to the streaming scan for unindexed months; decoded
// histories are served from an LRU cache with singleflight decode
// deduplication. Every caller gets a private History and Reports
// slice over shared, immutable *ScanReport elements (see Get).
// IterAll fans blocks across a worker pool for full-store passes
// (Verify, StatsByType).
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"vtdynamics/internal/bufpool"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
)

// ErrUnknownSample is returned by Get for hashes never stored.
var ErrUnknownSample = errors.New("store: unknown sample")

// storeMetrics caches the store's series so the ingest and read hot
// paths never touch the registry map. The cache counters satisfy
// store_cache_hits_total + store_cache_misses_total ==
// store_gets_total — checked by the invariant suite.
type storeMetrics struct {
	putCalls    *obs.Counter
	putRows     *obs.Counter
	rawBytes    *obs.Counter
	storedBytes *obs.Counter
	blocksCut   *obs.Counter

	// Block pipeline split: payload encoding (v2 seal; v1 blocks are
	// accumulated pre-encoded, so only compression shows up for them)
	// vs gzip time, plus a per-format block counter. Together they make
	// "where does a cut's latency go" visible in /metricsz, and
	// blocksEncodedV1 + blocksEncodedV2 == blocksCut (invariant suite).
	blockEncodeSeconds   *obs.Histogram
	blockCompressSeconds *obs.Histogram
	blocksEncodedV1      *obs.Counter
	blocksEncodedV2      *obs.Counter

	gets           *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	dedup          *obs.Counter
	indexedMonths  *obs.Counter
	fallbackMonths *obs.Counter
	blockDecodes   *obs.Counter

	// Pushdown scan accounting (scan.go): every block a Scan considers
	// is pruned for exactly one reason or scanned, so
	// store_blocks_pruned_total summed over reasons +
	// store_scan_blocks_scanned_total == store_scan_blocks_total —
	// checked by the invariant suite.
	scanCalls    *obs.Counter
	scanBlocks   *obs.Counter
	scanScanned  *obs.Counter
	scanRows     *obs.Counter
	scanFallback *obs.Counter
	colsSkipped  *obs.Counter
	pruned       map[string]*obs.Counter
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	pruned := make(map[string]*obs.Counter, len(pruneReasons))
	for _, reason := range pruneReasons {
		pruned[reason] = reg.Counter("store_blocks_pruned_total", "reason", reason)
	}
	return &storeMetrics{
		putCalls:    reg.Counter("store_put_calls_total"),
		putRows:     reg.Counter("store_put_rows_total"),
		rawBytes:    reg.Counter("store_raw_bytes_total"),
		storedBytes: reg.Counter("store_stored_bytes_total"),
		blocksCut:   reg.Counter("store_blocks_cut_total"),

		blockEncodeSeconds:   reg.Histogram("store_block_encode_seconds", obs.DefBuckets),
		blockCompressSeconds: reg.Histogram("store_block_compress_seconds", obs.DefBuckets),
		blocksEncodedV1:      reg.Counter("store_blocks_encoded_total", "format", "v1"),
		blocksEncodedV2:      reg.Counter("store_blocks_encoded_total", "format", "v2"),

		gets:           reg.Counter("store_gets_total"),
		cacheHits:      reg.Counter("store_cache_hits_total"),
		cacheMisses:    reg.Counter("store_cache_misses_total"),
		cacheEvictions: reg.Counter("store_cache_evictions_total"),
		dedup:          reg.Counter("store_singleflight_dedup_total"),
		indexedMonths:  reg.Counter("store_get_indexed_months_total"),
		fallbackMonths: reg.Counter("store_get_fallback_months_total"),
		blockDecodes:   reg.Counter("store_block_decodes_total"),

		scanCalls:    reg.Counter("store_scan_calls_total"),
		scanBlocks:   reg.Counter("store_scan_blocks_total"),
		scanScanned:  reg.Counter("store_scan_blocks_scanned_total"),
		scanRows:     reg.Counter("store_scan_rows_total"),
		scanFallback: reg.Counter("store_scan_fallback_months_total"),
		colsSkipped:  reg.Counter("store_columns_skipped_total"),
		pruned:       pruned,
	}
}

// indexShards is the sample-index shard count (power of two).
const indexShards = 32

// Store is an embedded, compressed, monthly-partitioned report store.
// It is safe for concurrent use; see the package comment for the
// locking scheme.
type Store struct {
	dir string

	// reg receives the store's instrumentation; m caches its series.
	reg *obs.Registry
	m   *storeMetrics

	// blockSize is the target uncompressed bytes per gzip block.
	blockSize int
	// format is the block format new writes use (FormatV1 or FormatV2).
	format int
	// maxFormat is the newest block format this store reads; formatMax
	// except in tests that simulate an older build.
	maxFormat int
	// cacheSize is the history-cache capacity in entries (0 disables).
	cacheSize int
	// cache is the LRU + singleflight history cache (nil if disabled).
	cache *historyCache

	// shards hold the per-sample metadata and month-membership index.
	shards [indexShards]indexShard

	// wmu guards the writers map (creation/detach); individual writes
	// lock only the month's writer.
	wmu     sync.Mutex
	writers map[string]*partWriter

	// imu guards the indexes map; each partIndex has its own lock.
	imu     sync.Mutex
	indexes map[string]*partIndex

	// smu guards the per-month accounting.
	smu   sync.Mutex
	stats map[string]*PartitionStats

	// compressSem bounds concurrent block compression across all
	// partition writers.
	compressSem chan struct{}
}

// Option tunes a Store at Open time.
type Option func(*Store)

// WithBlockSize sets the target uncompressed size of one partition
// block (gzip member). Smaller blocks make Get decode less per hit at
// a slight compression-ratio cost. Values <= 0 keep the default.
func WithBlockSize(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.blockSize = n
		}
	}
}

// WithCacheSize bounds the decoded-history read cache in entries;
// 0 disables caching entirely (every Get decodes from disk).
func WithCacheSize(n int) Option {
	return func(s *Store) { s.cacheSize = n }
}

// WithFormat selects the block format new writes use. The default is
// FormatDefault (v2 columnar); FormatV1 keeps writing the legacy JSONL
// blocks — useful for producing fixtures and for interoperating with
// pre-v2 readers. Reading always dispatches per block, so a store may
// freely mix formats across (and within) partitions. Open rejects
// versions this build cannot read back.
func WithFormat(v int) Option {
	return func(s *Store) { s.format = v }
}

// withMaxFormat caps the formats this store will read — the test hook
// that simulates a v1-era build opening data from the future, pinning
// the typed-rejection half of the compatibility matrix.
func withMaxFormat(v int) Option {
	return func(s *Store) { s.maxFormat = v }
}

// WithMetrics routes the store's instrumentation (puts, bytes raw and
// compressed, cache hits/misses/evictions, singleflight dedups,
// indexed-vs-fallback reads, block decodes) into reg instead of the
// process-wide default registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Store) { s.reg = reg }
}

// index returns the month's block index, or nil when the month is
// served by the fallback streaming scan.
func (s *Store) index(month string) *partIndex {
	s.imu.Lock()
	defer s.imu.Unlock()
	return s.indexes[month]
}

func (s *Store) setIndex(month string, ix *partIndex) {
	s.imu.Lock()
	s.indexes[month] = ix
	s.imu.Unlock()
}

func (s *Store) dropIndex(month string) {
	s.imu.Lock()
	delete(s.indexes, month)
	s.imu.Unlock()
}

// partPath names a month's partition file.
func (s *Store) partPath(month string) string {
	return filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
}

type indexShard struct {
	mu      sync.Mutex
	samples map[string]report.SampleMeta
	// months maps sample hash -> partition keys that contain its rows.
	months map[string]map[string]bool
}

func (s *Store) shardFor(sha string) *indexShard {
	return &s.shards[fnv32a(sha)&(indexShards-1)]
}

// fnv32a hashes a sample hash onto its index shard.
func fnv32a(s string) uint32 {
	const offset = 2166136261
	const prime = 16777619
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// PartitionStats is the per-month accounting of Table 2.
type PartitionStats struct {
	// Reports is the number of scan rows in the partition.
	Reports int
	// RawBytes is the size the rows would occupy as uncompressed
	// full VT-wire envelopes (the naive storage baseline).
	RawBytes int64
	// StoredBytes is the compressed on-disk size of the rows.
	StoredBytes int64
}

// CompressionRatio returns RawBytes / StoredBytes (0 if nothing
// stored).
func (p PartitionStats) CompressionRatio() float64 {
	if p.StoredBytes == 0 {
		return 0
	}
	return float64(p.RawBytes) / float64(p.StoredBytes)
}

// scanRow is the compact on-disk encoding of one scan.
type scanRow struct {
	SHA  string   `json:"s"`
	FT   string   `json:"f"`
	At   int64    `json:"t"`
	Rank int      `json:"p"`
	Tot  int      `json:"n"`
	Res  []rowRes `json:"r"`
}

type rowRes struct {
	E string `json:"e"`
	V int8   `json:"v"`
	S int    `json:"s"`
	L string `json:"l,omitempty"`
}

// validUTF8 normalizes a string to valid UTF-8 so the row encoding
// round-trips: encoding/json silently replaces invalid bytes with
// U+FFFD on marshal, so storing the replacement form up front keeps
// what Get returns identical to what the partition holds. (Engine
// label strings are arbitrary engine output, so this does happen.)
func validUTF8(s string) string { return strings.ToValidUTF8(s, "�") }

// rowFromScan builds the compact on-disk encoding of one scan. All
// strings are normalized to valid UTF-8 and the timestamp goes
// through the same zero-preserving unix encoding as metadata rows, so
// rowToReport(rowFromScan(r)) reproduces r exactly (fuzzed by
// FuzzStoreRowRoundTrip).
func rowFromScan(scan *report.ScanReport) scanRow {
	row := scanRow{
		SHA:  validUTF8(scan.SHA256),
		FT:   validUTF8(scan.FileType),
		At:   unix(scan.AnalysisDate),
		Rank: scan.AVRank,
		Tot:  scan.EnginesTotal,
		Res:  make([]rowRes, len(scan.Results)),
	}
	for i, er := range scan.Results {
		row.Res[i] = rowRes{E: validUTF8(er.Engine), V: int8(er.Verdict), S: er.SignatureVersion, L: validUTF8(er.Label)}
	}
	return row
}

// partWriter appends rows to one monthly partition as a sequence of
// block-sized gzip members. The pending block accumulates in the
// format the member will hold — v1 as the raw JSONL buffer, v2 as
// column state built directly from the rows (colBuilder), with no
// flush-time re-parse in either case. A cut hands the block to a
// pooled gzip codec on the store's compression workers, and finished
// blocks are committed to the file strictly in cut order, so the
// partition bytes are identical to encoding and compressing each
// block inline (both encoders and flate are pure functions of the
// member's input rows). Members start lazily on the first row after a
// cut, so flush/sync cycles never emit empty members.
type partWriter struct {
	mu      sync.Mutex
	closed  bool
	f       *os.File
	counter *countingWriter
	// base is the partition's size when this writer opened; block
	// offsets are base + compressed bytes written this session.
	base      int64
	blockSize int
	// format is the block format this writer's cuts produce.
	format int
	// idx is the month's block index, nil when the month predates the
	// sidecar format (then new blocks go unindexed and the month keeps
	// using the fallback scan until Reindex).
	idx *partIndex
	// m is the owning store's metrics (blocks cut, compressed bytes).
	m *storeMetrics
	// sem is the store-wide compression-concurrency bound.
	sem chan struct{}

	// Current (pending) block. Exactly one of pendingBuf (v1) / col
	// (v2) is non-nil while a member is open; both are nil between
	// members. pendingSize tracks the block's JSONL-equivalent size —
	// Σ (len(line)+1) — for BOTH formats, so v2's cut boundaries (and
	// therefore its block contents, and therefore its bytes) are
	// identical to what the transcode path produced.
	pendingBuf  []byte
	col         *colBuilder
	pendingRows int
	pendingRaw  int64
	pendingSize int
	pendingShas map[string]int
	// zone accumulates the pending v1 block's zone map row by row; v2
	// blocks derive theirs from the column builder at seal time.
	zone zoneAcc
	// queue holds cut blocks whose compression may still be running,
	// in cut order.
	queue []*pendingBlock
}

// pendingBlock is one cut block travelling through the compression
// pool. done is closed once comp and err are final.
type pendingBlock struct {
	raw      []byte      // v1: the member's JSONL payload; nil for v2
	col      *colBuilder // v2: column state sealed off-lock; nil for v1
	rows     int
	rawBytes int64
	shas     map[string]int
	// zone is the block's zone map: captured at cut time for v1, set by
	// compressBlock (before the builder recycles) for v2. Final once
	// done closes — commit always waits on done before reading it.
	zone blockZone
	done chan struct{}
	comp *bytes.Buffer
	err  error
}

// maxInflightBlocks bounds cut-but-uncommitted blocks per partition;
// past it the writer waits for the oldest, keeping memory flat when
// encoding outruns compression.
const maxInflightBlocks = 4

// writeRowLocked appends one row — to the raw JSONL buffer (v1) or
// the column builder (v2) — cutting a block when the pending member
// reaches the block-size target. The cut fires on the row's
// JSONL-equivalent size in both formats, so v2 blocks hold exactly
// the rows their transcode-era counterparts held. Caller holds w.mu.
func (w *partWriter) writeRowLocked(row encRow) error {
	if w.format == FormatV1 {
		if w.pendingBuf == nil {
			w.pendingBuf = bufpool.GetBlockBuf()
		}
		w.pendingBuf = append(w.pendingBuf, row.line...)
		w.pendingBuf = append(w.pendingBuf, '\n')
		w.zone.scan(row.scan)
	} else {
		if w.col == nil {
			w.col = getColBuilder()
		}
		w.col.addRow(row.scan, len(row.line))
	}
	w.pendingRows++
	w.pendingRaw += int64(len(row.line))
	w.pendingSize += len(row.line) + 1
	w.pendingShas[row.sha]++
	if w.pendingSize >= w.blockSize {
		return w.cutBlockLocked()
	}
	return nil
}

// cutBlockLocked seals the pending block and hands it to the
// compression pool, then commits whatever earlier blocks have already
// finished. Caller holds w.mu. A nil pending block is a no-op.
func (w *partWriter) cutBlockLocked() error {
	if w.pendingBuf == nil && w.col == nil {
		return nil
	}
	pb := &pendingBlock{
		raw:      w.pendingBuf,
		col:      w.col,
		rows:     w.pendingRows,
		rawBytes: w.pendingRaw,
		shas:     w.pendingShas,
		done:     make(chan struct{}),
	}
	if pb.raw != nil {
		pb.zone = w.zone.z
	}
	w.zone.reset()
	w.pendingBuf, w.col = nil, nil
	w.pendingRows, w.pendingRaw, w.pendingSize = 0, 0, 0
	w.pendingShas = bufpool.GetCountMap()
	w.queue = append(w.queue, pb)
	go compressBlock(pb, w.sem, w.m)
	return w.commitLocked(maxInflightBlocks)
}

// compressBlock seals (v2) and gzips one cut block off the writer
// lock. It touches only pb, the semaphore, and the (concurrency-safe)
// metrics, never w, so commits can proceed under w.mu while later
// blocks compress. A v2 block's column state is sealed here — pure
// concatenation of already-encoded columns, replacing the old
// JSONL-re-parse transcode — so partition bytes stay independent of
// worker count and compression timing in both formats.
func compressBlock(pb *pendingBlock, sem chan struct{}, m *storeMetrics) {
	sem <- struct{}{}
	payload := pb.raw
	var sealed []byte
	if pb.col != nil {
		start := time.Now()
		sealed = pb.col.seal(bufpool.GetBlockBuf())
		m.blockEncodeSeconds.ObserveDuration(time.Since(start))
		payload = sealed
	}
	start := time.Now()
	buf := bufpool.GetBuffer()
	zw := bufpool.GetGzipWriter(buf)
	_, werr := zw.Write(payload)
	cerr := zw.Close()
	bufpool.PutGzipWriter(zw)
	m.blockCompressSeconds.ObserveDuration(time.Since(start))
	if pb.col != nil {
		pb.zone = pb.col.zone()
		putColBuilder(pb.col)
		pb.col = nil
		bufpool.PutBlockBuf(sealed)
		m.blocksEncodedV2.Inc()
	} else {
		bufpool.PutBlockBuf(pb.raw)
		pb.raw = nil
		m.blocksEncodedV1.Inc()
	}
	pb.comp = buf
	pb.err = werr
	if pb.err == nil {
		pb.err = cerr
	}
	<-sem
	close(pb.done)
}

// commitLocked appends finished blocks to the partition file in cut
// order, stopping once at most maxLeft blocks remain queued (0 waits
// for everything — the durability points use that). Offsets are
// assigned here, where writes are serial, so they are exact. Caller
// holds w.mu.
func (w *partWriter) commitLocked(maxLeft int) error {
	for len(w.queue) > 0 {
		pb := w.queue[0]
		if len(w.queue) <= maxLeft {
			select {
			case <-pb.done:
			default:
				return nil // still compressing, nothing forces a wait
			}
		} else {
			<-pb.done
		}
		w.queue = w.queue[1:]
		if err := w.commitBlockLocked(pb); err != nil {
			w.abandonQueueLocked()
			return err
		}
	}
	return nil
}

func (w *partWriter) commitBlockLocked(pb *pendingBlock) error {
	defer bufpool.PutBuffer(pb.comp)
	if pb.err != nil {
		return fmt.Errorf("store: %w", pb.err)
	}
	start := w.base + w.counter.n
	if _, err := w.counter.Write(pb.comp.Bytes()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	end := w.base + w.counter.n
	w.m.blocksCut.Inc()
	w.m.storedBytes.Add(end - start)
	if w.idx != nil {
		bm := blockMeta{
			Offset: start,
			Len:    end - start,
			Rows:   pb.rows,
			Raw:    pb.rawBytes,
		}
		if w.format != FormatV1 {
			bm.Ver = w.format
		}
		bm.setZone(pb.zone)
		w.idx.appendBlock(bm, pb.shas)
	}
	// appendBlock folds the posting counts into the index without
	// retaining the map, so the block's sha map recycles here — the
	// committed block no longer sits in the queue pendingSHALocked
	// walks.
	bufpool.PutCountMap(pb.shas)
	pb.shas = nil
	return nil
}

// abandonQueueLocked drops the remaining queue after a commit error,
// recycling each block's buffers once its compressor finishes. The
// partition is no longer well-formed past the failed block, matching
// the pre-pool behavior of an inline write error.
func (w *partWriter) abandonQueueLocked() {
	rest := w.queue
	w.queue = nil
	go func() {
		for _, pb := range rest {
			<-pb.done
			if pb.comp != nil {
				bufpool.PutBuffer(pb.comp)
			}
			bufpool.PutCountMap(pb.shas)
			pb.shas = nil
		}
	}()
}

// pendingSHALocked reports whether sha has rows not yet readable on
// disk: in the accumulating block or in a cut block still queued.
func (w *partWriter) pendingSHALocked(sha string) bool {
	if w.pendingShas[sha] > 0 {
		return true
	}
	for _, pb := range w.queue {
		if pb.shas[sha] > 0 {
			return true
		}
	}
	return false
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Open opens (or creates) a store in dir, loading any existing
// partitions into the index.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:         dir,
		blockSize:   blockSizeDefault,
		cacheSize:   cacheSizeDefault,
		format:      FormatDefault,
		maxFormat:   formatMax,
		writers:     make(map[string]*partWriter),
		indexes:     make(map[string]*partIndex),
		stats:       make(map[string]*PartitionStats),
		compressSem: make(chan struct{}, max(2, runtime.GOMAXPROCS(0))),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.format < FormatV1 || s.format > s.maxFormat {
		return nil, fmt.Errorf("store: cannot write block format v%d (this build handles v%d..v%d)", s.format, FormatV1, s.maxFormat)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.m = newStoreMetrics(s.reg)
	s.cache = newHistoryCache(s.cacheSize)
	if s.cache != nil {
		s.cache.m = cacheMetrics{
			hits:      s.m.cacheHits,
			misses:    s.m.cacheMisses,
			evictions: s.m.cacheEvictions,
			dedup:     s.m.dedup,
		}
	}
	for i := range s.shards {
		s.shards[i].samples = make(map[string]report.SampleMeta)
		s.shards[i].months = make(map[string]map[string]bool)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load rebuilds the in-memory index from existing partition files.
// Months with a valid sidecar load from it directly (no decompression
// at all); the rest are streamed row by row as before — that is the
// pre-sidecar fallback path, and it leaves the month unindexed.
// load runs before the store is shared, so it takes no locks.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	addMonth := func(sha, month string) {
		sh := s.shardFor(sha)
		set, ok := sh.months[sha]
		if !ok {
			set = make(map[string]bool)
			sh.months[sha] = set
		}
		set[month] = true
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "scans-") || !strings.HasSuffix(name, ".jsonl.gz") {
			continue
		}
		month := strings.TrimSuffix(strings.TrimPrefix(name, "scans-"), ".jsonl.gz")
		st := &PartitionStats{}
		path := filepath.Join(s.dir, name)
		var size int64
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		ix, ok, err := loadSidecar(s.dir, month, size, s.maxFormat)
		if err != nil {
			return err
		}
		if ok {
			s.indexes[month] = ix
			st.Reports, st.RawBytes = ix.totals()
			for _, sha := range ix.sampleSHAs() {
				addMonth(sha, month)
			}
		} else if err := s.scanPartition(path, func(row scanRow) {
			addMonth(row.SHA, month)
		}, func(rows int, raw int64) {
			st.Reports += rows
			st.RawBytes += raw
		}); err != nil {
			return err
		}
		st.StoredBytes = size
		s.stats[month] = st
	}
	// Load the metadata snapshot if present.
	metaPath := filepath.Join(s.dir, "samples.jsonl.gz")
	f, err := os.Open(metaPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := bufpool.GetGzipReader(f)
	if err != nil {
		return fmt.Errorf("store: samples snapshot: %w", err)
	}
	defer bufpool.PutGzipReader(gz)
	defer gz.Close()
	dec := json.NewDecoder(gz)
	for {
		var m struct {
			Meta metaRow `json:"m"`
		}
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("store: samples snapshot: %w", err)
		}
		s.shardFor(m.Meta.SHA).samples[m.Meta.SHA] = m.Meta.toMeta()
	}
	return s.loadStatsSidecar()
}

// loadStatsSidecar restores the exact raw-byte accounting persisted
// by Close. Without it, load() has already filled RawBytes with the
// compact-line lengths as a conservative approximation.
func (s *Store) loadStatsSidecar() error {
	b, err := os.ReadFile(filepath.Join(s.dir, "stats.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	var saved map[string]PartitionStats
	if err := json.Unmarshal(b, &saved); err != nil {
		return fmt.Errorf("store: stats sidecar: %w", err)
	}
	for month, st := range saved {
		cp := st
		s.stats[month] = &cp
	}
	return nil
}

// metaRow is the compact metadata encoding.
type metaRow struct {
	SHA   string `json:"s"`
	FT    string `json:"f"`
	Size  int64  `json:"z"`
	First int64  `json:"a"`
	LastA int64  `json:"b"`
	LastS int64  `json:"c"`
	TS    int    `json:"n"`
}

func (m metaRow) toMeta() report.SampleMeta {
	return report.SampleMeta{
		SHA256:              m.SHA,
		FileType:            m.FT,
		Size:                m.Size,
		FirstSubmissionDate: fromUnix(m.First),
		LastAnalysisDate:    fromUnix(m.LastA),
		LastSubmissionDate:  fromUnix(m.LastS),
		TimesSubmitted:      m.TS,
	}
}

func metaFrom(meta report.SampleMeta) metaRow {
	return metaRow{
		SHA:   validUTF8(meta.SHA256),
		FT:    validUTF8(meta.FileType),
		Size:  meta.Size,
		First: unix(meta.FirstSubmissionDate),
		LastA: unix(meta.LastAnalysisDate),
		LastS: unix(meta.LastSubmissionDate),
		TS:    meta.TimesSubmitted,
	}
}

func unix(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func fromUnix(s int64) time.Time {
	if s == 0 {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}

// MonthKey formats the partition key for an instant.
func MonthKey(t time.Time) string { return t.UTC().Format("2006-01") }

// encoded is one envelope marshaled outside the locks.
type encoded struct {
	month string
	sha   string
	meta  report.SampleMeta
	scan  *report.ScanReport
	line  []byte
	raw   int
}

// encRow is the unit handed to a partition writer: the compact line,
// its sample hash for the block posting list, and the scan itself so
// a v2 writer can fold it straight into column state. The scan
// pointer is only dereferenced inside writeRowLocked, synchronously
// within the Put/PutBatch call that owns the envelope; only its
// (immutable) strings are retained past that, by the column
// dictionaries, until the block seals.
type encRow struct {
	sha  string
	line []byte
	scan *report.ScanReport
}

// encodeEnvelope builds the encoded form of one envelope. The row
// line is drawn from the shared buffer pool — callers release it with
// bufpool.PutBuf once the row is written. scratch is a reusable
// scratch buffer (sized by the raw-baseline encode, the only use of
// the full wire form here, so the envelope is serialized exactly
// once); the grown scratch is returned for the caller's next call.
func encodeEnvelope(env *report.Envelope, scratch []byte) (encoded, []byte, error) {
	if env.Meta.SHA256 == "" {
		return encoded{}, scratch, errors.New("store: envelope without sha256")
	}
	// Raw baseline: the full VT wire envelope.
	scratch = env.AppendJSON(scratch[:0])
	return encoded{
		month: MonthKey(env.Scan.AnalysisDate),
		sha:   env.Meta.SHA256,
		meta:  env.Meta,
		scan:  &env.Scan,
		line:  appendScanRow(bufpool.GetBuf(), &env.Scan),
		raw:   len(scratch),
	}, scratch, nil
}

// Put stores one envelope: the scan row goes to its month partition
// and the sample metadata snapshot is updated.
func (s *Store) Put(env report.Envelope) error {
	s.m.putCalls.Inc()
	scratch := bufpool.GetBuf()
	enc, scratch, err := encodeEnvelope(&env, scratch)
	bufpool.PutBuf(scratch)
	if err != nil {
		return err
	}
	err = s.writeRows(enc.month, []encRow{{sha: enc.sha, line: enc.line, scan: enc.scan}})
	bufpool.PutBuf(enc.line)
	if err != nil {
		return err
	}
	s.indexEncoded(enc)
	s.accountRows(enc.month, 1, int64(enc.raw))
	return nil
}

// PutBatch stores many envelopes, grouping partition writes so each
// month's writer lock is taken once per batch. Rows land in slice
// order, so a single-committer caller produces byte-identical
// partitions regardless of how the batch was assembled.
func (s *Store) PutBatch(envs []report.Envelope) error {
	s.m.putCalls.Inc()
	if len(envs) == 0 {
		return nil
	}
	encs := make([]encoded, len(envs))
	scratch := bufpool.GetBuf()
	releaseLines := func() {
		for i := range encs {
			bufpool.PutBuf(encs[i].line)
			encs[i].line = nil
		}
	}
	for i := range envs {
		enc, grown, err := encodeEnvelope(&envs[i], scratch)
		scratch = grown
		if err != nil {
			bufpool.PutBuf(scratch)
			releaseLines()
			return err
		}
		encs[i] = enc
	}
	bufpool.PutBuf(scratch)
	defer releaseLines()
	// Group rows by month preserving order.
	byMonth := make(map[string][]encRow)
	var months []string
	for _, enc := range encs {
		if _, ok := byMonth[enc.month]; !ok {
			months = append(months, enc.month)
		}
		byMonth[enc.month] = append(byMonth[enc.month], encRow{sha: enc.sha, line: enc.line, scan: enc.scan})
	}
	sort.Strings(months)
	for _, month := range months {
		if err := s.writeRows(month, byMonth[month]); err != nil {
			return err
		}
	}
	rawByMonth := make(map[string]struct {
		rows int
		raw  int64
	})
	for _, enc := range encs {
		s.indexEncoded(enc)
		acc := rawByMonth[enc.month]
		acc.rows++
		acc.raw += int64(enc.raw)
		rawByMonth[enc.month] = acc
	}
	for _, month := range months {
		acc := rawByMonth[month]
		s.accountRows(month, acc.rows, acc.raw)
	}
	return nil
}

// indexEncoded updates the sample index for one stored row and drops
// the sample's cached history — the next Get re-reads it.
func (s *Store) indexEncoded(enc encoded) {
	sh := s.shardFor(enc.sha)
	sh.mu.Lock()
	sh.samples[enc.sha] = enc.meta
	set, ok := sh.months[enc.sha]
	if !ok {
		set = make(map[string]bool)
		sh.months[enc.sha] = set
	}
	set[enc.month] = true
	sh.mu.Unlock()
	s.cache.invalidate(enc.sha)
}

// accountRows folds rows into the month's Table 2 accounting.
func (s *Store) accountRows(month string, rows int, raw int64) {
	s.m.putRows.Add(int64(rows))
	s.m.rawBytes.Add(raw)
	s.smu.Lock()
	st, ok := s.stats[month]
	if !ok {
		st = &PartitionStats{}
		s.stats[month] = st
	}
	st.Reports += rows
	st.RawBytes += raw
	s.smu.Unlock()
}

// writeRows appends rows to the month's partition under that
// partition's lock only. If a concurrent Flush closed the writer
// between lookup and write, it retries with a fresh writer.
func (s *Store) writeRows(month string, rows []encRow) error {
	for {
		w, err := s.writer(month)
		if err != nil {
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			continue
		}
		for _, row := range rows {
			if err := w.writeRowLocked(row); err != nil {
				w.mu.Unlock()
				return err
			}
		}
		w.mu.Unlock()
		return nil
	}
}

func (s *Store) writer(month string) (*partWriter, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if w, ok := s.writers[month]; ok {
		return w, nil
	}
	path := s.partPath(month)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Appending a new gzip member to an existing file is valid:
	// readers process multi-member streams transparently.
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	base := fi.Size()
	counter := &countingWriter{w: f}
	w := &partWriter{
		f:           f,
		counter:     counter,
		base:        base,
		blockSize:   s.blockSize,
		format:      s.format,
		pendingShas: bufpool.GetCountMap(),
		m:           s.m,
		sem:         s.compressSem,
	}
	// Attach the month's block index. A fresh partition starts one; an
	// existing partition continues its index only if that index covers
	// every byte already on disk — otherwise new blocks would produce a
	// sidecar with holes, so the month stays on the fallback streaming
	// scan until Reindex rebuilds it.
	ix := s.index(month)
	switch {
	case ix != nil && ix.fileSize == base:
		w.idx = ix
	case ix == nil && base == 0:
		w.idx = newPartIndex()
		s.setIndex(month, w.idx)
	default:
		if ix != nil {
			s.dropIndex(month)
		}
	}
	s.writers[month] = w
	return w, nil
}

// Flush finalizes all open partition writers so data is durable and
// readable, and persists grown index sidecars; subsequent Puts open
// fresh gzip members.
func (s *Store) Flush() error {
	// Writers are closed while wmu is held: a successor writer for the
	// same month can only be created once the old writer's bytes are
	// fully on disk, so the successor's Stat-derived base — and every
	// block offset it records — is exact. (Detaching first and closing
	// outside wmu would let a concurrent Put open a writer whose base
	// excludes the detached writer's still-pending member.)
	s.wmu.Lock()
	defer s.wmu.Unlock()
	for month, w := range s.writers {
		w.mu.Lock()
		w.closed = true
		if err := w.cutBlockLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
		if err := w.commitLocked(0); err != nil {
			w.mu.Unlock()
			return err
		}
		stored := w.counter.n
		if err := w.f.Close(); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("store: %w", err)
		}
		// The writer is finished: its last cut left a fresh (empty)
		// pending-sha map that would otherwise leak out of the pool.
		bufpool.PutCountMap(w.pendingShas)
		w.pendingShas = nil
		w.mu.Unlock()
		delete(s.writers, month)
		s.smu.Lock()
		if st := s.stats[month]; st != nil {
			st.StoredBytes += stored
		}
		s.smu.Unlock()
	}
	return s.writeSidecars()
}

// Sync makes buffered rows durable and readable by cutting the open
// gzip members at a block boundary and persisting grown sidecars and
// metadata snapshots — without tearing down partition writers. It is
// the durability point resumable collectors use before saving a
// checkpoint: after a kill, reopening the directory recovers the
// complete store state (rows, indexes, sample metas, accounting) as
// of the last Sync, so a resumed campaign passes full verification.
func (s *Store) Sync() error {
	s.wmu.Lock()
	open := make([]*partWriter, 0, len(s.writers))
	for _, w := range s.writers {
		open = append(open, w)
	}
	s.wmu.Unlock()
	for _, w := range open {
		w.mu.Lock()
		if !w.closed {
			if err := w.cutBlockLocked(); err != nil {
				w.mu.Unlock()
				return err
			}
			if err := w.commitLocked(0); err != nil {
				w.mu.Unlock()
				return err
			}
		}
		w.mu.Unlock()
	}
	if err := s.writeSidecars(); err != nil {
		return err
	}
	return s.writeSnapshots()
}

// writeSidecars persists every index that has grown since its sidecar
// was last written.
func (s *Store) writeSidecars() error {
	s.imu.Lock()
	months := make([]string, 0, len(s.indexes))
	for month := range s.indexes {
		months = append(months, month)
	}
	s.imu.Unlock()
	sort.Strings(months)
	for _, month := range months {
		if ix := s.index(month); ix != nil {
			if err := ix.writeSidecar(s.dir, month); err != nil {
				return err
			}
		}
	}
	return nil
}

// cutPendingFor makes the month's buffered rows readable if any of
// them belong to sha — Get's read-your-writes guarantee. Cutting only
// when the sample is actually pending avoids member churn under
// read-heavy load.
func (s *Store) cutPendingFor(month, sha string) error {
	s.wmu.Lock()
	w := s.writers[month]
	s.wmu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// A writer closed by a concurrent Flush already has its rows on
	// disk; nothing left to cut.
	if w.closed || !w.pendingSHALocked(sha) {
		return nil
	}
	if err := w.cutBlockLocked(); err != nil {
		return err
	}
	return w.commitLocked(0)
}

// Close flushes partitions and writes the metadata snapshot.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	return s.writeSnapshots()
}

// writeSnapshots persists the sample-metadata and stats snapshots,
// each written to a temp file and renamed into place so a crash
// mid-write never clobbers the previous good snapshot. Both files go
// through the same encoders the replication leader serves
// (WriteSamplesSnapshot, StatsJSON), so a follower that applied the
// leader's snapshots and then Closes rewrites identical bytes. The
// samples snapshot is O(total samples); Sync pays that on every
// checkpoint, which is the same order as the sidecar postings it
// already rewrites.
func (s *Store) writeSnapshots() error {
	path := filepath.Join(s.dir, "samples.jsonl.gz")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.WriteSamplesSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Persist the exact accounting for reloads.
	b, err := s.StatsJSON()
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(s.dir, "stats.json"), b)
}

// snapshotSamples copies the whole sample index out of the shards.
func (s *Store) snapshotSamples() map[string]report.SampleMeta {
	out := make(map[string]report.SampleMeta)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h, m := range sh.samples {
			out[h] = m
		}
		sh.mu.Unlock()
	}
	return out
}

// Get returns the sample's full history. Indexed months are read by
// seeking straight to the few blocks holding the sample (months are
// scanned concurrently); unindexed months fall back to the full
// streaming scan. Rows still sitting in a write buffer are cut to
// disk first, so a Get after Put always sees the written rows.
//
// Results are served through the history cache when enabled. The
// returned History and its Reports slice are the caller's (reorder,
// truncate, or replace entries freely), but the *ScanReport elements
// are shared with the cache and other callers and MUST be treated as
// immutable — call (*ScanReport).Clone before mutating one. Sharing
// makes cache hits allocation-flat instead of deep-copying every
// report per caller.
func (s *Store) Get(sha string) (*report.History, error) {
	s.m.gets.Inc()
	if s.cache == nil {
		// No cache: every Get is a miss so the hits+misses==gets
		// identity holds regardless of configuration.
		s.m.cacheMisses.Inc()
		return s.getUncached(sha)
	}
	return s.cache.get(sha, s.getUncached)
}

// getUncached assembles a history from disk.
func (s *Store) getUncached(sha string) (*report.History, error) {
	sh := s.shardFor(sha)
	sh.mu.Lock()
	meta, ok := sh.samples[sha]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSample, sha)
	}
	monthSet := sh.months[sha]
	months := make([]string, 0, len(monthSet))
	for m := range monthSet {
		months = append(months, m)
	}
	sh.mu.Unlock()
	sort.Strings(months)

	// Read-your-writes: rows of this sample buffered in an open gzip
	// member are not yet readable — cut them to disk first.
	for _, month := range months {
		if err := s.cutPendingFor(month, sha); err != nil {
			return nil, err
		}
	}

	// Scan the sample's months concurrently, assembling results in
	// month order so the pre-sort report order is deterministic.
	perMonth := make([][]*report.ScanReport, len(months))
	if len(months) == 1 {
		rows, err := s.readMonthRows(months[0], sha)
		if err != nil {
			return nil, err
		}
		perMonth[0] = rows
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(months))
		for i, month := range months {
			wg.Add(1)
			go func(i int, month string) {
				defer wg.Done()
				perMonth[i], errs[i] = s.readMonthRows(month, sha)
			}(i, month)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	h := &report.History{Meta: meta}
	for _, rows := range perMonth {
		h.Reports = append(h.Reports, rows...)
	}
	// Stable sort: reports with equal timestamps keep their storage
	// order (months ascending, file order within a month), so repeated
	// Gets — and Gets against stores built at different worker counts,
	// which are byte-identical — always return the identical sequence.
	sort.SliceStable(h.Reports, func(i, j int) bool {
		return h.Reports[i].AnalysisDate.Before(h.Reports[j].AnalysisDate)
	})
	return h, nil
}

// readMonthRows returns the sample's rows from one month, via the
// block index when present, else the full streaming scan.
func (s *Store) readMonthRows(month, sha string) ([]*report.ScanReport, error) {
	path := s.partPath(month)
	var out []*report.ScanReport
	if ix := s.index(month); ix != nil {
		s.m.indexedMonths.Inc()
		blocks := ix.blocksFor(sha)
		if len(blocks) == 0 {
			return nil, nil
		}
		s.m.blockDecodes.Add(int64(len(blocks)))
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		defer f.Close()
		var row scanRow
		for _, bm := range blocks {
			switch ver := blockVer(bm); {
			case ver == FormatV1:
				if err := scanBlockLinesAt(f, path, bm, func(line []byte) error {
					// A block holds many samples; skip full decodes for
					// other samples' rows by peeking at the leading "s" key
					// (always first in canonical encoder output).
					if got, ok := rowSHA(line); ok && string(got) != sha {
						return nil
					}
					if err := decodeScanRow(line, &row); err != nil {
						return err
					}
					if row.SHA == sha {
						out = append(out, rowToReport(row))
					}
					return nil
				}); err != nil {
					return nil, err
				}
			case ver <= s.maxFormat:
				payload, err := readBlockPayloadAt(f, path, bm)
				if err != nil {
					return nil, err
				}
				rows, err := columnarRowsFor(payload, sha)
				bufpool.PutBlockBuf(payload)
				if err != nil {
					return nil, fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
				}
				out = append(out, rows...)
			default:
				return nil, &FormatError{Path: path, Version: ver, Max: s.maxFormat}
			}
		}
		return out, nil
	}
	s.m.fallbackMonths.Inc()
	err := s.scanPartition(path, func(row scanRow) {
		if row.SHA == sha {
			out = append(out, rowToReport(row))
		}
	}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func rowToReport(row scanRow) *report.ScanReport {
	r := &report.ScanReport{
		SHA256:       row.SHA,
		FileType:     row.FT,
		AnalysisDate: fromUnix(row.At),
		AVRank:       row.Rank,
		EnginesTotal: row.Tot,
		Results:      make([]report.EngineResult, len(row.Res)),
	}
	for i, rr := range row.Res {
		r.Results[i] = report.EngineResult{
			Engine:           rr.E,
			Verdict:          report.Verdict(rr.V),
			SignatureVersion: rr.S,
			Label:            rr.L,
		}
	}
	return r
}

// scanPartition streams rows of a partition file member by member,
// dispatching each gzip member on its sniffed payload format. rowFn
// (optional) receives every decoded row; the row is reused across
// calls — every decoded string is owned (cloned or interned) and
// rowFn's callers copy what they keep via rowToReport, so only the
// Res backing array is shared, and it is overwritten, never appended
// to, between calls. acctFn (optional) receives each member's row
// count and raw (v1-line) byte total for load-time accounting.
func (s *Store) scanPartition(path string, rowFn func(row scanRow), acctFn func(rows int, raw int64)) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	br := bufpool.GetBufioReader(f)
	defer bufpool.PutBufioReader(br)
	gz, err := bufpool.GetGzipReader(br)
	if err != nil {
		if errors.Is(err, io.EOF) { // empty partition file
			return nil
		}
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer bufpool.PutGzipReader(gz)
	defer gz.Close()
	sbuf := bufpool.GetScanBuf()
	defer bufpool.PutScanBuf(sbuf)
	// mr buffers each member's decompressed bytes for the format sniff.
	mr := bufio.NewReaderSize(nil, 32<<10)
	var row scanRow
	for {
		gz.Multistream(false)
		mr.Reset(gz)
		head, _ := mr.Peek(len(colMagic) + 1)
		switch ver := sniffVersion(head); {
		case ver == FormatV1:
			sc := bufio.NewScanner(mr)
			sc.Buffer(sbuf, 16<<20)
			rows, raw := 0, int64(0)
			for sc.Scan() {
				if err := decodeScanRow(sc.Bytes(), &row); err != nil {
					return fmt.Errorf("store: %s: %w", path, err)
				}
				rows++
				raw += int64(len(sc.Bytes()))
				if rowFn != nil {
					rowFn(row)
				}
			}
			if err := sc.Err(); err != nil {
				return fmt.Errorf("store: %s: %w", path, err)
			}
			if acctFn != nil {
				acctFn(rows, raw)
			}
		case ver <= s.maxFormat:
			payload, err := io.ReadAll(mr)
			if err != nil {
				return fmt.Errorf("store: %s: %w", path, err)
			}
			want := wantAllDicts
			if rowFn == nil {
				want = 0 // accounting only — the header alone suffices
			}
			cb, err := parseColumnarBlock(payload, want)
			if err != nil {
				return fmt.Errorf("store: %s: %w", path, err)
			}
			if rowFn != nil {
				if err := cb.forEachRow(func(r *scanRow) error {
					rowFn(*r)
					return nil
				}); err != nil {
					return fmt.Errorf("store: %s: %w", path, err)
				}
			}
			if acctFn != nil {
				acctFn(cb.rows, cb.raw)
			}
		default:
			return &FormatError{Path: path, Version: ver, Max: s.maxFormat}
		}
		if err := gz.Reset(br); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("store: %s: %w", path, err)
		}
	}
}

// IterReports streams every report in a month partition in storage
// order.
func (s *Store) IterReports(month string, fn func(*report.ScanReport) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	path := s.partPath(month)
	var inner error
	err := s.scanPartition(path, func(row scanRow) {
		if inner != nil {
			return
		}
		inner = fn(rowToReport(row))
	}, nil)
	if err != nil {
		return err
	}
	return inner
}

// iterJob is one unit of an IterAll pass: a single block of an
// indexed month, or a whole unindexed month streamed end to end.
type iterJob struct {
	month string
	path  string
	block *blockMeta
}

// IterAll streams every report in the store through fn, fanning
// partition blocks across a pool of workers (workers <= 0 uses
// GOMAXPROCS; 1 iterates serially in storage order). It flushes
// first, like IterReports. With workers > 1, fn is called from
// multiple goroutines concurrently and no ordering is guaranteed —
// fn must be safe for concurrent use. The first error stops the
// pass.
func (s *Store) IterAll(workers int, fn func(month string, r *report.ScanReport) error) error {
	return s.forEachJob(workers, func(j iterJob) error {
		return s.runIterJob(j, fn)
	})
}

// forEachJob flushes, slices the store into per-block (or per-month,
// when unindexed) jobs, and fans them across a worker pool. run is
// called from multiple goroutines when workers > 1; the first error
// stops the pass.
func (s *Store) forEachJob(workers int, run func(iterJob) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var jobs []iterJob
	for _, month := range s.Months() {
		path := s.partPath(month)
		if ix := s.index(month); ix != nil {
			for _, bm := range ix.snapshotBlocks() {
				if bm.Rows == 0 {
					continue
				}
				bm := bm
				jobs = append(jobs, iterJob{month: month, path: path, block: &bm})
			}
		} else {
			jobs = append(jobs, iterJob{month: month, path: path})
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			if err := run(j); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	jobc := make(chan iterJob)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobc {
				if failed() {
					continue
				}
				if err := run(j); err != nil {
					fail(err)
				}
			}
		}()
	}
	for _, j := range jobs {
		jobc <- j
	}
	close(jobc)
	wg.Wait()
	return firstErr
}

// runIterJob streams one job's rows through fn.
func (s *Store) runIterJob(j iterJob, fn func(month string, r *report.ScanReport) error) error {
	var inner error
	handle := func(row scanRow) {
		if inner != nil {
			return
		}
		inner = fn(j.month, rowToReport(row))
	}
	var err error
	if j.block != nil {
		err = scanBlock(j.path, *j.block, s.maxFormat, handle)
	} else {
		err = s.scanPartition(j.path, handle, nil)
	}
	if err != nil {
		return err
	}
	return inner
}

// Reindex rebuilds every partition's block index by re-walking its
// gzip members, and persists fresh sidecars — upgrading pre-sidecar
// stores (and healing stale sidecars) in place. Partitions written
// before block compression existed get one block per historical
// flush, which still lets Get skip every member without its sample.
func (s *Store) Reindex() error {
	if err := s.Flush(); err != nil {
		return err
	}
	for _, month := range s.Months() {
		if err := s.reindexMonth(month); err != nil {
			return err
		}
	}
	return nil
}

// reindexMonth rebuilds and persists one month's sidecar.
func (s *Store) reindexMonth(month string) error {
	ix, err := indexPartitionFile(s.partPath(month), s.maxFormat)
	if err != nil {
		return err
	}
	ix.dirty = true
	s.setIndex(month, ix)
	return ix.writeSidecar(s.dir, month)
}

// ReindexStats summarizes one ReindexWithStats pass.
type ReindexStats struct {
	// Upgraded lists the months whose sidecars were rebuilt — missing,
	// stale (rejected at Open), or lacking zone maps.
	Upgraded []string
	// Skipped lists the months left untouched: their sidecar was
	// accepted at Open (size-matched the partition) and every block
	// entry already carries a zone map.
	Skipped []string
}

// ReindexWithStats upgrades sidecars in place, skipping months that
// are already current — which makes it idempotent: a second run
// skips everything the first upgraded. `vtstore reindex` runs this;
// Reindex keeps its unconditional rebuild-everything semantics for
// repair paths that must not trust the in-memory index.
func (s *Store) ReindexWithStats() (ReindexStats, error) {
	var rs ReindexStats
	if err := s.Flush(); err != nil {
		return rs, err
	}
	for _, month := range s.Months() {
		if ix := s.index(month); ix != nil && ix.fullyZoned() {
			rs.Skipped = append(rs.Skipped, month)
			continue
		}
		if err := s.reindexMonth(month); err != nil {
			return rs, err
		}
		rs.Upgraded = append(rs.Upgraded, month)
	}
	return rs, nil
}

// SidecarVersions reports each month's effective sidecar state:
// 0 = no usable sidecar (missing or stale), 2 = loaded but pre-zone
// (legacy entries without zone maps), 3 = fully zone-mapped. The
// `vtstore verify` report surfaces this so operators can see which
// partitions still scan un-pruned.
func (s *Store) SidecarVersions() map[string]int {
	out := make(map[string]int)
	for _, month := range s.Months() {
		ix := s.index(month)
		switch {
		case ix == nil:
			out[month] = 0
		case ix.fullyZoned():
			out[month] = sidecarVerZones
		default:
			out[month] = sidecarVerLegacy
		}
	}
	return out
}

// CachedHistories reports how many decoded histories the read cache
// currently holds (0 when the cache is disabled).
func (s *Store) CachedHistories() int { return s.cache.len() }

// Indexed reports whether every partition has a block index, i.e.
// Get is served by block seeks rather than full partition scans. A
// store that predates the sidecar format reports false until Reindex.
func (s *Store) Indexed() bool {
	months := s.Months()
	s.imu.Lock()
	defer s.imu.Unlock()
	for _, m := range months {
		if s.indexes[m] == nil {
			return false
		}
	}
	return true
}

// Months returns the partition keys present, sorted.
func (s *Store) Months() []string {
	s.smu.Lock()
	defer s.smu.Unlock()
	out := make([]string, 0, len(s.stats))
	for m := range s.stats {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Stats returns the accounting for one month. StoredBytes is only
// final after Flush.
func (s *Store) Stats(month string) PartitionStats {
	s.smu.Lock()
	defer s.smu.Unlock()
	if st, ok := s.stats[month]; ok {
		return *st
	}
	return PartitionStats{}
}

// TotalStats sums all partitions.
func (s *Store) TotalStats() PartitionStats {
	s.smu.Lock()
	defer s.smu.Unlock()
	var total PartitionStats
	for _, st := range s.stats {
		total.Reports += st.Reports
		total.RawBytes += st.RawBytes
		total.StoredBytes += st.StoredBytes
	}
	return total
}

// NumSamples returns the number of distinct samples stored.
func (s *Store) NumSamples() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.samples)
		sh.mu.Unlock()
	}
	return n
}

// SampleHashes returns every stored sample hash, sorted.
func (s *Store) SampleHashes() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h := range sh.samples {
			out = append(out, h)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Meta returns the latest metadata snapshot for a sample.
func (s *Store) Meta(sha string) (report.SampleMeta, bool) {
	sh := s.shardFor(sha)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.samples[sha]
	return m, ok
}

// TypeStats is the per-file-type breakdown of stored data — the Table
// 3 view over a collected store rather than a generated population.
type TypeStats struct {
	Samples int
	Reports int
}

// StatsByType tallies stored samples and scan rows per file type
// using all cores; it flushes first so buffered rows are counted.
func (s *Store) StatsByType() (map[string]TypeStats, error) {
	return s.StatsByTypeWorkers(0)
}

// StatsByTypeWorkers is StatsByType over an explicit worker count
// (<= 0 uses GOMAXPROCS). It runs on the pushdown scan engine
// projecting only the file-type column: v2 blocks decode one
// dictionary and one segment — no row materialization, no result
// decoding — and empty blocks are pruned without decompression; v1
// blocks fall back to full row decodes as before.
func (s *Store) StatsByTypeWorkers(workers int) (map[string]TypeStats, error) {
	out := map[string]TypeStats{}
	for _, meta := range s.snapshotSamples() {
		ts := out[meta.FileType]
		ts.Samples++
		out[meta.FileType] = ts
	}
	var group GroupCountByType
	if _, err := s.Scan(Query{Cols: ColFT, Workers: workers}, &group); err != nil {
		return nil, err
	}
	for ft, n := range group.Counts {
		ts := out[ft]
		ts.Reports += int(n)
		out[ft] = ts
	}
	return out, nil
}

// Verify re-reads every partition on all cores, checking that each
// row parses, validates, and belongs to an indexed sample, and that
// every sidecar block entry agrees with its partition payload. It
// returns the number of rows checked.
func (s *Store) Verify() (int, error) { return s.VerifyWorkers(0) }

// VerifyWorkers is Verify over an explicit worker count (<= 0 uses
// GOMAXPROCS). On failure the returned count reflects the rows
// checked before the pass stopped, which with workers > 1 is
// approximate. The row pass runs on the pushdown scan engine with an
// unfiltered full-projection query, so it also exercises the scan
// decode paths it shares with every aggregation.
func (s *Store) VerifyWorkers(workers int) (int, error) {
	known := make(map[string]bool)
	for h := range s.snapshotSamples() {
		known[h] = true
	}
	agg := verifyAgg{known: known}
	stats, err := s.Scan(Query{Cols: ColAll, Workers: workers}, &agg)
	if err == nil {
		err = s.verifyBlockIndexes(workers)
	}
	return int(stats.Rows), err
}

// verifyAgg is Verify's row kernel: every row must belong to an
// indexed sample, be filed under its own month, and survive
// report.Validate — which recomputes AV rank and active-engine counts
// from the results, so the kernel needs the full projection.
type verifyAgg struct {
	known map[string]bool // read-only once Scan starts
}

type verifyPartial struct {
	known map[string]bool
	r     report.ScanReport // scratch: Results reused across rows
}

func (a *verifyAgg) NewPartial() Partial { return &verifyPartial{known: a.known} }

func (a *verifyAgg) Merge(Partial) error { return nil }

func (p *verifyPartial) Row(rv *RowView) error {
	if !p.known[rv.SHA] {
		return fmt.Errorf("store: %s row %s not in sample index", rv.Month, rv.SHA)
	}
	if MonthKey(fromUnix(rv.At)) != rv.Month {
		return fmt.Errorf("store: row %s at %d filed under %s", rv.SHA, rv.At, rv.Month)
	}
	p.r = report.ScanReport{
		SHA256:       rv.SHA,
		FileType:     rv.FT,
		AnalysisDate: fromUnix(rv.At),
		AVRank:       rv.Rank,
		EnginesTotal: rv.Tot,
		Results:      p.r.Results[:0],
	}
	for i := range rv.Res {
		r := &rv.Res[i]
		p.r.Results = append(p.r.Results, report.EngineResult{
			Engine:           r.Eng,
			Verdict:          report.Verdict(r.Ver),
			Label:            r.Lab,
			SignatureVersion: r.Sig,
		})
	}
	if err := p.r.Validate(); err != nil {
		return fmt.Errorf("store: row %s invalid: %w", rv.SHA, err)
	}
	return nil
}

// ErrIndexMismatch is returned by Verify when a sidecar block entry
// disagrees with the partition payload it points at — wrong row
// count, raw-byte total, format version, or posting list. The sidecar
// is acceleration state, so a disagreement means replication parity
// checks and indexed Gets can no longer trust it; Reindex rebuilds it
// from the partition bytes.
var ErrIndexMismatch = errors.New("store: block index disagrees with partition payload")

// verifyBlockIndexes cross-checks every indexed month's in-memory
// block index (which mirrors the sidecar) against the partition
// payloads: blocks must tile the file exactly, and each block's
// claimed rows, raw bytes, version, and posting membership must match
// what its payload actually decodes to. This is what lets `vtstore
// verify` vouch for a replica: a follower whose sidecars pass this
// and whose partitions hash equal to the leader's is a true replica.
func (s *Store) verifyBlockIndexes(workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type blockJob struct {
		month string
		path  string
		seq   int
		bm    blockMeta
		want  map[string]bool
	}
	var jobs []blockJob
	for _, month := range s.Months() {
		ix := s.index(month)
		if ix == nil {
			continue
		}
		path := s.partPath(month)
		var size int64
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("store: %w", err)
		}
		blocks := ix.snapshotBlocks()
		var off int64
		for seq, bm := range blocks {
			if bm.Offset != off || bm.Len <= 0 {
				return fmt.Errorf("%w: %s block %d at offset %d, expected %d", ErrIndexMismatch, month, seq, bm.Offset, off)
			}
			off += bm.Len
		}
		if off != size {
			return fmt.Errorf("%w: %s index covers %d bytes, partition holds %d", ErrIndexMismatch, month, off, size)
		}
		want := make([]map[string]bool, len(blocks))
		for sha, ids := range ix.snapshotPostings() {
			for _, id := range ids {
				if id < 0 || id >= len(blocks) {
					return fmt.Errorf("%w: %s posting for %s names block %d of %d", ErrIndexMismatch, month, sha, id, len(blocks))
				}
				if want[id] == nil {
					want[id] = make(map[string]bool)
				}
				want[id][sha] = true
			}
		}
		for seq, bm := range blocks {
			jobs = append(jobs, blockJob{month: month, path: path, seq: seq, bm: bm, want: want[seq]})
		}
	}
	check := func(j blockJob) error {
		f, err := os.Open(j.path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer f.Close()
		payload, err := readBlockPayloadAt(f, j.path, j.bm)
		if err != nil {
			return err
		}
		defer bufpool.PutBlockBuf(payload)
		sum, err := analyzePayload(payload, s.maxFormat)
		if err != nil {
			var fe *FormatError
			if errors.As(err, &fe) {
				return &FormatError{Path: j.path, Version: fe.Version, Max: fe.Max}
			}
			return fmt.Errorf("%w: %s block %d payload: %v", ErrIndexMismatch, j.month, j.seq, err)
		}
		if sum.ver != blockVer(j.bm) || sum.rows != j.bm.Rows || sum.raw != j.bm.Raw {
			return fmt.Errorf("%w: %s block %d is v%d/%d rows/%d raw, sidecar says v%d/%d/%d",
				ErrIndexMismatch, j.month, j.seq, sum.ver, sum.rows, sum.raw, blockVer(j.bm), j.bm.Rows, j.bm.Raw)
		}
		// Zone maps are pure functions of the payload, so a zoned entry
		// must equal the recomputed zone exactly; pre-zone entries
		// (Z == 0, legacy sidecars) claim nothing and are exempt.
		if j.bm.Z != 0 && sum.zone != j.bm.zone() {
			return fmt.Errorf("%w: %s block %d zone map disagrees with payload (sidecar %+v, payload %+v)",
				ErrIndexMismatch, j.month, j.seq, j.bm.zone(), sum.zone)
		}
		if len(sum.shas) != len(j.want) {
			return fmt.Errorf("%w: %s block %d holds %d samples, postings name %d",
				ErrIndexMismatch, j.month, j.seq, len(sum.shas), len(j.want))
		}
		for sha := range sum.shas {
			if !j.want[sha] {
				return fmt.Errorf("%w: %s block %d holds %s, which its postings do not name",
					ErrIndexMismatch, j.month, j.seq, sha)
			}
		}
		return nil
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			if err := check(j); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobc := make(chan blockJob)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobc {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				if err := check(j); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		jobc <- j
	}
	close(jobc)
	wg.Wait()
	return firstErr
}
