// Package store is the embedded report store standing in for the
// paper's MongoDB deployment. It follows the paper's data-engineering
// choices (§4.1):
//
//   - sample basic information and scan results are stored separately
//     to remove redundancy (metadata is kept once per sample, scan
//     rows carry only per-scan fields);
//   - only relevant fields are stored, in a compact row encoding;
//   - rows are gzip-compressed;
//   - data is partitioned by month (Table 2 reports per-month counts
//     and sizes).
//
// The store tracks raw-vs-stored byte accounting so the compression
// ratio the paper reports (10.06×) can be measured on our data.
//
// Layout under the store directory:
//
//	scans-2021-05.jsonl.gz   one multi-member gzip file per month
//	samples.jsonl.gz         latest metadata snapshot, written on Close
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vtdynamics/internal/report"
)

// ErrUnknownSample is returned by Get for hashes never stored.
var ErrUnknownSample = errors.New("store: unknown sample")

// Store is an embedded, compressed, monthly-partitioned report store.
// It is safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	samples map[string]report.SampleMeta
	// months maps sample hash -> partition keys that contain its rows.
	months  map[string]map[string]bool
	writers map[string]*partWriter
	stats   map[string]*PartitionStats
}

// PartitionStats is the per-month accounting of Table 2.
type PartitionStats struct {
	// Reports is the number of scan rows in the partition.
	Reports int
	// RawBytes is the size the rows would occupy as uncompressed
	// full VT-wire envelopes (the naive storage baseline).
	RawBytes int64
	// StoredBytes is the compressed on-disk size of the rows.
	StoredBytes int64
}

// CompressionRatio returns RawBytes / StoredBytes (0 if nothing
// stored).
func (p PartitionStats) CompressionRatio() float64 {
	if p.StoredBytes == 0 {
		return 0
	}
	return float64(p.RawBytes) / float64(p.StoredBytes)
}

// scanRow is the compact on-disk encoding of one scan.
type scanRow struct {
	SHA  string   `json:"s"`
	FT   string   `json:"f"`
	At   int64    `json:"t"`
	Rank int      `json:"p"`
	Tot  int      `json:"n"`
	Res  []rowRes `json:"r"`
}

type rowRes struct {
	E string `json:"e"`
	V int8   `json:"v"`
	S int    `json:"s"`
	L string `json:"l,omitempty"`
}

type partWriter struct {
	f       *os.File
	counter *countingWriter
	gz      *gzip.Writer
	buf     *bufio.Writer
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Open opens (or creates) a store in dir, loading any existing
// partitions into the index.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		samples: make(map[string]report.SampleMeta),
		months:  make(map[string]map[string]bool),
		writers: make(map[string]*partWriter),
		stats:   make(map[string]*PartitionStats),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load rebuilds the in-memory index from existing partition files.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "scans-") || !strings.HasSuffix(name, ".jsonl.gz") {
			continue
		}
		month := strings.TrimSuffix(strings.TrimPrefix(name, "scans-"), ".jsonl.gz")
		st := &PartitionStats{}
		path := filepath.Join(s.dir, name)
		if err := s.scanPartition(path, func(row scanRow, rawLen int) {
			st.Reports++
			st.RawBytes += int64(rawLen)
			set, ok := s.months[row.SHA]
			if !ok {
				set = make(map[string]bool)
				s.months[row.SHA] = set
			}
			set[month] = true
		}); err != nil {
			return err
		}
		if fi, err := os.Stat(path); err == nil {
			st.StoredBytes = fi.Size()
		}
		s.stats[month] = st
	}
	// Load the metadata snapshot if present.
	metaPath := filepath.Join(s.dir, "samples.jsonl.gz")
	f, err := os.Open(metaPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("store: samples snapshot: %w", err)
	}
	defer gz.Close()
	dec := json.NewDecoder(gz)
	for {
		var m struct {
			Meta metaRow `json:"m"`
		}
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("store: samples snapshot: %w", err)
		}
		s.samples[m.Meta.SHA] = m.Meta.toMeta()
	}
	return s.loadStatsSidecar()
}

// loadStatsSidecar restores the exact raw-byte accounting persisted
// by Close. Without it, load() has already filled RawBytes with the
// compact-line lengths as a conservative approximation.
func (s *Store) loadStatsSidecar() error {
	b, err := os.ReadFile(filepath.Join(s.dir, "stats.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	var saved map[string]PartitionStats
	if err := json.Unmarshal(b, &saved); err != nil {
		return fmt.Errorf("store: stats sidecar: %w", err)
	}
	for month, st := range saved {
		cp := st
		s.stats[month] = &cp
	}
	return nil
}

// metaRow is the compact metadata encoding.
type metaRow struct {
	SHA   string `json:"s"`
	FT    string `json:"f"`
	Size  int64  `json:"z"`
	First int64  `json:"a"`
	LastA int64  `json:"b"`
	LastS int64  `json:"c"`
	TS    int    `json:"n"`
}

func (m metaRow) toMeta() report.SampleMeta {
	return report.SampleMeta{
		SHA256:              m.SHA,
		FileType:            m.FT,
		Size:                m.Size,
		FirstSubmissionDate: fromUnix(m.First),
		LastAnalysisDate:    fromUnix(m.LastA),
		LastSubmissionDate:  fromUnix(m.LastS),
		TimesSubmitted:      m.TS,
	}
}

func metaFrom(meta report.SampleMeta) metaRow {
	return metaRow{
		SHA:   meta.SHA256,
		FT:    meta.FileType,
		Size:  meta.Size,
		First: unix(meta.FirstSubmissionDate),
		LastA: unix(meta.LastAnalysisDate),
		LastS: unix(meta.LastSubmissionDate),
		TS:    meta.TimesSubmitted,
	}
}

func unix(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func fromUnix(s int64) time.Time {
	if s == 0 {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}

// MonthKey formats the partition key for an instant.
func MonthKey(t time.Time) string { return t.UTC().Format("2006-01") }

// Put stores one envelope: the scan row goes to its month partition
// and the sample metadata snapshot is updated.
func (s *Store) Put(env report.Envelope) error {
	if env.Meta.SHA256 == "" {
		return errors.New("store: envelope without sha256")
	}
	month := MonthKey(env.Scan.AnalysisDate)

	row := scanRow{
		SHA:  env.Scan.SHA256,
		FT:   env.Scan.FileType,
		At:   env.Scan.AnalysisDate.Unix(),
		Rank: env.Scan.AVRank,
		Tot:  env.Scan.EnginesTotal,
		Res:  make([]rowRes, len(env.Scan.Results)),
	}
	for i, er := range env.Scan.Results {
		row.Res[i] = rowRes{E: er.Engine, V: int8(er.Verdict), S: er.SignatureVersion, L: er.Label}
	}
	line, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Raw baseline: the full VT wire envelope.
	rawWire, err := env.MarshalJSON()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.writerLocked(month)
	if err != nil {
		return err
	}
	if _, err := w.buf.Write(line); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	s.samples[env.Meta.SHA256] = env.Meta
	set, ok := s.months[env.Meta.SHA256]
	if !ok {
		set = make(map[string]bool)
		s.months[env.Meta.SHA256] = set
	}
	set[month] = true

	st, ok := s.stats[month]
	if !ok {
		st = &PartitionStats{}
		s.stats[month] = st
	}
	st.Reports++
	st.RawBytes += int64(len(rawWire))
	return nil
}

func (s *Store) writerLocked(month string) (*partWriter, error) {
	if w, ok := s.writers[month]; ok {
		return w, nil
	}
	path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Appending a new gzip member to an existing file is valid:
	// readers process multi-member streams transparently.
	counter := &countingWriter{w: f}
	gz := gzip.NewWriter(counter)
	w := &partWriter{f: f, counter: counter, gz: gz, buf: bufio.NewWriterSize(gz, 64<<10)}
	s.writers[month] = w
	return w, nil
}

// Flush finalizes all open partition writers so data is durable and
// readable; subsequent Puts open fresh gzip members.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	for month, w := range s.writers {
		if err := w.buf.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := w.gz.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if st := s.stats[month]; st != nil {
			st.StoredBytes += w.counter.n
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		delete(s.writers, month)
	}
	return nil
}

// Close flushes partitions and writes the metadata snapshot.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.dir, "samples.jsonl.gz"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	gz := gzip.NewWriter(f)
	enc := json.NewEncoder(gz)
	hashes := make([]string, 0, len(s.samples))
	for h := range s.samples {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		row := struct {
			Meta metaRow `json:"m"`
		}{Meta: metaFrom(s.samples[h])}
		if err := enc.Encode(row); err != nil {
			gz.Close()
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Persist the exact accounting for reloads.
	snapshot := make(map[string]PartitionStats, len(s.stats))
	for month, st := range s.stats {
		snapshot[month] = *st
	}
	b, err := json.Marshal(snapshot)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, "stats.json"), b, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get returns the sample's full history, reading every partition that
// contains its rows. Call Flush first if writes may be buffered.
func (s *Store) Get(sha string) (*report.History, error) {
	s.mu.Lock()
	meta, ok := s.samples[sha]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSample, sha)
	}
	monthSet := s.months[sha]
	months := make([]string, 0, len(monthSet))
	for m := range monthSet {
		months = append(months, m)
	}
	s.mu.Unlock()

	h := &report.History{Meta: meta}
	for _, month := range months {
		path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
		err := s.scanPartition(path, func(row scanRow, _ int) {
			if row.SHA != sha {
				return
			}
			h.Reports = append(h.Reports, rowToReport(row))
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(h.Reports, func(i, j int) bool {
		return h.Reports[i].AnalysisDate.Before(h.Reports[j].AnalysisDate)
	})
	return h, nil
}

func rowToReport(row scanRow) *report.ScanReport {
	r := &report.ScanReport{
		SHA256:       row.SHA,
		FileType:     row.FT,
		AnalysisDate: fromUnix(row.At),
		AVRank:       row.Rank,
		EnginesTotal: row.Tot,
		Results:      make([]report.EngineResult, len(row.Res)),
	}
	for i, rr := range row.Res {
		r.Results[i] = report.EngineResult{
			Engine:           rr.E,
			Verdict:          report.Verdict(rr.V),
			SignatureVersion: rr.S,
			Label:            rr.L,
		}
	}
	return r
}

// scanPartition streams rows of a partition file; rawLen passes the
// stored (uncompressed) line length for accounting during load.
func (s *Store) scanPartition(path string, fn func(row scanRow, rawLen int)) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer gz.Close()
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var row scanRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
		fn(row, len(sc.Bytes()))
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	return nil
}

// IterReports streams every report in a month partition in storage
// order.
func (s *Store) IterReports(month string, fn func(*report.ScanReport) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
	var inner error
	err := s.scanPartition(path, func(row scanRow, _ int) {
		if inner != nil {
			return
		}
		inner = fn(rowToReport(row))
	})
	if err != nil {
		return err
	}
	return inner
}

// Months returns the partition keys present, sorted.
func (s *Store) Months() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.stats))
	for m := range s.stats {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Stats returns the accounting for one month. StoredBytes is only
// final after Flush.
func (s *Store) Stats(month string) PartitionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.stats[month]; ok {
		return *st
	}
	return PartitionStats{}
}

// TotalStats sums all partitions.
func (s *Store) TotalStats() PartitionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total PartitionStats
	for _, st := range s.stats {
		total.Reports += st.Reports
		total.RawBytes += st.RawBytes
		total.StoredBytes += st.StoredBytes
	}
	return total
}

// NumSamples returns the number of distinct samples stored.
func (s *Store) NumSamples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// SampleHashes returns every stored sample hash, sorted.
func (s *Store) SampleHashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.samples))
	for h := range s.samples {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Meta returns the latest metadata snapshot for a sample.
func (s *Store) Meta(sha string) (report.SampleMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.samples[sha]
	return m, ok
}

// TypeStats is the per-file-type breakdown of stored data — the Table
// 3 view over a collected store rather than a generated population.
type TypeStats struct {
	Samples int
	Reports int
}

// StatsByType tallies stored samples and scan rows per file type. It
// flushes first so buffered rows are counted.
func (s *Store) StatsByType() (map[string]TypeStats, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	out := map[string]TypeStats{}
	s.mu.Lock()
	for _, meta := range s.samples {
		ts := out[meta.FileType]
		ts.Samples++
		out[meta.FileType] = ts
	}
	months := make([]string, 0, len(s.stats))
	for m := range s.stats {
		months = append(months, m)
	}
	s.mu.Unlock()
	for _, month := range months {
		path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
		if err := s.scanPartition(path, func(row scanRow, _ int) {
			ts := out[row.FT]
			ts.Reports++
			out[row.FT] = ts
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Verify re-reads every partition, checking that each row parses,
// validates, and belongs to an indexed sample. It returns the number
// of rows checked.
func (s *Store) Verify() (int, error) {
	if err := s.Flush(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	months := make([]string, 0, len(s.stats))
	for m := range s.stats {
		months = append(months, m)
	}
	known := make(map[string]bool, len(s.samples))
	for h := range s.samples {
		known[h] = true
	}
	s.mu.Unlock()
	sort.Strings(months)
	checked := 0
	for _, month := range months {
		path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
		var inner error
		err := s.scanPartition(path, func(row scanRow, _ int) {
			if inner != nil {
				return
			}
			checked++
			if !known[row.SHA] {
				inner = fmt.Errorf("store: %s row %s not in sample index", month, row.SHA)
				return
			}
			if MonthKey(fromUnix(row.At)) != month {
				inner = fmt.Errorf("store: row %s at %d filed under %s", row.SHA, row.At, month)
				return
			}
			if err := rowToReport(row).Validate(); err != nil {
				inner = fmt.Errorf("store: row %s invalid: %w", row.SHA, err)
			}
		})
		if err != nil {
			return checked, err
		}
		if inner != nil {
			return checked, inner
		}
	}
	return checked, nil
}
