// Package store is the embedded report store standing in for the
// paper's MongoDB deployment. It follows the paper's data-engineering
// choices (§4.1):
//
//   - sample basic information and scan results are stored separately
//     to remove redundancy (metadata is kept once per sample, scan
//     rows carry only per-scan fields);
//   - only relevant fields are stored, in a compact row encoding;
//   - rows are gzip-compressed;
//   - data is partitioned by month (Table 2 reports per-month counts
//     and sizes).
//
// The store tracks raw-vs-stored byte accounting so the compression
// ratio the paper reports (10.06×) can be measured on our data.
//
// Layout under the store directory (identical to the original
// single-writer layout — sharding is an in-memory concern only):
//
//	scans-2021-05.jsonl.gz   one multi-member gzip file per month
//	samples.jsonl.gz         latest metadata snapshot, written on Close
//
// Concurrency model: the sample index (metadata + month membership)
// is hash-sharded with one mutex per shard, so concurrent Puts on
// different samples never contend on the index. Each monthly
// partition has its own writer with its own lock, so ingest into
// different months proceeds in parallel and the gzip compression for
// one month never blocks another. Row encoding (the expensive JSON
// work) happens outside every lock. PutBatch amortizes the partition
// lock over a whole feed slice.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vtdynamics/internal/report"
)

// ErrUnknownSample is returned by Get for hashes never stored.
var ErrUnknownSample = errors.New("store: unknown sample")

// indexShards is the sample-index shard count (power of two).
const indexShards = 32

// Store is an embedded, compressed, monthly-partitioned report store.
// It is safe for concurrent use; see the package comment for the
// locking scheme.
type Store struct {
	dir string

	// shards hold the per-sample metadata and month-membership index.
	shards [indexShards]indexShard

	// wmu guards the writers map (creation/detach); individual writes
	// lock only the month's writer.
	wmu     sync.Mutex
	writers map[string]*partWriter

	// smu guards the per-month accounting.
	smu   sync.Mutex
	stats map[string]*PartitionStats
}

type indexShard struct {
	mu      sync.Mutex
	samples map[string]report.SampleMeta
	// months maps sample hash -> partition keys that contain its rows.
	months map[string]map[string]bool
}

func (s *Store) shardFor(sha string) *indexShard {
	return &s.shards[fnv32a(sha)&(indexShards-1)]
}

// fnv32a hashes a sample hash onto its index shard.
func fnv32a(s string) uint32 {
	const offset = 2166136261
	const prime = 16777619
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// PartitionStats is the per-month accounting of Table 2.
type PartitionStats struct {
	// Reports is the number of scan rows in the partition.
	Reports int
	// RawBytes is the size the rows would occupy as uncompressed
	// full VT-wire envelopes (the naive storage baseline).
	RawBytes int64
	// StoredBytes is the compressed on-disk size of the rows.
	StoredBytes int64
}

// CompressionRatio returns RawBytes / StoredBytes (0 if nothing
// stored).
func (p PartitionStats) CompressionRatio() float64 {
	if p.StoredBytes == 0 {
		return 0
	}
	return float64(p.RawBytes) / float64(p.StoredBytes)
}

// scanRow is the compact on-disk encoding of one scan.
type scanRow struct {
	SHA  string   `json:"s"`
	FT   string   `json:"f"`
	At   int64    `json:"t"`
	Rank int      `json:"p"`
	Tot  int      `json:"n"`
	Res  []rowRes `json:"r"`
}

type rowRes struct {
	E string `json:"e"`
	V int8   `json:"v"`
	S int    `json:"s"`
	L string `json:"l,omitempty"`
}

// validUTF8 normalizes a string to valid UTF-8 so the row encoding
// round-trips: encoding/json silently replaces invalid bytes with
// U+FFFD on marshal, so storing the replacement form up front keeps
// what Get returns identical to what the partition holds. (Engine
// label strings are arbitrary engine output, so this does happen.)
func validUTF8(s string) string { return strings.ToValidUTF8(s, "�") }

// rowFromScan builds the compact on-disk encoding of one scan. All
// strings are normalized to valid UTF-8 and the timestamp goes
// through the same zero-preserving unix encoding as metadata rows, so
// rowToReport(rowFromScan(r)) reproduces r exactly (fuzzed by
// FuzzStoreRowRoundTrip).
func rowFromScan(scan *report.ScanReport) scanRow {
	row := scanRow{
		SHA:  validUTF8(scan.SHA256),
		FT:   validUTF8(scan.FileType),
		At:   unix(scan.AnalysisDate),
		Rank: scan.AVRank,
		Tot:  scan.EnginesTotal,
		Res:  make([]rowRes, len(scan.Results)),
	}
	for i, er := range scan.Results {
		row.Res[i] = rowRes{E: validUTF8(er.Engine), V: int8(er.Verdict), S: er.SignatureVersion, L: validUTF8(er.Label)}
	}
	return row
}

type partWriter struct {
	mu      sync.Mutex
	closed  bool
	f       *os.File
	counter *countingWriter
	gz      *gzip.Writer
	buf     *bufio.Writer
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Open opens (or creates) a store in dir, loading any existing
// partitions into the index.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		writers: make(map[string]*partWriter),
		stats:   make(map[string]*PartitionStats),
	}
	for i := range s.shards {
		s.shards[i].samples = make(map[string]report.SampleMeta)
		s.shards[i].months = make(map[string]map[string]bool)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load rebuilds the in-memory index from existing partition files.
// It runs before the store is shared, so it takes no locks.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "scans-") || !strings.HasSuffix(name, ".jsonl.gz") {
			continue
		}
		month := strings.TrimSuffix(strings.TrimPrefix(name, "scans-"), ".jsonl.gz")
		st := &PartitionStats{}
		path := filepath.Join(s.dir, name)
		if err := s.scanPartition(path, func(row scanRow, rawLen int) {
			st.Reports++
			st.RawBytes += int64(rawLen)
			sh := s.shardFor(row.SHA)
			set, ok := sh.months[row.SHA]
			if !ok {
				set = make(map[string]bool)
				sh.months[row.SHA] = set
			}
			set[month] = true
		}); err != nil {
			return err
		}
		if fi, err := os.Stat(path); err == nil {
			st.StoredBytes = fi.Size()
		}
		s.stats[month] = st
	}
	// Load the metadata snapshot if present.
	metaPath := filepath.Join(s.dir, "samples.jsonl.gz")
	f, err := os.Open(metaPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("store: samples snapshot: %w", err)
	}
	defer gz.Close()
	dec := json.NewDecoder(gz)
	for {
		var m struct {
			Meta metaRow `json:"m"`
		}
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("store: samples snapshot: %w", err)
		}
		s.shardFor(m.Meta.SHA).samples[m.Meta.SHA] = m.Meta.toMeta()
	}
	return s.loadStatsSidecar()
}

// loadStatsSidecar restores the exact raw-byte accounting persisted
// by Close. Without it, load() has already filled RawBytes with the
// compact-line lengths as a conservative approximation.
func (s *Store) loadStatsSidecar() error {
	b, err := os.ReadFile(filepath.Join(s.dir, "stats.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	var saved map[string]PartitionStats
	if err := json.Unmarshal(b, &saved); err != nil {
		return fmt.Errorf("store: stats sidecar: %w", err)
	}
	for month, st := range saved {
		cp := st
		s.stats[month] = &cp
	}
	return nil
}

// metaRow is the compact metadata encoding.
type metaRow struct {
	SHA   string `json:"s"`
	FT    string `json:"f"`
	Size  int64  `json:"z"`
	First int64  `json:"a"`
	LastA int64  `json:"b"`
	LastS int64  `json:"c"`
	TS    int    `json:"n"`
}

func (m metaRow) toMeta() report.SampleMeta {
	return report.SampleMeta{
		SHA256:              m.SHA,
		FileType:            m.FT,
		Size:                m.Size,
		FirstSubmissionDate: fromUnix(m.First),
		LastAnalysisDate:    fromUnix(m.LastA),
		LastSubmissionDate:  fromUnix(m.LastS),
		TimesSubmitted:      m.TS,
	}
}

func metaFrom(meta report.SampleMeta) metaRow {
	return metaRow{
		SHA:   validUTF8(meta.SHA256),
		FT:    validUTF8(meta.FileType),
		Size:  meta.Size,
		First: unix(meta.FirstSubmissionDate),
		LastA: unix(meta.LastAnalysisDate),
		LastS: unix(meta.LastSubmissionDate),
		TS:    meta.TimesSubmitted,
	}
}

func unix(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func fromUnix(s int64) time.Time {
	if s == 0 {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}

// MonthKey formats the partition key for an instant.
func MonthKey(t time.Time) string { return t.UTC().Format("2006-01") }

// encoded is one envelope marshaled outside the locks.
type encoded struct {
	month string
	sha   string
	meta  report.SampleMeta
	line  []byte
	raw   int
}

func encodeEnvelope(env report.Envelope) (encoded, error) {
	if env.Meta.SHA256 == "" {
		return encoded{}, errors.New("store: envelope without sha256")
	}
	line, err := json.Marshal(rowFromScan(&env.Scan))
	if err != nil {
		return encoded{}, fmt.Errorf("store: %w", err)
	}
	// Raw baseline: the full VT wire envelope.
	rawWire, err := env.MarshalJSON()
	if err != nil {
		return encoded{}, fmt.Errorf("store: %w", err)
	}
	return encoded{
		month: MonthKey(env.Scan.AnalysisDate),
		sha:   env.Meta.SHA256,
		meta:  env.Meta,
		line:  line,
		raw:   len(rawWire),
	}, nil
}

// Put stores one envelope: the scan row goes to its month partition
// and the sample metadata snapshot is updated.
func (s *Store) Put(env report.Envelope) error {
	enc, err := encodeEnvelope(env)
	if err != nil {
		return err
	}
	if err := s.writeLines(enc.month, [][]byte{enc.line}); err != nil {
		return err
	}
	s.indexEncoded(enc)
	s.accountRows(enc.month, 1, int64(enc.raw))
	return nil
}

// PutBatch stores many envelopes, grouping partition writes so each
// month's writer lock is taken once per batch. Rows land in slice
// order, so a single-committer caller produces byte-identical
// partitions regardless of how the batch was assembled.
func (s *Store) PutBatch(envs []report.Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	encs := make([]encoded, len(envs))
	for i, env := range envs {
		enc, err := encodeEnvelope(env)
		if err != nil {
			return err
		}
		encs[i] = enc
	}
	// Group lines by month preserving order.
	byMonth := make(map[string][][]byte)
	var months []string
	for _, enc := range encs {
		if _, ok := byMonth[enc.month]; !ok {
			months = append(months, enc.month)
		}
		byMonth[enc.month] = append(byMonth[enc.month], enc.line)
	}
	sort.Strings(months)
	for _, month := range months {
		if err := s.writeLines(month, byMonth[month]); err != nil {
			return err
		}
	}
	rawByMonth := make(map[string]struct {
		rows int
		raw  int64
	})
	for _, enc := range encs {
		s.indexEncoded(enc)
		acc := rawByMonth[enc.month]
		acc.rows++
		acc.raw += int64(enc.raw)
		rawByMonth[enc.month] = acc
	}
	for _, month := range months {
		acc := rawByMonth[month]
		s.accountRows(month, acc.rows, acc.raw)
	}
	return nil
}

// indexEncoded updates the sample index for one stored row.
func (s *Store) indexEncoded(enc encoded) {
	sh := s.shardFor(enc.sha)
	sh.mu.Lock()
	sh.samples[enc.sha] = enc.meta
	set, ok := sh.months[enc.sha]
	if !ok {
		set = make(map[string]bool)
		sh.months[enc.sha] = set
	}
	set[enc.month] = true
	sh.mu.Unlock()
}

// accountRows folds rows into the month's Table 2 accounting.
func (s *Store) accountRows(month string, rows int, raw int64) {
	s.smu.Lock()
	st, ok := s.stats[month]
	if !ok {
		st = &PartitionStats{}
		s.stats[month] = st
	}
	st.Reports += rows
	st.RawBytes += raw
	s.smu.Unlock()
}

// writeLines appends rows to the month's partition under that
// partition's lock only. If a concurrent Flush closed the writer
// between lookup and write, it retries with a fresh writer.
func (s *Store) writeLines(month string, lines [][]byte) error {
	for {
		w, err := s.writer(month)
		if err != nil {
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			continue
		}
		for _, line := range lines {
			if _, err := w.buf.Write(line); err != nil {
				w.mu.Unlock()
				return fmt.Errorf("store: %w", err)
			}
			if err := w.buf.WriteByte('\n'); err != nil {
				w.mu.Unlock()
				return fmt.Errorf("store: %w", err)
			}
		}
		w.mu.Unlock()
		return nil
	}
}

func (s *Store) writer(month string) (*partWriter, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if w, ok := s.writers[month]; ok {
		return w, nil
	}
	path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Appending a new gzip member to an existing file is valid:
	// readers process multi-member streams transparently.
	counter := &countingWriter{w: f}
	gz := gzip.NewWriter(counter)
	w := &partWriter{f: f, counter: counter, gz: gz, buf: bufio.NewWriterSize(gz, 64<<10)}
	s.writers[month] = w
	return w, nil
}

// Flush finalizes all open partition writers so data is durable and
// readable; subsequent Puts open fresh gzip members.
func (s *Store) Flush() error {
	// Detach every open writer first so new Puts start fresh members,
	// then close each under its own lock.
	s.wmu.Lock()
	detached := make(map[string]*partWriter, len(s.writers))
	for month, w := range s.writers {
		detached[month] = w
		delete(s.writers, month)
	}
	s.wmu.Unlock()
	for month, w := range detached {
		w.mu.Lock()
		w.closed = true
		if err := w.buf.Flush(); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("store: %w", err)
		}
		if err := w.gz.Close(); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("store: %w", err)
		}
		stored := w.counter.n
		if err := w.f.Close(); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("store: %w", err)
		}
		w.mu.Unlock()
		s.smu.Lock()
		if st := s.stats[month]; st != nil {
			st.StoredBytes += stored
		}
		s.smu.Unlock()
	}
	return nil
}

// Close flushes partitions and writes the metadata snapshot.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.dir, "samples.jsonl.gz"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	gz := gzip.NewWriter(f)
	enc := json.NewEncoder(gz)
	metas := s.snapshotSamples()
	hashes := make([]string, 0, len(metas))
	for h := range metas {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		row := struct {
			Meta metaRow `json:"m"`
		}{Meta: metaFrom(metas[h])}
		if err := enc.Encode(row); err != nil {
			gz.Close()
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Persist the exact accounting for reloads.
	s.smu.Lock()
	snapshot := make(map[string]PartitionStats, len(s.stats))
	for month, st := range s.stats {
		snapshot[month] = *st
	}
	s.smu.Unlock()
	b, err := json.Marshal(snapshot)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, "stats.json"), b, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// snapshotSamples copies the whole sample index out of the shards.
func (s *Store) snapshotSamples() map[string]report.SampleMeta {
	out := make(map[string]report.SampleMeta)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h, m := range sh.samples {
			out[h] = m
		}
		sh.mu.Unlock()
	}
	return out
}

// Get returns the sample's full history, reading every partition that
// contains its rows. Call Flush first if writes may be buffered.
func (s *Store) Get(sha string) (*report.History, error) {
	sh := s.shardFor(sha)
	sh.mu.Lock()
	meta, ok := sh.samples[sha]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSample, sha)
	}
	monthSet := sh.months[sha]
	months := make([]string, 0, len(monthSet))
	for m := range monthSet {
		months = append(months, m)
	}
	sh.mu.Unlock()

	h := &report.History{Meta: meta}
	for _, month := range months {
		path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
		err := s.scanPartition(path, func(row scanRow, _ int) {
			if row.SHA != sha {
				return
			}
			h.Reports = append(h.Reports, rowToReport(row))
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(h.Reports, func(i, j int) bool {
		return h.Reports[i].AnalysisDate.Before(h.Reports[j].AnalysisDate)
	})
	return h, nil
}

func rowToReport(row scanRow) *report.ScanReport {
	r := &report.ScanReport{
		SHA256:       row.SHA,
		FileType:     row.FT,
		AnalysisDate: fromUnix(row.At),
		AVRank:       row.Rank,
		EnginesTotal: row.Tot,
		Results:      make([]report.EngineResult, len(row.Res)),
	}
	for i, rr := range row.Res {
		r.Results[i] = report.EngineResult{
			Engine:           rr.E,
			Verdict:          report.Verdict(rr.V),
			SignatureVersion: rr.S,
			Label:            rr.L,
		}
	}
	return r
}

// scanPartition streams rows of a partition file; rawLen passes the
// stored (uncompressed) line length for accounting during load.
func (s *Store) scanPartition(path string, fn func(row scanRow, rawLen int)) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer gz.Close()
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var row scanRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
		fn(row, len(sc.Bytes()))
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	return nil
}

// IterReports streams every report in a month partition in storage
// order.
func (s *Store) IterReports(month string, fn func(*report.ScanReport) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
	var inner error
	err := s.scanPartition(path, func(row scanRow, _ int) {
		if inner != nil {
			return
		}
		inner = fn(rowToReport(row))
	})
	if err != nil {
		return err
	}
	return inner
}

// Months returns the partition keys present, sorted.
func (s *Store) Months() []string {
	s.smu.Lock()
	defer s.smu.Unlock()
	out := make([]string, 0, len(s.stats))
	for m := range s.stats {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Stats returns the accounting for one month. StoredBytes is only
// final after Flush.
func (s *Store) Stats(month string) PartitionStats {
	s.smu.Lock()
	defer s.smu.Unlock()
	if st, ok := s.stats[month]; ok {
		return *st
	}
	return PartitionStats{}
}

// TotalStats sums all partitions.
func (s *Store) TotalStats() PartitionStats {
	s.smu.Lock()
	defer s.smu.Unlock()
	var total PartitionStats
	for _, st := range s.stats {
		total.Reports += st.Reports
		total.RawBytes += st.RawBytes
		total.StoredBytes += st.StoredBytes
	}
	return total
}

// NumSamples returns the number of distinct samples stored.
func (s *Store) NumSamples() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.samples)
		sh.mu.Unlock()
	}
	return n
}

// SampleHashes returns every stored sample hash, sorted.
func (s *Store) SampleHashes() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h := range sh.samples {
			out = append(out, h)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Meta returns the latest metadata snapshot for a sample.
func (s *Store) Meta(sha string) (report.SampleMeta, bool) {
	sh := s.shardFor(sha)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.samples[sha]
	return m, ok
}

// TypeStats is the per-file-type breakdown of stored data — the Table
// 3 view over a collected store rather than a generated population.
type TypeStats struct {
	Samples int
	Reports int
}

// StatsByType tallies stored samples and scan rows per file type. It
// flushes first so buffered rows are counted.
func (s *Store) StatsByType() (map[string]TypeStats, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	out := map[string]TypeStats{}
	for _, meta := range s.snapshotSamples() {
		ts := out[meta.FileType]
		ts.Samples++
		out[meta.FileType] = ts
	}
	for _, month := range s.Months() {
		path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
		if err := s.scanPartition(path, func(row scanRow, _ int) {
			ts := out[row.FT]
			ts.Reports++
			out[row.FT] = ts
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Verify re-reads every partition, checking that each row parses,
// validates, and belongs to an indexed sample. It returns the number
// of rows checked.
func (s *Store) Verify() (int, error) {
	if err := s.Flush(); err != nil {
		return 0, err
	}
	months := s.Months()
	known := make(map[string]bool)
	for h := range s.snapshotSamples() {
		known[h] = true
	}
	checked := 0
	for _, month := range months {
		path := filepath.Join(s.dir, "scans-"+month+".jsonl.gz")
		var inner error
		err := s.scanPartition(path, func(row scanRow, _ int) {
			if inner != nil {
				return
			}
			checked++
			if !known[row.SHA] {
				inner = fmt.Errorf("store: %s row %s not in sample index", month, row.SHA)
				return
			}
			if MonthKey(fromUnix(row.At)) != month {
				inner = fmt.Errorf("store: row %s at %d filed under %s", row.SHA, row.At, month)
				return
			}
			if err := rowToReport(row).Validate(); err != nil {
				inner = fmt.Errorf("store: row %s invalid: %w", row.SHA, err)
			}
		})
		if err != nil {
			return checked, err
		}
		if inner != nil {
			return checked, inner
		}
	}
	return checked, nil
}
