package store

import (
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/obs"
)

// TestStoreMetricsExposition pins the store's block-pipeline series in
// the /metricsz Prometheus exposition: after an ingest-and-flush, the
// encode/compress histograms carry observations and the
// format-labelled encode counter partitions the cut count.
func TestStoreMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), WithMetrics(reg), WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := s.Put(envelope("mtr", t0.Add(time.Duration(i)*time.Minute), i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		"store_block_encode_seconds_count",
		"store_block_compress_seconds_count",
		`store_blocks_encoded_total{format="v1"}`,
		`store_blocks_encoded_total{format="v2"}`,
		"store_blocks_cut_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	cut := reg.Counter("store_blocks_cut_total").Value()
	if cut == 0 {
		t.Fatal("no blocks cut; exposition test is vacuous")
	}
	encV1 := reg.Counter("store_blocks_encoded_total", "format", "v1").Value()
	encV2 := reg.Counter("store_blocks_encoded_total", "format", "v2").Value()
	if encV1+encV2 != cut {
		t.Errorf("encoded v1 %d + v2 %d != cut %d", encV1, encV2, cut)
	}
	if h := reg.Histogram("store_block_compress_seconds", obs.DefBuckets); h.Snapshot().Count != cut {
		t.Errorf("compress histogram count %d, cut %d", h.Snapshot().Count, cut)
	}
}
