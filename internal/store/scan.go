// Pushdown scan engine: zone-pruned, column-projected aggregation.
//
// Scan is the store's whole-dataset query path — the engine behind
// StatsByType, Verify's row pass, time-bounded vtquery reads, and the
// experiments' store-backed dynamics sweeps. Where IterAll gunzips
// every block and materializes every row as a report.ScanReport, Scan
// works strictly top-down, skipping work at three levels:
//
//  1. Block pruning. Before touching a partition, each sidecar block
//     entry is tested against the query: empty blocks, blocks whose
//     posting list lacks every requested sample, blocks whose zone
//     time bounds (or, for pre-zone entries, the month's natural
//     bounds) miss the time range, blocks whose file-type/engine/label
//     fingerprints cannot intersect the predicate sets, and blocks
//     with zero malicious rows under MaliciousOnly are all skipped
//     without a single byte of decompression. Fingerprint pruning is
//     one-sided: a false positive costs a scan, never a wrong answer.
//  2. Column projection. A scanned v2 block decodes only the column
//     segments the query's predicates and projection actually touch;
//     the rest are skipped whole (their lengths are in the payload),
//     and rows failing a predicate advance the remaining cursors
//     varint-wise without materializing anything.
//  3. Kernel aggregation. Matching rows are fed to a per-job Partial
//     as a reused RowView — no ScanReport, no per-row allocation —
//     and partials merge in deterministic job order (month ascending,
//     block sequence ascending), so results are independent of worker
//     count and scheduling.
//
// v1 blocks and unindexed months fall back to full row decode with
// the same row-level filter, so mixed-format stores stay correct —
// pinned by FuzzScanPushdownDifferential, which compares Scan against
// the naive IterAll filter over random v1/v2/mixed stores.
//
// Accounting identity (checked by the metrics invariant suite): every
// sidecar block a Scan considers is either pruned (for exactly one
// reason) or scanned — store_blocks_pruned_total summed over reasons
// plus store_scan_blocks_scanned_total equals store_scan_blocks_total.
package store

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vtdynamics/internal/bufpool"
	"vtdynamics/internal/report"
)

// ColSet selects the columns a Query projects into RowView. Predicate
// columns are decoded as needed regardless; projection only controls
// what the kernel sees.
type ColSet uint16

const (
	ColSHA ColSet = 1 << iota
	ColTime
	ColFT
	ColRank
	ColTot
	ColResults

	ColAll = ColSHA | ColTime | ColFT | ColRank | ColTot | ColResults
)

// Query describes one pushdown scan: row predicates (ANDed across
// fields, ORed within a set) plus a column projection.
type Query struct {
	// Since/Until bound the row's analysis timestamp, inclusive, in
	// unix seconds. Zero means unbounded on that side (rows with a
	// zero timestamp therefore match only time-unbounded-below
	// queries, which is exactly the "no analysis date" semantics the
	// row codec preserves).
	Since, Until int64
	// FileTypes/Engines/Labels keep rows whose file type is in the
	// set / that carry at least one result from an engine in the set /
	// at least one non-empty label in the set. Empty slices match all.
	FileTypes []string
	Engines   []string
	Labels    []string
	// SHAs restricts the scan to the given samples (empty = all).
	SHAs []string
	// MaliciousOnly keeps rows with at least one Malicious result.
	MaliciousOnly bool
	// Cols is the projection; unprojected RowView fields stay zero.
	Cols ColSet
	// Workers is the block-scan parallelism (<= 0 uses GOMAXPROCS).
	// The worker count never changes results, only wall time.
	Workers int
}

// ResView is one engine result as seen by a kernel. Eng and Lab are
// interned strings; the backing ResView slice is reused between rows.
type ResView struct {
	Eng string
	Lab string
	Sig int
	Ver int8
}

// RowView is the kernel-facing row: only the projected columns are
// populated, everything else keeps its zero value. The view and its
// Res slice are reused between rows — kernels must copy what they
// keep (the strings themselves are safe to retain; interned or
// dict-owned, they are immutable).
type RowView struct {
	Month string
	SHA   string
	At    int64
	FT    string
	Rank  int
	Tot   int
	Res   []ResView
}

// Partial accumulates one job's (one block's, or one unindexed
// month's) rows. Row is called from a single goroutine per partial;
// distinct partials run concurrently.
type Partial interface {
	Row(rv *RowView) error
}

// Agg is an aggregation kernel: it mints fresh partial states for the
// workers and folds them back in deterministic job order.
type Agg interface {
	NewPartial() Partial
	Merge(p Partial) error
}

// Pruning reasons, in the order they are tested (each pruned block is
// counted under exactly one).
const (
	PruneEmpty    = "empty"
	PruneSHA      = "sha"
	PruneTime     = "time"
	PruneFileType = "filetype"
	PruneEngine   = "engine"
	PruneLabel    = "label"
	PruneVerdict  = "verdict"
)

// pruneReasons lists every reason once, for stats/metric enumeration.
var pruneReasons = []string{
	PruneEmpty, PruneSHA, PruneTime, PruneFileType, PruneEngine, PruneLabel, PruneVerdict,
}

// ScanStats reports what one Scan call did — the observability half
// of the pushdown contract.
type ScanStats struct {
	// Blocks counts sidecar block entries considered; every one is
	// either in Pruned (under one reason) or in Scanned.
	Blocks  int
	Scanned int
	Pruned  map[string]int
	// Rows is the number of matching rows fed to the kernel.
	Rows int64
	// CompressedBytes is the gzip bytes actually read (and therefore
	// decompressed) — pruned blocks contribute nothing.
	CompressedBytes int64
	// ColumnsSkipped counts column segments of scanned v2 blocks the
	// query never touched.
	ColumnsSkipped int64
	// FallbackMonths counts unindexed months streamed end to end.
	FallbackMonths int
}

// PrunedTotal sums Pruned across reasons.
func (st ScanStats) PrunedTotal() int {
	n := 0
	for _, v := range st.Pruned {
		n += v
	}
	return n
}

// compiledQuery is a Query with its predicate sets resolved into
// lookup maps and zone fingerprint masks.
type compiledQuery struct {
	q                             Query
	shaSet, ftSet, engSet, labSet map[string]bool
	ftMask, engMask, labMask      uint64

	// Per-segment needs: a segment is touched iff a predicate or the
	// projection requires it.
	needSHA, needTime, needFT, needRank, needTot bool
	needNRes, needRes, needVerdict               bool
}

func toSet(vals []string) map[string]bool {
	if len(vals) == 0 {
		return nil
	}
	m := make(map[string]bool, len(vals))
	for _, v := range vals {
		m[v] = true
	}
	return m
}

func compileQuery(q Query) *compiledQuery {
	cq := &compiledQuery{
		q:      q,
		shaSet: toSet(q.SHAs),
		ftSet:  toSet(q.FileTypes),
		engSet: toSet(q.Engines),
		labSet: toSet(q.Labels),
	}
	cq.ftMask = zoneBits(q.FileTypes)
	cq.engMask = zoneBits(q.Engines)
	cq.labMask = zoneBits(q.Labels)

	proj := q.Cols
	cq.needSHA = proj&ColSHA != 0 || cq.shaSet != nil
	cq.needTime = proj&ColTime != 0 || q.Since != 0 || q.Until != 0
	cq.needFT = proj&ColFT != 0 || cq.ftSet != nil
	cq.needRank = proj&ColRank != 0
	cq.needTot = proj&ColTot != 0
	cq.needRes = proj&ColResults != 0 || cq.engSet != nil || cq.labSet != nil
	cq.needVerdict = proj&ColResults != 0 || q.MaliciousOnly
	cq.needNRes = cq.needRes || cq.needVerdict
	return cq
}

// touchedSegments counts how many of the 8 column segments a v2 block
// scan reads under this query.
func (cq *compiledQuery) touchedSegments() int {
	n := 0
	for _, need := range []bool{
		cq.needSHA, cq.needTime, cq.needFT, cq.needRank,
		cq.needTot, cq.needNRes, cq.needVerdict, cq.needRes,
	} {
		if need {
			n++
		}
	}
	return n
}

// matchScanRow is the row-level filter over a fully decoded row — the
// v1 / fallback path, and the reference semantics the v2 pushdown
// loop must agree with (differential fuzzer).
func (cq *compiledQuery) matchScanRow(row *scanRow) bool {
	if cq.shaSet != nil && !cq.shaSet[row.SHA] {
		return false
	}
	if cq.q.Since != 0 && row.At < cq.q.Since {
		return false
	}
	if cq.q.Until != 0 && row.At > cq.q.Until {
		return false
	}
	if cq.ftSet != nil && !cq.ftSet[row.FT] {
		return false
	}
	if cq.engSet != nil || cq.labSet != nil || cq.q.MaliciousOnly {
		engHit := cq.engSet == nil
		labHit := cq.labSet == nil
		malHit := !cq.q.MaliciousOnly
		for i := range row.Res {
			rr := &row.Res[i]
			if !engHit && cq.engSet[rr.E] {
				engHit = true
			}
			if !labHit && rr.L != "" && cq.labSet[rr.L] {
				labHit = true
			}
			if !malHit && rr.V == int8(report.Malicious) {
				malHit = true
			}
			if engHit && labHit && malHit {
				break
			}
		}
		if !engHit || !labHit || !malHit {
			return false
		}
	}
	return true
}

// monthBounds returns the natural unix-second bounds [start, end] of
// a month partition's rows. ok is false for the zero-timestamp month
// ("0001-01"), whose rows carry At == 0 — outside the month's literal
// range — so it never participates in month-bound time pruning.
func monthBounds(month string) (start, end int64, ok bool) {
	if month == "0001-01" {
		return 0, 0, false
	}
	t, err := time.Parse("2006-01", month)
	if err != nil {
		return 0, 0, false
	}
	return t.Unix(), t.AddDate(0, 1, 0).Unix() - 1, true
}

// scanJob is one unit of a Scan: a single indexed block, or a whole
// unindexed month.
type scanJob struct {
	month string
	path  string
	bm    *blockMeta
}

// prunesBlock decides whether one sidecar entry can be skipped,
// returning the reason ("" = must scan). monthLo/monthHi are the
// month's natural bounds (boundOK false when unknown); shaAllowed is
// the posting-derived block set (nil = no SHA predicate).
func (cq *compiledQuery) prunesBlock(bm *blockMeta, seq int, monthLo, monthHi int64, boundOK bool, shaAllowed map[int]bool) string {
	if bm.Rows == 0 {
		return PruneEmpty
	}
	if shaAllowed != nil && !shaAllowed[seq] {
		return PruneSHA
	}
	lo, hi, haveTime := monthLo, monthHi, boundOK
	if bm.Z != 0 {
		lo, hi, haveTime = bm.TMin, bm.TMax, true
	}
	if haveTime {
		if cq.q.Since != 0 && hi < cq.q.Since {
			return PruneTime
		}
		if cq.q.Until != 0 && lo > cq.q.Until {
			return PruneTime
		}
	}
	if bm.Z != 0 {
		if cq.ftMask != 0 && bm.FTB&cq.ftMask == 0 {
			return PruneFileType
		}
		if cq.engMask != 0 && bm.EngB&cq.engMask == 0 {
			return PruneEngine
		}
		if cq.labMask != 0 && bm.LabB&cq.labMask == 0 {
			return PruneLabel
		}
		if cq.q.MaliciousOnly && bm.Mal == 0 {
			return PruneVerdict
		}
	}
	return ""
}

// postingSeqsFor returns the block-sequence set holding any of shas.
func (ix *partIndex) postingSeqsFor(shas []string) map[int]bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[int]bool)
	for _, sha := range shas {
		for _, id := range ix.postings[sha] {
			out[id] = true
		}
	}
	return out
}

// Scan runs one pushdown aggregation over the store: plan (prune
// blocks via sidecar zone maps), execute (decode surviving blocks
// with column projection on a worker pool), merge (fold partials in
// deterministic job order). It flushes first, like IterAll.
func (s *Store) Scan(q Query, agg Agg) (ScanStats, error) {
	stats := ScanStats{Pruned: make(map[string]int, len(pruneReasons))}
	if err := s.Flush(); err != nil {
		return stats, err
	}
	cq := compileQuery(q)
	skippedPerBlock := int64(numColSegs - cq.touchedSegments())

	// Plan: walk every sidecar entry, prune or schedule.
	var jobs []scanJob
	for _, month := range s.Months() {
		path := s.partPath(month)
		lo, hi, boundOK := monthBounds(month)
		ix := s.index(month)
		if ix == nil {
			// Unindexed month: nothing to prune block-wise; the month's
			// natural bounds still let a time query skip it whole.
			if boundOK {
				if (q.Since != 0 && hi < q.Since) || (q.Until != 0 && lo > q.Until) {
					continue
				}
			}
			stats.FallbackMonths++
			if fi, err := os.Stat(path); err == nil {
				stats.CompressedBytes += fi.Size()
			}
			jobs = append(jobs, scanJob{month: month, path: path})
			continue
		}
		var shaAllowed map[int]bool
		if cq.shaSet != nil {
			shaAllowed = ix.postingSeqsFor(q.SHAs)
		}
		for seq, bm := range ix.snapshotBlocks() {
			stats.Blocks++
			bm := bm
			if reason := cq.prunesBlock(&bm, seq, lo, hi, boundOK, shaAllowed); reason != "" {
				stats.Pruned[reason]++
				continue
			}
			stats.Scanned++
			stats.CompressedBytes += bm.Len
			if blockVer(bm) != FormatV1 {
				stats.ColumnsSkipped += skippedPerBlock
			}
			jobs = append(jobs, scanJob{month: month, path: path, bm: &bm})
		}
	}

	// Execute: one partial per job, workers pull jobs, results keep
	// job order for the deterministic merge.
	workers := q.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	partials := make([]Partial, len(jobs))
	var rows atomic.Int64
	runJob := func(i int) error {
		pt := agg.NewPartial()
		n, err := s.runScanJob(jobs[i], cq, pt)
		if err != nil {
			return err
		}
		partials[i] = pt
		rows.Add(n)
		return nil
	}
	var err error
	if workers <= 1 {
		for i := range jobs {
			if err = runJob(i); err != nil {
				break
			}
		}
	} else {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		jobc := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobc {
					mu.Lock()
					failed := firstErr != nil
					mu.Unlock()
					if failed {
						continue
					}
					if err := runJob(i); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for i := range jobs {
			jobc <- i
		}
		close(jobc)
		wg.Wait()
		err = firstErr
	}
	stats.Rows = rows.Load()
	s.recordScan(stats)
	if err != nil {
		return stats, err
	}

	// Merge in job order: month ascending, block sequence ascending.
	for _, pt := range partials {
		if pt == nil {
			continue
		}
		if err := agg.Merge(pt); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// recordScan folds one call's accounting into the store metrics.
func (s *Store) recordScan(st ScanStats) {
	m := s.m
	m.scanCalls.Inc()
	m.scanBlocks.Add(int64(st.Blocks))
	m.scanScanned.Add(int64(st.Scanned))
	m.scanRows.Add(st.Rows)
	m.scanFallback.Add(int64(st.FallbackMonths))
	m.colsSkipped.Add(st.ColumnsSkipped)
	for reason, n := range st.Pruned {
		if c := m.pruned[reason]; c != nil {
			c.Add(int64(n))
		}
	}
}

// runScanJob feeds one job's matching rows into pt, returning how
// many matched.
func (s *Store) runScanJob(j scanJob, cq *compiledQuery, pt Partial) (int64, error) {
	if j.bm != nil && blockVer(*j.bm) != FormatV1 {
		if ver := blockVer(*j.bm); ver > s.maxFormat {
			return 0, &FormatError{Path: j.path, Version: ver, Max: s.maxFormat}
		}
		f, err := os.Open(j.path)
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		defer f.Close()
		payload, err := readBlockPayloadAt(f, j.path, *j.bm)
		if err != nil {
			return 0, err
		}
		defer bufpool.PutBlockBuf(payload)
		n, err := scanColPushdown(payload, cq, j.month, pt)
		if err != nil {
			return n, fmt.Errorf("store: %s: block @%d: %w", j.path, j.bm.Offset, err)
		}
		return n, nil
	}
	// v1 block or unindexed month: full row decode + row-level filter.
	rf := rowFeeder{cq: cq, pt: pt}
	rf.rv.Month = j.month
	var err error
	if j.bm != nil {
		err = scanBlock(j.path, *j.bm, s.maxFormat, rf.row)
	} else {
		err = s.scanPartition(j.path, rf.row, nil)
	}
	if err != nil {
		return rf.rows, err
	}
	return rf.rows, rf.err
}

// rowFeeder adapts the decoded-row callbacks to the kernel: filter,
// project into a reused RowView, feed.
type rowFeeder struct {
	cq   *compiledQuery
	pt   Partial
	rv   RowView
	res  []ResView
	rows int64
	err  error
}

func (rf *rowFeeder) row(row scanRow) {
	if rf.err != nil {
		return
	}
	if !rf.cq.matchScanRow(&row) {
		return
	}
	cq := rf.cq
	proj := cq.q.Cols
	if proj&ColSHA != 0 {
		rf.rv.SHA = row.SHA
	}
	if proj&ColTime != 0 {
		rf.rv.At = row.At
	}
	if proj&ColFT != 0 {
		rf.rv.FT = row.FT
	}
	if proj&ColRank != 0 {
		rf.rv.Rank = row.Rank
	}
	if proj&ColTot != 0 {
		rf.rv.Tot = row.Tot
	}
	if proj&ColResults != 0 {
		rf.res = rf.res[:0]
		for i := range row.Res {
			rr := &row.Res[i]
			rf.res = append(rf.res, ResView{Eng: rr.E, Lab: rr.L, Sig: rr.S, Ver: rr.V})
		}
		rf.rv.Res = rf.res
	}
	rf.rows++
	rf.err = rf.pt.Row(&rf.rv)
}

// scanScratch holds the per-block decode state a pushdown scan reuses
// across blocks (pooled per worker invocation): dictionary match
// bitmaps, projected dictionary values, and the ResView buffer.
type scanScratch struct {
	shaOK, ftOK, engOK, labOK         []bool
	shaVals, ftVals, engVals, labVals []string
	res                               []ResView
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func boolsFor(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

func stringsFor(buf []string, n int) []string {
	if cap(buf) < n {
		return make([]string, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// scanColPushdown is the projected v2 decode: dictionaries are walked
// raw to resolve predicates (set membership tested against the raw
// bytes — no allocation), values materialize only for projected
// columns, and the row loop touches only the needed segments. Returns
// the number of matching rows fed to pt.
func scanColPushdown(payload []byte, cq *compiledQuery, month string, pt Partial) (int64, error) {
	if sniffVersion(payload) != FormatV2 {
		return 0, errColCorrupt
	}
	c := colCursor{buf: payload, off: len(colMagic) + 1}
	rowsU, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	rows := int(rowsU)
	if _, err := c.uvarint(); err != nil { // rawBytes: unused here
		return 0, err
	}

	ws := scanScratchPool.Get().(*scanScratch)
	defer scanScratchPool.Put(ws)
	proj := cq.q.Cols

	// walk resolves one dictionary: when filtered, ok[i] records
	// whether entry i is in the predicate set (map lookup on the raw
	// bytes — the compiler elides the string conversion); when
	// projected, vals[i] materializes the entry. anyHit reports
	// whether any entry passed the filter — a miss means the whole
	// block cannot match (the fingerprint was a false positive) and
	// the caller can stop before decoding any segment.
	walk := func(set map[string]bool, ok *[]bool, okBuf []bool, vals *[]string, valBuf []string, intern bool) (size uint64, anyHit bool, _ error) {
		filtered, projected := set != nil, vals != nil
		if !filtered && !projected {
			n, err := dictSize(&c)
			return n, true, err
		}
		n, err := c.uvarint()
		if err != nil {
			return 0, false, err
		}
		if n > uint64(len(c.buf)-c.off) {
			return 0, false, errColCorrupt
		}
		if filtered {
			*ok = boolsFor(okBuf, int(n))
		}
		if projected {
			*vals = stringsFor(valBuf, int(n))
		}
		anyHit = !filtered
		for i := uint64(0); i < n; i++ {
			l, err := c.uvarint()
			if err != nil {
				return 0, false, err
			}
			b, err := c.bytes(int(l))
			if err != nil {
				return 0, false, err
			}
			if filtered && set[string(b)] {
				(*ok)[i] = true
				anyHit = true
			}
			if projected {
				if intern {
					(*vals)[i] = report.InternBytes(b)
				} else {
					(*vals)[i] = string(b)
				}
			}
		}
		return n, anyHit, nil
	}

	var (
		shaN, ftN, engN, labN uint64
		hit                   bool
	)
	var shaVals, ftVals, engVals, labVals *[]string
	if proj&ColSHA != 0 {
		shaVals = &ws.shaVals
	}
	if proj&ColFT != 0 {
		ftVals = &ws.ftVals
	}
	if proj&ColResults != 0 {
		engVals, labVals = &ws.engVals, &ws.labVals
	}
	if shaN, hit, err = walk(cq.shaSet, &ws.shaOK, ws.shaOK, shaVals, ws.shaVals, false); err != nil || !hit {
		return 0, err
	}
	if ftN, hit, err = walk(cq.ftSet, &ws.ftOK, ws.ftOK, ftVals, ws.ftVals, true); err != nil || !hit {
		return 0, err
	}
	if engN, hit, err = walk(cq.engSet, &ws.engOK, ws.engOK, engVals, ws.engVals, true); err != nil || !hit {
		return 0, err
	}
	if labN, hit, err = walk(cq.labSet, &ws.labOK, ws.labOK, labVals, ws.labVals, true); err != nil || !hit {
		return 0, err
	}

	var segs [numColSegs][]byte
	for i := range segs {
		l, err := c.uvarint()
		if err != nil {
			return 0, err
		}
		if segs[i], err = c.bytes(int(l)); err != nil {
			return 0, err
		}
	}
	if c.off != len(payload) {
		return 0, errColCorrupt
	}

	var (
		shaC  = colCursor{buf: segs[segSHA]}
		timeC = colCursor{buf: segs[segTime]}
		ftC   = colCursor{buf: segs[segFT]}
		rankC = colCursor{buf: segs[segRank]}
		totC  = colCursor{buf: segs[segTot]}
		nresC = colCursor{buf: segs[segNRes]}
		resC  = colCursor{buf: segs[segRes]}
		vr    *verdictReader
	)
	if cq.needVerdict {
		if vr, err = newVerdictReader(segs[segVerdict]); err != nil {
			return 0, err
		}
	}

	rv := RowView{Month: month}
	var (
		fed int64
		at  int64
	)
	for i := 0; i < rows; i++ {
		match := true
		var shaIdx, ftIdx uint64
		if cq.needSHA {
			if shaIdx, err = shaC.uvarint(); err != nil {
				return fed, err
			}
			if shaIdx >= shaN {
				return fed, errColCorrupt
			}
			if cq.shaSet != nil && !ws.shaOK[shaIdx] {
				match = false
			}
		}
		if cq.needTime {
			dt, err := timeC.varint()
			if err != nil {
				return fed, err
			}
			at += dt
			if cq.q.Since != 0 && at < cq.q.Since {
				match = false
			}
			if cq.q.Until != 0 && at > cq.q.Until {
				match = false
			}
		}
		if cq.needFT {
			if ftIdx, err = ftC.uvarint(); err != nil {
				return fed, err
			}
			if ftIdx >= ftN {
				return fed, errColCorrupt
			}
			if cq.ftSet != nil && !ws.ftOK[ftIdx] {
				match = false
			}
		}
		var rank, tot int64
		if cq.needRank {
			if rank, err = rankC.varint(); err != nil {
				return fed, err
			}
		}
		if cq.needTot {
			if tot, err = totC.varint(); err != nil {
				return fed, err
			}
		}
		if cq.needNRes {
			nres, err := nresC.uvarint()
			if err != nil {
				return fed, err
			}
			if nres > uint64(len(segs[segRes])) {
				return fed, errColCorrupt
			}
			if !match {
				if cq.needRes {
					if err := resC.skipVarints(3 * int(nres)); err != nil {
						return fed, err
					}
				}
				if cq.needVerdict {
					if vr.packed {
						vr.n += int(nres)
					} else if err := vr.c.skipVarints(int(nres)); err != nil {
						return fed, err
					}
				}
				continue
			}
			engHit := cq.engSet == nil
			labHit := cq.labSet == nil
			malHit := !cq.q.MaliciousOnly
			res := ws.res[:0]
			for j := uint64(0); j < nres; j++ {
				var engIdx, labIdx uint64
				var sig int64
				if cq.needRes {
					if engIdx, err = resC.uvarint(); err != nil {
						return fed, err
					}
					if engIdx >= engN {
						return fed, errColCorrupt
					}
					if sig, err = resC.varint(); err != nil {
						return fed, err
					}
					if labIdx, err = resC.uvarint(); err != nil {
						return fed, err
					}
					if labIdx > labN {
						return fed, errColCorrupt
					}
				}
				var v int8
				if cq.needVerdict {
					if v, err = vr.next(); err != nil {
						return fed, err
					}
				}
				if !engHit && ws.engOK[engIdx] {
					engHit = true
				}
				if !labHit && labIdx > 0 && ws.labOK[labIdx-1] {
					labHit = true
				}
				if !malHit && v == int8(report.Malicious) {
					malHit = true
				}
				if proj&ColResults != 0 {
					e := ResView{Eng: ws.engVals[engIdx], Sig: int(sig), Ver: v}
					if labIdx > 0 {
						e.Lab = ws.labVals[labIdx-1]
					}
					res = append(res, e)
				}
			}
			ws.res = res
			if !engHit || !labHit || !malHit {
				continue
			}
			if proj&ColResults != 0 {
				rv.Res = res
			}
		} else if !match {
			continue
		}
		if proj&ColSHA != 0 {
			rv.SHA = ws.shaVals[shaIdx]
		}
		if proj&ColTime != 0 {
			rv.At = at
		}
		if proj&ColFT != 0 {
			rv.FT = ws.ftVals[ftIdx]
		}
		if proj&ColRank != 0 {
			rv.Rank = int(rank)
		}
		if proj&ColTot != 0 {
			rv.Tot = int(tot)
		}
		fed++
		if err := pt.Row(&rv); err != nil {
			return fed, err
		}
	}
	return fed, nil
}

// dictSize skips one dictionary, returning its entry count (for the
// row loop's index bounds checks).
func dictSize(c *colCursor) (uint64, error) {
	n, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(c.buf)-c.off) {
		return 0, errColCorrupt
	}
	for i := uint64(0); i < n; i++ {
		l, err := c.uvarint()
		if err != nil {
			return 0, err
		}
		if _, err := c.bytes(int(l)); err != nil {
			return 0, err
		}
	}
	return n, nil
}
