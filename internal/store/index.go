// Block index: the random-access read path.
//
// Each monthly partition is written as a sequence of independently
// closed gzip members ("blocks") of roughly blockSizeDefault
// uncompressed bytes. Concatenated gzip members are a valid gzip
// stream, so partition files stay readable by the streaming reader,
// by pre-index builds of this package, and by zcat. Alongside each
// partition the store persists a sidecar, scans-YYYY-MM.idx, holding
//
//   - the partition file size the index covers (staleness check),
//   - per-block (offset, compressed length, row count, raw bytes),
//   - a SHA→block-set posting list.
//
// Get seeks straight to the few blocks that hold its sample instead
// of gunzipping the whole month. Stores written before the sidecar
// existed (or whose sidecar does not match the file) fall back
// transparently to the full streaming scan; Reindex rebuilds sidecars
// in place by re-walking the gzip members.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"vtdynamics/internal/bufpool"
)

// blockSizeDefault is the target uncompressed size of one block. Big
// enough that gzip member overhead and per-block seek cost stay
// negligible, small enough that Get decodes only a sliver of a month.
const blockSizeDefault = 256 << 10

// blockMeta locates one gzip member inside a partition file.
type blockMeta struct {
	// Offset is the member's first byte in the partition file.
	Offset int64 `json:"o"`
	// Len is the member's compressed length in bytes.
	Len int64 `json:"l"`
	// Rows is the number of scan rows in the member.
	Rows int `json:"n"`
	// Raw is the sum of uncompressed row lengths (sans newlines) —
	// the same conservative accounting load() derives when scanning.
	// v2 blocks carry the identical figure in their payload header, so
	// accounting never depends on the block's format.
	Raw int64 `json:"r"`
	// Ver is the member payload's format version; 0 means v1, which
	// keeps the sidecar bytes of pure-v1 partitions identical to what
	// pre-versioning builds wrote (omitempty).
	Ver int `json:"v,omitempty"`

	// Zone map (sidecar v3, zonemap.go). Z == 1 marks the zone fields
	// as present; entries from pre-zone sidecars carry Z == 0 and are
	// never pruned on. All zone fields are omitempty so zero stats
	// (and legacy entries) stay compact.
	Z    int    `json:"z,omitempty"`
	TMin int64  `json:"t0,omitempty"`
	TMax int64  `json:"t1,omitempty"`
	Mal  int    `json:"m,omitempty"`
	FTB  uint64 `json:"fb,omitempty"`
	EngB uint64 `json:"eb,omitempty"`
	LabB uint64 `json:"lb,omitempty"`
}

// Sidecar schema versions. The block-index sidecar was unversioned
// before zone maps (implicitly v2, the PR-2 schema); v3 adds the
// per-block zone fields and an explicit "ver" marker.
const (
	sidecarVerLegacy = 2
	sidecarVerZones  = 3
)

// sidecarFile is the on-disk JSON schema of scans-YYYY-MM.idx.
type sidecarFile struct {
	// FileSize is the partition size the blocks cover; a mismatch with
	// the actual file marks the sidecar stale.
	FileSize int64 `json:"file_size"`
	// Ver is the sidecar schema version: absent (0) for legacy
	// pre-zone sidecars, sidecarVerZones for sidecars this build
	// writes. Pruning never keys off Ver — each block's Z flag governs
	// — so mixed sidecars (legacy blocks appended to by a zone-aware
	// writer) stay exact.
	Ver      int              `json:"ver,omitempty"`
	Blocks   []blockMeta      `json:"blocks"`
	Postings map[string][]int `json:"postings"`
}

// partIndex is the in-memory block index of one monthly partition.
// Writers append blocks under the partition writer's lock; readers
// snapshot under mu, so a Get never blocks behind gzip compression.
type partIndex struct {
	mu       sync.RWMutex
	fileSize int64
	blocks   []blockMeta
	postings map[string][]int
	dirty    bool // blocks appended since the sidecar was last written
}

func newPartIndex() *partIndex {
	return &partIndex{postings: make(map[string][]int)}
}

// appendBlock records one freshly cut gzip member and its samples.
func (ix *partIndex) appendBlock(bm blockMeta, shas map[string]int) {
	ix.mu.Lock()
	n := len(ix.blocks)
	ix.blocks = append(ix.blocks, bm)
	for sha := range shas {
		ix.postings[sha] = append(ix.postings[sha], n)
	}
	ix.fileSize = bm.Offset + bm.Len
	ix.dirty = true
	ix.mu.Unlock()
}

// blocksFor snapshots the blocks that hold sha, in file order.
func (ix *partIndex) blocksFor(sha string) []blockMeta {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids := ix.postings[sha]
	if len(ids) == 0 {
		return nil
	}
	out := make([]blockMeta, len(ids))
	for i, id := range ids {
		out[i] = ix.blocks[id]
	}
	return out
}

// totals sums rows and raw bytes across blocks (load's fast path).
func (ix *partIndex) totals() (rows int, raw int64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, b := range ix.blocks {
		rows += b.Rows
		raw += b.Raw
	}
	return rows, raw
}

// sampleSHAs lists every sample with rows in the partition.
func (ix *partIndex) sampleSHAs() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.postings))
	for sha := range ix.postings {
		out = append(out, sha)
	}
	return out
}

// fullyZoned reports whether every block entry carries a zone map —
// i.e. the sidecar is effectively version 3 and nothing remains for
// ReindexWithStats to upgrade. Vacuously true for empty partitions.
func (ix *partIndex) fullyZoned() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, bm := range ix.blocks {
		if bm.Z == 0 {
			return false
		}
	}
	return true
}

// snapshotBlocks copies the block list, in file order.
func (ix *partIndex) snapshotBlocks() []blockMeta {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]blockMeta(nil), ix.blocks...)
}

// snapshotPostings deep-copies the SHA→block-set posting list.
func (ix *partIndex) snapshotPostings() map[string][]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[string][]int, len(ix.postings))
	for sha, ids := range ix.postings {
		out[sha] = append([]int(nil), ids...)
	}
	return out
}

// sidecarPath names the index sidecar for a month.
func sidecarPath(dir, month string) string {
	return filepath.Join(dir, "scans-"+month+".idx")
}

// writeSidecar persists the index if it has grown since the last
// write. Postings are a map, which encoding/json serializes with
// sorted keys, so sidecar bytes are deterministic — the concurrency
// determinism harness hashes them along with the partitions.
func (ix *partIndex) writeSidecar(dir, month string) error {
	ix.mu.Lock()
	if !ix.dirty {
		ix.mu.Unlock()
		return nil
	}
	sf := sidecarFile{
		FileSize: ix.fileSize,
		Ver:      sidecarVerZones,
		Blocks:   append([]blockMeta(nil), ix.blocks...),
		Postings: make(map[string][]int, len(ix.postings)),
	}
	for sha, ids := range ix.postings {
		sf.Postings[sha] = append([]int(nil), ids...)
	}
	ix.dirty = false
	ix.mu.Unlock()
	b, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("store: index sidecar: %w", err)
	}
	if err := os.WriteFile(sidecarPath(dir, month), b, 0o644); err != nil {
		return fmt.Errorf("store: index sidecar: %w", err)
	}
	return nil
}

// loadSidecar reads a month's sidecar and validates it against the
// partition's current size. Any mismatch, unreadable file, or
// malformed JSON yields (nil, false, nil): the caller falls back to
// the streaming scan exactly as if the sidecar never existed. A block
// tagged with a format version newer than maxVer is different — the
// data is intact but unreadable by this build, so the error is a
// *FormatError, never a silent fallback that would then choke on the
// member bytes.
func loadSidecar(dir, month string, partitionSize int64, maxVer int) (*partIndex, bool, error) {
	b, err := os.ReadFile(sidecarPath(dir, month))
	if err != nil {
		return nil, false, nil
	}
	var sf sidecarFile
	if err := json.Unmarshal(b, &sf); err != nil {
		return nil, false, nil
	}
	// A sidecar schema from the future is treated like a missing
	// sidecar, not an error: the partition bytes are self-describing,
	// so the streaming fallback stays correct (and a future *block*
	// format inside still fails loudly via the payload sniff).
	if sf.Ver > sidecarVerZones {
		return nil, false, nil
	}
	if sf.FileSize != partitionSize {
		return nil, false, nil
	}
	// Internal consistency: blocks must tile [0, FileSize) and every
	// posting must point at a real block.
	var off int64
	for _, bm := range sf.Blocks {
		if bm.Offset != off || bm.Len <= 0 {
			return nil, false, nil
		}
		off += bm.Len
		if v := blockVer(bm); v > maxVer {
			return nil, false, &FormatError{Path: sidecarPath(dir, month), Version: v, Max: maxVer}
		}
	}
	if off != sf.FileSize {
		return nil, false, nil
	}
	for _, ids := range sf.Postings {
		for _, id := range ids {
			if id < 0 || id >= len(sf.Blocks) {
				return nil, false, nil
			}
		}
	}
	ix := &partIndex{
		fileSize: sf.FileSize,
		blocks:   sf.Blocks,
		postings: sf.Postings,
	}
	if ix.postings == nil {
		ix.postings = make(map[string][]int)
	}
	return ix, true, nil
}

// countingByteReader counts bytes consumed from the underlying
// buffered reader. It implements io.ByteReader so flate never reads
// past a gzip member's end — which makes c.n an exact member
// boundary after each Multistream(false) member drains.
type countingByteReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// indexPartitionFile rebuilds a partition's block index by walking
// its gzip members one at a time, sniffing each member's payload
// format. Works on any valid partition — block-written files recover
// their original block boundaries (and versions); pre-index files
// yield one block per historical flush. A member in a format newer
// than maxVer aborts with *FormatError.
func indexPartitionFile(path string, maxVer int) (*partIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return newPartIndex(), nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	cr := &countingByteReader{r: bufio.NewReaderSize(f, 1<<20)}
	ix := newPartIndex()
	zr, err := gzip.NewReader(cr)
	if err != nil {
		if errors.Is(err, io.EOF) { // empty partition
			return ix, nil
		}
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	defer zr.Close()
	var start int64
	// mr buffers each member's decompressed bytes so the payload's
	// leading bytes can be peeked before choosing a decoder.
	mr := bufio.NewReaderSize(nil, 32<<10)
	for {
		zr.Multistream(false)
		mr.Reset(zr)
		head, _ := mr.Peek(len(colMagic) + 1)
		var (
			rows int
			raw  int64
			ver  = sniffVersion(head)
			shas = make(map[string]int)
			zone blockZone
		)
		switch {
		case ver == FormatV1:
			sc := bufio.NewScanner(mr)
			sbuf := bufpool.GetScanBuf()
			sc.Buffer(sbuf, 16<<20)
			var row scanRow
			var acc zoneAcc
			for sc.Scan() {
				// Full decode (not just the hash): Reindex is the repair
				// path, so malformed rows must keep surfacing as errors.
				if err := decodeScanRow(sc.Bytes(), &row); err != nil {
					bufpool.PutScanBuf(sbuf)
					return nil, fmt.Errorf("store: %s: %w", path, err)
				}
				rows++
				raw += int64(len(sc.Bytes()))
				shas[row.SHA]++
				acc.row(&row)
			}
			err := sc.Err()
			bufpool.PutScanBuf(sbuf)
			if err != nil {
				return nil, fmt.Errorf("store: %s: %w", path, err)
			}
			zone = acc.z
		case ver <= maxVer:
			payload, err := io.ReadAll(mr)
			if err != nil {
				return nil, fmt.Errorf("store: %s: %w", path, err)
			}
			cb, err := parseColumnarBlock(payload, wantSHA|wantFT|wantEng|wantLab)
			if err != nil {
				return nil, fmt.Errorf("store: %s: %w", path, err)
			}
			rows, raw = cb.rows, cb.raw
			for _, sha := range cb.sha {
				shas[sha]++
			}
			if zone, err = zoneOfColBlock(cb); err != nil {
				return nil, fmt.Errorf("store: %s: %w", path, err)
			}
		default:
			return nil, &FormatError{Path: path, Version: ver, Max: maxVer}
		}
		end := cr.n
		if rows > 0 || end > start {
			bm := blockMeta{Offset: start, Len: end - start, Rows: rows, Raw: raw}
			if ver != FormatV1 {
				bm.Ver = ver
			}
			bm.setZone(zone)
			ix.appendBlock(bm, shas)
		}
		start = end
		if err := zr.Reset(cr); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
	}
	return ix, nil
}

// scanBlock streams the rows of one block, dispatching on the block's
// format version. The section reader keeps the decoder inside the
// member even though members are concatenated.
func scanBlock(path string, bm blockMeta, maxVer int, fn func(row scanRow)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return scanBlockAt(f, path, bm, maxVer, fn)
}

// scanBlockAt is scanBlock over an already open partition file, so a
// multi-block Get opens the file once. The row passed to fn is reused
// between calls (its strings are owned, only the Res backing array is
// recycled), so fn must copy what it keeps — every caller goes
// through rowToReport, which does.
func scanBlockAt(f *os.File, path string, bm blockMeta, maxVer int, fn func(row scanRow)) error {
	switch ver := blockVer(bm); {
	case ver == FormatV1:
		var row scanRow
		return scanBlockLinesAt(f, path, bm, func(line []byte) error {
			if err := decodeScanRow(line, &row); err != nil {
				return err
			}
			fn(row)
			return nil
		})
	case ver <= maxVer:
		payload, err := readBlockPayloadAt(f, path, bm)
		if err != nil {
			return err
		}
		defer bufpool.PutBlockBuf(payload)
		cb, err := parseColumnarBlock(payload, wantAllDicts)
		if err != nil {
			return fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
		}
		return cb.forEachRow(func(row *scanRow) error {
			fn(*row)
			return nil
		})
	default:
		return &FormatError{Path: path, Version: ver, Max: maxVer}
	}
}

// readBlockPayloadAt decompresses one member into a pooled block
// buffer (release with bufpool.PutBlockBuf). Columnar readers use it
// because their decoders want the whole payload in memory to slice
// into column segments.
func readBlockPayloadAt(f *os.File, path string, bm blockMeta) ([]byte, error) {
	sec := io.NewSectionReader(f, bm.Offset, bm.Len)
	br := bufpool.GetBufioReader(sec)
	defer bufpool.PutBufioReader(br)
	zr, err := bufpool.GetGzipReader(br)
	if err != nil {
		return nil, fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
	}
	defer bufpool.PutGzipReader(zr)
	defer zr.Close()
	buf := bufpool.GetBlockBuf()
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := zr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				return buf, nil
			}
			bufpool.PutBlockBuf(buf)
			return nil, fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
		}
	}
}

// scanBlockLinesAt streams one block's raw lines through fn, drawing
// the buffered reader, gzip state, and scanner buffer from the shared
// pools. The line aliases the scanner's buffer and is only valid
// during the call. An fn error stops the scan and is returned
// verbatim (wrapped with the block's position).
func scanBlockLinesAt(f *os.File, path string, bm blockMeta, fn func(line []byte) error) error {
	sec := io.NewSectionReader(f, bm.Offset, bm.Len)
	br := bufpool.GetBufioReader(sec)
	defer bufpool.PutBufioReader(br)
	zr, err := bufpool.GetGzipReader(br)
	if err != nil {
		return fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
	}
	defer bufpool.PutGzipReader(zr)
	defer zr.Close()
	sc := bufio.NewScanner(zr)
	sbuf := bufpool.GetScanBuf()
	defer bufpool.PutScanBuf(sbuf)
	sc.Buffer(sbuf, 16<<20)
	for sc.Scan() {
		if err := fn(sc.Bytes()); err != nil {
			return fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: %s: block @%d: %w", path, bm.Offset, err)
	}
	return nil
}
