// In-place format migration: vtstore migrate's engine.
//
// Migrate rewrites every partition still holding v1 blocks into
// format v2, one month at a time, through a temp file that only
// replaces the partition after the rewrite is verified row-for-row
// against the source. Verification hashes the canonical v1 re-encoding
// of every row on both sides — the strongest equivalence the store
// defines (it is exactly what Get must reproduce) — so a codec bug can
// not silently corrupt data during migration. Months already fully v2
// are skipped, which makes the operation idempotent: running migrate
// twice is a no-op the second time.
package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"

	"vtdynamics/internal/bufpool"
)

// MigrateStats summarizes one Migrate pass.
type MigrateStats struct {
	// Migrated lists the months rewritten to v2.
	Migrated []string
	// Skipped lists the months left untouched (already fully v2, or
	// empty).
	Skipped []string
}

// Migrate rewrites every partition that still holds v1 blocks into
// block format v2, in place. It flushes first; the caller must not
// write concurrently. Each month is rewritten into a temporary file,
// SHA-256-verified against the source (over the canonical row
// encoding of every row, in storage order), and atomically renamed
// over the partition; a fresh sidecar is persisted and the month's
// cached histories are dropped. Months already fully v2 are skipped.
func (s *Store) Migrate() (MigrateStats, error) {
	var ms MigrateStats
	if err := s.Flush(); err != nil {
		return ms, err
	}
	for _, month := range s.Months() {
		migrated, err := s.migrateMonth(month)
		if err != nil {
			return ms, err
		}
		if migrated {
			ms.Migrated = append(ms.Migrated, month)
		} else {
			ms.Skipped = append(ms.Skipped, month)
		}
	}
	return ms, nil
}

// migrateMonth rewrites one month if it still holds v1 rows.
func (s *Store) migrateMonth(month string) (bool, error) {
	path := s.partPath(month)
	ix := s.index(month)
	if ix == nil {
		var err error
		ix, err = indexPartitionFile(path, s.maxFormat)
		if err != nil {
			return false, err
		}
	}
	needs := false
	for _, bm := range ix.snapshotBlocks() {
		if bm.Rows > 0 && blockVer(bm) == FormatV1 {
			needs = true
			break
		}
	}
	if !needs {
		return false, nil
	}

	tmp := path + ".migrate"
	newIx, srcSum, stored, err := s.rewriteMonth(path, tmp)
	if err != nil {
		os.Remove(tmp)
		return false, err
	}
	dstSum, err := s.canonicalSum(tmp)
	if err != nil {
		os.Remove(tmp)
		return false, err
	}
	if !bytes.Equal(srcSum, dstSum) {
		os.Remove(tmp)
		return false, fmt.Errorf("store: migrate %s: rewrite verification failed (source %x != rewrite %x)", month, srcSum, dstSum)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("store: migrate %s: %w", month, err)
	}
	newIx.dirty = true
	if err := newIx.writeSidecar(s.dir, month); err != nil {
		return false, err
	}
	s.setIndex(month, newIx)
	s.smu.Lock()
	if st := s.stats[month]; st != nil {
		st.StoredBytes = stored
	}
	s.smu.Unlock()
	for _, sha := range newIx.sampleSHAs() {
		s.cache.invalidate(sha)
	}
	return true, nil
}

// rewriteMonth streams src's rows in storage order into dst as
// v2 blocks cut at the store's block-size target, returning the new
// block index, the canonical row hash of the source, and the bytes
// written.
func (s *Store) rewriteMonth(src, dst string) (*partIndex, []byte, int64, error) {
	f, err := os.Create(dst)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: migrate: %w", err)
	}
	counter := &countingWriter{w: f}
	newIx := newPartIndex()
	srcHash := sha256.New()
	var (
		pending  = bufpool.GetBlockBuf()
		rows     int
		raw      int64
		shas     = make(map[string]int)
		acc      zoneAcc
		innerErr error
	)
	defer func() { bufpool.PutBlockBuf(pending) }()
	cutBlock := func() error {
		if rows == 0 {
			return nil
		}
		col, err := appendColumnarBlock(bufpool.GetBlockBuf(), pending)
		if err != nil {
			bufpool.PutBlockBuf(col)
			return err
		}
		start := counter.n
		zw := bufpool.GetGzipWriter(counter)
		_, werr := zw.Write(col)
		cerr := zw.Close()
		bufpool.PutGzipWriter(zw)
		bufpool.PutBlockBuf(col)
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("store: migrate: %w", werr)
		}
		bm := blockMeta{
			Offset: start,
			Len:    counter.n - start,
			Rows:   rows,
			Raw:    raw,
			Ver:    FormatV2,
		}
		bm.setZone(acc.z)
		newIx.appendBlock(bm, shas)
		pending = pending[:0]
		rows, raw = 0, 0
		shas = make(map[string]int)
		acc.reset()
		return nil
	}
	lineBuf := bufpool.GetBuf()
	defer func() { bufpool.PutBuf(lineBuf) }()
	err = s.scanPartition(src, func(row scanRow) {
		if innerErr != nil {
			return
		}
		// Canonical re-encode: migration normalizes every row to the
		// writer's own encoding, which for writer-produced partitions
		// is the identity.
		r := rowToReport(row)
		lineBuf = appendScanRow(lineBuf[:0], r)
		srcHash.Write(lineBuf)
		srcHash.Write([]byte{'\n'})
		pending = append(pending, lineBuf...)
		pending = append(pending, '\n')
		rows++
		raw += int64(len(lineBuf))
		shas[row.SHA]++
		acc.row(&row)
		if len(pending) >= s.blockSize {
			innerErr = cutBlock()
		}
	}, nil)
	if err == nil {
		err = innerErr
	}
	if err == nil {
		err = cutBlock()
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		return nil, nil, 0, err
	}
	return newIx, srcHash.Sum(nil), counter.n, nil
}

// canonicalSum hashes the canonical row encoding of every row in a
// partition file, in storage order — the verification fingerprint
// Migrate compares across the rewrite.
func (s *Store) canonicalSum(path string) ([]byte, error) {
	h := sha256.New()
	lineBuf := bufpool.GetBuf()
	defer func() { bufpool.PutBuf(lineBuf) }()
	err := s.scanPartition(path, func(row scanRow) {
		lineBuf = appendScanRow(lineBuf[:0], rowToReport(row))
		h.Write(lineBuf)
		h.Write([]byte{'\n'})
	}, nil)
	if err != nil {
		return nil, err
	}
	return h.Sum(nil), nil
}
