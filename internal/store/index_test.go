package store

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// appendRawMember appends one row to a partition as its own gzip
// member without going through the store — the shape an old build or
// external tool would leave behind.
func appendRawMember(t *testing.T, dir, month string, env report.Envelope) error {
	t.Helper()
	enc, _, err := encodeEnvelope(&env, nil)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, "scans-"+month+".jsonl.gz"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write(append(enc.line, '\n')); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	return f.Close()
}

// fillStore writes n samples with small rows and returns their hashes.
func fillStore(t *testing.T, s *Store, n int) []string {
	t.Helper()
	shas := make([]string, n)
	for i := 0; i < n; i++ {
		sha := fmt.Sprintf("ix%04d", i)
		shas[i] = sha
		env := envelope(sha, t0.Add(time.Duration(i)*time.Minute), i%6)
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
	}
	return shas
}

func TestBlockCuttingProducesMultipleMembers(t *testing.T) {
	dir := t.TempDir()
	// Tiny block target: every few rows cut a member.
	s, err := Open(dir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	shas := fillStore(t, s, 200)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	ix := s.index("2021-05")
	if ix == nil {
		t.Fatal("fresh partition has no index")
	}
	blocks := ix.snapshotBlocks()
	if len(blocks) < 4 {
		t.Fatalf("expected several blocks, got %d", len(blocks))
	}
	// Blocks tile the file exactly.
	fi, err := os.Stat(s.partPath("2021-05"))
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	rows := 0
	for _, bm := range blocks {
		if bm.Offset != off {
			t.Fatalf("block offset %d, want %d", bm.Offset, off)
		}
		off += bm.Len
		rows += bm.Rows
	}
	if off != fi.Size() {
		t.Fatalf("blocks cover %d bytes, file has %d", off, fi.Size())
	}
	if rows != 200 {
		t.Fatalf("blocks hold %d rows, want 200", rows)
	}
	// Sidecar exists and every sample still reads back.
	if _, err := os.Stat(sidecarPath(dir, "2021-05")); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	for _, sha := range shas {
		h, err := s.Get(sha)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Reports) != 1 {
			t.Fatalf("%s: %d reports", sha, len(h.Reports))
		}
	}
}

func TestReopenUsesSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 100)
	want := s.TotalStats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Indexed() {
		t.Fatal("reopened store did not load its sidecar")
	}
	if got := s2.TotalStats(); got.Reports != want.Reports || got.RawBytes != want.RawBytes {
		t.Fatalf("sidecar fast-path stats %+v, want %+v", got, want)
	}
	h, err := s2.Get("ix0042")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 1 || h.Reports[0].AVRank != 42%6 {
		t.Fatalf("history = %+v", h.Reports)
	}
}

func TestStaleSidecarFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Grow the partition behind the sidecar's back (as an old build,
	// crash, or external tool would): FileSize no longer matches.
	if err := appendRawMember(t, dir, "2021-05", envelope("ix0007", t0.Add(90*time.Minute), 2)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Indexed() {
		t.Fatal("stale sidecar was trusted")
	}
	// The fallback streaming scan sees every row, including the one
	// appended behind the sidecar's back.
	h, err := s2.Get("ix0007")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 {
		t.Fatalf("fallback missed the appended row: %+v", h.Reports)
	}
	// Reindex heals the sidecar in place.
	if err := s2.Reindex(); err != nil {
		t.Fatal(err)
	}
	if !s2.Indexed() {
		t.Fatal("Reindex did not restore the index")
	}
	s2.cache.invalidate("ix0007")
	if h, err := s2.Get("ix0007"); err != nil || len(h.Reports) != 2 {
		t.Fatalf("indexed read after heal: %v %+v", err, h)
	}
}

func TestCorruptSidecarIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sidecarPath(dir, "2021-05"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Indexed() {
		t.Fatal("corrupt sidecar was trusted")
	}
	if h, err := s2.Get("ix0003"); err != nil || len(h.Reports) != 1 {
		t.Fatalf("fallback read: %v %+v", err, h)
	}
}

func TestReindexMatchesWriterIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 120)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	live := s.index("2021-05")
	if live == nil {
		t.Fatal("no live index")
	}
	rebuilt, err := indexPartitionFile(s.partPath("2021-05"), formatMax)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.snapshotBlocks(), rebuilt.snapshotBlocks()) {
		t.Fatalf("rebuilt blocks diverge:\nlive    %+v\nrebuilt %+v",
			live.snapshotBlocks(), rebuilt.snapshotBlocks())
	}
	for _, sha := range []string{"ix0000", "ix0055", "ix0119"} {
		if !reflect.DeepEqual(live.blocksFor(sha), rebuilt.blocksFor(sha)) {
			t.Fatalf("%s: postings diverge", sha)
		}
	}
}

func TestDeleteSidecarThenReindex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 80)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(sidecarPath(dir, "2021-05")); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Indexed() {
		t.Fatal("store indexed without a sidecar")
	}
	fallback, err := s2.Get("ix0031")
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Reindex(); err != nil {
		t.Fatal(err)
	}
	if !s2.Indexed() {
		t.Fatal("Reindex left the store unindexed")
	}
	// The indexed read returns exactly what the fallback scan returned.
	// (Invalidate the cached copy first so Get really hits the index.)
	s2.cache.invalidate("ix0031")
	indexed, err := s2.Get("ix0031")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fallback, indexed) {
		t.Fatalf("indexed read diverges from fallback:\nfallback %+v\nindexed  %+v", fallback, indexed)
	}
	// And the new sidecar survives a reopen.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Indexed() {
		t.Fatal("healed sidecar not loaded on reopen")
	}
}

func TestAppendToUnindexedPartitionStaysUnindexed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(sidecarPath(dir, "2021-05")); err != nil {
		t.Fatal(err)
	}
	// Reopen without the sidecar, then append: the writer must not
	// start a partial index (its sidecar would have holes), and reads
	// must keep working through the fallback scan.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(envelope("late", t0.Add(time.Hour), 3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if s2.Indexed() {
		t.Fatal("append to a sidecar-less partition created a partial index")
	}
	if _, err := os.Stat(sidecarPath(dir, "2021-05")); !os.IsNotExist(err) {
		t.Fatalf("partial sidecar written: %v", err)
	}
	for _, sha := range []string{"ix0000", "late"} {
		if h, err := s2.Get(sha); err != nil || len(h.Reports) != 1 {
			t.Fatalf("%s: %v %+v", sha, err, h)
		}
	}
}
