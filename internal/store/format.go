// Block format versions and dispatch.
//
// A partition file is a sequence of independently closed gzip members
// ("blocks"). What a member's *decompressed payload* holds comes in
// versions:
//
//	v1  JSONL — one compact scan row (rowcodec.go) per line. The
//	    format every build of this package has ever written; readable
//	    forever.
//	v2  columnar — a "VTCB" magic header followed by per-block
//	    dictionaries and column segments (colcodec.go). Scans and
//	    StatsByType decode only the columns they need.
//
// Every reader dispatches per block: the sidecar records each block's
// version, and sidecar-less paths sniff the payload's leading bytes
// (a v1 line always starts with '{', never with the v2 magic). A
// block whose version is newer than the reader understands is
// rejected with *FormatError — never silently misread — so a store
// written by a future format fails loudly and points at the fix.
package store

import (
	"errors"
	"fmt"
)

// Block format versions.
const (
	// FormatV1 is the JSONL row encoding: one compact JSON object per
	// line per scan, gzip members cut at the block-size target.
	FormatV1 = 1
	// FormatV2 is the dictionary-encoded columnar block encoding.
	FormatV2 = 2

	// FormatDefault is what new writes use unless WithFormat overrides.
	FormatDefault = FormatV2

	// formatMax is the newest version this build reads and writes.
	formatMax = FormatV2
)

// colMagic opens every v2 (and later) columnar block payload; the
// byte after it is the payload's format version.
const colMagic = "VTCB"

// ErrUnsupportedFormat matches (via errors.Is) every *FormatError.
var ErrUnsupportedFormat = errors.New("store: unsupported block format")

// FormatError reports a partition block or index sidecar written in a
// format version this reader does not support. It is the typed,
// versioned rejection the compatibility matrix pins: old data is
// readable forever, but data from the future fails loudly instead of
// being misparsed.
type FormatError struct {
	// Path is the partition or sidecar file holding the block.
	Path string
	// Version is the block's declared format version.
	Version int
	// Max is the newest version this reader supports.
	Max int
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("store: %s: block format v%d not supported (this reader handles up to v%d); upgrade the binary, or vtstore migrate with a newer build",
		e.Path, e.Version, e.Max)
}

// Is makes errors.Is(err, ErrUnsupportedFormat) match any FormatError.
func (e *FormatError) Is(target error) bool { return target == ErrUnsupportedFormat }

// blockVer normalizes a sidecar block entry's version: entries
// written before versions existed carry 0, which means v1.
func blockVer(bm blockMeta) int {
	if bm.Ver == 0 {
		return FormatV1
	}
	return bm.Ver
}

// sniffVersion classifies a member payload by its leading bytes:
// JSONL rows always start with '{' (or are empty), columnar payloads
// start with colMagic + a version byte.
func sniffVersion(head []byte) int {
	if len(head) >= len(colMagic)+1 && string(head[:len(colMagic)]) == colMagic {
		return int(head[len(colMagic)])
	}
	return FormatV1
}
