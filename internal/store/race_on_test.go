//go:build race

package store

// raceEnabled reports whether this binary was built with -race, which
// randomizes sync.Pool reuse and so defeats pooled-cycle allocation
// accounting.
const raceEnabled = true
