package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// migrateFixture writes a v1 store spanning two months with enough
// rows for several blocks, closes it, and returns its directory.
func migrateFixture(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, WithFormat(FormatV1), WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i%2)*31*24*time.Hour + time.Duration(i)*time.Minute)
		if err := s.Put(envelope(fmt.Sprintf("mig%04d", i%10), at, i%6)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// readSnapshotFor captures everything a query client can observe from
// a store: every sample's full history, the per-type tallies, and the
// per-month report/raw accounting.
type storeSnapshot struct {
	histories map[string]string
	byType    map[string]TypeStats
	months    map[string][2]int64 // month -> {reports, rawBytes}
}

func snapshotStore(t *testing.T, s *Store) storeSnapshot {
	t.Helper()
	snap := storeSnapshot{
		histories: make(map[string]string),
		months:    make(map[string][2]int64),
	}
	for _, sha := range s.SampleHashes() {
		h, err := s.Get(sha)
		if err != nil {
			t.Fatalf("get %s: %v", sha, err)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%+v\n", h.Meta)
		for _, r := range h.Reports {
			fmt.Fprintf(&sb, "%+v\n", *r)
		}
		snap.histories[sha] = sb.String()
	}
	byType, err := s.StatsByType()
	if err != nil {
		t.Fatal(err)
	}
	snap.byType = byType
	for _, month := range s.Months() {
		ps := s.Stats(month)
		snap.months[month] = [2]int64{int64(ps.Reports), ps.RawBytes}
	}
	return snap
}

// TestMigrateEndToEnd proves the satellite claim: a v1 store migrated
// to v2 serves byte-identical Get and StatsByType results, every
// block really is v2 afterwards, and a second Migrate is a no-op.
func TestMigrateEndToEnd(t *testing.T) {
	dir := migrateFixture(t, 120)

	before, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotStore(t, before)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Migrated) != 2 || len(ms.Skipped) != 0 {
		t.Fatalf("migrated %v skipped %v, want both months migrated", ms.Migrated, ms.Skipped)
	}
	for _, month := range s.Months() {
		for _, bm := range s.index(month).snapshotBlocks() {
			if blockVer(bm) != FormatV2 {
				t.Fatalf("%s: block %+v still v1 after migrate", month, bm)
			}
		}
	}

	// The migrated store — both the live handle and a fresh reopen —
	// must be indistinguishable from the v1 original to every query.
	if got := snapshotStore(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("live handle diverged after migrate:\n got %+v\nwant %+v", got, want)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.Indexed() {
		t.Fatal("migrated store reopened unindexed")
	}
	if got := snapshotStore(t, reopened); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened store diverged after migrate:\n got %+v\nwant %+v", got, want)
	}

	// Idempotence: a second pass rewrites nothing.
	ms2, err := reopened.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2.Migrated) != 0 || len(ms2.Skipped) != 2 {
		t.Fatalf("second migrate rewrote %v (skipped %v), want pure no-op", ms2.Migrated, ms2.Skipped)
	}

	// And no temp files were left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".migrate") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestMigrateUnindexedStore migrates a store whose sidecars were
// deleted (the pre-sidecar fallback path): Migrate must reindex as it
// goes and leave the store fully indexed in v2.
func TestMigrateUnindexedStore(t *testing.T) {
	dir := migrateFixture(t, 60)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".idx") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotStore(t, before)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Indexed() {
		t.Fatal("expected unindexed store after sidecar removal")
	}
	if _, err := s.Migrate(); err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("store not indexed after migrate")
	}
	if got := snapshotStore(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("migrate of unindexed store diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestMigrateFreshV2StoreIsNoop pins idempotence from the other side:
// a store born v2 is never rewritten.
func TestMigrateFreshV2StoreIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Put(envelope(fmt.Sprintf("v2%04d", i), t0.Add(time.Duration(i)*time.Minute), i%6)); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := s.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Migrated) != 0 || len(ms.Skipped) != 1 {
		t.Fatalf("fresh v2 store: migrated %v skipped %v", ms.Migrated, ms.Skipped)
	}
}

// TestMigrateContinuesAfterAppend covers mixed-format months: new v2
// rows appended to a migrated month coexist with its blocks, and a
// later migrate still skips the (fully v2) month.
func TestMigrateContinuesAfterAppend(t *testing.T) {
	dir := migrateFixture(t, 30)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Migrate(); err != nil {
		t.Fatal(err)
	}
	// Append post-migration rows (v2 writer) to the migrated months.
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i%2)*31*24*time.Hour + time.Duration(100+i)*time.Minute)
		if err := s.Put(envelope(fmt.Sprintf("mig%04d", i%10), at, i%6)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("mig0003")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) == 0 {
		t.Fatal("no reports after append to migrated store")
	}
	ms, err := s.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Migrated) != 0 {
		t.Fatalf("append of v2 rows retriggered migration of %v", ms.Migrated)
	}
	if errors.Is(err, ErrUnknownSample) {
		t.Fatal("unreachable")
	}
}
