package store

import (
	"bytes"
	"testing"

	"vtdynamics/internal/report"
)

// directColumnarPayload encodes reports through the write path's
// direct column builder — pool round trip included, so these tests
// also prove recycled builders start clean.
func directColumnarPayload(reports []*report.ScanReport) []byte {
	b := getColBuilder()
	var line []byte
	for _, r := range reports {
		line = appendScanRow(line[:0], r)
		b.addRow(r, len(line))
	}
	payload := b.seal(nil)
	putColBuilder(b)
	return payload
}

// TestDirectColumnarMatchesTranscode pins the tentpole invariant on
// fixed shapes: the direct builder's payload is byte-identical to the
// flush-time transcode of the same rows' JSONL — including the empty
// block, the varint verdict fallback, invalid UTF-8 normalization,
// and zero timestamps.
func TestDirectColumnarMatchesTranscode(t *testing.T) {
	cases := map[string][]*report.ScanReport{
		"fixture": colTestReports(),
		"empty":   nil,
		"weird-verdicts": {{
			SHA256: "w", FileType: "X",
			Results: []report.EngineResult{
				{Engine: "E", Verdict: report.Verdict(-7)},
				{Engine: "E", Verdict: report.Verdict(100)},
				{Engine: "E", Verdict: report.Malicious},
			},
		}},
		"invalid-utf8": {{
			SHA256:   "sha\xffbad",
			FileType: "PE\xc332",
			AVRank:   -3,
			Results: []report.EngineResult{{
				Engine: "Eng\xc3", Verdict: report.Benign, Label: "lab\xe2\x28el",
			}},
		}},
		"zero-times": {
			{SHA256: "a", FileType: "PDF", AnalysisDate: fromUnix(0)},
			{SHA256: "a", FileType: "PDF", AnalysisDate: fromUnix(-120)},
			{SHA256: "a", FileType: "PDF", AnalysisDate: fromUnix(1619827200)},
		},
	}
	for name, reports := range cases {
		t.Run(name, func(t *testing.T) {
			want, err := appendColumnarBlock(nil, rawBlockFor(reports))
			if err != nil {
				t.Fatal(err)
			}
			got := directColumnarPayload(reports)
			if !bytes.Equal(got, want) {
				t.Fatalf("direct builder diverges from transcode:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// TestColBuilderPoolReuse cycles one block's vocabulary through the
// pool, then encodes a disjoint block: any leaked dictionary entry,
// verdict, or delta baseline would show up as a byte diff against the
// transcode of the second block alone.
func TestColBuilderPoolReuse(t *testing.T) {
	directColumnarPayload(colTestReports()) // populate + recycle

	second := []*report.ScanReport{{
		SHA256:       "zzz",
		FileType:     "ELF",
		AnalysisDate: fromUnix(99),
		Results: []report.EngineResult{
			{Engine: "ClamAV", Verdict: report.Malicious, Label: "Worm.X"},
		},
	}}
	want, err := appendColumnarBlock(nil, rawBlockFor(second))
	if err != nil {
		t.Fatal(err)
	}
	if got := directColumnarPayload(second); !bytes.Equal(got, want) {
		t.Fatalf("recycled builder leaked state:\n got %q\nwant %q", got, want)
	}
}

// FuzzDirectColumnarDifferential is the write path's byte-identity
// proof: for an arbitrary block of rows, the direct column builder
// must emit exactly the payload the flush-time transcode
// (appendColumnarBlock over the rows' JSONL lines) emits. Seeds
// mirror FuzzColumnarRowDifferential's shapes — dictionary sharing,
// invalid UTF-8, out-of-range verdicts, zero/negative time deltas.
func FuzzDirectColumnarDifferential(f *testing.F) {
	f.Add("aaa", "Win32 EXE", int64(1619827200), 2, 70, "Avast", int8(1), 17, "Trojan.Gen",
		"bbb", "lab2", int64(60), int8(0), uint8(2))
	f.Add("bbb", "PDF", int64(1622505600), 0, 68, "BitDefender", int8(0), 9, "",
		"bbb", "", int64(-120), int8(-1), uint8(0))
	f.Add("", "", int64(0), 0, 0, "", int8(0), 0, "",
		"", "", int64(0), int8(0), uint8(5))
	f.Add("sha\xffbad", "PE32", int64(-7), -3, 1<<20, "Eng\xc3", int8(-2), -1, "lab\xe2\x28el",
		"z", "not-a-virus:HEUR\xf0", int64(1), int8(99), uint8(3))

	f.Fuzz(func(t *testing.T, sha, ft string, at int64, rank, tot int, eng string, verdict int8, sigver int, label string,
		sha2, label2 string, dt int64, verdict2 int8, dup uint8) {
		reports := []*report.ScanReport{
			{
				SHA256:       sha,
				FileType:     ft,
				AnalysisDate: fromUnix(at),
				AVRank:       rank,
				EnginesTotal: tot,
				Results: []report.EngineResult{{
					Engine:           eng,
					Verdict:          report.Verdict(verdict),
					SignatureVersion: sigver,
					Label:            label,
				}},
			},
			{
				SHA256:       sha2,
				FileType:     ft, // shared vocabulary on purpose
				AnalysisDate: fromUnix(at + dt),
				AVRank:       rank,
				EnginesTotal: tot,
				Results: []report.EngineResult{
					{Engine: eng, Verdict: report.Verdict(verdict2), SignatureVersion: sigver, Label: label2},
					{Engine: eng, Verdict: report.Verdict(verdict), SignatureVersion: sigver},
				},
			},
		}
		for i := uint8(0); i < dup%4; i++ {
			reports = append(reports, reports[0])
		}

		want, err := appendColumnarBlock(nil, rawBlockFor(reports))
		if err != nil {
			t.Fatalf("transcode reference: %v", err)
		}
		got := directColumnarPayload(reports)
		if !bytes.Equal(got, want) {
			t.Fatalf("direct builder diverges from transcode:\n got %q\nwant %q", got, want)
		}
	})
}
