package store

import (
	"bytes"
	"reflect"
	"testing"

	"vtdynamics/internal/report"
)

// rawBlockFor encodes reports into a raw v1 block (newline-terminated
// JSONL) exactly as the partition writer accumulates it.
func rawBlockFor(reports []*report.ScanReport) []byte {
	var raw []byte
	for _, r := range reports {
		raw = appendScanRow(raw, r)
		raw = append(raw, '\n')
	}
	return raw
}

// decodeV1Rows decodes a raw v1 block through the row codec — the
// reference the columnar codec is differential-tested against.
func decodeV1Rows(t testing.TB, raw []byte) []*report.ScanReport {
	t.Helper()
	var out []*report.ScanReport
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var row scanRow
		if err := decodeScanRow(line, &row); err != nil {
			t.Fatalf("v1 decode %q: %v", line, err)
		}
		out = append(out, rowToReport(row))
	}
	return out
}

// decodeV2Rows round-trips a raw v1 block through the columnar codec:
// transcode, parse, stream rows back out.
func decodeV2Rows(t testing.TB, raw []byte) ([]*report.ScanReport, *colBlock) {
	t.Helper()
	payload, err := appendColumnarBlock(nil, raw)
	if err != nil {
		t.Fatalf("columnar encode: %v", err)
	}
	cb, err := parseColumnarBlock(payload, wantAllDicts)
	if err != nil {
		t.Fatalf("columnar parse: %v", err)
	}
	var out []*report.ScanReport
	err = cb.forEachRow(func(row *scanRow) error {
		out = append(out, rowToReport(*row))
		return nil
	})
	if err != nil {
		t.Fatalf("columnar rows: %v", err)
	}
	return out, cb
}

func colTestReports() []*report.ScanReport {
	mk := func(sha, ft string, at int64, rank int, results []report.EngineResult) *report.ScanReport {
		return &report.ScanReport{
			SHA256:       sha,
			FileType:     ft,
			AnalysisDate: fromUnix(at),
			AVRank:       rank,
			EnginesTotal: len(results),
			Results:      results,
		}
	}
	return []*report.ScanReport{
		mk("aaa", "Win32 EXE", 1619827200, 2, []report.EngineResult{
			{Engine: "Avast", Verdict: report.Malicious, SignatureVersion: 17, Label: "Trojan.Gen"},
			{Engine: "BitDefender", Verdict: report.Undetected, SignatureVersion: 9},
		}),
		mk("bbb", "PDF", 1619827260, 0, []report.EngineResult{
			{Engine: "Avast", Verdict: report.Benign, SignatureVersion: 17},
		}),
		// Same vocabulary again: dictionaries must dedupe, time column
		// must delta against the previous row.
		mk("aaa", "Win32 EXE", 1619827100, 5, []report.EngineResult{
			{Engine: "Avast", Verdict: report.Malicious, SignatureVersion: 18, Label: "Trojan.Gen"},
		}),
		// Zero results and the zero time.
		mk("ccc", "PDF", 0, 0, nil),
	}
}

// TestColumnarRoundTrip pins the codec's core contract: decoding a
// transcoded block yields exactly what the v1 row codec decodes from
// the same bytes, re-encoding the decoded rows reproduces the raw
// block byte-for-byte, and the header carries v1-parity accounting.
func TestColumnarRoundTrip(t *testing.T) {
	raw := rawBlockFor(colTestReports())
	want := decodeV1Rows(t, raw)
	got, cb := decodeV2Rows(t, raw)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar decode diverges from v1:\n got %+v\nwant %+v", got, want)
	}
	if cb.rows != len(want) {
		t.Fatalf("header rows = %d, want %d", cb.rows, len(want))
	}
	if wantRaw := int64(len(raw) - len(want)); cb.raw != wantRaw { // minus one '\n' per line
		t.Fatalf("header raw = %d, want %d", cb.raw, wantRaw)
	}
	var re []byte
	for _, r := range got {
		re = appendScanRow(re, r)
		re = append(re, '\n')
	}
	if !bytes.Equal(re, raw) {
		t.Fatalf("re-encode is not the identity:\n got %q\nwant %q", re, raw)
	}
	// Dictionaries deduped: 3 shas, 2 file types, 2 engines, 1 label.
	if len(cb.sha) != 3 || len(cb.ft) != 2 || len(cb.eng) != 2 || len(cb.lab) != 1 {
		t.Fatalf("dict sizes sha=%d ft=%d eng=%d lab=%d", len(cb.sha), len(cb.ft), len(cb.eng), len(cb.lab))
	}
}

// TestColumnarEmptyBlock: a block with no rows still produces a
// parseable payload with zeroed accounting.
func TestColumnarEmptyBlock(t *testing.T) {
	got, cb := decodeV2Rows(t, nil)
	if len(got) != 0 || cb.rows != 0 || cb.raw != 0 {
		t.Fatalf("empty block decoded to %d rows (%+v)", len(got), cb)
	}
}

// TestColumnarVerdictPacking pins both verdict encodings: canonical
// verdicts pack two bits per result behind flag byte 1, and any
// out-of-range verdict flips the whole block to the varint fallback
// (flag 0) without losing the exact values.
func TestColumnarVerdictPacking(t *testing.T) {
	canonical := rawBlockFor(colTestReports())
	payload, err := appendColumnarBlock(nil, canonical)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := parseColumnarBlock(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cb.segs[segVerdict][0] != verdictFlagPacked {
		t.Fatal("canonical verdicts did not pack")
	}

	weird := rawBlockFor([]*report.ScanReport{{
		SHA256: "w", FileType: "X",
		Results: []report.EngineResult{
			{Engine: "E", Verdict: report.Verdict(-7)},
			{Engine: "E", Verdict: report.Verdict(100)},
			{Engine: "E", Verdict: report.Malicious},
		},
	}})
	payload, err = appendColumnarBlock(nil, weird)
	if err != nil {
		t.Fatal(err)
	}
	cb, err = parseColumnarBlock(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cb.segs[segVerdict][0] == verdictFlagPacked {
		t.Fatal("out-of-range verdicts must use the varint fallback")
	}
	got, _ := decodeV2Rows(t, weird)
	want := decodeV1Rows(t, weird)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback verdicts diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestColumnarRowsFor pins the sha pre-filter behind Get: only the
// requested sample's rows come back, in storage order, and a block
// whose dictionary lacks the sample returns nil without row decoding.
func TestColumnarRowsFor(t *testing.T) {
	raw := rawBlockFor(colTestReports())
	payload, err := appendColumnarBlock(nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := columnarRowsFor(payload, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	var want []*report.ScanReport
	for _, r := range decodeV1Rows(t, raw) {
		if r.SHA256 == "aaa" {
			want = append(want, r)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rowsFor(aaa):\n got %+v\nwant %+v", got, want)
	}
	if miss, err := columnarRowsFor(payload, "zzz"); err != nil || miss != nil {
		t.Fatalf("rowsFor(absent) = %v, %v; want nil, nil", miss, err)
	}
}

// TestColumnarTypeCounts pins the pruned StatsByType column: per-type
// row tallies from just the file-type dictionary and segment.
func TestColumnarTypeCounts(t *testing.T) {
	payload, err := appendColumnarBlock(nil, rawBlockFor(colTestReports()))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	if err := columnarTypeCounts(payload, func(ft string, rows int) { got[ft] += rows }); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"Win32 EXE": 2, "PDF": 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("type counts = %v, want %v", got, want)
	}
}

// TestColumnarRejectsGarbage: the parser must reject v1 payloads,
// wrong versions, and every truncation of a valid payload with an
// error — never panic, never fabricate rows.
func TestColumnarRejectsGarbage(t *testing.T) {
	if _, err := parseColumnarBlock([]byte(`{"s":"x"}`), wantAllDicts); err == nil {
		t.Fatal("parsed a v1 line as columnar")
	}
	if _, err := parseColumnarBlock([]byte(colMagic+"\x01rest"), wantAllDicts); err == nil {
		t.Fatal("parsed a non-v2 version byte")
	}
	payload, err := appendColumnarBlock(nil, rawBlockFor(colTestReports()))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		cb, err := parseColumnarBlock(payload[:cut], wantAllDicts)
		if err != nil {
			continue
		}
		// A truncation that happens to parse must still fail when the
		// columns are walked — it can never produce rows silently.
		if err := cb.forEachRow(func(*scanRow) error { return nil }); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(payload))
		}
	}
	// Trailing garbage is corruption too: segments must tile the
	// payload exactly.
	if _, err := parseColumnarBlock(append(payload, 0xAB), wantAllDicts); err == nil {
		t.Fatal("parsed a payload with trailing garbage")
	}
}

// FuzzColumnarRowDifferential differential-tests the columnar codec
// against the v1 row codec (satellite of the format-v2 work): for an
// arbitrary block of rows, v1-encode → columnar transcode → columnar
// decode must equal the v1 decode of the same bytes, and re-encoding
// the decoded rows must reproduce the raw block byte-for-byte — the
// same identity Migrate's SHA verification relies on.
func FuzzColumnarRowDifferential(f *testing.F) {
	// Seeds mirror FuzzStoreRowRoundTrip's: fixture shapes plus the
	// historic codec traps (invalid UTF-8, zero/negative times,
	// out-of-range verdicts), extended with a second row to exercise
	// dictionary sharing and time deltas.
	f.Add("aaa", "Win32 EXE", int64(1619827200), 2, 70, "Avast", int8(1), 17, "Trojan.Gen",
		"bbb", "lab2", int64(60), int8(0), uint8(2))
	f.Add("bbb", "PDF", int64(1622505600), 0, 68, "BitDefender", int8(0), 9, "",
		"bbb", "", int64(-120), int8(-1), uint8(0))
	f.Add("", "", int64(0), 0, 0, "", int8(0), 0, "",
		"", "", int64(0), int8(0), uint8(5))
	f.Add("sha\xffbad", "PE32", int64(-7), -3, 1<<20, "Eng\xc3", int8(-2), -1, "lab\xe2\x28el",
		"z", "not-a-virus:HEUR\xf0", int64(1), int8(99), uint8(3))

	f.Fuzz(func(t *testing.T, sha, ft string, at int64, rank, tot int, eng string, verdict int8, sigver int, label string,
		sha2, label2 string, dt int64, verdict2 int8, dup uint8) {
		reports := []*report.ScanReport{
			{
				SHA256:       sha,
				FileType:     ft,
				AnalysisDate: fromUnix(at),
				AVRank:       rank,
				EnginesTotal: tot,
				Results: []report.EngineResult{{
					Engine:           eng,
					Verdict:          report.Verdict(verdict),
					SignatureVersion: sigver,
					Label:            label,
				}},
			},
			{
				SHA256:       sha2,
				FileType:     ft, // shared vocabulary on purpose
				AnalysisDate: fromUnix(at + dt),
				AVRank:       rank,
				EnginesTotal: tot,
				Results: []report.EngineResult{
					{Engine: eng, Verdict: report.Verdict(verdict2), SignatureVersion: sigver, Label: label2},
					{Engine: eng, Verdict: report.Verdict(verdict), SignatureVersion: sigver},
				},
			},
		}
		// A few duplicate rows stress dictionary reuse and zero deltas.
		for i := uint8(0); i < dup%4; i++ {
			reports = append(reports, reports[0])
		}

		raw := rawBlockFor(reports)
		want := decodeV1Rows(t, raw)
		got, cb := decodeV2Rows(t, raw)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("columnar decode diverges from v1 codec:\n got %+v\nwant %+v\nraw %q", got, want, raw)
		}
		if cb.rows != len(reports) {
			t.Fatalf("header rows = %d, want %d", cb.rows, len(reports))
		}
		var re []byte
		for _, r := range got {
			re = appendScanRow(re, r)
			re = append(re, '\n')
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("decode→re-encode is not the identity:\n first %q\nsecond %q", raw, re)
		}
	})
}
