// Zone maps: per-block pruning statistics in the index sidecar.
//
// A zone map is a tiny summary of one block's contents — min/max
// analysis timestamp, how many rows carry at least one malicious
// verdict, and 64-bit fingerprint bitsets of the block's file-type,
// engine, and label vocabularies — recorded in the block's sidecar
// entry at seal time. Scan consults the zone map before decompressing
// anything: a block whose zone proves it cannot hold a matching row is
// skipped entirely (no gunzip, no decode). Fingerprints are one-sided:
// a set bit means "a value hashing to this bit may be present", so a
// false positive costs a scan, never a wrong answer, and a miss is a
// guaranteed-safe skip.
//
// The non-negotiable invariant is that a zone map is a PURE FUNCTION
// of the block's payload rows. Five code paths compute zones — the v2
// write path (colBuilder), the v1 write path (partWriter's zoneAcc),
// Reindex (indexPartitionFile), replication apply / repair
// (analyzePayload), and migration (rewriteMonth) — and all of them
// must produce bit-identical results, because leader and follower
// sidecars are compared byte-for-byte by the replication parity suite,
// and Verify cross-checks every sidecar zone against a payload
// recompute. All paths therefore share the accumulation and hashing
// helpers below and hash the same normalized (validUTF8) strings the
// row codecs store.
//
// Sidecar entries written before zone maps carry Z == 0 ("no zone"):
// readers never prune on them, so legacy sidecars stay loadable and
// merely scan more. `vtstore reindex` upgrades them in place.
package store

import "vtdynamics/internal/report"

// blockZone is one block's zone-map statistics in computed form.
// Comparable with == (Verify uses that to cross-check sidecars).
type blockZone struct {
	// tmin/tmax bound the block rows' analysis timestamps (unix
	// seconds, zero-preserving like the row codec). Meaningless when
	// the block has zero rows.
	tmin, tmax int64
	// mal counts rows with at least one Malicious engine result — the
	// verdict summary MaliciousOnly queries prune on.
	mal int
	// ftb/engb/labb are 64-bit fingerprint bitsets over the block's
	// file-type, engine, and (non-empty) label vocabularies.
	ftb, engb, labb uint64
}

// fnv64a is FNV-1a over the string bytes — the zone fingerprint hash.
func fnv64a(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// zoneBit maps one vocabulary value onto its fingerprint bit.
func zoneBit(s string) uint64 { return 1 << (fnv64a(s) & 63) }

// zoneBits ORs the fingerprint bits of a value set — the query-side
// mask: a block may contain one of the values only if its fingerprint
// intersects the mask.
func zoneBits(vals []string) uint64 {
	var b uint64
	for _, v := range vals {
		b |= zoneBit(v)
	}
	return b
}

// zoneAcc accumulates a blockZone row by row. The two entry points —
// row (decoded v1 rows) and scan (write-path reports) — fold identical
// values because the row codec normalizes every string through
// validUTF8 on encode, so a decoded row already carries the normalized
// form scan() normalizes on the fly.
type zoneAcc struct {
	rows int
	z    blockZone
}

func (a *zoneAcc) reset() { *a = zoneAcc{} }

// beginRow folds one row's timestamp into the min/max bounds.
func (a *zoneAcc) beginRow(at int64) {
	if a.rows == 0 || at < a.z.tmin {
		a.z.tmin = at
	}
	if a.rows == 0 || at > a.z.tmax {
		a.z.tmax = at
	}
	a.rows++
}

// row folds one decoded v1 scan row.
func (a *zoneAcc) row(row *scanRow) {
	a.beginRow(row.At)
	a.z.ftb |= zoneBit(row.FT)
	mal := false
	for i := range row.Res {
		rr := &row.Res[i]
		a.z.engb |= zoneBit(rr.E)
		if rr.L != "" {
			a.z.labb |= zoneBit(rr.L)
		}
		if rr.V == int8(report.Malicious) {
			mal = true
		}
	}
	if mal {
		a.z.mal++
	}
}

// scan folds one write-path report, normalizing exactly like the row
// codecs so the accumulated zone equals what a payload recompute of
// the sealed block derives.
func (a *zoneAcc) scan(scan *report.ScanReport) {
	a.beginRow(unix(scan.AnalysisDate))
	a.z.ftb |= zoneBit(validUTF8(scan.FileType))
	mal := false
	for i := range scan.Results {
		er := &scan.Results[i]
		a.z.engb |= zoneBit(validUTF8(er.Engine))
		if lab := validUTF8(er.Label); lab != "" {
			a.z.labb |= zoneBit(lab)
		}
		if int8(er.Verdict) == int8(report.Malicious) {
			mal = true
		}
	}
	if mal {
		a.z.mal++
	}
}

// zoneOfColBlock recomputes a v2 block's zone from its parsed payload:
// fingerprints from the dictionaries (a dictionary holds exactly the
// values the rows reference, in both encoders), timestamp bounds from
// the delta-encoded time column, and the malicious-row count from the
// nres and verdict columns. The block must have been parsed with at
// least wantFT|wantEng|wantLab.
func zoneOfColBlock(cb *colBlock) (blockZone, error) {
	var z blockZone
	for _, v := range cb.ft {
		z.ftb |= zoneBit(v)
	}
	for _, v := range cb.eng {
		z.engb |= zoneBit(v)
	}
	for _, v := range cb.lab {
		z.labb |= zoneBit(v)
	}
	if cb.rows == 0 {
		return z, nil
	}
	timeC := colCursor{buf: cb.segs[segTime]}
	var at int64
	for i := 0; i < cb.rows; i++ {
		dt, err := timeC.varint()
		if err != nil {
			return z, err
		}
		at += dt
		if i == 0 || at < z.tmin {
			z.tmin = at
		}
		if i == 0 || at > z.tmax {
			z.tmax = at
		}
	}
	nresC := colCursor{buf: cb.segs[segNRes]}
	vr, err := newVerdictReader(cb.segs[segVerdict])
	if err != nil {
		return z, err
	}
	for i := 0; i < cb.rows; i++ {
		nres, err := nresC.uvarint()
		if err != nil {
			return z, err
		}
		mal := false
		for j := uint64(0); j < nres; j++ {
			v, err := vr.next()
			if err != nil {
				return z, err
			}
			if v == int8(report.Malicious) {
				mal = true
			}
		}
		if mal {
			z.mal++
		}
	}
	return z, nil
}

// setZone records a computed zone on a sidecar block entry. Z == 1
// marks the zone fields as present (and trustworthy for pruning);
// entries from pre-zone sidecars keep Z == 0 and are never pruned.
func (bm *blockMeta) setZone(z blockZone) {
	bm.Z = 1
	bm.TMin, bm.TMax = z.tmin, z.tmax
	bm.Mal = z.mal
	bm.FTB, bm.EngB, bm.LabB = z.ftb, z.engb, z.labb
}

// zone extracts the entry's zone in computed form (Verify compares it
// against a payload recompute with ==).
func (bm *blockMeta) zone() blockZone {
	return blockZone{
		tmin: bm.TMin, tmax: bm.TMax,
		mal: bm.Mal,
		ftb: bm.FTB, engb: bm.EngB, labb: bm.LabB,
	}
}
