// Replication hooks: the store as a replication log.
//
// Partitions are append-only sequences of independently-readable gzip
// members ("blocks"), committed strictly in order and byte-identical
// across worker counts — which makes the block the natural unit of
// replication. This file exports the two halves internal/sync builds
// on:
//
//   - Leader side: ReplState (per-month committed block positions),
//     BlocksSince (block metadata after a cursor), ReadBlock (the
//     committed compressed bytes of one block), and the state-file
//     encoders WriteSamplesSnapshot / StatsJSON, which serialize the
//     live in-memory state with exactly the bytes Close writes.
//   - Follower side: ApplyBlocks (verify-then-append replicated
//     blocks, maintaining the block index, sample membership, and
//     accounting), ApplySamplesSnapshot / ApplyStatsSnapshot (state
//     files, applied to memory and persisted atomically), and
//     RepairDir (crash recovery: truncate torn partition tails and
//     rebuild sidecars so a restarted follower resumes from its last
//     durable block boundary).
//
// The verify-then-apply invariant: ApplyBlocks never trusts wire
// metadata. Every block's payload is decompressed and re-analyzed
// (rows decoded for v1, the sha dictionary parsed for v2) and must
// agree with the claimed row count, raw bytes, format version, and
// append offset before a single byte lands in the partition — so a
// follower's sidecar postings are derived from its own bytes, which
// is what makes leader and follower sidecars byte-identical.
package store

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vtdynamics/internal/bufpool"
	"vtdynamics/internal/report"
)

// ErrNotIndexed is returned by the replication hooks for months
// without a block index (pre-sidecar stores); Reindex upgrades them
// in place.
var ErrNotIndexed = errors.New("store: partition not indexed (run Reindex first)")

// ErrReplMismatch is returned by ApplyBlocks when a replicated block
// disagrees with the replica's committed state or with its own
// payload — wrong append offset, wrong sequence number, or wire
// metadata (rows, raw bytes, version) that the decompressed payload
// contradicts. The offending block and everything after it are not
// applied.
var ErrReplMismatch = errors.New("store: replicated block mismatch")

// ErrUnknownBlock is returned by ReadBlock and BlocksSince for block
// sequence numbers the month does not (yet) have.
var ErrUnknownBlock = errors.New("store: unknown block")

// MonthState is one month's committed replication position: how many
// blocks its partition holds and how many bytes they cover.
type MonthState struct {
	Blocks   int
	FileSize int64
}

// ReplBlock describes one committed partition block for replication.
type ReplBlock struct {
	// Month is the partition key (YYYY-MM).
	Month string
	// Seq is the block's index within its month, starting at 0.
	Seq int
	// Offset and Len locate the compressed member in the partition.
	Offset int64
	Len    int64
	// Rows and Raw are the member's row count and JSONL-equivalent
	// uncompressed byte total (the sidecar accounting).
	Rows int
	Raw  int64
	// Ver is the member payload's format version, normalized: v1 is
	// FormatV1, never the sidecar's legacy 0.
	Ver int
}

// ValidMonthKey reports whether month is a well-formed partition key
// (YYYY-MM). Replication decodes months off the wire and joins them
// into file paths, so anything else is rejected before it can name a
// file.
func ValidMonthKey(month string) bool {
	if len(month) != 7 || month[4] != '-' {
		return false
	}
	for i := 0; i < len(month); i++ {
		if i == 4 {
			continue
		}
		if month[i] < '0' || month[i] > '9' {
			return false
		}
	}
	return true
}

// state returns the index's committed block count and covered bytes.
func (ix *partIndex) state() (int, int64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.blocks), ix.fileSize
}

// ReplState returns the committed replication position of every
// indexed month. Blocks recorded here are fully on disk: the index is
// only appended to after a block's bytes are written.
func (s *Store) ReplState() map[string]MonthState {
	s.imu.Lock()
	defer s.imu.Unlock()
	out := make(map[string]MonthState, len(s.indexes))
	for month, ix := range s.indexes {
		n, size := ix.state()
		out[month] = MonthState{Blocks: n, FileSize: size}
	}
	return out
}

// BlocksSince returns up to maxBlocks committed blocks of month
// starting at sequence number seq, additionally capped at maxBytes of
// compressed payload (always returning at least one block when any is
// due). maxBlocks/maxBytes <= 0 mean unlimited. A month that has no
// index returns ErrNotIndexed; a seq past the committed count returns
// ErrUnknownBlock (seq == count returns an empty slice — the caller
// is caught up).
func (s *Store) BlocksSince(month string, seq, maxBlocks int, maxBytes int64) ([]ReplBlock, error) {
	if !ValidMonthKey(month) {
		return nil, fmt.Errorf("store: bad month key %q", month)
	}
	ix := s.index(month)
	if ix == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotIndexed, month)
	}
	blocks := ix.snapshotBlocks()
	if seq < 0 || seq > len(blocks) {
		return nil, fmt.Errorf("%w: %s seq %d (have %d)", ErrUnknownBlock, month, seq, len(blocks))
	}
	var (
		out   []ReplBlock
		total int64
	)
	for i := seq; i < len(blocks); i++ {
		bm := blocks[i]
		if maxBlocks > 0 && len(out) >= maxBlocks {
			break
		}
		if maxBytes > 0 && len(out) > 0 && total+bm.Len > maxBytes {
			break
		}
		out = append(out, ReplBlock{
			Month:  month,
			Seq:    i,
			Offset: bm.Offset,
			Len:    bm.Len,
			Rows:   bm.Rows,
			Raw:    bm.Raw,
			Ver:    blockVer(bm),
		})
		total += bm.Len
	}
	return out, nil
}

// ReadBlock returns the committed compressed bytes of one block,
// re-validating the reference against the current index first.
func (s *Store) ReadBlock(ref ReplBlock) ([]byte, error) {
	if !ValidMonthKey(ref.Month) {
		return nil, fmt.Errorf("store: bad month key %q", ref.Month)
	}
	ix := s.index(ref.Month)
	if ix == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotIndexed, ref.Month)
	}
	blocks := ix.snapshotBlocks()
	if ref.Seq < 0 || ref.Seq >= len(blocks) {
		return nil, fmt.Errorf("%w: %s seq %d (have %d)", ErrUnknownBlock, ref.Month, ref.Seq, len(blocks))
	}
	bm := blocks[ref.Seq]
	if bm.Offset != ref.Offset || bm.Len != ref.Len {
		return nil, fmt.Errorf("%w: %s seq %d is @%d+%d, ref says @%d+%d",
			ErrUnknownBlock, ref.Month, ref.Seq, bm.Offset, bm.Len, ref.Offset, ref.Len)
	}
	f, err := os.Open(s.partPath(ref.Month))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	data := make([]byte, bm.Len)
	if _, err := io.ReadFull(io.NewSectionReader(f, bm.Offset, bm.Len), data); err != nil {
		return nil, fmt.Errorf("store: %s: block @%d: %w", ref.Month, bm.Offset, err)
	}
	return data, nil
}

// payloadSummary is what analyzePayload derives from a decompressed
// block payload — the ground truth ApplyBlocks checks wire metadata
// against.
type payloadSummary struct {
	rows int
	raw  int64
	ver  int
	shas map[string]int
	// zone is the payload's recomputed zone map: followers never trust
	// wire metadata, and the zone isn't even on the wire — recomputing
	// here is what keeps leader and follower sidecars byte-identical.
	zone blockZone
}

// analyzePayload decodes a block payload far enough to know its
// version, row count, JSONL-equivalent raw bytes, and per-sample row
// counts. This is the per-member core of indexPartitionFile, applied
// to one already-decompressed payload.
func analyzePayload(payload []byte, maxVer int) (payloadSummary, error) {
	sum := payloadSummary{shas: make(map[string]int)}
	sum.ver = sniffVersion(payload)
	switch {
	case sum.ver == FormatV1:
		sc := bufio.NewScanner(bytes.NewReader(payload))
		sbuf := bufpool.GetScanBuf()
		defer bufpool.PutScanBuf(sbuf)
		sc.Buffer(sbuf, 16<<20)
		var row scanRow
		var acc zoneAcc
		for sc.Scan() {
			if err := decodeScanRow(sc.Bytes(), &row); err != nil {
				return sum, err
			}
			sum.rows++
			sum.raw += int64(len(sc.Bytes()))
			sum.shas[row.SHA]++
			acc.row(&row)
		}
		if err := sc.Err(); err != nil {
			return sum, err
		}
		sum.zone = acc.z
	case sum.ver <= maxVer:
		cb, err := parseColumnarBlock(payload, wantSHA|wantFT|wantEng|wantLab)
		if err != nil {
			return sum, err
		}
		sum.rows, sum.raw = cb.rows, cb.raw
		for _, sha := range cb.sha {
			sum.shas[sha]++
		}
		if sum.zone, err = zoneOfColBlock(cb); err != nil {
			return sum, err
		}
	default:
		return sum, &FormatError{Version: sum.ver, Max: maxVer}
	}
	return sum, nil
}

// ApplyBlocks verifies and appends replicated blocks to month's
// partition, in order. It is the follower half of the sync protocol:
// each block's data must be exactly one gzip member whose decompressed
// payload agrees with the block's claimed rows, raw bytes, and format
// version, and whose sequence/offset continue the replica's committed
// state exactly — otherwise ErrReplMismatch (or a *FormatError for
// payloads from a future format) and nothing from the offending block
// on is applied; blocks before it stay applied, consistently. On
// success the month's block index, the sample membership index, the
// read cache, and the partition accounting are updated, so Gets
// served from this store see the new rows immediately; call Sync
// afterwards to persist the grown sidecar.
//
// ApplyBlocks is for replica stores: it must not race local writes,
// and it refuses months that currently have an open partition writer.
func (s *Store) ApplyBlocks(month string, blocks []ReplBlock, data [][]byte) error {
	if len(blocks) == 0 {
		return nil
	}
	if len(blocks) != len(data) {
		return fmt.Errorf("store: ApplyBlocks: %d refs, %d payloads", len(blocks), len(data))
	}
	if !ValidMonthKey(month) {
		return fmt.Errorf("store: bad month key %q", month)
	}
	s.wmu.Lock()
	_, hasWriter := s.writers[month]
	s.wmu.Unlock()
	if hasWriter {
		return fmt.Errorf("store: ApplyBlocks %s: partition has an open writer (replica stores must not be written locally)", month)
	}
	path := s.partPath(month)
	ix := s.index(month)
	if ix == nil {
		// A month this replica has never seen starts an empty index —
		// but only when there is genuinely nothing on disk; an existing
		// unindexed partition must be repaired or reindexed first.
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return fmt.Errorf("%w: %s", ErrNotIndexed, month)
		}
		ix = newPartIndex()
		s.setIndex(month, ix)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	nBlocks, size := ix.state()
	if fi.Size() != size {
		return fmt.Errorf("%w: %s partition is %d bytes, index covers %d (repair the replica)",
			ErrReplMismatch, month, fi.Size(), size)
	}
	for i, b := range blocks {
		if b.Month != month {
			return fmt.Errorf("%w: block %d is for %q, batch is for %s", ErrReplMismatch, i, b.Month, month)
		}
		if b.Seq != nBlocks || b.Offset != size {
			return fmt.Errorf("%w: %s got block seq %d @%d, replica is at seq %d @%d",
				ErrReplMismatch, month, b.Seq, b.Offset, nBlocks, size)
		}
		if b.Len != int64(len(data[i])) {
			return fmt.Errorf("%w: %s seq %d: %d data bytes, ref says %d",
				ErrReplMismatch, month, b.Seq, len(data[i]), b.Len)
		}
		sum, err := s.verifyMemberPayload(data[i], b)
		if err != nil {
			return err
		}
		if _, err := f.Write(data[i]); err != nil {
			return fmt.Errorf("store: %s seq %d: %w", month, b.Seq, err)
		}
		bm := blockMeta{Offset: b.Offset, Len: b.Len, Rows: b.Rows, Raw: b.Raw}
		if b.Ver != FormatV1 {
			bm.Ver = b.Ver
		}
		bm.setZone(sum.zone)
		ix.appendBlock(bm, sum.shas)
		for sha := range sum.shas {
			sh := s.shardFor(sha)
			sh.mu.Lock()
			set, ok := sh.months[sha]
			if !ok {
				set = make(map[string]bool)
				sh.months[sha] = set
			}
			set[month] = true
			sh.mu.Unlock()
			s.cache.invalidate(sha)
		}
		s.smu.Lock()
		st, ok := s.stats[month]
		if !ok {
			st = &PartitionStats{}
			s.stats[month] = st
		}
		st.Reports += sum.rows
		st.RawBytes += sum.raw
		st.StoredBytes += b.Len
		s.smu.Unlock()
		nBlocks++
		size += b.Len
	}
	return nil
}

// verifyMemberPayload decompresses one replicated member and checks
// the payload against the wire metadata — the verify half of
// verify-then-apply.
func (s *Store) verifyMemberPayload(data []byte, b ReplBlock) (payloadSummary, error) {
	br := bufpool.GetBufioReader(bytes.NewReader(data))
	defer bufpool.PutBufioReader(br)
	zr, err := bufpool.GetGzipReader(br)
	if err != nil {
		return payloadSummary{}, fmt.Errorf("%w: %s seq %d: not a gzip member: %v", ErrReplMismatch, b.Month, b.Seq, err)
	}
	defer bufpool.PutGzipReader(zr)
	defer zr.Close()
	zr.Multistream(false)
	payload := bufpool.GetBlockBuf()
	defer bufpool.PutBlockBuf(payload)
	for {
		if len(payload) == cap(payload) {
			payload = append(payload, 0)[:len(payload)]
		}
		n, err := zr.Read(payload[len(payload):cap(payload)])
		payload = payload[:len(payload)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return payloadSummary{}, fmt.Errorf("%w: %s seq %d: corrupt member: %v", ErrReplMismatch, b.Month, b.Seq, err)
		}
	}
	// Exactly one member: trailing bytes would smuggle unaccounted rows
	// past the index.
	if err := zr.Reset(br); err == nil {
		return payloadSummary{}, fmt.Errorf("%w: %s seq %d: trailing data after gzip member", ErrReplMismatch, b.Month, b.Seq)
	} else if !errors.Is(err, io.EOF) {
		return payloadSummary{}, fmt.Errorf("%w: %s seq %d: trailing garbage after gzip member", ErrReplMismatch, b.Month, b.Seq)
	}
	sum, err := analyzePayload(payload, s.maxFormat)
	if err != nil {
		var fe *FormatError
		if errors.As(err, &fe) {
			return payloadSummary{}, &FormatError{Path: s.partPath(b.Month), Version: fe.Version, Max: fe.Max}
		}
		return payloadSummary{}, fmt.Errorf("%w: %s seq %d: payload: %v", ErrReplMismatch, b.Month, b.Seq, err)
	}
	if sum.ver != b.Ver || sum.rows != b.Rows || sum.raw != b.Raw {
		return payloadSummary{}, fmt.Errorf("%w: %s seq %d: payload is v%d/%d rows/%d raw, ref says v%d/%d/%d",
			ErrReplMismatch, b.Month, b.Seq, sum.ver, sum.rows, sum.raw, b.Ver, b.Rows, b.Raw)
	}
	return sum, nil
}

// WriteSamplesSnapshot serializes the live sample-metadata index to w
// with exactly the bytes Close writes to samples.jsonl.gz (sorted by
// hash, deterministic gzip). Close shares this encoder; the leader
// serves it so followers converge on a byte-identical metadata
// snapshot.
func (s *Store) WriteSamplesSnapshot(w io.Writer) error {
	gz := bufpool.GetGzipWriter(w)
	defer bufpool.PutGzipWriter(gz)
	enc := json.NewEncoder(gz)
	metas := s.snapshotSamples()
	hashes := make([]string, 0, len(metas))
	for h := range metas {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		row := struct {
			Meta metaRow `json:"m"`
		}{Meta: metaFrom(metas[h])}
		if err := enc.Encode(row); err != nil {
			gz.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// StatsJSON serializes the live per-month accounting with exactly the
// bytes Close writes to stats.json.
func (s *Store) StatsJSON() ([]byte, error) {
	s.smu.Lock()
	snapshot := make(map[string]PartitionStats, len(s.stats))
	for month, st := range s.stats {
		snapshot[month] = *st
	}
	s.smu.Unlock()
	b, err := json.Marshal(snapshot)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// decodeSamplesSnapshot parses a samples.jsonl.gz byte stream in full.
func decodeSamplesSnapshot(r io.Reader) ([]report.SampleMeta, error) {
	gz, err := bufpool.GetGzipReader(r)
	if err != nil {
		return nil, fmt.Errorf("store: samples snapshot: %w", err)
	}
	defer bufpool.PutGzipReader(gz)
	defer gz.Close()
	dec := json.NewDecoder(gz)
	var out []report.SampleMeta
	for {
		var m struct {
			Meta metaRow `json:"m"`
		}
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("store: samples snapshot: %w", err)
		}
		out = append(out, m.Meta.toMeta())
	}
	return out, nil
}

// ApplySamplesSnapshot replaces the replica's sample-metadata index
// with a snapshot fetched from the leader and persists the exact
// bytes atomically as samples.jsonl.gz. The snapshot is fully parsed
// before anything is applied.
func (s *Store) ApplySamplesSnapshot(data []byte) error {
	rows, err := decodeSamplesSnapshot(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.samples = make(map[string]report.SampleMeta)
		sh.mu.Unlock()
	}
	for _, m := range rows {
		sh := s.shardFor(m.SHA256)
		sh.mu.Lock()
		sh.samples[m.SHA256] = m
		sh.mu.Unlock()
	}
	return atomicWriteFile(filepath.Join(s.dir, "samples.jsonl.gz"), data)
}

// ApplyStatsSnapshot replaces the replica's per-month accounting with
// the leader's and persists the exact bytes atomically as stats.json.
func (s *Store) ApplyStatsSnapshot(data []byte) error {
	var saved map[string]PartitionStats
	if err := json.Unmarshal(data, &saved); err != nil {
		return fmt.Errorf("store: stats snapshot: %w", err)
	}
	s.smu.Lock()
	s.stats = make(map[string]*PartitionStats, len(saved))
	for month, st := range saved {
		cp := st
		s.stats[month] = &cp
	}
	s.smu.Unlock()
	return atomicWriteFile(filepath.Join(s.dir, "stats.json"), data)
}

// atomicWriteFile writes data via a temp file + rename so readers
// never observe a torn state file.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// RepairStats summarizes one RepairDir pass.
type RepairStats struct {
	// Repaired lists months whose sidecar was rebuilt, sorted.
	Repaired []string
	// TruncatedBytes counts torn partition-tail bytes dropped.
	TruncatedBytes int64
}

// RepairDir restores a store directory to a durable, indexed state
// after a crash: every month whose sidecar does not cleanly cover its
// partition is re-walked member by member, the partition is truncated
// at the first unreadable byte (a torn tail from an interrupted
// append), and a fresh sidecar is written. Run it before Open on a
// replica so the follower's cursor — derived from the sidecars —
// points at its last durable block boundary; everything truncated is
// simply re-pulled from the leader. Months in a format newer than
// this build are an error, never a truncation.
func RepairDir(dir string) (RepairStats, error) {
	var rs RepairStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return rs, nil
		}
		return rs, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "scans-") || !strings.HasSuffix(name, ".jsonl.gz") {
			continue
		}
		month := strings.TrimSuffix(strings.TrimPrefix(name, "scans-"), ".jsonl.gz")
		path := filepath.Join(dir, name)
		fi, err := os.Stat(path)
		if err != nil {
			return rs, fmt.Errorf("store: %w", err)
		}
		if _, ok, err := loadSidecar(dir, month, fi.Size(), formatMax); err != nil {
			return rs, err
		} else if ok {
			continue // sidecar cleanly covers the partition
		}
		ix, goodEnd, err := tolerantIndexPartition(path)
		if err != nil {
			return rs, err
		}
		if goodEnd < fi.Size() {
			if err := os.Truncate(path, goodEnd); err != nil {
				return rs, fmt.Errorf("store: repair %s: %w", month, err)
			}
			rs.TruncatedBytes += fi.Size() - goodEnd
		}
		ix.dirty = true
		if err := ix.writeSidecar(dir, month); err != nil {
			return rs, err
		}
		rs.Repaired = append(rs.Repaired, month)
	}
	sort.Strings(rs.Repaired)
	return rs, nil
}

// tolerantIndexPartition walks a partition's gzip members like
// indexPartitionFile, but stops at the first undecodable member and
// reports the last good member boundary instead of failing — the
// repair primitive for torn tails. A member in a future format is
// still a hard error: the data is intact, this build is just too old.
func tolerantIndexPartition(path string) (*partIndex, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return newPartIndex(), 0, nil
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	cr := &countingByteReader{r: bufio.NewReaderSize(f, 1<<20)}
	ix := newPartIndex()
	zr, err := gzip.NewReader(cr)
	if err != nil {
		// Not even a whole gzip header: the entire file is torn.
		return ix, 0, nil
	}
	defer zr.Close()
	var start int64
	for {
		zr.Multistream(false)
		payload, err := io.ReadAll(zr)
		if err != nil {
			return ix, start, nil // torn member: stop at the last boundary
		}
		sum, err := analyzePayload(payload, formatMax)
		if err != nil {
			var fe *FormatError
			if errors.As(err, &fe) {
				return nil, 0, &FormatError{Path: path, Version: fe.Version, Max: fe.Max}
			}
			return ix, start, nil // undecodable payload: treat as torn
		}
		end := cr.n
		if sum.rows > 0 || end > start {
			bm := blockMeta{Offset: start, Len: end - start, Rows: sum.rows, Raw: sum.raw}
			if sum.ver != FormatV1 {
				bm.Ver = sum.ver
			}
			bm.setZone(sum.zone)
			ix.appendBlock(bm, sum.shas)
		}
		start = end
		if err := zr.Reset(cr); err != nil {
			// EOF is the clean end; anything else is a torn next header.
			return ix, start, nil
		}
	}
}
