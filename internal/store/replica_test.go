package store

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildReplStore fills dir with a closed store spanning two months and
// many small blocks (tiny block size forces several members per
// partition), returning the sample hashes written.
func buildReplStore(t *testing.T, dir string, format int) []string {
	t.Helper()
	s, err := Open(dir, WithFormat(format), WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	var shas []string
	for i := 0; i < 40; i++ {
		sha := fmt.Sprintf("repl%03d", i)
		shas = append(shas, sha)
		at := t0.Add(time.Duration(i) * time.Hour)
		if i%2 == 1 {
			at = at.AddDate(0, 1, 0) // second month
		}
		if err := s.Put(envelope(sha, at, i%7)); err != nil {
			t.Fatal(err)
		}
		if i == 17 {
			// A mid-campaign Sync cuts members at a different cadence than
			// the final Flush, exercising multi-member replication.
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return shas
}

// dirFileHashes maps each regular file in dir to its SHA-256.
func dirFileHashes(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(b)
		out[e.Name()] = hex.EncodeToString(sum[:])
	}
	return out
}

// replicate pulls every committed block from leader into follower via
// the exported replication API, in small batches, then applies the
// state snapshots and persists sidecars.
func replicate(t *testing.T, leader, follower *Store) {
	t.Helper()
	state := leader.ReplState()
	months := make([]string, 0, len(state))
	for m := range state {
		months = append(months, m)
	}
	have := follower.ReplState()
	for _, month := range months {
		seq := have[month].Blocks
		for {
			refs, err := leader.BlocksSince(month, seq, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(refs) == 0 {
				break
			}
			data := make([][]byte, len(refs))
			for i, ref := range refs {
				if data[i], err = leader.ReadBlock(ref); err != nil {
					t.Fatal(err)
				}
			}
			if err := follower.ApplyBlocks(month, refs, data); err != nil {
				t.Fatal(err)
			}
			seq = refs[len(refs)-1].Seq + 1
		}
	}
	if err := follower.Sync(); err != nil {
		t.Fatal(err)
	}
	var samples bytes.Buffer
	if err := leader.WriteSamplesSnapshot(&samples); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplySamplesSnapshot(samples.Bytes()); err != nil {
		t.Fatal(err)
	}
	stats, err := leader.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyStatsSnapshot(stats); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationRoundTripParity(t *testing.T) {
	for _, format := range []int{FormatV1, FormatV2} {
		t.Run(fmt.Sprintf("v%d", format), func(t *testing.T) {
			leaderDir := t.TempDir()
			shas := buildReplStore(t, leaderDir, format)
			leader, err := Open(leaderDir)
			if err != nil {
				t.Fatal(err)
			}
			followerDir := t.TempDir()
			follower, err := Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			replicate(t, leader, follower)

			want := dirFileHashes(t, leaderDir)
			got := dirFileHashes(t, followerDir)
			if len(want) != len(got) {
				t.Fatalf("file sets differ: leader %v follower %v", want, got)
			}
			for name, h := range want {
				if got[name] != h {
					t.Errorf("%s: leader %s follower %s", name, h, got[name])
				}
			}

			// The replica serves reads immediately, without reopening.
			for _, sha := range shas {
				lh, err := leader.Get(sha)
				if err != nil {
					t.Fatal(err)
				}
				fh, err := follower.Get(sha)
				if err != nil {
					t.Fatalf("follower Get(%s): %v", sha, err)
				}
				if len(lh.Reports) != len(fh.Reports) {
					t.Fatalf("%s: leader %d reports, follower %d", sha, len(lh.Reports), len(fh.Reports))
				}
			}

			// And a reopened replica is a fully indexed, verifiable store.
			reopened, err := Open(followerDir)
			if err != nil {
				t.Fatal(err)
			}
			if !reopened.Indexed() {
				t.Fatal("reopened follower is not indexed")
			}
			if _, err := reopened.Verify(); err != nil {
				t.Fatalf("reopened follower Verify: %v", err)
			}
		})
	}
}

func TestReplicationIncrementalCatchUp(t *testing.T) {
	leaderDir := t.TempDir()
	leader, err := Open(leaderDir, WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := leader.Put(envelope(fmt.Sprintf("inc%03d", i), t0.Add(time.Duration(i)*time.Hour), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	replicate(t, leader, follower)
	first := follower.ReplState()

	// Leader keeps writing; the follower catches up from its cursor.
	for i := 20; i < 40; i++ {
		if err := leader.Put(envelope(fmt.Sprintf("inc%03d", i), t0.Add(time.Duration(i)*time.Hour), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	replicate(t, leader, follower)
	second := follower.ReplState()

	month := MonthKey(t0)
	if second[month].Blocks <= first[month].Blocks {
		t.Fatalf("no catch-up progress: %+v then %+v", first[month], second[month])
	}
	if got, want := second[month], leader.ReplState()[month]; got != want {
		t.Fatalf("follower at %+v, leader at %+v", got, want)
	}
}

// gzipMember compresses payload as one closed gzip member.
func gzipMember(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestApplyBlocksRejectsMismatches(t *testing.T) {
	leaderDir := t.TempDir()
	buildReplStore(t, leaderDir, FormatV2)
	leader, err := Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	month := MonthKey(t0)
	refs, err := leader.BlocksSince(month, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 2 {
		t.Fatalf("need at least 2 blocks, have %d", len(refs))
	}
	block0, err := leader.ReadBlock(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	block1, err := leader.ReadBlock(refs[1])
	if err != nil {
		t.Fatal(err)
	}

	freshFollower := func(t *testing.T) *Store {
		f, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	cases := []struct {
		name    string
		refs    func() []ReplBlock
		data    func() [][]byte
		wantErr error
	}{
		{
			name: "out of order seq",
			refs: func() []ReplBlock { return []ReplBlock{refs[1]} },
			data: func() [][]byte { return [][]byte{block1} },
		},
		{
			name: "wrong offset",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Offset += 7
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{block0} },
		},
		{
			name: "inflated row count",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Rows++
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{block0} },
		},
		{
			name: "wrong raw bytes",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Raw += 100
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{block0} },
		},
		{
			name: "lying version tag",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Ver = FormatV1
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{block0} },
		},
		{
			name: "truncated member",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Len -= 3
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{block0[:len(block0)-3]} },
		},
		{
			name: "trailing second member",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Len = int64(len(block0) + len(block1))
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{append(append([]byte(nil), block0...), block1...)} },
		},
		{
			name: "not gzip at all",
			refs: func() []ReplBlock {
				r := refs[0]
				r.Len = 8
				return []ReplBlock{r}
			},
			data: func() [][]byte { return [][]byte{[]byte("plainrow")} },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := freshFollower(t)
			err := f.ApplyBlocks(month, tc.refs(), tc.data())
			if !errors.Is(err, ErrReplMismatch) {
				t.Fatalf("got %v, want ErrReplMismatch", err)
			}
			// Nothing may have landed.
			if st := f.ReplState(); len(st) != 0 && st[month].Blocks != 0 {
				t.Fatalf("rejected block left state %+v", st)
			}
		})
	}

	t.Run("future format payload", func(t *testing.T) {
		f := freshFollower(t)
		member := gzipMember(t, []byte(colMagic+"\x09future-block"))
		ref := ReplBlock{Month: month, Seq: 0, Offset: 0, Len: int64(len(member)), Rows: 1, Raw: 10, Ver: 9}
		err := f.ApplyBlocks(month, []ReplBlock{ref}, [][]byte{member})
		if !errors.Is(err, ErrUnsupportedFormat) {
			t.Fatalf("got %v, want ErrUnsupportedFormat", err)
		}
	})

	t.Run("bad month keys", func(t *testing.T) {
		f := freshFollower(t)
		for _, bad := range []string{"", "2021", "2021-5", "20-21-05", "../../21", "2021-0x", "2021/05"} {
			ref := refs[0]
			ref.Month = bad
			if err := f.ApplyBlocks(bad, []ReplBlock{ref}, [][]byte{block0}); err == nil {
				t.Errorf("month %q accepted", bad)
			}
		}
	})

	t.Run("replay after apply", func(t *testing.T) {
		f := freshFollower(t)
		if err := f.ApplyBlocks(month, []ReplBlock{refs[0]}, [][]byte{block0}); err != nil {
			t.Fatal(err)
		}
		if err := f.ApplyBlocks(month, []ReplBlock{refs[0]}, [][]byte{block0}); !errors.Is(err, ErrReplMismatch) {
			t.Fatalf("replay got %v, want ErrReplMismatch", err)
		}
		// The next block still applies cleanly after the rejected replay.
		if err := f.ApplyBlocks(month, []ReplBlock{refs[1]}, [][]byte{block1}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBlocksSinceBounds(t *testing.T) {
	dir := t.TempDir()
	buildReplStore(t, dir, FormatV2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	month := MonthKey(t0)
	all, err := s.BlocksSince(month, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no blocks")
	}
	// seq == count: caught up, empty, no error.
	none, err := s.BlocksSince(month, len(all), 0, 0)
	if err != nil || len(none) != 0 {
		t.Fatalf("caught-up query: %v, %d blocks", err, len(none))
	}
	// seq past the end and negative: typed error.
	if _, err := s.BlocksSince(month, len(all)+1, 0, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("future seq: %v", err)
	}
	if _, err := s.BlocksSince(month, -1, 0, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("negative seq: %v", err)
	}
	// Unknown month: ErrNotIndexed.
	if _, err := s.BlocksSince("1999-01", 0, 0, 0); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("unknown month: %v", err)
	}
	// maxBlocks caps the batch.
	if got, err := s.BlocksSince(month, 0, 1, 0); err != nil || len(got) != 1 {
		t.Fatalf("maxBlocks=1: %v, %d blocks", err, len(got))
	}
	// maxBytes always yields at least one block.
	if got, err := s.BlocksSince(month, 0, 0, 1); err != nil || len(got) != 1 {
		t.Fatalf("maxBytes=1: %v, %d blocks", err, len(got))
	}
	// Stale ReadBlock ref is rejected.
	ref := all[0]
	ref.Len++
	if _, err := s.ReadBlock(ref); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("stale ref: %v", err)
	}
}

func TestSnapshotEncodersMatchClose(t *testing.T) {
	dir := t.TempDir()
	buildReplStore(t, dir, FormatV2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSamplesSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "samples.jsonl.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), onDisk) {
		t.Error("WriteSamplesSnapshot bytes differ from Close's samples.jsonl.gz")
	}
	stats, err := s.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	statsDisk, err := os.ReadFile(filepath.Join(dir, "stats.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stats, statsDisk) {
		t.Errorf("StatsJSON differs from Close's stats.json:\n%s\nvs\n%s", stats, statsDisk)
	}
}

func TestRepairDirTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	buildReplStore(t, dir, FormatV2)
	month := MonthKey(t0)
	part := filepath.Join(dir, "scans-"+month+".jsonl.gz")
	fi, err := os.Stat(part)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage tail past the last committed
	// member (the sidecar no longer covers the file).
	f, err := os.OpenFile(part, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte("torn-partial-member-bytes")
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rs, err := RepairDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Repaired) != 1 || rs.Repaired[0] != month {
		t.Fatalf("Repaired = %v, want [%s]", rs.Repaired, month)
	}
	if rs.TruncatedBytes != int64(len(garbage)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rs.TruncatedBytes, len(garbage))
	}
	if fi2, err := os.Stat(part); err != nil || fi2.Size() != fi.Size() {
		t.Fatalf("partition size %d after repair, want %d (err %v)", fi2.Size(), fi.Size(), err)
	}
	// The repaired store opens fully indexed and verifies clean.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("repaired store not indexed")
	}
	if _, err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// A second pass is a no-op: everything already covered.
	rs2, err := RepairDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Repaired) != 0 {
		t.Fatalf("second repair touched %v", rs2.Repaired)
	}
}

func TestRepairDirTruncatesMidMember(t *testing.T) {
	dir := t.TempDir()
	buildReplStore(t, dir, FormatV1)
	month := MonthKey(t0)
	// The pristine sidecar tells us the real member boundaries.
	part := filepath.Join(dir, "scans-"+month+".jsonl.gz")
	fi, err := os.Stat(part)
	if err != nil {
		t.Fatal(err)
	}
	ix, ok, err := loadSidecar(dir, month, fi.Size(), formatMax)
	if err != nil || !ok {
		t.Fatalf("sidecar: ok=%v err=%v", ok, err)
	}
	blocks := ix.snapshotBlocks()
	if len(blocks) < 2 {
		t.Fatalf("need >= 2 blocks, have %d", len(blocks))
	}
	// Cut the file in the middle of the last member.
	last := blocks[len(blocks)-1]
	cut := last.Offset + last.Len/2
	if err := os.Truncate(part, cut); err != nil {
		t.Fatal(err)
	}
	rs, err := RepairDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Repaired) != 1 {
		t.Fatalf("Repaired = %v", rs.Repaired)
	}
	fi2, err := os.Stat(part)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != last.Offset {
		t.Fatalf("repaired to %d, want last good boundary %d", fi2.Size(), last.Offset)
	}
	if rs.TruncatedBytes != cut-last.Offset {
		t.Fatalf("TruncatedBytes = %d, want %d", rs.TruncatedBytes, cut-last.Offset)
	}
	// After repair the replica can re-pull the dropped block and return
	// to exact parity: the rebuilt sidecar covers [0, last.Offset).
	ix2, ok, err := loadSidecar(dir, month, fi2.Size(), formatMax)
	if err != nil || !ok {
		t.Fatalf("rebuilt sidecar: ok=%v err=%v", ok, err)
	}
	if got := ix2.snapshotBlocks(); len(got) != len(blocks)-1 {
		t.Fatalf("rebuilt index has %d blocks, want %d", len(got), len(blocks)-1)
	}
}

func TestValidMonthKey(t *testing.T) {
	valid := []string{"2021-05", "1999-12", "0000-00"}
	invalid := []string{"", "2021", "2021-5", "2021/05", "2021-055", "x021-05", "2021-0x", "../1-05"}
	for _, m := range valid {
		if !ValidMonthKey(m) {
			t.Errorf("ValidMonthKey(%q) = false", m)
		}
	}
	for _, m := range invalid {
		if ValidMonthKey(m) {
			t.Errorf("ValidMonthKey(%q) = true", m)
		}
	}
}
