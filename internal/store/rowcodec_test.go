package store

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"vtdynamics/internal/report"
)

// rowScanReport builds a ScanReport from fuzz primitives, covering the
// shapes the row codec must normalize: invalid UTF-8, empty labels,
// zero times, out-of-range verdict ints.
func rowScanReport(sha, ftype string, at int64, rank, tot int,
	eng1, lab1 string, v1 int8, sv1 int,
	eng2, lab2 string, v2 int8, sv2 int) *report.ScanReport {
	return &report.ScanReport{
		SHA256:       sha,
		FileType:     ftype,
		AnalysisDate: fromUnix(at),
		AVRank:       rank,
		EnginesTotal: tot,
		Results: []report.EngineResult{
			{Engine: eng1, Verdict: report.Verdict(v1), Label: lab1, SignatureVersion: sv1},
			{Engine: eng2, Verdict: report.Verdict(v2), Label: lab2, SignatureVersion: sv2},
		},
	}
}

var rowCodecSeeds = []*report.ScanReport{
	{},
	rowScanReport("aa11", "Win32 EXE", 1620000000, 3, 70,
		"BitDefender", "Trojan.GenericKD", 1, 41, "Avast", "", 0, 7),
	rowScanReport("sha\xffbad", "pdf<&>\u2028", 0, -1, 0,
		"Eng\xc3", "lab\xe2\x28el", 5, 1<<40, "b\"q\\s", "tab\tnl\n", -9, -1<<40),
}

// TestAppendScanRowMatchesReflect pins the tentpole's byte-identity
// claim for the row encoder on fixed seeds (the fuzzer widens it).
func TestAppendScanRowMatchesReflect(t *testing.T) {
	for i, scan := range rowCodecSeeds {
		want, err := json.Marshal(rowFromScan(scan))
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		got := appendScanRow(nil, scan)
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d:\n fast %s\n slow %s", i, got, want)
		}
	}
}

// FuzzRowCodecDifferential asserts the hand-rolled row encoder and
// decoder round-trip byte-equal with encoding/json on arbitrary rows,
// including invalid-UTF-8 and zero-time edge cases from PR 1.
func FuzzRowCodecDifferential(f *testing.F) {
	f.Add("aa11", "Win32 EXE", int64(1620000000), 3, 70,
		"BitDefender", "Trojan.GenericKD", int8(1), 41, "Avast", "", int8(0), 7)
	f.Add("sha\xffbad", "pdf<&>\u2028", int64(0), -1, 0,
		"Eng\xc3", "lab\xe2\x28el", int8(5), 1<<40, "b\"q\\s", "tab\tnl\n", int8(-9), -1<<40)
	f.Fuzz(func(t *testing.T, sha, ftype string, at int64, rank, tot int,
		eng1, lab1 string, v1 int8, sv1 int,
		eng2, lab2 string, v2 int8, sv2 int) {
		scan := rowScanReport(sha, ftype, at, rank, tot, eng1, lab1, v1, sv1, eng2, lab2, v2, sv2)
		want, err := json.Marshal(rowFromScan(scan))
		if err != nil {
			t.Skip()
		}
		got := appendScanRow(nil, scan)
		if !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch:\n fast %s\n slow %s", got, want)
		}
		var fast, slow scanRow
		if err := decodeScanRow(got, &fast); err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, got)
		}
		if err := json.Unmarshal(want, &slow); err != nil {
			t.Fatalf("reflective decode failed: %v", err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("decode mismatch on %s:\n fast %+v\n slow %+v", got, fast, slow)
		}
	})
}

// FuzzDecodeScanRowDifferential feeds arbitrary bytes to the
// fast-path-with-fallback decoder and to encoding/json alone; accept
// or reject and the decoded value must match, including when the fast
// attempt partially fills a reused row before bailing out.
func FuzzDecodeScanRowDifferential(f *testing.F) {
	for _, scan := range rowCodecSeeds {
		f.Add(appendScanRow(nil, scan))
	}
	f.Add([]byte(`{"s":"a","S":"b"}`))                 // case-variant key
	f.Add([]byte(`{"t":1e3}`))                         // float into int64
	f.Add([]byte(`{"r":[{"v":200}]}`))                 // int8 overflow
	f.Add([]byte(`{"r":[{"e":"a"}],"r":[{"l":"x"}]}`)) // duplicate r: element merge
	f.Add([]byte(`{"s":"a","s":"b"}`))                 // duplicate scalar, last wins
	f.Add([]byte(`{"r":[{"e":null}]}`))                // null member
	f.Add([]byte(`{"s":"a"} junk`))                    // trailing junk
	f.Add([]byte(`{"r":[{"e":"\ud800"}]}`))            // lone surrogate
	f.Add([]byte("{\"s\":\"caf\xc3\"}"))               // truncated UTF-8 in string
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Pre-dirty the reused row to prove reset correctness.
		fast := scanRow{SHA: "stale", Res: []rowRes{{E: "stale", V: 9, S: 9, L: "stale"}}}
		errFast := decodeScanRow(raw, &fast)
		var slow scanRow
		errSlow := json.Unmarshal(raw, &slow)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("error mismatch on %q:\n fast: %v\n slow: %v", raw, errFast, errSlow)
		}
		if errFast != nil {
			return
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("decode mismatch on %q:\n fast %+v\n slow %+v", raw, fast, slow)
		}
	})
}

func TestRowSHAPreFilter(t *testing.T) {
	line := appendScanRow(nil, rowCodecSeeds[1])
	sha, ok := rowSHA(line)
	if !ok || string(sha) != "aa11" {
		t.Fatalf("rowSHA = %q, %v", sha, ok)
	}
	if _, ok := rowSHA([]byte(`{"f":"x","s":"a"}`)); ok {
		t.Fatal("rowSHA accepted a line not led by the s key")
	}
	if _, ok := rowSHA([]byte(`not json`)); ok {
		t.Fatal("rowSHA accepted junk")
	}
}

func BenchmarkRowEncode(b *testing.B) {
	scan := rowCodecSeeds[1]
	buf := appendScanRow(nil, scan)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendScanRow(buf[:0], scan)
	}
}

func BenchmarkRowEncodeReflect(b *testing.B) {
	scan := rowCodecSeeds[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(rowFromScan(scan)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowDecode(b *testing.B) {
	raw := appendScanRow(nil, rowCodecSeeds[1])
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	var row scanRow
	for i := 0; i < b.N; i++ {
		if err := decodeScanRow(raw, &row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowDecodeReflect(b *testing.B) {
	raw := appendScanRow(nil, rowCodecSeeds[1])
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var row scanRow
		if err := json.Unmarshal(raw, &row); err != nil {
			b.Fatal(err)
		}
	}
}
