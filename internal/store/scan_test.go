package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// scanVocab is the value pool the scan-test generator draws from —
// small enough that predicates hit and miss both ways.
var (
	scanFTs  = []string{"Win32 EXE", "PDF", "Android", "ELF", ""}
	scanEngs = []string{"Avast", "BitDefender", "Kaspersky", "McAfee", "Sophos"}
	scanLabs = []string{"Trojan.Gen", "Adware.X", "not-a-virus:HEUR", ""}
)

// genScanEnvelopes builds a deterministic varied dataset: n scans over
// nSHA samples, timestamps spread over ~3 months (plus the occasional
// zero timestamp, which files under the "0001-01" month), verdicts and
// labels mixed so every predicate has matches and misses.
func genScanEnvelopes(rng *rand.Rand, n, nSHA int) []report.Envelope {
	envs := make([]report.Envelope, n)
	for i := range envs {
		sha := fmt.Sprintf("scan%03d", rng.Intn(nSHA))
		var at time.Time
		if rng.Intn(16) > 0 { // occasionally: no analysis date
			at = t0.Add(time.Duration(rng.Intn(90*24)) * time.Hour)
		}
		nres := rng.Intn(4)
		results := make([]report.EngineResult, 0, nres)
		for j := 0; j < nres; j++ {
			results = append(results, report.EngineResult{
				Engine:           scanEngs[rng.Intn(len(scanEngs))],
				Verdict:          report.Verdict(rng.Intn(3) - 1),
				Label:            scanLabs[rng.Intn(len(scanLabs))],
				SignatureVersion: rng.Intn(100),
			})
		}
		ft := scanFTs[rng.Intn(len(scanFTs))]
		envs[i] = report.Envelope{
			Meta: report.SampleMeta{SHA256: sha, FileType: ft, Size: 1, TimesSubmitted: 1},
			Scan: report.ScanReport{
				SHA256:       sha,
				FileType:     ft,
				AnalysisDate: at,
				AVRank:       report.ComputeAVRank(results),
				EnginesTotal: report.CountActive(results),
				Results:      results,
			},
		}
	}
	return envs
}

// buildScanStore writes envs into a fresh store, flushing mid-stream
// so partitions hold several blocks.
func buildScanStore(t testing.TB, envs []report.Envelope, opts ...Option) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, env := range envs {
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

// rowsAgg collects every fed row as a canonical line — the
// order-insensitive comparison target for the differential tests.
type rowsAgg struct{ lines []string }

type rowsPartial struct{ lines []string }

func (p *rowsPartial) Row(rv *RowView) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d|%s|%d|%d", rv.Month, rv.SHA, rv.At, rv.FT, rv.Rank, rv.Tot)
	for _, r := range rv.Res {
		fmt.Fprintf(&b, "|%s,%s,%d,%d", r.Eng, r.Lab, r.Sig, r.Ver)
	}
	p.lines = append(p.lines, b.String())
	return nil
}

func (a *rowsAgg) NewPartial() Partial { return &rowsPartial{} }

func (a *rowsAgg) Merge(p Partial) error {
	a.lines = append(a.lines, p.(*rowsPartial).lines...)
	return nil
}

// naiveScanLines is the reference implementation: IterAll every row,
// apply the query predicates on the materialized report, render the
// projected columns the same way rowsPartial does.
func naiveScanLines(t testing.TB, s *Store, q Query) []string {
	t.Helper()
	cq := compileQuery(q)
	var mu chan struct{} // IterAll(1, ...) is sequential; no lock needed
	_ = mu
	var lines []string
	err := s.IterAll(1, func(month string, r *report.ScanReport) error {
		row := rowFromScan(r)
		if !cq.matchScanRow(&row) {
			return nil
		}
		var b strings.Builder
		var sha, ft string
		var at int64
		var rank, tot int
		if q.Cols&ColSHA != 0 {
			sha = row.SHA
		}
		if q.Cols&ColTime != 0 {
			at = row.At
		}
		if q.Cols&ColFT != 0 {
			ft = row.FT
		}
		if q.Cols&ColRank != 0 {
			rank = row.Rank
		}
		if q.Cols&ColTot != 0 {
			tot = row.Tot
		}
		fmt.Fprintf(&b, "%s|%s|%d|%s|%d|%d", month, sha, at, ft, rank, tot)
		if q.Cols&ColResults != 0 {
			for _, rr := range row.Res {
				fmt.Fprintf(&b, "|%s,%s,%d,%d", rr.E, rr.L, rr.S, rr.V)
			}
		}
		lines = append(lines, b.String())
		return nil
	})
	if err != nil {
		t.Fatalf("naive scan: %v", err)
	}
	sort.Strings(lines)
	return lines
}

// checkScanAgainstNaive runs one query both ways and compares the
// projected rows plus the stats identity.
func checkScanAgainstNaive(t testing.TB, s *Store, q Query) ScanStats {
	t.Helper()
	var got rowsAgg
	stats, err := s.Scan(q, &got)
	if err != nil {
		t.Fatalf("Scan(%+v): %v", q, err)
	}
	sort.Strings(got.lines)
	want := naiveScanLines(t, s, q)
	if !reflect.DeepEqual(got.lines, want) {
		t.Fatalf("Scan(%+v) diverges from naive filter:\n got %d rows %v\nwant %d rows %v",
			q, len(got.lines), head(got.lines), len(want), head(want))
	}
	if int64(len(got.lines)) != stats.Rows {
		t.Fatalf("stats.Rows = %d, kernel saw %d", stats.Rows, len(got.lines))
	}
	if stats.PrunedTotal()+stats.Scanned != stats.Blocks {
		t.Fatalf("pruning identity broken: pruned %d + scanned %d != blocks %d (%+v)",
			stats.PrunedTotal(), stats.Scanned, stats.Blocks, stats.Pruned)
	}
	return stats
}

func head(lines []string) []string {
	if len(lines) > 4 {
		return lines[:4]
	}
	return lines
}

// scanTestQueries is the table both the unit test and the CLI-facing
// paths lean on: every predicate alone, combined, and with varying
// projections and worker counts.
func scanTestQueries() []Query {
	since := t0.Add(20 * 24 * time.Hour).Unix()
	until := t0.Add(55 * 24 * time.Hour).Unix()
	return []Query{
		{Cols: ColAll},
		{Cols: ColAll, Workers: 1},
		{Cols: ColFT},
		{Cols: ColSHA | ColTime},
		{Since: since, Cols: ColAll},
		{Until: until, Cols: ColAll},
		{Since: since, Until: until, Cols: ColTime},
		{FileTypes: []string{"PDF", "ELF"}, Cols: ColAll},
		{FileTypes: []string{"no-such-type"}, Cols: ColAll},
		{Engines: []string{"Kaspersky"}, Cols: ColAll},
		{Engines: []string{"NoSuchEngine"}, Cols: ColFT},
		{Labels: []string{"Adware.X"}, Cols: ColAll},
		{MaliciousOnly: true, Cols: ColAll},
		{MaliciousOnly: true, Cols: ColSHA},
		{SHAs: []string{"scan001", "scan007"}, Cols: ColAll},
		{SHAs: []string{"absent"}, Cols: ColAll},
		{Since: since, FileTypes: []string{"Win32 EXE"}, Engines: []string{"Avast"},
			Labels: []string{"Trojan.Gen"}, MaliciousOnly: true, Cols: ColAll, Workers: 3},
		{Cols: 0}, // pure count: no projection at all
	}
}

func TestScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	envs := genScanEnvelopes(rng, 160, 24)
	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"v2", []Option{WithBlockSize(1 << 10)}},
		{"v1", []Option{WithFormat(FormatV1), WithBlockSize(1 << 10)}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			s := buildScanStore(t, envs, cfg.opts...)
			defer s.Close()
			for i, q := range scanTestQueries() {
				stats := checkScanAgainstNaive(t, s, q)
				if i == 0 && stats.Blocks == 0 {
					t.Fatal("no blocks considered; store built wrong")
				}
			}
		})
	}
}

// TestScanPrunes checks the zone maps actually fire: a time window
// before the dataset prunes every block by time, an unknown file type
// prunes by fingerprint, and MaliciousOnly over a benign-only store
// prunes by verdict summary.
func TestScanPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	envs := genScanEnvelopes(rng, 120, 16)
	s := buildScanStore(t, envs, WithBlockSize(1<<10))
	defer s.Close()

	// A window after the whole dataset prunes everything by time —
	// including the zero-timestamp month, whose zone is [0, 0]. (A
	// window *before* the dataset would not: rows without an analysis
	// date match any Until-only query by design.)
	var c CountAgg
	stats, err := s.Scan(Query{Since: t0.Add(200 * 24 * time.Hour).Unix()}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 0 || stats.Pruned[PruneTime] != stats.Blocks {
		t.Fatalf("post-dataset window: rows %d, time-pruned %d of %d blocks", c.N, stats.Pruned[PruneTime], stats.Blocks)
	}
	if stats.CompressedBytes != 0 {
		t.Fatalf("fully pruned scan still read %d compressed bytes", stats.CompressedBytes)
	}

	stats = checkScanAgainstNaive(t, s, Query{FileTypes: []string{"totally-absent-filetype-zq"}, Cols: ColAll})
	if stats.Pruned[PruneFileType] == 0 {
		t.Fatalf("unknown file type pruned nothing: %+v", stats.Pruned)
	}

	// A benign-only store: every block's Mal summary is 0.
	benign := genScanEnvelopes(rng, 40, 8)
	for i := range benign {
		for j := range benign[i].Scan.Results {
			benign[i].Scan.Results[j].Verdict = report.Benign
		}
		benign[i].Scan.AVRank = 0
		benign[i].Scan.EnginesTotal = report.CountActive(benign[i].Scan.Results)
	}
	sb := buildScanStore(t, benign, WithBlockSize(1<<10))
	defer sb.Close()
	var cb CountAgg
	stats, err = sb.Scan(Query{MaliciousOnly: true}, &cb)
	if err != nil {
		t.Fatal(err)
	}
	if cb.N != 0 || stats.Pruned[PruneVerdict] != stats.Blocks {
		t.Fatalf("benign store: rows %d, verdict-pruned %d of %d blocks", cb.N, stats.Pruned[PruneVerdict], stats.Blocks)
	}
}

// TestZoneEdgeCases covers the degenerate block shapes pruning must
// stay conservative on.
func TestZoneEdgeCases(t *testing.T) {
	t.Run("empty-block", func(t *testing.T) {
		// An empty block entry (replication of an empty member) is
		// pruned unconditionally, under its own reason.
		cq := compileQuery(Query{})
		bm := blockMeta{Rows: 0}
		if got := cq.prunesBlock(&bm, 0, 0, 0, false, nil); got != PruneEmpty {
			t.Fatalf("empty block pruned as %q, want %q", got, PruneEmpty)
		}
	})

	t.Run("single-row-block", func(t *testing.T) {
		// One row per block: zone bounds collapse to a point; an exact
		// [at, at] window must still scan and match.
		env := envelope("solo", t0, 2)
		s := buildScanStore(t, []report.Envelope{env})
		defer s.Close()
		at := t0.Unix()
		stats := checkScanAgainstNaive(t, s, Query{Since: at, Until: at, Cols: ColAll})
		if stats.Rows != 1 {
			t.Fatalf("point window missed the row: %+v", stats)
		}
		// Just outside the point on either side prunes the block.
		for _, q := range []Query{{Since: at + 1}, {Until: at - 1}} {
			var c CountAgg
			st, err := s.Scan(q, &c)
			if err != nil {
				t.Fatal(err)
			}
			if c.N != 0 || st.Pruned[PruneTime] == 0 {
				t.Fatalf("off-by-one window %+v: rows %d pruned %+v", q, c.N, st.Pruned)
			}
		}
	})

	t.Run("fingerprint-false-positive", func(t *testing.T) {
		// A value absent from the store whose 64-bit fingerprint bit
		// collides with a present value must force a scan (which finds
		// nothing) — never a skip based on a hash coincidence, and never
		// phantom rows.
		env := envelope("fp", t0, 1) // file type "Win32 EXE"
		s := buildScanStore(t, []report.Envelope{env})
		defer s.Close()
		collide := ""
		for i := 0; ; i++ {
			cand := fmt.Sprintf("ft-collide-%d", i)
			if cand != "Win32 EXE" && zoneBit(cand) == zoneBit("Win32 EXE") {
				collide = cand
				break
			}
		}
		stats := checkScanAgainstNaive(t, s, Query{FileTypes: []string{collide}, Cols: ColAll})
		if stats.Rows != 0 {
			t.Fatalf("colliding file type matched %d rows", stats.Rows)
		}
		if stats.Scanned == 0 {
			t.Fatalf("false-positive fingerprint was pruned instead of scanned: %+v", stats.Pruned)
		}
	})
}

// goldenDirLegacyIdx is the committed v2 fixture with its original
// pre-zone sidecars (no "ver" field, no zone entries) — the exact
// bytes an earlier build left on disk.
const goldenDirLegacyIdx = "testdata/golden-v2-legacy-idx"

// TestLegacySidecarFallback pins the upgrade story: pre-zone sidecars
// load, scans over them stay correct with zone pruning disabled
// (Z == 0 entries claim nothing), ReindexWithStats upgrades them in
// place, a second run is a no-op, and pruning works afterwards.
func TestLegacySidecarFallback(t *testing.T) {
	dir := copyFixture(t, goldenDirLegacyIdx)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Indexed() {
		t.Fatal("legacy-sidecar fixture opened unindexed")
	}
	for month, ver := range s.SidecarVersions() {
		if ver != sidecarVerLegacy {
			t.Fatalf("%s: sidecar version %d before upgrade, want %d", month, ver, sidecarVerLegacy)
		}
	}

	// Scans are correct without zones; nothing fingerprint-prunes, so
	// a query for an absent file type still scans every block.
	q := Query{FileTypes: []string{"definitely-absent"}, Cols: ColAll}
	stats := checkScanAgainstNaive(t, s, q)
	if stats.Pruned[PruneFileType] != 0 {
		t.Fatalf("legacy sidecar fingerprint-pruned %d blocks with no zone data", stats.Pruned[PruneFileType])
	}
	if stats.Scanned == 0 {
		t.Fatal("legacy scan scanned nothing")
	}
	for _, q := range scanTestQueries() {
		checkScanAgainstNaive(t, s, q)
	}
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify over legacy sidecars: %d, %v", n, err)
	}

	// Upgrade in place; both months rebuild.
	rs, err := s.ReindexWithStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Upgraded) != 2 || len(rs.Skipped) != 0 {
		t.Fatalf("upgrade pass: %+v", rs)
	}
	for month, ver := range s.SidecarVersions() {
		if ver != sidecarVerZones {
			t.Fatalf("%s: sidecar version %d after upgrade, want %d", month, ver, sidecarVerZones)
		}
	}
	// Idempotent: the second run skips everything.
	rs, err = s.ReindexWithStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Upgraded) != 0 || len(rs.Skipped) != 2 {
		t.Fatalf("second upgrade pass not a no-op: %+v", rs)
	}
	// Upgraded sidecars are byte-identical to the current fixture's.
	for _, month := range s.Months() {
		got, err := os.ReadFile(sidecarPath(dir, month))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(sidecarPath(goldenDirV2, month))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: upgraded sidecar differs from the current writer's", month)
		}
	}

	// Zones now prune.
	stats = checkScanAgainstNaive(t, s, q)
	if stats.Pruned[PruneFileType] == 0 {
		t.Fatalf("upgraded sidecars pruned nothing: %+v", stats.Pruned)
	}
	for _, q := range scanTestQueries() {
		checkScanAgainstNaive(t, s, q)
	}
	if n, err := s.Verify(); err != nil || n != 24 {
		t.Fatalf("Verify after upgrade: %d, %v", n, err)
	}
}

// TestScanStatsByTypeEquivalence pins the StatsByType rewire: the
// pushdown-backed tally must equal a naive per-row count.
func TestScanStatsByTypeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := buildScanStore(t, genScanEnvelopes(rng, 100, 20), WithBlockSize(1<<10))
	defer s.Close()
	got, err := s.StatsByType()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	if err := s.IterAll(1, func(_ string, r *report.ScanReport) error {
		want[r.FileType]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for ft, n := range want {
		if got[ft].Reports != n {
			t.Errorf("StatsByType[%q].Reports = %d, naive count %d", ft, got[ft].Reports, n)
		}
	}
}

// TestVerifyCatchesZoneCorruption: a sidecar whose zone disagrees with
// its payload must fail Verify with ErrIndexMismatch.
func TestVerifyCatchesZoneCorruption(t *testing.T) {
	dir := copyFixture(t, goldenDirV2)
	month := "2021-05"
	// Corrupt one block's zone in the sidecar on disk, then reopen.
	raw, err := os.ReadFile(sidecarPath(dir, month))
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(raw), `"m":`, `"m":9`, 1)
	if mutated == string(raw) {
		t.Fatalf("fixture sidecar has no zone malicious-count field to corrupt: %s", raw)
	}
	if err := os.WriteFile(sidecarPath(dir, month), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Verify(); err == nil {
		t.Fatal("Verify accepted a sidecar with a corrupt zone map")
	}
}

// TestScanKernelAllocBudget pins the steady-state per-block kernel
// cycle — NewPartial, feed rows, Merge — at zero allocations once the
// partial pool and result maps are warm. This is what keeps large
// scans GC-quiet: the per-block cost is decode work, not garbage.
func TestScanKernelAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("-race randomizes sync.Pool reuse; the pooled cycle cannot be alloc-counted")
	}
	rows := make([]RowView, 32)
	for i := range rows {
		rows[i] = RowView{Month: "2021-05", FT: scanFTs[i%len(scanFTs)]}
	}
	var agg GroupCountByType
	cycle := func() {
		p := agg.NewPartial()
		for i := range rows {
			if err := p.Row(&rows[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := agg.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ { // warm the partial pool and the result map
		cycle()
	}
	if got := testing.AllocsPerRun(200, cycle); got > 0 {
		t.Errorf("group-by kernel cycle allocs/op = %v, budget 0", got)
	}
}

// FuzzScanPushdownDifferential drives random queries over random
// stores in both block formats and demands Scan agree with the naive
// IterAll filter row for row — the end-to-end contract of the whole
// pushdown engine (pruning, projection, skipping, fallback).
func FuzzScanPushdownDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), int64(0), int64(0), uint8(0), uint8(0), uint8(0), false, uint8(0), uint8(2))
	f.Add(int64(2), uint8(1), int64(20), int64(55), uint8(1), uint8(2), uint8(1), true, uint8(3), uint8(1))
	f.Add(int64(3), uint8(2), int64(-5), int64(200), uint8(9), uint8(9), uint8(9), false, uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, format uint8, sinceDays, untilDays int64,
		ftSel, engSel, labSel uint8, malOnly bool, shaSel, workers uint8) {
		rng := rand.New(rand.NewSource(seed))
		envs := genScanEnvelopes(rng, 60, 12)
		var opts []Option
		switch format % 3 {
		case 0:
			opts = []Option{WithBlockSize(1 << 9)}
		case 1:
			opts = []Option{WithFormat(FormatV1), WithBlockSize(1 << 9)}
		case 2: // mixed: v1 store migrated month-by-month would be all-v2;
			// instead mix by writing v1 with a giant block size so the
			// fallback per-month path runs alongside indexed months.
			opts = []Option{WithFormat(FormatV1), WithBlockSize(1 << 30)}
		}
		s := buildScanStore(t, envs, opts...)
		defer s.Close()

		q := Query{Cols: ColAll, Workers: int(workers % 5)}
		if sinceDays != 0 {
			q.Since = t0.Add(time.Duration(sinceDays%120) * 24 * time.Hour).Unix()
		}
		if untilDays != 0 {
			q.Until = t0.Add(time.Duration(untilDays%120) * 24 * time.Hour).Unix()
		}
		if n := int(ftSel) % (len(scanFTs) + 1); n > 0 {
			q.FileTypes = scanFTs[:n]
		}
		if n := int(engSel) % (len(scanEngs) + 1); n > 0 {
			q.Engines = scanEngs[:n]
		}
		if n := int(labSel) % (len(scanLabs) + 1); n > 0 {
			q.Labels = scanLabs[:n]
		}
		if shaSel > 0 {
			for i := uint8(0); i < shaSel%4; i++ {
				q.SHAs = append(q.SHAs, fmt.Sprintf("scan%03d", int(shaSel)+int(i)))
			}
		}
		q.MaliciousOnly = malOnly
		checkScanAgainstNaive(t, s, q)
	})
}

// TestScanLegacyFixtureSidecarBytes pins the committed legacy-sidecar
// fixture itself: its .idx files must stay version-less (no zone
// fields), or the fallback test above silently stops covering the
// legacy path.
func TestScanLegacyFixtureSidecarBytes(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join(goldenDirLegacyIdx, "*.idx"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("legacy fixture sidecars missing: %v (%d found)", err, len(matches))
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), `"ver"`) || strings.Contains(string(b), `"z"`) {
			t.Errorf("%s: legacy fixture sidecar carries zone-era fields", m)
		}
	}
}
