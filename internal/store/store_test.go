package store

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

var t0 = time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)

func envelope(sha string, at time.Time, rank int) report.Envelope {
	results := []report.EngineResult{
		{Engine: "Avast", Verdict: report.Benign, SignatureVersion: 3},
		{Engine: "BitDefender", Verdict: report.Undetected, SignatureVersion: 9},
	}
	for i := 0; i < rank; i++ {
		results = append(results, report.EngineResult{
			Engine:           fmt.Sprintf("Det%02d", i),
			Verdict:          report.Malicious,
			Label:            "Trojan.Gen",
			SignatureVersion: 1,
		})
	}
	scan := report.ScanReport{
		SHA256:       sha,
		FileType:     "Win32 EXE",
		AnalysisDate: at,
		Results:      results,
		AVRank:       rank,
		EnginesTotal: rank + 1,
	}
	return report.Envelope{
		Meta: report.SampleMeta{
			SHA256:              sha,
			FileType:            "Win32 EXE",
			Size:                4096,
			FirstSubmissionDate: t0,
			LastAnalysisDate:    at,
			LastSubmissionDate:  at,
			TimesSubmitted:      1,
		},
		Scan: scan,
	}
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t)
	env1 := envelope("aaa", t0, 3)
	env2 := envelope("aaa", t0.Add(48*time.Hour), 5)
	if err := s.Put(env1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(env2); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("aaa")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 {
		t.Fatalf("reports = %d", len(h.Reports))
	}
	if !h.SortedByTime() {
		t.Fatal("history not sorted")
	}
	if h.Reports[0].AVRank != 3 || h.Reports[1].AVRank != 5 {
		t.Fatalf("ranks = %d, %d", h.Reports[0].AVRank, h.Reports[1].AVRank)
	}
	// Full fidelity: verdicts, versions, labels.
	r := h.Reports[0]
	if r.VerdictOf("Avast") != report.Benign {
		t.Fatal("benign verdict lost")
	}
	if r.VerdictOf("BitDefender") != report.Undetected {
		t.Fatal("undetected verdict lost")
	}
	if r.VerdictOf("Det00") != report.Malicious {
		t.Fatal("malicious verdict lost")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Meta.TimesSubmitted != 1 || h.Meta.FileType != "Win32 EXE" {
		t.Fatalf("meta = %+v", h.Meta)
	}
}

func TestGetUnknown(t *testing.T) {
	s := openStore(t)
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPutRejectsEmptyHash(t *testing.T) {
	s := openStore(t)
	if err := s.Put(report.Envelope{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMonthlyPartitioning(t *testing.T) {
	s := openStore(t)
	may := envelope("m1", time.Date(2021, 5, 10, 0, 0, 0, 0, time.UTC), 1)
	june := envelope("m1", time.Date(2021, 6, 10, 0, 0, 0, 0, time.UTC), 2)
	july := envelope("m2", time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC), 0)
	for _, e := range []report.Envelope{may, june, july} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	months := s.Months()
	want := []string{"2021-05", "2021-06", "2021-07"}
	if len(months) != 3 {
		t.Fatalf("months = %v", months)
	}
	for i := range want {
		if months[i] != want[i] {
			t.Fatalf("months = %v", months)
		}
	}
	// Cross-partition Get.
	h, err := s.Get("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 {
		t.Fatalf("cross-partition reports = %d", len(h.Reports))
	}
	if got := s.Stats("2021-05").Reports; got != 1 {
		t.Fatalf("may reports = %d", got)
	}
}

func TestCompressionRatio(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 500; i++ {
		env := envelope(fmt.Sprintf("h%04d", i), t0.Add(time.Duration(i)*time.Hour), 10)
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	total := s.TotalStats()
	if total.Reports != 500 {
		t.Fatalf("reports = %d", total.Reports)
	}
	if total.StoredBytes <= 0 || total.RawBytes <= 0 {
		t.Fatalf("accounting: %+v", total)
	}
	if ratio := total.CompressionRatio(); ratio < 2 {
		t.Fatalf("compression ratio = %.2f, want > 2", ratio)
	}
}

func TestMultiMemberAppend(t *testing.T) {
	// Flush mid-stream, then keep writing: the partition becomes a
	// multi-member gzip file that must still read back completely.
	s := openStore(t)
	if err := s.Put(envelope("x", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(envelope("x", t0.Add(time.Hour), 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 {
		t.Fatalf("reports after multi-member append = %d", len(h.Reports))
	}
}

func TestReopenRestoresIndexAndStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(envelope(fmt.Sprintf("r%d", i), t0.Add(time.Duration(i)*time.Hour), i%5)); err != nil {
			t.Fatal(err)
		}
	}
	wantTotal := s.TotalStats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.NumSamples(); got != 20 {
		t.Fatalf("reopened samples = %d", got)
	}
	h, err := s2.Get("r7")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 1 || h.Reports[0].AVRank != 2 {
		t.Fatalf("reopened history = %+v", h.Reports)
	}
	got := s2.TotalStats()
	if got.Reports != wantTotal.Reports {
		t.Fatalf("reopened reports = %d, want %d", got.Reports, wantTotal.Reports)
	}
	if got.RawBytes != wantTotal.RawBytes {
		t.Fatalf("reopened raw bytes = %d, want %d", got.RawBytes, wantTotal.RawBytes)
	}
}

func TestIterReports(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Put(envelope(fmt.Sprintf("i%d", i), t0.Add(time.Duration(i)*time.Minute), 1)); err != nil {
			t.Fatal(err)
		}
	}
	var seen int
	err := s.IterReports("2021-05", func(r *report.ScanReport) error {
		seen++
		return r.Validate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("iterated %d reports", seen)
	}
}

func TestIterReportsErrorPropagates(t *testing.T) {
	s := openStore(t)
	if err := s.Put(envelope("e", t0, 1)); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop")
	err := s.IterReports("2021-05", func(r *report.ScanReport) error { return wantErr })
	if err == nil {
		t.Fatal("callback error not propagated")
	}
}

func TestMonthKey(t *testing.T) {
	if got := MonthKey(time.Date(2022, 6, 30, 23, 59, 0, 0, time.UTC)); got != "2022-06" {
		t.Fatalf("MonthKey = %s", got)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := openStore(t)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				env := envelope(fmt.Sprintf("c%d-%d", w, i), t0.Add(time.Duration(i)*time.Minute), 1)
				if err := s.Put(env); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalStats().Reports; got != 400 {
		t.Fatalf("reports = %d", got)
	}
}

func TestSampleHashesAndMeta(t *testing.T) {
	s := openStore(t)
	for _, sha := range []string{"zz", "aa", "mm"} {
		if err := s.Put(envelope(sha, t0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	hashes := s.SampleHashes()
	if len(hashes) != 3 || hashes[0] != "aa" || hashes[2] != "zz" {
		t.Fatalf("hashes = %v", hashes)
	}
	meta, ok := s.Meta("mm")
	if !ok || meta.FileType != "Win32 EXE" {
		t.Fatalf("meta = %+v, %v", meta, ok)
	}
	if _, ok := s.Meta("nope"); ok {
		t.Fatal("missing sample returned meta")
	}
}

func TestStatsByType(t *testing.T) {
	s := openStore(t)
	if err := s.Put(envelope("a", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(envelope("a", t0.Add(time.Hour), 2)); err != nil {
		t.Fatal(err)
	}
	env := envelope("b", t0, 0)
	env.Meta.FileType = "TXT"
	env.Scan.FileType = "TXT"
	if err := s.Put(env); err != nil {
		t.Fatal(err)
	}
	byType, err := s.StatsByType()
	if err != nil {
		t.Fatal(err)
	}
	if got := byType["Win32 EXE"]; got.Samples != 1 || got.Reports != 2 {
		t.Fatalf("EXE stats = %+v", got)
	}
	if got := byType["TXT"]; got.Samples != 1 || got.Reports != 1 {
		t.Fatalf("TXT stats = %+v", got)
	}
}

func TestVerifyCleanStore(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i) * 31 * 24 * time.Hour) // span months
		if err := s.Put(envelope(fmt.Sprintf("v%d", i), at, i%4)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("verified %d rows", n)
	}
}

// TestGetSeesUnflushedPut is the read-your-writes regression test: a
// Put buffered inside an open gzip member must be visible to an
// immediate Get, without an intervening Flush.
func TestGetSeesUnflushedPut(t *testing.T) {
	s := openStore(t)
	if err := s.Put(envelope("ryw", t0, 3)); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("ryw")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 1 || h.Reports[0].AVRank != 3 {
		t.Fatalf("Get after Put missed buffered row: %+v", h.Reports)
	}
	// And again mid-stream: a second Put into the already-cut member's
	// successor must also be immediately visible.
	if err := s.Put(envelope("ryw", t0.Add(time.Hour), 5)); err != nil {
		t.Fatal(err)
	}
	h, err = s.Get("ryw")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 || h.Reports[1].AVRank != 5 {
		t.Fatalf("Get after second Put: %+v", h.Reports)
	}
	// All rows survive the final flush and a reopen untouched.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if h, err := s.Get("ryw"); err != nil || len(h.Reports) != 2 {
		t.Fatalf("after flush: %v", err)
	}
}

// TestGetStableOrder pins Get's ordering contract: reports sort by
// AnalysisDate, and equal timestamps keep storage order — so repeated
// Gets always return the identical sequence.
func TestGetStableOrder(t *testing.T) {
	s := openStore(t)
	// Three scans at the same instant, distinguishable by rank, plus
	// one earlier and one later.
	at := t0.Add(time.Hour)
	for i, env := range []report.Envelope{
		envelope("ord", at, 1),
		envelope("ord", at, 2),
		envelope("ord", at, 3),
		envelope("ord", t0, 0),
		envelope("ord", at.Add(time.Hour), 4),
	} {
		if err := s.Put(env); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	wantRanks := []int{0, 1, 2, 3, 4}
	for trial := 0; trial < 5; trial++ {
		h, err := s.Get("ord")
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Reports) != len(wantRanks) {
			t.Fatalf("trial %d: %d reports", trial, len(h.Reports))
		}
		for i, r := range h.Reports {
			if r.AVRank != wantRanks[i] {
				t.Fatalf("trial %d: ranks %v at %d, want %v",
					trial, r.AVRank, i, wantRanks)
			}
		}
		// Vary the read path across trials: cached, uncached, indexed.
		switch trial {
		case 1:
			s.cache.invalidate("ord")
		case 2:
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			s.cache.invalidate("ord")
		}
	}
}

func TestIterAllCountsAndWorkerInvariance(t *testing.T) {
	s, err := Open(t.TempDir(), WithBlockSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i%3) * 31 * 24 * time.Hour)
		if err := s.Put(envelope(fmt.Sprintf("ia%04d", i), at, i%5)); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{0, 1, 2, 8} {
		var mu sync.Mutex
		perMonth := map[string]int{}
		err := s.IterAll(workers, func(month string, r *report.ScanReport) error {
			if err := r.Validate(); err != nil {
				return err
			}
			mu.Lock()
			perMonth[month]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		total := 0
		for _, c := range perMonth {
			total += c
		}
		if total != n || len(perMonth) != 3 {
			t.Fatalf("workers=%d: saw %d rows in %d months", workers, total, len(perMonth))
		}
	}
}

func TestIterAllErrorPropagates(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 30; i++ {
		if err := s.Put(envelope(fmt.Sprintf("ie%02d", i), t0.Add(time.Duration(i)*time.Minute), 1)); err != nil {
			t.Fatal(err)
		}
	}
	wantErr := fmt.Errorf("stop here")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		err := s.IterAll(workers, func(string, *report.ScanReport) error {
			if calls.Add(1) == 5 {
				return wantErr
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestStatsByTypeWorkersMatchesSerial(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 40; i++ {
		env := envelope(fmt.Sprintf("tw%02d", i), t0.Add(time.Duration(i)*time.Hour), 1)
		if i%3 == 0 {
			env.Meta.FileType = "PDF"
			env.Scan.FileType = "PDF"
		}
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := s.StatsByTypeWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := s.StatsByTypeWorkers(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("type stats diverge:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(envelope("ok", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a row whose AVRank contradicts its results, via a raw
	// writer (simulating on-disk corruption or a buggy writer).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := envelope("bad", t0.Add(time.Hour), 1)
	bad.Scan.AVRank = 40 // results only contain 1 malicious verdict
	bad.Scan.EnginesTotal = 2
	// Put validates nothing about rank consistency (it stores what it
	// is given), so this lands on disk; Verify must flag it.
	if err := s2.Put(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Verify(); err == nil {
		t.Fatal("Verify accepted a corrupt row")
	}
}
