package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

func BenchmarkPut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := envelope(fmt.Sprintf("bench%08d", i), t0.Add(time.Duration(i)*time.Second), 10)
		if err := s.Put(env); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPutParallel measures contended ingest throughput: many
// goroutines Put distinct samples concurrently, all landing in the
// same monthly partition — the collector's hot path.
func BenchmarkPutParallel(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			env := envelope(fmt.Sprintf("bench%08d", i), t0.Add(time.Duration(i)*time.Second), 10)
			if err := s.Put(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	const samples = 500
	for i := 0; i < samples; i++ {
		env := envelope(fmt.Sprintf("g%04d", i), t0.Add(time.Duration(i)*time.Minute), 5)
		if err := s.Put(env); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("g%04d", i%samples)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSamples sizes the read-path benchmarks: big enough that a full
// partition scan is visibly O(store) while an indexed Get stays
// O(result).
const benchSamples = 16384

func benchSHA(i int) string { return fmt.Sprintf("bench%06d", i%benchSamples) }

// buildReadStore fills dir with benchSamples single-report samples
// across two monthly partitions and flushes, so block indexes and
// sidecars are in place.
func buildReadStore(b *testing.B, dir string, opts ...Option) *Store {
	b.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]report.Envelope, 0, 512)
	for i := 0; i < benchSamples; i++ {
		at := t0.Add(time.Duration(i%2) * 31 * 24 * time.Hour).Add(time.Duration(i) * time.Second)
		batch = append(batch, envelope(benchSHA(i), at, 8))
		if len(batch) == cap(batch) {
			if err := s.PutBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := s.PutBatch(batch); err != nil {
		b.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGetIndexed measures the tentpole: an uncached Get that
// seeks straight to the blocks holding its sample. Compare against
// BenchmarkGetFullScan for the O(result) vs O(store) gap.
func BenchmarkGetIndexed(b *testing.B) {
	s := buildReadStore(b, b.TempDir(), WithCacheSize(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(benchSHA(i * 7919)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetIndexedV1 is the same lookup against a v1 (JSONL)
// store: the row-format baseline the columnar Get path is judged
// against.
func BenchmarkGetIndexedV1(b *testing.B) {
	s := buildReadStore(b, b.TempDir(), WithCacheSize(0), WithFormat(FormatV1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(benchSHA(i * 7919)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetFullScan is the pre-index baseline: the same store with
// its sidecars deleted, so every Get gunzips whole partitions.
func BenchmarkGetFullScan(b *testing.B) {
	dir := b.TempDir()
	s := buildReadStore(b, dir, WithCacheSize(0))
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			b.Fatal(err)
		}
	}
	s2, err := Open(dir, WithCacheSize(0))
	if err != nil {
		b.Fatal(err)
	}
	if s2.Indexed() {
		b.Fatal("baseline store is indexed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s2.Get(benchSHA(i * 7919)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetCold is the indexed disk path with the cache enabled
// but never hit: every iteration asks for a different sample than the
// cache can hold on a strided walk.
func BenchmarkGetCold(b *testing.B) {
	s := buildReadStore(b, b.TempDir(), WithCacheSize(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(benchSHA(i * 7919)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetHot measures a cache hit: repeated Gets of a small hot
// set, each serving a deep copy from the LRU.
func BenchmarkGetHot(b *testing.B) {
	s := buildReadStore(b, b.TempDir())
	for i := 0; i < 16; i++ { // warm the hot set
		if _, err := s.Get(benchSHA(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(benchSHA(i % 16)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIterAll measures the full-store pass that Verify and
// StatsByType ride on, fanning blocks across GOMAXPROCS workers (so
// -cpu 1,4,8 sweeps the pool width).
func BenchmarkIterAll(b *testing.B) {
	s := buildReadStore(b, b.TempDir())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rows atomic.Int64
		err := s.IterAll(0, func(month string, r *report.ScanReport) error {
			rows.Add(1)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows.Load() != benchSamples {
			b.Fatalf("iterated %d rows", rows.Load())
		}
	}
}

// benchColReports builds one block's worth of scans with realistic
// vocabulary reuse (few file types and engines, moderately repeated
// SHAs and labels) for the columnar-encode twins below.
func benchColReports() []*report.ScanReport {
	reports := make([]*report.ScanReport, 0, 512)
	for i := 0; i < 512; i++ {
		r := &report.ScanReport{
			SHA256:       fmt.Sprintf("colbench%06d", i%64),
			FileType:     []string{"Win32 EXE", "PDF", "ELF", "Android", "ZIP", "HTML", "Win32 DLL", "XML"}[i%8],
			AnalysisDate: t0.Add(time.Duration(i) * 97 * time.Second),
			AVRank:       i % 7,
			EnginesTotal: 70,
		}
		for j := 0; j < 3; j++ {
			er := report.EngineResult{
				Engine:           fmt.Sprintf("Engine-%02d", (i+j)%12),
				Verdict:          report.Verdict(i%3 - 1),
				SignatureVersion: 20210500 + i%30,
			}
			if er.Verdict == report.Malicious {
				er.Label = fmt.Sprintf("Trojan.Gen.%d", (i+j)%30)
			}
			r.Results = append(r.Results, er)
		}
		reports = append(reports, r)
	}
	return reports
}

// BenchmarkDirectColumnarEncode measures the write path's per-block
// encode work under the direct builder: fold every row into column
// state, then seal. Its twin below measures the same block through
// the flush-time transcode this path replaced; the pair plus
// -benchmem shows what zero-transcode ingest saves per block.
func BenchmarkDirectColumnarEncode(b *testing.B) {
	reports := benchColReports()
	lineLens := make([]int, len(reports))
	var line []byte
	var raw int64
	for i, r := range reports {
		line = appendScanRow(line[:0], r)
		lineLens[i] = len(line)
		raw += int64(len(line) + 1)
	}
	var payload []byte
	b.ReportAllocs()
	b.SetBytes(raw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := getColBuilder()
		for j, r := range reports {
			bl.addRow(r, lineLens[j])
		}
		payload = bl.seal(payload[:0])
		putColBuilder(bl)
	}
	if len(payload) == 0 {
		b.Fatal("empty payload")
	}
}

// BenchmarkTranscodeColumnarEncode is the reference twin: encode the
// same block by re-parsing its JSONL buffer at flush time
// (appendColumnarBlock), the way the v2 write path worked before the
// direct builder.
func BenchmarkTranscodeColumnarEncode(b *testing.B) {
	raw := rawBlockFor(benchColReports())
	var payload []byte
	var err error
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err = appendColumnarBlock(payload[:0], raw)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(payload) == 0 {
		b.Fatal("empty payload")
	}
}
