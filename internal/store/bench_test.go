package store

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkPut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := envelope(fmt.Sprintf("bench%08d", i), t0.Add(time.Duration(i)*time.Second), 10)
		if err := s.Put(env); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPutParallel measures contended ingest throughput: many
// goroutines Put distinct samples concurrently, all landing in the
// same monthly partition — the collector's hot path.
func BenchmarkPutParallel(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			env := envelope(fmt.Sprintf("bench%08d", i), t0.Add(time.Duration(i)*time.Second), 10)
			if err := s.Put(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	const samples = 500
	for i := 0; i < samples; i++ {
		env := envelope(fmt.Sprintf("g%04d", i), t0.Add(time.Duration(i)*time.Minute), 5)
		if err := s.Put(env); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("g%04d", i%samples)); err != nil {
			b.Fatal(err)
		}
	}
}
