package store

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkPut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := envelope(fmt.Sprintf("bench%08d", i), t0.Add(time.Duration(i)*time.Second), 10)
		if err := s.Put(env); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	const samples = 500
	for i := 0; i < samples; i++ {
		env := envelope(fmt.Sprintf("g%04d", i), t0.Add(time.Duration(i)*time.Minute), 5)
		if err := s.Put(env); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("g%04d", i%samples)); err != nil {
			b.Fatal(err)
		}
	}
}
