// Streaming v2 block encoder: column state built directly from rows.
//
// colBuilder is the write-path twin of appendColumnarBlock. The
// transcode path materializes a block as JSONL, then re-parses every
// line at flush time to build the columnar payload; the builder skips
// the round trip and folds each scan into per-block dictionaries and
// column segments as the row arrives, so sealing a block at cut time
// is a pure concatenation — no parsing, no intermediate buffer.
//
// The non-negotiable contract is byte identity: for any sequence of
// rows, seal() must emit exactly the bytes
// appendColumnarBlock(nil, <the rows' JSONL lines>) emits. That holds
// because both paths normalize through the same pipeline — validUTF8
// on every string (JSON escape→unescape of a valid-UTF-8 string is
// the identity, so the transcode's decoded dictionary values equal
// the normalized inputs), unix() zero-preserving timestamps, int8
// verdicts, first-seen dictionary ids, per-block delta timestamps
// starting from 0 — and is pinned three ways: the differential fuzzer
// (FuzzDirectColumnarDifferential), the golden-v2 fixture rewrite
// test (TestGoldenV2WriterByteIdentity), and the determinism harness.
//
// Builders and their dictionary id maps are pooled (colBuilderPool +
// bufpool.GetCountMap) because ingest discards one of each per block;
// TestColBuilderAllocBudget pins the steady-state cycle.
package store

import (
	"encoding/binary"
	"sync"

	"vtdynamics/internal/bufpool"
	"vtdynamics/internal/report"
)

// colBuilder accumulates one v2 block's column state incrementally.
// Zero value is not ready for use — obtain builders via getColBuilder.
type colBuilder struct {
	shaD, ftD, engD, labD colDict
	// segs collects the column segments; segs[segVerdict] stays empty
	// until seal, which packs the verdicts buffered below.
	segs     [numColSegs][]byte
	verdicts []int8
	packable bool
	rows     int
	// rawBytes is Σ len(v1 line) — the header's accounting-parity field.
	rawBytes int64
	prevAt   int64

	// Zone-map state (zonemap.go): timestamp bounds and malicious-row
	// count accumulate per row; the vocabulary fingerprints come from
	// the dictionaries at zone() time, so each distinct value is
	// hashed once per block instead of once per row.
	zTMin, zTMax int64
	zMal         int
}

// colBuilderPool recycles builder shells (segment buffers, verdict
// and dictionary-value slices keep their capacity across blocks); the
// dictionary id maps inside are drawn from bufpool's count-map pool,
// shared with the writers' pendingShas maps.
var colBuilderPool = sync.Pool{
	New: func() any { return new(colBuilder) },
}

// getColBuilder returns an empty builder ready to accept rows.
func getColBuilder() *colBuilder {
	b := colBuilderPool.Get().(*colBuilder)
	b.shaD.ids = bufpool.GetCountMap()
	b.ftD.ids = bufpool.GetCountMap()
	b.engD.ids = bufpool.GetCountMap()
	b.labD.ids = bufpool.GetCountMap()
	b.packable = true
	return b
}

// putColBuilder recycles a builder once its sealed payload has been
// handed off. Dictionary id maps return to bufpool; value slices and
// segment buffers are truncated (string references cleared so blocks
// don't pin vocabulary) but keep their capacity.
func putColBuilder(b *colBuilder) {
	bufpool.PutCountMap(b.shaD.ids)
	bufpool.PutCountMap(b.ftD.ids)
	bufpool.PutCountMap(b.engD.ids)
	bufpool.PutCountMap(b.labD.ids)
	b.shaD.reset()
	b.ftD.reset()
	b.engD.reset()
	b.labD.reset()
	for i := range b.segs {
		b.segs[i] = b.segs[i][:0]
	}
	b.verdicts = b.verdicts[:0]
	b.packable = false
	b.rows = 0
	b.rawBytes = 0
	b.prevAt = 0
	b.zTMin, b.zTMax, b.zMal = 0, 0, 0
	colBuilderPool.Put(b)
}

// addRow folds one scan into the column state. lineLen is the length
// of the row's v1 JSONL line (sans newline) — the builder never needs
// the line's bytes, only its length, for the header's rawBytes field.
// The normalization below must stay in lockstep with appendScanRow /
// decodeScanRow: that equivalence is what makes the direct payload
// byte-identical to the transcoded one.
func (b *colBuilder) addRow(scan *report.ScanReport, lineLen int) {
	b.rows++
	b.rawBytes += int64(lineLen)
	b.segs[segSHA] = binary.AppendUvarint(b.segs[segSHA], uint64(b.shaD.id(validUTF8(scan.SHA256))))
	at := unix(scan.AnalysisDate)
	b.segs[segTime] = binary.AppendVarint(b.segs[segTime], at-b.prevAt)
	b.prevAt = at
	if b.rows == 1 || at < b.zTMin {
		b.zTMin = at
	}
	if b.rows == 1 || at > b.zTMax {
		b.zTMax = at
	}
	b.segs[segFT] = binary.AppendUvarint(b.segs[segFT], uint64(b.ftD.id(validUTF8(scan.FileType))))
	b.segs[segRank] = binary.AppendVarint(b.segs[segRank], int64(scan.AVRank))
	b.segs[segTot] = binary.AppendVarint(b.segs[segTot], int64(scan.EnginesTotal))
	b.segs[segNRes] = binary.AppendUvarint(b.segs[segNRes], uint64(len(scan.Results)))
	rowMal := false
	for i := range scan.Results {
		er := &scan.Results[i]
		v := int8(er.Verdict)
		b.verdicts = append(b.verdicts, v)
		if v < -1 || v > 1 {
			b.packable = false
		}
		if v == int8(report.Malicious) {
			rowMal = true
		}
		b.segs[segRes] = binary.AppendUvarint(b.segs[segRes], uint64(b.engD.id(validUTF8(er.Engine))))
		b.segs[segRes] = binary.AppendVarint(b.segs[segRes], int64(er.SignatureVersion))
		if lab := validUTF8(er.Label); lab == "" {
			b.segs[segRes] = binary.AppendUvarint(b.segs[segRes], 0)
		} else {
			b.segs[segRes] = binary.AppendUvarint(b.segs[segRes], uint64(b.labD.id(lab)+1))
		}
	}
	if rowMal {
		b.zMal++
	}
}

// zone derives the block's zone map from the accumulated state. The
// result equals zoneOfColBlock over the sealed payload: dictionaries
// hold exactly the values the rows referenced, and timestamps and
// verdicts were folded per row above.
func (b *colBuilder) zone() blockZone {
	z := blockZone{tmin: b.zTMin, tmax: b.zTMax, mal: b.zMal}
	for _, v := range b.ftD.vals {
		z.ftb |= zoneBit(v)
	}
	for _, v := range b.engD.vals {
		z.engb |= zoneBit(v)
	}
	for _, v := range b.labD.vals {
		z.labb |= zoneBit(v)
	}
	return z
}

// seal appends the finished v2 payload to dst: header, dictionaries,
// verdict bitmap, column segments — byte-for-byte what
// appendColumnarBlock emits for the same rows. Sealing is pure
// encoding and cannot fail; it does not consume the builder (callers
// recycle it with putColBuilder when done).
func (b *colBuilder) seal(dst []byte) []byte {
	vseg := b.segs[segVerdict][:0]
	if b.packable {
		vseg = append(vseg, verdictFlagPacked)
		var cur byte
		for i, v := range b.verdicts {
			var code byte
			switch report.Verdict(v) {
			case report.Benign:
				code = vbBenign
			case report.Malicious:
				code = vbMalicious
			default:
				code = vbUndetected
			}
			cur |= code << ((i % 4) * 2)
			if i%4 == 3 {
				vseg = append(vseg, cur)
				cur = 0
			}
		}
		if len(b.verdicts)%4 != 0 {
			vseg = append(vseg, cur)
		}
	} else {
		vseg = append(vseg, 0)
		for _, v := range b.verdicts {
			vseg = binary.AppendVarint(vseg, int64(v))
		}
	}
	b.segs[segVerdict] = vseg

	dst = append(dst, colMagic...)
	dst = append(dst, FormatV2)
	dst = binary.AppendUvarint(dst, uint64(b.rows))
	dst = binary.AppendUvarint(dst, uint64(b.rawBytes))
	dst = appendDict(dst, b.shaD.vals)
	dst = appendDict(dst, b.ftD.vals)
	dst = appendDict(dst, b.engD.vals)
	dst = appendDict(dst, b.labD.vals)
	for _, seg := range b.segs[:] {
		dst = binary.AppendUvarint(dst, uint64(len(seg)))
		dst = append(dst, seg...)
	}
	return dst
}
