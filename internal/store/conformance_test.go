package store

import (
	"compress/gzip"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Cross-version conformance suite, after mcap's conformance runners:
// an abstract writer side (format variants — ways a store fixture can
// come to exist on disk) crossed with an abstract reader side (reader
// configurations — this build, and a simulated v1-era build). Every
// supported (variant, reader) pair must serve the exact golden rows;
// every unsupported pair must be rejected with the typed
// ErrUnsupportedFormat, never misread.

// formatVariant is the write side: one way of materializing the
// golden dataset into a directory.
type formatVariant struct {
	name string
	// maxVer is the newest block format the variant's bytes contain.
	maxVer int
	// write materializes the golden dataset into dir.
	write func(t *testing.T, dir string)
}

// readRunner is the read side: one reader configuration.
type readRunner struct {
	name string
	// maxFormat caps what this reader understands (a v1-era build is
	// simulated by capping at FormatV1).
	maxFormat int
}

// supportsVariant reports whether the reader must succeed on the
// variant; unsupported pairs must fail with ErrUnsupportedFormat.
func (r readRunner) supportsVariant(v formatVariant) bool {
	return v.maxVer <= r.maxFormat
}

// open opens dir under this runner's format cap. The write format is
// capped too: an old build's default writer matched its newest
// readable format.
func (r readRunner) open(dir string) (*Store, error) {
	return Open(dir, withMaxFormat(r.maxFormat), WithFormat(r.maxFormat))
}

func conformanceVariants() []formatVariant {
	return []formatVariant{
		{
			name:   "writer-v1",
			maxVer: FormatV1,
			write: func(t *testing.T, dir string) {
				writeGoldenStore(t, dir, WithFormat(FormatV1), WithBlockSize(2<<10))
			},
		},
		{
			name:   "writer-v1-no-sidecar",
			maxVer: FormatV1,
			write: func(t *testing.T, dir string) {
				writeGoldenStore(t, dir, WithFormat(FormatV1), WithBlockSize(2<<10))
				stripSidecars(t, dir)
			},
		},
		{
			name:   "writer-v2",
			maxVer: FormatV2,
			write: func(t *testing.T, dir string) {
				writeGoldenStore(t, dir, WithBlockSize(2<<10))
			},
		},
		{
			name:   "writer-v2-no-sidecar",
			maxVer: FormatV2,
			write: func(t *testing.T, dir string) {
				writeGoldenStore(t, dir, WithBlockSize(2<<10))
				stripSidecars(t, dir)
			},
		},
		{
			name:   "v1-migrated-to-v2",
			maxVer: FormatV2,
			write: func(t *testing.T, dir string) {
				writeGoldenStore(t, dir, WithFormat(FormatV1), WithBlockSize(2<<10))
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Migrate(); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:   "mixed-v1-then-v2-members",
			maxVer: FormatV2,
			write: func(t *testing.T, dir string) {
				// First half of the dataset written v1, second half
				// appended by a v2 build: months hold members of both
				// formats side by side.
				envs := goldenEnvelopes()
				s1, err := Open(dir, WithFormat(FormatV1), WithBlockSize(2<<10))
				if err != nil {
					t.Fatal(err)
				}
				for _, env := range envs[:goldenFlushAt+1] {
					if err := s1.Put(env); err != nil {
						t.Fatal(err)
					}
				}
				if err := s1.Close(); err != nil {
					t.Fatal(err)
				}
				s2, err := Open(dir, WithBlockSize(2<<10))
				if err != nil {
					t.Fatal(err)
				}
				for _, env := range envs[goldenFlushAt+1:] {
					if err := s2.Put(env); err != nil {
						t.Fatal(err)
					}
				}
				if err := s2.Close(); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:   "golden-v1-fixture",
			maxVer: FormatV1,
			write: func(t *testing.T, dir string) {
				copyFixtureInto(t, goldenDir, dir)
			},
		},
		{
			name:   "golden-v2-fixture",
			maxVer: FormatV2,
			write: func(t *testing.T, dir string) {
				copyFixtureInto(t, goldenDirV2, dir)
			},
		},
	}
}

func conformanceReaders() []readRunner {
	return []readRunner{
		{name: "current", maxFormat: formatMax},
		{name: "v1-era", maxFormat: FormatV1},
	}
}

func stripSidecars(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
}

func copyFixtureInto(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("fixture %s missing (run with VTDYN_REGEN_GOLDEN=1 to create): %v", src, err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConformanceMatrix runs every (variant, reader) pair. Supported
// pairs must serve exactly the golden rows through Get, iteration,
// StatsByType, and Verify; unsupported pairs (v2 bytes under a v1-era
// reader) must be rejected at Open with ErrUnsupportedFormat.
func TestConformanceMatrix(t *testing.T) {
	want := goldenExpect()
	for _, variant := range conformanceVariants() {
		variant := variant
		for _, reader := range conformanceReaders() {
			reader := reader
			t.Run(variant.name+"/"+reader.name, func(t *testing.T) {
				dir := t.TempDir()
				variant.write(t, dir)
				s, err := reader.open(dir)
				if !reader.supportsVariant(variant) {
					if err == nil {
						t.Fatalf("v%d-capped reader opened a v%d store", reader.maxFormat, variant.maxVer)
					}
					if !errors.Is(err, ErrUnsupportedFormat) {
						t.Fatalf("rejection is not typed: %v", err)
					}
					var fe *FormatError
					if !errors.As(err, &fe) {
						t.Fatalf("rejection is not a *FormatError: %v", err)
					}
					if fe.Version != variant.maxVer || fe.Max != reader.maxFormat {
						t.Fatalf("FormatError fields: %+v (want Version=%d Max=%d)", fe, variant.maxVer, reader.maxFormat)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				gotHist, _, stats := snapshotReads(t, s)
				if !reflect.DeepEqual(gotHist, want) {
					t.Fatalf("histories diverge from golden rows:\n got %+v\nwant %+v", gotHist, want)
				}
				if stats.Reports != len(goldenEnvelopes()) {
					t.Fatalf("stats report %d rows, want %d", stats.Reports, len(goldenEnvelopes()))
				}
				byType, err := s.StatsByType()
				if err != nil {
					t.Fatal(err)
				}
				ts := byType["Win32 EXE"]
				if ts.Samples != 8 || ts.Reports != 24 {
					t.Fatalf("StatsByType = %+v, want 8 samples / 24 reports", ts)
				}
				if n, err := s.Verify(); err != nil || n != 24 {
					t.Fatalf("Verify: %d, %v", n, err)
				}
			})
		}
	}
}

// TestConformanceQueryEquivalence pins that every supported variant
// serves byte-identical query results — the same dataset must be
// indistinguishable through the read API regardless of which format
// (or migration path) produced the bytes.
func TestConformanceQueryEquivalence(t *testing.T) {
	type snap struct {
		hist  map[string]string
		iter  map[string][]int
		stats PartitionStats
	}
	var base *snap
	var baseName string
	for _, variant := range conformanceVariants() {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			dir := t.TempDir()
			variant.write(t, dir)
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			hist, iter, stats := snapshotReads(t, s)
			flat := make(map[string]string, len(hist))
			for sha, h := range hist {
				flat[sha] = fmt.Sprintf("%+v", h.Meta)
				for _, r := range h.Reports {
					flat[sha] += fmt.Sprintf("|%+v", *r)
				}
			}
			cur := &snap{hist: flat, iter: iter, stats: stats}
			// StoredBytes legitimately differs across formats; the
			// logical accounting must not.
			cur.stats.StoredBytes = 0
			if base == nil {
				base, baseName = cur, variant.name
				return
			}
			if !reflect.DeepEqual(base, cur) {
				t.Fatalf("%s and %s serve different query results", baseName, variant.name)
			}
		})
	}
}

// TestUnknownFormatRejected covers data from the future: a block
// tagged v3 — in the sidecar, in the member bytes, or both — must be
// rejected with the typed error on every path (Open, Reindex), never
// silently misread or treated as a stale-sidecar fallback.
func TestUnknownFormatRejected(t *testing.T) {
	futureMember := append([]byte(colMagic), formatMax+1)
	futureMember = append(futureMember, []byte("opaque-payload-from-the-future")...)

	writeFutureStore := func(t *testing.T, withSidecar bool) string {
		t.Helper()
		dir := t.TempDir()
		writeGoldenStore(t, dir, WithBlockSize(2<<10))
		month := "2021-05"
		path := filepath.Join(dir, "scans-"+month+".jsonl.gz")
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		start, err := f.Seek(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		if _, err := zw.Write(futureMember); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		end, err := f.Seek(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if !withSidecar {
			stripSidecars(t, dir)
			return dir
		}
		// Extend the sidecar to cover the new member, declaring its
		// (future) version — what a newer build would have written.
		ix, ok, err := loadSidecar(dir, month, start, formatMax)
		if err != nil || !ok {
			t.Fatalf("sidecar reload: %v %v", ok, err)
		}
		ix.appendBlock(blockMeta{Offset: start, Len: end - start, Rows: 1, Raw: 1, Ver: formatMax + 1}, map[string]int{"future": 1})
		if err := ix.writeSidecar(dir, month); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("sidecar-declared", func(t *testing.T) {
		dir := writeFutureStore(t, true)
		_, err := Open(dir)
		if !errors.Is(err, ErrUnsupportedFormat) {
			t.Fatalf("Open = %v, want ErrUnsupportedFormat", err)
		}
		var fe *FormatError
		if !errors.As(err, &fe) || fe.Version != formatMax+1 || fe.Max != formatMax {
			t.Fatalf("FormatError = %+v", fe)
		}
	})

	t.Run("sniffed-without-sidecar", func(t *testing.T) {
		dir := writeFutureStore(t, false)
		_, err := Open(dir)
		if !errors.Is(err, ErrUnsupportedFormat) {
			t.Fatalf("Open = %v, want ErrUnsupportedFormat", err)
		}
	})

	t.Run("reindex", func(t *testing.T) {
		// Reindex rebuilds sidecars by walking members; the walk must
		// reject the future one with the same typed error.
		dir := writeFutureStore(t, false)
		_, err := indexPartitionFile(filepath.Join(dir, "scans-2021-05.jsonl.gz"), formatMax)
		var fe *FormatError
		if !errors.As(err, &fe) || fe.Version != formatMax+1 {
			t.Fatalf("indexPartitionFile = %v, want FormatError v%d", err, formatMax+1)
		}
	})

	t.Run("error-message-names-versions", func(t *testing.T) {
		fe := &FormatError{Path: "p", Version: 3, Max: 2}
		msg := fe.Error()
		for _, want := range []string{"v3", "v2", "p"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("error %q does not mention %q", msg, want)
			}
		}
	})
}
