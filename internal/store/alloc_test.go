package store

import "testing"

// Allocation budgets for the row codec hot path, enforced by the CI
// alloc-smoke step. Raising a budget is a deliberate act: it means a
// change re-introduced per-row garbage into a path that runs once per
// ingested and once per scanned row.
const (
	// Encoding into a reused buffer must not allocate at all.
	rowEncodeAllocBudget = 0
	// Decoding into a reused row pays exactly one allocation: the SHA
	// string clone (engines, file types, and labels are interned; the
	// Res slice is reused).
	rowDecodeAllocBudget = 1
	// A full pooled builder cycle — getColBuilder, addRow per scan,
	// seal into a reused payload buffer, putColBuilder — must not
	// allocate once segment buffers and dictionary slices have settled:
	// the builder shell comes from colBuilderPool and its id maps from
	// bufpool's count-map pool.
	colBuilderCycleAllocBudget = 0
)

func TestRowCodecAllocBudget(t *testing.T) {
	scan := rowCodecSeeds[1]
	buf := appendScanRow(nil, scan)
	if got := testing.AllocsPerRun(200, func() {
		buf = appendScanRow(buf[:0], scan)
	}); got > rowEncodeAllocBudget {
		t.Errorf("appendScanRow allocs/op = %v, budget %d", got, rowEncodeAllocBudget)
	}

	raw := appendScanRow(nil, scan)
	var row scanRow
	if err := decodeScanRow(raw, &row); err != nil { // settle Res capacity and the intern table
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := decodeScanRow(raw, &row); err != nil {
			t.Fatal(err)
		}
	}); got > rowDecodeAllocBudget {
		t.Errorf("decodeScanRow allocs/op = %v, budget %d", got, rowDecodeAllocBudget)
	}
}

func TestColBuilderAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("-race randomizes sync.Pool reuse; the pooled cycle cannot be alloc-counted")
	}
	reports := colTestReports()
	lineLens := make([]int, len(reports))
	var line []byte
	for i, r := range reports {
		line = appendScanRow(line[:0], r)
		lineLens[i] = len(line)
	}

	var payload []byte
	cycle := func() {
		b := getColBuilder()
		for i, r := range reports {
			b.addRow(r, lineLens[i])
		}
		payload = b.seal(payload[:0])
		putColBuilder(b)
	}
	for i := 0; i < 8; i++ { // settle segment, dictionary, and payload capacities
		cycle()
	}
	if got := testing.AllocsPerRun(200, cycle); got > colBuilderCycleAllocBudget {
		t.Errorf("colBuilder cycle allocs/op = %v, budget %d", got, colBuilderCycleAllocBudget)
	}
}
