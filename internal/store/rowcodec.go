// Hand-rolled codec for the compact on-disk row encoding. The encoder
// writes bytes identical to json.Marshal(rowFromScan(scan)) — pinned
// by FuzzRowCodecDifferential — so partitions written by either
// implementation hash equal. The decoder is a strict fast path over
// the jsonx cursor that falls back to encoding/json on any input
// outside its subset, and interns the engine/label/file-type
// vocabulary so millions of rows share one string per distinct value.
package store

import (
	"encoding/json"

	"vtdynamics/internal/jsonx"
	"vtdynamics/internal/report"
)

// appendScanRow appends the compact row encoding of scan directly
// from the report, skipping the scanRow intermediate: same UTF-8
// normalization, same zero-preserving timestamps, same omitempty
// label handling.
func appendScanRow(dst []byte, scan *report.ScanReport) []byte {
	dst = append(dst, `{"s":`...)
	dst = jsonx.AppendString(dst, validUTF8(scan.SHA256))
	dst = append(dst, `,"f":`...)
	dst = jsonx.AppendString(dst, validUTF8(scan.FileType))
	dst = append(dst, `,"t":`...)
	dst = jsonx.AppendInt(dst, unix(scan.AnalysisDate))
	dst = append(dst, `,"p":`...)
	dst = jsonx.AppendInt(dst, int64(scan.AVRank))
	dst = append(dst, `,"n":`...)
	dst = jsonx.AppendInt(dst, int64(scan.EnginesTotal))
	dst = append(dst, `,"r":[`...)
	for i := range scan.Results {
		er := &scan.Results[i]
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"e":`...)
		dst = jsonx.AppendString(dst, validUTF8(er.Engine))
		dst = append(dst, `,"v":`...)
		dst = jsonx.AppendInt(dst, int64(er.Verdict))
		dst = append(dst, `,"s":`...)
		dst = jsonx.AppendInt(dst, int64(er.SignatureVersion))
		if lab := validUTF8(er.Label); lab != "" {
			dst = append(dst, `,"l":`...)
			dst = jsonx.AppendString(dst, lab)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']', '}')
	return dst
}

// decodeScanRow parses one partition line into row, reusing row.Res
// capacity. All strings in the result are owned (cloned or interned),
// never aliases of line, so callers may recycle the line buffer. On
// inputs outside the fast path's subset it defers to encoding/json,
// reproducing its exact accept/reject behavior.
func decodeScanRow(line []byte, row *scanRow) error {
	if decodeScanRowFast(line, row) {
		return nil
	}
	// Full reset: the fast attempt may have partially filled the row,
	// and json.Unmarshal merges into existing values.
	*row = scanRow{}
	return json.Unmarshal(line, row)
}

func decodeScanRowFast(line []byte, row *scanRow) bool {
	c := jsonx.Cursor{Buf: line}
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	row.SHA, row.FT = "", ""
	row.At, row.Rank, row.Tot = 0, 0, 0
	row.Res = row.Res[:0]
	seenRes := false
	if !empty {
		for {
			key, kerr := c.Key()
			if kerr != nil {
				return false
			}
			switch string(key) {
			case "s":
				v, err := c.ReadString()
				if err != nil {
					return false
				}
				row.SHA = string(v)
			case "f":
				v, err := c.ReadString()
				if err != nil {
					return false
				}
				row.FT = report.InternBytes(v)
			case "t":
				if row.At, err = c.ReadInt64(); err != nil {
					return false
				}
			case "p":
				v, err := c.ReadInt64()
				if err != nil {
					return false
				}
				row.Rank = int(v)
			case "n":
				v, err := c.ReadInt64()
				if err != nil {
					return false
				}
				row.Tot = int(v)
			case "r":
				// A repeated "r" key makes encoding/json merge the
				// arrays element-wise; punt rather than replicate that.
				if seenRes {
					return false
				}
				seenRes = true
				if !decodeRowResults(&c, &row.Res) {
					return false
				}
			default:
				return false
			}
			done, nerr := c.ObjectNext()
			if nerr != nil {
				return false
			}
			if done {
				break
			}
		}
	}
	if c.AtEOF() != nil {
		return false
	}
	if !seenRes {
		row.Res = nil // match the zero scanRow json.Unmarshal leaves
	}
	return true
}

func decodeRowResults(c *jsonx.Cursor, res *[]rowRes) bool {
	empty, err := c.ArrayStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		var rr rowRes
		if !decodeRowRes(c, &rr) {
			return false
		}
		*res = append(*res, rr)
		done, err := c.ArrayNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

func decodeRowRes(c *jsonx.Cursor, rr *rowRes) bool {
	empty, err := c.ObjectStart()
	if err != nil {
		return false
	}
	if empty {
		return true
	}
	for {
		key, err := c.Key()
		if err != nil {
			return false
		}
		switch string(key) {
		case "e":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			rr.E = report.InternBytes(v)
		case "v":
			v, err := c.ReadInt64()
			if err != nil || v < -128 || v > 127 {
				return false // int8 overflow is an encoding/json error
			}
			rr.V = int8(v)
		case "s":
			v, err := c.ReadInt64()
			if err != nil {
				return false
			}
			rr.S = int(v)
		case "l":
			v, err := c.ReadString()
			if err != nil {
				return false
			}
			rr.L = report.InternBytes(v)
		default:
			return false
		}
		done, err := c.ObjectNext()
		if err != nil {
			return false
		}
		if done {
			return true
		}
	}
}

// rowSHA extracts just the sample hash from a row line, allocation
// free for canonical encoder output (the "s" field leads and needs no
// unescaping). ok=false means the caller must fall back to a full
// decode.
func rowSHA(line []byte) (sha []byte, ok bool) {
	c := jsonx.Cursor{Buf: line}
	empty, err := c.ObjectStart()
	if err != nil || empty {
		return nil, false
	}
	key, err := c.Key()
	if err != nil || string(key) != "s" {
		return nil, false
	}
	v, err := c.ReadString()
	if err != nil {
		return nil, false
	}
	return v, true
}
