package experiments

import (
	"fmt"
	"io"
	"sync"

	"vtdynamics/internal/family"
	"vtdynamics/internal/report"
)

// --- Family-label stability (§3.1's AVClass practice) -------------------

// FamilyStabilityResult measures how the AVClass-style family label
// behaves under the same dynamics that churn the binary label: the
// family is a plurality over token votes, so single-engine flips that
// move AV-Rank often leave the family untouched.
type FamilyStabilityResult struct {
	Samples int
	// Labeled is the fraction of samples with a family at their last
	// scan (the rest are singletons/unlabeled).
	Labeled float64
	// FamilyFlips is the mean number of family changes per labeled
	// sample across its scans (scans without a family are skipped).
	FamilyFlips float64
	// EverChanged is the fraction of labeled samples whose family
	// ever changed.
	EverChanged float64
	// BinaryEverChanged is, for the same samples, the fraction whose
	// threshold(5) binary label changed — the comparison the family
	// practice implicitly relies on.
	BinaryEverChanged float64
	// MeanSupport is the average engine support behind the final
	// family.
	MeanSupport float64
}

// FamilyStability labels every dataset-S sample per scan and counts
// family churn.
func (r *Runner) FamilyStability() (*FamilyStabilityResult, error) {
	samples, err := r.DatasetS()
	if err != nil {
		return nil, err
	}
	const minEngines = 2
	const binaryThreshold = 5
	type acc struct {
		samples, labeled           int
		familyFlips                int
		everChanged, binaryChanged int
		supportSum, supportN       int
	}
	workers := r.cfg.Workers
	accs := make([]acc, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := &accs[w]
			for i := w; i < len(samples); i += workers {
				h := vtsimScan(r.set, samples[i])
				a.samples++
				var prev string
				flips := 0
				labeledAtLast := false
				var lastSupport int
				binPrev, binFlips := false, 0
				for si, rep := range h.Reports {
					var labels []string
					for _, er := range rep.Results {
						if er.Verdict == report.Malicious {
							labels = append(labels, er.Label)
						}
					}
					v, ok := family.Label(labels, minEngines)
					if ok {
						if prev != "" && v.Family != prev {
							flips++
						}
						prev = v.Family
						labeledAtLast = true
						lastSupport = v.Engines
					} else {
						labeledAtLast = false
					}
					bin := rep.AVRank >= binaryThreshold
					if si > 0 && bin != binPrev {
						binFlips++
					}
					binPrev = bin
				}
				if labeledAtLast {
					a.labeled++
					a.familyFlips += flips
					if flips > 0 {
						a.everChanged++
					}
					if binFlips > 0 {
						a.binaryChanged++
					}
					a.supportSum += lastSupport
					a.supportN++
				}
			}
		}(w)
	}
	wg.Wait()

	res := &FamilyStabilityResult{}
	var labeled, flips, ever, bin, supSum, supN int
	for _, a := range accs {
		res.Samples += a.samples
		labeled += a.labeled
		flips += a.familyFlips
		ever += a.everChanged
		bin += a.binaryChanged
		supSum += a.supportSum
		supN += a.supportN
	}
	if res.Samples > 0 {
		res.Labeled = float64(labeled) / float64(res.Samples)
	}
	if labeled > 0 {
		res.FamilyFlips = float64(flips) / float64(labeled)
		res.EverChanged = float64(ever) / float64(labeled)
		res.BinaryEverChanged = float64(bin) / float64(labeled)
	}
	if supN > 0 {
		res.MeanSupport = float64(supSum) / float64(supN)
	}
	return res, nil
}

// Render prints the family-stability summary.
func (f *FamilyStabilityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Family-label stability (AVClass-style plurality, %d dynamic samples)\n", f.Samples)
	fmt.Fprintf(w, "labeled at last scan: %s (mean supporting engines %.1f)\n",
		pct(f.Labeled), f.MeanSupport)
	fmt.Fprintf(w, "family ever changed: %s (%.4f flips/sample)\n",
		pct(f.EverChanged), f.FamilyFlips)
	fmt.Fprintf(w, "threshold(5) binary label ever changed on the same samples: %s\n",
		pct(f.BinaryEverChanged))
	fmt.Fprintln(w, "(plurality family labels ride out the per-engine churn that moves AV-Rank)")
}
