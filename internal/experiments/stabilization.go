package experiments

import (
	"fmt"
	"io"
)

// --- Observation 8: AV-Rank stabilization under fluctuation ranges ---

// StabilizationRow is one fluctuation range's outcome.
type StabilizationRow struct {
	Range int
	// StableShare is the fraction of dataset-S samples that reach
	// stability within this range (paper: 10.9% r=0, 55.1% r=1,
	// 69.58% r=2, 77.84% r=3, 83.52% r=4, 88.11% r=5).
	StableShare float64
	// Within30Days is, of those, the share stabilizing within 30 days
	// (paper: >90% for every r).
	Within30Days float64
	Within20Days float64
	Within10Days float64
}

// Observation8Result reproduces §6.1.
type Observation8Result struct {
	Rows    []StabilizationRow
	Samples int
}

// Observation8Stability measures AV-Rank stabilization for
// r ∈ {0..5} over dataset S.
func (r *Runner) Observation8Stability() (*Observation8Result, error) {
	corpus, err := r.RankCorpus()
	if err != nil {
		return nil, err
	}
	res := &Observation8Result{Samples: len(corpus)}
	for rng := 0; rng <= 5; rng++ {
		var row StabilizationRow
		row.Range = rng
		stable := 0
		w10, w20, w30 := 0, 0, 0
		for _, ss := range corpus {
			sres := ss.Series.StabilizeWithin(rng)
			if !sres.Stable {
				continue
			}
			stable++
			days := daysOf(sres.TimeToStability)
			if days <= 10 {
				w10++
			}
			if days <= 20 {
				w20++
			}
			if days <= 30 {
				w30++
			}
		}
		row.StableShare = float64(stable) / float64(len(corpus))
		if stable > 0 {
			row.Within10Days = float64(w10) / float64(stable)
			row.Within20Days = float64(w20) / float64(stable)
			row.Within30Days = float64(w30) / float64(stable)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Observation 8 table.
func (o *Observation8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Observation 8: AV-Rank stabilization over %d samples\n", o.Samples)
	tb := newTable(w, 4, 10, 12, 12, 12)
	tb.row("r", "stable", "<=10d", "<=20d", "<=30d")
	for _, row := range o.Rows {
		tb.row(row.Range, pct(row.StableShare),
			pct(row.Within10Days), pct(row.Within20Days), pct(row.Within30Days))
	}
	fmt.Fprintln(w, "(paper: 10.9% r=0 .. 88.11% r=5; >90% of stabilizing samples within 30 days)")
}

// --- Figure 9: label stabilization under thresholds -------------------

// LabelStabilityRow is one threshold's outcome.
type LabelStabilityRow struct {
	Threshold int
	// StableShare is the fraction of samples whose labels stabilize
	// (paper: 93.14%-98.04%).
	StableShare float64
	// MeanScanIndex is the average 1-based scan number at which
	// stability begins.
	MeanScanIndex float64
	// MeanDays is the average days from first scan to stability.
	MeanDays float64
	// Within15Days / Within30Days are shares of ALL samples whose
	// label is stable within that horizon (paper: ~87-88% and
	// ~91-92%).
	Within15Days float64
	Within30Days float64
}

// Figure9Result reproduces one panel of Figure 9.
type Figure9Result struct {
	// Scope labels the panel ("all" or "excluding 2-scan samples").
	Scope   string
	Rows    []LabelStabilityRow
	Samples int
}

// figure9Thresholds is the paper's sweep.
var figure9Thresholds = []int{2, 5, 10, 15, 20, 25, 30, 35, 40}

// Figure9LabelStability measures B/M label stabilization per
// threshold. excludeTwoScan reproduces panel (b), which drops the
// samples whose two scans make stability trivial.
func (r *Runner) Figure9LabelStability(excludeTwoScan bool) (*Figure9Result, error) {
	corpus, err := r.RankCorpus()
	if err != nil {
		return nil, err
	}
	scope := "all dataset-S samples"
	if excludeTwoScan {
		scope = "excluding 2-scan samples"
	}
	res := &Figure9Result{Scope: scope}
	for _, t := range figure9Thresholds {
		var row LabelStabilityRow
		row.Threshold = t
		stable := 0
		total := 0
		var idxSum, daySum float64
		w15, w30 := 0, 0
		for _, ss := range corpus {
			if excludeTwoScan && ss.Series.Len() == 2 {
				continue
			}
			total++
			sres := ss.Series.LabelStabilization(t)
			if !sres.Stable {
				continue
			}
			stable++
			idxSum += float64(sres.Index + 1) // 1-based scan number
			days := daysOf(sres.TimeToStability)
			daySum += days
			if days <= 15 {
				w15++
			}
			if days <= 30 {
				w30++
			}
		}
		res.Samples = total
		if total > 0 {
			row.StableShare = float64(stable) / float64(total)
			row.Within15Days = float64(w15) / float64(total)
			row.Within30Days = float64(w30) / float64(total)
		}
		if stable > 0 {
			row.MeanScanIndex = idxSum / float64(stable)
			row.MeanDays = daySum / float64(stable)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Figure 9 panel.
func (f *Figure9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 9 (%s): label stabilization under thresholds (%d samples)\n",
		f.Scope, f.Samples)
	tb := newTable(w, 4, 10, 12, 10, 12, 12)
	tb.row("t", "stable", "mean scan#", "mean d", "<=15d", "<=30d")
	for _, row := range f.Rows {
		tb.row(row.Threshold, pct(row.StableShare),
			fmt.Sprintf("%.2f", row.MeanScanIndex), fmt.Sprintf("%.1f", row.MeanDays),
			pct(row.Within15Days), pct(row.Within30Days))
	}
}
