package experiments

import (
	"bytes"
	"testing"
)

func TestAblationRescanPolicyInflatesHazards(t *testing.T) {
	res, err := testRunner(t).AblationRescanPolicy(800)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 800 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if res.Daily.Opportunities <= res.Organic.Opportunities {
		t.Fatal("daily snapshots should generate more label pairs")
	}
	// The same latent trajectories observed daily must reveal more
	// hazard excursions than organic scanning — the paper's §7.1.1
	// explanation for the discrepancy with Zhu et al.
	if res.Daily.Hazards() <= res.Organic.Hazards() {
		t.Errorf("daily hazards (%d) should exceed organic (%d)",
			res.Daily.Hazards(), res.Organic.Hazards())
	}
	if res.HazardsPer10kTrajDaily <= res.HazardsPer10kTrajOrganic {
		t.Errorf("daily hazard rate (%.2f/10k traj) should exceed organic (%.2f/10k traj)",
			res.HazardsPer10kTrajDaily, res.HazardsPer10kTrajOrganic)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no render output")
	}
}

func TestAblationUpdateCouplingMonotone(t *testing.T) {
	res, err := testRunner(t).AblationUpdateCoupling(600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coincidence must increase with coupling and reach ~1 at
	// coupling 1 for the delayed conversions (baseline keeps it below
	// exactly 1 because FP clears are uncoupled).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].CoincidentShare+0.02 < res.Rows[i-1].CoincidentShare {
			t.Errorf("coincidence not monotone in coupling: %.3f -> %.3f",
				res.Rows[i-1].CoincidentShare, res.Rows[i].CoincidentShare)
		}
	}
	// Even with coupling 0 there is a baseline: updates happen anyway.
	if res.Rows[0].CoincidentShare < 0.1 {
		t.Errorf("baseline coincidence = %.3f, expected a natural floor", res.Rows[0].CoincidentShare)
	}
	if res.Rows[3].CoincidentShare < res.Rows[0].CoincidentShare+0.15 {
		t.Errorf("full coupling (%.3f) should clearly exceed baseline (%.3f)",
			res.Rows[3].CoincidentShare, res.Rows[0].CoincidentShare)
	}
}

func TestAblationMeasurementWindowGrowsDelta(t *testing.T) {
	res, err := testRunner(t).AblationMeasurementWindow()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Mean Δ must be nondecreasing in window length (longer windows
	// can only add scans).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MeanDelta < res.Rows[i-1].MeanDelta {
			t.Fatalf("mean Δ shrank with a longer window: %.3f -> %.3f",
				res.Rows[i-1].MeanDelta, res.Rows[i].MeanDelta)
		}
	}
	// Some samples' Δ must grow when the window extends (paper: 8.6%
	// from 1 to 3 months).
	if res.Rows[1].GrewFromPrev <= 0 {
		t.Error("no samples grew Δ from 30 to 90 days")
	}
	if res.Rows[1].GrewFromPrev > 0.5 {
		t.Errorf("implausibly many samples grew: %.3f", res.Rows[1].GrewFromPrev)
	}
}

func TestAblationCorrelationThreshold(t *testing.T) {
	res, err := testRunner(t).AblationCorrelationThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Lower cutoffs admit at least as many pairs and at-least-as-big
	// largest groups.
	if res.Rows[0].StrongPairs < res.Rows[1].StrongPairs ||
		res.Rows[1].StrongPairs < res.Rows[2].StrongPairs {
		t.Fatalf("pair counts not monotone: %+v", res.Rows)
	}
	if res.Rows[0].LargestGroup < res.Rows[2].LargestGroup {
		t.Fatalf("largest group should not shrink with lower cutoff: %+v", res.Rows)
	}
	// At the paper's 0.8 cutoff the structure is non-trivial.
	if res.Rows[1].Groups < 3 {
		t.Errorf("too few groups at 0.8: %+v", res.Rows[1])
	}
}
