package experiments

import (
	"fmt"
	"io"
	"sort"

	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/stats"
)

// --- Table 3: file-type distribution ---------------------------------

// TypeRow is one row of Table 3.
type TypeRow struct {
	FileType    string
	Samples     int
	SampleShare float64
	Reports     int
	ReportShare float64
}

// Table3Result reproduces Table 3: samples and reports per file type.
type Table3Result struct {
	Rows         []TypeRow
	TotalSamples int
	TotalReports int
	Top10Share   float64 // paper: 78.17% (excluding NULL)
	Top20Share   float64 // paper: 87.04%
}

// Table3FileTypeDist generates the population and tallies Table 3.
func (r *Runner) Table3FileTypeDist() (*Table3Result, error) {
	pop, err := r.Population()
	if err != nil {
		return nil, err
	}
	samples := map[string]int{}
	reports := map[string]int{}
	res := &Table3Result{}
	for _, s := range pop {
		samples[s.FileType]++
		reports[s.FileType] += len(s.ScanTimes)
		res.TotalSamples++
		res.TotalReports += len(s.ScanTimes)
	}
	for ft, n := range samples {
		res.Rows = append(res.Rows, TypeRow{
			FileType:    ft,
			Samples:     n,
			SampleShare: float64(n) / float64(res.TotalSamples),
			Reports:     reports[ft],
			ReportShare: float64(reports[ft]) / float64(res.TotalReports),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Samples > res.Rows[j].Samples })

	// Top-k shares over identified (non-NULL) samples: the paper's
	// 78.17%/87.04% headline numbers are its Table 3 shares divided
	// by the non-NULL total ("excluding NULL file type").
	var identified []TypeRow
	nonNull := 0
	for _, row := range res.Rows {
		if row.FileType != ftypes.NULL {
			nonNull += row.Samples
		}
		if row.FileType != ftypes.NULL && row.FileType != ftypes.Others {
			identified = append(identified, row)
		}
	}
	if nonNull > 0 {
		for i, row := range identified {
			if i < 10 {
				res.Top10Share += float64(row.Samples) / float64(nonNull)
			}
			if i < 20 {
				res.Top20Share += float64(row.Samples) / float64(nonNull)
			}
		}
	}
	return res, nil
}

// Render prints the Table 3 analogue.
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3: file-type distribution")
	tb := newTable(w, 20, 10, 10, 10, 10)
	tb.row("File Type", "#Samples", "%Samples", "#Reports", "%Reports")
	for _, row := range t.Rows {
		tb.row(row.FileType, row.Samples, pct(row.SampleShare), row.Reports, pct(row.ReportShare))
	}
	tb.row("Total", t.TotalSamples, "100.00%", t.TotalReports, "100.00%")
	fmt.Fprintf(w, "top-10 share %s (paper 78.17%%), top-20 share %s (paper 87.04%%)\n",
		pct(t.Top10Share), pct(t.Top20Share))
}

// --- Figure 1: CDF of reports per sample ------------------------------

// Figure1Result reproduces Figure 1 plus the §4.2.2 headline numbers.
type Figure1Result struct {
	// CDFCounts and CDFProbs are the step points of the CDF.
	CDFCounts []float64
	CDFProbs  []float64
	// Headline fractions (paper: 88.81%, 99.10%, 99.90%).
	SingleReport float64
	LessThan6    float64
	LessThan20   float64
	// MultiReport is the number of samples with > 1 report (the
	// analyzable subset; paper: 63,999,984 of 571M).
	MultiReport int
	MaxReports  int
}

// Figure1ReportsCDF computes the reports-per-sample distribution.
func (r *Runner) Figure1ReportsCDF() (*Figure1Result, error) {
	pop, err := r.Population()
	if err != nil {
		return nil, err
	}
	counts := make([]float64, len(pop))
	res := &Figure1Result{}
	for i, s := range pop {
		n := len(s.ScanTimes)
		counts[i] = float64(n)
		if n == 1 {
			res.SingleReport++
		}
		if n < 6 {
			res.LessThan6++
		}
		if n < 20 {
			res.LessThan20++
		}
		if n > 1 {
			res.MultiReport++
		}
		if n > res.MaxReports {
			res.MaxReports = n
		}
	}
	total := float64(len(pop))
	res.SingleReport /= total
	res.LessThan6 /= total
	res.LessThan20 /= total
	ecdf := stats.NewECDF(counts)
	res.CDFCounts, res.CDFProbs = ecdf.Points()
	return res, nil
}

// Render prints the Figure 1 series and headlines.
func (f *Figure1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: CDF of the number of reports per sample")
	tb := newTable(w, 12, 10)
	tb.row("#reports<=", "CDF")
	for i, x := range f.CDFCounts {
		if x > 20 && i != len(f.CDFCounts)-1 {
			continue // print the knee and the final point only
		}
		tb.row(int(x), pct(f.CDFProbs[i]))
	}
	fmt.Fprintf(w, "single-report %s (paper 88.81%%), <6 reports %s (paper 99.10%%), <20 reports %s (paper 99.90%%)\n",
		pct(f.SingleReport), pct(f.LessThan6), pct(f.LessThan20))
	fmt.Fprintf(w, "multi-report samples: %d, max reports for one sample: %d (paper max 64,168)\n",
		f.MultiReport, f.MaxReports)
}
