package experiments

import (
	"fmt"
	"io"

	"vtdynamics/internal/core"
	"vtdynamics/internal/ftypes"
)

// --- Figure 8: white/black/gray proportions under thresholds ---------

// Figure8Result reproduces one panel of Figure 8: the category sweep
// over thresholds 1..50.
type Figure8Result struct {
	// Scope labels the panel ("all types" or "PE files").
	Scope string
	// Counts has one entry per threshold 1..50.
	Counts []core.CategoryCounts
	// MaxGray/MinGray locate the extreme gray shares.
	MaxGray, MinGray     float64
	MaxGrayAt, MinGrayAt int
	// Under10Thresholds lists thresholds with gray share < 10%.
	Under10Thresholds []int
}

func sweep(series []core.RankSeries, scope string) *Figure8Result {
	thresholds := make([]int, 50)
	for i := range thresholds {
		thresholds[i] = i + 1
	}
	res := &Figure8Result{
		Scope:   scope,
		Counts:  core.CategorySweep(series, thresholds),
		MinGray: 2,
	}
	for _, c := range res.Counts {
		g := c.GrayFraction()
		if g > res.MaxGray {
			res.MaxGray, res.MaxGrayAt = g, c.Threshold
		}
		if g < res.MinGray {
			res.MinGray, res.MinGrayAt = g, c.Threshold
		}
		if g < 0.10 {
			res.Under10Thresholds = append(res.Under10Thresholds, c.Threshold)
		}
	}
	return res
}

// Figure8Categories runs the sweep over all dynamic dataset-S samples
// (panel a) and over its PE subset (panel b). Only dynamic samples
// matter: stable samples are never gray (§5.4.1).
func (r *Runner) Figure8Categories() (allTypes, pe *Figure8Result, err error) {
	corpus, cerr := r.RankCorpus()
	if cerr != nil {
		return nil, nil, cerr
	}
	var all, peOnly []core.RankSeries
	for _, ss := range corpus {
		if ss.Series.IsStable() {
			continue
		}
		all = append(all, ss.Series)
		if ftypes.IsPE(ss.FileType) {
			peOnly = append(peOnly, ss.Series)
		}
	}
	return sweep(all, "all types"), sweep(peOnly, "PE files"), nil
}

// Render prints the sweep.
func (f *Figure8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 8 (%s): sample categories under thresholds 1..50\n", f.Scope)
	tb := newTable(w, 6, 10, 10, 10)
	tb.row("t", "white", "black", "gray")
	for _, c := range f.Counts {
		if c.Threshold%5 != 0 && c.Threshold != 1 {
			continue
		}
		tb.row(c.Threshold, pct(c.WhiteFraction()), pct(c.BlackFraction()), pct(c.GrayFraction()))
	}
	fmt.Fprintf(w, "gray max %s at t=%d, min %s at t=%d\n",
		pct(f.MaxGray), f.MaxGrayAt, pct(f.MinGray), f.MinGrayAt)
	fmt.Fprintf(w, "thresholds with gray < 10%%: %v\n", f.Under10Thresholds)
}
