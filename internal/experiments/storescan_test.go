package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestStoreScanCensus(t *testing.T) {
	res, err := testRunner(t).StoreScanCensus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("census saw no rows")
	}
	// The per-type counts must partition the row total.
	var typeRows int64
	for _, n := range res.ByType {
		typeRows += n
	}
	if typeRows != res.Rows {
		t.Fatalf("type counts sum to %d, census rows %d", typeRows, res.Rows)
	}
	// Every row carries a full roster of results, so each engine's
	// result count must equal the row count.
	for e, es := range res.Engines {
		if es.Results != res.Rows {
			t.Fatalf("engine %s has %d results for %d rows", e, es.Results, res.Rows)
		}
		if es.Malicious > es.Results {
			t.Fatalf("engine %s: malicious %d > results %d", e, es.Malicious, es.Results)
		}
	}
	if res.Pairs == 0 {
		t.Fatal("no (sample, engine) pairs")
	}
	if res.First == 0 || res.Last < res.First {
		t.Fatalf("bad span %d .. %d", res.First, res.Last)
	}
	// The middle-fifth window must engage zone pruning on a freshly
	// collected (v3-sidecar) store.
	if res.WindowStats.PrunedTotal() == 0 {
		t.Fatalf("windowed scan pruned nothing: %+v", res.WindowStats)
	}
	if res.WindowRows == 0 || res.WindowRows >= res.Rows {
		t.Fatalf("window matched %d of %d rows, want a proper subset", res.WindowRows, res.Rows)
	}

	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"verdict flips", "blocks pruned by zone maps", "Engine"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
