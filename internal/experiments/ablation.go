package experiments

import (
	"fmt"
	"io"
	"time"

	"vtdynamics/internal/core"
	"vtdynamics/internal/engine"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtsim"
)

// Ablation experiments: each isolates one design choice called out in
// DESIGN.md and measures its effect, grounding a discussion point of
// the paper.
//
//   - AblationRescanPolicy: §7.1.1's discrepancy with Zhu et al.,
//     who rescanned daily and saw hazard flips everywhere while the
//     paper's organic data shows almost none. Scanning the *same*
//     latent trajectories under both policies shows the methodology
//     itself inflates hazard observations.
//   - AblationUpdateCoupling: §5.5's ~60% update-coincident flips —
//     sweep the coupling knob to show measured coincidence tracks it
//     on top of the baseline "an update happened anyway" rate.
//   - AblationMeasurementWindow: §8.1's warning that short windows
//     understate Δ — recompute Δ per sample under growing windows.

// --- Ablation 1: organic vs. daily-snapshot rescanning -----------------

// RescanPolicyResult compares flip observations between organic
// scanning and daily snapshots of the same samples. The right unit of
// comparison is the (engine, sample) trajectory: both policies watch
// the same latent processes, and the question is how many of the
// transient excursions each observation schedule reveals.
type RescanPolicyResult struct {
	// Organic uses the workload's natural scan schedule.
	Organic core.FlipCounts
	// Daily rescans the same samples every day over the same span.
	Daily core.FlipCounts
	// HazardsPer10kTrajOrganic/Daily normalize observed hazards per
	// 10,000 (engine, sample) trajectories.
	HazardsPer10kTrajOrganic float64
	HazardsPer10kTrajDaily   float64
	// HazardsPerFlipOrganic/Daily use the paper's unit (it found 9
	// hazards in 16.8M flips).
	HazardsPerFlipOrganic float64
	HazardsPerFlipDaily   float64
	Samples               int
	Trajectories          int
}

// AblationRescanPolicy scans sampleCount samples under both policies.
// The engine roster's hazard probability is raised so the latent
// excursions exist at measurable density in both arms; what differs
// is purely the observation policy — exactly the methodological
// difference between the paper (organic premium-feed data) and prior
// work's daily snapshots.
func (r *Runner) AblationRescanPolicy(sampleCount int) (*RescanPolicyResult, error) {
	roster := engine.DefaultRoster()
	for i := range roster {
		roster[i].HazardProb = 0.02
	}
	set, err := engine.NewSet(roster, r.cfg.Seed+100,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		return nil, err
	}
	gen, err := sampleset.NewGenerator(sampleset.Config{
		Seed:         r.cfg.Seed + 101,
		NumSamples:   1,
		MultiOnly:    true,
		TopTypesOnly: true,
	})
	if err != nil {
		return nil, err
	}

	res := &RescanPolicyResult{}
	const snapshotDays = 45
	for res.Samples < sampleCount {
		s := gen.Next()
		if !s.Fresh || len(s.ScanTimes) < 2 {
			continue
		}
		// Keep the snapshot span inside the collection window.
		if s.FirstSeen.Add(snapshotDays * 24 * time.Hour).After(simclock.CollectionEnd) {
			continue
		}
		res.Samples++

		// Arm A: organic schedule.
		organic := vtsim.ScanSample(set, s)
		for _, name := range set.Names() {
			res.Organic.Add(core.CountFlips(core.ExtractEngineSeries(organic, name)))
		}

		// Arm B: the same sample scanned daily — Zhu et al.'s
		// methodology.
		daily := *s
		daily.ScanTimes = make([]time.Time, snapshotDays)
		for d := 0; d < snapshotDays; d++ {
			daily.ScanTimes[d] = s.FirstSeen.Add(time.Duration(d) * 24 * time.Hour)
		}
		dailyHist := vtsim.ScanSample(set, &daily)
		for _, name := range set.Names() {
			res.Daily.Add(core.CountFlips(core.ExtractEngineSeries(dailyHist, name)))
		}
	}
	res.Trajectories = res.Samples * set.Len()
	if res.Trajectories > 0 {
		res.HazardsPer10kTrajOrganic = float64(res.Organic.Hazards()) / float64(res.Trajectories) * 1e4
		res.HazardsPer10kTrajDaily = float64(res.Daily.Hazards()) / float64(res.Trajectories) * 1e4
	}
	if res.Organic.Flips() > 0 {
		res.HazardsPerFlipOrganic = float64(res.Organic.Hazards()) / float64(res.Organic.Flips())
	}
	if res.Daily.Flips() > 0 {
		res.HazardsPerFlipDaily = float64(res.Daily.Hazards()) / float64(res.Daily.Flips())
	}
	return res, nil
}

// Render prints the comparison.
func (a *RescanPolicyResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: organic scanning vs. daily snapshots (same samples, same engines)")
	tb := newTable(w, 10, 12, 12, 12, 18, 16)
	tb.row("policy", "pairs", "flips", "hazards", "hazards/10k traj", "hazards/flip")
	tb.row("organic", a.Organic.Opportunities, a.Organic.Flips(),
		a.Organic.Hazards(), fmt.Sprintf("%.2f", a.HazardsPer10kTrajOrganic),
		fmt.Sprintf("%.2e", a.HazardsPerFlipOrganic))
	tb.row("daily", a.Daily.Opportunities, a.Daily.Flips(),
		a.Daily.Hazards(), fmt.Sprintf("%.2f", a.HazardsPer10kTrajDaily),
		fmt.Sprintf("%.2e", a.HazardsPerFlipDaily))
	fmt.Fprintln(w, "(the paper speculates its hazard-flip scarcity vs. Zhu et al. comes from")
	fmt.Fprintln(w, " organic scan spacing — daily snapshots catch transient excursions)")
}

// --- Ablation 2: update-coupling sweep ---------------------------------

// CouplingRow is one coupling setting's measured coincidence.
type CouplingRow struct {
	Coupling float64
	// CoincidentShare is the measured fraction of flips with a
	// version change between the two scans.
	CoincidentShare float64
	Flips           int
}

// UpdateCouplingResult sweeps the coupling knob.
type UpdateCouplingResult struct {
	Rows []CouplingRow
}

// AblationUpdateCoupling measures §5.5's statistic under coupling
// values 0, 0.2, 0.6, 1.0 on a fresh corpus per setting.
func (r *Runner) AblationUpdateCoupling(sampleCount int) (*UpdateCouplingResult, error) {
	res := &UpdateCouplingResult{}
	for _, coupling := range []float64{0, 0.2, 0.6, 1.0} {
		roster := engine.DefaultRoster()
		for i := range roster {
			roster[i].UpdateCoupling = coupling
		}
		set, err := engine.NewSet(roster, r.cfg.Seed+200,
			simclock.CollectionStart, simclock.CollectionEnd)
		if err != nil {
			return nil, err
		}
		gen, err := sampleset.NewGenerator(sampleset.Config{
			Seed:         r.cfg.Seed + 201,
			NumSamples:   1,
			MultiOnly:    true,
			TopTypesOnly: true,
		})
		if err != nil {
			return nil, err
		}
		var flips, coincident, seen int
		for seen < sampleCount {
			s := gen.Next()
			if len(s.ScanTimes) < 2 {
				continue
			}
			seen++
			h := vtsim.ScanSample(set, s)
			for _, name := range set.Names() {
				fc := core.CountFlips(core.ExtractEngineSeries(h, name))
				flips += fc.Flips()
				coincident += fc.UpdateCoincident
			}
		}
		row := CouplingRow{Coupling: coupling, Flips: flips}
		if flips > 0 {
			row.CoincidentShare = float64(coincident) / float64(flips)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (a *UpdateCouplingResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: update coupling vs. measured update-coincident flip share (§5.5)")
	tb := newTable(w, 10, 12, 10)
	tb.row("coupling", "coincident", "flips")
	for _, row := range a.Rows {
		tb.row(fmt.Sprintf("%.1f", row.Coupling), pct(row.CoincidentShare), row.Flips)
	}
	fmt.Fprintln(w, "(coincidence = coupling + baseline chance an update fell in the gap;")
	fmt.Fprintln(w, " the paper measured ~60% on real data)")
}

// --- Ablation 3: measurement-window length -----------------------------

// WindowRow is one window length's outcome.
type WindowRow struct {
	WindowDays int
	// MeanDelta is the mean per-sample Δ within the window.
	MeanDelta float64
	// GrewFromPrev is the fraction of samples whose Δ grew relative
	// to the previous (shorter) window (paper §8.1: 8.6% grew from 1
	// to 3 months).
	GrewFromPrev float64
}

// MeasurementWindowResult reproduces §8.1's window assessment.
type MeasurementWindowResult struct {
	Rows    []WindowRow
	Samples int
}

// AblationMeasurementWindow recomputes Δ per dataset-S sample using
// only the scans within 30, 90, 180, and 420 days of first
// submission.
func (r *Runner) AblationMeasurementWindow() (*MeasurementWindowResult, error) {
	corpus, err := r.RankCorpus()
	if err != nil {
		return nil, err
	}
	windows := []int{30, 90, 180, 420}
	res := &MeasurementWindowResult{Samples: len(corpus)}
	prev := make([]int, len(corpus))
	for wi, days := range windows {
		var sum float64
		grew := 0
		for i, ss := range corpus {
			cutoff := ss.Series.Times[0].Add(time.Duration(days) * 24 * time.Hour)
			// Δ over the prefix of scans inside the window.
			mn, mx := -1, -1
			for j, at := range ss.Series.Times {
				if at.After(cutoff) {
					break
				}
				p := ss.Series.Ranks[j]
				if mn == -1 || p < mn {
					mn = p
				}
				if p > mx {
					mx = p
				}
			}
			d := 0
			if mn >= 0 {
				d = mx - mn
			}
			sum += float64(d)
			if wi > 0 && d > prev[i] {
				grew++
			}
			prev[i] = d
		}
		row := WindowRow{WindowDays: days, MeanDelta: sum / float64(len(corpus))}
		if wi > 0 {
			row.GrewFromPrev = float64(grew) / float64(len(corpus))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the window sweep.
func (a *MeasurementWindowResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: measurement window vs. observed Δ (%d samples, §8.1)\n", a.Samples)
	tb := newTable(w, 12, 12, 14)
	tb.row("window (d)", "mean Δ", "Δ grew vs prev")
	for _, row := range a.Rows {
		tb.row(row.WindowDays, fmt.Sprintf("%.2f", row.MeanDelta), pct(row.GrewFromPrev))
	}
	fmt.Fprintln(w, "(paper: extending 1 month to 3 grew 8.6% of samples' AV-Rank gap;")
	fmt.Fprintln(w, " a short window understates dynamics)")
}

// --- Ablation 4: correlation threshold ---------------------------------

// ThresholdGroupRow is one threshold's group structure.
type ThresholdGroupRow struct {
	Threshold   float64
	StrongPairs int
	Groups      int
	// LargestGroup is the size of the biggest component.
	LargestGroup int
}

// CorrelationThresholdResult sweeps the "strong" cutoff.
type CorrelationThresholdResult struct {
	Rows []ThresholdGroupRow
}

// AblationCorrelationThreshold recomputes the §7.2 group structure at
// cutoffs 0.7, 0.8 (the paper's), and 0.9.
func (r *Runner) AblationCorrelationThreshold() (*CorrelationThresholdResult, error) {
	m, err := r.buildMatrix(nil)
	if err != nil {
		return nil, err
	}
	pairs, err := m.Correlations()
	if err != nil {
		return nil, err
	}
	res := &CorrelationThresholdResult{}
	for _, th := range []float64{0.7, 0.8, 0.9} {
		row := ThresholdGroupRow{Threshold: th}
		for _, p := range pairs {
			if p.Rho > th {
				row.StrongPairs++
			}
		}
		for _, g := range core.StrongGroups(pairs, th) {
			if len(g) > 1 {
				row.Groups++
				if len(g) > row.LargestGroup {
					row.LargestGroup = len(g)
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (a *CorrelationThresholdResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: strong-correlation cutoff vs. group structure (§7.2 uses 0.8)")
	tb := newTable(w, 10, 12, 8, 14)
	tb.row("cutoff", "strong pairs", "groups", "largest group")
	for _, row := range a.Rows {
		tb.row(fmt.Sprintf("%.1f", row.Threshold), row.StrongPairs, row.Groups, row.LargestGroup)
	}
}
