package experiments

import (
	"fmt"
	"io"
	"time"

	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtsim"
)

// --- Table 1: API field-update rules ----------------------------------

// FieldEffect records whether a field changed after an API call.
type FieldEffect struct {
	LastAnalysisDate   bool
	LastSubmissionDate bool
	TimesSubmitted     bool
}

// String renders the Update/Unchange triple of Table 1.
func (f FieldEffect) String() string {
	u := func(b bool) string {
		if b {
			return "Update"
		}
		return "Unchange"
	}
	return fmt.Sprintf("%-8s %-8s %-8s",
		u(f.LastAnalysisDate), u(f.LastSubmissionDate), u(f.TimesSubmitted))
}

// Table1Result reproduces Table 1 by exercising the three APIs on a
// live service and diffing the metadata.
type Table1Result struct {
	Upload FieldEffect
	Rescan FieldEffect
	Report FieldEffect
}

// Matches reports whether the measured effects equal the paper's
// Table 1.
func (t *Table1Result) Matches() bool {
	return t.Upload == FieldEffect{true, true, true} &&
		t.Rescan == FieldEffect{true, false, false} &&
		t.Report == FieldEffect{false, false, false}
}

// Table1APIUpdateRules runs the probe: upload a sample, then call
// each API after advancing the clock, recording which fields moved.
// This mirrors the paper's §3 methodology ("we randomly selected
// several samples, called the three APIs for them multiple times").
func (r *Runner) Table1APIUpdateRules() (*Table1Result, error) {
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(r.set, clock)

	req := vtsim.UploadRequest{
		SHA256:        "table1-probe",
		FileType:      ftypes.Win32EXE,
		Size:          4096,
		Malicious:     true,
		Detectability: 0.8,
	}
	if _, err := svc.Upload(req); err != nil {
		return nil, err
	}

	diff := func(before, after report.SampleMeta) FieldEffect {
		return FieldEffect{
			LastAnalysisDate:   !after.LastAnalysisDate.Equal(before.LastAnalysisDate),
			LastSubmissionDate: !after.LastSubmissionDate.Equal(before.LastSubmissionDate),
			TimesSubmitted:     after.TimesSubmitted != before.TimesSubmitted,
		}
	}
	res := &Table1Result{}

	// Upload probe.
	before, err := svc.Report(req.SHA256)
	if err != nil {
		return nil, err
	}
	clock.Advance(24 * time.Hour)
	after, err := svc.Upload(req)
	if err != nil {
		return nil, err
	}
	res.Upload = diff(before.Meta, after.Meta)

	// Rescan probe.
	before = after
	clock.Advance(24 * time.Hour)
	after, err = svc.Rescan(req.SHA256)
	if err != nil {
		return nil, err
	}
	res.Rescan = diff(before.Meta, after.Meta)

	// Report probe.
	before = after
	clock.Advance(24 * time.Hour)
	after, err = svc.Report(req.SHA256)
	if err != nil {
		return nil, err
	}
	res.Report = diff(before.Meta, after.Meta)

	return res, nil
}

// Render prints the Table 1 analogue.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: update rules for the three report-generating APIs")
	fmt.Fprintf(w, "%-8s %-8s %-8s %-8s\n", "", "analys.", "submis.", "times")
	fmt.Fprintf(w, "%-8s %s\n", "Upload", t.Upload)
	fmt.Fprintf(w, "%-8s %s\n", "Rescan", t.Rescan)
	fmt.Fprintf(w, "%-8s %s\n", "Report", t.Report)
	if t.Matches() {
		fmt.Fprintln(w, "matches the paper's Table 1 exactly")
	} else {
		fmt.Fprintln(w, "MISMATCH with the paper's Table 1")
	}
}
