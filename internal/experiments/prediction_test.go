package experiments

import (
	"bytes"
	"testing"
)

func TestLabelPrediction(t *testing.T) {
	res, err := testRunner(t).LabelPrediction()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSize == 0 || res.TestSize == 0 {
		t.Fatal("empty splits")
	}
	// The learned aggregator must clearly beat coin-flipping and the
	// extreme thresholds.
	acc := res.Learned.Accuracy()
	if acc < 0.75 {
		t.Fatalf("learned accuracy = %.3f", acc)
	}
	t1 := res.Baselines[1]
	t20 := res.Baselines[20]
	if acc < t20.Accuracy()-0.05 {
		t.Errorf("learned (%.3f) should be competitive with threshold(20) (%.3f)",
			acc, t20.Accuracy())
	}
	// t=1 is recall-maximal by construction; the learned model should
	// beat its accuracy (t=1 flags every FP).
	if t1.Recall() < res.Learned.Recall()-0.1 {
		t.Errorf("threshold(1) recall (%.3f) should be near-maximal", t1.Recall())
	}
	if len(res.TopWeights) == 0 {
		t.Fatal("no weights reported")
	}
	// §7.2's prediction: copy-group engines share weight.
	if res.GroupWeightRatio <= 0 {
		t.Fatal("group weight ratio not computed")
	}
	if res.GroupWeightRatio > 1.3 {
		t.Errorf("group engines carry %.2fx independent weight; expected <= ~1",
			res.GroupWeightRatio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no render output")
	}
}
