package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestStrategyStability(t *testing.T) {
	res, err := testRunner(t).StrategyStability()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 strategies", len(res.Rows))
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	rowFor := func(name string) StrategyRow {
		for _, r := range res.Rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing strategy %q", name)
		return StrategyRow{}
	}
	t1 := rowFor("threshold(1)")
	t5 := rowFor("threshold(5)")
	pc := rowFor("percentage(50%)")

	// t=1 flags everything any engine ever touched: most malicious
	// final labels, and maximal exposure to single-engine churn.
	if t1.MaliciousShare <= t5.MaliciousShare {
		t.Errorf("threshold(1) malicious share %.3f should exceed threshold(5) %.3f",
			t1.MaliciousShare, t5.MaliciousShare)
	}
	// The 50% rule labels almost everything benign on a 70+ engine
	// roster (few samples convince half the engines) and so flips
	// much less than t=1 — the conservatism/stability trade-off.
	if pc.MaliciousShare >= t5.MaliciousShare {
		t.Errorf("percentage(50%%) should be the most conservative: %.3f vs %.3f",
			pc.MaliciousShare, t5.MaliciousShare)
	}
	// Every strategy sees *some* flips on dynamic samples.
	total := 0.0
	for _, r := range res.Rows {
		if r.FlipRate < 0 {
			t.Fatalf("negative flip rate: %+v", r)
		}
		total += r.FlipRate
	}
	if total == 0 {
		t.Fatal("no strategy observed any label flips on dynamic samples")
	}

	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "trusted(") {
		t.Fatal("render missing trusted-subset row")
	}
}
