package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteCSVDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tables := []CSVTable{
		{Name: "demo", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}},
	}
	if err := WriteCSVDir(dir, tables); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "demo.csv"))
	if len(rows) != 3 || rows[0][0] != "a" || rows[2][1] != "4" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFigureCSVExports(t *testing.T) {
	r := testRunner(t)
	dir := t.TempDir()
	var tables []CSVTable

	f1, err := r.Figure1ReportsCDF()
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, f1.CSVTables()...)

	f5, err := r.Figure5DeltaCDF()
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, f5.CSVTables()...)

	f8a, f8b, err := r.Figure8Categories()
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, f8a.CSVTables()...)
	tables = append(tables, f8b.CSVTables()...)

	o8, err := r.Observation8Stability()
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, o8.CSVTables()...)

	f10, err := r.Figure10FlipRatios()
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, f10.CSVTables()...)

	f11, err := r.Figure11Correlation()
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, f11.CSVTables()...)

	if err := WriteCSVDir(dir, tables); err != nil {
		t.Fatal(err)
	}

	// Figure 1 CDF must parse and be monotone.
	rows := readCSV(t, filepath.Join(dir, "figure1_reports_cdf.csv"))
	if len(rows) < 3 {
		t.Fatalf("figure1 rows = %d", len(rows))
	}
	prev := 0.0
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatal("exported CDF not monotone")
		}
		prev = v
	}

	// Figure 8 sweeps must have 50 thresholds and partition to ~1.
	for _, name := range []string{"figure8a_categories_all", "figure8b_categories_pe"} {
		rows := readCSV(t, filepath.Join(dir, name+".csv"))
		if len(rows) != 51 {
			t.Fatalf("%s rows = %d, want 51", name, len(rows))
		}
		for _, row := range rows[1:] {
			var sum float64
			for _, cell := range row[1:] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					t.Fatal(err)
				}
				sum += v
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("%s partition sums to %v", name, sum)
			}
		}
	}

	// Flip matrix must include the Arcabit/ELF cell.
	rows = readCSV(t, filepath.Join(dir, "figure10_flip_ratio_matrix.csv"))
	found := false
	for _, row := range rows[1:] {
		if row[0] == "Arcabit" && row[1] == "ELF executable" {
			found = true
		}
	}
	if !found {
		t.Fatal("Arcabit/ELF cell missing from export")
	}

	// Strong pairs must include Paloalto-APEX.
	rows = readCSV(t, filepath.Join(dir, "figure11_strong_pairs.csv"))
	found = false
	for _, row := range rows[1:] {
		if (row[0] == "Paloalto" && row[1] == "APEX") || (row[0] == "APEX" && row[1] == "Paloalto") {
			found = true
		}
	}
	if !found {
		t.Fatal("Paloalto-APEX missing from export")
	}
}
