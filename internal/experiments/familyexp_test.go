package experiments

import (
	"bytes"
	"testing"
)

func TestFamilyStability(t *testing.T) {
	res, err := testRunner(t).FamilyStability()
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	// Most dynamic samples are malicious with several detectors, so a
	// plurality family should usually emerge.
	if res.Labeled < 0.5 {
		t.Fatalf("labeled fraction = %.3f", res.Labeled)
	}
	if res.MeanSupport < 2 {
		t.Fatalf("mean support = %.2f, below the vote threshold", res.MeanSupport)
	}
	// The headline: family labels are far more stable than binary
	// threshold labels under the same dynamics.
	if res.EverChanged >= res.BinaryEverChanged {
		t.Errorf("family churn (%.4f) should be below binary churn (%.4f)",
			res.EverChanged, res.BinaryEverChanged)
	}
	if res.EverChanged > 0.10 {
		t.Errorf("family labels too unstable: %.4f", res.EverChanged)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no render output")
	}
}
