package experiments

import (
	"fmt"
	"io"

	"vtdynamics/internal/feed"
	"vtdynamics/internal/store"
)

// --- Table 2: dataset overview (collection pipeline end to end) -------

// MonthRow is one row of Table 2.
type MonthRow struct {
	Month       string
	Reports     int
	StoredBytes int64
	RawBytes    int64
}

// Table2Result reproduces Table 2 by running the full collection
// pipeline: workload → service → per-minute feed → collector →
// compressed store, then reading the store's monthly accounting.
type Table2Result struct {
	Rows         []MonthRow
	TotalReports int
	TotalSamples int
	TotalStored  int64
	TotalRaw     int64
	// CompressionRatio is raw/stored (paper: 10.06×).
	CompressionRatio float64
	// FeedStats is the collector's own accounting; its envelope count
	// must equal the store's report count (no loss, no duplication).
	FeedStats feed.Stats
}

// Table2DatasetOverview drives the pipeline over a ServiceSize
// workload. dir is the store directory (use t.TempDir() in tests or
// an output path in cmd/vtanalyze).
func (r *Runner) Table2DatasetOverview(dir string) (*Table2Result, error) {
	// The pipeline run is shared with StoreScanCensus (storescan.go);
	// Table 2 only reads back the monthly accounting.
	fstats, err := r.runPipelineStore(dir)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	res := &Table2Result{FeedStats: fstats, TotalSamples: st.NumSamples()}
	for _, month := range st.Months() {
		ps := st.Stats(month)
		res.Rows = append(res.Rows, MonthRow{
			Month:       month,
			Reports:     ps.Reports,
			StoredBytes: ps.StoredBytes,
			RawBytes:    ps.RawBytes,
		})
		res.TotalReports += ps.Reports
		res.TotalStored += ps.StoredBytes
		res.TotalRaw += ps.RawBytes
	}
	if res.TotalStored > 0 {
		res.CompressionRatio = float64(res.TotalRaw) / float64(res.TotalStored)
	}
	return res, nil
}

// Render prints the Table 2 analogue.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2: dataset overview (stored by month)")
	tb := newTable(w, 10, 10, 14, 14)
	tb.row("Month", "Reports", "Stored", "Raw")
	for _, row := range t.Rows {
		tb.row(row.Month, row.Reports, fmtBytes(row.StoredBytes), fmtBytes(row.RawBytes))
	}
	tb.row("Total", t.TotalReports, fmtBytes(t.TotalStored), fmtBytes(t.TotalRaw))
	fmt.Fprintf(w, "samples %d, collector polls %d, envelopes %d\n",
		t.TotalSamples, t.FeedStats.Polls, t.FeedStats.Envelopes)
	fmt.Fprintf(w, "compression ratio %.2fx (paper 10.06x with metadata dedup + compression)\n",
		t.CompressionRatio)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
