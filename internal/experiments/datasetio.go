package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"vtdynamics/internal/feed"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtsim"
)

// --- Table 2: dataset overview (collection pipeline end to end) -------

// MonthRow is one row of Table 2.
type MonthRow struct {
	Month       string
	Reports     int
	StoredBytes int64
	RawBytes    int64
}

// Table2Result reproduces Table 2 by running the full collection
// pipeline: workload → service → per-minute feed → collector →
// compressed store, then reading the store's monthly accounting.
type Table2Result struct {
	Rows         []MonthRow
	TotalReports int
	TotalSamples int
	TotalStored  int64
	TotalRaw     int64
	// CompressionRatio is raw/stored (paper: 10.06×).
	CompressionRatio float64
	// FeedStats is the collector's own accounting; its envelope count
	// must equal the store's report count (no loss, no duplication).
	FeedStats feed.Stats
}

// Table2DatasetOverview drives the pipeline over a ServiceSize
// workload. dir is the store directory (use t.TempDir() in tests or
// an output path in cmd/vtanalyze).
func (r *Runner) Table2DatasetOverview(dir string) (*Table2Result, error) {
	samples, err := sampleset.Generate(sampleset.Config{
		Seed:       r.cfg.Seed + 4,
		NumSamples: r.cfg.ServiceSize,
	})
	if err != nil {
		return nil, err
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(r.set, clock)
	if err := vtsim.RunWorkload(svc, clock, samples); err != nil {
		return nil, err
	}

	var opts []store.Option
	if r.cfg.StoreFormat != 0 {
		opts = append(opts, store.WithFormat(r.cfg.StoreFormat))
	}
	st, err := store.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	// The store is a BatchSink, so each slice commits under one
	// partition-lock acquisition; Workers > 1 overlaps feed fetches
	// while the ordered commit keeps the store contents byte-identical
	// to a serial run (asserted by the determinism suite).
	collector := feed.NewCollector(
		feed.SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
			return svc.FeedBetween(from, to), nil
		}),
		st,
	)
	collector.Workers = r.cfg.Workers
	// Hour-resolution polling keeps the 14-month window tractable;
	// slice semantics are identical to the paper's per-minute loop.
	fstats, err := collector.RunHourly(context.Background(),
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	res := &Table2Result{FeedStats: fstats, TotalSamples: st.NumSamples()}
	for _, month := range st.Months() {
		ps := st.Stats(month)
		res.Rows = append(res.Rows, MonthRow{
			Month:       month,
			Reports:     ps.Reports,
			StoredBytes: ps.StoredBytes,
			RawBytes:    ps.RawBytes,
		})
		res.TotalReports += ps.Reports
		res.TotalStored += ps.StoredBytes
		res.TotalRaw += ps.RawBytes
	}
	if res.TotalStored > 0 {
		res.CompressionRatio = float64(res.TotalRaw) / float64(res.TotalStored)
	}
	return res, nil
}

// Render prints the Table 2 analogue.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2: dataset overview (stored by month)")
	tb := newTable(w, 10, 10, 14, 14)
	tb.row("Month", "Reports", "Stored", "Raw")
	for _, row := range t.Rows {
		tb.row(row.Month, row.Reports, fmtBytes(row.StoredBytes), fmtBytes(row.RawBytes))
	}
	tb.row("Total", t.TotalReports, fmtBytes(t.TotalStored), fmtBytes(t.TotalRaw))
	fmt.Fprintf(w, "samples %d, collector polls %d, envelopes %d\n",
		t.TotalSamples, t.FeedStats.Polls, t.FeedStats.Envelopes)
	fmt.Fprintf(w, "compression ratio %.2fx (paper 10.06x with metadata dedup + compression)\n",
		t.CompressionRatio)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
