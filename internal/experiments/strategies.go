package experiments

import (
	"fmt"
	"io"
	"sync"

	"vtdynamics/internal/labeling"
)

// §3.1 surveys how researchers collapse 70+ verdicts into one label:
// absolute thresholds (1, 2, 10), percentage thresholds (50%), and
// trusted-engine subsets. The paper's dynamics results imply these
// strategies differ in how exposed they are to label churn; this
// experiment quantifies that by replaying every strategy over the
// same dynamic histories and counting aggregated-label flips.

// StrategyRow is one strategy's stability outcome.
type StrategyRow struct {
	Name string
	// FlipRate is aggregated-label flips per sample.
	FlipRate float64
	// EverFlipped is the fraction of samples whose aggregated label
	// changed at least once — the user-visible inconsistency risk.
	EverFlipped float64
	// MaliciousShare is the fraction of final labels that are
	// malicious (context for comparing strategies' operating points).
	MaliciousShare float64
}

// StrategyStabilityResult compares aggregation strategies.
type StrategyStabilityResult struct {
	Rows    []StrategyRow
	Samples int
}

// trustedEngines is a plausible "high-reputation subset" of the
// roster, mirroring the selection practice in the surveyed papers.
var trustedEngines = []string{
	"Kaspersky", "Microsoft", "Symantec", "Sophos", "ESET-NOD32",
	"BitDefender", "McAfee", "TrendMicro", "Avira", "DrWeb",
}

// StrategyStability replays each aggregation strategy over dataset S.
func (r *Runner) StrategyStability() (*StrategyStabilityResult, error) {
	samples, err := r.DatasetS()
	if err != nil {
		return nil, err
	}
	aggs := []labeling.Aggregator{}
	for _, t := range []int{1, 2, 5, 10} {
		th, err := labeling.NewThreshold(t)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, th)
	}
	pc, err := labeling.NewPercentage(0.5)
	if err != nil {
		return nil, err
	}
	aggs = append(aggs, pc)
	ts, err := labeling.NewTrustedSubset(trustedEngines, 2)
	if err != nil {
		return nil, err
	}
	aggs = append(aggs, ts)

	type acc struct {
		flips, everFlipped, malicious []int
		samples                       int
	}
	workers := r.cfg.Workers
	accs := make([]acc, workers)
	for w := range accs {
		accs[w].flips = make([]int, len(aggs))
		accs[w].everFlipped = make([]int, len(aggs))
		accs[w].malicious = make([]int, len(aggs))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := &accs[w]
			for i := w; i < len(samples); i += workers {
				h := vtsimScan(r.set, samples[i])
				a.samples++
				for j, agg := range aggs {
					labels := labeling.LabelHistory(agg, h)
					f := labeling.Flips(labels)
					a.flips[j] += f
					if f > 0 {
						a.everFlipped[j]++
					}
					if len(labels) > 0 && labels[len(labels)-1] {
						a.malicious[j]++
					}
				}
			}
		}(w)
	}
	wg.Wait()

	res := &StrategyStabilityResult{}
	totalFlips := make([]int, len(aggs))
	totalEver := make([]int, len(aggs))
	totalMal := make([]int, len(aggs))
	for _, a := range accs {
		res.Samples += a.samples
		for j := range aggs {
			totalFlips[j] += a.flips[j]
			totalEver[j] += a.everFlipped[j]
			totalMal[j] += a.malicious[j]
		}
	}
	for j, agg := range aggs {
		row := StrategyRow{Name: agg.Name()}
		if res.Samples > 0 {
			row.FlipRate = float64(totalFlips[j]) / float64(res.Samples)
			row.EverFlipped = float64(totalEver[j]) / float64(res.Samples)
			row.MaliciousShare = float64(totalMal[j]) / float64(res.Samples)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the comparison.
func (s *StrategyStabilityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Label-aggregation strategy stability over %d dynamic samples (§3.1 strategies)\n",
		s.Samples)
	tb := newTable(w, 26, 12, 14, 14)
	tb.row("strategy", "flips/sample", "ever flipped", "final malicious")
	for _, row := range s.Rows {
		tb.row(row.Name, fmt.Sprintf("%.3f", row.FlipRate),
			pct(row.EverFlipped), pct(row.MaliciousShare))
	}
	fmt.Fprintln(w, "(mid-range thresholds tolerate dynamics best — the paper's §5.4 conclusion)")
}
