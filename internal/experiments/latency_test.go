package experiments

import (
	"bytes"
	"testing"
)

func TestEngineLatencyProfiles(t *testing.T) {
	res, err := testRunner(t).EngineLatencyProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalConversions == 0 {
		t.Fatal("no observed conversions")
	}
	if len(res.PerEngine) < 10 {
		t.Fatalf("profiled engines = %d", len(res.PerEngine))
	}
	// Profiles sorted slowest-first.
	for i := 1; i < len(res.PerEngine); i++ {
		if res.PerEngine[i].MeanDays > res.PerEngine[i-1].MeanDays {
			t.Fatal("profiles not sorted by mean latency")
		}
	}
	// Observed latencies are positive and the overall median sits in
	// a plausible band (conversions are observed at the next scan, so
	// the floor is one inter-scan gap).
	if res.Overall.Median <= 0 || res.Overall.Median > 120 {
		t.Fatalf("overall median latency = %.1f d", res.Overall.Median)
	}
	// The flip-prone low-instant engines must be slower learners than
	// the stable ones. F-Secure converts lazily by construction;
	// Jiangmin detects almost everything instantly so its few
	// conversions can be noise — compare means only if profiled.
	var fsec, jiang float64
	for _, row := range res.PerEngine {
		switch row.Engine {
		case "F-Secure":
			fsec = row.MeanDays
		case "Jiangmin":
			jiang = row.MeanDays
		}
	}
	if fsec == 0 {
		t.Fatal("F-Secure (flip-prone) should have plenty of observed conversions")
	}
	_ = jiang // may legitimately be absent: too few conversions
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no render output")
	}
}

func TestKappaRobustness(t *testing.T) {
	res, err := testRunner(t).KappaRobustness()
	if err != nil {
		t.Fatal(err)
	}
	// The headline groups must persist under κ.
	if len(res.KappaGroups) < 3 {
		t.Fatalf("kappa groups = %v", res.KappaGroups)
	}
	find := func(groups [][]string, a, b string) bool {
		for _, g := range groups {
			hasA, hasB := false, false
			for _, e := range g {
				if e == a {
					hasA = true
				}
				if e == b {
					hasB = true
				}
			}
			if hasA && hasB {
				return true
			}
		}
		return false
	}
	for _, pair := range [][2]string{{"Paloalto", "APEX"}, {"Avast", "AVG"}} {
		if !find(res.KappaGroups, pair[0], pair[1]) {
			t.Errorf("pair %v missing from kappa groups %v", pair, res.KappaGroups)
		}
		if !find(res.SpearmanGroups, pair[0], pair[1]) {
			t.Errorf("pair %v missing from spearman groups", pair)
		}
	}
	// The metrics must substantially agree.
	if res.AgreeingPairs == 0 {
		t.Fatal("no pairs strong under both metrics")
	}
	if res.SpearmanOnly > res.AgreeingPairs && res.KappaOnly > res.AgreeingPairs {
		t.Errorf("metrics disagree more than they agree: %d both, %d rho-only, %d kappa-only",
			res.AgreeingPairs, res.SpearmanOnly, res.KappaOnly)
	}
}
