// Package experiments regenerates every table and figure of the
// paper's evaluation from the simulated pipeline. Each experiment is
// a method on Runner returning a typed result with a Render method
// that prints the same rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured for each.
//
// Experiment index (see DESIGN.md §3 for the full mapping):
//
//	Table1APIUpdateRules     Table 1   API field-update rules
//	Table2DatasetOverview    Table 2   monthly feed → store accounting
//	Table3FileTypeDist       Table 3   file-type distribution
//	Figure1ReportsCDF        Fig. 1    CDF of reports per sample
//	Figure2StableDynamic     Fig. 2    report-count CDF by class (+Obs. 1)
//	Figure3StableAVRank      Fig. 3    AV-Rank CDF of stable samples
//	Figure4StableTimeSpan    Fig. 4    stable span by AV-Rank
//	Figure5DeltaCDF          Fig. 5    δ and Δ CDFs
//	Figure6DeltaByType       Fig. 6    δ/Δ boxplots per file type
//	Figure7DiffVsInterval    Fig. 7    rank diff vs. scan interval
//	Figure8Categories        Fig. 8    white/black/gray sweep (all + PE)
//	Figure9LabelStability    Fig. 9    label stabilization vs. threshold
//	Observation8Stability    Obs. 8    AV-Rank stabilization, r=0..5
//	Figure10FlipRatios       Fig. 10   flip ratio per engine × type
//	Figure11Correlation      Fig. 11   strong engine correlations
//	Figure12PerTypeGroups    Fig. 12 / Tables 4–8 per-type groups
//	Section71Flips           §7.1.1    flip census incl. hazard flips
//	Section55FlipCauses      §5.5      update-coincident flips
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"vtdynamics/internal/core"
	"vtdynamics/internal/engine"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtsim"
)

// vtsimScan is the per-sample scan entry point (aliased for brevity
// in the hot loops below).
func vtsimScan(set *engine.Set, s *sampleset.Sample) *report.History {
	return vtsim.ScanSample(set, s)
}

// Config sizes the experiments. Zero values select defaults that run
// the full suite in tens of seconds on a laptop.
type Config struct {
	// Seed drives the whole pipeline; equal seeds reproduce results
	// exactly.
	Seed int64
	// PopulationSize is the sample count for population-level
	// experiments (Table 3, Figure 1). Default 400_000.
	PopulationSize int
	// DynamicsSize is the multi-report sample count for dynamics
	// experiments (dataset S analogue). Default 60_000.
	DynamicsSize int
	// ServiceSize is the sample count for the service/feed/store
	// experiments (Tables 1–2), which run the full HTTP-shaped
	// pipeline. Default 8_000.
	ServiceSize int
	// CorrelationScans caps the number of scan rows fed to the
	// engine-correlation matrices. Default 40_000.
	CorrelationScans int
	// Workers is the scan parallelism, and the feed-collector fetch
	// concurrency in the Table 2 pipeline. Default GOMAXPROCS. The
	// worker count never changes results, only wall time (proved by
	// the internal/concurrency determinism harness).
	Workers int
	// StoreFormat selects the block format the Table 2 pipeline's
	// store writes (store.FormatV1, store.FormatV2). Zero means the
	// store package's default. The format never changes experiment
	// results, only on-disk encoding (proved by the determinism
	// harness, which runs both).
	StoreFormat int
}

func (c Config) withDefaults() Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 400_000
	}
	if c.DynamicsSize == 0 {
		c.DynamicsSize = 60_000
	}
	if c.ServiceSize == 0 {
		c.ServiceSize = 8_000
	}
	if c.CorrelationScans == 0 {
		c.CorrelationScans = 40_000
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Runner executes experiments over one seeded pipeline. Construct
// with NewRunner; methods are safe to call in any order (shared
// corpora are built lazily and cached).
type Runner struct {
	cfg Config
	set *engine.Set

	mu sync.Mutex
	// dynSamples is dataset S: fresh, top-20-type, multi-report.
	dynSamples []*sampleset.Sample
	// rankCorpus caches the rank series of dynSamples.
	rankCorpus []SampleSeries
	// multiSamples is the §5.1/5.2 corpus: every multi-report sample
	// regardless of type or freshness.
	multiSamples []*sampleset.Sample
	// multiCorpus caches the rank series of multiSamples.
	multiCorpus []SampleSeries
	// population caches the Table 3 / Figure 1 population.
	population []*sampleset.Sample
}

// SampleSeries pairs a sample's identity with its AV-Rank series.
type SampleSeries struct {
	SHA256   string
	FileType string
	Fresh    bool
	Series   core.RankSeries
}

// NewRunner instantiates the engine roster for the collection window.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	set, err := engine.NewSet(engine.DefaultRoster(), cfg.Seed,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, set: set}, nil
}

// Engines exposes the roster (used by correlation experiments and
// cmd/vtanalyze).
func (r *Runner) Engines() *engine.Set { return r.set }

// Population returns (cached) the full mixed population used by the
// landscape experiments.
func (r *Runner) Population() ([]*sampleset.Sample, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.population != nil {
		return r.population, nil
	}
	pop, err := sampleset.Generate(sampleset.Config{
		Seed:       r.cfg.Seed + 1,
		NumSamples: r.cfg.PopulationSize,
	})
	if err != nil {
		return nil, err
	}
	r.population = pop
	return pop, nil
}

// DatasetS returns (cached) the dynamics corpus — the analogue of
// the paper's dataset S: fresh samples of the top-20 file types with
// at least two in-window scans AND changing AV-Ranks (Δ > 0). The
// paper's S is effectively its dynamic-sample set (§5.3.1 "fresh
// dynamic samples"; its Δ analysis starts at 1 and its §6
// stabilization shares only make sense over dynamic samples).
//
// Filtering on Δ requires scanning, so this builds the rank corpus as
// a side effect; RankCorpus shares the cache.
func (r *Runner) DatasetS() ([]*sampleset.Sample, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.buildDatasetSLocked(); err != nil {
		return nil, err
	}
	return r.dynSamples, nil
}

func (r *Runner) buildDatasetSLocked() error {
	if r.dynSamples != nil {
		return nil
	}
	gen, err := sampleset.NewGenerator(sampleset.Config{
		Seed:         r.cfg.Seed + 2,
		NumSamples:   1, // generator is used as a stream; see Next loop
		MultiOnly:    true,
		TopTypesOnly: true,
	})
	if err != nil {
		return err
	}
	var samples []*sampleset.Sample
	var corpus []SampleSeries
	const maxBatches = 40
	for batch := 0; batch < maxBatches && len(samples) < r.cfg.DynamicsSize; batch++ {
		// Candidate batch: fresh, multi-scan samples.
		cand := make([]*sampleset.Sample, 0, r.cfg.DynamicsSize)
		for len(cand) < r.cfg.DynamicsSize {
			s := gen.Next()
			if !s.Fresh || len(s.ScanTimes) < 2 {
				continue
			}
			cand = append(cand, s)
		}
		scanned := r.scanToSeries(cand)
		for i, ss := range scanned {
			if ss.Series.Delta() == 0 {
				continue // stable: not in S
			}
			samples = append(samples, cand[i])
			corpus = append(corpus, ss)
			if len(samples) == r.cfg.DynamicsSize {
				break
			}
		}
	}
	r.dynSamples = samples
	r.rankCorpus = corpus
	return nil
}

// MultiReportSamples returns (cached) the §5.1/5.2 corpus: all
// multi-report samples, any file type, fresh or old.
func (r *Runner) MultiReportSamples() ([]*sampleset.Sample, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.multiSamples != nil {
		return r.multiSamples, nil
	}
	gen, err := sampleset.NewGenerator(sampleset.Config{
		Seed:       r.cfg.Seed + 3,
		NumSamples: r.cfg.DynamicsSize * 2,
		MultiOnly:  true,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*sampleset.Sample, 0, r.cfg.DynamicsSize)
	for len(out) < r.cfg.DynamicsSize {
		s := gen.Next()
		if len(s.ScanTimes) < 2 {
			continue // window truncation stranded a singleton
		}
		out = append(out, s)
	}
	r.multiSamples = out
	return out, nil
}

// MultiRankCorpus returns (cached) the rank series of the
// multi-report corpus.
func (r *Runner) MultiRankCorpus() ([]SampleSeries, error) {
	r.mu.Lock()
	if r.multiCorpus != nil {
		defer r.mu.Unlock()
		return r.multiCorpus, nil
	}
	r.mu.Unlock()
	samples, err := r.MultiReportSamples()
	if err != nil {
		return nil, err
	}
	corpus := r.scanToSeries(samples)
	r.mu.Lock()
	r.multiCorpus = corpus
	r.mu.Unlock()
	return corpus, nil
}

// scanToSeries scans samples in parallel into rank series.
func (r *Runner) scanToSeries(samples []*sampleset.Sample) []SampleSeries {
	corpus := make([]SampleSeries, len(samples))
	workers := r.cfg.Workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				s := samples[i]
				h := vtsimScan(r.set, s)
				corpus[i] = SampleSeries{
					SHA256:   s.SHA256,
					FileType: s.FileType,
					Fresh:    s.Fresh,
					Series:   core.FromHistory(h),
				}
			}
		}(w)
	}
	wg.Wait()
	return corpus
}

// ForEachHistory scans the given samples in parallel, invoking fn for
// each resulting history. fn must be safe for concurrent use (use
// per-worker accumulators and merge, or lock).
func (r *Runner) ForEachHistory(samples []*sampleset.Sample, fn func(*sampleset.Sample, *report.History)) {
	workers := r.cfg.Workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				fn(samples[i], vtsimScan(r.set, samples[i]))
			}
		}(w)
	}
	wg.Wait()
}

// RankCorpus returns (cached) the rank series for every dataset-S
// sample — the shared input of the rank-level experiments.
func (r *Runner) RankCorpus() ([]SampleSeries, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.buildDatasetSLocked(); err != nil {
		return nil, err
	}
	return r.rankCorpus, nil
}

// --- rendering helpers shared by the experiment results -------------

// table is a minimal fixed-width text table writer.
type table struct {
	w      io.Writer
	format string
}

func newTable(w io.Writer, widths ...int) *table {
	format := ""
	for _, wd := range widths {
		format += fmt.Sprintf("%%-%dv ", wd)
	}
	format += "\n"
	return &table{w: w, format: format}
}

func (t *table) row(cells ...any) {
	fmt.Fprintf(t.w, t.format, cells...)
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }
