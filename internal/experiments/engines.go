package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"vtdynamics/internal/core"
	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/report"
)

// flipMatrixOverS runs one parallel pass over dataset S accumulating
// the per-(engine, type) flip matrix.
func (r *Runner) flipMatrixOverS() (*core.FlipMatrix, error) {
	samples, err := r.DatasetS()
	if err != nil {
		return nil, err
	}
	workers := r.cfg.Workers
	mats := make([]*core.FlipMatrix, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mats[w] = core.NewFlipMatrix()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				mats[w].AddHistory(vtsimScan(r.set, samples[i]))
			}
		}(w)
	}
	wg.Wait()
	total := mats[0]
	for _, m := range mats[1:] {
		total.Merge(m)
	}
	return total, nil
}

// --- Figure 10: flip ratio per engine × file type ---------------------

// FlipRatioCell is one heatmap cell.
type FlipRatioCell struct {
	Engine   string
	FileType string
	Ratio    float64
	Flips    int
}

// Figure10Result reproduces the flip-ratio heatmap.
type Figure10Result struct {
	Matrix *core.FlipMatrix
	// Highlights reproduces the paper's callouts.
	ArcabitELF float64 // paper: 25.78%
	ArcabitDEX float64 // paper: 0.05%
	// MostFlippy / LeastFlippy rank engines by overall flip ratio
	// (paper: Arcabit, F-Secure, Lionic flip-prone; Jiangmin, AhnLab
	// stable).
	MostFlippy  []FlipRatioCell
	LeastFlippy []FlipRatioCell
}

// Figure10FlipRatios builds the flip matrix and extracts the
// headline cells.
func (r *Runner) Figure10FlipRatios() (*Figure10Result, error) {
	m, err := r.flipMatrixOverS()
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{Matrix: m}
	res.ArcabitELF = m.Cell("Arcabit", ftypes.ELFExe).Ratio()
	res.ArcabitDEX = m.Cell("Arcabit", ftypes.DEX).Ratio()

	type engRatio struct {
		name  string
		ratio float64
		flips int
	}
	var ratios []engRatio
	for _, eng := range m.Engines() {
		total := m.EngineTotal(eng)
		if total.Opportunities == 0 {
			continue
		}
		ratios = append(ratios, engRatio{eng, total.Ratio(), total.Flips()})
	}
	sort.Slice(ratios, func(i, j int) bool { return ratios[i].ratio > ratios[j].ratio })
	take := func(rs []engRatio) []FlipRatioCell {
		out := make([]FlipRatioCell, 0, 5)
		for _, e := range rs {
			out = append(out, FlipRatioCell{Engine: e.name, Ratio: e.ratio, Flips: e.flips})
			if len(out) == 5 {
				break
			}
		}
		return out
	}
	res.MostFlippy = take(ratios)
	rev := make([]engRatio, len(ratios))
	for i, e := range ratios {
		rev[len(ratios)-1-i] = e
	}
	res.LeastFlippy = take(rev)
	return res, nil
}

// Render prints the heatmap summary.
func (f *Figure10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: flip ratio per engine and file type")
	fmt.Fprintf(w, "Arcabit/ELF executable %s (paper 25.78%%), Arcabit/DEX %s (paper 0.05%%)\n",
		pct(f.ArcabitELF), pct(f.ArcabitDEX))
	fmt.Fprintln(w, "most flip-prone engines (overall ratio):")
	for _, c := range f.MostFlippy {
		fmt.Fprintf(w, "  %-22s %s (%d flips)\n", c.Engine, pct(c.Ratio), c.Flips)
	}
	fmt.Fprintln(w, "most stable engines (overall ratio):")
	for _, c := range f.LeastFlippy {
		fmt.Fprintf(w, "  %-22s %s (%d flips)\n", c.Engine, pct(c.Ratio), c.Flips)
	}
	fmt.Fprintln(w, "(paper: Arcabit, F-Secure, Lionic flip-prone; Jiangmin, AhnLab stable)")
}

// --- §7.1.1: flip census ----------------------------------------------

// Section71Result reproduces the flip census over dataset S.
type Section71Result struct {
	Total core.FlipCounts
	// UpShare is the 0→1 share of all flips (paper: 12.27M of 16.8M
	// ≈ 73%).
	UpShare float64
	// FlipsPerReport is flips divided by opportunities (the paper
	// reports ~1 flip per report on average in its own units).
	FlipsPerReport float64
}

// Section71Flips runs the census.
func (r *Runner) Section71Flips() (*Section71Result, error) {
	m, err := r.flipMatrixOverS()
	if err != nil {
		return nil, err
	}
	res := &Section71Result{Total: m.Total()}
	if res.Total.Flips() > 0 {
		res.UpShare = float64(res.Total.Up) / float64(res.Total.Flips())
	}
	if res.Total.Opportunities > 0 {
		res.FlipsPerReport = float64(res.Total.Flips()) / float64(res.Total.Opportunities)
	}
	return res, nil
}

// Render prints the census.
func (s *Section71Result) Render(w io.Writer) {
	fmt.Fprintln(w, "§7.1.1: label flip census (dataset S)")
	fmt.Fprintf(w, "flips %d (0→1: %d, 1→0: %d); 0→1 share %s (paper 72.9%%)\n",
		s.Total.Flips(), s.Total.Up, s.Total.Down, pct(s.UpShare))
	fmt.Fprintf(w, "hazard flips: %d (0→1→0: %d, 1→0→1: %d) — paper found only 9 in 16.8M flips\n",
		s.Total.Hazards(), s.Total.Hazard01, s.Total.Hazard10)
	fmt.Fprintf(w, "hazard share of flips: %.2e\n", s.hazardShare())
}

func (s *Section71Result) hazardShare() float64 {
	if s.Total.Flips() == 0 {
		return 0
	}
	return float64(s.Total.Hazards()) / float64(s.Total.Flips())
}

// --- §5.5: causes of label dynamics -----------------------------------

// Section55Result reproduces the update-coincidence measurement.
type Section55Result struct {
	Flips            int
	UpdateCoincident int
	// Share is the update-coincident fraction (paper: ~60%).
	Share float64
	// UndetectedShare is the share of engine-scan entries that are
	// Undetected — the activity cause (iii).
	UndetectedShare float64
}

// Section55FlipCauses measures how many flips coincide with engine
// signature updates, plus the prevalence of activity gaps.
func (r *Runner) Section55FlipCauses() (*Section55Result, error) {
	samples, err := r.DatasetS()
	if err != nil {
		return nil, err
	}
	type acc struct {
		flips, coincident   int
		entries, undetected int
	}
	workers := r.cfg.Workers
	accs := make([]acc, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := &accs[w]
			for i := w; i < len(samples); i += workers {
				h := vtsimScan(r.set, samples[i])
				for _, rep := range h.Reports {
					for _, er := range rep.Results {
						a.entries++
						if er.Verdict == report.Undetected {
							a.undetected++
						}
					}
				}
				for _, name := range r.set.Names() {
					fc := core.CountFlips(core.ExtractEngineSeries(h, name))
					a.flips += fc.Flips()
					a.coincident += fc.UpdateCoincident
				}
			}
		}(w)
	}
	wg.Wait()
	res := &Section55Result{}
	var entries, undetected int
	for _, a := range accs {
		res.Flips += a.flips
		res.UpdateCoincident += a.coincident
		entries += a.entries
		undetected += a.undetected
	}
	if res.Flips > 0 {
		res.Share = float64(res.UpdateCoincident) / float64(res.Flips)
	}
	if entries > 0 {
		res.UndetectedShare = float64(undetected) / float64(entries)
	}
	return res, nil
}

// Render prints the cause attribution.
func (s *Section55Result) Render(w io.Writer) {
	fmt.Fprintln(w, "§5.5: causes of label dynamics")
	fmt.Fprintf(w, "flips with engine update between the two scans: %d of %d (%s; paper ~60%%)\n",
		s.UpdateCoincident, s.Flips, pct(s.Share))
	fmt.Fprintf(w, "engine activity gaps (undetected entries): %s of all engine-scan entries\n",
		pct(s.UndetectedShare))
}
