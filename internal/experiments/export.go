package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSVTable is one plot-ready series: figures export their data so the
// paper's plots can be regenerated with any plotting tool.
type CSVTable struct {
	// Name becomes the file name (<Name>.csv).
	Name   string
	Header []string
	Rows   [][]string
}

// WriteCSVDir writes every table into dir, creating it if needed.
func WriteCSVDir(dir string, tables []CSVTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, t := range tables {
		f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
		if err != nil {
			return fmt.Errorf("export: %w", err)
		}
		w := csv.NewWriter(f)
		if err := w.Write(t.Header); err != nil {
			f.Close()
			return fmt.Errorf("export: %w", err)
		}
		if err := w.WriteAll(t.Rows); err != nil {
			f.Close()
			return fmt.Errorf("export: %w", err)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return fmt.Errorf("export: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	return nil
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func fi(v int) string     { return strconv.Itoa(v) }

// CSVTables exports the Figure 1 CDF.
func (f *Figure1Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure1_reports_cdf", Header: []string{"reports", "cdf"}}
	for i := range f.CDFCounts {
		t.Rows = append(t.Rows, []string{ff(f.CDFCounts[i]), ff(f.CDFProbs[i])})
	}
	return []CSVTable{t}
}

// CSVTables exports Figure 2's two per-class CDFs.
func (f *Figure2Result) CSVTables() []CSVTable {
	stable := CSVTable{Name: "figure2_stable_cdf", Header: []string{"reports", "cdf"}}
	for i := range f.StableCounts {
		stable.Rows = append(stable.Rows, []string{ff(f.StableCounts[i]), ff(f.StableProbs[i])})
	}
	dynamic := CSVTable{Name: "figure2_dynamic_cdf", Header: []string{"reports", "cdf"}}
	for i := range f.DynamicCounts {
		dynamic.Rows = append(dynamic.Rows, []string{ff(f.DynamicCounts[i]), ff(f.DynamicProbs[i])})
	}
	return []CSVTable{stable, dynamic}
}

// CSVTables exports the Figure 3 CDF.
func (f *Figure3Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure3_stable_avrank_cdf", Header: []string{"avrank", "cdf"}}
	for i := range f.Ranks {
		t.Rows = append(t.Rows, []string{ff(f.Ranks[i]), ff(f.Probs[i])})
	}
	return []CSVTable{t}
}

// CSVTables exports the Figure 4 boxplot summary.
func (f *Figure4Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure4_span_by_avrank",
		Header: []string{"avrank", "n", "mean_days", "median_days", "q1", "q3"}}
	for _, row := range f.Rows {
		t.Rows = append(t.Rows, []string{
			fi(row.AVRank), fi(row.Box.N), ff(row.Box.Mean), ff(row.Box.Median),
			ff(row.Box.Q1), ff(row.Box.Q3)})
	}
	return []CSVTable{t}
}

// CSVTables exports Figure 5's δ and Δ CDFs.
func (f *Figure5Result) CSVTables() []CSVTable {
	small := CSVTable{Name: "figure5_small_delta_cdf", Header: []string{"delta", "cdf"}}
	for i := range f.SmallDeltaXs {
		small.Rows = append(small.Rows, []string{ff(f.SmallDeltaXs[i]), ff(f.SmallDeltaPs[i])})
	}
	big := CSVTable{Name: "figure5_big_delta_cdf", Header: []string{"delta", "cdf"}}
	for i := range f.BigDeltaXs {
		big.Rows = append(big.Rows, []string{ff(f.BigDeltaXs[i]), ff(f.BigDeltaPs[i])})
	}
	return []CSVTable{small, big}
}

// CSVTables exports the Figure 6 per-type boxplots.
func (f *Figure6Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure6_delta_by_type",
		Header: []string{"file_type", "n", "small_mean", "small_median", "big_mean", "big_median"}}
	for _, row := range f.Rows {
		t.Rows = append(t.Rows, []string{
			row.FileType, fi(row.Big.N), ff(row.Small.Mean), ff(row.Small.Median),
			ff(row.Big.Mean), ff(row.Big.Median)})
	}
	return []CSVTable{t}
}

// CSVTables exports the Figure 7 interval buckets.
func (f *Figure7Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure7_diff_vs_interval",
		Header: []string{"max_days", "n", "mean_diff", "median_diff", "q1", "q3"}}
	for _, row := range f.Rows {
		t.Rows = append(t.Rows, []string{
			fi(row.MaxDays), fi(row.Box.N), ff(row.Box.Mean), ff(row.Box.Median),
			ff(row.Box.Q1), ff(row.Box.Q3)})
	}
	return []CSVTable{t}
}

// CSVTables exports the Figure 8 category sweep for this panel.
func (f *Figure8Result) CSVTables() []CSVTable {
	name := "figure8a_categories_all"
	if f.Scope == "PE files" {
		name = "figure8b_categories_pe"
	}
	t := CSVTable{Name: name,
		Header: []string{"threshold", "white", "black", "gray"}}
	for _, c := range f.Counts {
		t.Rows = append(t.Rows, []string{
			fi(c.Threshold), ff(c.WhiteFraction()), ff(c.BlackFraction()), ff(c.GrayFraction())})
	}
	return []CSVTable{t}
}

// CSVTables exports the Figure 9 stabilization rows for this panel.
func (f *Figure9Result) CSVTables() []CSVTable {
	name := "figure9a_label_stability_all"
	if f.Scope == "excluding 2-scan samples" {
		name = "figure9b_label_stability_gt2"
	}
	t := CSVTable{Name: name,
		Header: []string{"threshold", "stable_share", "mean_scan_index", "mean_days",
			"within15d", "within30d"}}
	for _, row := range f.Rows {
		t.Rows = append(t.Rows, []string{
			fi(row.Threshold), ff(row.StableShare), ff(row.MeanScanIndex),
			ff(row.MeanDays), ff(row.Within15Days), ff(row.Within30Days)})
	}
	return []CSVTable{t}
}

// CSVTables exports the Observation 8 rows.
func (o *Observation8Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "observation8_stabilization",
		Header: []string{"range", "stable_share", "within10d", "within20d", "within30d"}}
	for _, row := range o.Rows {
		t.Rows = append(t.Rows, []string{
			fi(row.Range), ff(row.StableShare), ff(row.Within10Days),
			ff(row.Within20Days), ff(row.Within30Days)})
	}
	return []CSVTable{t}
}

// CSVTables exports the full Figure 10 flip-ratio matrix.
func (f *Figure10Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure10_flip_ratio_matrix",
		Header: []string{"engine", "file_type", "flips", "opportunities", "ratio"}}
	for _, eng := range f.Matrix.Engines() {
		for _, ft := range f.Matrix.FileTypes() {
			cell := f.Matrix.Cell(eng, ft)
			if cell.Opportunities == 0 {
				continue
			}
			t.Rows = append(t.Rows, []string{
				eng, ft, fi(cell.Flips()), fi(cell.Opportunities), ff(cell.Ratio())})
		}
	}
	return []CSVTable{t}
}

// CSVTables exports the strong pairs of Figure 11.
func (f *Figure11Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure11_strong_pairs",
		Header: []string{"engine_a", "engine_b", "rho", "p"}}
	for _, p := range f.StrongPairs {
		t.Rows = append(t.Rows, []string{p.A, p.B, ff(p.Rho), ff(p.P)})
	}
	return []CSVTable{t}
}

// CSVTables exports the per-type strong pairs (Figure 12 / Tables 4–8).
func (f *Figure12Result) CSVTables() []CSVTable {
	t := CSVTable{Name: "figure12_per_type_pairs",
		Header: []string{"file_type", "engine_a", "engine_b", "rho"}}
	for _, per := range f.PerType {
		for _, p := range per.Pairs {
			t.Rows = append(t.Rows, []string{per.FileType, p.A, p.B, ff(p.Rho)})
		}
	}
	return []CSVTable{t}
}
