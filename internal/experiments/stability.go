package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vtdynamics/internal/stats"
)

// --- Observation 1 + Figure 2: stable vs. dynamic --------------------

// Figure2Result reproduces the stable/dynamic split (Observation 1)
// and Figure 2's per-class report-count CDFs.
type Figure2Result struct {
	StableCount  int
	DynamicCount int
	// TwoReport fractions per class (paper: 67.09% stable, 71.3%
	// dynamic).
	StableTwoReport  float64
	DynamicTwoReport float64
	// AtMost4 fractions (paper: ~94% both).
	StableAtMost4  float64
	DynamicAtMost4 float64
	// CDF step points per class.
	StableCounts, StableProbs   []float64
	DynamicCounts, DynamicProbs []float64
}

// StableFraction returns the stable share of multi-report samples
// (paper: 49.90%).
func (f *Figure2Result) StableFraction() float64 {
	total := f.StableCount + f.DynamicCount
	if total == 0 {
		return 0
	}
	return float64(f.StableCount) / float64(total)
}

// Figure2StableDynamic classifies dataset S and builds the CDFs.
func (r *Runner) Figure2StableDynamic() (*Figure2Result, error) {
	corpus, err := r.MultiRankCorpus()
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{}
	var stable, dynamic []float64
	for _, ss := range corpus {
		n := float64(ss.Series.Len())
		if ss.Series.IsStable() {
			res.StableCount++
			stable = append(stable, n)
			if ss.Series.Len() == 2 {
				res.StableTwoReport++
			}
			if ss.Series.Len() <= 4 {
				res.StableAtMost4++
			}
		} else {
			res.DynamicCount++
			dynamic = append(dynamic, n)
			if ss.Series.Len() == 2 {
				res.DynamicTwoReport++
			}
			if ss.Series.Len() <= 4 {
				res.DynamicAtMost4++
			}
		}
	}
	if res.StableCount > 0 {
		res.StableTwoReport /= float64(res.StableCount)
		res.StableAtMost4 /= float64(res.StableCount)
	}
	if res.DynamicCount > 0 {
		res.DynamicTwoReport /= float64(res.DynamicCount)
		res.DynamicAtMost4 /= float64(res.DynamicCount)
	}
	res.StableCounts, res.StableProbs = stats.NewECDF(stable).Points()
	res.DynamicCounts, res.DynamicProbs = stats.NewECDF(dynamic).Points()
	return res, nil
}

// Render prints the Observation 1 split and Figure 2 headlines.
func (f *Figure2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 2 / Observation 1: stable vs. dynamic samples")
	total := f.StableCount + f.DynamicCount
	fmt.Fprintf(w, "stable %d (%s, paper 49.90%%)  dynamic %d (%s, paper 50.10%%)  of %d multi-report samples\n",
		f.StableCount, pct(f.StableFraction()), f.DynamicCount, pct(1-f.StableFraction()), total)
	fmt.Fprintf(w, "two-report share: stable %s (paper 67.09%%), dynamic %s (paper 71.3%%)\n",
		pct(f.StableTwoReport), pct(f.DynamicTwoReport))
	fmt.Fprintf(w, "<=4-report share: stable %s, dynamic %s (paper ~94%% both)\n",
		pct(f.StableAtMost4), pct(f.DynamicAtMost4))
}

// --- Figure 3: AV-Rank distribution of stable samples -----------------

// Figure3Result reproduces the AV-Rank CDF of stable samples.
type Figure3Result struct {
	// RankZero is the share of stable samples fixed at AV-Rank 0
	// (paper: 66.36%).
	RankZero float64
	// AtMost5 is the share with AV-Rank <= 5 (paper: >80%).
	AtMost5 float64
	// CDF step points.
	Ranks, Probs []float64
	MaxRank      int
	Count        int
}

// Figure3StableAVRank computes the constant-rank distribution.
func (r *Runner) Figure3StableAVRank() (*Figure3Result, error) {
	corpus, err := r.MultiRankCorpus()
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	var ranks []float64
	for _, ss := range corpus {
		rank, ok := ss.Series.ConstantRank()
		if !ok {
			continue
		}
		res.Count++
		ranks = append(ranks, float64(rank))
		if rank == 0 {
			res.RankZero++
		}
		if rank <= 5 {
			res.AtMost5++
		}
		if rank > res.MaxRank {
			res.MaxRank = rank
		}
	}
	if res.Count > 0 {
		res.RankZero /= float64(res.Count)
		res.AtMost5 /= float64(res.Count)
	}
	res.Ranks, res.Probs = stats.NewECDF(ranks).Points()
	return res, nil
}

// Render prints Figure 3's headlines.
func (f *Figure3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: CDF of AV-Ranks of stable samples")
	fmt.Fprintf(w, "stable samples: %d; AV-Rank = 0: %s (paper 66.36%%); AV-Rank <= 5: %s (paper >80%%); max rank %d\n",
		f.Count, pct(f.RankZero), pct(f.AtMost5), f.MaxRank)
}

// --- Figure 4: stable time span by AV-Rank ----------------------------

// SpanRow is one AV-Rank bucket of Figure 4.
type SpanRow struct {
	AVRank int
	Box    stats.BoxplotStats // of span in days
}

// Figure4Result reproduces the span-by-rank boxplots.
type Figure4Result struct {
	Rows []SpanRow
	// MedianSpanDays is the overall median span (paper: 17 days).
	MedianSpanDays float64
	// BenignMeanDays and BenignMedianDays are the AV-Rank-0 bucket's
	// statistics (paper: mean 20.34, median 14).
	BenignMeanDays   float64
	BenignMedianDays float64
}

// Figure4StableTimeSpan groups stable samples' spans by their rank.
func (r *Runner) Figure4StableTimeSpan() (*Figure4Result, error) {
	corpus, err := r.MultiRankCorpus()
	if err != nil {
		return nil, err
	}
	byRank := map[int][]float64{}
	var all []float64
	for _, ss := range corpus {
		rank, ok := ss.Series.ConstantRank()
		if !ok {
			continue
		}
		days := ss.Series.Span().Hours() / 24
		byRank[rank] = append(byRank[rank], days)
		all = append(all, days)
	}
	res := &Figure4Result{MedianSpanDays: stats.Median(all)}
	ranks := make([]int, 0, len(byRank))
	for rank := range byRank {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		// Skip sparse buckets: boxplots over a handful of points are
		// noise (the paper also truncates its x-axis).
		if len(byRank[rank]) < 10 && rank > 0 {
			continue
		}
		res.Rows = append(res.Rows, SpanRow{AVRank: rank, Box: stats.Boxplot(byRank[rank])})
	}
	if b, ok := byRank[0]; ok {
		box := stats.Boxplot(b)
		res.BenignMeanDays = box.Mean
		res.BenignMedianDays = box.Median
	}
	return res, nil
}

// Render prints the Figure 4 buckets.
func (f *Figure4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: stable time span (days) by AV-Rank")
	tb := newTable(w, 8, 8, 10, 10, 10, 10)
	tb.row("AVRank", "N", "mean", "median", "Q1", "Q3")
	for _, row := range f.Rows {
		tb.row(row.AVRank, row.Box.N,
			fmt.Sprintf("%.2f", row.Box.Mean), fmt.Sprintf("%.2f", row.Box.Median),
			fmt.Sprintf("%.2f", row.Box.Q1), fmt.Sprintf("%.2f", row.Box.Q3))
	}
	fmt.Fprintf(w, "overall median span %.1f d (paper 17 d); benign bucket mean %.2f d (paper 20.34), median %.1f d (paper 14)\n",
		f.MedianSpanDays, f.BenignMeanDays, f.BenignMedianDays)
}

// daysOf converts a duration to fractional days.
func daysOf(d time.Duration) float64 { return d.Hours() / 24 }
