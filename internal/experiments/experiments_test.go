package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"vtdynamics/internal/ftypes"
)

// testRunner returns a shared small-scale runner so the suite stays
// fast; experiments must still land in loose bands around the paper's
// values at this scale.
var (
	sharedRunner *Runner
	runnerOnce   sync.Once
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		r, err := NewRunner(Config{
			Seed:             7,
			PopulationSize:   120_000,
			DynamicsSize:     12_000,
			ServiceSize:      1_500,
			CorrelationScans: 12_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		sharedRunner = r
	})
	if sharedRunner == nil {
		t.Fatal("runner construction failed earlier")
	}
	return sharedRunner
}

func between(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.4f, want in [%.4f, %.4f]", name, got, lo, hi)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := testRunner(t).Table1APIUpdateRules()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches() {
		t.Fatalf("Table 1 mismatch: %+v", res)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "matches the paper's Table 1 exactly") {
		t.Fatal("render should report the match")
	}
}

func TestTable3SharesMatchPaper(t *testing.T) {
	res, err := testRunner(t).Table3FileTypeDist()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: top-10 78.17%, top-20 87.04% of non-NULL samples.
	between(t, "top10", res.Top10Share, 0.75, 0.81)
	between(t, "top20", res.Top20Share, 0.84, 0.90)
	if res.Rows[0].FileType != ftypes.Win32EXE {
		t.Fatalf("most common type = %s, want Win32 EXE", res.Rows[0].FileType)
	}
	between(t, "Win32 EXE share", res.Rows[0].SampleShare, 0.23, 0.27)
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Win32 EXE") {
		t.Fatal("render missing rows")
	}
}

func TestFigure1HeadlinesMatchPaper(t *testing.T) {
	res, err := testRunner(t).Figure1ReportsCDF()
	if err != nil {
		t.Fatal(err)
	}
	between(t, "single-report", res.SingleReport, 0.86, 0.92) // paper 0.8881
	between(t, "<6 reports", res.LessThan6, 0.985, 1.0)       // paper 0.9910
	between(t, "<20 reports", res.LessThan20, 0.997, 1.0)     // paper 0.9990
	if res.MultiReport == 0 {
		t.Fatal("no multi-report samples")
	}
	// CDF sanity: monotone, ends at 1.
	for i := 1; i < len(res.CDFProbs); i++ {
		if res.CDFProbs[i] < res.CDFProbs[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if res.CDFProbs[len(res.CDFProbs)-1] != 1 {
		t.Fatal("CDF does not end at 1")
	}
}

func TestFigure2SplitNearFiftyFifty(t *testing.T) {
	res, err := testRunner(t).Figure2StableDynamic()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 49.90% stable. Accept a generous band at test scale.
	between(t, "stable fraction", res.StableFraction(), 0.42, 0.62)
	// Two-report dominance within both classes (paper 67-71%).
	between(t, "stable two-report", res.StableTwoReport, 0.60, 0.82)
	between(t, "dynamic two-report", res.DynamicTwoReport, 0.55, 0.78)
	between(t, "stable <=4", res.StableAtMost4, 0.90, 1.0)
	between(t, "dynamic <=4", res.DynamicAtMost4, 0.88, 1.0)
}

func TestFigure3MostStableSamplesBenign(t *testing.T) {
	res, err := testRunner(t).Figure3StableAVRank()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 66.36% at rank 0, >80% at rank <= 5.
	between(t, "rank zero", res.RankZero, 0.55, 0.75)
	between(t, "rank <= 5", res.AtMost5, 0.65, 0.90)
	if res.Count == 0 {
		t.Fatal("no stable samples")
	}
}

func TestFigure4BenignSpansLongest(t *testing.T) {
	res, err := testRunner(t).Figure4StableTimeSpan()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: benign bucket mean 20.34 d, median 14 d; overall median 17 d.
	between(t, "benign mean days", res.BenignMeanDays, 12, 35)
	between(t, "benign median days", res.BenignMedianDays, 7, 22)
	if len(res.Rows) < 3 {
		t.Fatalf("too few rank buckets: %d", len(res.Rows))
	}
	// The benign bucket should be among the longest-lived (Obs. 2).
	var benign, maxOther float64
	for _, row := range res.Rows {
		if row.AVRank == 0 {
			benign = row.Box.Mean
		} else if row.Box.Mean > maxOther && row.Box.N >= 50 {
			maxOther = row.Box.Mean
		}
	}
	if benign == 0 {
		t.Fatal("no benign bucket")
	}
	if benign < 0.6*maxOther {
		t.Errorf("benign span mean %.1f much shorter than other buckets' max %.1f", benign, maxOther)
	}
}

func TestFigure5DeltaDistributions(t *testing.T) {
	res, err := testRunner(t).Figure5DeltaCDF()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 35.49% of adjacent pairs unchanged; Δ median 2-3, p90 ~11.
	between(t, "delta zero share", res.DeltaZeroShare, 0.25, 0.45)
	between(t, "big delta median", res.BigDeltaMedian, 1, 5)
	between(t, "big delta p90", res.BigDeltaP90, 7, 22)
	if res.DynamicSamples == 0 || res.Pairs == 0 {
		t.Fatal("empty figure 5 inputs")
	}
}

func TestFigure6TypeOrdering(t *testing.T) {
	res, err := testRunner(t).Figure6DeltaByType()
	if err != nil {
		t.Fatal(err)
	}
	// Executables must out-flip data formats (the paper's core
	// Observation 4).
	exe, ok1 := res.RowFor(ftypes.Win32EXE)
	dll, ok2 := res.RowFor(ftypes.Win32DLL)
	jsonRow, ok3 := res.RowFor(ftypes.JSON)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing file-type rows")
	}
	if exe.Big.Mean <= jsonRow.Big.Mean {
		t.Errorf("EXE Δ mean %.2f should exceed JSON %.2f", exe.Big.Mean, jsonRow.Big.Mean)
	}
	if dll.Small.Mean <= jsonRow.Small.Mean {
		t.Errorf("DLL δ mean %.2f should exceed JSON %.2f", dll.Small.Mean, jsonRow.Small.Mean)
	}
	// JPEG/FPX/EPUB low-dynamics group (paper Observation 4).
	if jpeg, ok := res.RowFor(ftypes.JPEG); ok && jpeg.Big.N > 20 {
		if jpeg.Big.Mean > exe.Big.Mean {
			t.Errorf("JPEG Δ mean %.2f should be below EXE %.2f", jpeg.Big.Mean, exe.Big.Mean)
		}
	}
}

func TestFigure7PositiveCorrelation(t *testing.T) {
	res, err := testRunner(t).Figure7DiffVsInterval()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: strong positive correlation (ρ = 0.9181) between
	// interval and difference at the bucket level.
	if res.Spearman.Rho < 0.5 {
		t.Errorf("bucket Spearman = %.3f, want strongly positive", res.Spearman.Rho)
	}
	if res.Spearman.PValue > 0.05 {
		t.Errorf("bucket Spearman p = %.3g, want significant", res.Spearman.PValue)
	}
	if res.PairSpearman.Rho <= 0 {
		t.Errorf("raw pair Spearman = %.3f, want positive", res.PairSpearman.Rho)
	}
	// Long intervals should show larger mean differences than short
	// ones.
	if len(res.Rows) >= 4 {
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		if last.Box.Mean <= first.Box.Mean {
			t.Errorf("mean diff should grow with interval: %.2f -> %.2f",
				first.Box.Mean, last.Box.Mean)
		}
	}
}

func TestFigure8GrayShapes(t *testing.T) {
	all, pe, err := testRunner(t).Figure8Categories()
	if err != nil {
		t.Fatal(err)
	}
	// Paper (overall): gray peaks mid-range at 14.92%, minima a few
	// percent; partition always sums to 1.
	between(t, "overall max gray", all.MaxGray, 0.08, 0.30)
	between(t, "overall min gray", all.MinGray, 0.0, 0.08)
	if all.MaxGrayAt <= all.MinGrayAt && all.MinGrayAt < 10 {
		// max should not be at the very low thresholds where the
		// minimum lives
		t.Errorf("gray max at t=%d, min at t=%d: unexpected ordering", all.MaxGrayAt, all.MinGrayAt)
	}
	for _, c := range all.Counts {
		if c.Total() == 0 {
			t.Fatal("empty sweep bucket")
		}
	}
	// PE files keep more gray mass at high thresholds than the
	// overall mix (paper: PE gray grows with t).
	peAt45 := pe.Counts[44].GrayFraction()
	allAt45 := all.Counts[44].GrayFraction()
	if peAt45 < allAt45*0.8 {
		t.Errorf("PE gray at t=45 (%.4f) should not be far below overall (%.4f)", peAt45, allAt45)
	}
}

func TestObservation8Shape(t *testing.T) {
	res, err := testRunner(t).Observation8Stability()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Monotone in r.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].StableShare < res.Rows[i-1].StableShare {
			t.Fatal("stability share not monotone in r")
		}
	}
	// Paper: r=0 small (10.9%), r=1 jumps (55.1%), r=5 large (88.1%).
	between(t, "r=0 share", res.Rows[0].StableShare, 0.05, 0.30)
	between(t, "r=1 share", res.Rows[1].StableShare, 0.35, 0.65)
	between(t, "r=5 share", res.Rows[5].StableShare, 0.65, 0.95)
	// The r=1 jump must be large (the paper's key observation: most
	// samples fluctuate in a small range).
	if res.Rows[1].StableShare < 2*res.Rows[0].StableShare {
		t.Errorf("r=1 (%.3f) should be a big jump over r=0 (%.3f)",
			res.Rows[1].StableShare, res.Rows[0].StableShare)
	}
	// Most stabilizing samples do so within 30 days for r >= 1.
	between(t, "r=1 within 30d", res.Rows[1].Within30Days, 0.75, 1.0)
	between(t, "r=5 within 30d", res.Rows[5].Within30Days, 0.85, 1.0)
}

func TestFigure9LabelStability(t *testing.T) {
	all, err := testRunner(t).Figure9LabelStability(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != 9 {
		t.Fatalf("rows = %d", len(all.Rows))
	}
	for _, row := range all.Rows {
		// Paper: 93.14%-98.04% stabilize across thresholds.
		between(t, "stable share", row.StableShare, 0.80, 1.0)
		// Paper: ~87-92% of labels stable within 15-30 days.
		between(t, "within 30d", row.Within30Days, 0.78, 1.0)
		if row.MeanScanIndex < 1 {
			t.Fatalf("mean scan index %.2f < 1", row.MeanScanIndex)
		}
	}
	// Panel (b): excluding two-scan samples delays stabilization.
	excl, err := testRunner(t).Figure9LabelStability(true)
	if err != nil {
		t.Fatal(err)
	}
	if excl.Samples >= all.Samples {
		t.Fatal("exclusion did not shrink the sample set")
	}
	var meanA, meanB float64
	for i := range all.Rows {
		meanA += all.Rows[i].MeanDays
		meanB += excl.Rows[i].MeanDays
	}
	if meanB <= meanA {
		t.Errorf("excluding 2-scan samples should lengthen stabilization (%.2f vs %.2f)", meanB, meanA)
	}
}

func TestFigure10FlipPersonalities(t *testing.T) {
	res, err := testRunner(t).Figure10FlipRatios()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Arcabit flips on 25.78% of ELF opportunities but 0.05%
	// of DEX ones.
	between(t, "Arcabit ELF", res.ArcabitELF, 0.08, 0.45)
	between(t, "Arcabit DEX", res.ArcabitDEX, 0, 0.01)
	flippy := map[string]bool{}
	for _, c := range res.MostFlippy {
		flippy[c.Engine] = true
	}
	if !flippy["F-Secure"] && !flippy["Lionic"] {
		t.Errorf("expected F-Secure or Lionic among most flip-prone: %v", res.MostFlippy)
	}
	stable := map[string]bool{}
	for _, c := range res.LeastFlippy {
		stable[c.Engine] = true
	}
	if !stable["Jiangmin"] && !stable["AhnLab"] {
		t.Errorf("expected Jiangmin or AhnLab among most stable: %v", res.LeastFlippy)
	}
}

func TestSection71FlipCensus(t *testing.T) {
	res, err := testRunner(t).Section71Flips()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Flips() == 0 {
		t.Fatal("no flips observed")
	}
	// Paper: 0→1 flips dominate (12.27M vs 4.57M, share 72.9%).
	between(t, "up share", res.UpShare, 0.55, 0.90)
	// Paper: hazard flips vanishingly rare (9 in 16.8M).
	hazardShare := float64(res.Total.Hazards()) / float64(res.Total.Flips())
	if hazardShare > 0.001 {
		t.Errorf("hazard share = %.2e, want ~1e-6 rarity", hazardShare)
	}
}

func TestSection55UpdateCoincidence(t *testing.T) {
	res, err := testRunner(t).Section55FlipCauses()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: engine updates present in ~60% of flips.
	between(t, "update-coincident share", res.Share, 0.40, 0.80)
	if res.UndetectedShare <= 0 || res.UndetectedShare > 0.05 {
		t.Errorf("undetected share = %.4f, want small but nonzero", res.UndetectedShare)
	}
}

func TestFigure11StrongCorrelations(t *testing.T) {
	res, err := testRunner(t).Figure11Correlation()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's flagship pairs must appear with high ρ.
	for _, pair := range [][2]string{
		{"Paloalto", "APEX"},
		{"Avast", "AVG"},
		{"CrowdStrike", "Webroot"},
		{"F-Prot", "Babable"},
	} {
		p, ok := res.PairFor(pair[0], pair[1])
		if !ok {
			t.Errorf("missing strong pair %v", pair)
			continue
		}
		if p.Rho < 0.85 {
			t.Errorf("pair %v rho = %.3f, want > 0.85", pair, p.Rho)
		}
	}
	// The BitDefender family forms one large group.
	foundBig := false
	for _, g := range res.Groups {
		if len(g) >= 5 {
			members := strings.Join(g, ",")
			if strings.Contains(members, "BitDefender") && strings.Contains(members, "GData") {
				foundBig = true
			}
		}
	}
	if !foundBig {
		t.Errorf("BitDefender group missing: %v", res.Groups)
	}
	// Paper: 17 engines involved overall.
	if res.InvolvedEngines < 10 || res.InvolvedEngines > 35 {
		t.Errorf("involved engines = %d", res.InvolvedEngines)
	}
}

func TestFigure12PerTypeDifferences(t *testing.T) {
	res, err := testRunner(t).Figure12PerTypeGroups()
	if err != nil {
		t.Fatal(err)
	}
	exe, ok := res.ForType(ftypes.Win32EXE)
	if !ok {
		t.Fatal("missing Win32 EXE panel")
	}
	// Cyren–Fortinet strong on PE only (Table 4 Group 6 vs Table 5).
	if !exe.HasGroupWith("Cyren", "Fortinet") {
		t.Error("Cyren-Fortinet missing for Win32 EXE")
	}
	if txt, ok := res.ForType(ftypes.TXT); ok {
		if txt.HasGroupWith("Cyren", "Fortinet") {
			t.Error("Cyren-Fortinet should not be strong for TXT")
		}
		// Avira–Cynet strong for TXT (Table 5 Group 4) but not for
		// Win32 EXE (Appendix 2).
		if !txt.HasGroupWith("Avira", "Cynet") {
			t.Error("Avira-Cynet missing for TXT")
		}
	}
	if exe.HasGroupWith("Avira", "Cynet") {
		t.Error("Avira-Cynet should not be strong for Win32 EXE")
	}
	// Avast-Mobile joins the Avast group on DEX only.
	if dex, ok := res.ForType(ftypes.DEX); ok {
		if !dex.HasGroupWith("Avast-Mobile", "AVG") {
			t.Error("Avast-Mobile/AVG missing for DEX")
		}
	}
	if exe.HasGroupWith("Avast-Mobile", "AVG") {
		t.Error("Avast-Mobile should not correlate on Win32 EXE")
	}
	// Lionic–VirIT on GZIP only (paper: 0.8896 for GZIP).
	if gz, ok := res.ForType(ftypes.GZIP); ok && gz.Scans > 500 {
		if !gz.HasGroupWith("Lionic", "VirIT") {
			t.Error("Lionic-VirIT missing for GZIP")
		}
	}
	if exe.HasGroupWith("Lionic", "VirIT") {
		t.Error("Lionic-VirIT should not be strong for Win32 EXE")
	}
}

func TestTable2PipelineAccounting(t *testing.T) {
	res, err := testRunner(t).Table2DatasetOverview(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("months = %d, want 14 (May 2021 .. June 2022)", len(res.Rows))
	}
	if res.Rows[0].Month != "2021-05" || res.Rows[13].Month != "2022-06" {
		t.Fatalf("month range: %s .. %s", res.Rows[0].Month, res.Rows[13].Month)
	}
	// No loss and no duplication between feed and store.
	if res.FeedStats.Envelopes != res.TotalReports {
		t.Fatalf("collector envelopes %d != stored reports %d",
			res.FeedStats.Envelopes, res.TotalReports)
	}
	if res.CompressionRatio < 2 {
		t.Fatalf("compression ratio = %.2f", res.CompressionRatio)
	}
	if res.TotalSamples == 0 {
		t.Fatal("no samples stored")
	}
}

func TestRendersProduceOutput(t *testing.T) {
	r := testRunner(t)
	var buf bytes.Buffer
	if res, err := r.Figure2StableDynamic(); err == nil {
		res.Render(&buf)
	}
	if res, err := r.Figure5DeltaCDF(); err == nil {
		res.Render(&buf)
	}
	if res, err := r.Observation8Stability(); err == nil {
		res.Render(&buf)
	}
	if res, err := r.Figure11Correlation(); err == nil {
		res.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Fatal("renders produced no output")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.PopulationSize == 0 || c.DynamicsSize == 0 || c.Workers == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestDatasetSAllDynamicFreshTop20(t *testing.T) {
	r := testRunner(t)
	samples, err := r.DatasetS()
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := r.RankCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(corpus) {
		t.Fatalf("samples %d != corpus %d", len(samples), len(corpus))
	}
	for i, s := range samples {
		if !s.Fresh {
			t.Fatal("non-fresh sample in S")
		}
		if !ftypes.IsTop20(s.FileType) {
			t.Fatalf("non-top-20 type %q in S", s.FileType)
		}
		if corpus[i].Series.Delta() == 0 {
			t.Fatal("stable sample in S")
		}
	}
}
