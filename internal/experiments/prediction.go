package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"vtdynamics/internal/predict"
	"vtdynamics/internal/sampleset"
)

// --- Learned label aggregation (§3.1's ML line) -------------------------

// PredictionResult compares a logistic-regression aggregator trained
// on first-scan verdict vectors against unweighted threshold rules,
// and inspects the learned per-engine weights.
type PredictionResult struct {
	// Learned is the model's held-out performance.
	Learned predict.Metrics
	// Baselines holds threshold-rule performance at several t.
	Baselines map[int]predict.Metrics
	// TopWeights lists the highest-weighted engines.
	TopWeights []EngineWeight
	// GroupWeightRatio compares the mean absolute weight of engines
	// inside copy groups against independent engines: §7.2 predicts
	// correlated engines split the weight an independent engine
	// would receive, pushing the ratio below 1.
	GroupWeightRatio float64
	TrainSize        int
	TestSize         int
}

// EngineWeight pairs an engine with its learned weight.
type EngineWeight struct {
	Engine string
	Weight float64
}

// groupedEngines are the followers in the default roster's copy
// groups (engines whose verdicts largely duplicate a leader's).
var groupedEngines = map[string]bool{
	"AVG": true, "MicroWorld-eScan": true, "GData": true, "FireEye": true,
	"MAX": true, "ALYac": true, "Ad-Aware": true, "Emsisoft": true,
	"K7AntiVirus": true, "TrendMicro-HouseCall": true, "Babable": true,
	"APEX": true, "Webroot": true,
}

// LabelPrediction trains on one fresh corpus and evaluates on
// another, predicting latent sample maliciousness from the first
// scan's verdict vector alone.
func (r *Runner) LabelPrediction() (*PredictionResult, error) {
	feat := predict.NewFeaturizer(r.set.Names())
	build := func(seed int64, n int) ([]predict.Example, error) {
		gen, err := sampleset.NewGenerator(sampleset.Config{
			Seed:         seed,
			NumSamples:   1,
			TopTypesOnly: true,
		})
		if err != nil {
			return nil, err
		}
		samples := make([]*sampleset.Sample, 0, n)
		for len(samples) < n {
			s := gen.Next()
			if !s.Fresh {
				continue
			}
			samples = append(samples, s)
		}
		out := make([]predict.Example, len(samples))
		workers := r.cfg.Workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(samples); i += workers {
					h := vtsimScan(r.set, samples[i])
					out[i] = predict.Example{
						X: feat.Features(h.Reports[0]),
						Y: samples[i].Malicious,
					}
				}
			}(w)
		}
		wg.Wait()
		return out, nil
	}

	nTrain := r.cfg.DynamicsSize / 2
	nTest := r.cfg.DynamicsSize / 4
	train, err := build(r.cfg.Seed+300, nTrain)
	if err != nil {
		return nil, err
	}
	test, err := build(r.cfg.Seed+301, nTest)
	if err != nil {
		return nil, err
	}

	model, err := predict.Train(train, predict.Config{Seed: r.cfg.Seed})
	if err != nil {
		return nil, err
	}

	res := &PredictionResult{
		Learned:   model.Evaluate(test),
		Baselines: map[int]predict.Metrics{},
		TrainSize: len(train),
		TestSize:  len(test),
	}
	for _, t := range []int{1, 2, 5, 10, 20} {
		res.Baselines[t] = predict.ThresholdBaseline(test, t)
	}

	// Weight inspection.
	weights := make([]EngineWeight, feat.Dim())
	for j, e := range feat.Engines() {
		weights[j] = EngineWeight{Engine: e, Weight: model.Weights[j]}
	}
	sort.Slice(weights, func(i, j int) bool { return weights[i].Weight > weights[j].Weight })
	if len(weights) > 10 {
		res.TopWeights = weights[:10]
	} else {
		res.TopWeights = weights
	}
	var groupSum, groupN, indSum, indN float64
	for _, w := range weights {
		a := w.Weight
		if a < 0 {
			a = -a
		}
		if groupedEngines[w.Engine] {
			groupSum += a
			groupN++
		} else {
			indSum += a
			indN++
		}
	}
	if groupN > 0 && indN > 0 && indSum > 0 {
		res.GroupWeightRatio = (groupSum / groupN) / (indSum / indN)
	}
	return res, nil
}

// Render prints the comparison.
func (p *PredictionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Learned label aggregation (§3.1 ML line): %d train / %d test first-scan vectors\n",
		p.TrainSize, p.TestSize)
	tb := newTable(w, 18, 10, 10, 10, 10)
	tb.row("aggregator", "accuracy", "precision", "recall", "F1")
	tb.row("logistic", pct(p.Learned.Accuracy()), pct(p.Learned.Precision()),
		pct(p.Learned.Recall()), pct(p.Learned.F1()))
	ts := make([]int, 0, len(p.Baselines))
	for t := range p.Baselines {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	for _, t := range ts {
		m := p.Baselines[t]
		tb.row(fmt.Sprintf("threshold(%d)", t), pct(m.Accuracy()), pct(m.Precision()),
			pct(m.Recall()), pct(m.F1()))
	}
	fmt.Fprintln(w, "highest-weighted engines:")
	for _, ew := range p.TopWeights {
		fmt.Fprintf(w, "  %-22s %+.3f\n", ew.Engine, ew.Weight)
	}
	fmt.Fprintf(w, "copy-group engines carry %.2fx the mean |weight| of independent engines\n",
		p.GroupWeightRatio)
	fmt.Fprintln(w, "(< 1 confirms §7.2: correlated engines split the vote an independent engine earns)")
}
