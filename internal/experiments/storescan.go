package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"vtdynamics/internal/feed"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtsim"
)

// --- Store-backed dynamics census (pushdown scan engine) -------------

// StoreScanResult is the label-dynamics census computed from the
// collected store itself — not from re-running the simulator — via
// the pushdown scan engine: one full-range scan for the census and
// one mid-campaign windowed scan to exercise zone-map pruning.
//
// The paper's measurements are all derived from its collected report
// corpus; this experiment is the repo's analogue of that workflow,
// and its cross-checks tie the store-derived numbers back to the
// collector's own accounting.
type StoreScanResult struct {
	// Full-range census.
	Rows    int64
	ByType  map[string]int64
	Engines map[string]store.EngineStats
	Flips   int64
	Pairs   int64
	// First/Last are the earliest/latest analysis timestamps.
	First, Last int64

	// Windowed scan (the middle fifth of the collection span).
	WindowSince, WindowUntil int64
	WindowRows               int64
	WindowStats              store.ScanStats
}

// runPipelineStore replays the ServiceSize workload through the
// feed→collector→store pipeline into dir — the same store Table 2
// accounts — and returns the collector stats.
func (r *Runner) runPipelineStore(dir string) (feed.Stats, error) {
	samples, err := sampleset.Generate(sampleset.Config{
		Seed:       r.cfg.Seed + 4,
		NumSamples: r.cfg.ServiceSize,
	})
	if err != nil {
		return feed.Stats{}, err
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(r.set, clock)
	if err := vtsim.RunWorkload(svc, clock, samples); err != nil {
		return feed.Stats{}, err
	}
	var opts []store.Option
	if r.cfg.StoreFormat != 0 {
		opts = append(opts, store.WithFormat(r.cfg.StoreFormat))
	}
	st, err := store.Open(dir, opts...)
	if err != nil {
		return feed.Stats{}, err
	}
	// The store is a BatchSink, so each slice commits under one
	// partition-lock acquisition; Workers > 1 overlaps feed fetches
	// while the ordered commit keeps the store contents byte-identical
	// to a serial run (asserted by the determinism suite).
	collector := feed.NewCollector(
		feed.SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
			return svc.FeedBetween(from, to), nil
		}),
		st,
	)
	collector.Workers = r.cfg.Workers
	// Hour-resolution polling keeps the 14-month window tractable;
	// slice semantics are identical to the paper's per-minute loop.
	fstats, err := collector.RunHourly(context.Background(),
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		st.Close()
		return feed.Stats{}, err
	}
	return fstats, st.Close()
}

// StoreScanCensus collects the pipeline store into dir and derives
// the dynamics census from it through store.Scan.
func (r *Runner) StoreScanCensus(dir string) (*StoreScanResult, error) {
	fstats, err := r.runPipelineStore(dir)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	// Full-range census: every kernel in one pass over one decode of
	// each block.
	var (
		count store.CountAgg
		group store.GroupCountByType
		eng   store.EngineAgg
		flips store.FlipCountAgg
		span  store.FirstLastAgg
	)
	fullStats, err := st.Scan(store.Query{
		Cols:    store.ColSHA | store.ColTime | store.ColFT | store.ColResults,
		Workers: r.cfg.Workers,
	}, &store.MultiAgg{Aggs: []store.Agg{&count, &group, &eng, &flips, &span}})
	if err != nil {
		return nil, err
	}
	// The census must account for exactly what the collector stored,
	// and an unfiltered scan must decode every block it considered.
	if count.N != int64(fstats.Envelopes) {
		return nil, fmt.Errorf("storescan: census saw %d rows, collector stored %d", count.N, fstats.Envelopes)
	}
	if fullStats.Scanned+fullStats.Pruned[store.PruneEmpty] != fullStats.Blocks {
		return nil, fmt.Errorf("storescan: full scan skipped non-empty blocks: %+v", fullStats)
	}

	// Windowed scan: the middle fifth of the collection span, where
	// zone maps prune the out-of-window blocks before decompression.
	cSpan := simclock.CollectionEnd.Unix() - simclock.CollectionStart.Unix()
	since := simclock.CollectionStart.Unix() + cSpan*2/5
	until := simclock.CollectionStart.Unix() + cSpan*3/5
	var wcount store.CountAgg
	wStats, err := st.Scan(store.Query{
		Since:   since,
		Until:   until,
		Cols:    store.ColTime,
		Workers: r.cfg.Workers,
	}, &wcount)
	if err != nil {
		return nil, err
	}
	if wStats.PrunedTotal()+wStats.Scanned != wStats.Blocks {
		return nil, fmt.Errorf("storescan: pruning identity broken: %d pruned + %d scanned != %d blocks",
			wStats.PrunedTotal(), wStats.Scanned, wStats.Blocks)
	}

	return &StoreScanResult{
		Rows:        count.N,
		ByType:      group.Counts,
		Engines:     eng.Engines,
		Flips:       flips.Flips,
		Pairs:       flips.Pairs,
		First:       span.First,
		Last:        span.Last,
		WindowSince: since,
		WindowUntil: until,
		WindowRows:  wcount.N,
		WindowStats: wStats,
	}, nil
}

// Render prints the census and the windowed scan's pruning report.
func (s *StoreScanResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Store-backed dynamics census (pushdown scan engine)")
	fmt.Fprintf(w, "scans %d, span %s .. %s\n", s.Rows,
		time.Unix(s.First, 0).UTC().Format("2006-01-02"),
		time.Unix(s.Last, 0).UTC().Format("2006-01-02"))
	fmt.Fprintf(w, "verdict flips %d across %d (sample, engine) pairs (%.4f flips/pair)\n",
		s.Flips, s.Pairs, float64(s.Flips)/float64(max(s.Pairs, 1)))

	types := make([]string, 0, len(s.ByType))
	for ft := range s.ByType {
		types = append(types, ft)
	}
	sort.Slice(types, func(i, j int) bool {
		if s.ByType[types[i]] != s.ByType[types[j]] {
			return s.ByType[types[i]] > s.ByType[types[j]]
		}
		return types[i] < types[j]
	})
	tb := newTable(w, 22, 10)
	tb.row("File type", "Scans")
	for i, ft := range types {
		if i == 10 {
			break
		}
		tb.row(ft, s.ByType[ft])
	}

	engines := make([]string, 0, len(s.Engines))
	for e := range s.Engines {
		engines = append(engines, e)
	}
	sort.Slice(engines, func(i, j int) bool {
		if s.Engines[engines[i]].Malicious != s.Engines[engines[j]].Malicious {
			return s.Engines[engines[i]].Malicious > s.Engines[engines[j]].Malicious
		}
		return engines[i] < engines[j]
	})
	tb = newTable(w, 22, 10, 10, 10)
	tb.row("Engine", "Results", "Malicious", "Labeled")
	for i, e := range engines {
		if i == 10 {
			break
		}
		es := s.Engines[e]
		tb.row(e, es.Results, es.Malicious, es.Labeled)
	}

	st := s.WindowStats
	fmt.Fprintf(w, "windowed scan %s .. %s: %d rows; %d/%d blocks pruned by zone maps, %d scanned, %d KiB gunzipped, %d column segments skipped\n",
		time.Unix(s.WindowSince, 0).UTC().Format("2006-01-02"),
		time.Unix(s.WindowUntil, 0).UTC().Format("2006-01-02"),
		s.WindowRows, st.PrunedTotal(), st.Blocks, st.Scanned,
		st.CompressedBytes/1024, st.ColumnsSkipped)
}
