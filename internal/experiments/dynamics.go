package experiments

import (
	"fmt"
	"io"
	"sort"

	"vtdynamics/internal/stats"
)

// --- Figure 5: CDFs of δ and Δ over the fresh dynamic dataset ---------

// Figure5Result reproduces the δ/Δ distributions of §5.3.3.
type Figure5Result struct {
	// DeltaZeroShare is the fraction of adjacent scan pairs with
	// δ = 0 (paper: 35.49%).
	DeltaZeroShare float64
	// SmallDeltaXs/Ps are the CDF points of δ.
	SmallDeltaXs, SmallDeltaPs []float64
	// BigDeltaXs/Ps are the CDF points of Δ over dynamic samples.
	BigDeltaXs, BigDeltaPs []float64
	// BigDeltaMedian and BigDeltaP90 summarize Δ (paper: ~half > 2,
	// 90% within 11).
	BigDeltaMedian float64
	BigDeltaP90    float64
	// Pairs and DynamicSamples are the population sizes.
	Pairs          int
	DynamicSamples int
}

// Figure5DeltaCDF computes both distributions over dataset S. δ is
// measured over every adjacent scan pair of every dynamic sample
// (§5.3.2); Δ is per dynamic sample.
func (r *Runner) Figure5DeltaCDF() (*Figure5Result, error) {
	corpus, err := r.RankCorpus()
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{}
	var small, big []float64
	zero := 0
	for _, ss := range corpus {
		if ss.Series.IsStable() {
			continue // §5.3 studies the dynamic samples
		}
		res.DynamicSamples++
		for _, d := range ss.Series.AdjacentDeltas() {
			small = append(small, float64(d))
			res.Pairs++
			if d == 0 {
				zero++
			}
		}
		big = append(big, float64(ss.Series.Delta()))
	}
	if res.Pairs > 0 {
		res.DeltaZeroShare = float64(zero) / float64(res.Pairs)
	}
	se := stats.NewECDF(small)
	res.SmallDeltaXs, res.SmallDeltaPs = se.Points()
	be := stats.NewECDF(big)
	res.BigDeltaXs, res.BigDeltaPs = be.Points()
	res.BigDeltaMedian = be.Quantile(0.5)
	res.BigDeltaP90 = be.Quantile(0.9)
	return res, nil
}

// Render prints the Figure 5 headlines.
func (f *Figure5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: CDF of δ (adjacent scans) and Δ (max-min) for dynamic samples")
	fmt.Fprintf(w, "adjacent pairs: %d; δ = 0 share %s (paper 35.49%%)\n",
		f.Pairs, pct(f.DeltaZeroShare))
	fmt.Fprintf(w, "dynamic samples: %d; Δ median %.1f (paper ~2-3), Δ p90 %.1f (paper ~11)\n",
		f.DynamicSamples, f.BigDeltaMedian, f.BigDeltaP90)
}

// --- Figure 6: δ and Δ per file type ----------------------------------

// TypeDynamicsRow is one file type's δ and Δ boxplots.
type TypeDynamicsRow struct {
	FileType string
	Small    stats.BoxplotStats // δ
	Big      stats.BoxplotStats // Δ
}

// Figure6Result reproduces the per-type dynamics boxplots.
type Figure6Result struct {
	Rows []TypeDynamicsRow
}

// RowFor returns the row for a file type, if present.
func (f *Figure6Result) RowFor(fileType string) (TypeDynamicsRow, bool) {
	for _, row := range f.Rows {
		if row.FileType == fileType {
			return row, true
		}
	}
	return TypeDynamicsRow{}, false
}

// Figure6DeltaByType groups δ and Δ by file type over dataset S's
// dynamic samples.
func (r *Runner) Figure6DeltaByType() (*Figure6Result, error) {
	corpus, err := r.RankCorpus()
	if err != nil {
		return nil, err
	}
	smallByType := map[string][]float64{}
	bigByType := map[string][]float64{}
	for _, ss := range corpus {
		if ss.Series.IsStable() {
			continue
		}
		for _, d := range ss.Series.AdjacentDeltas() {
			smallByType[ss.FileType] = append(smallByType[ss.FileType], float64(d))
		}
		bigByType[ss.FileType] = append(bigByType[ss.FileType], float64(ss.Series.Delta()))
	}
	res := &Figure6Result{}
	types := make([]string, 0, len(bigByType))
	for ft := range bigByType {
		types = append(types, ft)
	}
	sort.Strings(types)
	for _, ft := range types {
		res.Rows = append(res.Rows, TypeDynamicsRow{
			FileType: ft,
			Small:    stats.Boxplot(smallByType[ft]),
			Big:      stats.Boxplot(bigByType[ft]),
		})
	}
	return res, nil
}

// Render prints the per-type table.
func (f *Figure6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: δ and Δ by file type (dynamic samples)")
	tb := newTable(w, 20, 8, 10, 10, 10, 10)
	tb.row("File Type", "N", "δ mean", "δ median", "Δ mean", "Δ median")
	for _, row := range f.Rows {
		tb.row(row.FileType, row.Big.N,
			fmt.Sprintf("%.2f", row.Small.Mean), fmt.Sprintf("%.1f", row.Small.Median),
			fmt.Sprintf("%.2f", row.Big.Mean), fmt.Sprintf("%.1f", row.Big.Median))
	}
	fmt.Fprintln(w, "(paper: Win32 DLL highest δ mean 3.25; JSON lowest 0.29; Δ means range 1.49 JPEG to 14.08 Win32 EXE)")
}

// --- Figure 7: rank difference vs. time interval ----------------------

// IntervalRow is one time-interval bucket of Figure 7.
type IntervalRow struct {
	// MaxDays is the bucket's upper bound in days.
	MaxDays int
	Box     stats.BoxplotStats
}

// Figure7Result reproduces the diff-vs-interval relationship.
type Figure7Result struct {
	Rows []IntervalRow
	// Spearman correlates bucket mean difference with interval, the
	// paper's headline statistic (ρ = 0.9181, p = 2.6e-167).
	Spearman stats.SpearmanResult
	// PairSpearman correlates raw (interval, diff) pairs.
	PairSpearman stats.SpearmanResult
	Pairs        int
}

// figure7Buckets are the bucket bounds in days.
var figure7Buckets = []int{1, 2, 3, 5, 7, 10, 14, 21, 30, 45, 60, 90, 120, 180, 270, 420}

// Figure7DiffVsInterval extracts every scan pair of every dynamic
// dataset-S sample and buckets |Δp| by the pair's time interval.
func (r *Runner) Figure7DiffVsInterval() (*Figure7Result, error) {
	corpus, err := r.RankCorpus()
	if err != nil {
		return nil, err
	}
	buckets := make([][]float64, len(figure7Buckets))
	var rawIntervals, rawDiffs []float64
	res := &Figure7Result{}
	for _, ss := range corpus {
		if ss.Series.IsStable() {
			continue
		}
		// Cap pathological scan counts: a sample with tens of
		// thousands of scans would contribute O(n²) pairs.
		if ss.Series.Len() > 200 {
			continue
		}
		for _, pd := range ss.Series.AllPairDiffs() {
			days := daysOf(pd.Interval)
			idx := sort.SearchInts(figure7Buckets, int(days)+1)
			if idx >= len(buckets) {
				idx = len(buckets) - 1
			}
			buckets[idx] = append(buckets[idx], float64(pd.Diff))
			rawIntervals = append(rawIntervals, days)
			rawDiffs = append(rawDiffs, float64(pd.Diff))
			res.Pairs++
		}
	}
	var bucketDays, bucketMeans []float64
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		box := stats.Boxplot(b)
		res.Rows = append(res.Rows, IntervalRow{MaxDays: figure7Buckets[i], Box: box})
		bucketDays = append(bucketDays, float64(figure7Buckets[i]))
		bucketMeans = append(bucketMeans, box.Mean)
	}
	if len(bucketDays) >= 2 {
		sp, err := stats.Spearman(bucketDays, bucketMeans)
		if err != nil {
			return nil, err
		}
		res.Spearman = sp
	}
	if len(rawIntervals) >= 2 {
		sp, err := stats.Spearman(rawIntervals, rawDiffs)
		if err != nil {
			return nil, err
		}
		res.PairSpearman = sp
	}
	return res, nil
}

// Render prints the Figure 7 buckets and correlation.
func (f *Figure7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: AV-Rank difference vs. time interval between two scans")
	tb := newTable(w, 12, 10, 10, 10)
	tb.row("<= days", "N", "mean", "median")
	for _, row := range f.Rows {
		tb.row(row.MaxDays, row.Box.N,
			fmt.Sprintf("%.2f", row.Box.Mean), fmt.Sprintf("%.1f", row.Box.Median))
	}
	fmt.Fprintf(w, "bucket-level Spearman ρ = %.4f (p = %.3g)  [paper: ρ = 0.9181, p = 2.6e-167]\n",
		f.Spearman.Rho, f.Spearman.PValue)
	fmt.Fprintf(w, "raw pair-level Spearman ρ = %.4f over %d pairs\n",
		f.PairSpearman.Rho, f.Pairs)
}
