package experiments

import (
	"fmt"
	"io"
	"sort"

	"vtdynamics/internal/core"
	"vtdynamics/internal/ftypes"
)

// --- Figure 11: strong engine correlations (overall) -------------------

// Figure11Result reproduces the overall strong-correlation network.
type Figure11Result struct {
	// StrongPairs holds every pair with ρ > 0.8, strongest first.
	StrongPairs []core.PairCorrelation
	// Groups are the connected components (the engine groups).
	Groups [][]string
	// InvolvedEngines counts engines with at least one strong edge
	// (paper: 17).
	InvolvedEngines int
	// Scans is the number of matrix rows analyzed.
	Scans int
}

// buildMatrix scans dataset-S samples into a verdict matrix until the
// row cap is reached. A nil filter accepts every sample.
func (r *Runner) buildMatrix(filter func(ft string) bool) (*core.VerdictMatrix, error) {
	samples, err := r.DatasetS()
	if err != nil {
		return nil, err
	}
	m := core.NewVerdictMatrix(r.set.Names())
	for _, s := range samples {
		if filter != nil && !filter(s.FileType) {
			continue
		}
		m.AddHistory(vtsimScan(r.set, s))
		if m.Rows() >= r.cfg.CorrelationScans {
			break
		}
	}
	return m, nil
}

// PairFor returns the correlation for a specific pair if present.
func (f *Figure11Result) PairFor(a, b string) (core.PairCorrelation, bool) {
	for _, p := range f.StrongPairs {
		if (p.A == a && p.B == b) || (p.A == b && p.B == a) {
			return p, true
		}
	}
	return core.PairCorrelation{}, false
}

// Figure11Correlation computes the overall correlation network.
func (r *Runner) Figure11Correlation() (*Figure11Result, error) {
	m, err := r.buildMatrix(nil)
	if err != nil {
		return nil, err
	}
	pairs, err := m.Correlations()
	if err != nil {
		return nil, err
	}
	res := &Figure11Result{Scans: m.Rows()}
	involved := map[string]bool{}
	for _, p := range pairs {
		if p.Rho > 0.8 {
			res.StrongPairs = append(res.StrongPairs, p)
			involved[p.A] = true
			involved[p.B] = true
		}
	}
	sort.Slice(res.StrongPairs, func(i, j int) bool {
		return res.StrongPairs[i].Rho > res.StrongPairs[j].Rho
	})
	res.InvolvedEngines = len(involved)
	res.Groups = core.StrongGroups(pairs, 0.8)
	// Keep only multi-engine groups (singletons are engines with no
	// strong edges).
	var groups [][]string
	for _, g := range res.Groups {
		if len(g) > 1 {
			groups = append(groups, g)
		}
	}
	res.Groups = groups
	return res, nil
}

// Render prints the network summary.
func (f *Figure11Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 11: strong correlations between engines (ρ > 0.8, %d scans)\n", f.Scans)
	fmt.Fprintf(w, "engines involved: %d (paper: 17)\n", f.InvolvedEngines)
	fmt.Fprintln(w, "strongest pairs:")
	for i, p := range f.StrongPairs {
		if i == 10 {
			fmt.Fprintf(w, "  ... %d more\n", len(f.StrongPairs)-10)
			break
		}
		fmt.Fprintf(w, "  %-22s %-22s ρ=%.4f\n", p.A, p.B, p.Rho)
	}
	fmt.Fprintln(w, "groups:")
	for _, g := range f.Groups {
		fmt.Fprintf(w, "  %v\n", g)
	}
	fmt.Fprintln(w, "(paper: Paloalto–APEX 0.9933, Webroot–CrowdStrike 0.9754, Avast–AVG 0.9814, BitDefender–FireEye 0.9520, Babable–F-Prot 0.9698)")
}

// --- Figure 12 / Tables 4–8: per-file-type groups ----------------------

// PerTypeGroups is one file type's strong-correlation structure.
type PerTypeGroups struct {
	FileType string
	Groups   [][]string
	Pairs    []core.PairCorrelation
	Scans    int
}

// HasGroupWith reports whether any group contains both engines.
func (p PerTypeGroups) HasGroupWith(a, b string) bool {
	for _, g := range p.Groups {
		hasA, hasB := false, false
		for _, e := range g {
			if e == a {
				hasA = true
			}
			if e == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// Figure12Result reproduces the per-type group tables.
type Figure12Result struct {
	PerType []PerTypeGroups
}

// ForType returns the groups for a file type.
func (f *Figure12Result) ForType(ft string) (PerTypeGroups, bool) {
	for _, p := range f.PerType {
		if p.FileType == ft {
			return p, true
		}
	}
	return PerTypeGroups{}, false
}

// figure12Types are the per-type panels we reproduce: the paper's
// Tables 4–8 (top-5 types) plus DEX and GZIP, whose groups showcase
// the type-specific pairs (Avast-Mobile, Lionic–VirIT).
var figure12Types = []string{
	ftypes.Win32EXE, ftypes.TXT, ftypes.HTML, ftypes.ZIP, ftypes.PDF,
	ftypes.DEX, ftypes.GZIP,
}

// Figure12PerTypeGroups computes groups per file type.
func (r *Runner) Figure12PerTypeGroups() (*Figure12Result, error) {
	res := &Figure12Result{}
	for _, ft := range figure12Types {
		ft := ft
		m, err := r.buildMatrix(func(t string) bool { return t == ft })
		if err != nil {
			return nil, err
		}
		if m.Rows() < 2 {
			continue
		}
		pairs, err := m.Correlations()
		if err != nil {
			return nil, err
		}
		var strong []core.PairCorrelation
		for _, p := range pairs {
			if p.Rho > 0.8 {
				strong = append(strong, p)
			}
		}
		sort.Slice(strong, func(i, j int) bool { return strong[i].Rho > strong[j].Rho })
		var groups [][]string
		for _, g := range core.StrongGroups(pairs, 0.8) {
			if len(g) > 1 {
				groups = append(groups, g)
			}
		}
		res.PerType = append(res.PerType, PerTypeGroups{
			FileType: ft,
			Groups:   groups,
			Pairs:    strong,
			Scans:    m.Rows(),
		})
	}
	return res, nil
}

// Render prints the per-type group tables (Tables 4–8 analogues).
func (f *Figure12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 12 / Tables 4-8: strongly correlated engine groups per file type")
	for _, p := range f.PerType {
		fmt.Fprintf(w, "%s (%d scans): %d groups\n", p.FileType, p.Scans, len(p.Groups))
		for i, g := range p.Groups {
			fmt.Fprintf(w, "  Group %d: %v\n", i+1, g)
		}
	}
	fmt.Fprintln(w, "(paper highlights: Cyren–Fortinet on Win32 EXE only; Avira–Cynet absent on Win32 EXE;")
	fmt.Fprintln(w, " AVG–Avast-Mobile on DEX; Lionic–VirIT on GZIP only; BitDefender group shrinks on ZIP)")
}
