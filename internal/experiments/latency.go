package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"vtdynamics/internal/core"
	"vtdynamics/internal/stats"
)

// --- Engine latency profiles (§5.5 cause i, quantified) ----------------

// EngineLatencyResult profiles each engine's observed learning curve:
// how long after a sample's first scan the engine's verdict converts
// from benign to malicious.
type EngineLatencyResult struct {
	// PerEngine holds profiles for engines with enough observed
	// conversions, sorted by mean latency descending (slowest
	// learners first).
	PerEngine []core.EngineLatency
	// Overall summarizes all conversions pooled.
	Overall stats.BoxplotStats
	// TotalConversions counts observed 0→1 learning events.
	TotalConversions int
}

// EngineLatencyProfiles extracts every observed conversion from
// dataset S.
func (r *Runner) EngineLatencyProfiles() (*EngineLatencyResult, error) {
	samples, err := r.DatasetS()
	if err != nil {
		return nil, err
	}
	workers := r.cfg.Workers
	accs := make([]*core.LatencyAccumulator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		accs[w] = core.NewLatencyAccumulator()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				accs[w].AddHistory(vtsimScan(r.set, samples[i]))
			}
		}(w)
	}
	wg.Wait()
	total := accs[0]
	for _, a := range accs[1:] {
		total.Merge(a)
	}

	const minConversions = 30
	res := &EngineLatencyResult{PerEngine: total.PerEngine(minConversions)}
	sort.Slice(res.PerEngine, func(i, j int) bool {
		return res.PerEngine[i].MeanDays > res.PerEngine[j].MeanDays
	})
	all := total.AllDays()
	res.Overall = stats.Boxplot(all)
	res.TotalConversions = len(all)
	return res, nil
}

// Render prints the slowest and fastest learners.
func (e *EngineLatencyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Engine detection latency: %d observed 0→1 conversions (§5.5 cause i)\n",
		e.TotalConversions)
	fmt.Fprintf(w, "overall: mean %.1f d, median %.1f d, Q3 %.1f d\n",
		e.Overall.Mean, e.Overall.Median, e.Overall.Q3)
	show := func(label string, rows []core.EngineLatency) {
		fmt.Fprintln(w, label)
		for _, row := range rows {
			fmt.Fprintf(w, "  %-22s mean %6.1f d  median %6.1f d  (%d conversions)\n",
				row.Engine, row.MeanDays, row.MedianDays, row.Conversions)
		}
	}
	if len(e.PerEngine) >= 5 {
		show("slowest learners:", e.PerEngine[:5])
		show("fastest learners:", e.PerEngine[len(e.PerEngine)-5:])
	}
}

// --- Kappa robustness of the correlation groups ------------------------

// KappaRobustnessResult compares the §7.2 group structure under
// Spearman ρ (the paper's metric) and Cohen's κ.
type KappaRobustnessResult struct {
	SpearmanGroups [][]string
	KappaGroups    [][]string
	// AgreeingPairs counts engine pairs that are strong under both
	// metrics; SpearmanOnly/KappaOnly count the disagreements.
	AgreeingPairs, SpearmanOnly, KappaOnly int
}

// KappaRobustness recomputes the overall correlation structure with
// both metrics at the 0.8 cutoff.
func (r *Runner) KappaRobustness() (*KappaRobustnessResult, error) {
	m, err := r.buildMatrix(nil)
	if err != nil {
		return nil, err
	}
	rho, err := m.Correlations()
	if err != nil {
		return nil, err
	}
	kap, err := m.KappaAgreements()
	if err != nil {
		return nil, err
	}
	strongRho := map[string]bool{}
	for _, p := range rho {
		if p.Rho > 0.8 {
			strongRho[p.A+"|"+p.B] = true
		}
	}
	strongKap := map[string]bool{}
	for _, p := range kap {
		if p.Kappa > 0.8 {
			strongKap[p.A+"|"+p.B] = true
		}
	}
	res := &KappaRobustnessResult{}
	for key := range strongRho {
		if strongKap[key] {
			res.AgreeingPairs++
		} else {
			res.SpearmanOnly++
		}
	}
	for key := range strongKap {
		if !strongRho[key] {
			res.KappaOnly++
		}
	}
	for _, g := range core.StrongGroups(rho, 0.8) {
		if len(g) > 1 {
			res.SpearmanGroups = append(res.SpearmanGroups, g)
		}
	}
	for _, g := range core.StrongKappaGroups(kap, 0.8) {
		if len(g) > 1 {
			res.KappaGroups = append(res.KappaGroups, g)
		}
	}
	return res, nil
}

// Render prints the comparison.
func (k *KappaRobustnessResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Robustness: engine groups under Spearman ρ vs Cohen's κ (cutoff 0.8)")
	fmt.Fprintf(w, "strong pairs agreeing under both: %d; ρ-only: %d; κ-only: %d\n",
		k.AgreeingPairs, k.SpearmanOnly, k.KappaOnly)
	fmt.Fprintf(w, "ρ groups: %d, κ groups: %d\n", len(k.SpearmanGroups), len(k.KappaGroups))
	fmt.Fprintln(w, "κ groups:")
	for _, g := range k.KappaGroups {
		fmt.Fprintf(w, "  %v\n", g)
	}
	fmt.Fprintln(w, "(the groups are engine properties, not artifacts of the paper's choice of ρ)")
}
