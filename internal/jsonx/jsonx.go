// Package jsonx provides the allocation-lean JSON primitives behind
// the hand-rolled codecs in internal/report and internal/store.
//
// The encoder side (AppendString, AppendInt) is byte-identical to
// encoding/json with its default escapeHTML=true behavior, so the
// hand-rolled marshalers produce exactly the bytes the reflective
// ones did — on-disk partitions and golden fixtures are unchanged.
//
// The decoder side is a strict scanning Cursor whose accepted grammar
// is a strict subset of encoding/json's: exact-case keys, plain
// integers, strings with stdlib unquote semantics. Anything outside
// that subset (case-folded keys, floats, nulls, bad escapes) reports
// ErrFallback and the caller reruns the reflective decoder on the
// whole input, so observable behavior — including error cases — is
// exactly encoding/json's.
package jsonx

import (
	"errors"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// ErrFallback is returned by Cursor methods for any input the strict
// fast path does not handle bit-identically to encoding/json. Callers
// must treat it (and every other Cursor error) as "rerun the slow
// reflective decoder", never as a user-visible error.
var ErrFallback = errors.New("jsonx: input outside fast-path subset")

const hexDigits = "0123456789abcdef"

// htmlSafe mirrors encoding/json's htmlSafeSet: ASCII bytes that pass
// through a JSON string unescaped when escapeHTML is on.
var htmlSafe = [utf8.RuneSelf]bool{}

func init() {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		htmlSafe[b] = true
	}
	for _, b := range []byte{'"', '\\', '<', '>', '&'} {
		htmlSafe[b] = false
	}
}

// AppendString appends s as a JSON string literal (quotes included),
// byte-identical to encoding/json's encoding with escapeHTML on.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes below 0x20 without a named escape,
				// plus <, >, & (escapeHTML).
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// AppendInt appends the base-10 representation of v.
func AppendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// Cursor scans a JSON document left to right. Buf is the full input;
// Pos advances as tokens are consumed.
type Cursor struct {
	Buf []byte
	Pos int
}

// SkipSpace advances past JSON insignificant whitespace.
func (c *Cursor) SkipSpace() {
	for c.Pos < len(c.Buf) {
		switch c.Buf[c.Pos] {
		case ' ', '\t', '\n', '\r':
			c.Pos++
		default:
			return
		}
	}
}

// Byte skips whitespace and consumes the single byte want.
func (c *Cursor) Byte(want byte) error {
	c.SkipSpace()
	if c.Pos >= len(c.Buf) || c.Buf[c.Pos] != want {
		return ErrFallback
	}
	c.Pos++
	return nil
}

// peek returns the next non-space byte without consuming it.
func (c *Cursor) peek() (byte, error) {
	c.SkipSpace()
	if c.Pos >= len(c.Buf) {
		return 0, ErrFallback
	}
	return c.Buf[c.Pos], nil
}

// ObjectStart consumes '{' and reports whether the object is empty
// (the '}' of an empty object is consumed too).
func (c *Cursor) ObjectStart() (empty bool, err error) {
	if err := c.Byte('{'); err != nil {
		return false, err
	}
	b, err := c.peek()
	if err != nil {
		return false, err
	}
	if b == '}' {
		c.Pos++
		return true, nil
	}
	return false, nil
}

// ObjectNext is called after each member value: it consumes ',' and
// reports done=false, or consumes '}' and reports done=true.
func (c *Cursor) ObjectNext() (done bool, err error) {
	b, err := c.peek()
	if err != nil {
		return false, err
	}
	switch b {
	case ',':
		c.Pos++
		return false, nil
	case '}':
		c.Pos++
		return true, nil
	}
	return false, ErrFallback
}

// ArrayStart consumes '[' and reports whether the array is empty
// (the ']' of an empty array is consumed too).
func (c *Cursor) ArrayStart() (empty bool, err error) {
	if err := c.Byte('['); err != nil {
		return false, err
	}
	b, err := c.peek()
	if err != nil {
		return false, err
	}
	if b == ']' {
		c.Pos++
		return true, nil
	}
	return false, nil
}

// ArrayNext is called after each element: it consumes ',' and reports
// done=false, or consumes ']' and reports done=true.
func (c *Cursor) ArrayNext() (done bool, err error) {
	b, err := c.peek()
	if err != nil {
		return false, err
	}
	switch b {
	case ',':
		c.Pos++
		return false, nil
	case ']':
		c.Pos++
		return true, nil
	}
	return false, ErrFallback
}

// Key reads an object key and its ':' separator. The returned bytes
// follow ReadString's aliasing rules.
func (c *Cursor) Key() ([]byte, error) {
	k, err := c.ReadString()
	if err != nil {
		return nil, err
	}
	if err := c.Byte(':'); err != nil {
		return nil, err
	}
	return k, nil
}

// ReadString reads a JSON string literal and returns its decoded
// value with encoding/json's exact unquote semantics (named escapes,
// \uXXXX with surrogate-pair handling and lone-surrogate U+FFFD
// replacement, invalid UTF-8 coerced rune by rune). The result
// aliases Buf when the literal needs no decoding and is freshly
// allocated otherwise; callers retaining it past the life of Buf must
// copy or intern it.
func (c *Cursor) ReadString() ([]byte, error) {
	c.SkipSpace()
	if c.Pos >= len(c.Buf) || c.Buf[c.Pos] != '"' {
		return nil, ErrFallback
	}
	s := c.Buf[c.Pos+1:]
	// Fast scan: if the literal closes with no escapes, control bytes,
	// or invalid UTF-8, alias the input directly.
	r := 0
	for r < len(s) {
		b := s[r]
		if b == '"' {
			c.Pos += r + 2
			return s[:r:r], nil
		}
		if b == '\\' || b < ' ' {
			break
		}
		if b < utf8.RuneSelf {
			r++
			continue
		}
		rr, size := utf8.DecodeRune(s[r:])
		if rr == utf8.RuneError && size == 1 {
			break
		}
		r += size
	}
	if r >= len(s) {
		return nil, ErrFallback // unterminated
	}
	out := make([]byte, r, len(s)+2*utf8.UTFMax)
	copy(out, s[:r])
	for r < len(s) {
		if len(out) >= cap(out)-2*utf8.UTFMax {
			grown := make([]byte, len(out), (cap(out)+utf8.UTFMax)*2)
			copy(grown, out)
			out = grown
		}
		switch b := s[r]; {
		case b == '"':
			c.Pos += r + 2
			return out, nil
		case b == '\\':
			r++
			if r >= len(s) {
				return nil, ErrFallback
			}
			switch s[r] {
			default:
				return nil, ErrFallback
			// No backslash-quote escape for ': unquote would take
			// it, but the stdlib scanner rejects it first, so
			// Unmarshal errors — fall back so it still does.
			case '"', '\\', '/':
				out = append(out, s[r])
				r++
			case 'b':
				out = append(out, '\b')
				r++
			case 'f':
				out = append(out, '\f')
				r++
			case 'n':
				out = append(out, '\n')
				r++
			case 'r':
				out = append(out, '\r')
				r++
			case 't':
				out = append(out, '\t')
				r++
			case 'u':
				r--
				rr := getu4(s[r:])
				if rr < 0 {
					return nil, ErrFallback
				}
				r += 6
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(s[r:])
					if dec := utf16.DecodeRune(rr, rr1); dec != utf8.RuneError {
						r += 6
						out = utf8.AppendRune(out, dec)
						break
					}
					rr = utf8.RuneError
				}
				out = utf8.AppendRune(out, rr)
			}
		case b < ' ':
			return nil, ErrFallback // raw control byte: syntax error upstream
		case b < utf8.RuneSelf:
			out = append(out, b)
			r++
		default:
			rr, size := utf8.DecodeRune(s[r:])
			r += size
			out = utf8.AppendRune(out, rr)
		}
	}
	return nil, ErrFallback // unterminated
}

// getu4 decodes \uXXXX from the start of s, returning -1 on malformed
// input; it mirrors encoding/json's helper.
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, b := range s[2:6] {
		switch {
		case '0' <= b && b <= '9':
			b -= '0'
		case 'a' <= b && b <= 'f':
			b = b - 'a' + 10
		case 'A' <= b && b <= 'F':
			b = b - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(b)
	}
	return r
}

// ReadInt64 reads a plain integer number token. Anything outside the
// strict JSON integer grammar — leading zeros, floats, exponents,
// overflow, a non-delimiter suffix — reports ErrFallback so the
// reflective decoder produces the canonical result or error.
func (c *Cursor) ReadInt64() (int64, error) {
	c.SkipSpace()
	start := c.Pos
	i := c.Pos
	if i < len(c.Buf) && c.Buf[i] == '-' {
		i++
	}
	digits := i
	for i < len(c.Buf) && c.Buf[i] >= '0' && c.Buf[i] <= '9' {
		i++
	}
	if i == digits {
		return 0, ErrFallback // no digits
	}
	if c.Buf[digits] == '0' && i-digits > 1 {
		return 0, ErrFallback // leading zero is a JSON syntax error
	}
	if i < len(c.Buf) {
		switch c.Buf[i] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
		default:
			return 0, ErrFallback // float, exponent, or junk suffix
		}
	}
	v, err := strconv.ParseInt(string(c.Buf[start:i]), 10, 64)
	if err != nil {
		return 0, ErrFallback
	}
	c.Pos = i
	return v, nil
}

// SkipValue advances past one JSON value without decoding it,
// tracking only string/escape state and container depth. It is a
// span finder, not a validator: callers must re-parse the skipped
// bytes (e.g. hand them to a full decoder) before trusting them, and
// must fall back on any error.
func (c *Cursor) SkipValue() error {
	c.SkipSpace()
	depth := 0
	inStr := false
	esc := false
	for c.Pos < len(c.Buf) {
		b := c.Buf[c.Pos]
		if inStr {
			switch {
			case esc:
				esc = false
			case b == '\\':
				esc = true
			case b == '"':
				inStr = false
			}
			c.Pos++
			continue
		}
		switch b {
		case '"':
			inStr = true
			c.Pos++
		case '{', '[':
			depth++
			c.Pos++
		case '}', ']':
			if depth == 0 {
				return nil // enclosing container's close: value ended
			}
			depth--
			c.Pos++
			if depth == 0 {
				return nil
			}
		case ',', ' ', '\t', '\n', '\r':
			if depth == 0 {
				return nil
			}
			c.Pos++
		default:
			c.Pos++
		}
	}
	if depth != 0 || inStr {
		return ErrFallback // unterminated container or string
	}
	return nil // primitive running to end of input
}

// AtEOF reports nil when only whitespace remains; data after the
// top-level value is a syntax error in encoding/json, so anything
// else reports ErrFallback.
func (c *Cursor) AtEOF() error {
	c.SkipSpace()
	if c.Pos != len(c.Buf) {
		return ErrFallback
	}
	return nil
}
