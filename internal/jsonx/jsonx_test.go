package jsonx

import (
	"bytes"
	"encoding/json"
	"testing"
)

// stringSeeds exercises every escape class: HTML escaping, named
// escapes, low controls, invalid UTF-8 (single bytes and runs),
// U+2028/29, multibyte runes, and DEL.
var stringSeeds = []string{
	"",
	"BitDefender",
	"Trojan.GenericKD/41",
	`quote " backslash \ slash /`,
	"tab\tnewline\ncr\rbackspace\bformfeed\f",
	"html <script> & friends",
	"ctrl \x00 \x01 \x1f",
	"bad utf8 \xff\xfe run",
	"truncated rune \xc3",
	"overlong \xe2\x28\xa1 seq",
	"line sep   para sep  ",
	"emoji 🎛 and accents éü",
	"del \x7f char",
}

func TestAppendStringMatchesStdlib(t *testing.T) {
	for _, s := range stringSeeds {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		got := AppendString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendString(%q) = %s, stdlib %s", s, got, want)
		}
	}
}

func FuzzAppendStringDifferential(f *testing.F) {
	for _, s := range stringSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		got := AppendString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendString(%q) = %s, stdlib %s", s, got, want)
		}
	})
}

// FuzzReadStringDifferential feeds arbitrary bytes as a candidate
// string literal. Whenever the cursor accepts, encoding/json must
// accept with the identical value; cursor rejections are fine (they
// mean fallback), stdlib-accepts-cursor-rejects is the allowed
// asymmetry, cursor-accepts-stdlib-rejects is a bug.
func FuzzReadStringDifferential(f *testing.F) {
	for _, s := range stringSeeds {
		b, _ := json.Marshal(s)
		f.Add(b)
	}
	f.Add([]byte(`"A"`))
	f.Add([]byte(`"😀"`))           // surrogate pair
	f.Add([]byte(`"\ud83d"`))      // lone high surrogate
	f.Add([]byte(`"\udc00 tail"`)) // lone low surrogate
	f.Add([]byte(`"\ud83dxx"`))    // high surrogate, junk follower
	f.Add([]byte(`"\'"`))          // scanner rejects, unquote would not
	f.Add([]byte(`"unterminated`))
	f.Add([]byte(`"raw ctrl ` + "\x01" + `"`))
	f.Add([]byte(`"bad esc \x"`))
	f.Add([]byte("\"bad utf8 \xff in literal\""))
	f.Fuzz(func(t *testing.T, raw []byte) {
		c := Cursor{Buf: raw}
		got, err := c.ReadString()
		if err != nil {
			return // fallback path: stdlib behavior governs
		}
		if err := c.AtEOF(); err != nil {
			return // trailing data: full-document decode would fall back
		}
		var want string
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("cursor accepted %q as %q but stdlib rejects: %v", raw, got, err)
		}
		if string(got) != want {
			t.Fatalf("ReadString(%q) = %q, stdlib %q", raw, got, want)
		}
	})
}

func FuzzReadInt64Differential(f *testing.F) {
	seeds := []string{"0", "-1", "1620000600", "9223372036854775807",
		"-9223372036854775808", "9223372036854775808", "01", "-", "1e3",
		"3.5", "  42  ", "0x1f", "12junk", "--4", "+7", ""}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		c := Cursor{Buf: raw}
		got, err := c.ReadInt64()
		if err != nil {
			return
		}
		if err := c.AtEOF(); err != nil {
			return
		}
		var want int64
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("cursor accepted %q as %d but stdlib rejects: %v", raw, got, err)
		}
		if got != want {
			t.Fatalf("ReadInt64(%q) = %d, stdlib %d", raw, got, want)
		}
	})
}

func TestCursorObjectWalk(t *testing.T) {
	doc := []byte(` { "a" : 1 , "b" : "two" } `)
	c := Cursor{Buf: doc}
	empty, err := c.ObjectStart()
	if err != nil || empty {
		t.Fatalf("ObjectStart: empty=%v err=%v", empty, err)
	}
	k, err := c.Key()
	if err != nil || string(k) != "a" {
		t.Fatalf("key 1: %q %v", k, err)
	}
	if v, err := c.ReadInt64(); err != nil || v != 1 {
		t.Fatalf("value 1: %d %v", v, err)
	}
	if done, err := c.ObjectNext(); err != nil || done {
		t.Fatalf("next 1: done=%v err=%v", done, err)
	}
	k, err = c.Key()
	if err != nil || string(k) != "b" {
		t.Fatalf("key 2: %q %v", k, err)
	}
	if v, err := c.ReadString(); err != nil || string(v) != "two" {
		t.Fatalf("value 2: %q %v", v, err)
	}
	if done, err := c.ObjectNext(); err != nil || !done {
		t.Fatalf("next 2: done=%v err=%v", done, err)
	}
	if err := c.AtEOF(); err != nil {
		t.Fatalf("AtEOF: %v", err)
	}
}

func TestCursorEmptyObject(t *testing.T) {
	c := Cursor{Buf: []byte(`{}`)}
	empty, err := c.ObjectStart()
	if err != nil || !empty {
		t.Fatalf("empty=%v err=%v", empty, err)
	}
	if err := c.AtEOF(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorRejectsTrailingComma(t *testing.T) {
	c := Cursor{Buf: []byte(`{"a":1,}`)}
	if _, err := c.ObjectStart(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Key(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadInt64(); err != nil {
		t.Fatal(err)
	}
	if done, err := c.ObjectNext(); err != nil || done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	// Next token should be a key; a '}' here must not parse as one.
	if _, err := c.Key(); err == nil {
		t.Fatal("trailing comma accepted")
	}
}

func TestSkipValueSpans(t *testing.T) {
	cases := []struct {
		in   string // value followed by a ']' delimiter
		want string // the span SkipValue should cover
	}{
		{`{"a":1}]`, `{"a":1}`},
		{`[1,[2,{"x":"]"}]]]`, `[1,[2,{"x":"]"}]]`},
		{`"br\"ack]et"]`, `"br\"ack]et"`},
		{`123]`, `123`},
		{`true]`, `true`},
		{`null ]`, `null`},
		{`{"nested":{"deep":[1,2]}}]`, `{"nested":{"deep":[1,2]}}`},
	}
	for _, tc := range cases {
		c := Cursor{Buf: []byte(tc.in)}
		if err := c.SkipValue(); err != nil {
			t.Errorf("SkipValue(%q): %v", tc.in, err)
			continue
		}
		if got := tc.in[:c.Pos]; got != tc.want {
			t.Errorf("SkipValue(%q) spanned %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSkipValueUnterminated(t *testing.T) {
	for _, in := range []string{`{"a":1`, `[1,2`, `"open`, `{"a":"\`} {
		c := Cursor{Buf: []byte(in)}
		if err := c.SkipValue(); err == nil {
			t.Errorf("SkipValue(%q) accepted an unterminated value", in)
		}
	}
}
