package concurrency

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/feed"
	"vtdynamics/internal/report"
)

// scriptedSource serves a fixed envelope schedule; safe for
// concurrent fetches and counts them.
type scriptedSource struct {
	envs  []report.Envelope
	calls atomic.Int64
}

func (f *scriptedSource) FeedBetween(_ context.Context, from, to time.Time) ([]report.Envelope, error) {
	f.calls.Add(1)
	var out []report.Envelope
	for _, e := range f.envs {
		at := e.Scan.AnalysisDate
		if !at.Before(from) && at.Before(to) {
			out = append(out, e)
		}
	}
	return out, nil
}

// recordSink appends committed envelopes; it deliberately has no lock
// so the race detector would flag any out-of-order (concurrent)
// commit by the collector.
type recordSink struct {
	stored []report.Envelope
}

func (r *recordSink) Put(env report.Envelope) error {
	r.stored = append(r.stored, env)
	return nil
}

func collectorEnv(sha string, at time.Time) report.Envelope {
	return report.Envelope{
		Meta: report.SampleMeta{SHA256: sha, LastAnalysisDate: at},
		Scan: report.ScanReport{SHA256: sha, AnalysisDate: at},
	}
}

// TestCollectorWorkerEquivalence runs the same window at 1, 2, 8, and
// 32 workers: stats and the committed envelope sequence must be
// identical — concurrency only overlaps fetch latency.
func TestCollectorWorkerEquivalence(t *testing.T) {
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	var envs []report.Envelope
	for i := 0; i < 300; i++ {
		envs = append(envs, collectorEnv(fmt.Sprintf("w-%03d", i%40), t0.Add(time.Duration(i)*17*time.Second)))
	}
	run := func(workers int) ([]report.Envelope, feed.Stats) {
		src := &scriptedSource{envs: envs}
		sink := &recordSink{}
		c := feed.NewCollector(src, sink)
		c.Workers = workers
		stats, err := c.Run(context.Background(), t0, t0.Add(90*time.Minute))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sink.stored, stats
	}
	wantStored, wantStats := run(1)
	if wantStats.Envelopes != 300 {
		t.Fatalf("serial baseline stored %d envelopes", wantStats.Envelopes)
	}
	for _, workers := range []int{2, 8, 32} {
		stored, stats := run(workers)
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
		if len(stored) != len(wantStored) {
			t.Fatalf("workers=%d: stored %d, want %d", workers, len(stored), len(wantStored))
		}
		for i := range stored {
			if stored[i].Scan.SHA256 != wantStored[i].Scan.SHA256 ||
				!stored[i].Scan.AnalysisDate.Equal(wantStored[i].Scan.AnalysisDate) {
				t.Fatalf("workers=%d: commit order diverges at %d", workers, i)
			}
		}
	}
}

// TestCollectorConcurrentFetchesOverlap proves the worker pool
// actually overlaps fetches: with W workers and a source that blocks
// until W fetches are simultaneously in flight, the run can only
// finish if the pool really fans out.
func TestCollectorConcurrentFetchesOverlap(t *testing.T) {
	const workers = 4
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	inflight, peak := 0, 0
	cond := sync.NewCond(&mu)
	src := feed.SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
		mu.Lock()
		inflight++
		if inflight > peak {
			peak = inflight
		}
		// Hold the first W fetches until the pool is saturated, then
		// release everyone: a serial collector would deadlock here.
		for inflight < workers && peak < workers {
			cond.Wait()
		}
		cond.Broadcast()
		inflight--
		mu.Unlock()
		return nil, nil
	})
	c := feed.NewCollector(src, &recordSink{})
	c.Workers = workers
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), t0, t0.Add(workers*time.Minute))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker pool never saturated: fetches are not concurrent")
	}
	if peak < workers {
		t.Fatalf("peak in-flight fetches = %d, want %d", peak, workers)
	}
}

// TestCollectorConcurrentErrorPropagates mirrors the serial
// error-stops contract at 8 workers.
func TestCollectorConcurrentErrorPropagates(t *testing.T) {
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	srcErr := errors.New("http 500")
	var calls atomic.Int64
	src := feed.SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
		if calls.Add(1) >= 5 {
			return nil, srcErr
		}
		return nil, nil
	})
	c := feed.NewCollector(src, &recordSink{})
	c.Workers = 8
	_, err := c.Run(context.Background(), t0, t0.Add(2*time.Hour))
	if !errors.Is(err, srcErr) {
		t.Fatalf("err = %v, want %v", err, srcErr)
	}
}

// TestCollectorConcurrentResumable checks that checkpoints stay in
// slice order under concurrent fetches: after a mid-window
// cancellation the cursor frontier equals exactly the number of
// committed slices, and a re-run completes the window exactly once.
func TestCollectorConcurrentResumable(t *testing.T) {
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	end := t0.Add(60 * time.Minute)
	var envs []report.Envelope
	for i := 0; i < 60; i++ {
		envs = append(envs, collectorEnv(fmt.Sprintf("r-%03d", i), t0.Add(time.Duration(i)*time.Minute)))
	}
	src := &scriptedSource{envs: envs}
	sink := &recordSink{}
	cursor := &feed.MemCursor{}

	// First run: cancel after ~20 committed slices via a cursor that
	// trips the context.
	ctx, cancel := context.WithCancel(context.Background())
	trip := feed.CursorFunc{
		LoadFn: cursor.Load,
		SaveFn: func(frontier time.Time) error {
			if err := cursor.Save(frontier); err != nil {
				return err
			}
			if !frontier.Before(t0.Add(20 * time.Minute)) {
				cancel()
			}
			return nil
		},
	}
	c := feed.NewCollector(src, sink)
	c.Workers = 8
	if _, err := c.RunResumable(ctx, t0, end, trip); err == nil {
		t.Fatal("expected cancellation error")
	}
	frontier, ok, err := cursor.Load()
	if err != nil || !ok {
		t.Fatalf("cursor after cancel: %v %v", ok, err)
	}
	// Ordered commit ⇒ everything before the frontier is stored
	// exactly once, nothing after it is stored at all.
	if got, want := len(sink.stored), int(frontier.Sub(t0)/time.Minute); got != want {
		t.Fatalf("stored %d envelopes, frontier says %d", got, want)
	}

	// Second run resumes and completes exactly once.
	c2 := feed.NewCollector(src, sink)
	c2.Workers = 8
	if _, err := c2.RunResumable(context.Background(), t0, end, cursor); err != nil {
		t.Fatal(err)
	}
	if len(sink.stored) != 60 {
		t.Fatalf("stored %d envelopes after resume, want 60", len(sink.stored))
	}
	for i, env := range sink.stored {
		if want := fmt.Sprintf("r-%03d", i); env.Scan.SHA256 != want {
			t.Fatalf("stored[%d] = %s, want %s (lost or duplicated slice)", i, env.Scan.SHA256, want)
		}
	}
}
