package concurrency

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtsim"
)

func newService(t testing.TB, opts ...vtsim.Option) (*vtsim.Service, *simclock.SimClock) {
	t.Helper()
	set, err := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	return vtsim.NewService(set, clock, opts...), clock
}

func upload(sha string) vtsim.UploadRequest {
	return vtsim.UploadRequest{
		SHA256:        sha,
		FileType:      ftypes.Win32EXE,
		Size:          1 << 16,
		Malicious:     true,
		Detectability: 0.8,
	}
}

// TestServiceConcurrentStress hammers every Service operation from 32
// writer goroutines plus a reader crowd, under go test -race. Each
// writer owns a disjoint set of samples, so the final counts are
// exact: W goroutines × K samples × 3 analyses each.
func TestServiceConcurrentStress(t *testing.T) {
	const (
		writers = 32
		perW    = 12
	)
	svc, clock := newService(t)
	clock.Set(simclock.CollectionStart.Add(time.Hour))

	var wg sync.WaitGroup
	errc := make(chan error, writers+8)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Racing clock advances exercise the ordered-insert
				// path of the feed append.
				clock.Advance(time.Millisecond)
				sha := fmt.Sprintf("stress-%02d-%03d", w, i)
				if _, err := svc.Upload(upload(sha)); err != nil {
					errc <- err
					return
				}
				if _, err := svc.Rescan(sha); err != nil {
					errc <- err
					return
				}
				if _, err := svc.Upload(upload(sha)); err != nil {
					errc <- err
					return
				}
				if _, err := svc.Report(sha); err != nil {
					errc <- err
					return
				}
				if _, err := svc.History(sha); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Readers poll global views while the writers run: the race
	// detector checks these paths against concurrent appends.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 8; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				svc.NumSamples()
				svc.NumReports()
				envs := svc.FeedBetween(simclock.CollectionStart, clock.Now().Add(time.Hour))
				for i := 1; i < len(envs); i++ {
					if envs[i].Scan.AnalysisDate.Before(envs[i-1].Scan.AnalysisDate) {
						errc <- fmt.Errorf("feed out of order at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if got, want := svc.NumSamples(), writers*perW; got != want {
		t.Fatalf("NumSamples = %d, want %d", got, want)
	}
	if got, want := svc.NumReports(), writers*perW*3; got != want {
		t.Fatalf("NumReports = %d, want %d", got, want)
	}
	// Per-sample Table 1 semantics survived the contention: two
	// uploads and one rescan each.
	for w := 0; w < writers; w++ {
		sha := fmt.Sprintf("stress-%02d-%03d", w, perW-1)
		h, err := svc.History(sha)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Reports) != 3 {
			t.Fatalf("%s history = %d reports", sha, len(h.Reports))
		}
		if h.Meta.TimesSubmitted != 2 {
			t.Fatalf("%s times_submitted = %d, want 2", sha, h.Meta.TimesSubmitted)
		}
	}
}

// TestServiceShardCountInvariance proves the shard count is purely a
// contention knob: the same serial workload on 1, 4, and 64 shards
// yields identical feeds.
func TestServiceShardCountInvariance(t *testing.T) {
	run := func(shards int) []report.Envelope {
		svc, clock := newService(t, vtsim.WithShards(shards))
		for i := 0; i < 40; i++ {
			clock.Advance(time.Minute)
			sha := fmt.Sprintf("inv-%03d", i%10)
			if i < 10 {
				if _, err := svc.Upload(upload(sha)); err != nil {
					t.Fatal(err)
				}
			} else if _, err := svc.Rescan(sha); err != nil {
				t.Fatal(err)
			}
		}
		return svc.FeedBetween(simclock.CollectionStart, clock.Now().Add(time.Hour))
	}
	want := run(1)
	for _, shards := range []int{4, 64} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d envelopes, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i].Scan.SHA256 != want[i].Scan.SHA256 ||
				!got[i].Scan.AnalysisDate.Equal(want[i].Scan.AnalysisDate) ||
				got[i].Scan.AVRank != want[i].Scan.AVRank {
				t.Fatalf("shards=%d: envelope %d differs", shards, i)
			}
		}
	}
}

// TestFeedBetweenIsolation pins the FeedBetween contract: the
// returned slice is a deep copy, so mutating it (or racing it against
// appends) can never corrupt the service's log or histories.
func TestFeedBetweenIsolation(t *testing.T) {
	svc, clock := newService(t)
	clock.Advance(time.Hour)
	if _, err := svc.Upload(upload("iso-1")); err != nil {
		t.Fatal(err)
	}
	envs := svc.FeedBetween(simclock.CollectionStart, clock.Now().Add(time.Hour))
	if len(envs) != 1 || len(envs[0].Scan.Results) == 0 {
		t.Fatalf("feed = %+v", envs)
	}
	// Vandalize everything the caller can reach.
	envs[0].Scan.Results[0].Verdict = report.Undetected
	envs[0].Scan.Results[0].Label = "vandalized"
	envs[0].Scan.AVRank = -99
	envs = append(envs[:0], report.Envelope{})
	_ = envs

	again := svc.FeedBetween(simclock.CollectionStart, clock.Now().Add(time.Hour))
	if len(again) != 1 {
		t.Fatalf("feed after vandalism = %d envelopes", len(again))
	}
	if again[0].Scan.AVRank == -99 || again[0].Scan.Results[0].Label == "vandalized" {
		t.Fatal("caller mutation reached the internal feed")
	}
	if err := again[0].Scan.Validate(); err != nil {
		t.Fatalf("internal feed corrupted: %v", err)
	}
	// The stored history is equally isolated.
	h, err := svc.History("iso-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Reports[0].Validate(); err != nil {
		t.Fatalf("history corrupted: %v", err)
	}
}

// TestFeedBetweenDuringAppends reads feed slices while 32 writers
// append — under -race this proves readers can never observe a torn
// append, and functionally that every returned slice is sorted.
func TestFeedBetweenDuringAppends(t *testing.T) {
	svc, clock := newService(t)
	clock.Set(simclock.CollectionStart.Add(time.Hour))
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := svc.Upload(upload(fmt.Sprintf("app-%02d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		envs := svc.FeedBetween(simclock.CollectionStart, clock.Now().Add(time.Hour))
		for i := 1; i < len(envs); i++ {
			if envs[i].Scan.AnalysisDate.Before(envs[i-1].Scan.AnalysisDate) {
				t.Fatalf("unsorted slice at %d", i)
			}
		}
		if len(envs) == 32*8 {
			break
		}
	}
	wg.Wait()
	if got := svc.NumReports(); got != 32*8 {
		t.Fatalf("NumReports = %d, want %d", got, 32*8)
	}
}
