package concurrency

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

var storeT0 = time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)

func storeEnvelope(sha string, at time.Time, rank int) report.Envelope {
	results := []report.EngineResult{
		{Engine: "Avast", Verdict: report.Benign, SignatureVersion: 3},
		{Engine: "BitDefender", Verdict: report.Undetected, SignatureVersion: 9},
	}
	for i := 0; i < rank; i++ {
		results = append(results, report.EngineResult{
			Engine:           fmt.Sprintf("Det%02d", i),
			Verdict:          report.Malicious,
			Label:            "Trojan.Gen",
			SignatureVersion: 1,
		})
	}
	return report.Envelope{
		Meta: report.SampleMeta{
			SHA256:              sha,
			FileType:            "Win32 EXE",
			Size:                4096,
			FirstSubmissionDate: storeT0,
			LastAnalysisDate:    at,
			LastSubmissionDate:  at,
			TimesSubmitted:      1,
		},
		Scan: report.ScanReport{
			SHA256:       sha,
			FileType:     "Win32 EXE",
			AnalysisDate: at,
			Results:      results,
			AVRank:       rank,
			EnginesTotal: rank + 1,
		},
	}
}

// TestStoreConcurrentStress drives 32 Put goroutines spanning three
// monthly partitions while readers poll stats, metadata, and
// histories, and a flusher rotates gzip members mid-stream — all
// under go test -race. The final accounting must be exact and the
// store must pass full integrity verification.
func TestStoreConcurrentStress(t *testing.T) {
	const (
		writers = 32
		perW    = 40
	)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, writers+4)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				at := storeT0.Add(time.Duration(i%3) * 31 * 24 * time.Hour)
				env := storeEnvelope(fmt.Sprintf("st-%02d-%03d", w, i), at, i%6)
				if err := s.Put(env); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 6; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.NumSamples()
				s.TotalStats()
				s.Months()
				s.Meta(fmt.Sprintf("st-%02d-000", r))
				if r == 0 {
					// One goroutine rotates gzip members mid-write:
					// Put must survive writer handoff.
					if err := s.Flush(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if got, want := s.TotalStats().Reports, writers*perW; got != want {
		t.Fatalf("TotalStats.Reports = %d, want %d", got, want)
	}
	if got, want := s.NumSamples(), writers*perW; got != want {
		t.Fatalf("NumSamples = %d, want %d", got, want)
	}
	checked, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify after concurrent ingest: %v", err)
	}
	if checked != writers*perW {
		t.Fatalf("Verify checked %d rows, want %d", checked, writers*perW)
	}
	// Every partition's rows read back.
	h, err := s.Get("st-00-001")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 1 || h.Reports[0].AVRank != 1 {
		t.Fatalf("history = %+v", h.Reports)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBatchMatchesSingle proves PutBatch and per-envelope Put
// are observationally equivalent: same index, same accounting, same
// rows back — batch is purely a lock-amortization.
func TestStoreBatchMatchesSingle(t *testing.T) {
	envs := make([]report.Envelope, 0, 60)
	for i := 0; i < 60; i++ {
		at := storeT0.Add(time.Duration(i) * 13 * time.Hour)
		envs = append(envs, storeEnvelope(fmt.Sprintf("b-%03d", i%20), at, i%5))
	}
	single, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range envs {
		if err := single.Put(env); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.PutBatch(envs); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*store.Store{single, batch} {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := single.TotalStats(), batch.TotalStats(); a.Reports != b.Reports || a.RawBytes != b.RawBytes {
		t.Fatalf("stats diverge: single %+v batch %+v", a, b)
	}
	if a, b := single.NumSamples(), batch.NumSamples(); a != b {
		t.Fatalf("samples diverge: %d vs %d", a, b)
	}
	ha, err := single.Get("b-007")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := batch.Get("b-007")
	if err != nil {
		t.Fatal(err)
	}
	if len(ha.Reports) != len(hb.Reports) {
		t.Fatalf("history lengths diverge: %d vs %d", len(ha.Reports), len(hb.Reports))
	}
	for i := range ha.Reports {
		if ha.Reports[i].AVRank != hb.Reports[i].AVRank ||
			!ha.Reports[i].AnalysisDate.Equal(hb.Reports[i].AnalysisDate) {
			t.Fatalf("report %d diverges", i)
		}
	}
}

// TestStoreConcurrentPutBatch runs 32 goroutines of PutBatch slices
// with interleaved flushes; counts must be exact and verification
// clean.
func TestStoreConcurrentPutBatch(t *testing.T) {
	const writers = 32
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []report.Envelope
			for i := 0; i < 30; i++ {
				at := storeT0.Add(time.Duration(i%2) * 31 * 24 * time.Hour)
				batch = append(batch, storeEnvelope(fmt.Sprintf("pb-%02d-%03d", w, i), at, i%4))
			}
			if err := s.PutBatch(batch); err != nil {
				errc <- err
				return
			}
			if w%8 == 0 {
				if err := s.Flush(); err != nil {
					errc <- err
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got, want := s.TotalStats().Reports, writers*30; got != want {
		t.Fatalf("reports = %d, want %d", got, want)
	}
	if _, err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
