package concurrency

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vtdynamics/internal/feed"
	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

// The collector checkpoints through a feed.FileCursor whose Save is
// write-temp + fsync + rename, and the store is a feed.Syncer, so
// committed blocks hit disk before any checkpoint advances. A kill can
// therefore interrupt a checkpoint at two interesting points:
//
//   - after the temp file is fsynced but before the rename promotes
//     it: the main cursor file still holds the previous frontier and a
//     newer valid .tmp is orphaned next to it;
//   - mid-write of the temp file: the .tmp is truncated garbage and
//     only the main file is trustworthy.
//
// In both cases reopening the store and re-running the same window
// must be gap-free: every scheduled envelope present afterwards, with
// at most the single slice between the two frontiers re-fetched. These
// tests simulate the kill by hijacking cursor.Save at a chosen
// frontier, planting exactly the on-disk debris the crash would leave,
// and abandoning the live Store without Close — the reopened Store
// sees only what was durable.

// crashCampaign is the shared fixture: a 30-minute window with one
// envelope per one-minute slice, all in a single monthly partition.
type crashCampaign struct {
	dir    string
	start  time.Time
	end    time.Time
	envs   []report.Envelope
	cursor string
}

func newCrashCampaign(t *testing.T) *crashCampaign {
	t.Helper()
	dir := t.TempDir()
	start := time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)
	cc := &crashCampaign{
		dir:    dir,
		start:  start,
		end:    start.Add(30 * time.Minute),
		cursor: filepath.Join(dir, "collect.cursor"),
	}
	for i := 0; i < 30; i++ {
		cc.envs = append(cc.envs, storeEnvelope(
			fmt.Sprintf("cr-%03d", i), start.Add(time.Duration(i)*time.Minute), i%4))
	}
	return cc
}

// runUntilKill drives the campaign until the checkpoint at killAt,
// where plant writes the simulated crash debris instead of completing
// the Save. The store is abandoned un-Closed, exactly like a killed
// process: only data synced before the fatal checkpoint survives.
func (cc *crashCampaign) runUntilKill(t *testing.T, killAt time.Time, plant func(frontier time.Time)) {
	t.Helper()
	st, err := store.Open(cc.dir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	real := &feed.FileCursor{Path: cc.cursor}
	killed := errors.New("killed mid-checkpoint")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trip := feed.CursorFunc{
		LoadFn: real.Load,
		SaveFn: func(frontier time.Time) error {
			if !frontier.Before(killAt) {
				plant(frontier)
				cancel()
				return killed
			}
			return real.Save(frontier)
		},
	}
	c := feed.NewCollector(&scriptedSource{envs: cc.envs}, st)
	c.Workers = 4
	if _, err := c.RunResumable(ctx, cc.start, cc.end, trip); !errors.Is(err, killed) {
		t.Fatalf("first run err = %v, want simulated kill", err)
	}
	// No Close: the abandoned Store's buffered state dies with the
	// "process". Everything up to the fatal checkpoint was synced.
}

// resume reopens the survivors and completes the window, returning the
// fresh source (for poll accounting) and the run stats.
func (cc *crashCampaign) resume(t *testing.T) (*scriptedSource, feed.Stats) {
	t.Helper()
	st, err := store.Open(cc.dir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	src := &scriptedSource{envs: cc.envs}
	c := feed.NewCollector(src, st)
	c.Workers = 4
	stats, err := c.RunResumable(context.Background(), cc.start, cc.end, &feed.FileCursor{Path: cc.cursor})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return src, stats
}

// rowCounts reopens the finished store read-only and counts stored
// scan rows per sample.
func (cc *crashCampaign) rowCounts(t *testing.T) map[string]int {
	t.Helper()
	st, err := store.Open(cc.dir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	counts := make(map[string]int)
	for _, month := range st.Months() {
		if err := st.IterReports(month, func(r *report.ScanReport) error {
			counts[r.SHA256]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Verify(); err != nil {
		t.Fatalf("store verify after crash-resume: %v", err)
	}
	return counts
}

func cursorBytes(frontier time.Time) []byte {
	return []byte(strconv.FormatInt(frontier.Unix(), 10) + "\n")
}

// TestCrashResumeOrphanedTempCursor kills the collector after the
// checkpoint's temp file is durable but before the rename. Recovery
// must pick the orphaned .tmp frontier — the furthest durable one —
// and resume with no slice re-fetched and no slice lost.
func TestCrashResumeOrphanedTempCursor(t *testing.T) {
	cc := newCrashCampaign(t)
	killAt := cc.start.Add(16 * time.Minute)
	cc.runUntilKill(t, killAt, func(frontier time.Time) {
		if err := os.WriteFile(cc.cursor+".tmp", cursorBytes(frontier), 0o644); err != nil {
			t.Fatal(err)
		}
	})

	got, ok, err := (&feed.FileCursor{Path: cc.cursor}).Load()
	if err != nil || !ok || !got.Equal(killAt) {
		t.Fatalf("recovered frontier = %v, %v, %v; want %v", got, ok, err, killAt)
	}

	src, stats := cc.resume(t)
	// 14 one-minute slices remained past the recovered frontier.
	if stats.Polls != 14 || src.calls.Load() != 14 {
		t.Fatalf("resume polls = %d (source calls %d), want 14", stats.Polls, src.calls.Load())
	}
	counts := cc.rowCounts(t)
	for i := 0; i < 30; i++ {
		sha := fmt.Sprintf("cr-%03d", i)
		if counts[sha] != 1 {
			t.Fatalf("sample %s stored %d times, want exactly once", sha, counts[sha])
		}
	}
}

// TestCrashResumeTruncatedTempCursor kills the collector mid-write of
// the checkpoint temp file: the .tmp is torn and recovery falls back
// to the main cursor file's older frontier. The slice between the two
// frontiers was already durable in the store, so it is fetched and
// stored a second time — the documented at-worst-a-refetch outcome —
// but nothing is ever lost.
func TestCrashResumeTruncatedTempCursor(t *testing.T) {
	cc := newCrashCampaign(t)
	killAt := cc.start.Add(16 * time.Minute)
	cc.runUntilKill(t, killAt, func(frontier time.Time) {
		if err := os.WriteFile(cc.cursor+".tmp", cursorBytes(frontier)[:3], 0o644); err != nil {
			t.Fatal(err)
		}
	})

	// Recovery lands on the last durable frontier: one slice behind.
	wantFrontier := killAt.Add(-time.Minute)
	got, ok, err := (&feed.FileCursor{Path: cc.cursor}).Load()
	if err != nil || !ok || !got.Equal(wantFrontier) {
		t.Fatalf("recovered frontier = %v, %v, %v; want %v", got, ok, err, wantFrontier)
	}

	src, stats := cc.resume(t)
	if stats.Polls != 15 || src.calls.Load() != 15 {
		t.Fatalf("resume polls = %d (source calls %d), want 15", stats.Polls, src.calls.Load())
	}
	counts := cc.rowCounts(t)
	for i := 0; i < 30; i++ {
		sha := fmt.Sprintf("cr-%03d", i)
		want := 1
		if i == 15 {
			want = 2 // the re-fetched slice straddling the torn checkpoint
		}
		if counts[sha] != want {
			t.Fatalf("sample %s stored %d times, want %d", sha, counts[sha], want)
		}
	}
}

// TestCrashResumeTruncatedMainCursor covers debris outside Save's own
// reach — the main cursor file itself truncated (power loss tearing a
// data block) while a durable .tmp from the interrupted checkpoint
// survives. Recovery must still find the .tmp frontier and resume
// gap-free.
func TestCrashResumeTruncatedMainCursor(t *testing.T) {
	cc := newCrashCampaign(t)
	killAt := cc.start.Add(16 * time.Minute)
	cc.runUntilKill(t, killAt, func(frontier time.Time) {
		if err := os.WriteFile(cc.cursor+".tmp", cursorBytes(frontier), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(cc.cursor, 2); err != nil {
			t.Fatal(err)
		}
	})

	got, ok, err := (&feed.FileCursor{Path: cc.cursor}).Load()
	if err != nil || !ok || !got.Equal(killAt) {
		t.Fatalf("recovered frontier = %v, %v, %v; want %v", got, ok, err, killAt)
	}

	_, stats := cc.resume(t)
	if stats.Polls != 14 {
		t.Fatalf("resume polls = %d, want 14", stats.Polls)
	}
	counts := cc.rowCounts(t)
	for i := 0; i < 30; i++ {
		if sha := fmt.Sprintf("cr-%03d", i); counts[sha] != 1 {
			t.Fatalf("sample %s stored %d times, want exactly once", sha, counts[sha])
		}
	}
}
