package concurrency

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"vtdynamics/internal/experiments"
	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

// pipelineSize mirrors the EXPERIMENTS.md service/feed/store
// configuration (8,000 samples through the full pipeline); -short
// uses the experiments suite's own small scale.
func pipelineSize(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 1_500
	}
	return 8_000
}

// hashDir returns path → SHA-256 of contents for every file in dir.
func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
		out[e.Name()] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// TestPipelineDeterminismAcrossWorkers is the golden determinism
// harness: the full service→feed→store mini-pipeline (the
// EXPERIMENTS.md Table 2 configuration) runs at -workers=1 and
// -workers=8 with the same seed, and every observable output must be
// identical — the Table 2 result struct (total stats, sample counts,
// per-month partition stats) and, stronger, the byte-identical
// on-disk store: every partition file, the metadata snapshot, and the
// stats sidecar hash equal. Worker count is a wall-clock knob only.
//
// The harness runs once per block format: v2's columnar members are a
// pure per-block transcode of the rows a member holds, so the
// byte-for-byte guarantee must hold for both encodings.
func TestPipelineDeterminismAcrossWorkers(t *testing.T) {
	size := pipelineSize(t)
	for _, format := range []struct {
		name string
		val  int
	}{
		{"v1", store.FormatV1},
		{"v2", store.FormatV2},
	} {
		format := format
		t.Run(format.name, func(t *testing.T) {
			run := func(workers int) (*experiments.Table2Result, map[string]string) {
				r, err := experiments.NewRunner(experiments.Config{
					Seed:             1,
					PopulationSize:   1, // unused by Table 2
					DynamicsSize:     1, // unused by Table 2
					CorrelationScans: 1, // unused by Table 2
					ServiceSize:      size,
					Workers:          workers,
					StoreFormat:      format.val,
				})
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				res, err := r.Table2DatasetOverview(dir)
				if err != nil {
					t.Fatal(err)
				}
				return res, hashDir(t, dir)
			}

			res1, files1 := run(1)
			res8, files8 := run(8)

			if !reflect.DeepEqual(res1, res8) {
				t.Errorf("Table 2 results diverge:\nworkers=1: %+v\nworkers=8: %+v", res1, res8)
			}
			if res1.TotalSamples != size {
				t.Errorf("TotalSamples = %d, want %d", res1.TotalSamples, size)
			}
			if res1.TotalReports == 0 || len(res1.Rows) == 0 {
				t.Fatalf("empty pipeline output: %+v", res1)
			}

			var names1, names8 []string
			for n := range files1 {
				names1 = append(names1, n)
			}
			for n := range files8 {
				names8 = append(names8, n)
			}
			sort.Strings(names1)
			sort.Strings(names8)
			if !reflect.DeepEqual(names1, names8) {
				t.Fatalf("store file sets diverge:\nworkers=1: %v\nworkers=8: %v", names1, names8)
			}
			for _, name := range names1 {
				if files1[name] != files8[name] {
					t.Errorf("store file %s differs between workers=1 and workers=8", name)
				}
			}
		})
	}
}

// TestStoreDeterminismMixedBatch pins that the on-disk bytes depend
// only on the envelope sequence, not on how it was chunked: the same
// 240 envelopes written one-by-one via Put versus an irregular
// interleaving of Put calls and PutBatch slices must produce
// byte-identical store directories. A small block size forces several
// mid-stream block cuts so chunk boundaries land both inside and
// across blocks, under both the JSONL-direct (v1) and column-direct
// (v2) write pipelines.
func TestStoreDeterminismMixedBatch(t *testing.T) {
	envs := make([]report.Envelope, 0, 240)
	for i := 0; i < 240; i++ {
		at := storeT0.Add(time.Duration(i) * 11 * time.Hour)
		envs = append(envs, storeEnvelope(fmt.Sprintf("mx-%03d", i%40), at, i%6))
	}
	for _, format := range []struct {
		name string
		val  int
	}{
		{"v1", store.FormatV1},
		{"v2", store.FormatV2},
	} {
		format := format
		t.Run(format.name, func(t *testing.T) {
			write := func(mixed bool) map[string]string {
				dir := t.TempDir()
				s, err := store.Open(dir, store.WithFormat(format.val), store.WithBlockSize(4<<10))
				if err != nil {
					t.Fatal(err)
				}
				if mixed {
					for i := 0; i < len(envs); {
						if (i/7)%2 == 0 {
							if err := s.Put(envs[i]); err != nil {
								t.Fatal(err)
							}
							i++
							continue
						}
						end := i + 9
						if end > len(envs) {
							end = len(envs)
						}
						if err := s.PutBatch(envs[i:end]); err != nil {
							t.Fatal(err)
						}
						i = end
					}
				} else {
					for _, env := range envs {
						if err := s.Put(env); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				return hashDir(t, dir)
			}
			plain, mixed := write(false), write(true)
			if !reflect.DeepEqual(plain, mixed) {
				t.Fatalf("Put-only and mixed Put/PutBatch stores diverge:\nput-only: %v\nmixed:    %v", plain, mixed)
			}
		})
	}
}

// TestPipelineDeterminismSameWorkers is the repeatability control:
// two runs at the same worker count must also be identical (if this
// fails, nondeterminism is in the pipeline itself, not the worker
// fan-out).
func TestPipelineDeterminismSameWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestPipelineDeterminismAcrossWorkers at full scale")
	}
	run := func() map[string]string {
		r, err := experiments.NewRunner(experiments.Config{
			Seed:             1,
			PopulationSize:   1,
			DynamicsSize:     1,
			CorrelationScans: 1,
			ServiceSize:      1_500,
			Workers:          8,
		})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if _, err := r.Table2DatasetOverview(dir); err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed same-workers runs diverge")
	}
}
