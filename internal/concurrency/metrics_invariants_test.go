package concurrency

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/feed"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

// The metrics invariant suite: every identity here is a fact about
// the pipeline that instrumentation must preserve, not a tolerance.
// If any drifts, either a layer miscounts or the pipeline itself
// dropped or duplicated work.

// recordingCursor wraps MemCursor and keeps every Save so the
// committed-window sequence can be checked for monotonicity and gaps.
type recordingCursor struct {
	feed.MemCursor
	saves []time.Time
}

func (c *recordingCursor) Save(t time.Time) error {
	c.saves = append(c.saves, t)
	return c.MemCursor.Save(t)
}

// pipeline is one fully instrumented stack: simulator behind the
// HTTP API with fault injection, client, collector, and store, all
// reporting into a single private registry.
type pipeline struct {
	reg    *obs.Registry
	svc    *vtsim.Service
	clock  *simclock.SimClock
	client *vtclient.Client
	store  *store.Store
	dir    string
}

func newPipeline(t *testing.T, faults *vtapi.FaultConfig) *pipeline {
	t.Helper()
	reg := obs.NewRegistry()
	set, err := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(set, clock, vtsim.WithMetrics(reg))
	opts := []vtapi.Option{vtapi.WithMetrics(reg)}
	if faults != nil {
		opts = append(opts, vtapi.WithFaults(*faults))
	}
	srv := httptest.NewServer(vtapi.NewServer(svc, nil, opts...))
	t.Cleanup(srv.Close)
	client := vtclient.New(srv.URL,
		vtclient.WithRetries(16),
		vtclient.WithBackoff(time.Millisecond),
		vtclient.WithMetrics(reg))
	dir := t.TempDir()
	st, err := store.Open(dir, store.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{reg: reg, svc: svc, clock: clock, client: client, store: st, dir: dir}
}

// seedWorkload submits n samples ten minutes apart through the
// service directly (not HTTP, so API counters only see the collector
// traffic) and returns the end of the generated window.
func (p *pipeline) seedWorkload(t *testing.T, n int) time.Time {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.svc.Upload(vtsim.UploadRequest{
			SHA256:        metricsSHA(i),
			FileType:      "Win32 EXE",
			Malicious:     i%2 == 0,
			Detectability: 0.7,
		}); err != nil {
			t.Fatal(err)
		}
		p.clock.Advance(10 * time.Minute)
	}
	return p.clock.Now().Add(time.Minute)
}

// collect runs a resumable collection over [CollectionStart, end) and
// returns the stats plus the checkpoint trail.
func (p *pipeline) collect(t *testing.T, end time.Time, workers int) (feed.Stats, *recordingCursor) {
	t.Helper()
	collector := feed.NewCollector(
		feed.SourceFunc(func(ctx context.Context, a, b time.Time) ([]report.Envelope, error) {
			return p.client.FeedBetween(ctx, a, b)
		}),
		p.store,
	)
	collector.Interval = 10 * time.Minute
	collector.Workers = workers
	collector.Metrics = p.reg
	cursor := &recordingCursor{}
	stats, err := collector.RunResumable(context.Background(), simclock.CollectionStart, end, cursor)
	if err != nil {
		t.Fatalf("collection failed: %v", err)
	}
	return stats, cursor
}

func (p *pipeline) counter(name string, kv ...string) int64 {
	return p.reg.Counter(name, kv...).Value()
}

// TestMetricsIdentitiesEndToEnd drives a faulty collection and checks
// the cross-layer identities:
//
//	api_requests_total == api_faults_total{passed} + {injected_*}
//	client_attempts_total == api_requests_total
//	client_retries_total == injected faults   (the run succeeded, so
//	                                           every fault was retried)
//	store_cache_hits + store_cache_misses == store_gets_total
//	collector committed windows: counted, monotone, and gap-free
func TestMetricsIdentitiesEndToEnd(t *testing.T) {
	p := newPipeline(t, &vtapi.FaultConfig{Error500Rate: 0.15, Error503Rate: 0.1, Seed: 7})
	end := p.seedWorkload(t, 24)
	stats, cursor := p.collect(t, end, 1)
	if stats.Envelopes != 24 {
		t.Fatalf("collected %d envelopes, want 24", stats.Envelopes)
	}

	// Server-side identity: every counted request either passed the
	// fault gate or was injected a failure.
	requests := p.reg.SumCounters("api_requests_total")
	passed := p.counter("api_faults_total", "kind", "passed")
	inj500 := p.counter("api_faults_total", "kind", "injected_500")
	inj503 := p.counter("api_faults_total", "kind", "injected_503")
	if requests != passed+inj500+inj503 {
		t.Errorf("api_requests_total = %d, faults passed %d + injected %d+%d = %d",
			requests, passed, inj500, inj503, passed+inj500+inj503)
	}
	if inj500+inj503 == 0 {
		t.Error("fault injector fired zero faults; identity test is vacuous")
	}

	// Cross-layer identity: the client put exactly as many requests on
	// the wire as the server accounted (no network errors in-process).
	if attempts := p.reg.SumCounters("client_attempts_total"); attempts != requests {
		t.Errorf("client_attempts_total = %d, api_requests_total = %d", attempts, requests)
	}

	// Every injected fault was survived by exactly one retry.
	if retries := p.reg.SumCounters("client_retries_total"); retries != inj500+inj503 {
		t.Errorf("client_retries_total = %d, injected faults = %d", retries, inj500+inj503)
	}

	// Collector: one committed window per poll, and the checkpoint
	// trail advances by exactly one interval per save.
	if committed := p.counter("collector_committed_windows_total"); committed != int64(stats.Polls) {
		t.Errorf("collector_committed_windows_total = %d, polls = %d", committed, stats.Polls)
	}
	if fetched := p.counter("collector_fetched_windows_total"); fetched != int64(stats.Polls) {
		t.Errorf("collector_fetched_windows_total = %d, polls = %d", fetched, stats.Polls)
	}
	if envs := p.counter("collector_envelopes_total"); envs != int64(stats.Envelopes) {
		t.Errorf("collector_envelopes_total = %d, stats.Envelopes = %d", envs, stats.Envelopes)
	}
	if len(cursor.saves) != stats.Polls {
		t.Fatalf("cursor saved %d times over %d polls", len(cursor.saves), stats.Polls)
	}
	for i, at := range cursor.saves {
		if i > 0 && !at.After(cursor.saves[i-1]) {
			t.Fatalf("checkpoint %d not monotone: %v after %v", i, at, cursor.saves[i-1])
		}
		if i > 0 && at.Sub(cursor.saves[i-1]) != 10*time.Minute && !at.Equal(end) {
			t.Fatalf("checkpoint gap at %d: %v -> %v", i, cursor.saves[i-1], at)
		}
	}
	if lag := p.reg.SumGauges("collector_checkpoint_lag_seconds"); lag != 0 {
		t.Errorf("checkpoint lag %d after a completed run, want 0", lag)
	}

	// Store write accounting matches what the collector committed.
	if rows := p.counter("store_put_rows_total"); rows != int64(stats.Envelopes) {
		t.Errorf("store_put_rows_total = %d, envelopes = %d", rows, stats.Envelopes)
	}

	// Block accounting: after a flush, every cut block was encoded by
	// exactly one of the two per-format pipelines (v1 gzips the JSONL
	// buffer, v2 seals the column builder), so the format-labelled
	// encode counters must partition the cut count.
	if err := p.store.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := p.counter("store_blocks_cut_total")
	encV1 := p.counter("store_blocks_encoded_total", "format", "v1")
	encV2 := p.counter("store_blocks_encoded_total", "format", "v2")
	if encV1+encV2 != cut {
		t.Errorf("store_blocks_encoded_total v1 %d + v2 %d != store_blocks_cut_total %d", encV1, encV2, cut)
	}
	if cut == 0 {
		t.Error("store_blocks_cut_total = 0 after flush; block identity test is vacuous")
	}

	// Read path: hit the store enough to exercise cache hits, misses,
	// and singleflight, then check hits + misses == gets.
	hashes := p.store.SampleHashes()
	for round := 0; round < 3; round++ {
		for _, sha := range hashes {
			if _, err := p.store.Get(sha); err != nil {
				t.Fatal(err)
			}
		}
	}
	gets := p.counter("store_gets_total")
	hits := p.counter("store_cache_hits_total")
	misses := p.counter("store_cache_misses_total")
	if hits+misses != gets {
		t.Errorf("cache hits %d + misses %d != gets %d", hits, misses, gets)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("degenerate cache accounting (hits %d, misses %d)", hits, misses)
	}

	// Pushdown scan accounting: every sidecar block a scan considers is
	// either pruned (for exactly one reason) or scanned — the counters
	// must partition. StatsByType and a filtered Scan both run on the
	// engine, so the identity is checked over real pruning traffic.
	if _, err := p.store.StatsByType(); err != nil {
		t.Fatal(err)
	}
	var flips store.FlipCountAgg
	if _, err := p.store.Scan(store.Query{
		FileTypes: []string{"Win32 EXE"},
		Since:     simclock.CollectionStart.Unix(),
		Cols:      store.ColSHA | store.ColResults,
	}, &flips); err != nil {
		t.Fatal(err)
	}
	scanBlocks := p.counter("store_scan_blocks_total")
	scanScanned := p.counter("store_scan_blocks_scanned_total")
	prunedSum := p.reg.SumCounters("store_blocks_pruned_total")
	if prunedSum+scanScanned != scanBlocks {
		t.Errorf("store_blocks_pruned_total %d + store_scan_blocks_scanned_total %d != store_scan_blocks_total %d",
			prunedSum, scanScanned, scanBlocks)
	}
	if scanBlocks == 0 {
		t.Error("store_scan_blocks_total = 0 after scans; pruning identity test is vacuous")
	}

	// Simulator: every analysis appended exactly one feed envelope,
	// and shard occupancy gauges sum to the distinct-sample count.
	scans := p.counter("sim_scans_total")
	appends := p.counter("sim_feed_appends_total")
	if scans != appends {
		t.Errorf("sim_scans_total = %d, sim_feed_appends_total = %d", scans, appends)
	}
	if occ := p.reg.SumGauges("sim_shard_samples"); occ != int64(p.svc.NumSamples()) {
		t.Errorf("shard occupancy sums to %d, NumSamples = %d", occ, p.svc.NumSamples())
	}
	if flen := p.reg.SumGauges("sim_feed_length"); flen != int64(p.svc.NumReports()) {
		t.Errorf("sim_feed_length = %d, NumReports = %d", flen, p.svc.NumReports())
	}
}

// TestMetricsIdentitiesConcurrentCollector repeats the identity check
// with concurrent fetch workers: ordered commits must keep every
// identity intact while in-flight slices overlap.
func TestMetricsIdentitiesConcurrentCollector(t *testing.T) {
	p := newPipeline(t, &vtapi.FaultConfig{Error500Rate: 0.1, Error503Rate: 0.1, Seed: 11})
	end := p.seedWorkload(t, 24)
	stats, cursor := p.collect(t, end, 8)
	if stats.Envelopes != 24 {
		t.Fatalf("collected %d envelopes, want 24", stats.Envelopes)
	}
	requests := p.reg.SumCounters("api_requests_total")
	faults := p.reg.SumCounters("api_faults_total")
	if requests != faults {
		t.Errorf("api_requests_total = %d, api_faults_total = %d", requests, faults)
	}
	if attempts := p.reg.SumCounters("client_attempts_total"); attempts != requests {
		t.Errorf("client_attempts_total = %d, api_requests_total = %d", attempts, requests)
	}
	if committed := p.counter("collector_committed_windows_total"); committed != int64(stats.Polls) {
		t.Errorf("committed windows %d, polls %d", committed, stats.Polls)
	}
	for i := 1; i < len(cursor.saves); i++ {
		if !cursor.saves[i].After(cursor.saves[i-1]) {
			t.Fatalf("concurrent checkpoints not monotone at %d", i)
		}
	}
	if inflight := p.reg.SumGauges("collector_inflight_slices"); inflight != 0 {
		t.Errorf("collector_inflight_slices = %d after run, want 0", inflight)
	}
}

// TestFaultyCollectionStoreByteIdentical is the fault-transparency
// proof: a collection surviving injected 500s/503s must write a store
// byte-identical to a fault-free run of the same campaign — while the
// client metrics prove the faults actually happened.
func TestFaultyCollectionStoreByteIdentical(t *testing.T) {
	runCampaign := func(faults *vtapi.FaultConfig) (string, *obs.Registry) {
		p := newPipeline(t, faults)
		end := p.seedWorkload(t, 20)
		if stats, _ := p.collect(t, end, 1); stats.Envelopes != 20 {
			t.Fatalf("collected %d envelopes, want 20", stats.Envelopes)
		}
		if err := p.store.Close(); err != nil {
			t.Fatal(err)
		}
		return p.dir, p.reg
	}

	cleanDir, cleanReg := runCampaign(nil)
	faultyDir, faultyReg := runCampaign(&vtapi.FaultConfig{
		Error500Rate: 0.2, Error503Rate: 0.1, Seed: 3})

	if n := cleanReg.SumCounters("client_retries_total"); n != 0 {
		t.Fatalf("fault-free run recorded %d retries", n)
	}
	retries := faultyReg.SumCounters("client_retries_total")
	if retries == 0 {
		t.Fatal("faulty run recorded zero retries; comparison is vacuous")
	}

	clean := hashStoreFiles(t, cleanDir)
	faulty := hashStoreFiles(t, faultyDir)
	if len(clean) == 0 {
		t.Fatal("no store files to compare")
	}
	for _, name := range sortedKeys(clean) {
		if faulty[name] != clean[name] {
			t.Errorf("%s differs between clean (%s) and faulty (%s) runs",
				name, clean[name], faulty[name])
		}
	}
	if len(faulty) != len(clean) {
		t.Errorf("file sets differ: clean %d files, faulty %d", len(clean), len(faulty))
	}
	t.Logf("stores byte-identical across %d files with %d client retries", len(clean), retries)
}

// hashStoreFiles returns name -> SHA-256 for every partition and
// snapshot file in a store directory.
func hashStoreFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".gz" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(b)
		out[name] = hex.EncodeToString(sum[:])
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func metricsSHA(i int) string {
	return fmt.Sprintf("metrics%08x", i)
}
