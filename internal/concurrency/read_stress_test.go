package concurrency

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

// TestStoreReadPathStress hammers the indexed read path while writers
// keep appending: concurrent Gets (cache hits, misses, singleflight
// leaders), IterAll passes, Syncs, and Flushes, all under go test
// -race. Every Get must satisfy read-your-writes — a sample Put
// before the Get started can never be missing — and return reports in
// nondecreasing time order.
func TestStoreReadPathStress(t *testing.T) {
	const (
		writers = 8
		readers = 8
		perW    = 30
	)
	// Small blocks so the stress crosses many member boundaries.
	s, err := store.Open(t.TempDir(), store.WithBlockSize(2<<10), store.WithCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	// Seed every key so readers never race an unknown sample.
	for w := 0; w < writers; w++ {
		for i := 0; i < 4; i++ {
			if err := s.Put(storeEnvelope(keyFor(w, i), storeT0, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				at := storeT0.Add(time.Duration(i%2) * 31 * 24 * time.Hour).Add(time.Duration(i) * time.Minute)
				if err := s.Put(storeEnvelope(keyFor(w, i%4), at, i%6)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				h, err := s.Get(keyFor(r%writers, n%4))
				if err != nil {
					errc <- err
					return
				}
				// The seed row is visible forever, and ordering holds.
				if len(h.Reports) == 0 {
					errc <- fmt.Errorf("Get(%s) returned no reports", keyFor(r%writers, n%4))
					return
				}
				for i := 1; i < len(h.Reports); i++ {
					if h.Reports[i].AnalysisDate.Before(h.Reports[i-1].AnalysisDate) {
						errc <- fmt.Errorf("Get(%s) out of order at %d", h.Meta.SHA256, i)
						return
					}
				}
				// Returned histories are private: scribbling on them
				// must never corrupt what other readers see.
				h.Reports[0].AVRank = -1
				h.Meta.FileType = "scribble"
			}
		}(r)
	}
	// One goroutine cycles durability points; another runs full
	// parallel passes concurrently with everything else.
	rg.Add(1)
	go func() {
		defer rg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if n%2 == 0 {
				err = s.Sync()
			} else {
				err = s.Flush()
			}
			if err != nil {
				errc <- err
				return
			}
		}
	}()
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var mu sync.Mutex
			rows := 0
			if err := s.IterAll(4, func(month string, r *report.ScanReport) error {
				mu.Lock()
				rows++
				mu.Unlock()
				return r.Validate()
			}); err != nil {
				errc <- err
				return
			}
			if rows < writers*4 {
				errc <- fmt.Errorf("IterAll saw %d rows, fewer than the seed", rows)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	want := writers*4 + writers*perW
	if got := s.TotalStats().Reports; got != want {
		t.Fatalf("reports = %d, want %d", got, want)
	}
	if n, err := s.VerifyWorkers(4); err != nil || n != want {
		t.Fatalf("VerifyWorkers = %d, %v (want %d)", n, err, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func keyFor(w, i int) string { return fmt.Sprintf("rd-%02d-%d", w, i) }

// TestStoreGetDeterministicUnderWriters checks that once writes
// quiesce, repeated Gets return the identical report sequence no
// matter which path (cache, index, fallback) served them.
func TestStoreGetDeterministicUnderWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// All writers share one sample with colliding
				// timestamps — the hard case for stable ordering.
				at := storeT0.Add(time.Duration(i%5) * time.Hour)
				if err := s.Put(storeEnvelope("shared", at, w)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	base, err := s.Get("shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Reports) != 100 {
		t.Fatalf("reports = %d", len(base.Reports))
	}
	fingerprint := func(h *report.History) string {
		var fp string
		for _, r := range h.Reports {
			fp += fmt.Sprintf("%d@%d;", r.AVRank, r.AnalysisDate.Unix())
		}
		return fp
	}
	want := fingerprint(base)
	// Cached reads, then a cold reopen (index path), must agree.
	for i := 0; i < 3; i++ {
		h, err := s.Get("shared")
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(h) != want {
			t.Fatalf("cached Get %d diverged", i)
		}
	}
	// Close writes the metadata snapshot; the reopen then serves the
	// same order from the persisted sidecar index.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s2.Get("shared")
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(h2) != want {
		t.Fatal("reopened Get diverged from the original order")
	}
}
