// Package concurrency holds the cross-package concurrency test
// layer: race-detector stress tests that hammer the sharded
// vtsim.Service and store.Store from dozens of goroutines, worker
// equivalence tests for the feed collector, and the fixed-seed
// determinism harness proving that the service→feed→store pipeline
// produces byte-identical output regardless of worker count.
//
// The package intentionally contains no non-test code; it exists so
// the stress suite can exercise the public surfaces of vtsim, store,
// feed, and experiments together, the way cmd/vtcollect and
// cmd/vtanalyze combine them. Run it with the race detector:
//
//	go test -race ./internal/concurrency
package concurrency
