package bufpool

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestGzipWriterPooledBytesIdentical pins the property the store's
// determinism suite depends on: a pooled, Reset gzip writer produces
// byte-identical members to a fresh gzip.NewWriter, across reuse.
func TestGzipWriterPooledBytesIdentical(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello pooled gzip"),
		bytes.Repeat([]byte(`{"s":"abc","f":"Win32 EXE","t":1619827200,"p":2,"n":70,"r":[]}`+"\n"), 4096),
		{},
	}
	for i, payload := range payloads {
		var want bytes.Buffer
		zw := gzip.NewWriter(&want)
		if _, err := zw.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		// Run the pooled path twice so the second pass sees a recycled
		// writer with prior state.
		for pass := 0; pass < 2; pass++ {
			var got bytes.Buffer
			pzw := GetGzipWriter(&got)
			if _, err := pzw.Write(payload); err != nil {
				t.Fatal(err)
			}
			if err := pzw.Close(); err != nil {
				t.Fatal(err)
			}
			PutGzipWriter(pzw)
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("payload %d pass %d: pooled gzip bytes diverge from fresh writer", i, pass)
			}
		}
	}
}

func TestGzipReaderRoundTrip(t *testing.T) {
	var comp bytes.Buffer
	zw := GetGzipWriter(&comp)
	const msg = "round trip through the pooled codecs"
	if _, err := io.WriteString(zw, msg); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	PutGzipWriter(zw)
	for pass := 0; pass < 2; pass++ {
		zr, err := GetGzipReader(bytes.NewReader(comp.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		PutGzipReader(zr)
		if string(got) != msg {
			t.Fatalf("pass %d: read %q", pass, got)
		}
	}
}

func TestGzipReaderBadHeader(t *testing.T) {
	if _, err := GetGzipReader(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("expected header error")
	}
}

func TestBufReuse(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned %d bytes", len(b))
	}
	b = append(b, "some row bytes"...)
	PutBuf(b)
	b2 := GetBuf()
	if len(b2) != 0 {
		t.Fatalf("recycled buf has stale length %d", len(b2))
	}
	PutBuf(b2)
	PutBuf(nil) // zero-cap slices are dropped, not pooled
}

func TestScanBufSize(t *testing.T) {
	b := GetScanBuf()
	if len(b) != scanBufLen {
		t.Fatalf("scan buf len %d, want %d", len(b), scanBufLen)
	}
	PutScanBuf(b)
	PutScanBuf(make([]byte, 16)) // undersized: dropped
	grown := make([]byte, 4*scanBufLen)
	PutScanBuf(grown) // oversized: kept
}

func TestBufferReuse(t *testing.T) {
	buf := GetBuffer()
	buf.WriteString("staged block")
	PutBuffer(buf)
	buf2 := GetBuffer()
	if buf2.Len() != 0 {
		t.Fatalf("recycled buffer holds %d bytes", buf2.Len())
	}
	PutBuffer(buf2)
}

// TestConcurrentCodecUse hammers the pools from many goroutines; run
// under -race this proves pooled state never crosses users mid-flight.
func TestConcurrentCodecUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				payload := []byte(fmt.Sprintf("goroutine %d payload %d", g, i))
				var comp bytes.Buffer
				zw := GetGzipWriter(&comp)
				zw.Write(payload)
				if err := zw.Close(); err != nil {
					t.Error(err)
					return
				}
				PutGzipWriter(zw)
				zr, err := GetGzipReader(bytes.NewReader(comp.Bytes()))
				if err != nil {
					t.Error(err)
					return
				}
				got, err := io.ReadAll(zr)
				PutGzipReader(zr)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("round trip: %q %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
