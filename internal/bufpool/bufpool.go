// Package bufpool holds the process-wide free lists behind the
// serialization/compression hot paths: gzip writers and readers, byte
// slices for encoded rows, and the large scan buffers the partition
// readers hand to bufio.Scanner.
//
// Every pool is a sync.Pool, so memory pressure still reclaims idle
// buffers; the point is that steady-state ingest and scan loops stop
// allocating a fresh flate state machine (~1.2 MB of window and
// tables) and a fresh line buffer per block, per response, and per
// request body. The store, the HTTP API, and the client all draw from
// the same pools, matching how one process runs all three in the
// simulator benchmarks.
package bufpool

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"io"
	"sync"
)

// bufPool recycles small-to-medium byte slices (encoded rows, scratch
// encode buffers). Slices are pooled via pointer to avoid allocating
// a box on every Put.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns an empty byte slice with pooled capacity. Release it
// with PutBuf when the bytes are no longer referenced.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a slice obtained from GetBuf (or grown from one) to
// the pool. The caller must not retain b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// scanBufLen sizes the line buffers handed to bufio.Scanner by the
// partition readers; it matches the scanners' historical initial
// buffer so pooling changes no behavior.
const scanBufLen = 1 << 20

var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, scanBufLen)
		return &b
	},
}

// GetScanBuf returns a 1 MiB scratch buffer for bufio.Scanner.
func GetScanBuf() []byte { return *scanBufPool.Get().(*[]byte) }

// PutScanBuf returns a buffer obtained from GetScanBuf. Buffers the
// scanner outgrew (it reallocates internally past the initial size)
// may be passed too; undersized ones are dropped.
func PutScanBuf(b []byte) {
	if cap(b) < scanBufLen {
		return
	}
	b = b[:scanBufLen]
	scanBufPool.Put(&b)
}

// blockBufPool recycles the large raw-block accumulation buffers the
// partition writers fill before compression. Separate from bufPool so
// row-sized gets never pin block-sized backing arrays.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 264<<10)
		return &b
	},
}

// GetBlockBuf returns an empty buffer sized for one uncompressed
// partition block.
func GetBlockBuf() []byte {
	return (*blockBufPool.Get().(*[]byte))[:0]
}

// PutBlockBuf recycles a buffer from GetBlockBuf.
func PutBlockBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	blockBufPool.Put(&b)
}

// countMapPool recycles the string-count maps the partition writers
// burn through once per block: the per-block sha posting map
// (pendingShas) and the column builders' dictionary id maps — all
// map[string]int, all discarded at block granularity. Reusing the
// map keeps its bucket array, so steady-state ingest stops paying a
// map allocation (plus growth re-hashing) per cut.
var countMapPool = sync.Pool{
	New: func() any { return make(map[string]int, 64) },
}

// GetCountMap returns an empty map[string]int with pooled capacity.
func GetCountMap() map[string]int {
	return countMapPool.Get().(map[string]int)
}

// PutCountMap clears and recycles a map from GetCountMap. The caller
// must not retain m afterwards. A nil map is a no-op.
func PutCountMap(m map[string]int) {
	if m == nil {
		return
	}
	clear(m)
	countMapPool.Put(m)
}

// bufioReaderPool recycles the buffered readers in front of gzip
// block decodes.
var bufioReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}

// GetBufioReader returns a 64 KiB buffered reader reading from r.
func GetBufioReader(r io.Reader) *bufio.Reader {
	br := bufioReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutBufioReader recycles a reader from GetBufioReader.
func PutBufioReader(br *bufio.Reader) {
	br.Reset(nil)
	bufioReaderPool.Put(br)
}

// bytesBufferPool recycles bytes.Buffers (compressed-block staging,
// HTTP bodies).
var bytesBufferPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// GetBuffer returns an empty bytes.Buffer.
func GetBuffer() *bytes.Buffer {
	return bytesBufferPool.Get().(*bytes.Buffer)
}

// PutBuffer resets and recycles a buffer from GetBuffer. The caller
// must not retain the buffer or its Bytes afterwards.
func PutBuffer(b *bytes.Buffer) {
	b.Reset()
	bytesBufferPool.Put(b)
}

var gzipWriterPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// GetGzipWriter returns a gzip.Writer (default compression level,
// exactly what gzip.NewWriter builds — block bytes must stay
// identical to unpooled output) reset to write to w.
func GetGzipWriter(w io.Writer) *gzip.Writer {
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(w)
	return zw
}

// PutGzipWriter recycles a writer from GetGzipWriter. The caller must
// have Closed it (or otherwise be done with the stream).
func PutGzipWriter(zw *gzip.Writer) {
	zw.Reset(io.Discard)
	gzipWriterPool.Put(zw)
}

var gzipReaderPool = sync.Pool{
	New: func() any { return new(gzip.Reader) },
}

// GetGzipReader returns a gzip.Reader reset to read from r, or the
// header error (the reader is recycled internally on error).
func GetGzipReader(r io.Reader) (*gzip.Reader, error) {
	zr := gzipReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(r); err != nil {
		gzipReaderPool.Put(zr)
		return nil, err
	}
	return zr, nil
}

// PutGzipReader recycles a reader from GetGzipReader.
func PutGzipReader(zr *gzip.Reader) {
	gzipReaderPool.Put(zr)
}
