package ratelimit

import (
	"sync"
	"testing"
	"time"

	"vtdynamics/internal/simclock"
)

func TestBucketAllowsBurstThenBlocks(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	b := NewBucket(clock, 4, time.Minute)
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("request %d blocked within burst", i)
		}
	}
	if b.Allow() {
		t.Fatal("5th immediate request should be blocked")
	}
}

func TestBucketRefills(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	b := NewBucket(clock, 4, time.Minute)
	for i := 0; i < 4; i++ {
		b.Allow()
	}
	// After 15 seconds one token (4/min) refills.
	clock.Advance(15 * time.Second)
	if !b.Allow() {
		t.Fatal("token did not refill after 15s")
	}
	if b.Allow() {
		t.Fatal("only one token should have refilled")
	}
}

func TestBucketCapacityCaps(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	b := NewBucket(clock, 2, time.Minute)
	clock.Advance(time.Hour) // long idle must not exceed capacity
	if !b.Allow() || !b.Allow() {
		t.Fatal("capacity tokens missing")
	}
	if b.Allow() {
		t.Fatal("burst exceeded capacity after idle")
	}
}

func TestBucketRetryAfter(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	b := NewBucket(clock, 4, time.Minute)
	if ra := b.RetryAfter(); ra != 0 {
		t.Fatalf("RetryAfter with tokens = %v", ra)
	}
	for i := 0; i < 4; i++ {
		b.Allow()
	}
	ra := b.RetryAfter()
	if ra <= 0 || ra > 16*time.Second {
		t.Fatalf("RetryAfter = %v, want ~15s", ra)
	}
	clock.Advance(ra + time.Second)
	if !b.Allow() {
		t.Fatal("request still blocked after RetryAfter elapsed")
	}
}

func TestBucketPanicsOnBadParams(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	for _, f := range []func(){
		func() { NewBucket(clock, 0, time.Minute) },
		func() { NewBucket(clock, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDailyWindow(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	d := NewDailyWindow(clock, 3)
	for i := 0; i < 3; i++ {
		if !d.Allow() {
			t.Fatalf("request %d blocked within daily quota", i)
		}
	}
	if d.Allow() {
		t.Fatal("4th request should exceed daily quota")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
	// Next UTC day resets.
	clock.Advance(24 * time.Hour)
	if d.Remaining() != 3 {
		t.Fatalf("remaining after day roll = %d", d.Remaining())
	}
	if !d.Allow() {
		t.Fatal("new day should allow")
	}
}

func TestLimiterCombined(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	l := NewLimiter(clock, 4, 6)
	allowed := 0
	for i := 0; i < 10; i++ {
		if l.Check().Allowed {
			allowed++
		}
	}
	if allowed != 4 {
		t.Fatalf("burst allowed %d, want 4 (minute bucket)", allowed)
	}
	// Refill the bucket; the daily quota (6) now binds: 2 more.
	clock.Advance(time.Minute)
	allowed = 0
	for i := 0; i < 10; i++ {
		if l.Check().Allowed {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("after refill allowed %d, want 2 (daily quota)", allowed)
	}
	v := l.Check()
	if v.Allowed {
		t.Fatal("daily-exhausted limiter allowed a request")
	}
	if v.RetryAfter != 0 {
		t.Fatalf("daily exhaustion should not hint RetryAfter, got %v", v.RetryAfter)
	}
}

func TestLimiterUnlimited(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	l := NewLimiter(clock, 0, 0)
	for i := 0; i < 1000; i++ {
		if !l.Check().Allowed {
			t.Fatal("unlimited limiter blocked")
		}
	}
}

func TestLimiterRetryAfterHint(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	l := NewLimiter(clock, 2, 0)
	l.Check()
	l.Check()
	v := l.Check()
	if v.Allowed {
		t.Fatal("should be limited")
	}
	if v.RetryAfter <= 0 {
		t.Fatal("minute-bucket rejection should hint RetryAfter")
	}
}

func TestBucketConcurrentTotal(t *testing.T) {
	clock := simclock.NewSim(simclock.CollectionStart)
	b := NewBucket(clock, 100, time.Minute)
	var allowed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 100; i++ {
				if b.Allow() {
					local++
				}
			}
			mu.Lock()
			allowed += int64(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if allowed != 100 {
		t.Fatalf("concurrent allowed = %d, want exactly 100", allowed)
	}
}
