// Package ratelimit implements the quota machinery of the simulated
// VT API: a token-bucket per-minute limiter and a fixed-window daily
// counter, both driven by an injected clock so tests and simulations
// control time.
//
// VirusTotal's public API tier is limited to 4 requests/minute and
// 500 requests/day; premium licenses lift both and unlock the feed.
// The paper's collection (§4.1) was only possible on a premium
// license — these limiters make the simulated service enforce the
// same reality.
package ratelimit

import (
	"sync"
	"time"

	"vtdynamics/internal/simclock"
)

// Bucket is a token-bucket rate limiter: capacity tokens, refilled at
// rate tokens per interval. Safe for concurrent use.
type Bucket struct {
	mu       sync.Mutex
	clock    simclock.Clock
	capacity float64
	// refillPerSec is the token refill rate.
	refillPerSec float64
	tokens       float64
	last         time.Time
}

// NewBucket builds a bucket allowing `rate` requests per `per`
// interval with burst capacity equal to rate. rate must be > 0.
func NewBucket(clock simclock.Clock, rate int, per time.Duration) *Bucket {
	if rate <= 0 {
		panic("ratelimit: rate must be > 0")
	}
	if per <= 0 {
		panic("ratelimit: interval must be > 0")
	}
	return &Bucket{
		clock:        clock,
		capacity:     float64(rate),
		refillPerSec: float64(rate) / per.Seconds(),
		tokens:       float64(rate),
		last:         clock.Now(),
	}
}

// Allow consumes one token if available and reports whether the
// request may proceed.
func (b *Bucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.refillPerSec
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// RetryAfter estimates how long until a token will be available.
// Zero means a request would be allowed now.
func (b *Bucket) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	elapsed := now.Sub(b.last).Seconds()
	tokens := b.tokens + elapsed*b.refillPerSec
	if tokens > b.capacity {
		tokens = b.capacity
	}
	if tokens >= 1 {
		return 0
	}
	need := 1 - tokens
	return time.Duration(need / b.refillPerSec * float64(time.Second))
}

// DailyWindow is a fixed-window daily counter (UTC days). Safe for
// concurrent use.
type DailyWindow struct {
	mu    sync.Mutex
	clock simclock.Clock
	limit int
	day   time.Time
	count int
}

// NewDailyWindow builds a counter allowing limit requests per UTC
// day. limit must be > 0.
func NewDailyWindow(clock simclock.Clock, limit int) *DailyWindow {
	if limit <= 0 {
		panic("ratelimit: daily limit must be > 0")
	}
	return &DailyWindow{clock: clock, limit: limit}
}

// Allow counts one request and reports whether it fits in today's
// quota.
func (d *DailyWindow) Allow() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	today := d.clock.Now().UTC().Truncate(24 * time.Hour)
	if !today.Equal(d.day) {
		d.day = today
		d.count = 0
	}
	if d.count >= d.limit {
		return false
	}
	d.count++
	return true
}

// Remaining returns today's unused quota.
func (d *DailyWindow) Remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	today := d.clock.Now().UTC().Truncate(24 * time.Hour)
	if !today.Equal(d.day) {
		return d.limit
	}
	return d.limit - d.count
}

// Limiter combines per-minute and per-day quotas for one API key.
type Limiter struct {
	bucket *Bucket
	daily  *DailyWindow
}

// NewLimiter builds a combined limiter; perMinute or perDay of 0
// disables that dimension.
func NewLimiter(clock simclock.Clock, perMinute, perDay int) *Limiter {
	l := &Limiter{}
	if perMinute > 0 {
		l.bucket = NewBucket(clock, perMinute, time.Minute)
	}
	if perDay > 0 {
		l.daily = NewDailyWindow(clock, perDay)
	}
	return l
}

// Verdict is a limiter decision.
type Verdict struct {
	// Allowed reports whether the request may proceed.
	Allowed bool
	// RetryAfter is a hint for 429 responses (zero when allowed or
	// when the daily quota — not the minute bucket — is exhausted).
	RetryAfter time.Duration
}

// Check consumes quota for one request.
func (l *Limiter) Check() Verdict {
	if l.daily != nil && l.daily.Remaining() <= 0 {
		return Verdict{Allowed: false}
	}
	if l.bucket != nil && !l.bucket.Allow() {
		return Verdict{Allowed: false, RetryAfter: l.bucket.RetryAfter()}
	}
	if l.daily != nil && !l.daily.Allow() {
		return Verdict{Allowed: false}
	}
	return Verdict{Allowed: true}
}
