package predict

import (
	"math"
	"testing"

	"vtdynamics/internal/report"
	"vtdynamics/internal/xrand"
)

func TestFeaturizer(t *testing.T) {
	f := NewFeaturizer([]string{"A", "B", "C"})
	if f.Dim() != 3 {
		t.Fatalf("dim = %d", f.Dim())
	}
	r := &report.ScanReport{Results: []report.EngineResult{
		{Engine: "A", Verdict: report.Malicious},
		{Engine: "B", Verdict: report.Benign},
		{Engine: "C", Verdict: report.Undetected},
		{Engine: "Rogue", Verdict: report.Malicious}, // not in roster
	}}
	x := f.Features(r)
	if x[0] != 1 || x[1] != 0 || x[2] != 0 {
		t.Fatalf("features = %v", x)
	}
}

// synthetic builds a linearly separable-ish problem: feature 0 is a
// strong malicious signal, feature 1 pure noise, feature 2 a weak
// signal.
func synthetic(n int, seed int64) []Example {
	rng := xrand.New(seed)
	out := make([]Example, n)
	for i := range out {
		y := rng.Bool(0.5)
		x := make([]float64, 3)
		if y {
			if rng.Bool(0.9) {
				x[0] = 1
			}
			if rng.Bool(0.6) {
				x[2] = 1
			}
		} else {
			if rng.Bool(0.05) {
				x[0] = 1
			}
			if rng.Bool(0.2) {
				x[2] = 1
			}
		}
		if rng.Bool(0.5) {
			x[1] = 1
		}
		out[i] = Example{X: x, Y: y}
	}
	return out
}

func TestTrainLearnsSignal(t *testing.T) {
	train := synthetic(4000, 1)
	test := synthetic(1000, 2)
	m, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mt := m.Evaluate(test)
	if acc := mt.Accuracy(); acc < 0.85 {
		t.Fatalf("accuracy = %.3f, want > 0.85", acc)
	}
	// The informative feature must out-weigh the noise feature.
	if m.Weights[0] <= m.Weights[1] {
		t.Fatalf("weights = %v: signal not separated from noise", m.Weights)
	}
	if m.Weights[0] <= m.Weights[2] {
		t.Fatalf("weights = %v: strong signal should beat weak one", m.Weights)
	}
	if math.Abs(m.Weights[1]) > 0.5 {
		t.Fatalf("noise weight too large: %v", m.Weights[1])
	}
}

func TestTrainDeterministic(t *testing.T) {
	data := synthetic(500, 3)
	m1, err := Train(data, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(data, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for j := range m1.Weights {
		if m1.Weights[j] != m2.Weights[j] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
	bad := []Example{{X: []float64{1}}, {X: []float64{1, 2}}}
	if _, err := Train(bad, Config{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSigmoidStable(t *testing.T) {
	if got := sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	if got := sigmoid(1000); got != 1 && math.Abs(got-1) > 1e-12 {
		t.Fatalf("sigmoid(1000) = %v", got)
	}
	if got := sigmoid(-1000); got < 0 || got > 1e-12 {
		t.Fatalf("sigmoid(-1000) = %v", got)
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, TN: 85, FN: 5}
	if acc := m.Accuracy(); math.Abs(acc-0.93) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if r := m.Recall(); math.Abs(r-8.0/13) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if f1 := m.F1(); f1 <= 0 || f1 >= 1 {
		t.Fatalf("f1 = %v", f1)
	}
	var zero Metrics
	if zero.Accuracy() != 0 || zero.Precision() != 1 || zero.Recall() != 1 {
		t.Fatal("zero-metrics conventions broken")
	}
}

func TestThresholdBaseline(t *testing.T) {
	examples := []Example{
		{X: []float64{1, 1, 0}, Y: true},  // 2 votes
		{X: []float64{1, 0, 0}, Y: true},  // 1 vote
		{X: []float64{0, 0, 0}, Y: false}, // 0 votes
		{X: []float64{1, 0, 0}, Y: false}, // 1 vote (noise)
	}
	mt := ThresholdBaseline(examples, 2)
	if mt.TP != 1 || mt.FN != 1 || mt.TN != 2 || mt.FP != 0 {
		t.Fatalf("t=2 metrics = %+v", mt)
	}
	mt = ThresholdBaseline(examples, 1)
	if mt.TP != 2 || mt.FP != 1 {
		t.Fatalf("t=1 metrics = %+v", mt)
	}
}
