// Package predict implements the machine-learned label aggregation
// line the paper surveys in §3.1: "a subset of the research community
// has utilized machine learning techniques to predict the final label
// using the VirusTotal labeling results as input" (Kantchelian et
// al.'s weighted vendor labels; SIRAJ). A logistic-regression model
// learns per-engine weights from first-scan verdict vectors, to be
// compared against the unweighted threshold rule.
//
// Beyond accuracy, the learned weights are diagnostic: §7.2 argues
// correlated engines should not be counted independently, and a
// trained model shows exactly that — members of a copy group share
// the weight one independent engine would get.
//
// The implementation is from scratch on the standard library:
// mini-batch SGD on the logistic loss with L2 regularization and a
// deterministic, seeded shuffle.
package predict

import (
	"errors"
	"fmt"
	"math"

	"vtdynamics/internal/report"
	"vtdynamics/internal/xrand"
)

// Featurizer turns a scan report into a fixed-length feature vector:
// one feature per engine with malicious = +1, benign = 0,
// undetected = 0 (absence carries no signal), plus a trailing bias
// term handled by the model.
type Featurizer struct {
	engines []string
	index   map[string]int
}

// NewFeaturizer fixes the engine order.
func NewFeaturizer(engines []string) *Featurizer {
	f := &Featurizer{
		engines: append([]string(nil), engines...),
		index:   make(map[string]int, len(engines)),
	}
	for i, e := range f.engines {
		f.index[e] = i
	}
	return f
}

// Dim returns the feature dimensionality (engines, excluding bias).
func (f *Featurizer) Dim() int { return len(f.engines) }

// Engines returns the feature order.
func (f *Featurizer) Engines() []string { return f.engines }

// Features extracts the verdict vector of one scan.
func (f *Featurizer) Features(r *report.ScanReport) []float64 {
	x := make([]float64, len(f.engines))
	for _, er := range r.Results {
		if er.Verdict != report.Malicious {
			continue
		}
		if j, ok := f.index[er.Engine]; ok {
			x[j] = 1
		}
	}
	return x
}

// Example is one training observation.
type Example struct {
	X []float64
	// Y is the target: true for malicious.
	Y bool
}

// Model is a trained logistic-regression classifier.
type Model struct {
	// Weights has one entry per feature; Bias is the intercept.
	Weights []float64
	Bias    float64
}

// Config parameterizes training.
type Config struct {
	// Epochs over the training set (default 20).
	Epochs int
	// LearningRate for SGD (default 0.1).
	LearningRate float64
	// L2 regularization strength (default 1e-4).
	L2 float64
	// Seed drives the shuffle (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrNoData is returned when training has no examples.
var ErrNoData = errors.New("predict: no training examples")

// Train fits a model with SGD on the logistic loss.
func Train(examples []Example, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(examples) == 0 {
		return nil, ErrNoData
	}
	dim := len(examples[0].X)
	for i, ex := range examples {
		if len(ex.X) != dim {
			return nil, fmt.Errorf("predict: example %d has %d features, want %d", i, len(ex.X), dim)
		}
	}
	m := &Model{Weights: make([]float64, dim)}
	rng := xrand.New(cfg.Seed)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Fisher-Yates shuffle with the seeded stream.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		for _, idx := range order {
			ex := examples[idx]
			p := m.Prob(ex.X)
			y := 0.0
			if ex.Y {
				y = 1
			}
			g := p - y // dL/dz for logistic loss
			for j, xj := range ex.X {
				if xj != 0 {
					m.Weights[j] -= lr * (g*xj + cfg.L2*m.Weights[j])
				}
			}
			m.Bias -= lr * g
		}
	}
	return m, nil
}

// Prob returns P(malicious | x).
func (m *Model) Prob(x []float64) float64 {
	z := m.Bias
	for j, xj := range x {
		if xj != 0 {
			z += m.Weights[j] * xj
		}
	}
	return sigmoid(z)
}

// Predict applies the 0.5 decision threshold.
func (m *Model) Predict(x []float64) bool { return m.Prob(x) >= 0.5 }

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Metrics summarizes binary-classification quality.
type Metrics struct {
	TP, FP, TN, FN int
}

// Evaluate scores the model on a labeled set.
func (m *Model) Evaluate(examples []Example) Metrics {
	var mt Metrics
	for _, ex := range examples {
		pred := m.Predict(ex.X)
		switch {
		case pred && ex.Y:
			mt.TP++
		case pred && !ex.Y:
			mt.FP++
		case !pred && !ex.Y:
			mt.TN++
		default:
			mt.FN++
		}
	}
	return mt
}

// Accuracy returns (TP+TN)/total.
func (m Metrics) Accuracy() float64 {
	n := m.TP + m.FP + m.TN + m.FN
	if n == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(n)
}

// Precision returns TP/(TP+FP) (1 when nothing was flagged).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN) (1 when nothing was positive).
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ThresholdBaseline evaluates the unweighted rule "malicious iff at
// least t engines flagged it" on the same feature vectors, the
// comparison point for the learned model.
func ThresholdBaseline(examples []Example, t int) Metrics {
	var mt Metrics
	for _, ex := range examples {
		votes := 0
		for _, xj := range ex.X {
			if xj > 0 {
				votes++
			}
		}
		pred := votes >= t
		switch {
		case pred && ex.Y:
			mt.TP++
		case pred && !ex.Y:
			mt.FP++
		case !pred && !ex.Y:
			mt.TN++
		default:
			mt.FN++
		}
	}
	return mt
}
