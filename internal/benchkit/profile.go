package benchkit

import (
	"fmt"
	"sort"
	"time"
)

// Profile sizes a benchmark run. The smoke profile is small enough to
// gate every PR in CI; full reproduces the EXPERIMENTS.md scale on a
// workstation.
type Profile struct {
	Name string
	// Samples is the synthetic population collected by the ingest
	// pipeline (and backing the read/scan store).
	Samples int
	// Workers sizes the collector fetch pool and the scan worker
	// count.
	Workers int
	// Reps is the number of measured repetitions; Warmup repetitions
	// run first and are discarded.
	Reps   int
	Warmup int
	// Gets is the number of distinct cold lookups per read-cold rep.
	Gets int
	// HotSet is the number of distinct hashes cycled by read-hot; it
	// must fit the history cache so steady state is all hits.
	HotSet int
	// HotGets is the number of cache-served lookups per read-hot rep.
	HotGets int
	// APIRequests is the number of upload+report round-trip pairs per
	// api rep (split across the clean and the faulty server).
	APIRequests int
	// Interval is the collector poll step over the campaign window.
	// The paper polled every minute; benchmarks use coarser steps so
	// the poll count stays proportional to profile size.
	Interval time.Duration
}

// Profiles are the named run sizes vtbench accepts.
var Profiles = map[string]Profile{
	"smoke": {
		Name:        "smoke",
		Samples:     1500,
		Workers:     8,
		Reps:        3,
		Warmup:      1,
		Gets:        256,
		HotSet:      16,
		HotGets:     8192,
		APIRequests: 120,
		Interval:    6 * time.Hour,
	},
	"full": {
		Name:        "full",
		Samples:     20000,
		Workers:     8,
		Reps:        7,
		Warmup:      2,
		Gets:        1024,
		HotSet:      16,
		HotGets:     65536,
		APIRequests: 1000,
		Interval:    time.Hour,
	},
}

// ProfileByName resolves a profile, erroring with the known names.
func ProfileByName(name string) (Profile, error) {
	p, ok := Profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("benchkit: unknown profile %q (have %v)", name, ProfileNames())
	}
	return p, nil
}

// ProfileNames lists the registered profiles, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
