package benchkit

import (
	"context"
	"fmt"
	"maps"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/feed"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

// Scenarios are the standardized end-to-end benchmarks, in run order.
var Scenarios = []Scenario{
	ingestScenario,
	readColdScenario,
	readHotScenario,
	scanScenario,
	analyzeScenario,
	analyzeRowsScenario,
	apiScenario,
}

// ScenarioByName resolves one scenario by name.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("benchkit: unknown scenario %q (have %v)", name, ScenarioNames())
}

// ScenarioNames lists the scenarios in run order.
func ScenarioNames() []string {
	names := make([]string, len(Scenarios))
	for i, sc := range Scenarios {
		names[i] = sc.Name
	}
	return names
}

// newCampaign replays one deterministic campaign into a fresh
// in-memory service: population from the seed, every scan applied in
// time order. Every scenario starts from this, so their workloads
// agree with each other and with the recorded params.
func newCampaign(p Profile, seed int64) (*vtsim.Service, error) {
	set, err := engine.NewSet(engine.DefaultRoster(), seed,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		return nil, err
	}
	samples, err := sampleset.Generate(sampleset.Config{Seed: seed, NumSamples: p.Samples})
	if err != nil {
		return nil, err
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(set, clock)
	if err := vtsim.RunWorkload(svc, clock, samples); err != nil {
		return nil, err
	}
	return svc, nil
}

// collectInto runs the feed→store pipeline over the service's whole
// feed span and verifies nothing was dropped on the floor.
func collectInto(svc *vtsim.Service, st *store.Store, p Profile, reg *obs.Registry) (int, error) {
	first, last, ok := svc.FeedSpan()
	if !ok {
		return 0, fmt.Errorf("campaign produced an empty feed")
	}
	src := feed.SourceFunc(func(_ context.Context, from, to time.Time) ([]report.Envelope, error) {
		return svc.FeedBetween(from, to), nil
	})
	coll := feed.NewCollector(src, st)
	coll.Interval = p.Interval
	coll.Workers = p.Workers
	coll.Metrics = reg
	stats, err := coll.Run(context.Background(), first, last.Add(time.Second))
	if err != nil {
		return 0, err
	}
	if want := svc.NumReports(); stats.Envelopes != want {
		return 0, fmt.Errorf("collected %d envelopes, service generated %d", stats.Envelopes, want)
	}
	return stats.Envelopes, nil
}

// buildStore materializes the campaign into an on-disk store at dir —
// the shared fixture behind the read and scan scenarios.
func buildStore(p Profile, seed int64, dir string) (*vtsim.Service, error) {
	svc, err := newCampaign(p, seed)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(dir, store.WithMetrics(obs.NewRegistry()))
	if err != nil {
		return nil, err
	}
	if _, err := collectInto(svc, st, p, obs.NewRegistry()); err != nil {
		st.Close()
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	return svc, nil
}

// pickHashes deterministically strides n hashes out of the store's
// sorted sample set so runs with equal seeds look up equal samples.
func pickHashes(st *store.Store, n int) ([]string, error) {
	shas := st.SampleHashes()
	if len(shas) == 0 {
		return nil, fmt.Errorf("store holds no samples")
	}
	sort.Strings(shas)
	if n > len(shas) {
		n = len(shas)
	}
	out := make([]string, n)
	stride := len(shas) / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i++ {
		out[i] = shas[(i*stride)%len(shas)]
	}
	return out, nil
}

// ingestScenario measures the full collection pipeline — feed polls
// over the campaign window fanned across Workers fetchers, batch
// commits into a fresh compressed store, flush and close — exactly
// the path cmd/vtcollect drives.
var ingestScenario = Scenario{
	Name: "ingest",
	Desc: "vtsim feed -> concurrent collector -> compressed store, fresh store per rep",
	Params: func(p Profile, seed int64) map[string]any {
		return map[string]any{
			"samples":     p.Samples,
			"workers":     p.Workers,
			"interval_ns": p.Interval.Nanoseconds(),
			"format":      store.FormatDefault,
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		// The campaign is replayed once; reps only read its feed.
		svc, err := newCampaign(p, seed)
		if err != nil {
			return nil, err
		}
		rep := 0
		return func() (Rep, error) {
			rep++
			dir := filepath.Join(workDir, fmt.Sprintf("ingest-%d", rep))
			reg := obs.NewRegistry()
			st, err := store.Open(dir, store.WithMetrics(reg))
			if err != nil {
				return Rep{}, err
			}
			start := time.Now()
			n, err := collectInto(svc, st, p, reg)
			if err != nil {
				st.Close()
				return Rep{}, err
			}
			// Close is part of the measured region: ingest is not done
			// until the blocks and index sidecars are durable.
			if err := st.Close(); err != nil {
				return Rep{}, err
			}
			ns := time.Since(start).Nanoseconds()
			os.RemoveAll(dir)
			return Rep{NS: ns, Ops: int64(n), Obs: reg.Snapshot()}, nil
		}, nil
	},
}

// readColdScenario measures indexed history lookups against a store
// opened fresh for every rep: no history cache, every Get pays the
// sidecar-index + block-decode path.
var readColdScenario = Scenario{
	Name: "read-cold",
	Desc: "store.Get over a fresh open: index lookup + block decode per history",
	Params: func(p Profile, seed int64) map[string]any {
		return map[string]any{
			"samples": p.Samples,
			"gets":    p.Gets,
			"format":  store.FormatDefault,
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		dir := filepath.Join(workDir, "store")
		if _, err := buildStore(p, seed, dir); err != nil {
			return nil, err
		}
		// Fix the lookup set and its expected row count once, so every
		// rep (and every run at this seed) does provably equal work.
		st, err := store.Open(dir, store.WithMetrics(obs.NewRegistry()))
		if err != nil {
			return nil, err
		}
		shas, err := pickHashes(st, p.Gets)
		if err != nil {
			st.Close()
			return nil, err
		}
		wantRows := 0
		for _, sha := range shas {
			h, err := st.Get(sha)
			if err != nil {
				st.Close()
				return nil, err
			}
			wantRows += len(h.Reports)
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		return func() (Rep, error) {
			reg := obs.NewRegistry()
			// Reopening per rep is what makes the rep cold: the history
			// cache starts empty and the partition indexes reload from
			// their sidecars.
			st, err := store.Open(dir, store.WithMetrics(reg), store.WithCacheSize(0))
			if err != nil {
				return Rep{}, err
			}
			defer st.Close()
			start := time.Now()
			rows := 0
			for _, sha := range shas {
				h, err := st.Get(sha)
				if err != nil {
					return Rep{}, err
				}
				rows += len(h.Reports)
			}
			ns := time.Since(start).Nanoseconds()
			if rows != wantRows {
				return Rep{}, fmt.Errorf("cold reads returned %d rows, want %d", rows, wantRows)
			}
			return Rep{NS: ns, Ops: int64(len(shas)), Obs: reg.Snapshot()}, nil
		}, nil
	},
}

// readHotScenario measures the LRU history cache: a small hot set is
// warmed once, then hammered; steady state must be all cache hits.
var readHotScenario = Scenario{
	Name: "read-hot",
	Desc: "store.Get over a warmed LRU history cache (steady-state hits)",
	Params: func(p Profile, seed int64) map[string]any {
		return map[string]any{
			"samples":  p.Samples,
			"hot_set":  p.HotSet,
			"hot_gets": p.HotGets,
			"format":   store.FormatDefault,
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		dir := filepath.Join(workDir, "store")
		if _, err := buildStore(p, seed, dir); err != nil {
			return nil, err
		}
		return func() (Rep, error) {
			reg := obs.NewRegistry()
			st, err := store.Open(dir, store.WithMetrics(reg), store.WithCacheSize(p.HotSet))
			if err != nil {
				return Rep{}, err
			}
			defer st.Close()
			hot, err := pickHashes(st, p.HotSet)
			if err != nil {
				return Rep{}, err
			}
			for _, sha := range hot {
				if _, err := st.Get(sha); err != nil {
					return Rep{}, err
				}
			}
			start := time.Now()
			for i := 0; i < p.HotGets; i++ {
				if _, err := st.Get(hot[i%len(hot)]); err != nil {
					return Rep{}, err
				}
			}
			ns := time.Since(start).Nanoseconds()
			// The timed region must have been served by the cache, or
			// this scenario silently degrades into read-cold.
			if hits := reg.SumCounters("store_cache_hits_total"); hits < int64(p.HotGets) {
				return Rep{}, fmt.Errorf("only %d cache hits for %d hot gets", hits, p.HotGets)
			}
			return Rep{NS: ns, Ops: int64(p.HotGets), Obs: reg.Snapshot()}, nil
		}, nil
	},
}

// scanScenario measures the analytical full-store pass vtanalyze and
// vtquery lean on: parallel IterAll plus the by-type tally.
var scanScenario = Scenario{
	Name: "scan",
	Desc: "parallel IterAll + StatsByType over every partition",
	Params: func(p Profile, seed int64) map[string]any {
		return map[string]any{
			"samples": p.Samples,
			"workers": p.Workers,
			"format":  store.FormatDefault,
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		dir := filepath.Join(workDir, "store")
		svc, err := buildStore(p, seed, dir)
		if err != nil {
			return nil, err
		}
		wantRows := svc.NumReports()
		return func() (Rep, error) {
			reg := obs.NewRegistry()
			st, err := store.Open(dir, store.WithMetrics(reg))
			if err != nil {
				return Rep{}, err
			}
			defer st.Close()
			start := time.Now()
			var rowCount atomic.Int64 // the IterAll callback runs on p.Workers goroutines
			err = st.IterAll(p.Workers, func(month string, r *report.ScanReport) error {
				rowCount.Add(1)
				return nil
			})
			if err != nil {
				return Rep{}, err
			}
			byType, err := st.StatsByTypeWorkers(p.Workers)
			if err != nil {
				return Rep{}, err
			}
			ns := time.Since(start).Nanoseconds()
			rows := int(rowCount.Load())
			if rows != wantRows {
				return Rep{}, fmt.Errorf("IterAll saw %d rows, campaign generated %d", rows, wantRows)
			}
			typeRows := 0
			for _, ts := range byType {
				typeRows += ts.Reports
			}
			if typeRows != wantRows {
				return Rep{}, fmt.Errorf("StatsByType tallied %d rows, campaign generated %d", typeRows, wantRows)
			}
			return Rep{NS: ns, Ops: int64(rows), Obs: reg.Snapshot()}, nil
		}, nil
	},
}

// analyzeWindow is the mid-campaign window both analyze scenarios
// aggregate over: the middle fifth of the collection span, so most
// blocks are out of range and a zone-mapped scan can prune them.
func analyzeWindow() (since, until int64) {
	span := simclock.CollectionEnd.Unix() - simclock.CollectionStart.Unix()
	since = simclock.CollectionStart.Unix() + span*2/5
	until = simclock.CollectionStart.Unix() + span*3/5
	return since, until
}

// analyzeAnswer is the windowed dynamics census both analyze
// scenarios must produce: matching scans, per-type counts, per-engine
// verdict tallies. The two scenarios compute it through different
// engines and each checks its answer against the other's, so a
// pushdown bug cannot hide behind a fast wrong number.
type analyzeAnswer struct {
	rows    int64
	byType  map[string]int64
	engines map[string]store.EngineStats
}

func (a analyzeAnswer) equal(b analyzeAnswer) bool {
	return a.rows == b.rows && maps.Equal(a.byType, b.byType) && maps.Equal(a.engines, b.engines)
}

// pushdownAnalyze answers the census through store.Scan: zone-map
// pruning, projected column decode, per-block kernels.
func pushdownAnalyze(st *store.Store, workers int, since, until int64) (analyzeAnswer, store.ScanStats, error) {
	var (
		count store.CountAgg
		group store.GroupCountByType
		eng   store.EngineAgg
	)
	stats, err := st.Scan(store.Query{
		Since:   since,
		Until:   until,
		Cols:    store.ColFT | store.ColTime | store.ColResults,
		Workers: workers,
	}, &store.MultiAgg{Aggs: []store.Agg{&count, &group, &eng}})
	if err != nil {
		return analyzeAnswer{}, store.ScanStats{}, err
	}
	return analyzeAnswer{rows: count.N, byType: group.Counts, engines: eng.Engines}, stats, nil
}

// rowAnalyze answers the same census the pre-pushdown way: decode
// every row of every partition into a ScanReport, filter and tally in
// the callback.
func rowAnalyze(st *store.Store, workers int, since, until int64) (analyzeAnswer, error) {
	ans := analyzeAnswer{
		byType:  map[string]int64{},
		engines: map[string]store.EngineStats{},
	}
	var mu sync.Mutex
	err := st.IterAll(workers, func(month string, r *report.ScanReport) error {
		var at int64
		if !r.AnalysisDate.IsZero() {
			at = r.AnalysisDate.Unix()
		}
		if (since != 0 && at < since) || (until != 0 && at > until) {
			return nil
		}
		mu.Lock()
		ans.rows++
		ans.byType[r.FileType]++
		for i := range r.Results {
			er := &r.Results[i]
			es := ans.engines[er.Engine]
			es.Results++
			if er.Verdict == report.Malicious {
				es.Malicious++
			}
			if er.Label != "" {
				es.Labeled++
			}
			ans.engines[er.Engine] = es
		}
		mu.Unlock()
		return nil
	})
	return ans, err
}

// analyzeScenario measures the pushdown scan engine on a selective
// analytical query: a mid-campaign time window over the whole store,
// answered by zone-map pruning plus column-projected kernels. Its
// twin, analyze-rows, answers the identical query by materializing
// every row; the gap between the two medians is the pushdown win and
// EXPERIMENTS.md records it.
var analyzeScenario = Scenario{
	Name: "analyze",
	Desc: "windowed census via store.Scan: zone-map pruning + projected column kernels",
	Params: func(p Profile, seed int64) map[string]any {
		since, until := analyzeWindow()
		return map[string]any{
			"samples": p.Samples,
			"workers": p.Workers,
			"format":  store.FormatDefault,
			"since":   since,
			"until":   until,
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		dir := filepath.Join(workDir, "store")
		if _, err := buildStore(p, seed, dir); err != nil {
			return nil, err
		}
		since, until := analyzeWindow()
		// The expected answer comes from the row-materializing engine,
		// so every timed rep is checked against an independent
		// implementation.
		st, err := store.Open(dir, store.WithMetrics(obs.NewRegistry()))
		if err != nil {
			return nil, err
		}
		want, err := rowAnalyze(st, p.Workers, since, until)
		if closeErr := st.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return nil, err
		}
		if want.rows == 0 {
			return nil, fmt.Errorf("analyze window matched no rows")
		}
		return func() (Rep, error) {
			reg := obs.NewRegistry()
			st, err := store.Open(dir, store.WithMetrics(reg))
			if err != nil {
				return Rep{}, err
			}
			defer st.Close()
			start := time.Now()
			got, stats, err := pushdownAnalyze(st, p.Workers, since, until)
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return Rep{}, err
			}
			if !got.equal(want) {
				return Rep{}, fmt.Errorf("pushdown census disagrees with row census: got %d rows, want %d", got.rows, want.rows)
			}
			if stats.PrunedTotal()+stats.Scanned != stats.Blocks {
				return Rep{}, fmt.Errorf("pruning identity broken: %d pruned + %d scanned != %d blocks",
					stats.PrunedTotal(), stats.Scanned, stats.Blocks)
			}
			// A fifth-of-the-campaign window must prune out-of-window
			// blocks, or this scenario degrades into analyze-rows.
			if stats.PrunedTotal() == 0 {
				return Rep{}, fmt.Errorf("selective window pruned no blocks (%d scanned)", stats.Scanned)
			}
			return Rep{NS: ns, Ops: got.rows, Obs: reg.Snapshot()}, nil
		}, nil
	},
}

// analyzeRowsScenario is the row-materializing twin of analyze: the
// identical windowed census, answered by decoding every row. It
// exists as the measured "before" of the pushdown engine — kept
// honest by checking its answer against the pushdown engine's.
var analyzeRowsScenario = Scenario{
	Name: "analyze-rows",
	Desc: "the same windowed census via parallel IterAll row materialization",
	Params: func(p Profile, seed int64) map[string]any {
		since, until := analyzeWindow()
		return map[string]any{
			"samples": p.Samples,
			"workers": p.Workers,
			"format":  store.FormatDefault,
			"since":   since,
			"until":   until,
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		dir := filepath.Join(workDir, "store")
		if _, err := buildStore(p, seed, dir); err != nil {
			return nil, err
		}
		since, until := analyzeWindow()
		st, err := store.Open(dir, store.WithMetrics(obs.NewRegistry()))
		if err != nil {
			return nil, err
		}
		want, _, err := pushdownAnalyze(st, p.Workers, since, until)
		if closeErr := st.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return nil, err
		}
		if want.rows == 0 {
			return nil, fmt.Errorf("analyze window matched no rows")
		}
		return func() (Rep, error) {
			reg := obs.NewRegistry()
			st, err := store.Open(dir, store.WithMetrics(reg))
			if err != nil {
				return Rep{}, err
			}
			defer st.Close()
			start := time.Now()
			got, err := rowAnalyze(st, p.Workers, since, until)
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return Rep{}, err
			}
			if !got.equal(want) {
				return Rep{}, fmt.Errorf("row census disagrees with pushdown census: got %d rows, want %d", got.rows, want.rows)
			}
			return Rep{NS: ns, Ops: got.rows, Obs: reg.Snapshot()}, nil
		}, nil
	},
}

// apiScenario measures HTTP round trips through the retrying client
// against two real servers on loopback: one clean and one injecting
// 500/503 faults, so the measured path covers both the happy case and
// the retry/backoff machinery the collection campaign depends on.
var apiScenario = Scenario{
	Name: "api",
	Desc: "vtclient upload+report round trips vs clean and fault-injecting vtsimd",
	Params: func(p Profile, seed int64) map[string]any {
		return map[string]any{
			"requests":   p.APIRequests,
			"rate_500":   faultRate500,
			"rate_503":   faultRate503,
			"retries":    apiRetries,
			"backoff_ns": apiBackoff.Nanoseconds(),
		}
	},
	Prepare: func(p Profile, seed int64, workDir string) (RepFunc, error) {
		set, err := engine.NewSet(engine.DefaultRoster(), seed,
			simclock.CollectionStart, simclock.CollectionEnd)
		if err != nil {
			return nil, err
		}
		n := p.APIRequests / 2
		if n < 1 {
			n = 1
		}
		samples, err := sampleset.Generate(sampleset.Config{Seed: seed, NumSamples: n})
		if err != nil {
			return nil, err
		}
		return func() (Rep, error) {
			reg := obs.NewRegistry()
			// Fresh service per rep so times_submitted and report counts
			// do not drift across repetitions.
			svc := vtsim.NewService(set, simclock.NewSim(simclock.CollectionStart))
			clean, cleanURL, err := serveLoopback(vtapi.NewServer(svc, nil, vtapi.WithMetrics(reg)))
			if err != nil {
				return Rep{}, err
			}
			defer clean.Close()
			faulty, faultyURL, err := serveLoopback(vtapi.NewServer(svc, nil,
				vtapi.WithMetrics(reg),
				vtapi.WithFaults(vtapi.FaultConfig{
					Error500Rate: faultRate500,
					Error503Rate: faultRate503,
					Seed:         seed,
				})))
			if err != nil {
				return Rep{}, err
			}
			defer faulty.Close()
			clients := []*vtclient.Client{
				vtclient.New(cleanURL, vtclient.WithMetrics(reg),
					vtclient.WithRetries(apiRetries), vtclient.WithBackoff(apiBackoff)),
				vtclient.New(faultyURL, vtclient.WithMetrics(reg),
					vtclient.WithRetries(apiRetries), vtclient.WithBackoff(apiBackoff)),
			}
			ctx := context.Background()
			start := time.Now()
			calls := 0
			for i := 0; i < p.APIRequests; i++ {
				s := samples[i%len(samples)]
				cl := clients[i%2]
				desc := vtapi.UploadDescriptor{
					SHA256:        s.SHA256,
					FileType:      s.FileType,
					Size:          s.Size,
					Malicious:     s.Malicious,
					Detectability: s.Detectability,
				}
				if _, err := cl.Upload(ctx, desc); err != nil {
					return Rep{}, fmt.Errorf("upload %d: %w", i, err)
				}
				if _, err := cl.Report(ctx, s.SHA256); err != nil {
					return Rep{}, fmt.Errorf("report %d: %w", i, err)
				}
				calls += 2
			}
			ns := time.Since(start).Nanoseconds()
			// Wire-level invariant: every client attempt (including
			// retries of injected faults) must show up as a server
			// request — both ends share the registry.
			attempts := reg.SumCounters("client_attempts_total")
			served := reg.SumCounters("api_requests_total")
			if attempts != served {
				return Rep{}, fmt.Errorf("client sent %d attempts, servers counted %d", attempts, served)
			}
			if attempts < int64(calls) {
				return Rep{}, fmt.Errorf("%d attempts for %d logical calls", attempts, calls)
			}
			return Rep{NS: ns, Ops: int64(calls), Obs: reg.Snapshot()}, nil
		}, nil
	},
}

const (
	faultRate500 = 0.05
	faultRate503 = 0.05
	apiRetries   = 8
	apiBackoff   = time.Millisecond
)

// serveLoopback binds an OS-assigned loopback port (never a fixed
// one, so parallel runs cannot collide) and serves h until Close.
func serveLoopback(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", fmt.Errorf("benchkit: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}
