package benchkit

import (
	"testing"
	"time"
)

// testProfile is a miniature profile so the whole scenario suite runs
// in seconds; the knobs exercise every code path (concurrent fetch,
// cache warm + hit, faulty server) at small scale.
var testProfile = Profile{
	Name:        "test",
	Samples:     120,
	Workers:     4,
	Reps:        2,
	Warmup:      0,
	Gets:        8,
	HotSet:      4,
	HotGets:     64,
	APIRequests: 6,
	Interval:    7 * 24 * time.Hour,
}

func TestAllScenariosProduceValidResults(t *testing.T) {
	for _, sc := range Scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc, RunConfig{
				Profile: testProfile,
				Seed:    7,
				WorkDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatal(err)
			}
			if res.Scenario != sc.Name || res.Profile != "test" || res.Seed != 7 {
				t.Fatalf("result identity wrong: %+v", res)
			}
			if len(res.RepNS) != testProfile.Reps {
				t.Fatalf("%d reps recorded, want %d", len(res.RepNS), testProfile.Reps)
			}
			for i, ops := range res.RepOps {
				if ops <= 0 {
					t.Fatalf("rep %d did no work", i)
				}
			}
			// vtbench/2: every rep carries its allocation record, and
			// real scenarios always allocate something.
			if len(res.RepAllocs) != testProfile.Reps || len(res.RepBytes) != testProfile.Reps {
				t.Fatalf("alloc columns ragged: %d/%d", len(res.RepAllocs), len(res.RepBytes))
			}
			if res.Stats.AllocsPerOp <= 0 || res.Stats.BytesPerOp <= 0 {
				t.Fatalf("alloc stats missing: %+v", res.Stats)
			}
			if len(res.Obs) == 0 {
				t.Fatal("no obs snapshot recorded")
			}
			if len(res.Params) == 0 {
				t.Fatal("no params recorded")
			}
		})
	}
}

// TestIngestRepsDoEqualWork pins the determinism contract: every rep
// of a scenario processes the same op count, or the medians mean
// nothing.
func TestIngestRepsDoEqualWork(t *testing.T) {
	res, err := Run(ingestScenario, RunConfig{Profile: testProfile, Seed: 7, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.RepOps); i++ {
		if res.RepOps[i] != res.RepOps[0] {
			t.Fatalf("rep op counts diverge: %v", res.RepOps)
		}
	}
}

// TestHandicapTripsTheGate is the end-to-end acceptance check for the
// regression gate: the same scenario, same seed, run clean and with a
// 2x handicap, must fail `compare` at a 10%% threshold.
func TestHandicapTripsTheGate(t *testing.T) {
	base, err := Run(ingestScenario, RunConfig{Profile: testProfile, Seed: 7, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(ingestScenario, RunConfig{Profile: testProfile, Seed: 7, WorkDir: t.TempDir(), Handicap: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(base, slow, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed {
		t.Fatalf("2x handicap passed the gate: delta=%.2f allowed=%.2f", c.Delta, c.Allowed)
	}
}

func TestScenarioAndProfileLookups(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := ScenarioByName(name)
		if err != nil || sc.Name != name {
			t.Fatalf("ScenarioByName(%q) = %v, %v", name, sc.Name, err)
		}
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %v, %v", name, p.Name, err)
		}
		if p.Reps < 1 || p.Samples < 1 {
			t.Fatalf("profile %q undersized: %+v", name, p)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
