package benchkit

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaVersion identifies the BENCH_*.json layout. vtbench/2 added
// the per-rep allocation record (rep_allocs, rep_bytes and the
// allocs_per_op/bytes_per_op stats); vtbench/3 added the tail-latency
// columns (p99_ns, p999_ns) for open-loop soak records and num_cpu so
// the comparer can flag machine drift. Old records remain readable
// and comparable — the median gate never needed the new columns — so
// existing baselines keep gating until they are refreshed.
const (
	SchemaVersion = "vtbench/3"
	schemaV2      = "vtbench/2"
	schemaV1      = "vtbench/1"
)

// Result is one scenario's measured record — the unit written as
// BENCH_<scenario>.json. Everything needed to judge whether two runs
// are comparable (params, seed, schema) and whether one regressed
// (per-rep times, derived stats) is in the file; the obs snapshot
// carries the counters that explain the numbers (rows put, blocks
// decoded, faults injected, retries).
type Result struct {
	Schema     string         `json:"schema"`
	Scenario   string         `json:"scenario"`
	Profile    string         `json:"profile"`
	Seed       int64          `json:"seed"`
	Params     map[string]any `json:"params"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count at measurement time.
	// GOMAXPROCS alone can hide drift (two machines may both run with
	// GOMAXPROCS=4 on very different hardware budgets). vtbench/3;
	// zero on older records.
	NumCPU   int     `json:"num_cpu,omitempty"`
	UnixTime int64   `json:"unix_time"`
	Warmup   int     `json:"warmup"`
	RepNS    []int64 `json:"rep_ns"`
	RepOps   []int64 `json:"rep_ops"`
	// RepAllocs and RepBytes are the per-rep heap allocation deltas
	// (mallocs and bytes) over the whole process, from
	// runtime.ReadMemStats around the measured region. vtbench/2;
	// absent from vtbench/1 records.
	RepAllocs []int64          `json:"rep_allocs,omitempty"`
	RepBytes  []int64          `json:"rep_bytes,omitempty"`
	Stats     Stats            `json:"stats"`
	Obs       map[string]int64 `json:"obs"`
}

// FileName returns the canonical file name for a scenario's record.
func FileName(scenario string) string { return "BENCH_" + scenario + ".json" }

// ScenarioOf inverts FileName; ok is false for non-BENCH files.
func ScenarioOf(name string) (string, bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
		return "", false
	}
	return strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"), true
}

// WriteFile writes the result into dir as BENCH_<scenario>.json.
func (r *Result) WriteFile(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("benchkit: %w", err)
	}
	path := filepath.Join(dir, FileName(r.Scenario))
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("benchkit: %w", err)
	}
	return path, nil
}

// ReadFile loads and validates one BENCH_*.json record.
func ReadFile(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchkit: %w", err)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	return &r, nil
}

// Validate checks the structural invariants a record must satisfy
// before it can gate anything.
func (r *Result) Validate() error {
	switch {
	case r.Schema != SchemaVersion && r.Schema != schemaV2 && r.Schema != schemaV1:
		return fmt.Errorf("schema %q, want %q, %q, or %q", r.Schema, SchemaVersion, schemaV2, schemaV1)
	case r.Scenario == "":
		return fmt.Errorf("missing scenario name")
	case len(r.RepNS) == 0:
		return fmt.Errorf("no repetitions recorded")
	case len(r.RepNS) != len(r.RepOps):
		return fmt.Errorf("%d rep_ns vs %d rep_ops", len(r.RepNS), len(r.RepOps))
	case r.Stats.MedianNS <= 0:
		return fmt.Errorf("non-positive median")
	}
	// Alloc columns are optional (vtbench/1 has none), but when
	// present they must be per-rep like the time columns.
	if n := len(r.RepAllocs); n != 0 && n != len(r.RepNS) {
		return fmt.Errorf("%d rep_allocs vs %d rep_ns", n, len(r.RepNS))
	}
	if n := len(r.RepBytes); n != 0 && n != len(r.RepNS) {
		return fmt.Errorf("%d rep_bytes vs %d rep_ns", n, len(r.RepNS))
	}
	for i, ns := range r.RepNS {
		if ns <= 0 {
			return fmt.Errorf("rep %d has non-positive duration %d", i, ns)
		}
	}
	return nil
}

// paramsKey renders Params deterministically (encoding/json sorts map
// keys) so two records can be checked for like-for-like comparability
// without caring about number types after a JSON round trip.
func (r *Result) paramsKey() string {
	b, err := json.Marshal(r.Params)
	if err != nil {
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	return string(b)
}

// Comparison is the verdict on one scenario between two runs.
type Comparison struct {
	Scenario  string
	OldMedian float64
	NewMedian float64
	// Delta is the fractional slowdown: (new-old)/old. Negative means
	// the new run is faster.
	Delta float64
	// Allowed is the tolerated fractional slowdown: threshold plus the
	// noisier run's CV.
	Allowed   float64
	Regressed bool
	Improved  bool
	// OldP99/NewP99 carry the tail gate when both records have a p99
	// column (vtbench/3 soak records); P99Delta is its fractional
	// slowdown. Zero-valued when either side predates the column —
	// the tail gate only ever tightens, never blocks old baselines.
	OldP99   float64
	NewP99   float64
	P99Delta float64
	// P99Regressed is the tail verdict, judged against the same
	// Allowed band as the median. Either gate failing fails the
	// comparison: a server can hold its median while its p99
	// collapses, and that is exactly the regression an open-loop soak
	// exists to catch.
	P99Regressed bool
	// OldProcs/NewProcs record the GOMAXPROCS each run measured under.
	// A mismatch makes the comparison apples-to-oranges for the
	// parallel paths, but it is a property of the measuring machine,
	// not the code under test, so it warns instead of failing the gate.
	OldProcs int
	NewProcs int
	// OldCPUs/NewCPUs record runtime.NumCPU — same drift-warning role
	// as the procs pair (GOMAXPROCS can match while the underlying
	// machine shrank). Zero on pre-vtbench/3 records.
	OldCPUs int
	NewCPUs int
}

// ProcsMismatch reports whether the two runs used different
// GOMAXPROCS values.
func (c Comparison) ProcsMismatch() bool { return c.OldProcs != c.NewProcs }

// CPUsMismatch reports whether the two runs measured on machines with
// different logical CPU counts; records without the column (num_cpu
// is vtbench/3) never mismatch.
func (c Comparison) CPUsMismatch() bool {
	return c.OldCPUs != 0 && c.NewCPUs != 0 && c.OldCPUs != c.NewCPUs
}

func (c Comparison) String() string {
	verdict := "ok"
	if c.Regressed || c.P99Regressed {
		verdict = "REGRESSED"
	} else if c.Improved {
		verdict = "improved"
	}
	s := fmt.Sprintf("%-10s %12.2fms -> %12.2fms  %+7.1f%% (allowed ±%.1f%%)  %s",
		c.Scenario, c.OldMedian/1e6, c.NewMedian/1e6, c.Delta*100, c.Allowed*100, verdict)
	if c.OldP99 > 0 && c.NewP99 > 0 {
		tail := "ok"
		if c.P99Regressed {
			tail = "REGRESSED"
		}
		s += fmt.Sprintf("\n%-10s %12.2fms -> %12.2fms  %+7.1f%% (allowed ±%.1f%%)  %s",
			"  └ p99", c.OldP99/1e6, c.NewP99/1e6, c.P99Delta*100, c.Allowed*100, tail)
	}
	if c.ProcsMismatch() {
		s += fmt.Sprintf("  [warning: GOMAXPROCS %d vs %d]", c.OldProcs, c.NewProcs)
	}
	if c.CPUsMismatch() {
		s += fmt.Sprintf("  [warning: num_cpu %d vs %d]", c.OldCPUs, c.NewCPUs)
	}
	return s
}

// Compare judges new against old at a threshold given in percent. The
// tolerance is threshold/100 plus the larger of the two runs' CVs, so
// a noisy scenario must move by more than its own observed noise band
// before it fails the gate. An error means the records are not
// comparable (different schema, scenario, seed, or params) — the gate
// should treat that as a failure to configure, not a perf verdict.
func Compare(old, new *Result, thresholdPct float64) (Comparison, error) {
	var c Comparison
	if err := old.Validate(); err != nil {
		return c, fmt.Errorf("old record: %w", err)
	}
	if err := new.Validate(); err != nil {
		return c, fmt.Errorf("new record: %w", err)
	}
	if old.Scenario != new.Scenario {
		return c, fmt.Errorf("scenario mismatch: %q vs %q", old.Scenario, new.Scenario)
	}
	if old.Seed != new.Seed {
		return c, fmt.Errorf("%s: seed mismatch: %d vs %d", old.Scenario, old.Seed, new.Seed)
	}
	if old.paramsKey() != new.paramsKey() {
		return c, fmt.Errorf("%s: params mismatch:\n  old %s\n  new %s",
			old.Scenario, old.paramsKey(), new.paramsKey())
	}
	c.Scenario = old.Scenario
	c.OldProcs = old.GOMAXPROCS
	c.NewProcs = new.GOMAXPROCS
	c.OldCPUs = old.NumCPU
	c.NewCPUs = new.NumCPU
	c.OldMedian = old.Stats.MedianNS
	c.NewMedian = new.Stats.MedianNS
	c.Delta = (c.NewMedian - c.OldMedian) / c.OldMedian
	c.Allowed = thresholdPct/100 + max(old.Stats.CV, new.Stats.CV)
	c.Regressed = c.Delta > c.Allowed
	c.Improved = c.Delta < -c.Allowed
	if old.Stats.P99NS > 0 && new.Stats.P99NS > 0 {
		c.OldP99 = old.Stats.P99NS
		c.NewP99 = new.Stats.P99NS
		c.P99Delta = (c.NewP99 - c.OldP99) / c.OldP99
		c.P99Regressed = c.P99Delta > c.Allowed
	}
	return c, nil
}

// CompareDirs compares every BENCH_*.json present in oldDir against
// its counterpart in newDir. A scenario recorded in the baseline but
// missing from the new run is an error: a gate that silently skips
// scenarios stops gating. Extra scenarios in newDir are ignored (a PR
// may add scenarios before its baseline lands).
func CompareDirs(oldDir, newDir string, thresholdPct float64) ([]Comparison, error) {
	entries, err := os.ReadDir(oldDir)
	if err != nil {
		return nil, fmt.Errorf("benchkit: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := ScenarioOf(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("benchkit: no BENCH_*.json records in %s", oldDir)
	}
	sort.Strings(names)
	var out []Comparison
	for _, name := range names {
		oldRes, err := ReadFile(filepath.Join(oldDir, name))
		if err != nil {
			return nil, err
		}
		newPath := filepath.Join(newDir, name)
		newRes, err := ReadFile(newPath)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("benchkit: baseline has %s but the new run is missing %s", name, newPath)
			}
			return nil, err
		}
		c, err := Compare(oldRes, newRes, thresholdPct)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %w", err)
		}
		out = append(out, c)
	}
	return out, nil
}
