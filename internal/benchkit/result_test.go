package benchkit

import (
	"strings"
	"testing"
)

// fakeResult builds a valid record with three reps centered on median.
func fakeResult(scenario string, seed int64, median int64) *Result {
	repNS := []int64{median - median/100, median, median + median/100}
	repOps := []int64{100, 100, 100}
	return &Result{
		Schema:   SchemaVersion,
		Scenario: scenario,
		Profile:  "smoke",
		Seed:     seed,
		Params:   map[string]any{"samples": 1500, "workers": 8},
		Warmup:   1,
		RepNS:    repNS,
		RepOps:   repOps,
		Stats:    computeStats(repNS, repOps),
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	name := FileName("read-cold")
	if name != "BENCH_read-cold.json" {
		t.Fatalf("FileName = %q", name)
	}
	sc, ok := ScenarioOf("/some/dir/" + name)
	if !ok || sc != "read-cold" {
		t.Fatalf("ScenarioOf = %q, %v", sc, ok)
	}
	if _, ok := ScenarioOf("README.md"); ok {
		t.Fatal("ScenarioOf accepted a non-BENCH file")
	}
	if _, ok := ScenarioOf("BENCH_x.txt"); ok {
		t.Fatal("ScenarioOf accepted a non-json file")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := fakeResult("ingest", 42, 5_000_000)
	want.Obs = map[string]int64{`store_put_rows_total`: 12345}
	path, err := want.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != want.Scenario || got.Seed != want.Seed ||
		got.Stats.MedianNS != want.Stats.MedianNS ||
		got.Obs["store_put_rows_total"] != 12345 {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
}

func TestValidateRejectsBrokenRecords(t *testing.T) {
	break_ := func(f func(*Result)) *Result {
		r := fakeResult("ingest", 1, 1000)
		f(r)
		return r
	}
	cases := map[string]*Result{
		"wrong schema": break_(func(r *Result) { r.Schema = "vtbench/0" }),
		"no scenario":  break_(func(r *Result) { r.Scenario = "" }),
		"no reps":      break_(func(r *Result) { r.RepNS = nil; r.RepOps = nil }),
		"ragged reps":  break_(func(r *Result) { r.RepOps = r.RepOps[:1] }),
		"zero median":  break_(func(r *Result) { r.Stats.MedianNS = 0 }),
		"negative rep": break_(func(r *Result) { r.RepNS[1] = -5 }),
	}
	for name, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the record", name)
		}
	}
	if err := fakeResult("ingest", 1, 1000).Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}

func TestCompareVerdicts(t *testing.T) {
	old := fakeResult("ingest", 42, 10_000_000)

	// Same median: ok, neither regressed nor improved.
	c, err := Compare(old, fakeResult("ingest", 42, 10_000_000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed || c.Improved {
		t.Fatalf("flat comparison misjudged: %+v", c)
	}

	// The acceptance case: a 2x slowdown must trip a 10%% threshold.
	c, err = Compare(old, fakeResult("ingest", 42, 20_000_000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed {
		t.Fatalf("2x slowdown not flagged: %+v", c)
	}
	if !strings.Contains(c.String(), "REGRESSED") {
		t.Fatalf("String() hides the verdict: %s", c.String())
	}

	// A 2x speedup is reported as improved, not regressed.
	c, err = Compare(old, fakeResult("ingest", 42, 5_000_000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed || !c.Improved {
		t.Fatalf("2x speedup misjudged: %+v", c)
	}

	// Within threshold: a 5%% drift at threshold 10 passes.
	c, err = Compare(old, fakeResult("ingest", 42, 10_500_000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed {
		t.Fatalf("5%% drift flagged at 10%% threshold: %+v", c)
	}
}

func TestCompareToleranceWidensWithCV(t *testing.T) {
	// A noisy baseline (CV ~0.5) absorbs a slowdown that a tight
	// threshold alone would flag.
	old := fakeResult("ingest", 42, 10_000_000)
	old.RepNS = []int64{5_000_000, 10_000_000, 15_000_000}
	old.Stats = computeStats(old.RepNS, old.RepOps)
	c, err := Compare(old, fakeResult("ingest", 42, 13_000_000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed {
		t.Fatalf("noise-band slowdown flagged: delta=%v allowed=%v", c.Delta, c.Allowed)
	}
	if c.Allowed <= 0.10 {
		t.Fatalf("allowed %v did not widen beyond the threshold", c.Allowed)
	}
}

func TestCompareRejectsIncomparableRecords(t *testing.T) {
	old := fakeResult("ingest", 42, 10_000_000)

	if _, err := Compare(old, fakeResult("scan", 42, 10_000_000), 10); err == nil {
		t.Fatal("scenario mismatch accepted")
	}
	if _, err := Compare(old, fakeResult("ingest", 7, 10_000_000), 10); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	diffParams := fakeResult("ingest", 42, 10_000_000)
	diffParams.Params["samples"] = 9999
	if _, err := Compare(old, diffParams, 10); err == nil {
		t.Fatal("params mismatch accepted")
	}
}

func TestCompareDirs(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	for _, sc := range []string{"ingest", "scan"} {
		if _, err := fakeResult(sc, 42, 10_000_000).WriteFile(oldDir); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fakeResult("ingest", 42, 10_000_000).WriteFile(newDir); err != nil {
		t.Fatal(err)
	}
	if _, err := fakeResult("scan", 42, 30_000_000).WriteFile(newDir); err != nil {
		t.Fatal(err)
	}
	// An extra scenario in the new run is fine.
	if _, err := fakeResult("api", 42, 1_000_000).WriteFile(newDir); err != nil {
		t.Fatal(err)
	}

	comps, err := CompareDirs(oldDir, newDir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("compared %d scenarios, want 2", len(comps))
	}
	byName := map[string]Comparison{}
	for _, c := range comps {
		byName[c.Scenario] = c
	}
	if byName["ingest"].Regressed {
		t.Fatal("flat ingest flagged")
	}
	if !byName["scan"].Regressed {
		t.Fatal("3x scan slowdown not flagged")
	}
}

func TestCompareDirsMissingScenarioIsAnError(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	if _, err := fakeResult("ingest", 42, 10_000_000).WriteFile(oldDir); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareDirs(oldDir, newDir, 10); err == nil {
		t.Fatal("missing new-run scenario did not error")
	}
	if _, err := CompareDirs(newDir, oldDir, 10); err == nil {
		t.Fatal("empty baseline dir did not error")
	}
}

// TestValidateAcceptsV1Records pins backward compatibility: vtbench/1
// baselines (no alloc columns) must keep reading and gating.
func TestValidateAcceptsV1Records(t *testing.T) {
	r := fakeResult("ingest", 1, 1000)
	r.Schema = schemaV1
	if err := r.Validate(); err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	// Ragged alloc columns are still structural errors on either schema.
	r = fakeResult("ingest", 1, 1000)
	r.RepAllocs = []int64{5}
	if err := r.Validate(); err == nil {
		t.Fatal("ragged rep_allocs accepted")
	}
	r = fakeResult("ingest", 1, 1000)
	r.RepBytes = []int64{5, 6}
	if err := r.Validate(); err == nil {
		t.Fatal("ragged rep_bytes accepted")
	}
}

// TestCompareWarnsOnGOMAXPROCSMismatch pins the gate's stance: a
// GOMAXPROCS difference between runs is surfaced as a warning in the
// comparison, never an error or a verdict.
func TestCompareWarnsOnGOMAXPROCSMismatch(t *testing.T) {
	old := fakeResult("ingest", 42, 10_000_000)
	old.GOMAXPROCS = 8
	new_ := fakeResult("ingest", 42, 10_000_000)
	new_.GOMAXPROCS = 1
	c, err := Compare(old, new_, 10)
	if err != nil {
		t.Fatalf("mismatched GOMAXPROCS failed the compare: %v", err)
	}
	if c.Regressed || c.Improved {
		t.Fatalf("flat comparison misjudged: %+v", c)
	}
	if !c.ProcsMismatch() || c.OldProcs != 8 || c.NewProcs != 1 {
		t.Fatalf("mismatch not recorded: %+v", c)
	}
	if !strings.Contains(c.String(), "GOMAXPROCS 8 vs 1") {
		t.Fatalf("String() hides the warning: %s", c.String())
	}
	// Matching runs stay quiet.
	new_.GOMAXPROCS = 8
	c, err = Compare(old, new_, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.ProcsMismatch() || strings.Contains(c.String(), "GOMAXPROCS") {
		t.Fatalf("spurious warning: %s", c.String())
	}
}

// TestCompareAcrossSchemas pins that a vtbench/1 baseline gates a
// vtbench/2 run: the time columns are shared, the alloc columns are
// informational.
func TestCompareAcrossSchemas(t *testing.T) {
	old := fakeResult("ingest", 42, 10_000_000)
	old.Schema = schemaV1
	new_ := fakeResult("ingest", 42, 20_000_000)
	new_.RepAllocs = []int64{100, 100, 100}
	new_.RepBytes = []int64{4096, 4096, 4096}
	c, err := Compare(old, new_, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed {
		t.Fatalf("cross-schema slowdown not flagged: %+v", c)
	}
}

// TestValidateAcceptsAllSchemaGenerations pins the three-version
// compatibility contract: v1, v2, and v3 records all load and gate.
func TestValidateAcceptsAllSchemaGenerations(t *testing.T) {
	for _, schema := range []string{schemaV1, schemaV2, SchemaVersion} {
		r := fakeResult("ingest", 1, 1000)
		r.Schema = schema
		if err := r.Validate(); err != nil {
			t.Fatalf("%s record rejected: %v", schema, err)
		}
	}
	r := fakeResult("ingest", 1, 1000)
	r.Schema = "vtbench/99"
	if err := r.Validate(); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// TestV3RoundTripKeepsTailColumns checks that the vtbench/3 columns
// (num_cpu, p99_ns, p999_ns) survive the file round trip and that
// records without them still read back cleanly.
func TestV3RoundTripKeepsTailColumns(t *testing.T) {
	dir := t.TempDir()
	want := fakeResult("soak", 42, 5_000_000)
	want.NumCPU = 4
	want.Stats.P99NS = 42_000_000
	want.Stats.P999NS = 99_000_000
	path, err := want.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCPU != 4 || got.Stats.P99NS != 42_000_000 || got.Stats.P999NS != 99_000_000 {
		t.Fatalf("tail columns mangled: %+v", got)
	}

	// A v2-era record (no tail columns) still loads, and its zero
	// values keep the p99 gate out of comparisons.
	old := fakeResult("soak", 42, 5_000_000)
	old.Schema = schemaV2
	if _, err := old.WriteFile(dir); err == nil {
		// Same scenario name overwrites; reread to prove v2 loads.
		if _, err := ReadFile(path); err != nil {
			t.Fatalf("v2 record rejected after write: %v", err)
		}
	}
}

// TestComparePropagatesP99Gate checks the tail gate: a record pair
// with p99 columns regresses when only the tail collapses, and a pair
// missing either side's column never engages the gate.
func TestComparePropagatesP99Gate(t *testing.T) {
	old := fakeResult("soak", 42, 10_000_000)
	old.Stats.P99NS = 50_000_000
	new_ := fakeResult("soak", 42, 10_000_000)
	new_.Stats.P99NS = 500_000_000 // median flat, tail 10x
	c, err := Compare(old, new_, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed {
		t.Fatalf("flat median misjudged as a median regression: %+v", c)
	}
	if !c.P99Regressed {
		t.Fatalf("10x p99 collapse not flagged: %+v", c)
	}
	if !strings.Contains(c.String(), "REGRESSED") || !strings.Contains(c.String(), "p99") {
		t.Fatalf("String() hides the tail verdict: %s", c.String())
	}

	// Tail within tolerance: quiet.
	new_.Stats.P99NS = 51_000_000
	c, err = Compare(old, new_, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.P99Regressed {
		t.Fatalf("2%% tail move flagged at a 10%% threshold: %+v", c)
	}

	// Old baseline without the column: the gate stays out, even
	// against a new record that has one.
	old.Stats.P99NS = 0
	new_.Stats.P99NS = 500_000_000
	c, err = Compare(old, new_, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.P99Regressed || c.OldP99 != 0 {
		t.Fatalf("p99 gate engaged without a baseline column: %+v", c)
	}
}

// TestCompareWarnsOnNumCPUMismatch pins the machine-drift warning:
// like GOMAXPROCS, a num_cpu difference warns but never fails, and
// records predating the column (num_cpu == 0) never warn.
func TestCompareWarnsOnNumCPUMismatch(t *testing.T) {
	old := fakeResult("soak", 42, 10_000_000)
	old.NumCPU = 4
	new_ := fakeResult("soak", 42, 10_000_000)
	new_.NumCPU = 1
	c, err := Compare(old, new_, 10)
	if err != nil {
		t.Fatalf("mismatched num_cpu failed the compare: %v", err)
	}
	if c.Regressed || c.P99Regressed {
		t.Fatalf("flat comparison misjudged: %+v", c)
	}
	if !c.CPUsMismatch() || !strings.Contains(c.String(), "num_cpu 4 vs 1") {
		t.Fatalf("drift warning missing: %s", c.String())
	}

	// A pre-v3 baseline has no num_cpu; silence, not a phantom drift.
	old.NumCPU = 0
	c, err = Compare(old, new_, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.CPUsMismatch() || strings.Contains(c.String(), "num_cpu") {
		t.Fatalf("spurious drift warning against a pre-v3 baseline: %s", c.String())
	}
}
