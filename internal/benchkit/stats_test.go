package benchkit

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantileInterpolates(t *testing.T) {
	cases := []struct {
		sorted []int64
		q      float64
		want   float64
	}{
		{[]int64{10}, 0.5, 10},
		{[]int64{10, 20}, 0.5, 15},
		{[]int64{10, 20, 30}, 0.5, 20},
		{[]int64{10, 20, 30, 40}, 0.5, 25},
		{[]int64{10, 20, 30, 40, 50}, 0.9, 46},
		{[]int64{10, 20, 30}, 0, 10},
		{[]int64{10, 20, 30}, 1, 30},
	}
	for _, c := range cases {
		if got := quantile(c.sorted, c.q); !almost(got, c.want) {
			t.Errorf("quantile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	// Order must not matter: the median comes from a sorted copy.
	st := computeStats([]int64{30, 10, 20}, []int64{100, 100, 100})
	if !almost(st.MedianNS, 20) {
		t.Errorf("median = %v, want 20", st.MedianNS)
	}
	if !almost(st.MeanNS, 20) {
		t.Errorf("mean = %v, want 20", st.MeanNS)
	}
	if st.MinNS != 10 || st.MaxNS != 30 {
		t.Errorf("min/max = %d/%d, want 10/30", st.MinNS, st.MaxNS)
	}
	// Sample stddev of {10,20,30} is 10; CV is 10/20.
	if !almost(st.StddevNS, 10) {
		t.Errorf("stddev = %v, want 10", st.StddevNS)
	}
	if !almost(st.CV, 0.5) {
		t.Errorf("cv = %v, want 0.5", st.CV)
	}
	// 300 ops over 60ns = 5e9 ops/sec.
	if !almost(st.OpsPerSec, 5e9) {
		t.Errorf("ops/sec = %v, want 5e9", st.OpsPerSec)
	}
}

func TestComputeStatsSingleRep(t *testing.T) {
	st := computeStats([]int64{1000}, []int64{1})
	if st.StddevNS != 0 || st.CV != 0 {
		t.Errorf("single rep must have zero spread, got stddev=%v cv=%v", st.StddevNS, st.CV)
	}
	if !almost(st.MedianNS, 1000) || !almost(st.P90NS, 1000) {
		t.Errorf("single rep quantiles = %v/%v, want 1000", st.MedianNS, st.P90NS)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	if st := computeStats(nil, nil); st != (Stats{}) {
		t.Errorf("empty input gave %+v", st)
	}
}

func TestPerOp(t *testing.T) {
	if got := perOp([]int64{300, 100}, []int64{100, 100}); !almost(got, 2) {
		t.Errorf("perOp = %v, want 2", got)
	}
	if got := perOp(nil, []int64{100}); got != 0 {
		t.Errorf("perOp with no totals = %v, want 0", got)
	}
	if got := perOp([]int64{100}, nil); got != 0 {
		t.Errorf("perOp with no ops = %v, want 0", got)
	}
}
