package benchkit

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/loadgen"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

// SoakOptions parameterizes one open-loop soak run: a sustained
// campaign of concurrent simulated clients against a live vtapi
// server on loopback, measured with loadgen's coordinated-omission-
// proof accounting.
type SoakOptions struct {
	// Samples is the population size the campaign addresses.
	Samples int
	// Arrivals is the total request count (the 10^5 smoke default;
	// 10^6-10^7 are a flag away, the harness does not care).
	Arrivals int
	// Clients is the concurrent lane count.
	Clients int
	// Submitters is the distinct submitter-key count for the Zipf mix.
	Submitters int
	// Rate is the base offered load in requests/second.
	Rate float64
	// Zipf is the submitter-mix exponent.
	Zipf float64
	// Seed derives the whole workload.
	Seed int64
	// Storms enables the hostile overlays: a rescan storm, an
	// engine-outage wave, and a feed-lag spike.
	Storms bool
	// FeedWindow is the steady-state feed query span.
	FeedWindow time.Duration
	// FeedLimit caps each feed response at this many envelopes (the
	// paged catch-up read). Without it a lagging feed reader's
	// response grows with the backlog — cost quadratic in rate — and
	// the feed-lag phase saturates any box.
	FeedLimit int
	// Handicap multiplies every recorded latency (0 or 1 disables) —
	// the gate self-test: a handicapped run against a clean baseline
	// must fail the p50/p99 comparison.
	Handicap float64
}

// withSoakDefaults fills unset knobs with the smoke-campaign values.
func (o SoakOptions) withSoakDefaults() SoakOptions {
	if o.Samples == 0 {
		o.Samples = 20000
	}
	if o.Arrivals == 0 {
		o.Arrivals = 100000
	}
	if o.Clients == 0 {
		o.Clients = 1000
	}
	if o.Submitters == 0 {
		o.Submitters = 5000
	}
	if o.Rate == 0 {
		o.Rate = 2000
	}
	if o.Zipf == 0 {
		o.Zipf = 1.1
	}
	if o.FeedWindow == 0 {
		o.FeedWindow = 2 * time.Second
	}
	if o.FeedLimit == 0 {
		o.FeedLimit = 200
	}
	return o
}

// soakPhases are the hostile overlays, defined on arrival fractions:
// a 3x rescan storm, an engine-outage wave downing ~30% of the
// roster, and a feed-lag spike where feed readers catch up over 40x
// the usual window in FeedLimit-sized pages. Enter/Exit inject and
// clear the outage on the live service.
func soakPhases(svc *vtsim.Service, seed int64) []loadgen.Phase {
	return []loadgen.Phase{
		{
			Name: "rescan-storm", FromFrac: 0.40, ToFrac: 0.55, RateMul: 3,
			Mix: &loadgen.Mix{Upload: 0.10, Report: 0.10, Rescan: 0.78, Feed: 0.02},
		},
		{
			Name: "outage-wave", FromFrac: 0.55, ToFrac: 0.70,
			Enter: func() { svc.SetOutageFraction(0.3, seed) },
			Exit:  func() { svc.SetEngineOutage() },
		},
		{
			Name: "feed-lag", FromFrac: 0.75, ToFrac: 0.85, FeedWindowMul: 40,
			Mix: &loadgen.Mix{Upload: 0.35, Report: 0.30, Rescan: 0.15, Feed: 0.20},
		},
	}
}

// RunSoak stands up a live stack (vtsim service with a real clock,
// vtapi server on loopback, one shared retrying client pool) and
// drives it with the open-loop generator. It returns the benchkit
// record for the gate plus the full loadgen report for artifacts.
//
// Unlike the rep-based scenarios, the soak's record is per-request:
// Stats quantiles are request latencies (median = p50), RepNS is the
// single wall time, and RepOps the completed request count.
func RunSoak(ctx context.Context, opts SoakOptions) (*Result, *loadgen.Report, error) {
	opts = opts.withSoakDefaults()
	reg := obs.NewRegistry()

	// The soak runs on the real clock (the generator's schedule is
	// wall time), so the engine window is a wide slice around now —
	// the same shape cmd/vtsimd uses in real-clock mode.
	now := time.Now()
	set, err := engine.NewSet(engine.DefaultRoster(), opts.Seed,
		now.AddDate(-1, 0, 0), now.AddDate(1, 0, 0))
	if err != nil {
		return nil, nil, fmt.Errorf("benchkit: soak: %w", err)
	}
	samples, err := sampleset.Generate(sampleset.Config{Seed: opts.Seed, NumSamples: opts.Samples})
	if err != nil {
		return nil, nil, fmt.Errorf("benchkit: soak: %w", err)
	}
	svc := vtsim.NewService(set, simclock.Real{}, vtsim.WithMetrics(reg))
	srv, baseURL, err := serveLoopback(vtapi.NewServer(svc, nil, vtapi.WithMetrics(reg)))
	if err != nil {
		return nil, nil, fmt.Errorf("benchkit: soak: %w", err)
	}
	defer srv.Close()

	// One shared client: the transport's idle pool is sized to the
	// lane count so concurrent lanes reuse connections instead of
	// storming the dialer (ephemeral-port exhaustion at 10^6+ scale).
	transport := &http.Transport{
		MaxIdleConns:        opts.Clients,
		MaxIdleConnsPerHost: opts.Clients,
		IdleConnTimeout:     90 * time.Second,
	}
	defer transport.CloseIdleConnections()
	cl := vtclient.New(baseURL,
		vtclient.WithMetrics(reg),
		vtclient.WithHTTPClient(&http.Client{Transport: transport, Timeout: 30 * time.Second}),
		vtclient.WithBackoff(time.Millisecond))

	target := loadgen.TargetFunc(func(ctx context.Context, req *loadgen.Request) error {
		s := samples[req.Sample]
		var err error
		switch req.Kind {
		case loadgen.KindUpload:
			_, err = cl.Upload(ctx, vtapi.UploadDescriptor{
				SHA256:        s.SHA256,
				FileType:      s.FileType,
				Size:          s.Size,
				Malicious:     s.Malicious,
				Detectability: s.Detectability,
			})
		case loadgen.KindReport:
			_, err = cl.Report(ctx, s.SHA256)
		case loadgen.KindRescan:
			_, err = cl.Rescan(ctx, s.SHA256)
		case loadgen.KindFeed:
			// The feed wire format is Unix seconds, so the window is
			// clamped to whole seconds >= 1 or the server rejects
			// to == from. The page cap keeps one response bounded no
			// matter how far back the window reaches.
			secs := int64(req.FeedWindow / time.Second)
			if secs < 1 {
				secs = 1
			}
			to := req.Scheduled
			_, err = cl.FeedBetweenLimit(ctx, to.Add(-time.Duration(secs)*time.Second), to, opts.FeedLimit)
		}
		if errors.Is(err, vtclient.ErrNotFound) {
			// Reports and rescans legitimately race ahead of a
			// sample's first upload under an open-loop mix.
			return fmt.Errorf("%w: %v", loadgen.ErrNotFound, err)
		}
		return err
	})

	cfg := loadgen.Config{
		Rate:         opts.Rate,
		Clients:      opts.Clients,
		Arrivals:     opts.Arrivals,
		Seed:         opts.Seed,
		Submitters:   opts.Submitters,
		ZipfExponent: opts.Zipf,
		Samples:      opts.Samples,
		FeedWindow:   opts.FeedWindow,
		Metrics:      reg,
		LatencyScale: opts.Handicap,
	}
	if opts.Storms {
		cfg.Phases = soakPhases(svc, opts.Seed)
	}
	rep, err := loadgen.Run(ctx, cfg, target)
	if err != nil {
		return nil, nil, fmt.Errorf("benchkit: soak: %w", err)
	}

	// A soak that dropped or hard-failed requests has no business
	// recording a baseline: the latency distribution of a partial run
	// is not comparable to anything.
	if rep.Completed != int64(opts.Arrivals) {
		return nil, nil, fmt.Errorf("benchkit: soak: completed %d of %d arrivals", rep.Completed, opts.Arrivals)
	}
	if rep.Errors != 0 {
		return nil, nil, fmt.Errorf("benchkit: soak: %d hard errors (see loadgen_requests_total{outcome=\"error\"})", rep.Errors)
	}
	// Wire-level invariant, same as the api scenario: both ends share
	// the registry, so every client attempt must be a served request.
	attempts := reg.SumCounters("client_attempts_total")
	served := reg.SumCounters("api_requests_total")
	if attempts != served {
		return nil, nil, fmt.Errorf("benchkit: soak: client sent %d attempts, server counted %d", attempts, served)
	}

	sec := func(s float64) float64 { return s * 1e9 }
	res := &Result{
		Schema:   SchemaVersion,
		Scenario: "soak",
		Profile:  "soak",
		Seed:     opts.Seed,
		Params: map[string]any{
			"samples":        opts.Samples,
			"arrivals":       opts.Arrivals,
			"clients":        opts.Clients,
			"submitters":     opts.Submitters,
			"rate":           opts.Rate,
			"zipf":           opts.Zipf,
			"storms":         opts.Storms,
			"feed_window_ns": opts.FeedWindow.Nanoseconds(),
			"feed_limit":     opts.FeedLimit,
		},
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		UnixTime:   time.Now().Unix(),
		RepNS:      []int64{rep.WallNS},
		RepOps:     []int64{rep.Completed},
		Stats: Stats{
			MedianNS:  sec(rep.Overall.P50),
			P90NS:     sec(rep.Overall.P90),
			P99NS:     sec(rep.Overall.P99),
			P999NS:    sec(rep.Overall.P999),
			MaxNS:     int64(sec(rep.Overall.Max)),
			MeanNS:    sec(rep.OverallHist.Sum / float64(rep.OverallHist.Count)),
			OpsPerSec: rep.AchievedRate,
		},
		Obs: reg.Snapshot(),
	}
	return res, rep, nil
}
