package benchkit

import (
	"math"
	"sort"
)

// Stats are the derived statistics over one scenario's repetitions.
// Medians drive the regression gate because a single descheduled rep
// should not fail a PR; CV (stddev / mean) is recorded so the
// comparer can widen its tolerance on scenarios that are inherently
// noisy on the measuring machine.
type Stats struct {
	MedianNS float64 `json:"median_ns"`
	P90NS    float64 `json:"p90_ns"`
	// P99NS and P999NS are per-request tail latencies, recorded only
	// by scenarios that measure individual requests (the open-loop
	// soak); rep-based scenarios with a handful of repetitions cannot
	// state a p99 honestly and leave them zero. vtbench/3.
	P99NS     float64 `json:"p99_ns,omitempty"`
	P999NS    float64 `json:"p999_ns,omitempty"`
	MeanNS    float64 `json:"mean_ns"`
	StddevNS  float64 `json:"stddev_ns"`
	CV        float64 `json:"cv"`
	MinNS     int64   `json:"min_ns"`
	MaxNS     int64   `json:"max_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp and BytesPerOp divide the total heap allocation
	// across reps by the total work units — the end-to-end analogue of
	// testing.B's allocs/op. Zero on vtbench/1 records, which did not
	// measure allocation.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// perOp divides summed per-rep totals by summed ops, 0 when either
// side is missing.
func perOp(totals, ops []int64) float64 {
	var sum, n int64
	for _, t := range totals {
		sum += t
	}
	for _, o := range ops {
		n += o
	}
	if sum <= 0 || n <= 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// computeStats derives Stats from per-rep wall times and work counts.
// Empty input returns the zero Stats.
func computeStats(repNS, repOps []int64) Stats {
	if len(repNS) == 0 {
		return Stats{}
	}
	sorted := append([]int64(nil), repNS...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var st Stats
	st.MinNS = sorted[0]
	st.MaxNS = sorted[len(sorted)-1]
	st.MedianNS = quantile(sorted, 0.5)
	st.P90NS = quantile(sorted, 0.9)

	var sum float64
	for _, ns := range repNS {
		sum += float64(ns)
	}
	st.MeanNS = sum / float64(len(repNS))
	if len(repNS) > 1 {
		var sq float64
		for _, ns := range repNS {
			d := float64(ns) - st.MeanNS
			sq += d * d
		}
		st.StddevNS = math.Sqrt(sq / float64(len(repNS)-1))
	}
	if st.MeanNS > 0 {
		st.CV = st.StddevNS / st.MeanNS
	}

	var totalOps int64
	for _, ops := range repOps {
		totalOps += ops
	}
	if sum > 0 {
		st.OpsPerSec = float64(totalOps) / (sum / 1e9)
	}
	return st
}

// quantile returns the q-quantile of sorted values by linear
// interpolation between closest ranks, so median of [a, b] is their
// midpoint rather than either endpoint.
func quantile(sorted []int64, q float64) float64 {
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}
