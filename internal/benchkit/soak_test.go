package benchkit

import (
	"context"
	"testing"
	"time"
)

// soakTestOptions is a seconds-scale soak: enough arrivals to cross
// every storm phase, small enough for the race detector.
func soakTestOptions() SoakOptions {
	return SoakOptions{
		Samples:    300,
		Arrivals:   600,
		Clients:    64,
		Submitters: 200,
		Rate:       1200,
		Zipf:       1.1,
		Seed:       42,
		Storms:     true,
		FeedWindow: 500 * time.Millisecond,
	}
}

// TestRunSoakProducesValidRecord drives the whole stack — open-loop
// generator, loopback HTTP, vtsim with storm phases — and checks the
// record is gate-ready: valid, tail columns populated, counts
// consistent with the loadgen report.
func TestRunSoakProducesValidRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-scale end-to-end soak")
	}
	res, rep, err := RunSoak(context.Background(), soakTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("soak record invalid: %v", err)
	}
	if res.Scenario != "soak" || res.Schema != SchemaVersion {
		t.Fatalf("record mislabeled: %s %s", res.Scenario, res.Schema)
	}
	if res.Stats.P99NS <= 0 || res.Stats.P999NS < res.Stats.P99NS {
		t.Fatalf("tail columns not populated sanely: p99=%v p999=%v", res.Stats.P99NS, res.Stats.P999NS)
	}
	if res.Stats.MedianNS > res.Stats.P99NS {
		t.Fatalf("median %v above p99 %v", res.Stats.MedianNS, res.Stats.P99NS)
	}
	if res.NumCPU <= 0 {
		t.Fatal("num_cpu not recorded")
	}
	if rep.Completed != int64(rep.Arrivals) {
		t.Fatalf("completed %d of %d", rep.Completed, rep.Arrivals)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d hard errors", rep.Errors)
	}
	// The storm phases must have actually run: the outage wave drops
	// engine results, which is visible in the shared registry.
	if res.Obs["sim_outage_dropped_results_total"] == 0 {
		t.Error("outage wave left no trace; Enter/Exit hooks did not reach the service")
	}
	// Feed and scan traffic must both have happened.
	if res.Obs["sim_scans_total"] == 0 {
		t.Error("no scans recorded")
	}
	if rep.PerOp["feed"].Count == 0 {
		t.Error("no feed requests in the mix")
	}
}

// TestSoakHandicapTripsP99Gate is the CI gate's self-test at package
// level: a latency-handicapped soak against a clean baseline of the
// same workload must fail the comparison on its tail.
func TestSoakHandicapTripsP99Gate(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-scale end-to-end soak")
	}
	opts := soakTestOptions()
	opts.Storms = false // minimal run: the gate, not the scenarios
	opts.Arrivals = 400
	opts.Samples = 200
	baseline, _, err := RunSoak(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Handicap = 25
	slow, _, err := RunSoak(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 400% threshold: generous enough for run-to-run noise on a busy
	// machine, hopeless against a 25x handicap.
	c, err := Compare(baseline, slow, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed && !c.P99Regressed {
		t.Fatalf("25x latency handicap slipped through the gate: %+v", c)
	}
	if c.OldP99 <= 0 || c.NewP99 <= 0 {
		t.Fatalf("tail gate not engaged: %+v", c)
	}
	// And the unhandicapped run compares clean against itself.
	c, err = Compare(baseline, baseline, 400)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed || c.P99Regressed {
		t.Fatalf("baseline regressed against itself: %+v", c)
	}
}
