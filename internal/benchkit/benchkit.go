// Package benchkit is the end-to-end benchmark harness behind
// cmd/vtbench: standardized campaign scenarios over the real pipeline
// (vtsim service → feed collector → compressed store → HTTP API),
// each run R times with warmup and reported as machine-readable
// BENCH_<scenario>.json plus a regression comparer.
//
// Earlier PRs measured their speedups by hand and recorded them as
// prose tables in EXPERIMENTS.md; nothing stopped a later change from
// silently regressing them. benchkit turns those measurements into a
// standing record: `vtbench run` reproduces every perf table from one
// fixed seed, and `vtbench compare` (the CI perf-smoke job) fails a
// PR whose medians fall outside the baseline's tolerance.
//
// Design constraints:
//
//   - Scenarios are end to end, not micro: each one exercises a whole
//     user-visible path (ingest a campaign, read a collected store
//     cold and hot, scan it, drive the HTTP API through the retrying
//     client with faults on and off).
//   - Fixed seed, checked work: every scenario derives its workload
//     deterministically from the seed and fails loudly if the work it
//     timed was not the work it expected (collected-envelope counts,
//     cache-hit identities, row totals) — a perf number over wrong
//     work is worse than no number.
//   - Medians gate, CV widens: the comparer tolerates threshold% plus
//     the noisier run's coefficient of variation, so one descheduled
//     rep cannot fail a PR while a real slowdown still does.
package benchkit

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// Rep is one measured repetition of a scenario.
type Rep struct {
	// NS is the wall-clock of the scenario's timed region.
	NS int64
	// Ops counts the work units (envelopes, lookups, rows, round
	// trips) the timed region processed.
	Ops int64
	// Obs is the scenario registry's counter/gauge snapshot.
	Obs map[string]int64
}

// RepFunc runs one repetition. Scenarios time their own hot region so
// per-rep setup (opening a store, binding a listener) stays out of
// the measurement.
type RepFunc func() (Rep, error)

// Scenario is one standardized campaign benchmark.
type Scenario struct {
	Name string
	Desc string
	// Params reports the knobs that define the workload, recorded in
	// the result for the comparability check.
	Params func(p Profile, seed int64) map[string]any
	// Prepare builds shared fixtures under workDir and returns the
	// per-rep run function.
	Prepare func(p Profile, seed int64, workDir string) (RepFunc, error)
}

// RunConfig parameterizes one scenario execution.
type RunConfig struct {
	Profile Profile
	Seed    int64
	// Handicap artificially inflates every measured repetition by the
	// given factor (0 or 1 disables). It exists to validate the
	// regression gate end to end: a handicapped run against a clean
	// baseline must fail `vtbench compare`.
	Handicap float64
	// WorkDir is the scratch directory for fixtures; the caller owns
	// its lifetime. Empty uses a fresh temp directory removed on exit.
	WorkDir string
}

// Run executes the scenario: prepare once, warm up, then measure
// Profile.Reps repetitions.
func Run(sc Scenario, cfg RunConfig) (*Result, error) {
	p := cfg.Profile
	if p.Reps < 1 {
		return nil, fmt.Errorf("benchkit: profile %q has %d reps", p.Name, p.Reps)
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "vtbench-"+sc.Name+"-*")
		if err != nil {
			return nil, fmt.Errorf("benchkit: %w", err)
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}
	rep, err := sc.Prepare(p, cfg.Seed, workDir)
	if err != nil {
		return nil, fmt.Errorf("benchkit: %s: prepare: %w", sc.Name, err)
	}
	for i := 0; i < p.Warmup; i++ {
		if _, err := rep(); err != nil {
			return nil, fmt.Errorf("benchkit: %s: warmup rep %d: %w", sc.Name, i, err)
		}
	}
	res := &Result{
		Schema:     SchemaVersion,
		Scenario:   sc.Name,
		Profile:    p.Name,
		Seed:       cfg.Seed,
		Params:     sc.Params(p, cfg.Seed),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		UnixTime:   time.Now().Unix(),
		Warmup:     p.Warmup,
	}
	var before, after runtime.MemStats
	for i := 0; i < p.Reps; i++ {
		// Mallocs and TotalAlloc are monotonic, so the delta needs no
		// GC fence. The process runs one scenario at a time, so the
		// process-wide delta is the scenario's allocation (per-rep
		// setup outside the timed region is included — the record is
		// honest about what a whole rep costs).
		runtime.ReadMemStats(&before)
		r, err := rep()
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s: rep %d: %w", sc.Name, i, err)
		}
		runtime.ReadMemStats(&after)
		ns := r.NS
		if cfg.Handicap > 1 {
			ns = int64(float64(ns) * cfg.Handicap)
		}
		res.RepNS = append(res.RepNS, ns)
		res.RepOps = append(res.RepOps, r.Ops)
		res.RepAllocs = append(res.RepAllocs, int64(after.Mallocs-before.Mallocs))
		res.RepBytes = append(res.RepBytes, int64(after.TotalAlloc-before.TotalAlloc))
		res.Obs = r.Obs
	}
	res.Stats = computeStats(res.RepNS, res.RepOps)
	res.Stats.AllocsPerOp = perOp(res.RepAllocs, res.RepOps)
	res.Stats.BytesPerOp = perOp(res.RepBytes, res.RepOps)
	return res, nil
}
