package vtapi_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

// setup starts an httptest server over a fresh simulated service and
// returns a typed client plus the virtual clock.
func setup(t *testing.T) (*vtclient.Client, *simclock.SimClock) {
	t.Helper()
	set, err := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(set, clock)
	srv := httptest.NewServer(vtapi.NewServer(svc, nil))
	t.Cleanup(srv.Close)
	return vtclient.New(srv.URL), clock
}

func desc(sha string) vtapi.UploadDescriptor {
	return vtapi.UploadDescriptor{
		SHA256:        sha,
		FileType:      ftypes.Win32EXE,
		Size:          2048,
		Malicious:     true,
		Detectability: 0.9,
	}
}

func TestUploadOverHTTP(t *testing.T) {
	client, _ := setup(t)
	env, err := client.Upload(context.Background(), desc("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if env.Meta.SHA256 != "u1" || env.Meta.TimesSubmitted != 1 {
		t.Fatalf("meta = %+v", env.Meta)
	}
	if err := env.Scan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(env.Scan.Results) < 70 {
		t.Fatalf("engine results = %d", len(env.Scan.Results))
	}
}

// TestTable1OverHTTP exercises the API-semantics experiment end to
// end over real HTTP: the three endpoints must follow the Table 1
// update rules.
func TestTable1OverHTTP(t *testing.T) {
	client, clock := setup(t)
	ctx := context.Background()
	first, err := client.Upload(ctx, desc("t1"))
	if err != nil {
		t.Fatal(err)
	}

	clock.Advance(24 * time.Hour)
	rescanned, err := client.Rescan(ctx, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if !rescanned.Meta.LastAnalysisDate.After(first.Meta.LastAnalysisDate) {
		t.Fatal("rescan: last_analysis_date not updated")
	}
	if !rescanned.Meta.LastSubmissionDate.Equal(first.Meta.LastSubmissionDate) {
		t.Fatal("rescan: last_submission_date changed")
	}
	if rescanned.Meta.TimesSubmitted != first.Meta.TimesSubmitted {
		t.Fatal("rescan: times_submitted changed")
	}

	clock.Advance(24 * time.Hour)
	reported, err := client.Report(ctx, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if !reported.Meta.LastAnalysisDate.Equal(rescanned.Meta.LastAnalysisDate) {
		t.Fatal("report: last_analysis_date changed")
	}

	clock.Advance(24 * time.Hour)
	reuploaded, err := client.Upload(ctx, desc("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if reuploaded.Meta.TimesSubmitted != 2 {
		t.Fatalf("upload: times_submitted = %d, want 2", reuploaded.Meta.TimesSubmitted)
	}
	if !reuploaded.Meta.LastSubmissionDate.After(first.Meta.LastSubmissionDate) {
		t.Fatal("upload: last_submission_date not updated")
	}
}

func TestReportNotFound(t *testing.T) {
	client, _ := setup(t)
	_, err := client.Report(context.Background(), "missing")
	if !errors.Is(err, vtclient.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	_, err = client.Rescan(context.Background(), "missing")
	if !errors.Is(err, vtclient.ErrNotFound) {
		t.Fatalf("rescan err = %v, want ErrNotFound", err)
	}
}

func TestUploadValidation(t *testing.T) {
	client, _ := setup(t)
	_, err := client.Upload(context.Background(), vtapi.UploadDescriptor{})
	if err == nil || errors.Is(err, vtclient.ErrNotFound) {
		t.Fatalf("err = %v, want 400-class error", err)
	}
}

func TestFeedOverHTTP(t *testing.T) {
	client, clock := setup(t)
	ctx := context.Background()
	t0 := clock.Now()
	for i, sha := range []string{"f1", "f2", "f3"} {
		if _, err := client.Upload(ctx, desc(sha)); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		clock.Advance(30 * time.Second)
	}
	envs, err := client.FeedBetween(ctx, t0, clock.Now().Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 3 {
		t.Fatalf("feed = %d envelopes", len(envs))
	}
	for _, env := range envs {
		if err := env.Scan.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Empty window.
	empty, err := client.FeedBetween(ctx, t0.Add(-time.Hour), t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty window returned %d", len(empty))
	}
	// The paged read caps the response at the window's prefix.
	page, err := client.FeedBetweenLimit(ctx, t0, clock.Now().Add(time.Second), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 2 || page[0].Meta.SHA256 != envs[0].Meta.SHA256 {
		t.Fatalf("limit 2 page = %d envelopes", len(page))
	}
}

func TestFeedBadParams(t *testing.T) {
	set, _ := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	svc := vtsim.NewService(set, simclock.NewSim(simclock.CollectionStart))
	srv := httptest.NewServer(vtapi.NewServer(svc, nil))
	defer srv.Close()

	for _, q := range []string{"", "?from=10", "?from=20&to=10", "?from=x&to=y",
		"?from=10&to=20&limit=0", "?from=10&to=20&limit=-1", "?from=10&to=20&limit=x"} {
		resp, err := http.Get(srv.URL + "/api/v3/feed/reports" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status = %d", q, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	set, _ := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	svc := vtsim.NewService(set, simclock.NewSim(simclock.CollectionStart))
	srv := httptest.NewServer(vtapi.NewServer(svc, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestMalformedUploadBody(t *testing.T) {
	set, _ := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	svc := vtsim.NewService(set, simclock.NewSim(simclock.CollectionStart))
	srv := httptest.NewServer(vtapi.NewServer(svc, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/api/v3/files", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestWireFormatFields(t *testing.T) {
	// The decoded envelope must preserve engine verdict categories —
	// guard against wire-format drift.
	client, _ := setup(t)
	env, err := client.Upload(context.Background(), desc("wire"))
	if err != nil {
		t.Fatal(err)
	}
	var mal, ben, und int
	for _, er := range env.Scan.Results {
		switch er.Verdict {
		case report.Malicious:
			mal++
		case report.Benign:
			ben++
		default:
			und++
		}
	}
	if mal != env.Scan.AVRank {
		t.Fatalf("AVRank %d != malicious verdicts %d", env.Scan.AVRank, mal)
	}
	if mal+ben != env.Scan.EnginesTotal {
		t.Fatalf("EnginesTotal mismatch: %d vs %d", env.Scan.EnginesTotal, mal+ben)
	}
}
