package vtapi_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

// authSetup starts a server requiring keys: "pub-key" on the public
// tier, "prem-key" on the premium tier.
func authSetup(t *testing.T) (string, *simclock.SimClock) {
	t.Helper()
	set, err := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(set, clock)
	srv := httptest.NewServer(vtapi.NewServer(svc, nil, vtapi.WithAuth(clock, map[string]vtapi.Tier{
		"pub-key":  vtapi.PublicTier,
		"prem-key": vtapi.PremiumTier,
	})))
	t.Cleanup(srv.Close)
	return srv.URL, clock
}

func authDesc(sha string) vtapi.UploadDescriptor {
	return vtapi.UploadDescriptor{
		SHA256:        sha,
		FileType:      ftypes.Win32EXE,
		Malicious:     true,
		Detectability: 0.8,
	}
}

func TestAuthRequired(t *testing.T) {
	url, _ := authSetup(t)
	// No key.
	noKey := vtclient.New(url)
	_, err := noKey.Upload(context.Background(), authDesc("a1"))
	if !errors.Is(err, vtclient.ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
	// Wrong key.
	wrong := vtclient.New(url, vtclient.WithAPIKey("bogus"))
	_, err = wrong.Upload(context.Background(), authDesc("a1"))
	if !errors.Is(err, vtclient.ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
	// Valid key.
	ok := vtclient.New(url, vtclient.WithAPIKey("pub-key"))
	if _, err := ok.Upload(context.Background(), authDesc("a1")); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTierFeedForbidden(t *testing.T) {
	url, clock := authSetup(t)
	pub := vtclient.New(url, vtclient.WithAPIKey("pub-key"))
	_, err := pub.FeedBetween(context.Background(),
		clock.Now().Add(-time.Hour), clock.Now())
	if !errors.Is(err, vtclient.ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
	prem := vtclient.New(url, vtclient.WithAPIKey("prem-key"))
	if _, err := prem.FeedBetween(context.Background(),
		clock.Now().Add(-time.Hour), clock.Now()); err != nil {
		t.Fatalf("premium feed err = %v", err)
	}
}

func TestPublicTierRateLimit(t *testing.T) {
	url, _ := authSetup(t)
	// Disable client-side Retry-After waiting so we see the 429.
	pub := vtclient.New(url,
		vtclient.WithAPIKey("pub-key"),
		vtclient.WithMaxRetryAfter(0),
		vtclient.WithRetries(0))
	ctx := context.Background()
	okCount := 0
	var lastErr error
	for i := 0; i < 10; i++ {
		_, err := pub.Upload(ctx, authDesc("rl"))
		if err == nil {
			okCount++
		} else {
			lastErr = err
		}
	}
	if okCount != 4 {
		t.Fatalf("public tier allowed %d immediate requests, want 4", okCount)
	}
	if !errors.Is(lastErr, vtclient.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", lastErr)
	}
}

func TestPublicTierRefillsWithClock(t *testing.T) {
	url, clock := authSetup(t)
	pub := vtclient.New(url,
		vtclient.WithAPIKey("pub-key"),
		vtclient.WithMaxRetryAfter(0),
		vtclient.WithRetries(0))
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := pub.Upload(ctx, authDesc("rf")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pub.Upload(ctx, authDesc("rf")); !errors.Is(err, vtclient.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want quota exceeded", err)
	}
	clock.Advance(time.Minute)
	if _, err := pub.Upload(ctx, authDesc("rf")); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestPremiumTierUnlimited(t *testing.T) {
	url, _ := authSetup(t)
	prem := vtclient.New(url, vtclient.WithAPIKey("prem-key"))
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := prem.Upload(ctx, authDesc("prem")); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestHealthzUnauthenticated(t *testing.T) {
	url, _ := authSetup(t)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with auth enabled = %d", resp.StatusCode)
	}
}

func TestRetryAfterHeaderPresent(t *testing.T) {
	url, _ := authSetup(t)
	// Exhaust the minute bucket with raw requests.
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequest(http.MethodPost, url+"/api/v3/files/x/analyse", nil)
		req.Header.Set("x-apikey", "pub-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodPost, url+"/api/v3/files/x/analyse", nil)
	req.Header.Set("x-apikey", "pub-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}
