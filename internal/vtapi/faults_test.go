package vtapi_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/feed"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

func faultySetup(t *testing.T, cfg vtapi.FaultConfig) (*vtclient.Client, *vtsim.Service, *simclock.SimClock) {
	t.Helper()
	set, err := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(set, clock)
	srv := httptest.NewServer(vtapi.NewServer(svc, nil, vtapi.WithFaults(cfg)))
	t.Cleanup(srv.Close)
	client := vtclient.New(srv.URL,
		vtclient.WithRetries(8),
		vtclient.WithBackoff(time.Millisecond),
		vtclient.WithMaxRetryAfter(2*time.Second))
	return client, svc, clock
}

// TestClientSurvivesInjected500s exercises the retry path: with a 30%
// injected 500 rate and generous retries, every logical request must
// eventually succeed.
func TestClientSurvivesInjected500s(t *testing.T) {
	client, _, clock := faultySetup(t, vtapi.FaultConfig{Error500Rate: 0.3, Seed: 5})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		clock.Advance(time.Minute)
		_, err := client.Upload(ctx, desc(shaI(i)))
		if err != nil {
			t.Fatalf("upload %d failed through retries: %v", i, err)
		}
	}
}

// TestCollectorSurvivesFaultyFeed runs a resumable collection against
// a server that sheds load: the collector retries through the client,
// and the campaign completes exactly.
func TestCollectorSurvivesFaultyFeed(t *testing.T) {
	client, svc, clock := faultySetup(t, vtapi.FaultConfig{
		Error500Rate: 0.15, Error503Rate: 0.15, Seed: 9})
	ctx := context.Background()

	// Generate some reports.
	for i := 0; i < 10; i++ {
		if _, err := svc.Upload(vtsim.UploadRequest{
			SHA256: shaI(i), FileType: "Win32 EXE", Malicious: true, Detectability: 0.8,
		}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Minute)
	}
	end := clock.Now().Add(time.Minute)

	var stored int
	collector := feed.NewCollector(
		feed.SourceFunc(func(ctx context.Context, a, b time.Time) ([]report.Envelope, error) {
			return client.FeedBetween(ctx, a, b)
		}),
		feed.SinkFunc(func(report.Envelope) error { stored++; return nil }),
	)
	collector.Interval = 10 * time.Minute
	stats, err := collector.RunResumable(ctx, simclock.CollectionStart, end, &feed.MemCursor{})
	if err != nil {
		t.Fatalf("collection failed despite retries: %v", err)
	}
	if stored != 10 || stats.Envelopes != 10 {
		t.Fatalf("stored %d envelopes (stats %+v), want 10", stored, stats)
	}
}

// TestHealthzExemptFromFaults keeps the liveness probe reliable even
// under total fault injection.
func TestHealthzExemptFromFaults(t *testing.T) {
	set, _ := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	svc := vtsim.NewService(set, simclock.NewSim(simclock.CollectionStart))
	srv := httptest.NewServer(vtapi.NewServer(svc, nil,
		vtapi.WithFaults(vtapi.FaultConfig{Error500Rate: 1, Seed: 1})))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d under fault injection", resp.StatusCode)
		}
	}
	// Everything else must fail.
	resp, err := http.Get(srv.URL + "/api/v3/files/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("api status = %d, want injected 500", resp.StatusCode)
	}
}

func shaI(i int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 8)
	for j := range b {
		b[j] = hex[(i>>uint(j*4))&0xf]
	}
	return "fault" + string(b)
}
