// Package vtapi exposes the simulated VirusTotal service over HTTP,
// mirroring the v3 endpoints the paper describes in §2.1:
//
//	POST /api/v3/files                 upload & analyze a file
//	GET  /api/v3/files/{id}            fetch the latest report
//	POST /api/v3/files/{id}/analyse    rescan an existing file
//	GET  /api/v3/feed/reports          premium feed slice (?from=&to=, Unix seconds)
//	GET  /healthz                      liveness
//	GET  /metricsz                     metrics (Prometheus text; ?format=json)
//
// Responses use the VT-v3-style JSON envelope from internal/report;
// errors use VT's {"error": {"code", "message"}} shape. Because the
// simulator has no file bytes, the upload body carries a descriptor
// with the sample's latent attributes instead of multipart content.
package vtapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vtdynamics/internal/bufpool"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/vtsim"
)

// UploadDescriptor is the upload request body.
type UploadDescriptor struct {
	SHA256        string  `json:"sha256"`
	FileType      string  `json:"file_type"`
	Size          int64   `json:"size"`
	Malicious     bool    `json:"malicious"`
	Detectability float64 `json:"detectability"`
}

// apiError is VT's error envelope.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Server wraps a vtsim.Service with the HTTP surface.
type Server struct {
	svc      *vtsim.Service
	mux      *http.ServeMux
	log      *log.Logger
	auth     *auth
	faults   *faultInjector
	faultCfg *FaultConfig
	reg      *obs.Registry
	latency  map[string]*obs.Histogram
}

// WithMetrics routes the server's instrumentation (per-endpoint
// request counts and latency, fault-injector outcomes) into reg
// instead of the process-wide default registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// NewServer builds the HTTP surface over the service. logger may be
// nil to disable request logging; pass WithAuth to require API keys
// and enforce tier quotas.
func NewServer(svc *vtsim.Service, logger *log.Logger, opts ...Option) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), log: logger}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	// The fault injector is wired after the options so WithFaults and
	// WithMetrics compose in either order.
	if s.faultCfg != nil {
		s.faults = newFaultInjector(*s.faultCfg, s.reg)
	}
	// Latency histograms are per endpoint (no status label), so the
	// handful of series can be resolved once, not per request.
	s.latency = make(map[string]*obs.Histogram, len(endpoints))
	for _, ep := range endpoints {
		s.latency[ep] = s.reg.Histogram("api_request_seconds", obs.DefBuckets, "endpoint", ep)
	}
	s.mux.HandleFunc("POST /api/v3/files", s.handleUpload)
	s.mux.HandleFunc("GET /api/v3/files/{id}", s.handleReport)
	s.mux.HandleFunc("POST /api/v3/files/{id}/analyse", s.handleRescan)
	s.mux.HandleFunc("GET /api/v3/feed/reports", s.handleFeed)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("GET /metricsz", s.reg.Handler())
	return s
}

// endpoints are the label values api_requests_total/api_request_seconds
// partition the surface into.
var endpoints = []string{"upload", "report", "rescan", "feed", "other"}

// endpointOf maps a request onto its metrics label without consulting
// the mux (the request may never reach it).
func endpointOf(r *http.Request) string {
	path := r.URL.Path
	switch {
	case path == "/api/v3/files" && r.Method == http.MethodPost:
		return "upload"
	case path == "/api/v3/feed/reports":
		return "feed"
	case strings.HasPrefix(path, "/api/v3/files/"):
		if strings.HasSuffix(path, "/analyse") && r.Method == http.MethodPost {
			return "rescan"
		}
		return "report"
	default:
		return "other"
	}
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// exempt marks the operational endpoints that bypass faults, auth,
// and request accounting — probes and scrapes must always work, and
// keeping them out of api_requests_total preserves the identity
// api_requests_total == api_faults_total{passed + injected}.
func exempt(path string) bool { return path == "/healthz" || path == "/metricsz" }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.log != nil {
		s.log.Printf("%s %s", r.Method, r.URL.Path)
	}
	if exempt(r.URL.Path) {
		s.mux.ServeHTTP(w, r)
		return
	}
	endpoint := endpointOf(r)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.serveCounted(sw, r)
	s.latency[endpoint].ObserveDuration(time.Since(start))
	s.reg.Counter("api_requests_total",
		"endpoint", endpoint, "code", strconv.Itoa(sw.status)).Inc()
}

// serveCounted is the faults → auth → mux pipeline every counted
// request flows through. Injected faults fire first, like
// infrastructure failing in front of the application.
func (s *Server) serveCounted(w http.ResponseWriter, r *http.Request) {
	if s.faults != nil && s.faults.intercept(w, r) {
		return
	}
	if s.auth != nil {
		if !s.auth.check(w, r) {
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var desc UploadDescriptor
	if err := json.NewDecoder(r.Body).Decode(&desc); err != nil {
		writeError(w, http.StatusBadRequest, "BadRequestError", "malformed upload descriptor")
		return
	}
	if desc.SHA256 == "" {
		writeError(w, http.StatusBadRequest, "BadRequestError", "sha256 is required")
		return
	}
	env, err := s.svc.Upload(vtsim.UploadRequest{
		SHA256:        desc.SHA256,
		FileType:      desc.FileType,
		Size:          desc.Size,
		Malicious:     desc.Malicious,
		Detectability: desc.Detectability,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "BadRequestError", err.Error())
		return
	}
	writeEnvelope(w, http.StatusOK, env)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	env, err := s.svc.Report(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeEnvelope(w, http.StatusOK, env)
}

func (s *Server) handleRescan(w http.ResponseWriter, r *http.Request) {
	env, err := s.svc.Rescan(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeEnvelope(w, http.StatusOK, env)
}

func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	from, err1 := parseUnix(r.URL.Query().Get("from"))
	to, err2 := parseUnix(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil || !to.After(from) {
		writeError(w, http.StatusBadRequest, "BadRequestError",
			"from and to must be Unix seconds with to > from")
		return
	}
	// Optional page cap: a lagging consumer bounds each response
	// instead of pulling the whole backlog in one body.
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "BadRequestError",
				"limit must be a positive integer")
			return
		}
		limit = n
	}
	envs := s.svc.FeedBetweenLimit(from, to, limit)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Stream as a JSON array of wire envelopes, one pooled encode
	// buffer reused across elements. Byte-for-byte the old
	// json.Encoder framing: each element is followed by '\n'.
	buf := bufpool.GetBuf()
	defer bufpool.PutBuf(buf)
	if _, err := w.Write([]byte("[")); err != nil {
		return
	}
	for i := range envs {
		buf = buf[:0]
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = envs[i].AppendJSON(buf)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
	w.Write([]byte("]"))
}

func parseUnix(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, errors.New("missing")
	}
	sec, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(sec, 0).UTC(), nil
}

func writeServiceError(w http.ResponseWriter, err error) {
	if errors.Is(err, vtsim.ErrUnknownSample) {
		writeError(w, http.StatusNotFound, "NotFoundError", err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, "InternalError", err.Error())
}

func writeEnvelope(w http.ResponseWriter, status int, env report.Envelope) {
	// Hand-rolled encode into a pooled buffer; the trailing newline
	// keeps the body identical to the json.Encoder framing clients saw
	// before.
	buf := env.AppendJSON(bufpool.GetBuf())
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	bufpool.PutBuf(buf)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var e apiError
	e.Error.Code = code
	e.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e)
}
