package vtapi

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"vtdynamics/internal/ratelimit"
	"vtdynamics/internal/simclock"
)

// Tier describes what an API key may do — the real service's
// public/premium split that makes the paper's dataset special: only a
// premium license can read the feed, and the public tier is limited
// to 4 requests/minute and 500/day.
type Tier struct {
	Name string
	// RequestsPerMinute and RequestsPerDay of 0 mean unlimited.
	RequestsPerMinute int
	RequestsPerDay    int
	// FeedAccess gates GET /api/v3/feed/reports.
	FeedAccess bool
}

// The standard tiers.
var (
	PublicTier  = Tier{Name: "public", RequestsPerMinute: 4, RequestsPerDay: 500}
	PremiumTier = Tier{Name: "premium", FeedAccess: true}
)

// auth enforces API keys and quotas in front of the mux.
type auth struct {
	clock simclock.Clock
	keys  map[string]Tier

	mu       sync.Mutex
	limiters map[string]*ratelimit.Limiter
}

// Option configures a Server.
type Option func(*Server)

// WithAuth enables API-key authentication: requests must carry a
// known key in the x-apikey header (VT's convention); quotas are
// enforced per key on the given clock; the feed requires a tier with
// FeedAccess.
func WithAuth(clock simclock.Clock, keys map[string]Tier) Option {
	return func(s *Server) {
		s.auth = &auth{
			clock:    clock,
			keys:     keys,
			limiters: make(map[string]*ratelimit.Limiter),
		}
	}
}

// check authenticates and rate-limits one request. It writes the
// error response itself and returns false when the request must not
// proceed.
func (a *auth) check(w http.ResponseWriter, r *http.Request) bool {
	key := r.Header.Get("x-apikey")
	if key == "" {
		writeError(w, http.StatusUnauthorized, "AuthenticationRequiredError",
			"x-apikey header is required")
		return false
	}
	tier, ok := a.keys[key]
	if !ok {
		writeError(w, http.StatusUnauthorized, "WrongCredentialsError",
			"unknown API key")
		return false
	}
	if strings.HasPrefix(r.URL.Path, "/api/v3/feed/") && !tier.FeedAccess {
		writeError(w, http.StatusForbidden, "ForbiddenError",
			fmt.Sprintf("the %s tier has no feed access", tier.Name))
		return false
	}
	a.mu.Lock()
	lim, ok := a.limiters[key]
	if !ok {
		lim = ratelimit.NewLimiter(a.clock, tier.RequestsPerMinute, tier.RequestsPerDay)
		a.limiters[key] = lim
	}
	a.mu.Unlock()
	verdict := lim.Check()
	if !verdict.Allowed {
		if verdict.RetryAfter > 0 {
			secs := int(verdict.RetryAfter.Seconds()) + 1
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		}
		writeError(w, http.StatusTooManyRequests, "QuotaExceededError",
			fmt.Sprintf("quota exceeded for the %s tier", tier.Name))
		return false
	}
	return true
}
