package vtapi_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtsim"
)

// TestMetricszEndpoint scrapes /metricsz after real traffic: the
// text form must carry the request counters and latency histogram,
// the JSON form must be selectable, and the scrape itself must never
// appear in api_requests_total (it is exempt from accounting).
func TestMetricszEndpoint(t *testing.T) {
	set, err := engine.NewSet(engine.DefaultRoster(), 42,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc := vtsim.NewService(set, simclock.NewSim(simclock.CollectionStart),
		vtsim.WithMetrics(reg))
	srv := httptest.NewServer(vtapi.NewServer(svc, nil, vtapi.WithMetrics(reg)))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Drive one known request (a 404 report lookup) through the
	// counted pipeline, plus several scrapes that must not count.
	if code, _ := get("/api/v3/files/nosuch"); code != http.StatusNotFound {
		t.Fatalf("report lookup = %d, want 404", code)
	}
	for i := 0; i < 3; i++ {
		if code, _ := get("/metricsz"); code != http.StatusOK {
			t.Fatalf("metricsz = %d", code)
		}
	}

	code, text := get("/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz = %d", code)
	}
	for _, want := range []string{
		"# TYPE api_requests_total counter",
		`api_requests_total{code="404",endpoint="report"} 1`,
		"# TYPE api_request_seconds histogram",
		`api_request_seconds_count{endpoint="report"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if reg.SumCounters("api_requests_total") != 1 {
		t.Errorf("metricsz scrapes leaked into api_requests_total: %d",
			reg.SumCounters("api_requests_total"))
	}

	code, jsonBody := get("/metricsz?format=json")
	if code != http.StatusOK {
		t.Fatalf("metricsz json = %d", code)
	}
	if !strings.Contains(jsonBody, `"counters"`) || !strings.Contains(jsonBody, "api_requests_total") {
		t.Errorf("json exposition malformed: %s", jsonBody)
	}
}
