package vtapi

import (
	"net/http"
	"sync"

	"vtdynamics/internal/xrand"
)

// Fault injection: a 14-month collection campaign will see the far
// side misbehave — transient 500s, hung connections, shed load. The
// FaultInjector middleware makes the simulated service exhibit those
// failures at a configurable rate so clients and collectors can be
// hardened against them in tests (the vtclient retry/backoff paths
// and the collector's checkpointing exist precisely for this).

// FaultConfig sets per-request failure probabilities. Probabilities
// are independent; the first sampled failure wins.
type FaultConfig struct {
	// Error500Rate is the probability of responding 500.
	Error500Rate float64
	// Error503Rate is the probability of responding 503 (load shed).
	Error503Rate float64
	// Seed makes the failure sequence deterministic.
	Seed int64
}

// faultInjector decides per request whether to fail it.
type faultInjector struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *xrand.Rand
	// counters for observability in tests.
	injected500 int
	injected503 int
	passed      int
}

// WithFaults installs the fault injector. Faults fire before auth —
// like infrastructure failing in front of the application — so a
// failed request consumes no API-key quota.
func WithFaults(cfg FaultConfig) Option {
	return func(s *Server) {
		s.faults = &faultInjector{cfg: cfg, rng: xrand.New(cfg.Seed)}
	}
}

// intercept returns true when it already wrote a failure response.
func (f *faultInjector) intercept(w http.ResponseWriter, r *http.Request) bool {
	if r.URL.Path == "/healthz" {
		return false
	}
	f.mu.Lock()
	fail500 := f.rng.Bool(f.cfg.Error500Rate)
	fail503 := !fail500 && f.rng.Bool(f.cfg.Error503Rate)
	switch {
	case fail500:
		f.injected500++
	case fail503:
		f.injected503++
	default:
		f.passed++
	}
	f.mu.Unlock()
	switch {
	case fail500:
		writeError(w, http.StatusInternalServerError, "TransientError",
			"injected internal error")
		return true
	case fail503:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "ServiceUnavailableError",
			"injected load shedding")
		return true
	default:
		return false
	}
}

// Counts reports how many requests were failed vs passed (for tests).
func (f *faultInjector) Counts() (injected500, injected503, passed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected500, f.injected503, f.passed
}
