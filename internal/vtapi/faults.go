package vtapi

import (
	"net/http"
	"sync"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/xrand"
)

// Fault injection: a 14-month collection campaign will see the far
// side misbehave — transient 500s, hung connections, shed load. The
// FaultInjector middleware makes the simulated service exhibit those
// failures at a configurable rate so clients and collectors can be
// hardened against them in tests (the vtclient retry/backoff paths
// and the collector's checkpointing exist precisely for this).

// FaultConfig sets per-request failure probabilities. Probabilities
// are independent; the first sampled failure wins.
type FaultConfig struct {
	// Error500Rate is the probability of responding 500.
	Error500Rate float64
	// Error503Rate is the probability of responding 503 (load shed).
	Error503Rate float64
	// Seed makes the failure sequence deterministic.
	Seed int64
}

// faultInjector decides per request whether to fail it. Outcomes are
// exported as api_faults_total{kind} — the counters tests and
// operators read; the invariant suite checks them against
// api_requests_total.
type faultInjector struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *xrand.Rand

	injected500 *obs.Counter
	injected503 *obs.Counter
	passed      *obs.Counter
}

// WithFaults installs the fault injector. Faults fire before auth —
// like infrastructure failing in front of the application — so a
// failed request consumes no API-key quota.
func WithFaults(cfg FaultConfig) Option {
	return func(s *Server) { s.faultCfg = &cfg }
}

// FaultMiddleware wraps any handler with the same seeded injector the
// simulated API uses, so sibling services — the replication leader in
// particular — can be exercised under identical transient-failure
// conditions. Failed requests get the standard error body plus a
// Retry-After header on 503, exactly what retrying clients expect.
func FaultMiddleware(cfg FaultConfig, reg *obs.Registry, next http.Handler) http.Handler {
	if reg == nil {
		reg = obs.Default()
	}
	f := newFaultInjector(cfg, reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.intercept(w, r) {
			return
		}
		next.ServeHTTP(w, r)
	})
}

func newFaultInjector(cfg FaultConfig, reg *obs.Registry) *faultInjector {
	return &faultInjector{
		cfg:         cfg,
		rng:         xrand.New(cfg.Seed),
		injected500: reg.Counter("api_faults_total", "kind", "injected_500"),
		injected503: reg.Counter("api_faults_total", "kind", "injected_503"),
		passed:      reg.Counter("api_faults_total", "kind", "passed"),
	}
}

// intercept returns true when it already wrote a failure response.
// The caller has already filtered the exempt operational endpoints.
func (f *faultInjector) intercept(w http.ResponseWriter, r *http.Request) bool {
	f.mu.Lock()
	fail500 := f.rng.Bool(f.cfg.Error500Rate)
	fail503 := !fail500 && f.rng.Bool(f.cfg.Error503Rate)
	f.mu.Unlock()
	switch {
	case fail500:
		f.injected500.Inc()
		writeError(w, http.StatusInternalServerError, "TransientError",
			"injected internal error")
		return true
	case fail503:
		f.injected503.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "ServiceUnavailableError",
			"injected load shedding")
		return true
	default:
		f.passed.Inc()
		return false
	}
}
