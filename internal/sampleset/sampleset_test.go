package sampleset

import (
	"math"
	"testing"
	"time"

	"vtdynamics/internal/ftypes"
)

func genN(t *testing.T, cfg Config) []*Sample {
	t.Helper()
	ss, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Seed: 1}); err == nil {
		t.Fatal("expected error for NumSamples = 0")
	}
	bad := Config{Seed: 1, NumSamples: 10,
		Start: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)}
	if _, err := Generate(bad); err == nil {
		t.Fatal("expected error for End before Start")
	}
}

func TestDeterminism(t *testing.T) {
	a := genN(t, Config{Seed: 5, NumSamples: 500})
	b := genN(t, Config{Seed: 5, NumSamples: 500})
	for i := range a {
		if a[i].SHA256 != b[i].SHA256 || a[i].FileType != b[i].FileType ||
			len(a[i].ScanTimes) != len(b[i].ScanTimes) {
			t.Fatalf("sample %d differs between runs", i)
		}
	}
}

func TestHashesUnique(t *testing.T) {
	ss := genN(t, Config{Seed: 7, NumSamples: 20000})
	seen := make(map[string]bool, len(ss))
	for _, s := range ss {
		if len(s.SHA256) != 64 {
			t.Fatalf("hash length = %d", len(s.SHA256))
		}
		if seen[s.SHA256] {
			t.Fatalf("duplicate hash %s", s.SHA256)
		}
		seen[s.SHA256] = true
	}
}

func TestSingleReportFractionCalibrated(t *testing.T) {
	ss := genN(t, Config{Seed: 9, NumSamples: 100000})
	single := 0
	for _, s := range ss {
		if len(s.ScanTimes) == 1 {
			single++
		}
	}
	frac := float64(single) / float64(len(ss))
	// Window truncation converts a few multi-report samples into
	// singletons, so allow a band around the 0.8881 target.
	if frac < 0.85 || frac < 0.8881-0.03 || frac > 0.93 {
		t.Fatalf("single-report fraction = %.4f, want ~0.89", frac)
	}
}

func TestMultiReportTailShape(t *testing.T) {
	ss := genN(t, Config{Seed: 11, NumSamples: 60000, MultiOnly: true})
	two, le4, le20, total := 0, 0, 0, 0
	for _, s := range ss {
		n := len(s.ScanTimes)
		if n < 1 {
			t.Fatal("sample with no scans")
		}
		total++
		if n == 2 {
			two++
		}
		if n <= 4 {
			le4++
		}
		if n <= 20 {
			le20++
		}
	}
	fTwo := float64(two) / float64(total)
	fLe4 := float64(le4) / float64(total)
	fLe20 := float64(le20) / float64(total)
	// Figure 2: ~67-71% two-report, ~94% <= 4, 99.9% <= 20. Window
	// truncation shifts some mass downward, so use loose bands.
	if fTwo < 0.60 || fTwo > 0.82 {
		t.Fatalf("two-report fraction = %.4f", fTwo)
	}
	if fLe4 < 0.90 {
		t.Fatalf("<=4 reports fraction = %.4f", fLe4)
	}
	if fLe20 < 0.995 {
		t.Fatalf("<=20 reports fraction = %.4f", fLe20)
	}
}

func TestFreshFraction(t *testing.T) {
	ss := genN(t, Config{Seed: 13, NumSamples: 50000})
	fresh := 0
	for _, s := range ss {
		if s.Fresh {
			fresh++
		}
	}
	frac := float64(fresh) / float64(len(ss))
	if math.Abs(frac-0.9176) > 0.01 {
		t.Fatalf("fresh fraction = %.4f, want ~0.9176", frac)
	}
}

func TestFileTypeMixMatchesTable3(t *testing.T) {
	ss := genN(t, Config{Seed: 15, NumSamples: 200000})
	counts := map[string]int{}
	for _, s := range ss {
		counts[s.FileType]++
	}
	n := float64(len(ss))
	checks := map[string]float64{
		ftypes.Win32EXE: 0.252139,
		ftypes.TXT:      0.128777,
		ftypes.HTML:     0.097600,
		ftypes.JPEG:     0.003547,
	}
	for ft, want := range checks {
		got := float64(counts[ft]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("%s share = %.4f, want %.4f", ft, got, want)
		}
	}
	if counts[ftypes.NULL] == 0 || counts[ftypes.Others] == 0 {
		t.Fatal("NULL / Others missing from mix")
	}
}

func TestTopTypesOnly(t *testing.T) {
	ss := genN(t, Config{Seed: 17, NumSamples: 20000, TopTypesOnly: true})
	for _, s := range ss {
		if !ftypes.IsTop20(s.FileType) {
			t.Fatalf("TopTypesOnly produced %q", s.FileType)
		}
	}
}

func TestScanTimesSortedAndInWindow(t *testing.T) {
	cfg := Config{Seed: 19, NumSamples: 30000}
	ss := genN(t, cfg)
	start := time.Date(2021, time.May, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2022, time.July, 1, 0, 0, 0, 0, time.UTC)
	for _, s := range ss {
		if len(s.ScanTimes) == 0 {
			t.Fatal("sample with no in-window scans")
		}
		for i, st := range s.ScanTimes {
			if st.Before(start) || !st.Before(end) {
				t.Fatalf("scan %v outside window", st)
			}
			if i > 0 && st.Before(s.ScanTimes[i-1]) {
				t.Fatal("scan times not ascending")
			}
		}
	}
}

func TestFreshSamplesFirstSeenInWindow(t *testing.T) {
	ss := genN(t, Config{Seed: 21, NumSamples: 20000})
	start := time.Date(2021, time.May, 1, 0, 0, 0, 0, time.UTC)
	for _, s := range ss {
		if s.Fresh {
			if s.FirstSeen.Before(start) {
				t.Fatal("fresh sample first seen before window")
			}
			if !s.ScanTimes[0].Equal(s.FirstSeen) {
				t.Fatal("fresh sample's first scan should be its first submission")
			}
		} else if !s.FirstSeen.Before(start) {
			t.Fatal("old sample first seen inside window")
		}
	}
}

func TestMalwareRatioVariesByType(t *testing.T) {
	ss := genN(t, Config{Seed: 23, NumSamples: 300000})
	mal := map[string]int{}
	tot := map[string]int{}
	for _, s := range ss {
		tot[s.FileType]++
		if s.Malicious {
			mal[s.FileType]++
		}
	}
	exeRatio := float64(mal[ftypes.Win32EXE]) / float64(tot[ftypes.Win32EXE])
	jpegRatio := float64(mal[ftypes.JPEG]) / float64(tot[ftypes.JPEG])
	if exeRatio < 0.5 {
		t.Fatalf("Win32 EXE malware ratio = %.3f, want high", exeRatio)
	}
	if jpegRatio > 0.1 {
		t.Fatalf("JPEG malware ratio = %.3f, want low", jpegRatio)
	}
}

func TestDetectabilityRange(t *testing.T) {
	ss := genN(t, Config{Seed: 25, NumSamples: 10000})
	for _, s := range ss {
		if s.Detectability < 0.15 || s.Detectability > 1.0 {
			t.Fatalf("detectability out of range: %v", s.Detectability)
		}
	}
}

func TestSizesPositiveAndTyped(t *testing.T) {
	ss := genN(t, Config{Seed: 27, NumSamples: 50000})
	var sumEXE, sumJSON float64
	var nEXE, nJSON int
	for _, s := range ss {
		if s.Size < 128 {
			t.Fatalf("size too small: %d", s.Size)
		}
		switch s.FileType {
		case ftypes.Win32EXE:
			sumEXE += float64(s.Size)
			nEXE++
		case ftypes.JSON:
			sumJSON += float64(s.Size)
			nJSON++
		}
	}
	if nEXE == 0 || nJSON == 0 {
		t.Skip("mix did not produce both types")
	}
	if sumEXE/float64(nEXE) <= sumJSON/float64(nJSON) {
		t.Fatal("EXE samples should be larger than JSON samples on average")
	}
}

func TestMultiOnly(t *testing.T) {
	ss := genN(t, Config{Seed: 29, NumSamples: 20000, MultiOnly: true})
	multi := 0
	for _, s := range ss {
		if len(s.ScanTimes) >= 2 {
			multi++
		}
	}
	// Truncation at window end can still strand a few singletons.
	if frac := float64(multi) / float64(len(ss)); frac < 0.90 {
		t.Fatalf("MultiOnly multi fraction = %.4f", frac)
	}
}

func TestGapTailBounded(t *testing.T) {
	ss := genN(t, Config{Seed: 31, NumSamples: 30000, MultiOnly: true})
	maxGap := time.Duration(0)
	for _, s := range ss {
		for i := 1; i < len(s.ScanTimes); i++ {
			g := s.ScanTimes[i].Sub(s.ScanTimes[i-1])
			if g <= 0 {
				t.Fatal("non-positive gap")
			}
			if g > maxGap {
				maxGap = g
			}
		}
	}
	if maxGap > 419*24*time.Hour {
		t.Fatalf("gap exceeded the 418-day cap: %v", maxGap)
	}
}

func TestTargetConversion(t *testing.T) {
	ss := genN(t, Config{Seed: 33, NumSamples: 10})
	s := ss[0]
	tgt := s.Target()
	if tgt.SHA256 != s.SHA256 || tgt.FileType != s.FileType ||
		tgt.Malicious != s.Malicious || !tgt.FirstSeen.Equal(s.FirstSeen) {
		t.Fatal("Target conversion mismatch")
	}
}
