// Package sampleset generates the submission workload: a synthetic
// population of samples with the distributional shape of the paper's
// 571-million-sample dataset, scaled down to laptop size.
//
// Calibration targets (paper §4):
//   - file-type mix: Table 3's top-20 shares plus NULL and the
//     aggregated long tail;
//   - reports per sample: 88.81% singletons, 99.10% < 6, 99.90% < 20,
//     with a bounded-Pareto tail reaching tens of thousands (Fig. 1);
//   - fresh samples: 91.76% first submitted inside the window;
//   - inter-scan gaps: lognormal with a median of days and a tail of
//     hundreds of days (the paper saw up to 418), plus a same-day
//     rescan mode;
//   - per-type ground-truth malware ratios chosen so the stable /
//     dynamic split of multi-report samples lands near the paper's
//     50/50 (Observation 1).
package sampleset

import (
	"fmt"
	"math"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/xrand"
)

// Sample is one generated file with its full submission schedule.
type Sample struct {
	// SHA256 is a synthetic, unique, deterministic hash.
	SHA256 string
	// FileType is the VT type label.
	FileType string
	// Size is the synthetic file size in bytes.
	Size int64
	// Malicious is the latent ground truth.
	Malicious bool
	// Detectability in [0,1] scales how many engines ever detect it.
	Detectability float64
	// FirstSeen is the first submission instant. For fresh samples it
	// lies inside the collection window; for old samples before it.
	FirstSeen time.Time
	// Fresh marks samples first submitted inside the window (91.76%
	// of the paper's dataset).
	Fresh bool
	// ScanTimes holds every analysis instant inside the collection
	// window, ascending. Its length is the sample's report count.
	ScanTimes []time.Time
}

// Target converts the sample to the engine-facing view.
func (s *Sample) Target() engine.Target {
	return engine.Target{
		SHA256:        s.SHA256,
		FileType:      s.FileType,
		Malicious:     s.Malicious,
		Detectability: s.Detectability,
		FirstSeen:     s.FirstSeen,
	}
}

// Config parameterizes the generator. Zero values select the paper's
// calibrated defaults.
type Config struct {
	// Seed drives all randomness; equal seeds give equal populations.
	Seed int64
	// NumSamples is the population size (required, > 0).
	NumSamples int
	// Start and End bound the collection window; defaults are the
	// paper's 14 months.
	Start, End time.Time
	// FreshFraction defaults to 0.9176.
	FreshFraction float64
	// SingleReportFraction defaults to 0.8881 (Fig. 1).
	SingleReportFraction float64
	// MaxReports caps the heavy tail; defaults to 64168, the paper's
	// observed maximum.
	MaxReports int
	// GapMedianDays is the median inter-scan gap; defaults to 12.
	GapMedianDays float64
	// GapSigma is the lognormal shape; defaults to 1.1.
	GapSigma float64
	// SameDayRescanProb is the probability an inter-scan gap is hours
	// rather than days; defaults to 0.15.
	SameDayRescanProb float64
	// MultiOnly, when true, makes every sample have >= 2 reports —
	// the generator equivalent of the paper's restriction to the
	// 63,999,984 multi-report samples.
	MultiOnly bool
	// TopTypesOnly, when true, restricts the mix to the top-20 types
	// (the dataset-S restriction of §5.3.1).
	TopTypesOnly bool
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = time.Date(2021, time.May, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2022, time.July, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.FreshFraction == 0 {
		c.FreshFraction = 0.9176
	}
	if c.SingleReportFraction == 0 {
		c.SingleReportFraction = 0.8881
	}
	if c.MaxReports == 0 {
		c.MaxReports = 64168
	}
	if c.GapMedianDays == 0 {
		c.GapMedianDays = 12
	}
	if c.GapSigma == 0 {
		c.GapSigma = 1.1
	}
	if c.SameDayRescanProb == 0 {
		c.SameDayRescanProb = 0.15
	}
	return c
}

// Generator produces Samples one at a time; it is not safe for
// concurrent use.
type Generator struct {
	cfg     Config
	rng     *xrand.Rand
	mix     *xrand.Cumulative
	mixRows []ftypes.TypeShare
	serial  int
}

// malware ratios for the two aggregate categories.
const (
	nullMalwareRatio   = 0.45
	othersMalwareRatio = 0.50
)

// NewGenerator validates the config and prepares the type mix.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.NumSamples <= 0 {
		return nil, fmt.Errorf("sampleset: NumSamples must be > 0, got %d", cfg.NumSamples)
	}
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("sampleset: End %v not after Start %v", cfg.End, cfg.Start)
	}
	rows := make([]ftypes.TypeShare, 0, len(ftypes.Top20)+2)
	rows = append(rows, ftypes.Top20...)
	if !cfg.TopTypesOnly {
		rows = append(rows,
			ftypes.TypeShare{Type: ftypes.NULL, SampleShare: ftypes.NullShare,
				MalwareRatio: nullMalwareRatio, MeanSizeBytes: 64 << 10},
			ftypes.TypeShare{Type: ftypes.Others, SampleShare: ftypes.OthersShare,
				MalwareRatio: othersMalwareRatio, MeanSizeBytes: 128 << 10},
		)
	}
	weights := make([]float64, len(rows))
	for i, r := range rows {
		weights[i] = r.SampleShare
	}
	return &Generator{
		cfg:     cfg,
		rng:     xrand.New(cfg.Seed),
		mix:     xrand.NewCumulative(weights),
		mixRows: rows,
	}, nil
}

// Next generates the next sample. It never fails once the generator
// is constructed.
func (g *Generator) Next() *Sample {
	g.serial++
	row := g.mixRows[g.mix.Choose(g.rng)]
	s := &Sample{
		SHA256:   syntheticHash(g.cfg.Seed, g.serial),
		FileType: row.Type,
	}
	// Size: lognormal around the type's mean, floor 128 bytes.
	size := g.rng.Lognormal(math.Log(float64(row.MeanSizeBytes)), 0.9)
	if size < 128 {
		size = 128
	}
	s.Size = int64(size)
	s.Malicious = g.rng.Bool(row.MalwareRatio)
	// Detectability: skewed toward well-detected malware — pow(U, 0.5)
	// has mean 2/3 — with a floor so some engines always engage.
	s.Detectability = 0.15 + 0.85*math.Sqrt(g.rng.Float64())

	windowDur := g.cfg.End.Sub(g.cfg.Start)
	s.Fresh = g.rng.Bool(g.cfg.FreshFraction)
	if s.Fresh {
		// First submission inside the window, biased away from the
		// very end so multi-report samples fit some rescans.
		s.FirstSeen = g.cfg.Start.Add(time.Duration(g.rng.Float64() * float64(windowDur)))
	} else {
		// Up to 3 years of pre-window history.
		back := time.Duration(g.rng.Float64() * float64(3*365*24) * float64(time.Hour))
		s.FirstSeen = g.cfg.Start.Add(-back - time.Hour)
	}
	// Real scan timestamps are Unix seconds; keep every generated
	// instant at second granularity so wire round-trips are exact.
	s.FirstSeen = s.FirstSeen.Truncate(time.Second)

	s.ScanTimes = g.scanSchedule(s)
	return s
}

// GenerateAll materializes the full population.
func (g *Generator) GenerateAll() []*Sample {
	out := make([]*Sample, g.cfg.NumSamples)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Generate is the one-shot convenience: build a generator and
// materialize the population.
func Generate(cfg Config) ([]*Sample, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.GenerateAll(), nil
}

// reportCount draws the number of reports for one sample following
// the Figure 1 calibration.
func (g *Generator) reportCount() int {
	if !g.cfg.MultiOnly && g.rng.Bool(g.cfg.SingleReportFraction) {
		return 1
	}
	// Multi-report branch, calibrated to Figure 2: ~69% two-report,
	// ~94% <= 4, ~99.9% <= 20, Pareto beyond.
	u := g.rng.Float64()
	switch {
	case u < 0.69:
		return 2
	case u < 0.86:
		return 3
	case u < 0.94:
		return 4
	case u < 0.965:
		return 5
	case u < 0.999:
		return 6 + g.rng.Intn(15) // 6..20
	default:
		return g.rng.BoundedPareto(21, g.cfg.MaxReports, 1.35)
	}
}

// scanSchedule draws the sample's analysis instants. The first scan
// happens at first submission (for old samples, at a re-submission
// inside the window); subsequent scans follow lognormal gaps with a
// same-day rescan mode. Scans beyond the window end are dropped —
// exactly what happens when a real collection campaign stops.
func (g *Generator) scanSchedule(s *Sample) []time.Time {
	n := g.reportCount()
	first := s.FirstSeen
	if !s.Fresh {
		// Old sample re-entering the window: first in-window scan is
		// uniform over the window.
		first = g.cfg.Start.Add(time.Duration(g.rng.Float64() * float64(g.cfg.End.Sub(g.cfg.Start))))
	}
	times := make([]time.Time, 0, min(n, 4096))
	t := first.Truncate(time.Second)
	for i := 0; i < n; i++ {
		if !t.Before(g.cfg.End) {
			break
		}
		times = append(times, t)
		t = t.Add(g.gap(n)).Truncate(time.Second)
	}
	return times
}

// gap draws one inter-scan gap for a sample scheduled for n scans.
// Heavily resubmitted samples are rescanned in quicker succession —
// the gap median shrinks with the scan count — which is what lets
// most multi-scan samples demonstrate stabilization within ~30 days
// (Observation 8) while two-scan samples keep the long spans of
// Figure 4.
func (g *Generator) gap(n int) time.Duration {
	if g.rng.Bool(g.cfg.SameDayRescanProb) {
		// Hours-scale rescan.
		return time.Duration((0.5 + 11.5*g.rng.Float64()) * float64(time.Hour))
	}
	median := g.cfg.GapMedianDays
	if n > 2 {
		median *= math.Pow(2/float64(n), 0.4)
	}
	days := g.rng.Lognormal(math.Log(median), g.cfg.GapSigma)
	const maxGapDays = 418
	if days > maxGapDays {
		days = maxGapDays
	}
	return time.Duration(days * float64(24*time.Hour))
}

// syntheticHash derives a unique 64-hex-char pseudo-SHA256 from the
// seed and serial number.
func syntheticHash(seed int64, serial int) string {
	const hex = "0123456789abcdef"
	var b [64]byte
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(serial)
	for i := 0; i < 64; i++ {
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		b[i] = hex[x&0xf]
	}
	// Embed the serial to guarantee uniqueness even under mixer
	// collisions.
	tail := fmt.Sprintf("%012x", uint64(serial))
	copy(b[64-len(tail):], tail)
	return string(b[:])
}
