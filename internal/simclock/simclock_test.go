package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimClockStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	c := NewSim(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestSimClockAdvance(t *testing.T) {
	c := NewSim(CollectionStart)
	c.Advance(time.Hour)
	want := CollectionStart.Add(time.Hour)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestSimClockSleepAdvancesWithoutBlocking(t *testing.T) {
	c := NewSim(CollectionStart)
	wallStart := time.Now()
	c.Sleep(24 * time.Hour)
	if elapsed := time.Since(wallStart); elapsed > time.Second {
		t.Fatalf("Sleep blocked for %v of wall time", elapsed)
	}
	want := CollectionStart.Add(24 * time.Hour)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Sleep = %v, want %v", got, want)
	}
}

func TestSimClockNegativeAdvanceIgnored(t *testing.T) {
	c := NewSim(CollectionStart)
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(CollectionStart) {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
}

func TestSimClockSetMonotonic(t *testing.T) {
	c := NewSim(CollectionStart)
	later := CollectionStart.Add(48 * time.Hour)
	c.Set(later)
	if got := c.Now(); !got.Equal(later) {
		t.Fatalf("Set forward: Now() = %v, want %v", got, later)
	}
	c.Set(CollectionStart) // earlier: must be ignored
	if got := c.Now(); !got.Equal(later) {
		t.Fatalf("Set backward moved clock to %v", got)
	}
}

func TestSimClockConcurrentAdvance(t *testing.T) {
	c := NewSim(CollectionStart)
	const goroutines = 16
	const perGoroutine = 100
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perGoroutine; j++ {
				c.Advance(time.Minute)
			}
		}()
	}
	wg.Wait()
	want := CollectionStart.Add(goroutines * perGoroutine * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("concurrent advance: Now() = %v, want %v", got, want)
	}
}

func TestCollectionWindowSpans14Months(t *testing.T) {
	months := 0
	for cur := CollectionStart; cur.Before(CollectionEnd); cur = cur.AddDate(0, 1, 0) {
		months++
	}
	if months != 14 {
		t.Fatalf("collection window covers %d months, want 14", months)
	}
}

func TestRealClockNow(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}
