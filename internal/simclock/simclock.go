// Package simclock provides a virtual clock so that a 14-month data
// collection campaign can run in milliseconds of wall time.
//
// All simulator and collector code takes a Clock rather than calling
// time.Now directly; analyses consume only the timestamps recorded in
// scan reports, never wall time. A SimClock is safe for concurrent use.
package simclock

import (
	"sync"
	"time"
)

// Clock abstracts the passage of time. Production code would use Real;
// the simulator and every test use a SimClock.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks the caller for d in clock time. For a SimClock this
	// advances virtual time immediately without blocking wall time.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// SimClock is a deterministic virtual clock. Time only moves when
// Advance or Sleep is called, and never moves backwards.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewSim returns a SimClock starting at the given instant.
func NewSim(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// CollectionStart is the first instant of the paper's collection
// window (May 2021). Simulations default to starting here so report
// timestamps line up with the monthly partitions of Table 2.
var CollectionStart = time.Date(2021, time.May, 1, 0, 0, 0, 0, time.UTC)

// CollectionEnd is the last instant of the paper's 14-month window
// (end of June 2022).
var CollectionEnd = time.Date(2022, time.July, 1, 0, 0, 0, 0, time.UTC)

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing virtual time; it never blocks.
func (c *SimClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the clock forward by d. Negative d is ignored so the
// clock remains monotonic.
func (c *SimClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t if t is later than the current instant.
// Earlier instants are ignored to preserve monotonicity.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}
