package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	// Values: 1, 2, 2, 3 -> ranks 1, 2.5, 2.5, 4.
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	got := Ranks([]float64{7, 7, 7, 7})
	for _, r := range got {
		if r != 2.5 {
			t.Fatalf("Ranks of constant = %v, want all 2.5", got)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if got := Ranks(nil); len(got) != 0 {
		t.Fatalf("Ranks(nil) = %v", got)
	}
}

func TestRanksDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Ranks(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

// Property: rank sum is always n(n+1)/2 regardless of ties.
func TestQuickRankSumPreserved(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		ranks := Ranks(xs)
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return almostEqual(sum, n*(n+1)/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance(single) = %v", got)
	}
}
