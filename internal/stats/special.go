package stats

import "math"

// Special functions needed for the Student's t significance test that
// backs the Spearman p-values reported throughout the paper (e.g. the
// p = 2.6e-167 for Figure 7). Implementations follow the classic
// Numerical Recipes formulations.

// logGamma returns ln Γ(x) for x > 0 (Lanczos approximation).
func logGamma(x float64) float64 {
	// Coefficients for the Lanczos approximation (g=5, n=6).
	coefs := [6]float64{
		76.18009172947146,
		-86.50532032941677,
		24.01409824083091,
		-1.231739572450155,
		0.1208650973866179e-2,
		-0.5395239384953e-5,
	}
	y := x
	tmp := x + 5.5
	tmp -= (x + 0.5) * math.Log(tmp)
	ser := 1.000000000190015
	for _, c := range coefs {
		y++
		ser += c / y
	}
	return -tmp + math.Log(2.5066282746310005*ser/x)
}

// betacf evaluates the continued fraction for the incomplete beta
// function (Lentz's algorithm).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegularizedIncompleteBeta returns I_x(a, b) for a, b > 0 and
// x in [0, 1].
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := logGamma(a+b) - logGamma(a) - logGamma(b) +
		a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// StudentTTwoSidedP returns the two-sided p-value for a Student's t
// statistic with df degrees of freedom: P(|T| >= |t|).
func StudentTTwoSidedP(t float64, df float64) float64 {
	if df <= 0 {
		return 1
	}
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return RegularizedIncompleteBeta(df/2, 0.5, x)
}
