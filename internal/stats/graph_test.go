package stats

import (
	"reflect"
	"testing"
)

func TestGraphAddEdgeAndWeight(t *testing.T) {
	g := NewGraph()
	g.AddEdge("Avast", "AVG", 0.9814)
	if !g.HasEdge("Avast", "AVG") || !g.HasEdge("AVG", "Avast") {
		t.Fatal("edge missing or not undirected")
	}
	w, ok := g.Weight("AVG", "Avast")
	if !ok || w != 0.9814 {
		t.Fatalf("Weight = %v, %v", w, ok)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestGraphSelfLoopIgnored(t *testing.T) {
	g := NewGraph()
	g.AddEdge("X", "X", 1)
	if g.NumEdges() != 0 {
		t.Fatal("self loop added")
	}
}

func TestGraphIsolatedVertex(t *testing.T) {
	g := NewGraph()
	g.AddVertex("Lonely")
	comps := g.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != "Lonely" {
		t.Fatalf("components = %v", comps)
	}
}

func TestConnectedComponentsGroups(t *testing.T) {
	// Mirror of Table 4's structure: one big group, two pairs.
	g := NewGraph()
	g.AddEdge("MicroWorld-eScan", "BitDefender", 0.95)
	g.AddEdge("BitDefender", "GData", 0.93)
	g.AddEdge("GData", "FireEye", 0.91)
	g.AddEdge("Avast", "AVG", 0.98)
	g.AddEdge("F-Prot", "Babable", 0.97)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	want := []string{"BitDefender", "FireEye", "GData", "MicroWorld-eScan"}
	if !reflect.DeepEqual(comps[0], want) {
		t.Fatalf("largest component = %v, want %v", comps[0], want)
	}
	// Remaining two are size-2 pairs, ordered lexicographically.
	if len(comps[1]) != 2 || len(comps[2]) != 2 {
		t.Fatalf("pair components = %v", comps[1:])
	}
	if comps[1][0] != "AVG" {
		t.Fatalf("component order: %v", comps[1])
	}
}

func TestEdgesSortedByWeight(t *testing.T) {
	g := NewGraph()
	g.AddEdge("A", "B", 0.85)
	g.AddEdge("C", "D", 0.99)
	g.AddEdge("A", "C", 0.90)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("edges = %v", es)
	}
	if es[0].Weight != 0.99 || es[1].Weight != 0.90 || es[2].Weight != 0.85 {
		t.Fatalf("not sorted by weight: %v", es)
	}
	if es[0].A != "C" || es[0].B != "D" {
		t.Fatalf("canonical ordering broken: %v", es[0])
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph()
	g.AddEdge("M", "Z", 1)
	g.AddEdge("M", "A", 1)
	got := g.Neighbors("M")
	if !reflect.DeepEqual(got, []string{"A", "Z"}) {
		t.Fatalf("Neighbors = %v", got)
	}
}

func TestComponentsDeterministic(t *testing.T) {
	build := func() [][]string {
		g := NewGraph()
		g.AddEdge("e3", "e1", 0.9)
		g.AddEdge("e2", "e4", 0.9)
		g.AddEdge("e5", "e1", 0.9)
		return g.ConnectedComponents()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic components: %v vs %v", a, b)
	}
}
